package core

import (
	"testing"

	"vstat/internal/device"
	"vstat/internal/variation"
)

func cornersModel() *StatVS {
	m := DefaultStatVS()
	m.AlphaN = variation.FromPaperUnits(2.3, 3.71, 3.71, 944, 0.29)
	m.AlphaP = variation.FromPaperUnits(2.86, 3.66, 3.66, 781, 0.81)
	return m
}

func TestCornerOrdering(t *testing.T) {
	m := cornersModel()
	w, l, vdd := 600e-9, 40e-9, 0.9
	idsat := func(c Corner, k device.Kind) float64 {
		d := m.CornerFactory(c, 3)(k, w, l)
		if k == device.PMOS {
			return -d.Eval(0, 0, vdd, vdd).Id
		}
		return d.Eval(vdd, vdd, 0, 0).Id
	}
	// FF > TT > SS for both polarities.
	for _, k := range []device.Kind{device.NMOS, device.PMOS} {
		ff, tt, ss := idsat(FF, k), idsat(TT, k), idsat(SS, k)
		if !(ff > tt && tt > ss) {
			t.Fatalf("%v: FF %g, TT %g, SS %g not ordered", k, ff, tt, ss)
		}
	}
	// Skewed corners: FS has fast NMOS, slow PMOS.
	if !(idsat(FS, device.NMOS) > idsat(TT, device.NMOS)) {
		t.Fatal("FS NMOS not fast")
	}
	if !(idsat(FS, device.PMOS) < idsat(TT, device.PMOS)) {
		t.Fatal("FS PMOS not slow")
	}
	if !(idsat(SF, device.NMOS) < idsat(TT, device.NMOS)) {
		t.Fatal("SF NMOS not slow")
	}
	if !(idsat(SF, device.PMOS) > idsat(TT, device.PMOS)) {
		t.Fatal("SF PMOS not fast")
	}
}

func TestCornerDeltasScaleWithSigma(t *testing.T) {
	m := cornersModel()
	d1 := m.CornerDeltas(FF, device.NMOS, 600e-9, 40e-9, 1)
	d3 := m.CornerDeltas(FF, device.NMOS, 600e-9, 40e-9, 3)
	if d3.DVT0 != 3*d1.DVT0 || d3.DMu != 3*d1.DMu {
		t.Fatal("corner deltas must scale linearly with nsigma")
	}
	if d1.DVT0 >= 0 {
		t.Fatal("fast corner must lower VT0")
	}
	tt := m.CornerDeltas(TT, device.NMOS, 600e-9, 40e-9, 3)
	if tt != (device.Deltas{}) {
		t.Fatal("TT corner must be zero deltas")
	}
}

func TestCornerBoundsMCQuantiles(t *testing.T) {
	// The ±3σ corner Idsat must bound the bulk of a Monte Carlo population.
	m := cornersModel()
	w, l, vdd := 600e-9, 40e-9, 0.9
	fast := m.CornerFactory(FF, 3)(device.NMOS, w, l).Eval(vdd, vdd, 0, 0).Id
	slow := m.CornerFactory(SS, 3)(device.NMOS, w, l).Eval(vdd, vdd, 0, 0).Id
	rng := newTestRNG(9)
	inside := 0
	const n = 400
	for i := 0; i < n; i++ {
		id := m.SampleDevice(rng, device.NMOS, w, l).Eval(vdd, vdd, 0, 0).Id
		if id > slow && id < fast {
			inside++
		}
	}
	if frac := float64(inside) / n; frac < 0.97 {
		t.Fatalf("3σ corners contain only %g of MC", frac)
	}
}

func TestCornerNamesAndReport(t *testing.T) {
	names := map[Corner]string{TT: "TT", FF: "FF", SS: "SS", FS: "FS", SF: "SF"}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%v", c)
		}
	}
	if len(Corners()) != 5 {
		t.Fatal("corner list")
	}
	rep := cornersModel().CornerReport(600e-9, 40e-9, 0.9, 3)
	if len(rep) < 50 {
		t.Fatalf("report too short: %q", rep)
	}
}
