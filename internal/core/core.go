// Package core assembles the paper's primary contribution: the statistical
// Virtual Source MOSFET model. A StatVS couples the nominal VS parameter
// cards (one per polarity) with the extracted mismatch coefficients
// (α1..α5 of paper Table II) and produces independently perturbed device
// instances for Monte Carlo circuit simulation; the five sampled parameters
// are the independent Gaussians of paper Table I, and the dependent
// responses δ(Leff) and vxo follow paper Eqs. (4)–(6) inside the model.
//
// StatGolden is the same construction over the golden BSIM-like model with
// its ground-truth coefficients; it plays the role of the industrial
// statistical design kit in every validation experiment.
package core

import (
	"math/rand"

	"vstat/internal/bsim"
	"vstat/internal/circuits"
	"vstat/internal/device"
	"vstat/internal/variation"
	"vstat/internal/vsmodel"
)

// StatVS is the statistical Virtual Source model.
type StatVS struct {
	NMOS, PMOS     vsmodel.Params // nominal cards (geometry retargeted per instance)
	AlphaN, AlphaP variation.Alphas

	// Kernel selects the VS evaluation backend every produced instance is
	// wrapped in: direct scalar+SoA (the zero-value default, via the
	// VSTAT_MODEL_KERNEL override), the exact compiled op tape, or the
	// fastmath tape. See vsmodel.Kernel.
	Kernel vsmodel.Kernel
}

// DefaultStatVS returns the nominal 40-nm cards with zero-variation
// coefficients (to be filled by BPV extraction).
func DefaultStatVS() *StatVS {
	return &StatVS{
		NMOS: vsmodel.NMOS40(1e-6),
		PMOS: vsmodel.PMOS40(1e-6),
	}
}

// Alphas returns the mismatch coefficients for the polarity.
func (m *StatVS) Alphas(k device.Kind) variation.Alphas {
	if k == device.PMOS {
		return m.AlphaP
	}
	return m.AlphaN
}

// Card returns the nominal card retargeted to geometry (w, l).
func (m *StatVS) Card(k device.Kind, w, l float64) vsmodel.Params {
	if k == device.PMOS {
		return m.PMOS.WithGeometry(w, l)
	}
	return m.NMOS.WithGeometry(w, l)
}

// Nominal returns a factory producing unperturbed instances.
func (m *StatVS) Nominal() circuits.Factory {
	return func(k device.Kind, w, l float64) device.Device {
		return vsmodel.ForKernel(m.Card(k, w, l), m.Kernel)
	}
}

// Statistical returns a factory that draws fresh independent mismatch
// deltas from rng for every transistor instance.
func (m *StatVS) Statistical(rng *rand.Rand) circuits.Factory {
	return func(k device.Kind, w, l float64) device.Device {
		p := m.Card(k, w, l).ApplyDeltas(m.Alphas(k).Sample(rng, w, l))
		return vsmodel.ForKernel(p, m.Kernel)
	}
}

// SampleDevice draws a single perturbed instance at geometry (w, l).
func (m *StatVS) SampleDevice(rng *rand.Rand, k device.Kind, w, l float64) device.Device {
	return m.Statistical(rng)(k, w, l)
}

// StatGolden is the statistical golden (BSIM-like) model standing in for
// the industrial kit.
type StatGolden struct {
	NMOS, PMOS     bsim.Params
	AlphaN, AlphaP variation.Alphas
}

// DefaultStatGolden returns the golden cards with the ground-truth mismatch
// coefficients of internal/variation.
func DefaultStatGolden() *StatGolden {
	return &StatGolden{
		NMOS:   bsim.NMOS40(1e-6),
		PMOS:   bsim.PMOS40(1e-6),
		AlphaN: variation.GoldenTruthNMOS(),
		AlphaP: variation.GoldenTruthPMOS(),
	}
}

// Alphas returns the ground-truth coefficients for the polarity.
func (m *StatGolden) Alphas(k device.Kind) variation.Alphas {
	if k == device.PMOS {
		return m.AlphaP
	}
	return m.AlphaN
}

// Card returns the golden card retargeted to geometry (w, l).
func (m *StatGolden) Card(k device.Kind, w, l float64) bsim.Params {
	if k == device.PMOS {
		return m.PMOS.WithGeometry(w, l)
	}
	return m.NMOS.WithGeometry(w, l)
}

// Nominal returns a factory producing unperturbed golden instances.
func (m *StatGolden) Nominal() circuits.Factory {
	return func(k device.Kind, w, l float64) device.Device {
		p := m.Card(k, w, l)
		return &p
	}
}

// Statistical returns a factory drawing fresh golden-parameter mismatch for
// every instance.
func (m *StatGolden) Statistical(rng *rand.Rand) circuits.Factory {
	return func(k device.Kind, w, l float64) device.Device {
		p := m.Card(k, w, l)
		return p.WithDeltas(m.Alphas(k).Sample(rng, w, l))
	}
}

// SampleDevice draws a single perturbed golden instance.
func (m *StatGolden) SampleDevice(rng *rand.Rand, k device.Kind, w, l float64) device.Device {
	return m.Statistical(rng)(k, w, l)
}

// StatModel is the common interface of the two statistical models, letting
// experiments run the identical flow over both.
type StatModel interface {
	Nominal() circuits.Factory
	Statistical(rng *rand.Rand) circuits.Factory
	SampleDevice(rng *rand.Rand, k device.Kind, w, l float64) device.Device
}

var (
	_ StatModel = (*StatVS)(nil)
	_ StatModel = (*StatGolden)(nil)
)
