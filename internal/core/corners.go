package core

import (
	"fmt"

	"vstat/internal/circuits"
	"vstat/internal/device"
	"vstat/internal/vsmodel"
)

// Corner identifies a process corner derived from the statistical model:
// TT is nominal; FF/SS shift both polarities fast/slow; FS and SF are the
// skewed corners (first letter NMOS, second PMOS).
type Corner int

// Process corners.
const (
	TT Corner = iota
	FF
	SS
	FS
	SF
)

// String returns the conventional corner name.
func (c Corner) String() string {
	switch c {
	case FF:
		return "FF"
	case SS:
		return "SS"
	case FS:
		return "FS"
	case SF:
		return "SF"
	default:
		return "TT"
	}
}

// Corners lists all five corners.
func Corners() []Corner { return []Corner{TT, FF, SS, FS, SF} }

// nmosFast/pmosFast report the per-polarity speed sign of the corner
// (+1 fast, -1 slow, 0 typical).
func (c Corner) nmosFast() float64 {
	switch c {
	case FF, FS:
		return 1
	case SS, SF:
		return -1
	}
	return 0
}

func (c Corner) pmosFast() float64 {
	switch c {
	case FF, SF:
		return 1
	case SS, FS:
		return -1
	}
	return 0
}

// CornerDeltas builds the deterministic parameter shift of a corner for a
// device of geometry (w, l): each statistical parameter is moved by
// ±nsigma·σ in its *fast* direction (lower VT0, shorter Leff, wider Weff,
// higher µ, higher Cinv for the fast corner; mirrored for slow).
//
// Digital corner models are exactly this construction — a deterministic
// card at the k-sigma extreme of the local-variation space — so the derived
// corners bound the Monte Carlo population by design. The Fig. 5/7 corner
// ablation checks how tight that bound is against true MC quantiles.
func (m *StatVS) CornerDeltas(c Corner, k device.Kind, w, l float64, nsigma float64) device.Deltas {
	sign := m.cornerSign(c, k)
	if sign == 0 {
		return device.Deltas{}
	}
	s := m.Alphas(k).Sigmas(w, l)
	return device.Deltas{
		DVT0:  -sign * nsigma * s.VT0, // fast = lower threshold
		DL:    -sign * nsigma * s.L,   // fast = shorter channel
		DW:    +sign * nsigma * s.W,   // fast = wider device
		DMu:   +sign * nsigma * s.Mu,  // fast = higher mobility
		DCinv: +sign * nsigma * s.Cinv,
	}
}

func (m *StatVS) cornerSign(c Corner, k device.Kind) float64 {
	if k == device.PMOS {
		return c.pmosFast()
	}
	return c.nmosFast()
}

// CornerFactory returns a deterministic device factory at the given corner
// and sigma level.
func (m *StatVS) CornerFactory(c Corner, nsigma float64) circuits.Factory {
	return func(k device.Kind, w, l float64) device.Device {
		card := m.Card(k, w, l).ApplyDeltas(m.CornerDeltas(c, k, w, l, nsigma))
		return &card
	}
}

// CornerCard returns the corner-shifted card for inspection.
func (m *StatVS) CornerCard(c Corner, k device.Kind, w, l float64, nsigma float64) vsmodel.Params {
	return m.Card(k, w, l).ApplyDeltas(m.CornerDeltas(c, k, w, l, nsigma))
}

// CornerReport formats the Idsat shift of every corner for a geometry.
func (m *StatVS) CornerReport(w, l, vdd, nsigma float64) string {
	out := fmt.Sprintf("corner Idsat at W/L=%.0f/%.0f nm, %gσ:\n", w*1e9, l*1e9, nsigma)
	for _, c := range Corners() {
		f := m.CornerFactory(c, nsigma)
		n := f(device.NMOS, w, l)
		p := f(device.PMOS, w, l)
		idn := n.Eval(vdd, vdd, 0, 0).Id
		idp := -p.Eval(0, 0, vdd, vdd).Id
		out += fmt.Sprintf("  %-3s NMOS %7.1f uA  PMOS %7.1f uA\n", c, idn*1e6, idp*1e6)
	}
	return out
}
