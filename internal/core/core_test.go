package core

import (
	"math"
	"math/rand"
	"testing"

	"vstat/internal/bpv"
	"vstat/internal/device"
	"vstat/internal/montecarlo"
	"vstat/internal/stats"
	"vstat/internal/variation"
)

func TestNominalFactoryIsDeterministic(t *testing.T) {
	m := DefaultStatVS()
	f := m.Nominal()
	d1 := f(device.NMOS, 600e-9, 40e-9)
	d2 := f(device.NMOS, 600e-9, 40e-9)
	if d1.Eval(0.9, 0.9, 0, 0).Id != d2.Eval(0.9, 0.9, 0, 0).Id {
		t.Fatal("nominal instances differ")
	}
	if d1.Width() != 600e-9 || d1.Length() != 40e-9 {
		t.Fatal("geometry not applied")
	}
}

func TestStatisticalFactoryVariesPerDevice(t *testing.T) {
	m := DefaultStatVS()
	m.AlphaN = variation.GoldenTruthNMOS()
	m.AlphaP = variation.GoldenTruthPMOS()
	rng := rand.New(rand.NewSource(3))
	f := m.Statistical(rng)
	d1 := f(device.NMOS, 600e-9, 40e-9)
	d2 := f(device.NMOS, 600e-9, 40e-9)
	if d1.Eval(0.9, 0.9, 0, 0).Id == d2.Eval(0.9, 0.9, 0, 0).Id {
		t.Fatal("two instances from the same factory must be independently mismatched")
	}
}

func TestStatVSSampleStatisticsMatchAlphas(t *testing.T) {
	m := DefaultStatVS()
	m.AlphaN = variation.FromPaperUnits(2.3, 3.71, 3.71, 944, 0.29)
	tg := bpv.Targets{Vdd: 0.9}
	w, l := 600e-9, 40e-9

	samples, err := montecarlo.Map(1200, 5, 0, func(idx int, rng *rand.Rand) ([]float64, error) {
		d := m.SampleDevice(rng, device.NMOS, w, l)
		return tg.EvalVec(d), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	gotS := stats.StdDev(montecarlo.Column(samples, 0))
	// Compare to linear propagation prediction.
	ex := &bpv.Extraction{Card: m.NMOS, Kind: device.NMOS, Vdd: 0.9, Alpha5: m.AlphaN.A5}
	wantS, _, _ := ex.PredictSigmas(m.AlphaN, w, l)
	if math.Abs(gotS-wantS)/wantS > 0.12 {
		t.Fatalf("MC σIdsat %g vs propagated %g", gotS, wantS)
	}
	// Mean unchanged from nominal within sampling error.
	nom := m.Nominal()(device.NMOS, w, l)
	idNom, _, _ := tg.Eval(nom)
	if mu := stats.Mean(montecarlo.Column(samples, 0)); math.Abs(mu-idNom)/idNom > 0.02 {
		t.Fatalf("MC mean %g vs nominal %g", mu, idNom)
	}
}

func TestStatGoldenProducesVariation(t *testing.T) {
	g := DefaultStatGolden()
	tg := bpv.Targets{Vdd: 0.9}
	samples, err := montecarlo.Map(800, 9, 0, func(idx int, rng *rand.Rand) ([]float64, error) {
		d := g.SampleDevice(rng, device.NMOS, 600e-9, 40e-9)
		return tg.EvalVec(d), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	ids := montecarlo.Column(samples, 0)
	rel := stats.StdDev(ids) / stats.Mean(ids)
	// Paper Table III medium NMOS: σ/µ ≈ 20.2/460 ≈ 4.4%; expect the same
	// order for the golden stand-in.
	if rel < 0.02 || rel > 0.09 {
		t.Fatalf("golden σ/µ(Idsat) = %g out of band", rel)
	}
	// log10Ioff spread: paper reports σ ≈ 0.17 at this size.
	sLog := stats.StdDev(montecarlo.Column(samples, 1))
	if sLog < 0.05 || sLog > 0.5 {
		t.Fatalf("golden σ(log10Ioff) = %g out of band", sLog)
	}
}

func TestPolaritySelection(t *testing.T) {
	m := DefaultStatVS()
	m.AlphaN = variation.GoldenTruthNMOS()
	m.AlphaP = variation.GoldenTruthPMOS()
	if m.Alphas(device.PMOS) != m.AlphaP || m.Alphas(device.NMOS) != m.AlphaN {
		t.Fatal("alpha selection")
	}
	if m.Card(device.PMOS, 1e-6, 40e-9).TypeK != device.PMOS {
		t.Fatal("card polarity")
	}
	g := DefaultStatGolden()
	if g.Alphas(device.PMOS) != g.AlphaP {
		t.Fatal("golden alpha selection")
	}
	if g.Card(device.PMOS, 1e-6, 40e-9).TypeK != device.PMOS {
		t.Fatal("golden card polarity")
	}
}

func TestGoldenAndVSNominalTargetsAgreeLoosely(t *testing.T) {
	// Before extraction the starter cards already describe the same kind of
	// transistor (within ~35%); after Fig. 1 extraction they agree tightly
	// (tested in internal/extract).
	tg := bpv.Targets{Vdd: 0.9}
	vs := DefaultStatVS().Nominal()(device.NMOS, 600e-9, 40e-9)
	gd := DefaultStatGolden().Nominal()(device.NMOS, 600e-9, 40e-9)
	iv, _, _ := tg.Eval(vs)
	ig, _, _ := tg.Eval(gd)
	if r := iv / ig; r < 0.65 || r > 1.55 {
		t.Fatalf("starter cards diverge: VS %g vs golden %g", iv, ig)
	}
}

// newTestRNG returns a deterministic RNG for corner tests.
func newTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
