package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitLognormalRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mu, sigma := -17.0, 0.8 // ~4e-8 median, leakage-like
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = math.Exp(mu + sigma*rng.NormFloat64())
	}
	f := FitLognormal(xs)
	if math.Abs(f.Mu-mu) > 0.02 || math.Abs(f.Sigma-sigma) > 0.02 {
		t.Fatalf("fit (%g, %g) want (%g, %g)", f.Mu, f.Sigma, mu, sigma)
	}
	if math.Abs(f.Median()-math.Exp(mu)) > 0.05*math.Exp(mu) {
		t.Fatalf("median %g", f.Median())
	}
	want := math.Exp(mu + sigma*sigma/2)
	if math.Abs(f.Mean()-want) > 0.05*want {
		t.Fatalf("mean %g want %g", f.Mean(), want)
	}
	// Quantile/CDF inverse property.
	for _, p := range []float64{0.01, 0.5, 0.99} {
		if q := f.CDF(f.Quantile(p)); math.Abs(q-p) > 1e-12 {
			t.Fatalf("CDF(Q(%g)) = %g", p, q)
		}
	}
	// Spread ratio: q99.9/q0.1 = exp(2·σ·z(0.999)).
	wantSpread := math.Exp(2 * f.Sigma * StdNormalQuantile(0.999))
	if r := f.SpreadRatio(0.999); math.Abs(r-wantSpread) > 1e-9*wantSpread {
		t.Fatalf("spread %g want %g", r, wantSpread)
	}
}

func TestFitLognormalRejectsNonPositive(t *testing.T) {
	f := FitLognormal([]float64{1, 2, 0})
	if !math.IsNaN(f.Mu) {
		t.Fatal("expected NaN for non-positive sample")
	}
}

func TestYieldEstimate(t *testing.T) {
	freq := []float64{1, 2, 3, 4}
	leak := []float64{10, 20, 30, 40}
	if y := YieldEstimate(freq, leak, 2, 30); y != 0.5 { // samples 2 and 3 pass
		t.Fatalf("yield %g", y)
	}
	if y := YieldEstimate(freq, leak, 0, 100); y != 1 {
		t.Fatalf("yield %g", y)
	}
	if !math.IsNaN(YieldEstimate(nil, nil, 0, 0)) {
		t.Fatal("empty yield should be NaN")
	}
}

func TestEmpiricalCDF(t *testing.T) {
	cdf := EmpiricalCDF([]float64{1, 2, 3, 4})
	cases := map[float64]float64{0: 0, 1: 0.25, 2.5: 0.5, 4: 1, 5: 1}
	for x, want := range cases {
		if got := cdf(x); math.Abs(got-want) > 1e-12 {
			t.Fatalf("cdf(%g) = %g want %g", x, got, want)
		}
	}
}

func TestKSDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	// Against its own distribution: small.
	d := KSDistance(xs, func(x float64) float64 { return NormalCDF(x, 0, 1) })
	if d > 0.03 {
		t.Fatalf("KS against true dist %g", d)
	}
	// Against a shifted distribution: large.
	d2 := KSDistance(xs, func(x float64) float64 { return NormalCDF(x, 1, 1) })
	if d2 < 0.3 {
		t.Fatalf("KS against shifted dist %g", d2)
	}
	if !math.IsNaN(KSDistance(nil, nil)) {
		t.Fatal("empty KS should be NaN")
	}
}
