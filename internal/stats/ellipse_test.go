package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestEllipseAxisAligned(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 20000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = 1 + 3*rng.NormFloat64()
		ys[i] = -2 + 1*rng.NormFloat64()
	}
	e := ConfidenceEllipse(xs, ys, 1)
	if math.Abs(e.CX-1) > 0.1 || math.Abs(e.CY+2) > 0.05 {
		t.Fatalf("centre (%g,%g)", e.CX, e.CY)
	}
	if math.Abs(e.A-3) > 0.15 || math.Abs(e.B-1) > 0.05 {
		t.Fatalf("axes (%g,%g) want (3,1)", e.A, e.B)
	}
	// Major axis along x.
	if m := math.Abs(math.Mod(e.Theta, math.Pi)); m > 0.05 && math.Abs(m-math.Pi) > 0.05 {
		t.Fatalf("theta %g", e.Theta)
	}
}

// Property-style check: the k-sigma ellipse of Gaussian data contains
// approximately 1-exp(-k²/2) of the samples.
func TestEllipseCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := 30000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		// Correlated pair.
		a, b := rng.NormFloat64(), rng.NormFloat64()
		xs[i] = a
		ys[i] = 0.6*a + 0.8*b
	}
	for _, k := range []float64{1, 2, 3} {
		e := ConfidenceEllipse(xs, ys, k)
		in := 0
		for i := range xs {
			if e.Contains(xs[i], ys[i]) {
				in++
			}
		}
		frac := float64(in) / float64(n)
		want := SigmaCoverage(k)
		if math.Abs(frac-want) > 0.01 {
			t.Fatalf("k=%g coverage %g want %g", k, frac, want)
		}
	}
}

func TestEllipsePointsOnBoundary(t *testing.T) {
	e := Ellipse{CX: 1, CY: 2, A: 3, B: 1, Theta: math.Pi / 6}
	xs, ys := e.Points(64)
	if len(xs) != 64 {
		t.Fatalf("points %d", len(xs))
	}
	for i := range xs {
		// Boundary points satisfy the quadratic form = 1.
		dx, dy := xs[i]-e.CX, ys[i]-e.CY
		c, s := math.Cos(e.Theta), math.Sin(e.Theta)
		u := c*dx + s*dy
		v := -s*dx + c*dy
		q := (u/e.A)*(u/e.A) + (v/e.B)*(v/e.B)
		if math.Abs(q-1) > 1e-12 {
			t.Fatalf("point %d off boundary: %g", i, q)
		}
	}
}

func TestSigmaCoverage(t *testing.T) {
	if !feq(SigmaCoverage(1), 0.3934693402873666, 1e-12) {
		t.Fatal("1σ coverage")
	}
	if !feq(SigmaCoverage(3), 0.988891003461758, 1e-9) {
		t.Fatal("3σ coverage")
	}
}
