package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func feq(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func TestMeanVarKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !feq(Mean(xs), 5, 1e-15) {
		t.Fatalf("mean %g", Mean(xs))
	}
	// Sample variance with n-1: sum sq dev = 32, /7
	if !feq(Variance(xs), 32.0/7, 1e-12) {
		t.Fatalf("var %g", Variance(xs))
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("expected NaN for degenerate inputs")
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("Min/Max of empty should be NaN")
	}
	if !math.IsNaN(Skewness([]float64{1, 2})) {
		t.Fatal("Skewness n<3 should be NaN")
	}
	if !math.IsNaN(ExcessKurtosis([]float64{1, 2, 3})) {
		t.Fatal("Kurtosis n<4 should be NaN")
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		if len(xs) < 2 {
			return true
		}
		return Variance(xs) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSkewKurtGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	xs := make([]float64, 50000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	if s := Skewness(xs); math.Abs(s) > 0.05 {
		t.Fatalf("Gaussian skewness %g", s)
	}
	if k := ExcessKurtosis(xs); math.Abs(k) > 0.1 {
		t.Fatalf("Gaussian excess kurtosis %g", k)
	}
	// Exponential data: skewness 2, excess kurtosis 6.
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	if s := Skewness(xs); math.Abs(s-2) > 0.2 {
		t.Fatalf("exponential skewness %g want ~2", s)
	}
	if k := ExcessKurtosis(xs); math.Abs(k-6) > 1.2 {
		t.Fatalf("exponential kurtosis %g want ~6", k)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 %g", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("q1 %g", q)
	}
	if q := Median(xs); !feq(q, 2.5, 1e-15) {
		t.Fatalf("median %g", q)
	}
	if q := Quantile(xs, 0.25); !feq(q, 1.75, 1e-15) {
		t.Fatalf("q25 %g", q)
	}
	got := Quantiles(xs, []float64{0, 0.5, 1})
	if got[0] != 1 || got[2] != 4 {
		t.Fatalf("Quantiles %v", got)
	}
	// Input must not be reordered.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0001; q += 0.05 {
			qq := math.Min(q, 1)
			v := Quantile(xs, qq)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestCovarianceCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10} // perfectly correlated
	if r := Correlation(xs, ys); !feq(r, 1, 1e-12) {
		t.Fatalf("corr %g", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Correlation(xs, neg); !feq(r, -1, 1e-12) {
		t.Fatalf("anticorr %g", r)
	}
	if c := Covariance(xs, ys); !feq(c, 5, 1e-12) {
		t.Fatalf("cov %g", c)
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 1000)
	var r Running
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		r.Push(xs[i])
	}
	if !feq(r.Mean(), Mean(xs), 1e-12) {
		t.Fatalf("running mean %g batch %g", r.Mean(), Mean(xs))
	}
	if !feq(r.Variance(), Variance(xs), 1e-10) {
		t.Fatalf("running var %g batch %g", r.Variance(), Variance(xs))
	}
	if r.Min() != Min(xs) || r.Max() != Max(xs) {
		t.Fatal("running min/max mismatch")
	}
	if r.N() != len(xs) {
		t.Fatal("running N mismatch")
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Variance()) || !math.IsNaN(r.Min()) {
		t.Fatal("empty Running should report NaN")
	}
}
