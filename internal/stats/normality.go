package stats

import (
	"math"
	"sort"
)

// JarqueBera returns the Jarque–Bera statistic and its asymptotic p-value
// (chi-square with 2 dof) for the null hypothesis that xs is Gaussian.
// Large statistics / small p-values indicate non-Gaussian data.
func JarqueBera(xs []float64) (stat, pvalue float64) {
	n := float64(len(xs))
	if n < 8 {
		return math.NaN(), math.NaN()
	}
	m := Mean(xs)
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		m2 += d2
		m3 += d2 * d
		m4 += d2 * d2
	}
	m2 /= n
	m3 /= n
	m4 /= n
	if m2 <= 0 {
		return math.NaN(), math.NaN()
	}
	s := m3 / math.Pow(m2, 1.5)
	k := m4 / (m2 * m2)
	stat = n / 6 * (s*s + (k-3)*(k-3)/4)
	pvalue = 1 - ChiSquareCDF(stat, 2)
	return stat, pvalue
}

// AndersonDarling returns the Anderson–Darling A² statistic (adjusted for
// estimated mean and variance, the "case 3" statistic A*²) against the
// normal distribution. Common critical values: 0.631 (10%), 0.752 (5%),
// 1.035 (1%).
func AndersonDarling(xs []float64) float64 {
	n := len(xs)
	if n < 8 {
		return math.NaN()
	}
	mu, sd := Mean(xs), StdDev(xs)
	if sd == 0 {
		return math.NaN()
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	a2 := 0.0
	fn := float64(n)
	for i := 0; i < n; i++ {
		zi := NormalCDF(s[i], mu, sd)
		zn := NormalCDF(s[n-1-i], mu, sd)
		// Clamp to avoid log(0) from extreme order statistics.
		zi = math.Min(math.Max(zi, 1e-300), 1-1e-16)
		zn = math.Min(math.Max(zn, 1e-300), 1-1e-16)
		a2 += (2*float64(i) + 1) * (math.Log(zi) + math.Log(1-zn))
	}
	a2 = -fn - a2/fn
	// Small-sample adjustment (D'Agostino & Stephens).
	return a2 * (1 + 0.75/fn + 2.25/(fn*fn))
}
