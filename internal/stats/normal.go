package stats

import "math"

// NormalPDF evaluates the N(mu, sigma²) density at x.
func NormalPDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return math.NaN()
	}
	z := (x - mu) / sigma
	return math.Exp(-0.5*z*z) / (sigma * math.Sqrt(2*math.Pi))
}

// NormalCDF evaluates the N(mu, sigma²) cumulative distribution at x.
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		return math.NaN()
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// NormalQuantile returns the p-th quantile of N(mu, sigma²), 0 < p < 1.
// The standard-normal inverse CDF uses the Acklam rational approximation
// refined by one Halley step on Erfc, giving ~1e-15 relative accuracy.
func NormalQuantile(p, mu, sigma float64) float64 {
	return mu + sigma*StdNormalQuantile(p)
}

// StdNormalQuantile returns Φ⁻¹(p) for 0 < p < 1 (±Inf at the endpoints,
// NaN outside).
func StdNormalQuantile(p float64) float64 {
	switch {
	case math.IsNaN(p) || p < 0 || p > 1:
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}
	// Acklam's approximation.
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
	// One Halley refinement step.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// ChiSquareCDF returns P(X ≤ x) for a chi-square distribution with k degrees
// of freedom, via the regularized lower incomplete gamma function.
func ChiSquareCDF(x float64, k int) float64 {
	if x <= 0 {
		return 0
	}
	return regIncGammaLower(float64(k)/2, x/2)
}

// regIncGammaLower computes P(a,x), the regularized lower incomplete gamma,
// by series expansion for x < a+1 and continued fraction otherwise
// (Numerical Recipes gammp).
func regIncGammaLower(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	lg, _ := math.Lgamma(a)
	if x < a+1 {
		// Series.
		ap := a
		sum := 1.0 / a
		del := sum
		for n := 0; n < 500; n++ {
			ap++
			del *= x / ap
			sum += del
			if math.Abs(del) < math.Abs(sum)*1e-15 {
				break
			}
		}
		return sum * math.Exp(-x+a*math.Log(x)-lg)
	}
	// Continued fraction for Q(a,x), then P = 1-Q.
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	q := math.Exp(-x+a*math.Log(x)-lg) * h
	return 1 - q
}
