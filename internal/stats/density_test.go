package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	xs := []float64{0, 0.1, 0.2, 0.9, 1.0}
	bins := Histogram(xs, 2)
	if len(bins) != 2 {
		t.Fatalf("bins %d", len(bins))
	}
	if bins[0].Count != 3 || bins[1].Count != 2 {
		t.Fatalf("counts %d %d", bins[0].Count, bins[1].Count)
	}
	// Density integrates to 1.
	total := 0.0
	for _, b := range bins {
		total += b.Density * (b.Hi - b.Lo)
	}
	if !feq(total, 1, 1e-12) {
		t.Fatalf("density integral %g", total)
	}
	if Histogram(nil, 3) != nil || Histogram(xs, 0) != nil {
		t.Fatal("degenerate histogram should be nil")
	}
}

func TestHistogramAllEqual(t *testing.T) {
	bins := Histogram([]float64{2, 2, 2}, 4)
	n := 0
	for _, b := range bins {
		n += b.Count
	}
	if n != 3 {
		t.Fatalf("lost samples: %d", n)
	}
}

func TestKDEGaussianRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 8000)
	for i := range xs {
		xs[i] = 2 + 0.5*rng.NormFloat64()
	}
	k := NewKDE(xs)
	// Peak near the true density value at the mean.
	want := NormalPDF(2, 2, 0.5)
	if got := k.PDF(2); math.Abs(got-want)/want > 0.08 {
		t.Fatalf("KDE peak %g want %g", got, want)
	}
	// KDE integrates to ~1 over its curve.
	cx, cy := k.Curve(400)
	integral := 0.0
	for i := 1; i < len(cx); i++ {
		integral += 0.5 * (cy[i] + cy[i-1]) * (cx[i] - cx[i-1])
	}
	if math.Abs(integral-1) > 0.02 {
		t.Fatalf("KDE integral %g", integral)
	}
	if k.Bandwidth() <= 0 {
		t.Fatal("bandwidth must be positive")
	}
}

func TestQQNormalGaussianIsLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	xs := make([]float64, 4000)
	for i := range xs {
		xs[i] = 10 + 3*rng.NormFloat64()
	}
	nl := QQNonlinearity(xs)
	if nl > 0.05 {
		t.Fatalf("Gaussian QQ nonlinearity %g too high", nl)
	}
	// Strongly skewed data must score much higher.
	ys := make([]float64, 4000)
	for i := range ys {
		e := rng.ExpFloat64()
		ys[i] = e * e
	}
	nl2 := QQNonlinearity(ys)
	if nl2 < 3*nl {
		t.Fatalf("skewed QQ nonlinearity %g not >> Gaussian %g", nl2, nl)
	}
}

func TestQQNormalSeries(t *testing.T) {
	pts := QQNormal([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("len %d", len(pts))
	}
	// Samples sorted ascending, theoretical quantiles ascending.
	if pts[0].Sample != 1 || pts[2].Sample != 3 {
		t.Fatalf("samples %v", pts)
	}
	if !(pts[0].Theoretical < pts[1].Theoretical && pts[1].Theoretical < pts[2].Theoretical) {
		t.Fatalf("theoretical not increasing: %v", pts)
	}
	if QQNormal(nil) != nil {
		t.Fatal("empty QQ should be nil")
	}
}
