package stats

import (
	"math"
	"sort"
)

// HistogramBin is one bin of a Histogram.
type HistogramBin struct {
	Lo, Hi  float64
	Count   int
	Density float64 // count / (n * width): integrates to 1
}

// Histogram bins xs into nbins equal-width bins spanning [min, max].
// The final bin is closed on both ends so the maximum lands inside.
func Histogram(xs []float64, nbins int) []HistogramBin {
	if len(xs) == 0 || nbins <= 0 {
		return nil
	}
	lo, hi := Min(xs), Max(xs)
	if lo == hi {
		hi = lo + 1 // all-equal data: single degenerate span
	}
	w := (hi - lo) / float64(nbins)
	bins := make([]HistogramBin, nbins)
	for i := range bins {
		bins[i].Lo = lo + float64(i)*w
		bins[i].Hi = bins[i].Lo + w
	}
	for _, x := range xs {
		i := int((x - lo) / w)
		if i >= nbins {
			i = nbins - 1
		}
		if i < 0 {
			i = 0
		}
		bins[i].Count++
	}
	n := float64(len(xs))
	for i := range bins {
		bins[i].Density = float64(bins[i].Count) / (n * w)
	}
	return bins
}

// KDE is a Gaussian kernel density estimate.
type KDE struct {
	xs []float64
	h  float64 // bandwidth
}

// NewKDE builds a Gaussian KDE with Silverman's rule-of-thumb bandwidth,
// the same default as MATLAB's ksdensity that the paper's PDF figures use.
func NewKDE(xs []float64) *KDE {
	n := len(xs)
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	sd := StdDev(s)
	iqr := quantileSorted(s, 0.75) - quantileSorted(s, 0.25)
	sigma := sd
	if iqr > 0 && iqr/1.349 < sigma {
		sigma = iqr / 1.349
	}
	if sigma <= 0 || math.IsNaN(sigma) {
		sigma = 1
	}
	h := 0.9 * sigma * math.Pow(float64(n), -0.2)
	return &KDE{xs: s, h: h}
}

// Bandwidth returns the kernel bandwidth in data units.
func (k *KDE) Bandwidth() float64 { return k.h }

// PDF evaluates the density estimate at x.
func (k *KDE) PDF(x float64) float64 {
	if len(k.xs) == 0 {
		return math.NaN()
	}
	// Samples are sorted: restrict to the ±6h window.
	lo := sort.SearchFloat64s(k.xs, x-6*k.h)
	hi := sort.SearchFloat64s(k.xs, x+6*k.h)
	s := 0.0
	inv := 1 / k.h
	for _, xi := range k.xs[lo:hi] {
		z := (x - xi) * inv
		s += math.Exp(-0.5 * z * z)
	}
	return s / (float64(len(k.xs)) * k.h * math.Sqrt(2*math.Pi))
}

// Curve evaluates the KDE on a uniform grid of npts spanning the data range
// extended by three bandwidths, returning x and density series. This is the
// series plotted in the paper's probability-density figures.
func (k *KDE) Curve(npts int) (xs, ys []float64) {
	if len(k.xs) == 0 || npts < 2 {
		return nil, nil
	}
	lo := k.xs[0] - 3*k.h
	hi := k.xs[len(k.xs)-1] + 3*k.h
	xs = make([]float64, npts)
	ys = make([]float64, npts)
	for i := 0; i < npts; i++ {
		x := lo + (hi-lo)*float64(i)/float64(npts-1)
		xs[i] = x
		ys[i] = k.PDF(x)
	}
	return xs, ys
}

// QQPoint is one point of a quantile-quantile series: the theoretical
// standard-normal quantile paired with the matching sample order statistic.
type QQPoint struct {
	Theoretical float64 // standard normal quantile
	Sample      float64 // observed order statistic
}

// QQNormal returns the quantile-quantile series of xs against the standard
// normal, using the (i-0.5)/n plotting positions of MATLAB's qqplot.
// A linear series indicates Gaussian data; curvature is the non-Gaussian
// signature the paper highlights at low Vdd (Fig. 7) and for SRAM hold SNM
// (Fig. 9f).
func QQNormal(xs []float64) []QQPoint {
	n := len(xs)
	if n == 0 {
		return nil
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	out := make([]QQPoint, n)
	for i := 0; i < n; i++ {
		p := (float64(i) + 0.5) / float64(n)
		out[i] = QQPoint{Theoretical: StdNormalQuantile(p), Sample: s[i]}
	}
	return out
}

// QQNonlinearity quantifies the deviation of a QQ series from the straight
// line fit through its inter-quartile range, normalized by the sample
// standard deviation. Gaussian data gives values near zero; heavy tails or
// skew push it up. Used to assert the 0.9 V vs 0.55 V contrast in Fig. 7.
func QQNonlinearity(xs []float64) float64 {
	pts := QQNormal(xs)
	n := len(pts)
	if n < 8 {
		return math.NaN()
	}
	// Robust line through the 25th and 75th percentile points.
	q1t, q3t := StdNormalQuantile(0.25), StdNormalQuantile(0.75)
	q1s := Quantile(xs, 0.25)
	q3s := Quantile(xs, 0.75)
	slope := (q3s - q1s) / (q3t - q1t)
	inter := q1s - slope*q1t
	sd := StdDev(xs)
	if sd == 0 {
		return math.NaN()
	}
	// RMS deviation over the central 99% (extreme order statistics are
	// noisy even for Gaussian samples).
	loIdx := int(0.005 * float64(n))
	hiIdx := n - loIdx
	var s float64
	var cnt int
	for _, p := range pts[loIdx:hiIdx] {
		d := p.Sample - (inter + slope*p.Theoretical)
		s += d * d
		cnt++
	}
	return math.Sqrt(s/float64(cnt)) / sd
}
