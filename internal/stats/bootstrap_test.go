package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestBootstrapCICoversTruth(t *testing.T) {
	// Repeated draws: the 95% CI for σ should contain the true σ in
	// roughly 95% of trials (allow 85%+ with modest counts).
	rng := rand.New(rand.NewSource(4))
	trueSD := 2.0
	hits, trials := 0, 60
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 300)
		for i := range xs {
			xs[i] = trueSD * rng.NormFloat64()
		}
		lo, hi := StdDevCI(xs, int64(trial))
		if lo <= trueSD && trueSD <= hi {
			hits++
		}
		if lo >= hi || lo <= 0 {
			t.Fatalf("degenerate CI [%g, %g]", lo, hi)
		}
	}
	if frac := float64(hits) / float64(trials); frac < 0.85 {
		t.Fatalf("CI coverage %g", frac)
	}
}

func TestBootstrapCIWidthShrinksWithN(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	width := func(n int) float64 {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		lo, hi := StdDevCI(xs, 1)
		return hi - lo
	}
	if w4 := width(4000); w4 >= width(100)/3 {
		t.Fatalf("CI width did not shrink with N: %g", w4)
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	if lo, _ := BootstrapCI(nil, Mean, 100, 0.05, 1); !math.IsNaN(lo) {
		t.Fatal("empty input should give NaN")
	}
	if lo, _ := BootstrapCI([]float64{1, 2}, Mean, 1, 0.05, 1); !math.IsNaN(lo) {
		t.Fatal("too few resamples should give NaN")
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	a1, b1 := BootstrapCI(xs, Mean, 200, 0.1, 42)
	a2, b2 := BootstrapCI(xs, Mean, 200, 0.1, 42)
	if a1 != a2 || b1 != b2 {
		t.Fatal("same seed must reproduce the CI")
	}
}
