package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNormalPDFCDFKnown(t *testing.T) {
	if !feq(NormalPDF(0, 0, 1), 1/math.Sqrt(2*math.Pi), 1e-15) {
		t.Fatal("pdf(0)")
	}
	if !feq(NormalCDF(0, 0, 1), 0.5, 1e-15) {
		t.Fatal("cdf(0)")
	}
	if !feq(NormalCDF(1.959963984540054, 0, 1), 0.975, 1e-9) {
		t.Fatal("cdf(1.96)")
	}
	if !feq(NormalCDF(10, 5, 2), NormalCDF(2.5, 0, 1), 1e-15) {
		t.Fatal("cdf scaling")
	}
	if !math.IsNaN(NormalPDF(0, 0, -1)) {
		t.Fatal("pdf with bad sigma")
	}
}

func TestStdNormalQuantileKnown(t *testing.T) {
	cases := map[float64]float64{
		0.5:    0,
		0.975:  1.959963984540054,
		0.9999: 3.719016485455709,
		0.0001: -3.719016485455709,
		0.025:  -1.959963984540054,
	}
	for p, want := range cases {
		if got := StdNormalQuantile(p); math.Abs(got-want) > 1e-9 {
			t.Fatalf("quantile(%g) = %g want %g", p, got, want)
		}
	}
	if !math.IsInf(StdNormalQuantile(0), -1) || !math.IsInf(StdNormalQuantile(1), 1) {
		t.Fatal("endpoints")
	}
	if !math.IsNaN(StdNormalQuantile(-0.1)) || !math.IsNaN(StdNormalQuantile(1.1)) {
		t.Fatal("out of range")
	}
}

// Property: quantile and CDF are inverses.
func TestQuantileCDFRoundTripProperty(t *testing.T) {
	f := func(u float64) bool {
		p := math.Mod(math.Abs(u), 1)
		if p < 1e-10 || p > 1-1e-10 {
			return true
		}
		x := StdNormalQuantile(p)
		return math.Abs(NormalCDF(x, 0, 1)-p) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalQuantileScaling(t *testing.T) {
	if !feq(NormalQuantile(0.975, 10, 2), 10+2*1.959963984540054, 1e-9) {
		t.Fatal("scaled quantile")
	}
}

func TestChiSquareCDF(t *testing.T) {
	// k=2: CDF(x) = 1 - exp(-x/2).
	for _, x := range []float64{0.1, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x/2)
		if got := ChiSquareCDF(x, 2); math.Abs(got-want) > 1e-12 {
			t.Fatalf("chi2 cdf(%g;2) = %g want %g", x, got, want)
		}
	}
	// k=1: CDF(x) = erf(sqrt(x/2)).
	for _, x := range []float64{0.5, 1, 4} {
		want := math.Erf(math.Sqrt(x / 2))
		if got := ChiSquareCDF(x, 1); math.Abs(got-want) > 1e-12 {
			t.Fatalf("chi2 cdf(%g;1) = %g want %g", x, got, want)
		}
	}
	if ChiSquareCDF(-1, 3) != 0 {
		t.Fatal("negative x")
	}
}

func TestJarqueBera(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	gauss := make([]float64, 5000)
	for i := range gauss {
		gauss[i] = rng.NormFloat64()
	}
	stat, p := JarqueBera(gauss)
	if p < 0.001 {
		t.Fatalf("JB rejects Gaussian data: stat=%g p=%g", stat, p)
	}
	exp := make([]float64, 5000)
	for i := range exp {
		exp[i] = rng.ExpFloat64()
	}
	stat, p = JarqueBera(exp)
	if p > 1e-6 {
		t.Fatalf("JB fails to reject exponential data: stat=%g p=%g", stat, p)
	}
}

func TestAndersonDarling(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	gauss := make([]float64, 2000)
	for i := range gauss {
		gauss[i] = 5 + 2*rng.NormFloat64()
	}
	if a2 := AndersonDarling(gauss); a2 > 1.5 {
		t.Fatalf("AD too large for Gaussian: %g", a2)
	}
	unif := make([]float64, 2000)
	for i := range unif {
		unif[i] = rng.Float64()
	}
	if a2 := AndersonDarling(unif); a2 < 1.035 {
		t.Fatalf("AD fails to flag uniform data: %g", a2)
	}
}
