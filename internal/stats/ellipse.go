package stats

import (
	"math"

	"vstat/internal/linalg"
)

// Ellipse describes a confidence ellipse of a 2-D Gaussian: centre, semi-axes
// and orientation of the major axis. Paper Fig. 4 overlays the 1σ/2σ/3σ
// ellipses of the (Ion, log10 Ioff) cloud for the VS and BSIM models.
type Ellipse struct {
	CX, CY float64 // centre
	A, B   float64 // semi-major / semi-minor axis lengths
	Theta  float64 // rotation of the major axis, radians from +x
}

// ConfidenceEllipse fits a bivariate Gaussian to the paired samples and
// returns the ellipse containing the given number of standard deviations
// (nsigma=1,2,3 for the paper's 1σ/2σ/3σ contours).
//
// The contour at k σ is the set {x : (x-µ)ᵀ Σ⁻¹ (x-µ) = k²}; its semi-axes
// are k·√λ_i along the eigenvectors of Σ.
func ConfidenceEllipse(xs, ys []float64, nsigma float64) Ellipse {
	cxx := Variance(xs)
	cyy := Variance(ys)
	cxy := Covariance(xs, ys)
	cov := linalg.NewMatrixFromRows([][]float64{{cxx, cxy}, {cxy, cyy}})
	vals, vecs := linalg.SymEigen(cov)
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0
		}
	}
	return Ellipse{
		CX:    Mean(xs),
		CY:    Mean(ys),
		A:     nsigma * math.Sqrt(vals[0]),
		B:     nsigma * math.Sqrt(vals[1]),
		Theta: math.Atan2(vecs.At(1, 0), vecs.At(0, 0)),
	}
}

// Contains reports whether point (x, y) lies inside the ellipse.
func (e Ellipse) Contains(x, y float64) bool {
	dx, dy := x-e.CX, y-e.CY
	c, s := math.Cos(e.Theta), math.Sin(e.Theta)
	u := c*dx + s*dy
	v := -s*dx + c*dy
	if e.A == 0 || e.B == 0 {
		return false
	}
	return (u/e.A)*(u/e.A)+(v/e.B)*(v/e.B) <= 1
}

// Points returns n points tracing the ellipse boundary for plotting.
func (e Ellipse) Points(n int) (xs, ys []float64) {
	xs = make([]float64, n)
	ys = make([]float64, n)
	c, s := math.Cos(e.Theta), math.Sin(e.Theta)
	for i := 0; i < n; i++ {
		t := 2 * math.Pi * float64(i) / float64(n)
		u := e.A * math.Cos(t)
		v := e.B * math.Sin(t)
		xs[i] = e.CX + c*u - s*v
		ys[i] = e.CY + s*u + c*v
	}
	return xs, ys
}

// SigmaCoverage returns the theoretical probability mass of a bivariate
// Gaussian inside its k-sigma ellipse: 1 - exp(-k²/2).
func SigmaCoverage(nsigma float64) float64 {
	return 1 - math.Exp(-nsigma*nsigma/2)
}
