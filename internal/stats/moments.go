// Package stats implements the descriptive and distributional statistics
// used throughout the statistical-VS-model reproduction: moments, quantiles,
// histograms and kernel density estimates (for the paper's PDF figures),
// normal-distribution utilities and QQ series (for the quantile-quantile
// plots), normality tests (to quantify the non-Gaussian delay behaviour at
// low Vdd), covariance/correlation, and 2-D confidence ellipses (for the
// Ion–Ioff scatter of Fig. 4).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs; NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance; NaN for n < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	// Two-pass with compensation for numerical stability.
	var s, comp float64
	for _, x := range xs {
		d := x - m
		s += d * d
		comp += d
	}
	return (s - comp*comp/float64(n)) / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Skewness returns the bias-adjusted sample skewness (g1 with the standard
// small-sample correction); NaN for n < 3 or zero variance.
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return math.NaN()
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 <= 0 {
		return math.NaN()
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2)
}

// ExcessKurtosis returns the bias-adjusted sample excess kurtosis; NaN for
// n < 4 or zero variance.
func ExcessKurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return math.NaN()
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	m2 /= n
	m4 /= n
	if m2 <= 0 {
		return math.NaN()
	}
	g2 := m4/(m2*m2) - 3
	return ((n+1)*g2 + 6) * (n - 1) / ((n - 2) * (n - 3))
}

// Min returns the smallest element; NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element; NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the MATLAB/NumPy default).
// xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

// QuantilesSorted sorts xs in place once and evaluates many quantiles.
func Quantiles(xs []float64, qs []float64) []float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(s, q)
	}
	return out
}

func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return s[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	if lo >= n-1 {
		return s[n-1]
	}
	frac := h - float64(lo)
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Covariance returns the unbiased sample covariance of paired samples.
func Covariance(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) {
		panic("stats: Covariance length mismatch")
	}
	if n < 2 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	s := 0.0
	for i := range xs {
		s += (xs[i] - mx) * (ys[i] - my)
	}
	return s / float64(n-1)
}

// Correlation returns the Pearson correlation coefficient.
func Correlation(xs, ys []float64) float64 {
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return math.NaN()
	}
	return Covariance(xs, ys) / (sx * sy)
}

// Running accumulates streaming mean/variance via Welford's algorithm,
// so Monte Carlo loops can track statistics without storing samples.
type Running struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Push adds one observation.
func (r *Running) Push(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations pushed so far.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (NaN if empty).
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the running unbiased variance (NaN for n < 2).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return math.NaN()
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the running standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation (NaN if empty).
func (r *Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max returns the largest observation (NaN if empty).
func (r *Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}
