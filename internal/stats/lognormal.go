package stats

import (
	"math"
	"sort"
)

// LognormalFit holds the maximum-likelihood parameters of a lognormal
// distribution: ln X ~ N(Mu, Sigma²). Leakage currents under threshold-
// voltage mismatch are the canonical lognormal population (paper Fig. 6's
// 37× spread).
type LognormalFit struct {
	Mu, Sigma float64
}

// FitLognormal fits by moments of ln(x); non-positive samples are rejected
// by returning NaN parameters.
func FitLognormal(xs []float64) LognormalFit {
	logs := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x <= 0 {
			return LognormalFit{Mu: math.NaN(), Sigma: math.NaN()}
		}
		logs = append(logs, math.Log(x))
	}
	return LognormalFit{Mu: Mean(logs), Sigma: StdDev(logs)}
}

// Median returns exp(µ).
func (f LognormalFit) Median() float64 { return math.Exp(f.Mu) }

// Mean returns exp(µ+σ²/2).
func (f LognormalFit) Mean() float64 { return math.Exp(f.Mu + f.Sigma*f.Sigma/2) }

// Quantile returns the p-th quantile.
func (f LognormalFit) Quantile(p float64) float64 {
	return math.Exp(f.Mu + f.Sigma*StdNormalQuantile(p))
}

// CDF returns P(X ≤ x).
func (f LognormalFit) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return NormalCDF(math.Log(x), f.Mu, f.Sigma)
}

// SpreadRatio returns the ratio between the two symmetric tail quantiles,
// e.g. SpreadRatio(0.999) = q99.9/q0.1 — a robust version of the max/min
// spread the paper quotes for leakage.
func (f LognormalFit) SpreadRatio(p float64) float64 {
	return f.Quantile(p) / f.Quantile(1-p)
}

// YieldEstimate computes the fraction of samples inside a box of limits:
// frequency at least fMin and leakage at most leakMax — the parametric
// yield the paper says the statistical VS model can predict (Fig. 6).
func YieldEstimate(freq, leak []float64, fMin, leakMax float64) float64 {
	if len(freq) != len(leak) {
		panic("stats: YieldEstimate length mismatch")
	}
	if len(freq) == 0 {
		return math.NaN()
	}
	pass := 0
	for i := range freq {
		if freq[i] >= fMin && leak[i] <= leakMax {
			pass++
		}
	}
	return float64(pass) / float64(len(freq))
}

// EmpiricalCDF returns a function evaluating the sample CDF of xs.
func EmpiricalCDF(xs []float64) func(float64) float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	n := float64(len(s))
	return func(x float64) float64 {
		if len(s) == 0 {
			return math.NaN()
		}
		return float64(sort.SearchFloat64s(s, math.Nextafter(x, math.Inf(1)))) / n
	}
}

// KSDistance returns the Kolmogorov–Smirnov distance between the sample and
// a reference CDF — used to quantify how lognormal the leakage population is
// and how Gaussian the delay populations are.
func KSDistance(xs []float64, cdf func(float64) float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	d := 0.0
	for i, x := range s {
		f := cdf(x)
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		d = math.Max(d, math.Max(math.Abs(f-lo), math.Abs(f-hi)))
	}
	return d
}
