package stats

import (
	"math"
	"math/rand"
	"sort"
)

// BootstrapCI estimates a (1-alpha) percentile-bootstrap confidence
// interval for an arbitrary statistic of the sample. Monte Carlo σ
// estimates in the experiment tables carry sampling noise; the interval
// makes "VS matches golden" claims quantitative.
func BootstrapCI(xs []float64, stat func([]float64) float64, resamples int, alpha float64, seed int64) (lo, hi float64) {
	n := len(xs)
	if n == 0 || resamples < 2 {
		return math.NaN(), math.NaN()
	}
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, resamples)
	buf := make([]float64, n)
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[rng.Intn(n)]
		}
		vals[r] = stat(buf)
	}
	sort.Float64s(vals)
	return quantileSorted(vals, alpha/2), quantileSorted(vals, 1-alpha/2)
}

// StdDevCI is BootstrapCI specialized to the sample standard deviation with
// a 95 % level and 400 resamples — the tolerance band used when comparing
// the VS and golden Monte Carlo σ's.
func StdDevCI(xs []float64, seed int64) (lo, hi float64) {
	return BootstrapCI(xs, StdDev, 400, 0.05, seed)
}
