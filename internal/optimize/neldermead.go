package optimize

import (
	"math"
	"sort"

	"vstat/internal/linalg"
)

// NMOptions configures NelderMead.
type NMOptions struct {
	MaxIter int     // default 500*n
	TolF    float64 // simplex function-value spread (default 1e-12)
	TolX    float64 // simplex diameter (default 1e-10)
	Scale   float64 // initial simplex edge relative to |x0| (default 0.05)
}

// NelderMead minimizes f starting from x0 using the downhill simplex method
// with standard (1, 2, 0.5, 0.5) reflection/expansion/contraction/shrink
// coefficients. It is derivative-free and tolerant of mild noise, which
// makes it a good polishing stage after Levenberg–Marquardt on simulator-
// in-the-loop objectives.
func NelderMead(f func([]float64) float64, x0 []float64, opts NMOptions) ([]float64, float64) {
	n := len(x0)
	if opts.MaxIter <= 0 {
		opts.MaxIter = 500 * (n + 1)
	}
	if opts.TolF <= 0 {
		opts.TolF = 1e-12
	}
	if opts.TolX <= 0 {
		opts.TolX = 1e-10
	}
	if opts.Scale <= 0 {
		opts.Scale = 0.05
	}

	// Initial simplex: x0 plus per-coordinate perturbations.
	pts := make([][]float64, n+1)
	vals := make([]float64, n+1)
	pts[0] = linalg.VecClone(x0)
	for i := 1; i <= n; i++ {
		p := linalg.VecClone(x0)
		h := opts.Scale * math.Abs(p[i-1])
		if h == 0 {
			h = opts.Scale
		}
		p[i-1] += h
		pts[i] = p
	}
	for i := range pts {
		vals[i] = f(pts[i])
	}

	order := func() {
		idx := make([]int, n+1)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
		np := make([][]float64, n+1)
		nv := make([]float64, n+1)
		for k, i := range idx {
			np[k] = pts[i]
			nv[k] = vals[i]
		}
		copy(pts, np)
		copy(vals, nv)
	}

	for iter := 0; iter < opts.MaxIter; iter++ {
		order()
		// Convergence: function spread and simplex diameter.
		if math.Abs(vals[n]-vals[0]) <= opts.TolF*(1+math.Abs(vals[0])) {
			diam := 0.0
			for i := 1; i <= n; i++ {
				d := linalg.Norm2(linalg.VecSub(pts[i], pts[0]))
				if d > diam {
					diam = d
				}
			}
			if diam <= opts.TolX*(1+linalg.Norm2(pts[0])) {
				break
			}
		}
		// Centroid of all but the worst point.
		c := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				c[j] += pts[i][j]
			}
		}
		for j := range c {
			c[j] /= float64(n)
		}
		worst := pts[n]
		reflect := func(coef float64) []float64 {
			p := make([]float64, n)
			for j := range p {
				p[j] = c[j] + coef*(c[j]-worst[j])
			}
			return p
		}
		xr := reflect(1)
		fr := f(xr)
		switch {
		case fr < vals[0]:
			// Try expansion.
			xe := reflect(2)
			fe := f(xe)
			if fe < fr {
				pts[n], vals[n] = xe, fe
			} else {
				pts[n], vals[n] = xr, fr
			}
		case fr < vals[n-1]:
			pts[n], vals[n] = xr, fr
		default:
			// Contraction.
			var xc []float64
			if fr < vals[n] {
				xc = reflect(0.5) // outside
			} else {
				xc = reflect(-0.5) // inside
			}
			fc := f(xc)
			if fc < math.Min(fr, vals[n]) {
				pts[n], vals[n] = xc, fc
			} else {
				// Shrink toward the best point.
				for i := 1; i <= n; i++ {
					for j := 0; j < n; j++ {
						pts[i][j] = pts[0][j] + 0.5*(pts[i][j]-pts[0][j])
					}
					vals[i] = f(pts[i])
				}
			}
		}
	}
	order()
	return pts[0], vals[0]
}
