package optimize

import (
	"errors"
	"math"
)

// ErrNoBracket is returned when a root finder is called without a sign
// change on the given interval.
var ErrNoBracket = errors.New("optimize: interval does not bracket a root")

// Bisect finds a root of f on [a, b] (f(a) and f(b) of opposite sign) to the
// absolute tolerance tol. It is used by pass/fail searches such as setup and
// hold time extraction, where f is a ±1 pass/fail indicator and robustness
// matters more than order of convergence.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, ErrNoBracket
	}
	for i := 0; i < 200 && math.Abs(b-a) > tol; i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if math.Signbit(fm) == math.Signbit(fa) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b), nil
}

// Brent finds a root of f on a bracketing interval [a, b] using Brent's
// method (inverse quadratic interpolation with bisection fallback).
func Brent(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if math.Signbit(fa) == math.Signbit(fb) {
		return 0, ErrNoBracket
	}
	c, fc := a, fa
	d, e := b-a, b-a
	for iter := 0; iter < 200; iter++ {
		if math.Abs(fc) < math.Abs(fb) {
			a, b, c = b, c, b
			fa, fb, fc = fb, fc, fb
		}
		tol1 := 2*math.SmallestNonzeroFloat64*math.Abs(b) + 0.5*tol
		xm := 0.5 * (c - b)
		if math.Abs(xm) <= tol1 || fb == 0 {
			return b, nil
		}
		if math.Abs(e) >= tol1 && math.Abs(fa) > math.Abs(fb) {
			s := fb / fa
			var p, q float64
			if a == c {
				// Secant.
				p = 2 * xm * s
				q = 1 - s
			} else {
				// Inverse quadratic.
				q = fa / fc
				r := fb / fc
				p = s * (2*xm*q*(q-r) - (b-a)*(r-1))
				q = (q - 1) * (r - 1) * (s - 1)
			}
			if p > 0 {
				q = -q
			}
			p = math.Abs(p)
			if 2*p < math.Min(3*xm*q-math.Abs(tol1*q), math.Abs(e*q)) {
				e, d = d, p/q
			} else {
				d, e = xm, xm
			}
		} else {
			d, e = xm, xm
		}
		a, fa = b, fb
		if math.Abs(d) > tol1 {
			b += d
		} else {
			b += math.Copysign(tol1, xm)
		}
		fb = f(b)
		if (fb > 0) == (fc > 0) {
			c, fc = a, fa
			d, e = b-a, b-a
		}
	}
	return b, nil
}

// GoldenSection minimizes a unimodal f on [a, b] to tolerance tol and
// returns the minimizer.
func GoldenSection(f func(float64) float64, a, b, tol float64) float64 {
	const invPhi = 0.6180339887498949
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for math.Abs(b-a) > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return 0.5 * (a + b)
}
