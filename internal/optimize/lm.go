// Package optimize provides the small optimization and root-finding kernel
// used by the VS-model tool chain: Levenberg–Marquardt nonlinear least
// squares (nominal VS parameter extraction against golden-model I-V data),
// Nelder–Mead simplex (derivative-free refinement), and 1-D root
// finding/minimization (setup/hold bisection, SNM search).
package optimize

import (
	"errors"
	"math"

	"vstat/internal/linalg"
)

// ResidualFunc evaluates the residual vector r(x) of a least-squares problem
// min ½||r(x)||². The returned slice must have a fixed length across calls.
type ResidualFunc func(x []float64) []float64

// LMOptions configures LevenbergMarquardt.
type LMOptions struct {
	MaxIter  int     // maximum outer iterations (default 200)
	TolF     float64 // relative reduction of ||r||² to declare convergence (default 1e-12)
	TolX     float64 // relative step-size convergence threshold (default 1e-10)
	InitMu   float64 // initial damping (default 1e-3)
	FDStep   float64 // relative finite-difference step for the Jacobian (default 1e-6)
	Lower    []float64
	Upper    []float64 // optional box constraints (projected steps)
	MaxFails int       // consecutive rejected steps before giving up (default 30)
}

func (o *LMOptions) fill() {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.TolF <= 0 {
		o.TolF = 1e-12
	}
	if o.TolX <= 0 {
		o.TolX = 1e-10
	}
	if o.InitMu <= 0 {
		o.InitMu = 1e-3
	}
	if o.FDStep <= 0 {
		o.FDStep = 1e-6
	}
	if o.MaxFails <= 0 {
		o.MaxFails = 30
	}
}

// LMResult reports the outcome of LevenbergMarquardt.
type LMResult struct {
	X          []float64
	Cost       float64 // ½||r||²
	Iterations int
	Converged  bool
}

// ErrLMStalled is returned when damping grows without producing an
// acceptable step.
var ErrLMStalled = errors.New("optimize: Levenberg-Marquardt stalled")

// LevenbergMarquardt minimizes ½||r(x)||² starting at x0, using a numeric
// forward-difference Jacobian and the Marquardt diagonal scaling.
func LevenbergMarquardt(f ResidualFunc, x0 []float64, opts LMOptions) (LMResult, error) {
	opts.fill()
	n := len(x0)
	x := clamp(linalg.VecClone(x0), opts.Lower, opts.Upper)
	r := f(x)
	m := len(r)
	cost := 0.5 * linalg.Dot(r, r)
	mu := opts.InitMu
	res := LMResult{X: x, Cost: cost}

	jac := linalg.NewMatrix(m, n)
	fails := 0
	for iter := 0; iter < opts.MaxIter; iter++ {
		res.Iterations = iter + 1
		// Numeric Jacobian (forward differences).
		for j := 0; j < n; j++ {
			h := opts.FDStep * (math.Abs(x[j]) + opts.FDStep)
			xj := x[j]
			x[j] = xj + h
			if opts.Upper != nil && x[j] > opts.Upper[j] {
				// step backward instead when at the upper bound
				x[j] = xj - h
				h = -h
			}
			rp := f(x)
			x[j] = xj
			for i := 0; i < m; i++ {
				jac.Set(i, j, (rp[i]-r[i])/h)
			}
		}
		// Normal equations with Marquardt damping: (JᵀJ + µ diag(JᵀJ)) δ = -Jᵀr.
		jtj := linalg.NewMatrix(n, n)
		jtr := make([]float64, n)
		for i := 0; i < m; i++ {
			ri := jac.Row(i)
			for a := 0; a < n; a++ {
				jtr[a] -= ri[a] * r[i]
				for b := a; b < n; b++ {
					jtj.Add(a, b, ri[a]*ri[b])
				}
			}
		}
		for a := 0; a < n; a++ {
			for b := 0; b < a; b++ {
				jtj.Set(a, b, jtj.At(b, a))
			}
		}
		gradNorm := linalg.NormInf(jtr)
		if gradNorm < 1e-15*(1+cost) {
			res.Converged = true
			break
		}

		accepted := false
		for try := 0; try < 40; try++ {
			a := jtj.Clone()
			for d := 0; d < n; d++ {
				damp := mu * jtj.At(d, d)
				if damp <= 0 {
					damp = mu
				}
				a.Add(d, d, damp)
			}
			step, err := linalg.SolveLinear(a, jtr)
			if err != nil {
				mu *= 10
				continue
			}
			xNew := clamp(addVec(x, step), opts.Lower, opts.Upper)
			if vecEqual(xNew, x) {
				// The projected step is zero: x sits on an active bound and
				// the model step points outside the feasible box.
				res.Converged = true
				accepted = true
				break
			}
			rNew := f(xNew)
			costNew := 0.5 * linalg.Dot(rNew, rNew)
			if costNew < cost && !math.IsNaN(costNew) {
				// Accept.
				relStep := linalg.Norm2(linalg.VecSub(xNew, x)) / (1 + linalg.Norm2(x))
				relF := (cost - costNew) / (1 + cost)
				x = xNew
				r = rNew
				cost = costNew
				mu = math.Max(mu/3, 1e-14)
				accepted = true
				fails = 0
				if relF < opts.TolF && relStep < opts.TolX {
					res.Converged = true
				}
				break
			}
			mu *= 10
			if mu > 1e14 {
				break
			}
		}
		res.X = x
		res.Cost = cost
		if res.Converged {
			break
		}
		if !accepted {
			fails++
			if fails >= opts.MaxFails || mu > 1e14 {
				return res, ErrLMStalled
			}
		}
	}
	res.X = x
	res.Cost = cost
	return res, nil
}

func vecEqual(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func addVec(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

func clamp(x, lo, hi []float64) []float64 {
	if lo != nil {
		for i := range x {
			if x[i] < lo[i] {
				x[i] = lo[i]
			}
		}
	}
	if hi != nil {
		for i := range x {
			if x[i] > hi[i] {
				x[i] = hi[i]
			}
		}
	}
	return x
}
