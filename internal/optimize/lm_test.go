package optimize

import (
	"math"
	"math/rand"
	"testing"
)

func TestLMExponentialFit(t *testing.T) {
	// Fit y = a*exp(b*t) with a=2, b=-1.5 from clean data.
	ts := make([]float64, 30)
	ys := make([]float64, 30)
	for i := range ts {
		ts[i] = float64(i) * 0.1
		ys[i] = 2 * math.Exp(-1.5*ts[i])
	}
	f := func(x []float64) []float64 {
		r := make([]float64, len(ts))
		for i := range ts {
			r[i] = x[0]*math.Exp(x[1]*ts[i]) - ys[i]
		}
		return r
	}
	res, err := LevenbergMarquardt(f, []float64{1, -0.5}, LMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-6 || math.Abs(res.X[1]+1.5) > 1e-6 {
		t.Fatalf("LM got %v", res.X)
	}
	if res.Cost > 1e-15 {
		t.Fatalf("cost %g", res.Cost)
	}
}

func TestLMRosenbrockResidual(t *testing.T) {
	// Rosenbrock as LS: r = (10(y-x²), 1-x). Minimum (1,1).
	f := func(x []float64) []float64 {
		return []float64{10 * (x[1] - x[0]*x[0]), 1 - x[0]}
	}
	res, err := LevenbergMarquardt(f, []float64{-1.2, 1}, LMOptions{MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-7 || math.Abs(res.X[1]-1) > 1e-7 {
		t.Fatalf("got %v cost %g", res.X, res.Cost)
	}
}

func TestLMBoxConstraints(t *testing.T) {
	// Unconstrained minimum at x=(3), bounds cap at 2.
	f := func(x []float64) []float64 { return []float64{x[0] - 3} }
	res, err := LevenbergMarquardt(f, []float64{0}, LMOptions{
		Lower: []float64{-1}, Upper: []float64{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-9 {
		t.Fatalf("bounded LM got %v", res.X)
	}
}

func TestLMNoisyFitRecoversApproximately(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ts := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range ts {
		ts[i] = float64(i) * 0.05
		ys[i] = 5/(1+math.Exp(-(ts[i]-4))) + 0.01*rng.NormFloat64()
	}
	f := func(x []float64) []float64 {
		r := make([]float64, len(ts))
		for i := range ts {
			r[i] = x[0]/(1+math.Exp(-(ts[i]-x[1]))) - ys[i]
		}
		return r
	}
	res, err := LevenbergMarquardt(f, []float64{3, 3}, LMOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-5) > 0.05 || math.Abs(res.X[1]-4) > 0.05 {
		t.Fatalf("got %v", res.X)
	}
}

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-1)*(x[0]-1) + 10*(x[1]+2)*(x[1]+2)
	}
	x, v := NelderMead(f, []float64{5, 5}, NMOptions{})
	if math.Abs(x[0]-1) > 1e-5 || math.Abs(x[1]+2) > 1e-5 {
		t.Fatalf("NM got %v (f=%g)", x, v)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	x, v := NelderMead(f, []float64{-1.2, 1}, NMOptions{MaxIter: 20000})
	if v > 1e-8 {
		t.Fatalf("NM Rosenbrock got %v (f=%g)", x, v)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Fatalf("bisect %g", root)
	}
	if _, err := Bisect(func(x float64) float64 { return 1 }, 0, 1, 1e-6); err != ErrNoBracket {
		t.Fatalf("expected ErrNoBracket, got %v", err)
	}
	// Endpoint roots.
	r, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-9)
	if err != nil || r != 0 {
		t.Fatalf("endpoint root %g %v", r, err)
	}
}

func TestBrent(t *testing.T) {
	root, err := Brent(func(x float64) float64 { return math.Cos(x) - x }, 0, 1, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-0.7390851332151607) > 1e-10 {
		t.Fatalf("brent %g", root)
	}
	if _, err := Brent(func(x float64) float64 { return 1 + x*x }, -1, 1, 1e-9); err != ErrNoBracket {
		t.Fatalf("expected ErrNoBracket, got %v", err)
	}
}

func TestGoldenSection(t *testing.T) {
	min := GoldenSection(func(x float64) float64 { return (x - 1.7) * (x - 1.7) }, -10, 10, 1e-10)
	if math.Abs(min-1.7) > 1e-8 {
		t.Fatalf("golden %g", min)
	}
}
