package device_test

import (
	"math"
	"testing"

	"vstat/internal/device"
	"vstat/internal/vsmodel"
)

func TestKind(t *testing.T) {
	if device.NMOS.String() != "NMOS" || device.PMOS.String() != "PMOS" {
		t.Fatal("Kind.String")
	}
	if device.NMOS.Polarity() != 1 || device.PMOS.Polarity() != -1 {
		t.Fatal("Kind.Polarity")
	}
}

func TestChargesOps(t *testing.T) {
	c := device.Charges{Qd: 1, Qg: 2, Qs: 3, Qb: 4}
	n := c.Neg()
	if n.Qd != -1 || n.Qg != -2 || n.Qs != -3 || n.Qb != -4 {
		t.Fatal("Neg")
	}
	s := c.SwapDS()
	if s.Qd != 3 || s.Qs != 1 || s.Qg != 2 || s.Qb != 4 {
		t.Fatal("SwapDS")
	}
	if c.Sum() != 10 {
		t.Fatal("Sum")
	}
}

func TestEvalDerivsMatchesCentralDifferences(t *testing.T) {
	n := vsmodel.NMOS40(1e-6)
	vd, vg, vs, vb := 0.6, 0.7, 0.0, 0.0
	d := device.EvalDerivs(&n, vd, vg, vs, vb)

	gm := device.Gm(&n, vd, vg, vs, vb)
	gds := device.Gds(&n, vd, vg, vs, vb)
	if math.Abs(d.GId[1]-gm) > 0.02*math.Abs(gm) {
		t.Fatalf("GId[G]=%g vs central gm=%g", d.GId[1], gm)
	}
	if math.Abs(d.GId[0]-gds) > 0.02*math.Abs(gds)+1e-9 {
		t.Fatalf("GId[D]=%g vs central gds=%g", d.GId[0], gds)
	}
	cgg := device.Cgg(&n, vd, vg, vs, vb)
	if math.Abs(d.CQ[1][1]-cgg) > 0.02*math.Abs(cgg) {
		t.Fatalf("CQ[G][G]=%g vs central Cgg=%g", d.CQ[1][1], cgg)
	}
}

func TestCapMatrixColumnSumsZero(t *testing.T) {
	// Charge neutrality implies each column of ∂Q/∂V sums to ~0.
	n := vsmodel.NMOS40(1e-6)
	d := device.EvalDerivs(&n, 0.5, 0.8, 0.1, 0)
	for j := 0; j < 4; j++ {
		sum := d.CQ[0][j] + d.CQ[1][j] + d.CQ[2][j] + d.CQ[3][j]
		if math.Abs(sum) > 1e-18 {
			t.Fatalf("column %d of cap matrix sums to %g", j, sum)
		}
	}
}

func TestKCLOfDerivRow(t *testing.T) {
	// ∂Id/∂(all terminals moved together) = 0: current depends on voltage
	// differences only.
	n := vsmodel.NMOS40(1e-6)
	d := device.EvalDerivs(&n, 0.6, 0.7, 0, 0)
	sum := d.GId[0] + d.GId[1] + d.GId[2] + d.GId[3]
	scale := math.Abs(d.GId[0]) + math.Abs(d.GId[1]) + math.Abs(d.GId[2]) + math.Abs(d.GId[3])
	if math.Abs(sum) > 1e-4*scale {
		t.Fatalf("GId row sums to %g (scale %g)", sum, scale)
	}
}

func TestGdsPositiveInSaturation(t *testing.T) {
	n := vsmodel.NMOS40(1e-6)
	if g := device.Gds(&n, 0.9, 0.9, 0, 0); g <= 0 {
		t.Fatalf("gds = %g in saturation", g)
	}
	if g := device.Gm(&n, 0.9, 0.9, 0, 0); g <= 0 {
		t.Fatalf("gm = %g", g)
	}
	if c := device.Cgg(&n, 0, 0.9, 0, 0); c <= 0 {
		t.Fatalf("Cgg = %g", c)
	}
}
