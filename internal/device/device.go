// Package device defines the terminal-level abstraction shared by every
// compact MOSFET model in this repository (the Virtual Source model and the
// BSIM-like golden reference), plus finite-difference helpers that derive
// the conductances and capacitance matrix the circuit simulator stamps.
//
// Conventions:
//   - Terminal order is always D, G, S, B.
//   - Voltages are absolute node voltages in volts.
//   - Ids is the channel current flowing from the drain terminal through the
//     device to the source terminal (positive into D, out of S). An NMOS
//     with Vds > 0 in strong inversion has Ids > 0; an "on" PMOS pulling its
//     drain high has Ids < 0.
//   - Charges are the terminal charges in coulombs with the same sign
//     convention as node charge (current into terminal = dQ/dt).
package device

// Kind distinguishes n-channel from p-channel devices.
type Kind int

const (
	NMOS Kind = iota
	PMOS
)

// String returns "NMOS" or "PMOS".
func (k Kind) String() string {
	if k == PMOS {
		return "PMOS"
	}
	return "NMOS"
}

// Polarity returns +1 for NMOS and -1 for PMOS; models use it to map a
// p-channel problem onto the equivalent n-channel one.
func (k Kind) Polarity() float64 {
	if k == PMOS {
		return -1
	}
	return 1
}

// Charges holds the four terminal charges of a MOSFET.
type Charges struct {
	Qd, Qg, Qs, Qb float64
}

// Neg returns the element-wise negation (used for p-channel sign mapping).
func (c Charges) Neg() Charges {
	return Charges{Qd: -c.Qd, Qg: -c.Qg, Qs: -c.Qs, Qb: -c.Qb}
}

// SwapDS exchanges the drain and source charges (used when a model swaps
// terminals internally for Vds < 0).
func (c Charges) SwapDS() Charges {
	return Charges{Qd: c.Qs, Qg: c.Qg, Qs: c.Qd, Qb: c.Qb}
}

// Sum returns Qd+Qg+Qs+Qb; charge-neutral models return ~0.
func (c Charges) Sum() float64 { return c.Qd + c.Qg + c.Qs + c.Qb }

// Eval bundles the outputs of one model evaluation.
type Eval struct {
	Id float64 // channel current, A
	Q  Charges // terminal charges, C
}

// Device is a four-terminal MOSFET compact model instance: a parameter card
// bound to a geometry (and, for statistical instances, to a set of local
// variation deltas).
type Device interface {
	Kind() Kind
	// Eval returns the channel current and terminal charges at the given
	// absolute terminal voltages.
	Eval(vd, vg, vs, vb float64) Eval
	// Width and Length return the drawn geometry in meters.
	Width() float64
	Length() float64
}

// Deltas carries the five statistical VS parameter perturbations of paper
// Table I (absolute SI units). The same structure perturbs the golden
// model's corresponding native parameters.
type Deltas struct {
	DVT0  float64 // V
	DL    float64 // m (effective channel length)
	DW    float64 // m (effective channel width)
	DMu   float64 // m²/(V·s)
	DCinv float64 // F/m²
}

// Varier is a Device whose parameters can be perturbed by local-mismatch
// deltas, yielding an independent statistical instance.
type Varier interface {
	Device
	WithDeltas(d Deltas) Device
}

// FDStep is the voltage step used by the finite-difference derivative
// helpers. It is large enough to dominate float64 cancellation on
// femto-coulomb charges and small enough that model curvature over the step
// is negligible for Newton iterations.
const FDStep = 1e-4

// Derivs holds a model evaluation together with the first-order derivatives
// the MNA stamps need.
type Derivs struct {
	Eval
	// GId[j] = ∂Id/∂V_j with j indexing D, G, S, B.
	GId [4]float64
	// CQ[i][j] = ∂Q_i/∂V_j with i, j indexing D, G, S, B.
	CQ [4][4]float64
}

// NativeDerivs is the optional fast path: models that can produce their
// derivative bundle analytically (or semi-analytically, e.g. through the
// implicit function theorem around an internal solve) implement it and are
// preferred by EvalDerivs.
type NativeDerivs interface {
	EvalDerivs4(vd, vg, vs, vb float64) Derivs
}

// EvalDerivs evaluates the device and its derivatives, using the model's
// native path when available and central finite differences otherwise.
// Currents and charges depend only on terminal voltage *differences*, so
// the four derivative columns sum to zero; the body column is recovered
// from that invariance, cutting the FD cost to 6 extra model evaluations.
func EvalDerivs(d Device, vd, vg, vs, vb float64) Derivs {
	if nd, ok := d.(NativeDerivs); ok {
		return nd.EvalDerivs4(vd, vg, vs, vb)
	}
	return evalDerivsFD(d, vd, vg, vs, vb)
}

// EvalDerivsFD always uses the finite-difference path (exported for
// cross-checking native implementations in tests).
func EvalDerivsFD(d Device, vd, vg, vs, vb float64) Derivs {
	return evalDerivsFD(d, vd, vg, vs, vb)
}

// evalDerivsFD differences each of the D, G, S terminals centrally — the
// same O(h²) stencil the Gm/Gds/Cgg helpers have always used, so the FD
// fallback and the characterization helpers agree on truncation error.
func evalDerivsFD(d Device, vd, vg, vs, vb float64) Derivs {
	base := d.Eval(vd, vg, vs, vb)
	out := Derivs{Eval: base}
	v := [4]float64{vd, vg, vs, vb}
	for j := 0; j < 3; j++ { // D, G, S
		vp, vm := v, v
		vp[j] += FDStep
		vm[j] -= FDStep
		ep := d.Eval(vp[0], vp[1], vp[2], vp[3])
		em := d.Eval(vm[0], vm[1], vm[2], vm[3])
		out.GId[j] = (ep.Id - em.Id) / (2 * FDStep)
		out.CQ[0][j] = (ep.Q.Qd - em.Q.Qd) / (2 * FDStep)
		out.CQ[1][j] = (ep.Q.Qg - em.Q.Qg) / (2 * FDStep)
		out.CQ[2][j] = (ep.Q.Qs - em.Q.Qs) / (2 * FDStep)
		out.CQ[3][j] = (ep.Q.Qb - em.Q.Qb) / (2 * FDStep)
	}
	out.GId[3] = -(out.GId[0] + out.GId[1] + out.GId[2])
	for k := 0; k < 4; k++ {
		out.CQ[k][3] = -(out.CQ[k][0] + out.CQ[k][1] + out.CQ[k][2])
	}
	return out
}

// Gm returns ∂Id/∂Vg at the given bias, routed through EvalDerivs so models
// with a native derivative path (vsmodel, bsim) use it; models without one
// fall back to the central-difference stencil.
func Gm(d Device, vd, vg, vs, vb float64) float64 {
	return EvalDerivs(d, vd, vg, vs, vb).GId[1]
}

// Gds returns ∂Id/∂Vd at the given bias (native when available).
func Gds(d Device, vd, vg, vs, vb float64) float64 {
	return EvalDerivs(d, vd, vg, vs, vb).GId[0]
}

// Cgg returns the total gate capacitance ∂Qg/∂Vg at the given bias, the
// quantity the paper uses as the C-V extraction target (Cgg@Vdd). Like Gm
// and Gds it prefers the model's native derivative bundle.
func Cgg(d Device, vd, vg, vs, vb float64) float64 {
	return EvalDerivs(d, vd, vg, vs, vb).CQ[1][1]
}
