package device

// Batched evaluation seam. A Monte Carlo run advances K statistical samples
// of the same topology in lockstep; each circuit device position then holds
// K model instances that differ only in their Pelgrom-varied parameters.
// BatchDevice evaluates all K lanes of one device position in a single call
// over structure-of-arrays storage, letting a model hoist sample-invariant
// subexpressions and keep the per-lane latency chains (exp/log) overlapped.
//
// The contract that makes lockstep batching safe is *per-lane bit identity*:
// an implementation must produce, for every lane, exactly the float64 bits
// the scalar EvalDerivs path produces for that lane's device at the same
// terminal voltages. Lanes may share hoisted inputs only when the hoisted
// expression is computed with the same operations and associativity as the
// scalar path.

// EvalMode selects how much of the derivative bundle a lane needs in one
// batched call. Lanes evolve independently inside a lockstep Newton round:
// one lane may need a fresh Jacobian while its neighbor reuses a carried LU
// and only needs values.
type EvalMode uint8

const (
	// EvalSkip leaves the lane's outputs untouched (lane done/evicted).
	EvalSkip EvalMode = iota
	// EvalValues computes Id and Q only (chord iterations, history updates).
	EvalValues
	// EvalFull computes the complete Derivs bundle (Jacobian refresh).
	EvalFull
)

// DerivsBatch is the SoA mirror of Derivs over K lanes. Charge and
// derivative rows index terminals in the usual D, G, S, B order.
type DerivsBatch struct {
	K   int
	Id  []float64
	Q   [4][]float64    // rows Qd, Qg, Qs, Qb
	GId [4][]float64    // GId[j][lane] = ∂Id/∂V_j
	CQ  [4][4][]float64 // CQ[i][j][lane] = ∂Q_i/∂V_j
}

// NewDerivsBatch allocates a bundle for k lanes backed by one contiguous
// slab, so a batched kernel's stores stay within a few cache pages.
func NewDerivsBatch(k int) *DerivsBatch {
	const fields = 1 + 4 + 4 + 16
	slab := make([]float64, fields*k)
	cut := func() []float64 {
		s := slab[:k:k]
		slab = slab[k:]
		return s
	}
	b := &DerivsBatch{K: k, Id: cut()}
	for i := 0; i < 4; i++ {
		b.Q[i] = cut()
	}
	for j := 0; j < 4; j++ {
		b.GId[j] = cut()
	}
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			b.CQ[i][j] = cut()
		}
	}
	return b
}

// Lane gathers lane l into a scalar Derivs value.
func (b *DerivsBatch) Lane(l int) Derivs {
	var d Derivs
	b.LaneInto(l, &d)
	return d
}

// LaneInto gathers lane l directly into d, avoiding the 200-byte struct
// return copy of Lane on the per-round hot path.
func (b *DerivsBatch) LaneInto(l int, d *Derivs) {
	d.Id = b.Id[l]
	d.Q = Charges{Qd: b.Q[0][l], Qg: b.Q[1][l], Qs: b.Q[2][l], Qb: b.Q[3][l]}
	for j := 0; j < 4; j++ {
		d.GId[j] = b.GId[j][l]
		for i := 0; i < 4; i++ {
			d.CQ[i][j] = b.CQ[i][j][l]
		}
	}
}

// SetLaneDerivs scatters a scalar Derivs value into lane l.
func (b *DerivsBatch) SetLaneDerivs(l int, d Derivs) {
	b.Id[l] = d.Id
	b.Q[0][l], b.Q[1][l], b.Q[2][l], b.Q[3][l] = d.Q.Qd, d.Q.Qg, d.Q.Qs, d.Q.Qb
	for j := 0; j < 4; j++ {
		b.GId[j][l] = d.GId[j]
		for i := 0; i < 4; i++ {
			b.CQ[i][j][l] = d.CQ[i][j]
		}
	}
}

// BatchDevice evaluates K lanes of one circuit device position at once.
type BatchDevice interface {
	// Lanes returns the lane capacity K.
	Lanes() int
	// SetLane binds lane l to a statistical model instance, hoisting that
	// lane's sample-invariant subexpressions. It reports false when the
	// instance's concrete type is not batchable by this implementation
	// (the caller then falls back to a scalar-loop batch).
	SetLane(l int, d Device) bool
	// EvalDerivsBatch evaluates every lane whose mode is not EvalSkip at
	// that lane's terminal voltages, writing into out. EvalValues lanes
	// get Id and Q only; EvalFull lanes get the whole bundle. Outputs of
	// EvalSkip lanes are left untouched. Must not allocate.
	EvalDerivsBatch(vd, vg, vs, vb []float64, mode []EvalMode, out *DerivsBatch)
}

// BatchBuilder is implemented by model parameter cards that provide a
// dedicated SoA batch kernel.
type BatchBuilder interface {
	NewBatch(k int) BatchDevice
}

// NewBatch builds a K-lane batch evaluator for the given prototype device:
// the model's native kernel when the prototype offers one, otherwise a
// scalar-loop fallback with identical semantics.
func NewBatch(k int, proto Device) BatchDevice {
	if bb, ok := proto.(BatchBuilder); ok {
		return bb.NewBatch(k)
	}
	return NewFallbackBatch(k)
}

// FallbackBatch implements BatchDevice by looping the scalar EvalDerivs /
// Eval paths per lane. It accepts any Device, providing batching semantics
// (though not batching speed) for models without an SoA kernel, e.g. the
// BSIM-like golden reference.
type FallbackBatch struct {
	devs []Device
}

// NewFallbackBatch returns a scalar-loop batch with k lanes.
func NewFallbackBatch(k int) *FallbackBatch {
	return &FallbackBatch{devs: make([]Device, k)}
}

// Lanes returns the lane capacity.
func (f *FallbackBatch) Lanes() int { return len(f.devs) }

// SetLane binds lane l; the fallback accepts every Device.
func (f *FallbackBatch) SetLane(l int, d Device) bool {
	f.devs[l] = d
	return true
}

// EvalDerivsBatch loops the scalar paths lane by lane.
func (f *FallbackBatch) EvalDerivsBatch(vd, vg, vs, vb []float64, mode []EvalMode, out *DerivsBatch) {
	for l, d := range f.devs {
		switch mode[l] {
		case EvalFull:
			out.SetLaneDerivs(l, EvalDerivs(d, vd[l], vg[l], vs[l], vb[l]))
		case EvalValues:
			e := d.Eval(vd[l], vg[l], vs[l], vb[l])
			out.Id[l] = e.Id
			out.Q[0][l], out.Q[1][l], out.Q[2][l], out.Q[3][l] = e.Q.Qd, e.Q.Qg, e.Q.Qs, e.Q.Qb
		}
	}
}
