package device

import (
	"math"
	"testing"
	"time"
)

// constDevice is a minimal Device with a fixed evaluation.
type constDevice struct{ id float64 }

func (d constDevice) Kind() Kind      { return NMOS }
func (d constDevice) Width() float64  { return 1e-6 }
func (d constDevice) Length() float64 { return 40e-9 }
func (d constDevice) Eval(vd, vg, vs, vb float64) Eval {
	return Eval{Id: d.id, Q: Charges{Qd: 1e-18}}
}

func TestFaultCardWindow(t *testing.T) {
	f := &FaultCard{Inner: constDevice{id: 1e-6}, Mode: FaultNaN, After: 2, Until: 4}
	for i := 0; i < 6; i++ {
		e := f.Eval(0.9, 0.9, 0, 0)
		inWindow := i >= 2 && i < 4
		if got := math.IsNaN(e.Id); got != inWindow {
			t.Fatalf("call %d: NaN=%v, want %v", i, got, inWindow)
		}
	}
	if f.Calls() != 6 {
		t.Fatalf("Calls = %d", f.Calls())
	}
}

func TestFaultCardPermanentWindow(t *testing.T) {
	f := &FaultCard{Inner: constDevice{id: 1e-6}, Mode: FaultNaN} // Until=0: forever
	for i := 0; i < 3; i++ {
		if !math.IsNaN(f.Eval(0, 0, 0, 0).Id) {
			t.Fatalf("call %d should fault", i)
		}
	}
}

func TestFaultCardNoConvergeAlternates(t *testing.T) {
	f := &FaultCard{Inner: constDevice{id: 1e-6}, Mode: FaultNoConverge}
	a := f.Eval(0, 0, 0, 0).Id
	b := f.Eval(0, 0, 0, 0).Id
	if a != 1.0 || b != -1.0 {
		t.Fatalf("alternating injected current: got %g, %g", a, b)
	}
}

func TestFaultCardFresh(t *testing.T) {
	f := &FaultCard{Inner: constDevice{id: 1e-6}, Mode: FaultNaN, After: 1}
	f.Eval(0, 0, 0, 0) // consume the clean call
	if !math.IsNaN(f.Eval(0, 0, 0, 0).Id) {
		t.Fatal("original card should now fault")
	}
	g := f.Fresh()
	if g.Calls() != 0 {
		t.Fatalf("Fresh calls = %d", g.Calls())
	}
	if math.IsNaN(g.Eval(0, 0, 0, 0).Id) {
		t.Fatal("fresh card faulted on its first (clean) call")
	}
}

func TestFaultCardPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f := &FaultCard{Inner: constDevice{}, Mode: FaultPanic}
	f.Eval(0, 0, 0, 0)
}

func TestFaultCardHangBlocksUntilRelease(t *testing.T) {
	release := make(chan struct{})
	f := &FaultCard{Inner: constDevice{id: 1e-6}, Mode: FaultHang, Release: release}
	done := make(chan Eval, 1)
	go func() { done <- f.Eval(0.9, 0.9, 0, 0) }()
	select {
	case <-done:
		t.Fatal("FaultHang eval returned before release")
	case <-time.After(10 * time.Millisecond):
	}
	close(release)
	select {
	case e := <-done:
		if e.Id != 1e-6 {
			t.Fatalf("released eval Id = %g, want the inner model's 1e-6", e.Id)
		}
	case <-time.After(time.Second):
		t.Fatal("FaultHang eval did not return after release")
	}
}

func TestFaultCardHangTimeBounded(t *testing.T) {
	f := &FaultCard{Inner: constDevice{id: 1e-6}, Mode: FaultHang, HangFor: 5 * time.Millisecond}
	start := time.Now()
	e := f.Eval(0.9, 0.9, 0, 0)
	if el := time.Since(start); el < 5*time.Millisecond {
		t.Fatalf("HangFor-bounded eval returned after %v, want >= 5ms", el)
	}
	if e.Id != 1e-6 {
		t.Fatalf("post-hang eval Id = %g, want the inner model's 1e-6", e.Id)
	}
}

func TestFaultCardSlowEval(t *testing.T) {
	f := &FaultCard{Inner: constDevice{id: 1e-6}, Mode: FaultSlowEval,
		SlowFor: 2 * time.Millisecond, After: 1}
	if e := f.Eval(0, 0, 0, 0); e.Id != 1e-6 {
		t.Fatalf("pre-window eval Id = %g", e.Id)
	}
	start := time.Now()
	e := f.Eval(0, 0, 0, 0)
	if el := time.Since(start); el < 2*time.Millisecond {
		t.Fatalf("slow eval returned after %v, want >= 2ms", el)
	}
	if e.Id != 1e-6 {
		t.Fatalf("slow eval Id = %g, want the inner model's value", e.Id)
	}
}

func TestFaultCardForwardsGeometry(t *testing.T) {
	f := &FaultCard{Inner: constDevice{id: 1e-6}}
	if f.Kind() != NMOS || f.Width() != 1e-6 || f.Length() != 40e-9 {
		t.Fatal("geometry not forwarded")
	}
	// The wrapper must NOT implement NativeDerivs: window placement relies
	// on the finite-difference eval cadence.
	if _, ok := any(f).(NativeDerivs); ok {
		t.Fatal("FaultCard must not forward the native-derivative fast path")
	}
}
