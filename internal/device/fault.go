package device

import (
	"math"
	"time"
)

// FaultMode selects how a FaultCard misbehaves inside its active window.
type FaultMode int

const (
	// FaultNaN makes Eval return NaN current and charges, modeling a
	// parameter card driven outside its model's domain (exp overflow,
	// sqrt of a negative surface potential, ...).
	FaultNaN FaultMode = iota
	// FaultNoConverge makes Eval return a large current whose sign flips
	// on every call, so Newton's residual oscillates and never meets
	// tolerance — a deterministic stand-in for the far-tail samples where
	// the iteration limit cycles.
	FaultNoConverge
	// FaultPanic makes Eval panic, exercising the Monte Carlo driver's
	// per-sample panic isolation.
	FaultPanic
	// FaultHang makes Eval block — on the Release channel when set, else
	// for HangFor — before evaluating normally: a deterministic stand-in
	// for a model evaluation that wedges (native library stall, pathological
	// internal iteration), used to test the hang watchdog without real
	// multi-second stalls.
	FaultHang
	// FaultSlowEval makes Eval sleep SlowFor before evaluating normally,
	// modeling a slow-but-alive sample for per-sample wall budgets: the
	// solver still reaches iteration boundaries, so the cooperative
	// deadline check (not the watchdog) catches it.
	FaultSlowEval
)

// FaultCard wraps a Device and deterministically injects a fault during an
// evaluation-count window: calls [After, Until) misbehave per Mode, all
// other calls pass through to the wrapped model untouched. It exists to
// test the solver rescue ladder and the Monte Carlo failure policies with
// reproducible failures at chosen samples and chosen depths into a solve.
//
// The wrapper deliberately does not forward the NativeDerivs fast path:
// the simulator falls back to finite differences, so the call counter
// advances by a fixed number of Eval calls per Newton iteration and the
// window placement is predictable. A FaultCard counts calls in plain
// (non-atomic) fields and must not be shared across goroutines; give each
// Monte Carlo sample its own card via Fresh.
type FaultCard struct {
	Inner Device
	Mode  FaultMode
	// After is the number of clean Eval calls before the fault window
	// opens (0 faults immediately).
	After int64
	// Until closes the window: calls numbered >= Until behave normally
	// again. Until <= 0 keeps the window open forever.
	Until int64

	// HangFor bounds a FaultHang block when Release is nil (so tests cannot
	// deadlock); SlowFor is the per-call FaultSlowEval sleep.
	HangFor time.Duration
	SlowFor time.Duration
	// Release, when set, is what a FaultHang evaluation blocks on: close it
	// to let abandoned sample goroutines finish and exit.
	Release <-chan struct{}

	calls int64
}

// Fresh returns a copy with the call counter rewound, for handing the same
// fault program to multiple samples.
func (f *FaultCard) Fresh() *FaultCard {
	c := *f
	c.calls = 0
	return &c
}

// Calls returns how many Eval calls the card has seen.
func (f *FaultCard) Calls() int64 { return f.calls }

// Kind returns the wrapped device's kind.
func (f *FaultCard) Kind() Kind { return f.Inner.Kind() }

// Width returns the wrapped device's drawn width.
func (f *FaultCard) Width() float64 { return f.Inner.Width() }

// Length returns the wrapped device's drawn length.
func (f *FaultCard) Length() float64 { return f.Inner.Length() }

// Eval evaluates the wrapped model, misbehaving inside the fault window.
func (f *FaultCard) Eval(vd, vg, vs, vb float64) Eval {
	n := f.calls
	f.calls++
	if n < f.After || (f.Until > 0 && n >= f.Until) {
		return f.Inner.Eval(vd, vg, vs, vb)
	}
	switch f.Mode {
	case FaultNoConverge:
		id := 1.0
		if n&1 == 1 {
			id = -1.0
		}
		e := f.Inner.Eval(vd, vg, vs, vb)
		e.Id = id
		return e
	case FaultPanic:
		panic("device: injected fault panic")
	case FaultHang:
		if f.Release != nil {
			if f.HangFor > 0 {
				select {
				case <-f.Release:
				case <-time.After(f.HangFor):
				}
			} else {
				<-f.Release
			}
		} else {
			time.Sleep(f.HangFor)
		}
		return f.Inner.Eval(vd, vg, vs, vb)
	case FaultSlowEval:
		time.Sleep(f.SlowFor)
		return f.Inner.Eval(vd, vg, vs, vb)
	default:
		nan := math.NaN()
		return Eval{Id: nan, Q: Charges{Qd: nan, Qg: nan, Qs: nan, Qb: nan}}
	}
}
