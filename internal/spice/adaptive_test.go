package spice

import (
	"math"
	"testing"

	"vstat/internal/vsmodel"
)

func TestAdaptiveRCMatchesAnalytic(t *testing.T) {
	c := New()
	in := c.Node("in")
	out := c.Node("out")
	R, C := 1000.0, 1e-9 // τ = 1 µs
	c.AddV("VIN", in, Gnd, Pulse{V0: 0, V1: 1, Delay: 0, Rise: 1e-9, Fall: 1e-9, Width: 1})
	c.AddR("R", in, out, R)
	c.AddC("C", out, Gnd, C)
	res, err := c.TransientAdaptive(AdaptiveOpts{
		Stop: 5e-6, MaxStep: 100e-9, TolV: 2e-4, UIC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tau := R * C
	for _, tm := range []float64{0.5e-6, 1e-6, 2e-6, 4e-6} {
		want := 1 - math.Exp(-tm/tau)
		got := res.At(out, tm)
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("t=%g: %g want %g", tm, got, want)
		}
	}
}

func TestAdaptiveUsesFewerStepsOnQuietTail(t *testing.T) {
	build := func() (*Circuit, int) {
		c := New()
		in := c.Node("in")
		out := c.Node("out")
		c.AddV("VIN", in, Gnd, Pulse{V0: 0, V1: 1, Delay: 10e-12, Rise: 10e-12, Fall: 10e-12, Width: 1})
		c.AddR("R", in, out, 1000)
		c.AddC("C", out, Gnd, 100e-15) // τ = 100 ps, then a long quiet tail
		return c, out
	}
	cA, _ := build()
	resA, err := cA.TransientAdaptive(AdaptiveOpts{Stop: 10e-9, MaxStep: 500e-12, MinStep: 1e-12, TolV: 1e-3, UIC: true})
	if err != nil {
		t.Fatal(err)
	}
	cF, _ := build()
	resF, err := cF.Transient(TranOpts{Stop: 10e-9, Step: 1e-12, UIC: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(resA.Time) >= len(resF.Time)/5 {
		t.Fatalf("adaptive used %d steps vs fixed %d — too many", len(resA.Time), len(resF.Time))
	}
	// And still agrees at the end.
	if d := math.Abs(resA.At(0, 10e-9) - resF.At(0, 10e-9)); d > 2e-3 {
		t.Fatalf("endpoint mismatch %g", d)
	}
}

func TestAdaptiveInverterDelayMatchesFixed(t *testing.T) {
	build := func() (*Circuit, int, int) {
		c := New()
		vdd := c.Node("vdd")
		in := c.Node("in")
		out := c.Node("out")
		c.AddV("VDD", vdd, Gnd, DC(0.9))
		c.AddV("VIN", in, Gnd, Pulse{V0: 0, V1: 0.9, Delay: 30e-12, Rise: 10e-12, Fall: 10e-12, Width: 200e-12})
		n := vsmodel.NMOS40(300e-9)
		p := vsmodel.PMOS40(600e-9)
		c.AddMOS("MN", out, in, Gnd, Gnd, &n)
		c.AddMOS("MP", out, in, vdd, vdd, &p)
		c.AddC("CL", out, Gnd, 2e-15)
		return c, in, out
	}
	delay := func(res *TranResult, in, out int) float64 {
		tIn := math.NaN()
		v := res.V(in)
		for k := 1; k < len(res.Time); k++ {
			if v[k-1] < 0.45 && v[k] >= 0.45 {
				tIn = res.Time[k]
				break
			}
		}
		vo := res.V(out)
		for k := 1; k < len(res.Time); k++ {
			if res.Time[k] > tIn && vo[k-1] > 0.45 && vo[k] <= 0.45 {
				f := (0.45 - vo[k-1]) / (vo[k] - vo[k-1])
				return res.Time[k-1] + f*(res.Time[k]-res.Time[k-1]) - tIn
			}
		}
		return math.NaN()
	}
	cA, inA, outA := build()
	resA, err := cA.TransientAdaptive(AdaptiveOpts{Stop: 300e-12, MaxStep: 5e-12, MinStep: 0.1e-12, TolV: 2e-3})
	if err != nil {
		t.Fatal(err)
	}
	cF, inF, outF := build()
	resF, err := cF.Transient(TranOpts{Stop: 300e-12, Step: 0.5e-12})
	if err != nil {
		t.Fatal(err)
	}
	dA, dF := delay(resA, inA, outA), delay(resF, inF, outF)
	if math.IsNaN(dA) || math.IsNaN(dF) {
		t.Fatalf("delay NaN: %g %g", dA, dF)
	}
	if math.Abs(dA-dF)/dF > 0.1 {
		t.Fatalf("adaptive delay %g vs fixed %g", dA, dF)
	}
}

func TestAdaptiveInvalidOpts(t *testing.T) {
	c := New()
	c.AddR("R", c.Node("a"), Gnd, 100)
	if _, err := c.TransientAdaptive(AdaptiveOpts{Stop: 0, MaxStep: 1e-12}); err == nil {
		t.Fatal("expected error")
	}
	if _, err := c.TransientAdaptive(AdaptiveOpts{Stop: 1e-9, MaxStep: 0}); err == nil {
		t.Fatal("expected error")
	}
}
