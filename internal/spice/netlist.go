package spice

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"vstat/internal/bsim"
	"vstat/internal/device"
	"vstat/internal/vsmodel"
)

// Deck is a parsed netlist: the circuit plus the analysis cards found.
type Deck struct {
	Circuit *Circuit
	Title   string

	// Analyses, in card order.
	OPRequested bool
	DCCards     []DCCard
	TranCards   []TranCard
	ACCards     []ACCard
	ICs         map[string]float64 // node name -> initial voltage
}

// DCCard is a ".dc <vsource> start stop step" sweep request.
type DCCard struct {
	Source            string
	Start, Stop, Step float64
}

// TranCard is a ".tran step stop [uic]" request.
type TranCard struct {
	Step, Stop float64
	UIC        bool
}

// ACCard is a ".ac <vsource> fstart fstop npts" request (log-spaced sweep
// with a unit AC excitation on the named source).
type ACCard struct {
	Source        string
	FStart, FStop float64
	Points        int
}

// ParseNetlist reads a SPICE-subset netlist:
//
//	M<name> d g s b nmos|pmos|nmos_golden|pmos_golden W=<v> L=<v>
//	R<name> a b <ohms>        C<name> a b <farads>
//	V<name> p n DC <v> | PULSE(v0 v1 td tr tf pw per) | PWL(t1 v1 t2 v2 ...)
//	I<name> p n DC <amps>
//	.op    .dc V<name> start stop step    .tran step stop [uic]
//	.ac V<name> fstart fstop npts    .ic v(node)=<v> ...    .end
//
// The first line is the title (as in SPICE). Values accept engineering
// suffixes (f p n u m k meg g t). MOSFET models nmos/pmos are the Virtual
// Source cards; nmos_golden/pmos_golden are the BSIM-like reference cards.
func ParseNetlist(r io.Reader) (*Deck, error) {
	d := &Deck{Circuit: New(), ICs: map[string]float64{}}
	sc := bufio.NewScanner(r)
	lineNo := 0
	first := true
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if first {
			first = false
			// SPICE convention: the first line is always the title.
			d.Title = line
			continue
		}
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		if err := d.parseLine(line); err != nil {
			return nil, fmt.Errorf("netlist line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

func (d *Deck) parseLine(line string) error {
	fields := strings.Fields(line)
	card := strings.ToLower(fields[0])
	c := d.Circuit
	switch {
	case card == ".end":
		return nil
	case card == ".op":
		d.OPRequested = true
		return nil
	case card == ".dc":
		if len(fields) != 5 {
			return fmt.Errorf(".dc wants <src> start stop step")
		}
		start, err1 := ParseValue(fields[2])
		stop, err2 := ParseValue(fields[3])
		step, err3 := ParseValue(fields[4])
		if err := firstErr(err1, err2, err3); err != nil {
			return err
		}
		if step <= 0 || stop < start {
			return fmt.Errorf(".dc bad range")
		}
		d.DCCards = append(d.DCCards, DCCard{Source: fields[1], Start: start, Stop: stop, Step: step})
		return nil
	case card == ".tran":
		if len(fields) < 3 {
			return fmt.Errorf(".tran wants step stop [uic]")
		}
		step, err1 := ParseValue(fields[1])
		stop, err2 := ParseValue(fields[2])
		if err := firstErr(err1, err2); err != nil {
			return err
		}
		uic := len(fields) > 3 && strings.EqualFold(fields[3], "uic")
		d.TranCards = append(d.TranCards, TranCard{Step: step, Stop: stop, UIC: uic})
		return nil
	case card == ".ac":
		if len(fields) != 5 {
			return fmt.Errorf(".ac wants <src> fstart fstop npts")
		}
		f0, err1 := ParseValue(fields[2])
		f1, err2 := ParseValue(fields[3])
		np, err3 := ParseValue(fields[4])
		if err := firstErr(err1, err2, err3); err != nil {
			return err
		}
		if f0 <= 0 || f1 < f0 || np < 1 {
			return fmt.Errorf(".ac bad range")
		}
		d.ACCards = append(d.ACCards, ACCard{Source: fields[1], FStart: f0, FStop: f1, Points: int(np)})
		return nil
	case card == ".ic":
		for _, tok := range fields[1:] {
			name, val, ok := parseICToken(tok)
			if !ok {
				return fmt.Errorf("bad .ic token %q", tok)
			}
			d.ICs[name] = val
		}
		return nil
	case strings.HasPrefix(card, "."):
		return fmt.Errorf("unsupported card %s", fields[0])
	}

	name := fields[0]
	switch line[0] {
	case 'R', 'r':
		if len(fields) != 4 {
			return fmt.Errorf("resistor wants 2 nodes + value")
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return err
		}
		c.AddR(name, c.Node(fields[1]), c.Node(fields[2]), v)
	case 'C', 'c':
		if len(fields) != 4 {
			return fmt.Errorf("capacitor wants 2 nodes + value")
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return err
		}
		c.AddC(name, c.Node(fields[1]), c.Node(fields[2]), v)
	case 'V', 'v', 'I', 'i':
		if len(fields) < 4 {
			return fmt.Errorf("source wants 2 nodes + waveform")
		}
		w, err := parseWaveform(strings.Join(fields[3:], " "))
		if err != nil {
			return err
		}
		p, n := c.Node(fields[1]), c.Node(fields[2])
		if line[0] == 'V' || line[0] == 'v' {
			c.AddV(name, p, n, w)
		} else {
			c.AddI(name, p, n, w)
		}
	case 'M', 'm':
		if len(fields) != 8 {
			return fmt.Errorf("mosfet wants d g s b model W= L=")
		}
		w, l, err := parseWL(fields[6], fields[7])
		if err != nil {
			return err
		}
		dev, err := modelInstance(fields[5], w, l)
		if err != nil {
			return err
		}
		c.AddMOS(name, c.Node(fields[1]), c.Node(fields[2]), c.Node(fields[3]), c.Node(fields[4]), dev)
	default:
		return fmt.Errorf("unknown element %q", name)
	}
	return nil
}

func parseICToken(tok string) (node string, val float64, ok bool) {
	lower := strings.ToLower(tok)
	if !strings.HasPrefix(lower, "v(") {
		return "", 0, false
	}
	close := strings.Index(tok, ")")
	eq := strings.Index(tok, "=")
	if close < 0 || eq < close {
		return "", 0, false
	}
	node = tok[2:close]
	v, err := ParseValue(tok[eq+1:])
	if err != nil {
		return "", 0, false
	}
	return node, v, true
}

func parseWL(wTok, lTok string) (w, l float64, err error) {
	get := func(tok, key string) (float64, error) {
		lower := strings.ToLower(tok)
		if !strings.HasPrefix(lower, key+"=") {
			return 0, fmt.Errorf("expected %s=<value>, got %q", key, tok)
		}
		return ParseValue(tok[len(key)+1:])
	}
	w, err = get(wTok, "w")
	if err != nil {
		return 0, 0, err
	}
	l, err = get(lTok, "l")
	return w, l, err
}

func modelInstance(model string, w, l float64) (device.Device, error) {
	switch strings.ToLower(model) {
	case "nmos":
		p := vsmodel.NMOS40(w).WithGeometry(w, l)
		return &p, nil
	case "pmos":
		p := vsmodel.PMOS40(w).WithGeometry(w, l)
		return &p, nil
	case "nmos_golden":
		p := bsim.NMOS40(w).WithGeometry(w, l)
		return &p, nil
	case "pmos_golden":
		p := bsim.PMOS40(w).WithGeometry(w, l)
		return &p, nil
	}
	return nil, fmt.Errorf("unknown model %q", model)
}

func parseWaveform(spec string) (Waveform, error) {
	s := strings.TrimSpace(spec)
	lower := strings.ToLower(s)
	switch {
	case strings.HasPrefix(lower, "dc"):
		v, err := ParseValue(strings.TrimSpace(s[2:]))
		if err != nil {
			return nil, err
		}
		return DC(v), nil
	case strings.HasPrefix(lower, "pulse"):
		args, err := parseParen(s[5:])
		if err != nil {
			return nil, err
		}
		if len(args) < 6 || len(args) > 7 {
			return nil, fmt.Errorf("PULSE wants 6-7 args, got %d", len(args))
		}
		p := Pulse{V0: args[0], V1: args[1], Delay: args[2], Rise: args[3], Fall: args[4], Width: args[5]}
		if len(args) == 7 {
			p.Period = args[6]
		}
		return p, nil
	case strings.HasPrefix(lower, "pwl"):
		args, err := parseParen(s[3:])
		if err != nil {
			return nil, err
		}
		if len(args) < 2 || len(args)%2 != 0 {
			return nil, fmt.Errorf("PWL wants time/value pairs")
		}
		p := PWL{}
		for i := 0; i < len(args); i += 2 {
			p.T = append(p.T, args[i])
			p.V = append(p.V, args[i+1])
		}
		return p, nil
	default:
		// Bare number = DC.
		v, err := ParseValue(s)
		if err != nil {
			return nil, fmt.Errorf("unknown waveform %q", spec)
		}
		return DC(v), nil
	}
}

func parseParen(s string) ([]float64, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("expected parenthesized args, got %q", s)
	}
	inner := strings.ReplaceAll(s[1:len(s)-1], ",", " ")
	var out []float64
	for _, tok := range strings.Fields(inner) {
		v, err := ParseValue(tok)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseValue parses a SPICE number with engineering suffix: f(1e-15),
// p(1e-12), n(1e-9), u(1e-6), m(1e-3), k(1e3), meg(1e6), g(1e9), t(1e12).
// Trailing unit letters after the suffix are ignored (e.g. "40nm", "1pF").
func ParseValue(tok string) (float64, error) {
	t := strings.ToLower(strings.TrimSpace(tok))
	if t == "" {
		return 0, fmt.Errorf("empty value")
	}
	// Split numeric prefix.
	i := 0
	for i < len(t) {
		ch := t[i]
		if ch >= '0' && ch <= '9' || ch == '+' || ch == '-' || ch == '.' {
			i++
			continue
		}
		if ch == 'e' && i+1 < len(t) && (t[i+1] == '+' || t[i+1] == '-' || t[i+1] >= '0' && t[i+1] <= '9') {
			i += 2
			for i < len(t) && t[i] >= '0' && t[i] <= '9' {
				i++
			}
			continue
		}
		break
	}
	num, err := strconv.ParseFloat(t[:i], 64)
	if err != nil {
		return 0, fmt.Errorf("bad number %q", tok)
	}
	suffix := t[i:]
	switch {
	case suffix == "":
		return num, nil
	case strings.HasPrefix(suffix, "meg"):
		return num * 1e6, nil
	case suffix[0] == 'f':
		return num * 1e-15, nil
	case suffix[0] == 'p':
		return num * 1e-12, nil
	case suffix[0] == 'n':
		return num * 1e-9, nil
	case suffix[0] == 'u':
		return num * 1e-6, nil
	case suffix[0] == 'm':
		return num * 1e-3, nil
	case suffix[0] == 'k':
		return num * 1e3, nil
	case suffix[0] == 'g':
		return num * 1e9, nil
	case suffix[0] == 't':
		return num * 1e12, nil
	case suffix[0] == 'v' || suffix[0] == 'a' || suffix[0] == 's' || suffix[0] == 'h':
		return num, nil // bare unit letters
	}
	return 0, fmt.Errorf("unknown suffix %q", suffix)
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
