package spice

// Sparse linear core: stamp-list assembly into a CSC Jacobian plus the
// symbolic-once sparse LU (internal/linalg/sparselu.go). The stamp map —
// one CSC value-slot index per (element, entry) stamp site — is computed
// once per topology; every later assembly writes device stamps straight
// into the values array with no map lookups, no dense n² zeroing, and no
// allocation. The pattern is the union of the DC and transient stamps and
// always contains every node diagonal, so gmin stepping, pseudo-transient
// anchoring, and the whole rescue ladder hit reserved slots and reuse the
// same symbolic factorization. See DESIGN.md §9.

import (
	"os"

	"vstat/internal/device"
	"vstat/internal/linalg"
)

// LinearCore selects the Jacobian factorization backend of a Circuit.
type LinearCore int32

const (
	// CoreAuto (the zero value) defers to the VSTAT_LINEAR_CORE environment
	// override ("dense" or "sparse"), falling back to the size heuristic:
	// sparse at or above sparseMinN unknowns, dense below.
	CoreAuto LinearCore = iota
	CoreDense
	CoreSparse
)

// String returns the benchmark-facing name of the core.
func (lc LinearCore) String() string {
	switch lc {
	case CoreDense:
		return "dense"
	case CoreSparse:
		return "sparse"
	default:
		return "auto"
	}
}

// sparseMinN is the auto-mode cutover: below it the dense factor's tiny
// constant beats the tape interpreter; at and above it the O(nnz) stamp +
// tape path wins. Every benchmark unit except trivial two-node fixtures
// sits above the cutover.
const sparseMinN = 6

// spGrowthLimit bounds the element growth of a refactorization under the
// frozen pivot order; beyond it the order is numerically degenerate for the
// current sample's values and the circuit re-runs symbolic analysis (rare,
// allocating).
const spGrowthLimit = 1e8

// envCore is the process-wide VSTAT_LINEAR_CORE override, read once.
var envCore = func() LinearCore {
	switch os.Getenv("VSTAT_LINEAR_CORE") {
	case "dense":
		return CoreDense
	case "sparse":
		return CoreSparse
	}
	return CoreAuto
}()

// useSparseCore resolves the circuit's LinearCore knob, then the env
// override, then the size heuristic, to a concrete backend choice.
func (c *Circuit) useSparseCore() bool {
	core := c.LinearCore
	if core == CoreAuto {
		core = envCore
	}
	switch core {
	case CoreDense:
		return false
	case CoreSparse:
		return true
	}
	return c.unknowns() >= sparseMinN
}

// stampSlots holds the precomputed CSC value slot for every stamp site, in
// the exact order assembleSparse visits them. A slot of -1 marks a ground
// row or column (stamp discarded, mirroring the dense addJ guard).
type stampSlots struct {
	diag []int32 // per node: (n,n) — shared by gmin, pseudo-transient, devices
	rs   []int32 // per resistor: (a,a) (a,b) (b,a) (b,b)
	cs   []int32 // per capacitor: (a,a) (a,b) (b,a) (b,b)
	vs   []int32 // per vsource: (p,br) (n,br) (br,p) (br,n)
	mos  []int32 // per MOSFET: 4 (d,term_j), 4 (s,term_j), 16 (term_k,term_j)
}

// buildStampMap enumerates every stamp site of the current topology (the
// union of the DC and transient patterns), builds the CSC structure, and
// resolves each site to its value slot. Runs once per topology; swapping
// device parameter cards (SetMOSDevice/SetVSource) keeps the map, so pooled
// Monte Carlo samples never rebuild it.
func (c *Circuit) buildStampMap() {
	n := c.unknowns()
	nNodes := len(c.nodeNames)
	b := linalg.NewSparseBuilder(n)
	site := func(row, col int) int32 {
		if row == Gnd || col == Gnd {
			return -1
		}
		return int32(b.Add(row, col))
	}
	sl := &c.spSlots
	sl.diag = sl.diag[:0]
	for i := 0; i < nNodes; i++ {
		sl.diag = append(sl.diag, site(i, i))
	}
	sl.rs = sl.rs[:0]
	for i := range c.rs {
		r := &c.rs[i]
		sl.rs = append(sl.rs, site(r.a, r.a), site(r.a, r.b), site(r.b, r.a), site(r.b, r.b))
	}
	sl.cs = sl.cs[:0]
	for i := range c.cs {
		cp := &c.cs[i]
		sl.cs = append(sl.cs, site(cp.a, cp.a), site(cp.a, cp.b), site(cp.b, cp.a), site(cp.b, cp.b))
	}
	sl.vs = sl.vs[:0]
	for i := range c.vs {
		v := &c.vs[i]
		br := nNodes + v.branch
		sl.vs = append(sl.vs, site(v.p, br), site(v.n, br), site(br, v.p), site(br, v.n))
	}
	sl.mos = sl.mos[:0]
	for i := range c.mos {
		m := &c.mos[i]
		term := [4]int{m.d, m.g, m.s, m.b}
		for j := 0; j < 4; j++ {
			sl.mos = append(sl.mos, site(m.d, term[j]))
		}
		for j := 0; j < 4; j++ {
			sl.mos = append(sl.mos, site(m.s, term[j]))
		}
		for k := 0; k < 4; k++ {
			for j := 0; j < 4; j++ {
				sl.mos = append(sl.mos, site(term[k], term[j]))
			}
		}
	}
	sp, slots := b.Build()
	remap := func(a []int32) {
		for i, s := range a {
			if s >= 0 {
				a[i] = slots[s]
			}
		}
	}
	remap(sl.diag)
	remap(sl.rs)
	remap(sl.cs)
	remap(sl.vs)
	remap(sl.mos)
	c.sp = sp
	c.spLU = nil // pattern changed: next factor re-runs symbolic analysis
	c.spReady = true
}

// addSlot accumulates v into CSC slot s; s < 0 marks a discarded ground
// stamp.
func addSlot(av []float64, s int32, v float64) {
	if s >= 0 {
		av[s] += v
	}
}

// stampQuad stamps the two-terminal conductance pattern (+g, -g; -g, +g)
// through four precomputed slots.
func stampQuad(av []float64, q []int32, g float64) {
	addSlot(av, q[0], g)
	addSlot(av, q[1], -g)
	addSlot(av, q[2], -g)
	addSlot(av, q[3], g)
}

// assembleSparse is assemble with wantJ=true for the sparse core: the
// residual is computed by the same element walk in the same floating-point
// order, while Jacobian stamps go through the precomputed slot lists
// straight into the CSC values array. Residual-only chord iterations keep
// using assemble(..., nil, ctx, false) — that path touches no Jacobian of
// either core.
func (c *Circuit) assembleSparse(x, f []float64, ctx *assembleCtx) {
	for i := range f {
		f[i] = 0
	}
	av := c.sp.Val
	for i := range av {
		av[i] = 0
	}
	sl := &c.spSlots
	nNodes := len(c.nodeNames)

	addF := func(node int, v float64) {
		if node != Gnd {
			f[node] += v
		}
	}

	// Global gmin to ground, onto the reserved node diagonals.
	g := c.Gmin + ctx.gminExtra
	for n := 0; n < nNodes; n++ {
		f[n] += g * x[n]
		av[sl.diag[n]] += g
	}

	// Pseudo-transient anchor (see assemble): also pure node-diagonal.
	if ctx.ptG > 0 {
		for n := 0; n < nNodes; n++ {
			f[n] += ctx.ptG * (x[n] - ctx.ptRef[n])
			av[sl.diag[n]] += ctx.ptG
		}
	}

	for i := range c.rs {
		r := &c.rs[i]
		iv := r.g * (nv(x, r.a) - nv(x, r.b))
		addF(r.a, iv)
		addF(r.b, -iv)
		stampQuad(av, sl.rs[4*i:4*i+4], r.g)
	}

	for i := range c.vs {
		v := &c.vs[i]
		br := nNodes + v.branch
		ib := x[br]
		addF(v.p, ib)
		addF(v.n, -ib)
		q := sl.vs[4*i : 4*i+4]
		addSlot(av, q[0], 1)
		addSlot(av, q[1], -1)
		f[br] = nv(x, v.p) - nv(x, v.n) - ctx.srcScale*v.wave.At(ctx.t)
		addSlot(av, q[2], 1)
		addSlot(av, q[3], -1)
	}

	for i := range c.is {
		s := &c.is[i]
		iv := ctx.srcScale * s.wave.At(ctx.t)
		addF(s.p, iv)
		addF(s.n, -iv)
	}

	if ctx.tran != nil {
		ts := ctx.tran
		for i := range c.cs {
			cp := &c.cs[i]
			q := cp.c * (nv(x, cp.a) - nv(x, cp.b))
			var iq, geq float64
			if ts.trap && !ts.firstBE {
				iq = 2*(q-ts.qPrevCap[i])/ts.h - ts.iPrevCap[i]
				geq = 2 * cp.c / ts.h
			} else {
				iq = (q - ts.qPrevCap[i]) / ts.h
				geq = cp.c / ts.h
			}
			addF(cp.a, iq)
			addF(cp.b, -iq)
			stampQuad(av, sl.cs[4*i:4*i+4], geq)
		}
	}

	cacheEv := ctx.tran != nil
	if cacheEv && len(c.evCache) != len(c.mos) {
		c.evCache = make([]device.Eval, len(c.mos))
	}
	for i := range c.mos {
		m := &c.mos[i]
		term := [4]int{m.d, m.g, m.s, m.b}
		ms := sl.mos[24*i : 24*i+24]
		var dv device.Derivs
		if c.devPreSet {
			dv = c.devPre[i] // lockstep batch driver pre-evaluated this device
		} else {
			dv = device.EvalDerivs(m.dev,
				nv(x, m.d), nv(x, m.g), nv(x, m.s), nv(x, m.b))
			c.stats.ModelEvals++
		}
		ev := dv.Eval
		if cacheEv {
			c.evCache[i] = ev
		}
		addF(m.d, ev.Id)
		addF(m.s, -ev.Id)
		for j := 0; j < 4; j++ {
			addSlot(av, ms[j], dv.GId[j])
			addSlot(av, ms[4+j], -dv.GId[j])
		}
		if ctx.tran != nil {
			ts := ctx.tran
			q := [4]float64{ev.Q.Qd, ev.Q.Qg, ev.Q.Qs, ev.Q.Qb}
			fac := 1 / ts.h
			if ts.trap && !ts.firstBE {
				fac = 2 / ts.h
			}
			for k := 0; k < 4; k++ {
				var iq float64
				if ts.trap && !ts.firstBE {
					iq = 2*(q[k]-ts.qPrevMos[i][k])/ts.h - ts.iPrevMos[i][k]
				} else {
					iq = (q[k] - ts.qPrevMos[i][k]) / ts.h
				}
				addF(term[k], iq)
				for j := 0; j < 4; j++ {
					addSlot(av, ms[8+4*k+j], fac*dv.CQ[k][j])
				}
			}
		}
	}
}

// factorSparse refreshes the sparse numeric factors from the just-assembled
// CSC values. The first call per pattern runs the one-time symbolic
// analysis (pivot order, fill, elimination tape) against the current
// values; every later call replays the allocation-free tape. A zero pivot
// or runaway element growth means the frozen pivot order has gone
// numerically degenerate for this sample — re-run the (allocating, rare)
// analysis and retry once before reporting a singular Jacobian.
func (c *Circuit) factorSparse() error {
	if c.spLU == nil {
		lu, err := linalg.NewSparseLU(c.sp)
		if err != nil {
			return err
		}
		c.spLU = lu
		return c.spLU.Refactor(c.sp)
	}
	err := c.spLU.Refactor(c.sp)
	if err == nil && c.spLU.Growth() <= spGrowthLimit {
		return nil
	}
	c.stats.SparseRepivots++
	if aerr := c.spLU.Analyze(c.sp); aerr != nil {
		return aerr
	}
	return c.spLU.Refactor(c.sp)
}

// MatrixInfo reports the MNA system size, the Jacobian's structural
// nonzero count (building the stamp map if needed), and whether the
// resolved linear core is sparse — the numbers cmd/vsbench records next to
// its per-unit timings.
func (c *Circuit) MatrixInfo() (n, nnz int, sparse bool) {
	if !c.spReady {
		c.buildStampMap()
	}
	return c.unknowns(), c.sp.NNZ(), c.useSparseCore()
}
