package spice

import (
	"errors"
	"fmt"
	"math"
)

// ErrNonFiniteSolution is returned when a Newton iterate, a candidate
// solution vector, or the implicit-integrator charge history turns NaN/Inf.
// Such vectors are rejected before they can enter the charge history, so a
// single ill-behaved model evaluation cannot silently poison the rest of a
// transient (or, downstream, a Monte Carlo population).
var ErrNonFiniteSolution = errors.New("spice: non-finite solution vector")

// Stage identifies the analysis phase (and rescue-ladder rung) a solve
// failed in or was rescued by.
type Stage string

// Ladder stages, in escalation order. DC solves climb
// dc-newton → dc-gmin → dc-source → dc-pseudo-tran; transient steps climb
// tran → tran-halve (backward-Euler sub-stepping with a halving budget),
// with an additional fast→exact fallback rung in fast mode.
const (
	StageDCNewton  Stage = "dc-newton"
	StageDCGmin    Stage = "dc-gmin"
	StageDCSource  Stage = "dc-source"
	StageDCPseudo  Stage = "dc-pseudo-tran"
	StageTran      Stage = "tran"
	StageTranHalve Stage = "tran-halve"
)

// ConvergenceError is the typed failure of one Newton solve (or of a whole
// rescue ladder, in which case Stage names the last rung tried). It
// preserves where the solver got stuck: the analysis stage, the simulation
// time, the iteration budget spent, and the worst node with its KCL
// residual at the last iterate — the facts a variability study needs to
// classify and report a failed sample without re-running it.
type ConvergenceError struct {
	Stage    Stage   // analysis stage / last rescue rung tried
	Time     float64 // simulation time of the failing solve (0 for DC)
	Iters    int     // Newton iterations spent in the failing solve
	Node     string  // worst node (largest KCL residual) at the last iterate
	Residual float64 // that node's residual, A
	DeltaV   float64 // last Newton update max-norm over nodes, V
	Err      error   // underlying cause (ErrNoConvergence, ErrNonFiniteSolution, factorization error)
}

// Error renders the failure with its location and worst-node diagnosis.
func (e *ConvergenceError) Error() string {
	msg := fmt.Sprintf("spice: %s failed", e.Stage)
	if e.Stage == StageTran || e.Stage == StageTranHalve {
		msg += fmt.Sprintf(" at t=%.4g", e.Time)
	}
	if e.Iters > 0 {
		msg += fmt.Sprintf(" after %d iterations", e.Iters)
	}
	if e.Node != "" {
		msg += fmt.Sprintf(" (worst node %q: residual %.3g A, Δv %.3g V)", e.Node, e.Residual, e.DeltaV)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ConvergenceError) Unwrap() error { return e.Err }

// WorstNode returns the name of the node with the largest KCL residual at
// the failing iterate ("" when unknown). Exposed as a method so layers
// that must not import spice (the montecarlo flight recorder) can extract
// it through an anonymous interface with errors.As.
func (e *ConvergenceError) WorstNode() string { return e.Node }

// at tags the error with the stage and simulation time it surfaced from,
// returning e for chaining. Nil-safe.
func (e *ConvergenceError) at(st Stage, t float64) *ConvergenceError {
	if e != nil {
		e.Stage = st
		e.Time = t
	}
	return e
}

// asError converts a typed *ConvergenceError to a plain error without the
// typed-nil-in-interface trap.
func asError(e *ConvergenceError) error {
	if e == nil {
		return nil
	}
	return e
}

// finite reports whether v is neither NaN nor ±Inf.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// firstNonFinite returns the index of the first NaN/Inf entry of x, or -1.
func firstNonFinite(x []float64) int {
	for i, v := range x {
		if !finite(v) {
			return i
		}
	}
	return -1
}

// unknownName names entry i of the unknown vector: a node name for the node
// block, "I(name)" for a voltage-source branch current.
func (c *Circuit) unknownName(i int) string {
	if i < len(c.nodeNames) {
		return c.nodeNames[i]
	}
	br := i - len(c.nodeNames)
	if br < len(c.vs) {
		return "I(" + c.vs[br].name + ")"
	}
	return fmt.Sprintf("x[%d]", i)
}
