package spice

import (
	"fmt"
	"math"
	"sort"
)

// TranOpts configures a transient analysis.
type TranOpts struct {
	Stop float64 // end time, s
	Step float64 // fixed timestep, s

	// Trap selects trapezoidal integration; default is backward Euler.
	// The first step after initialization is always BE.
	Trap bool

	// UIC skips the initial DC operating point and starts from the node
	// voltages in IC (unset nodes start at 0), like SPICE's .tran UIC.
	UIC bool
	IC  map[int]float64 // initial node voltages (used when UIC)
}

// TranResult holds the sampled waveforms of a transient run.
type TranResult struct {
	c    *Circuit
	Time []float64
	// xs[k] is the full unknown vector at Time[k].
	xs [][]float64
}

// V returns the waveform of a node index.
func (r *TranResult) V(node int) []float64 {
	out := make([]float64, len(r.Time))
	for k, x := range r.xs {
		out[k] = nv(x, node)
	}
	return out
}

// VName returns the waveform of a named node.
func (r *TranResult) VName(name string) []float64 {
	idx, ok := r.c.nodeIdx[name]
	if !ok {
		panic(fmt.Sprintf("spice: unknown node %q", name))
	}
	return r.V(idx)
}

// SourceI returns the branch-current waveform of a voltage source index.
func (r *TranResult) SourceI(src int) []float64 {
	out := make([]float64, len(r.Time))
	off := len(r.c.nodeNames) + src
	for k, x := range r.xs {
		out[k] = x[off]
	}
	return out
}

// At returns the interpolated node voltage at time t. The time grid may be
// non-uniform (adaptive stepping), so the bracketing step is found by
// binary search.
func (r *TranResult) At(node int, t float64) float64 {
	n := len(r.Time)
	if n == 0 {
		return math.NaN()
	}
	if t <= r.Time[0] {
		return nv(r.xs[0], node)
	}
	if t >= r.Time[n-1] {
		return nv(r.xs[n-1], node)
	}
	k := sort.SearchFloat64s(r.Time, t)
	if k > 0 {
		k--
	}
	if k >= n-1 {
		k = n - 2
	}
	f := (t - r.Time[k]) / (r.Time[k+1] - r.Time[k])
	v0, v1 := nv(r.xs[k], node), nv(r.xs[k+1], node)
	return v0 + f*(v1-v0)
}

// Transient runs a fixed-step implicit transient analysis.
func (c *Circuit) Transient(opts TranOpts) (*TranResult, error) {
	if opts.Stop <= 0 || opts.Step <= 0 {
		return nil, fmt.Errorf("spice: invalid transient window stop=%g step=%g", opts.Stop, opts.Step)
	}
	n := c.unknowns()
	x := make([]float64, n)

	if opts.UIC {
		for node, v := range opts.IC {
			if node != Gnd {
				x[node] = v
			}
		}
	} else {
		op, err := c.OP()
		if err != nil {
			return nil, fmt.Errorf("spice: transient initial OP: %w", err)
		}
		copy(x, op.x)
	}

	ts := &tranState{h: opts.Step, trap: opts.Trap, firstBE: true}
	c.initTranHistory(x, ts)

	steps := int(math.Ceil(opts.Stop/opts.Step + 1e-9))
	res := &TranResult{c: c, Time: make([]float64, 0, steps+1), xs: make([][]float64, 0, steps+1)}
	snap := func(t float64) {
		xc := make([]float64, n)
		copy(xc, x)
		res.Time = append(res.Time, t)
		res.xs = append(res.xs, xc)
	}
	snap(0)

	t := 0.0
	xPrev := make([]float64, n)
	copy(xPrev, x)
	pred := make([]float64, n)
	for k := 0; k < steps; k++ {
		t = float64(k+1) * opts.Step
		// Linear predictor: start Newton from the extrapolated trajectory,
		// which typically saves an iteration per step.
		if k > 0 {
			for i := range pred {
				pred[i] = 2*x[i] - xPrev[i]
			}
			copy(xPrev, x)
			copy(x, pred)
		} else {
			copy(xPrev, x)
		}
		ctx := assembleCtx{t: t, srcScale: 1, tran: ts}
		if err := c.newton(x, &ctx); err != nil {
			// Retry the step from the unextrapolated state with several
			// smaller backward-Euler sub-steps, a cheap and robust rescue
			// for sharp source corners.
			copy(x, xPrev)
			if err2 := c.rescueStep(x, t-opts.Step, opts.Step, ts); err2 != nil {
				return nil, fmt.Errorf("spice: transient failed at t=%g: %w", t, err)
			}
		} else {
			c.updateTranHistory(x, ts)
		}
		ts.firstBE = false
		snap(t)
	}
	return res, nil
}

// rescueStep retries a failed step as several smaller backward-Euler steps.
func (c *Circuit) rescueStep(x []float64, t0, h float64, ts *tranState) error {
	const pieces = 8
	sub := h / pieces
	savedH, savedTrap, savedFirst := ts.h, ts.trap, ts.firstBE
	ts.h, ts.trap, ts.firstBE = sub, false, true
	defer func() { ts.h, ts.trap, ts.firstBE = savedH, savedTrap, savedFirst }()
	for i := 1; i <= pieces; i++ {
		ctx := assembleCtx{t: t0 + float64(i)*sub, srcScale: 1, tran: ts}
		if err := c.newton(x, &ctx); err != nil {
			return err
		}
		c.updateTranHistory(x, ts)
	}
	return nil
}
