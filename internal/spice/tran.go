package spice

import (
	"fmt"
	"math"
	"sort"

	"vstat/internal/lifecycle"
	"vstat/internal/obs"
)

// TranOpts configures a transient analysis.
type TranOpts struct {
	Stop float64 // end time, s
	Step float64 // fixed timestep, s

	// Trap selects trapezoidal integration; default is backward Euler.
	// The first step after initialization is always BE.
	Trap bool

	// UIC skips the initial DC operating point and starts from the node
	// voltages in IC (unset nodes start at 0), like SPICE's .tran UIC.
	UIC bool
	IC  map[int]float64 // initial node voltages (used when UIC)

	// Guess warm-starts the initial DC operating point (ignored with UIC).
	// Pooled Monte Carlo passes the nominal operating point here: the
	// statistical perturbations are small, so Newton converges in a few
	// iterations instead of walking in from zero.
	Guess []float64

	// Fast enables the pooled-MC fast path: the Jacobian factorization is
	// carried across timesteps (and refreshed only when the chord iteration
	// stops contracting fast enough), the predictor extrapolates
	// quadratically, and the Newton tolerances relax to the fast-path pair
	// (1 µV / 0.1 µA — the classic SPICE VNTOL class). Convergence is
	// still judged on the true residual each step, so accuracy is bounded
	// by those tolerances; waveforms differ from the exact path at the
	// tolerance floor (~1 µV). Both paths reuse the device evaluations
	// cached by the last Newton assembly for the charge-history update.
	// Leave unset for the tight-tolerance classic path.
	Fast bool
}

// TranResult holds the sampled waveforms of a transient run. A TranResult
// can be reused across runs via TransientInto, which rewinds it and refills
// the existing storage without re-allocating.
type TranResult struct {
	c    *Circuit
	Time []float64
	// xs[k] is the full unknown vector at Time[k].
	xs [][]float64
}

// reset rewinds the result for reuse, keeping the backing storage.
func (r *TranResult) reset(c *Circuit, capHint int) {
	r.c = c
	if cap(r.Time) < capHint {
		r.Time = make([]float64, 0, capHint)
	} else {
		r.Time = r.Time[:0]
	}
	if cap(r.xs) < capHint {
		r.xs = make([][]float64, 0, capHint)
	} else {
		r.xs = r.xs[:0]
	}
}

// snap appends a copy of x at time t, reusing a row retained from a
// previous run when one is available.
func (r *TranResult) snap(t float64, x []float64) {
	r.Time = append(r.Time, t)
	k := len(r.xs)
	if k < cap(r.xs) {
		r.xs = r.xs[:k+1]
		if len(r.xs[k]) != len(x) {
			r.xs[k] = make([]float64, len(x))
		}
	} else {
		r.xs = append(r.xs, make([]float64, len(x)))
	}
	copy(r.xs[k], x)
}

// V returns the waveform of a node index.
func (r *TranResult) V(node int) []float64 {
	out := make([]float64, len(r.Time))
	for k, x := range r.xs {
		out[k] = nv(x, node)
	}
	return out
}

// VName returns the waveform of a named node.
func (r *TranResult) VName(name string) []float64 {
	idx, ok := r.c.nodeIdx[name]
	if !ok {
		panic(fmt.Sprintf("spice: unknown node %q", name))
	}
	return r.V(idx)
}

// SourceI returns the branch-current waveform of a voltage source index.
func (r *TranResult) SourceI(src int) []float64 {
	out := make([]float64, len(r.Time))
	off := len(r.c.nodeNames) + src
	for k, x := range r.xs {
		out[k] = x[off]
	}
	return out
}

// At returns the interpolated node voltage at time t. The time grid may be
// non-uniform (adaptive stepping), so the bracketing step is found by
// binary search.
func (r *TranResult) At(node int, t float64) float64 {
	n := len(r.Time)
	if n == 0 {
		return math.NaN()
	}
	if t <= r.Time[0] {
		return nv(r.xs[0], node)
	}
	if t >= r.Time[n-1] {
		return nv(r.xs[n-1], node)
	}
	k := sort.SearchFloat64s(r.Time, t)
	if k > 0 {
		k--
	}
	if k >= n-1 {
		k = n - 2
	}
	f := (t - r.Time[k]) / (r.Time[k+1] - r.Time[k])
	v0, v1 := nv(r.xs[k], node), nv(r.xs[k+1], node)
	return v0 + f*(v1-v0)
}

// Transient runs a fixed-step implicit transient analysis.
func (c *Circuit) Transient(opts TranOpts) (*TranResult, error) {
	res := &TranResult{}
	if err := c.TransientInto(opts, res); err != nil {
		return nil, err
	}
	return res, nil
}

// TransientInto runs a fixed-step implicit transient analysis into res,
// reusing the circuit's step scratch, integrator history, and the result's
// waveform storage. Back-to-back runs on the same circuit (the pooled Monte
// Carlo hot path) allocate nothing after the first.
func (c *Circuit) TransientInto(opts TranOpts, res *TranResult) error {
	if opts.Stop <= 0 || opts.Step <= 0 {
		return fmt.Errorf("spice: invalid transient window stop=%g step=%g", opts.Stop, opts.Step)
	}
	// The whole transient (initial OP, stepping, history updates, waveform
	// snaps) is newton-solve phase time; Jacobian factorizations inside
	// newton carve their self-time out into the factor phase.
	c.obsScope.Enter(obs.PhaseSolve)
	defer c.obsScope.Exit()
	n := c.unknowns()
	if len(c.trX) != n {
		c.trX = make([]float64, n)
		c.trPrev = make([]float64, n)
		c.trPrev2 = make([]float64, n)
		c.trPred = make([]float64, n)
	}
	x, xPrev, xPrev2, pred := c.trX, c.trPrev, c.trPrev2, c.trPred
	for i := range x {
		x[i] = 0
	}

	if opts.UIC {
		for node, v := range opts.IC {
			if node != Gnd {
				x[node] = v
			}
		}
	} else {
		if err := c.solveOPInto(x, opts.Guess, opts.Fast); err != nil {
			return fmt.Errorf("spice: transient initial OP: %w", err)
		}
	}

	ts := &c.trState
	ts.h, ts.trap, ts.firstBE = opts.Step, opts.Trap, true
	c.initTranHistory(x, ts)

	steps := int(math.Ceil(opts.Stop/opts.Step + 1e-9))
	res.reset(c, steps+1)
	res.snap(0, x)

	t := 0.0
	copy(xPrev, x)
	for k := 0; k < steps; k++ {
		t = float64(k+1) * opts.Step
		// Snapshot the charge history so a failed or NaN-rejected step can
		// be retried (and retried again at a finer sub-step) from exactly
		// the end-of-previous-step integrator state.
		c.saveTranHistory(ts)
		// Predictor: start Newton from the extrapolated trajectory, which
		// typically saves an iteration per step. The fast path extrapolates
		// quadratically — a smaller starting error keeps the chord iteration
		// on the carried Jacobian to one or two passes on quiet stretches.
		if k > 0 {
			if opts.Fast && k > 1 {
				for i := range pred {
					pred[i] = 3*(x[i]-xPrev[i]) + xPrev2[i]
				}
			} else {
				for i := range pred {
					pred[i] = 2*x[i] - xPrev[i]
				}
			}
			copy(xPrev2, xPrev)
			copy(xPrev, x)
			copy(x, pred)
		} else {
			copy(xPrev, x)
		}
		ctx := assembleCtx{t: t, srcScale: 1, tran: ts, carry: opts.Fast, fast: opts.Fast}
		cerr := c.stepSolve(x, &ctx)
		if cerr != nil && lifecycle.Interrupted(cerr) {
			// Cancelled or over budget: no fallback, no sub-stepping — the
			// sample is over.
			return fmt.Errorf("spice: transient interrupted at t=%g: %w", t, asError(cerr))
		}
		if cerr != nil && opts.Fast {
			// Fast→exact fallback: the chord iteration on the carried
			// Jacobian stalled, so drop the carried factors, re-factor, and
			// retry the step with the exact path before escalating to
			// sub-stepping.
			c.stats.FastFallbacks++
			c.traceFallback(t)
			c.luValid = false
			copy(x, xPrev)
			exact := assembleCtx{t: t, srcScale: 1, tran: ts}
			cerr = c.stepSolve(x, &exact)
		}
		if cerr == nil {
			c.updateTranHistory(x, ts)
			// The cached charges passed the residual check, but a capacitor
			// charge can still turn non-finite on a pathological candidate;
			// reject the poisoned history before it propagates.
			if !c.tranHistoryFinite(ts) {
				c.stats.NonFiniteRejects++
				c.traceNonFinite("tran-history", t)
				c.restoreTranHistory(ts)
				cerr = &ConvergenceError{Err: ErrNonFiniteSolution}
			}
		}
		if cerr != nil {
			// Retry the step from the unextrapolated state with smaller
			// backward-Euler sub-steps, halving further on repeated failure.
			c.traceRescue("tran-substep", t, cerr)
			copy(x, xPrev)
			if rerr := c.rescueLadder(xPrev, x, t-opts.Step, opts.Step, ts, opts.Fast); rerr != nil {
				return fmt.Errorf("spice: transient failed at t=%g: %w", t, asError(rerr))
			}
		}
		ts.firstBE = false
		c.stats.TranSteps++
		res.snap(t, x)
	}
	return nil
}

// stepSolve runs one transient Newton solve and rejects candidate solution
// vectors containing NaN/Inf before they can reach the charge history.
func (c *Circuit) stepSolve(x []float64, ctx *assembleCtx) *ConvergenceError {
	if cerr := c.newton(x, ctx); cerr != nil {
		return cerr.at(StageTran, ctx.t)
	}
	if i := firstNonFinite(x); i >= 0 {
		c.stats.NonFiniteRejects++
		c.traceNonFinite("tran-candidate", ctx.t)
		c.luValid = false
		cerr := &ConvergenceError{Node: c.unknownName(i), Err: ErrNonFiniteSolution}
		return cerr.at(StageTran, ctx.t)
	}
	return nil
}

// rescueLadder retries a failed timestep as progressively finer
// backward-Euler sub-step sequences: 8 pieces (the cheap classic rescue for
// sharp source corners), then halving the sub-step per rung within a
// bounded retry budget, with a final exact-path rung when the fast solver
// was in use. Every rung restarts from x0 and the pre-step charge-history
// snapshot, so a failed rung leaves no trace in the integrator state. x
// must enter holding a copy of x0.
func (c *Circuit) rescueLadder(x0, x []float64, t0, h float64, ts *tranState, fast bool) *ConvergenceError {
	c.stats.Rescues++
	var last *ConvergenceError
	pieces := 8
	for level := 0; level < 4; level++ {
		if level > 0 {
			c.stats.TranHalvings++
			c.traceRescue(StageTranHalve, t0+h, last)
			c.restoreTranHistory(ts)
			copy(x, x0)
			pieces *= 2
		}
		if last = c.rescueStep(x, t0, h, ts, fast, pieces); last == nil {
			return nil
		}
		if lifecycle.Interrupted(last) {
			return last.at(StageTranHalve, t0+h)
		}
	}
	if fast {
		// Last resort in fast mode: the exact path (fresh Jacobian every
		// stall, tight tolerances) over the classic 8 sub-steps.
		c.stats.FastFallbacks++
		c.traceFallback(t0 + h)
		c.luValid = false
		c.restoreTranHistory(ts)
		copy(x, x0)
		if last = c.rescueStep(x, t0, h, ts, false, 8); last == nil {
			return nil
		}
	}
	return last.at(StageTranHalve, t0+h)
}

// rescueStep retries a failed step as pieces smaller backward-Euler steps.
func (c *Circuit) rescueStep(x []float64, t0, h float64, ts *tranState, fast bool, pieces int) *ConvergenceError {
	sub := h / float64(pieces)
	savedH, savedTrap, savedFirst := ts.h, ts.trap, ts.firstBE
	ts.h, ts.trap, ts.firstBE = sub, false, true
	defer func() { ts.h, ts.trap, ts.firstBE = savedH, savedTrap, savedFirst }()
	for i := 1; i <= pieces; i++ {
		ctx := assembleCtx{t: t0 + float64(i)*sub, srcScale: 1, tran: ts, carry: fast, fast: fast}
		if cerr := c.stepSolve(x, &ctx); cerr != nil {
			return cerr
		}
		c.updateTranHistory(x, ts)
		if !c.tranHistoryFinite(ts) {
			c.stats.NonFiniteRejects++
			c.traceNonFinite("rescue-history", t0+float64(i)*sub)
			return &ConvergenceError{Err: ErrNonFiniteSolution}
		}
	}
	return nil
}
