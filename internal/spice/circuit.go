// Package spice is a small SPICE-class circuit simulator built for the
// benchmark circuits of the paper: modified nodal analysis with Newton
// iteration, DC operating point with gmin and source stepping, DC sweeps
// (SRAM butterfly curves), and charge-conserving transient analysis
// (backward Euler or trapezoidal) for gate-delay and setup/hold Monte
// Carlo. MOSFETs are any implementation of device.Device, so the Virtual
// Source model and the golden BSIM-like model run in the identical engine —
// exactly the apples-to-apples setting the paper's validation needs.
package spice

import (
	"context"
	"fmt"
	"time"

	"vstat/internal/device"
	"vstat/internal/lifecycle"
	"vstat/internal/linalg"
	"vstat/internal/obs"
)

// Gnd is the ground node index. Node indices returned by Circuit.Node are
// non-negative; ground is the fixed reference.
const Gnd = -1

// Waveform is a time-dependent source value. DC analyses evaluate it at t=0
// unless a source override is active.
type Waveform interface {
	At(t float64) float64
}

// DC is a constant waveform.
type DC float64

// At returns the constant value.
func (d DC) At(float64) float64 { return float64(d) }

// Pulse is a SPICE-style pulse source.
type Pulse struct {
	V0, V1                   float64 // initial and pulsed value, V
	Delay, Rise, Fall, Width float64 // s
	Period                   float64 // s; 0 disables repetition
}

// At evaluates the pulse at time t.
func (p Pulse) At(t float64) float64 {
	t -= p.Delay
	if t < 0 {
		return p.V0
	}
	if p.Period > 0 {
		for t >= p.Period {
			t -= p.Period
		}
	}
	switch {
	case t < p.Rise:
		return p.V0 + (p.V1-p.V0)*t/p.Rise
	case t < p.Rise+p.Width:
		return p.V1
	case t < p.Rise+p.Width+p.Fall:
		return p.V1 + (p.V0-p.V1)*(t-p.Rise-p.Width)/p.Fall
	default:
		return p.V0
	}
}

// PWL is a piecewise-linear waveform through (T[i], V[i]) points, constant
// before the first and after the last point.
type PWL struct {
	T, V []float64
}

// At evaluates the waveform at time t.
func (p PWL) At(t float64) float64 {
	n := len(p.T)
	if n == 0 {
		return 0
	}
	if t <= p.T[0] {
		return p.V[0]
	}
	for i := 1; i < n; i++ {
		if t <= p.T[i] {
			f := (t - p.T[i-1]) / (p.T[i] - p.T[i-1])
			return p.V[i-1] + f*(p.V[i]-p.V[i-1])
		}
	}
	return p.V[n-1]
}

// Element kinds stored by the circuit.
type resistor struct {
	name string
	a, b int
	g    float64 // conductance, S
}

type capacitor struct {
	name string
	a, b int
	c    float64 // F
}

type vsource struct {
	name   string
	p, n   int
	branch int // index into the branch-current unknowns
	wave   Waveform
}

type isource struct {
	name string
	p, n int
	wave Waveform // current from p through the source to n, A
}

type mosfet struct {
	name       string
	d, g, s, b int
	dev        device.Device
}

// Circuit is a netlist under construction plus analysis entry points.
// Node indices are dense integers from Node/NamedNode; Gnd is ground.
type Circuit struct {
	nodeNames []string       // index -> name
	nodeIdx   map[string]int // name -> index

	rs  []resistor
	cs  []capacitor
	vs  []vsource
	is  []isource
	mos []mosfet

	// Gmin is the conductance tied from every node to ground during all
	// analyses (defaults to 1e-12 S); it keeps matrices nonsingular with
	// floating gates.
	Gmin float64

	// MaxNewton bounds Newton iterations per solve (default 150).
	MaxNewton int

	// LinearCore selects the Jacobian factorization backend: CoreAuto (the
	// zero value) honours the VSTAT_LINEAR_CORE environment override and
	// otherwise picks the sparse core for systems of sparseMinN unknowns or
	// more; CoreDense and CoreSparse force a path. See DESIGN.md §9.
	LinearCore LinearCore

	// Newton scratch buffers (see newton); sized on first solve. nwJac and
	// nwLU are the dense-core workspaces, allocated only when the dense
	// path is active.
	nwF, nwScratch []float64
	nwJac          *linalg.Matrix

	// Carried Jacobian factorization (see newton): nwLU is the reusable
	// dense workspace, luValid/luKey gate reuse across solves, and
	// coreSparse records which core produced the carried factors (a core
	// switch drops them).
	nwLU       *linalg.LU
	luValid    bool
	luKey      luKey
	coreSparse bool

	// Sparse linear core (see sparsecore.go): the CSC Jacobian with its
	// precomputed stamp→slot lists, and the symbolic-once factorization
	// reused across all samples and timesteps of this topology.
	sp      *linalg.Sparse
	spLU    *linalg.SparseLU
	spSlots stampSlots
	spReady bool

	// evCache holds per-MOSFET model evaluations from the last transient
	// assemble (the pre-final-update Newton state), consumed by
	// updateTranHistory so a converged step never re-evaluates the models.
	evCache []device.Eval

	// devPre holds externally computed per-MOSFET derivative bundles for
	// the next assemble/history call when devPreSet is true (the lockstep
	// batch driver scatters its SoA results here, so the stamping
	// arithmetic below stays byte-for-byte the scalar path's). Cleared by
	// the batch driver when a lane leaves lockstep.
	devPre    []device.Derivs
	devPreSet bool

	// Transient step scratch (see TransientInto) and reusable integrator
	// history, so pooled Monte Carlo samples allocate nothing per transient.
	trX, trPrev, trPrev2, trPred []float64
	trState                      tranState

	// DC sweep scratch (see DCSweepObserve).
	swX, swGuess []float64

	// Pseudo-transient continuation scratch (see pseudoTransientInto).
	ptRef, ptSave []float64

	// Charge-history snapshot scratch (see saveTranHistory), so rescue
	// retries never allocate on the transient hot path.
	hsQMos, hsIMos [][4]float64
	hsQCap, hsICap []float64

	stats SolverStats

	// Run-lifecycle state (see ArmSample in lifecycle.go): the armed
	// context's done channel, the per-sample wall deadline, the iteration
	// cap, and the running iteration count. All zero when disarmed, in
	// which case checkLifecycle is two predictable branches.
	lcDone     <-chan struct{}
	lcCtx      context.Context
	lcDeadline time.Time
	lcBudget   lifecycle.Budget
	lcIters    int64

	// Observability handles (see SetObs/SetObsSample): nil scope means
	// every instrumentation site is a single pointer check.
	obsScope  *obs.Scope
	obsSample int
}

// New returns an empty circuit.
func New() *Circuit {
	return &Circuit{
		nodeIdx:   map[string]int{"0": Gnd, "gnd": Gnd, "GND": Gnd},
		Gmin:      1e-12,
		MaxNewton: 150,
	}
}

// Node creates (or returns) the node with the given name. The names "0",
// "gnd" and "GND" are ground.
func (c *Circuit) Node(name string) int {
	if idx, ok := c.nodeIdx[name]; ok {
		return idx
	}
	idx := len(c.nodeNames)
	c.nodeNames = append(c.nodeNames, name)
	c.nodeIdx[name] = idx
	return idx
}

// NodeName returns the name of a node index ("gnd" for ground).
func (c *Circuit) NodeName(idx int) string {
	if idx == Gnd {
		return "gnd"
	}
	return c.nodeNames[idx]
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// AddR adds a resistor between nodes a and b.
func (c *Circuit) AddR(name string, a, b int, ohms float64) {
	if ohms <= 0 {
		panic(fmt.Sprintf("spice: resistor %s with non-positive value %g", name, ohms))
	}
	c.luValid = false
	c.spReady = false
	c.rs = append(c.rs, resistor{name: name, a: a, b: b, g: 1 / ohms})
}

// AddC adds a capacitor between nodes a and b.
func (c *Circuit) AddC(name string, a, b int, farads float64) {
	if farads < 0 {
		panic(fmt.Sprintf("spice: capacitor %s with negative value %g", name, farads))
	}
	c.luValid = false
	c.spReady = false
	c.cs = append(c.cs, capacitor{name: name, a: a, b: b, c: farads})
}

// AddV adds a voltage source (positive node p, negative node n) and returns
// its source index for later current readback.
func (c *Circuit) AddV(name string, p, n int, w Waveform) int {
	idx := len(c.vs)
	c.luValid = false
	c.spReady = false
	c.vs = append(c.vs, vsource{name: name, p: p, n: n, branch: idx, wave: w})
	return idx
}

// AddI adds a current source driving current from p through the source to n.
func (c *Circuit) AddI(name string, p, n int, w Waveform) {
	c.is = append(c.is, isource{name: name, p: p, n: n, wave: w})
}

// AddMOS adds a four-terminal MOSFET instance.
func (c *Circuit) AddMOS(name string, d, g, s, b int, dev device.Device) {
	c.luValid = false
	c.spReady = false
	c.mos = append(c.mos, mosfet{name: name, d: d, g: g, s: s, b: b, dev: dev})
}

// NumMOS returns the number of MOSFET instances, in AddMOS order.
func (c *Circuit) NumMOS() int { return len(c.mos) }

// SetMOSDevice replaces the device model of the i-th MOSFET (AddMOS order)
// in place, keeping topology, node names, and solver scratch. This is the
// re-stamp path for pooled Monte Carlo: swap parameter cards, not netlists.
func (c *Circuit) SetMOSDevice(i int, dev device.Device) {
	c.mos[i].dev = dev
	c.luValid = false
}

// MOSDevice returns the device model of the i-th MOSFET (AddMOS order),
// the accessor the batch driver uses to bind lanes after a re-stamp.
func (c *Circuit) MOSDevice(i int) device.Device { return c.mos[i].dev }

// VSourceIndex returns the source index of the named voltage source, or -1.
func (c *Circuit) VSourceIndex(name string) int {
	for i, v := range c.vs {
		if v.name == name {
			return i
		}
	}
	return -1
}

// SetVSource replaces the waveform of source index i (from AddV).
func (c *Circuit) SetVSource(i int, w Waveform) { c.vs[i].wave = w }

// unknowns returns the size of the MNA system: node voltages plus
// voltage-source branch currents.
func (c *Circuit) unknowns() int { return len(c.nodeNames) + len(c.vs) }

// nv reads the voltage of node idx from the unknown vector.
func nv(x []float64, idx int) float64 {
	if idx == Gnd {
		return 0
	}
	return x[idx]
}
