package spice

import (
	"context"
	"testing"
	"time"

	"vstat/internal/lifecycle"
	"vstat/internal/obs"
	"vstat/internal/obs/trace"
)

// armedTracedCircuit builds the fully instrumented worst case short of an
// actual tracer: observability enabled, a live scope attached, a per-sample
// budget armed — the configuration every traced-capable MC run uses when
// -trace-out is NOT given.
func armedTracedCircuit(t testing.TB) *Circuit {
	c, _ := testInverter()
	reg := obs.NewRegistry()
	pm := obs.NewPhaseMetrics(reg) // register before the first shard
	sc := obs.NewScope(reg.NewShard(), pm)
	c.SetObs(sc)
	return c
}

// TestTracingDisabledArmedStepAllocFree is the tracing layer's zero-overhead
// guard: with a scope live and a sample budget armed but NO tracer attached
// (tracing disabled, the default), the transient hot path must allocate
// nothing — including after a tracer was attached once and then detached,
// so the nil-tracer fast path is genuinely re-entered, not just never left.
func TestTracingDisabledArmedStepAllocFree(t *testing.T) {
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(false) })
	c := armedTracedCircuit(t)

	// Attach and detach a real tracer so the scope has seen both states.
	mc := trace.NewStandaloneMC("alloc-test", "test", 1, uint64(1)<<48, 2)
	c.AttachTracer(mc.NewWorker(0))
	c.AttachTracer(nil)

	ctx := context.Background()
	budget := lifecycle.Budget{Wall: time.Hour, MaxNewton: 1 << 40}
	opts := TranOpts{Stop: 100e-12, Step: 1e-12}
	var res TranResult
	c.ArmSample(ctx, budget)
	if err := c.TransientInto(opts, &res); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		c.ArmSample(ctx, budget)
		if err := c.TransientInto(opts, &res); err != nil {
			t.Fatal(err)
		}
		c.obsScope.EndSample()
	})
	if allocs != 0 {
		t.Fatalf("armed transient step allocates %.1f objects per run with tracing disabled, want 0", allocs)
	}
}

// BenchmarkArmedTransientTracingDisabled reports the allocation figure the
// guard above pins, for the Makefile's trace rung and for eyeballing the
// hot-path cost alongside the other solver benchmarks.
func BenchmarkArmedTransientTracingDisabled(b *testing.B) {
	obs.SetEnabled(true)
	b.Cleanup(func() { obs.SetEnabled(false) })
	c := armedTracedCircuit(b)
	ctx := context.Background()
	budget := lifecycle.Budget{Wall: time.Hour, MaxNewton: 1 << 40}
	opts := TranOpts{Stop: 100e-12, Step: 1e-12}
	var res TranResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.ArmSample(ctx, budget)
		if err := c.TransientInto(opts, &res); err != nil {
			b.Fatal(err)
		}
		c.obsScope.EndSample()
	}
}

// TestScopeForwardsSolverSpansToFlightRecorder pins the obs → trace bridge:
// with a SampleTracer attached, a transient's phase Enter/Exit pairs arrive
// as nested phase spans under the sample span, with the solver phase names
// intact — no spice-side code ever imports the trace package.
func TestScopeForwardsSolverSpansToFlightRecorder(t *testing.T) {
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(false) })
	c := armedTracedCircuit(t)

	mc := trace.NewStandaloneMC("bridge-test", "test", 41, uint64(2)<<48, 2)
	w := mc.NewWorker(0)
	c.AttachTracer(w)

	w.BeginSample(5)
	var res TranResult
	if err := c.TransientInto(TranOpts{Stop: 100e-12, Step: 1e-12}, &res); err != nil {
		t.Fatal(err)
	}
	c.obsScope.EndSample()
	w.EndSample(trace.SampleDiag{Verdict: trace.VerdictOK, Iters: c.Stats().NewtonIters})
	mc.FinishWorker(w)
	recs := mc.Finish()
	if len(recs) != 1 {
		t.Fatalf("flight recorder kept %d records, want 1", len(recs))
	}
	evs := recs[0].Events
	if evs[0].Cat != trace.CatSample || evs[0].Sample != 5 || evs[0].Parent != 41 {
		t.Fatalf("sample span = %+v", evs[0])
	}
	seen := map[string]int{}
	for _, ev := range evs[1:] {
		if ev.Cat != trace.CatPhase {
			t.Fatalf("non-phase span inside a sample: %+v", ev)
		}
		if ev.Dur <= 0 {
			t.Fatalf("unclosed phase span %q", ev.Name)
		}
		seen[ev.Name]++
	}
	for _, phase := range []string{"assemble-J", "lu-factor", "tri-solve", "newton-solve"} {
		if seen[phase] == 0 {
			t.Fatalf("solver phase %q never reached the tracer (saw %v)", phase, seen)
		}
	}
}
