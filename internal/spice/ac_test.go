package spice

import (
	"math"
	"math/cmplx"
	"testing"

	"vstat/internal/vsmodel"
)

func TestACLowPassTransfer(t *testing.T) {
	c := New()
	in := c.Node("in")
	out := c.Node("out")
	src := c.AddV("VIN", in, Gnd, DC(0))
	R, C := 1000.0, 1e-9 // pole at 1/(2πRC) ≈ 159 kHz
	c.AddR("R", in, out, R)
	c.AddC("C", out, Gnd, C)

	freqs := LogSpace(1e3, 1e8, 41)
	res, err := c.AC(src, freqs)
	if err != nil {
		t.Fatal(err)
	}
	for k, f := range freqs {
		w := 2 * math.Pi * f
		want := 1 / cmplx.Abs(complex(1, w*R*C))
		got := cmplx.Abs(res.V(out, k))
		if math.Abs(got-want) > 1e-3*want+1e-9 {
			t.Fatalf("f=%g: |H| = %g want %g", f, got, want)
		}
		// Phase check: arctan(−ωRC).
		wantPh := -math.Atan(w * R * C)
		gotPh := cmplx.Phase(res.V(out, k))
		if math.Abs(gotPh-wantPh) > 1e-3 {
			t.Fatalf("f=%g: phase %g want %g", f, gotPh, wantPh)
		}
	}
	// -3 dB point.
	f3 := 1 / (2 * math.Pi * R * C)
	res3, err := c.AC(src, []float64{f3})
	if err != nil {
		t.Fatal(err)
	}
	if db := res3.MagDB(out, 0); math.Abs(db+3.0103) > 0.01 {
		t.Fatalf("-3dB point: %g dB", db)
	}
}

func TestACInverterGain(t *testing.T) {
	// Small-signal gain of a self-biased inverter ≈ −(gmn+gmp)/(gdsn+gdsp);
	// AC at low frequency must match the DC transfer slope.
	build := func() (*Circuit, int, int, int) {
		c := New()
		vdd := c.Node("vdd")
		in := c.Node("in")
		out := c.Node("out")
		c.AddV("VDD", vdd, Gnd, DC(0.9))
		src := c.AddV("VIN", in, Gnd, DC(0.45))
		n := vsmodel.NMOS40(300e-9)
		p := vsmodel.PMOS40(600e-9)
		c.AddMOS("MN", out, in, Gnd, Gnd, &n)
		c.AddMOS("MP", out, in, vdd, vdd, &p)
		return c, src, in, out
	}
	// Find the input bias where out crosses mid-rail (high gain point).
	c, src, _, out := build()
	var vBias float64
	for v := 0.3; v <= 0.6; v += 0.002 {
		c.SetVSource(src, DC(v))
		op, err := c.OP()
		if err != nil {
			t.Fatal(err)
		}
		if op.V(out) < 0.45 {
			vBias = v
			break
		}
	}
	c.SetVSource(src, DC(vBias))
	res, err := c.AC(src, []float64{1e3})
	if err != nil {
		t.Fatal(err)
	}
	gain := cmplx.Abs(res.V(out, 0))
	if gain < 3 || gain > 200 {
		t.Fatalf("inverter AC gain %g implausible", gain)
	}
	// Compare against the DC slope.
	h := 1e-4
	c.SetVSource(src, DC(vBias-h))
	op1, _ := c.OP()
	c.SetVSource(src, DC(vBias+h))
	op2, _ := c.OP()
	slope := math.Abs(op2.V(out)-op1.V(out)) / (2 * h)
	if math.Abs(gain-slope)/slope > 0.05 {
		t.Fatalf("AC gain %g vs DC slope %g", gain, slope)
	}
	// Gain must roll off at very high frequency.
	resHi, err := c.AC(src, []float64{1e12})
	if err != nil {
		t.Fatal(err)
	}
	if hi := cmplx.Abs(resHi.V(out, 0)); hi > gain/2 {
		t.Fatalf("no high-frequency rolloff: %g vs %g", hi, gain)
	}
}

func TestACSRAMLoopStable(t *testing.T) {
	// SRAM cell at its stable point: AC disturbance at a bitline couples
	// only weakly into the cell (the paper's Table IV "SRAM AC" workload).
	c := New()
	vdd := c.Node("vdd")
	q := c.Node("q")
	qb := c.Node("qb")
	bl := c.Node("bl")
	c.AddV("VDD", vdd, Gnd, DC(0.9))
	blSrc := c.AddV("VBL", bl, Gnd, DC(0.9))
	c.AddV("VWL", c.Node("wl"), Gnd, DC(0.9))
	pul := vsmodel.PMOS40(80e-9)
	pur := vsmodel.PMOS40(80e-9)
	pdl := vsmodel.NMOS40(150e-9)
	pdr := vsmodel.NMOS40(150e-9)
	pgl := vsmodel.NMOS40(110e-9)
	c.AddMOS("PUL", q, qb, vdd, vdd, &pul)
	c.AddMOS("PDL", q, qb, Gnd, Gnd, &pdl)
	c.AddMOS("PUR", qb, q, vdd, vdd, &pur)
	c.AddMOS("PDR", qb, q, Gnd, Gnd, &pdr)
	c.AddMOS("PGL", bl, c.Node("wl"), q, Gnd, &pgl)
	// Hold q high via initial OP convergence: add a weak helper that the
	// DC solve uses to pick the q=1 state.
	c.AddR("RINIT", vdd, q, 1e7)

	res, err := c.AC(blSrc, LogSpace(1e6, 1e10, 5))
	if err != nil {
		t.Fatal(err)
	}
	for k := range res.Freqs {
		if g := cmplx.Abs(res.V(qb, k)); g > 2 {
			t.Fatalf("bitline-to-cell AC gain %g at %g Hz implausible", g, res.Freqs[k])
		}
	}
}

func TestLogSpace(t *testing.T) {
	fs := LogSpace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(fs[i]-want[i]) > 1e-9*want[i] {
			t.Fatalf("LogSpace %v", fs)
		}
	}
	if len(LogSpace(5, 10, 1)) != 1 {
		t.Fatal("degenerate LogSpace")
	}
}
