package spice

// Run-lifecycle enforcement inside the solver. ArmSample installs a
// context and per-sample budget on the circuit; checkLifecycle, called at
// every Newton iteration boundary (the one place all analyses — DC ladder
// rungs, transient steps, sub-step rescue pieces — funnel through), turns a
// cancelled context or an exceeded budget into a typed error that the
// rescue ladders refuse to retry (see lifecycle.Interrupted short-circuits
// in dc.go and tran.go). Disarmed circuits pay two predictable branches per
// iteration and zero allocations; armed circuits add one non-blocking
// channel poll and, when a wall bound is set, one time.Now() compare.
// Budget-check time is attributed to the newton-solve phase (no dedicated
// obs phase: NumPhases is pinned).

import (
	"context"
	"time"

	"vstat/internal/lifecycle"
)

// ArmSample installs ctx and a per-sample budget ahead of the next solve.
// Passing a nil (or Background) context and a zero budget disarms every
// check. The iteration counter restarts from zero, so MaxNewton bounds the
// total Newton work of everything solved until the next ArmSample —
// exactly one Monte Carlo sample in the pooled drivers.
func (c *Circuit) ArmSample(ctx context.Context, b lifecycle.Budget) {
	c.lcCtx = ctx
	c.lcDone = nil
	if ctx != nil {
		c.lcDone = ctx.Done() // nil for Background/TODO: stays disarmed
	}
	c.lcBudget = b
	c.lcDeadline = time.Time{}
	if b.Wall > 0 {
		c.lcDeadline = time.Now().Add(b.Wall)
	}
	c.lcIters = 0
}

// DisarmSample clears any armed context and budget.
func (c *Circuit) DisarmSample() {
	c.lcCtx = nil
	c.lcDone = nil
	c.lcBudget = lifecycle.Budget{}
	c.lcDeadline = time.Time{}
	c.lcIters = 0
}

// LifecycleIters reports the Newton iterations counted against the current
// budget since the last ArmSample.
func (c *Circuit) LifecycleIters() int64 { return c.lcIters }

// checkLifecycle runs at the top of each Newton iteration. It returns nil
// on the hot path without allocating; errors (which allocate) occur at most
// once per sample, at the moment the sample dies.
func (c *Circuit) checkLifecycle() error {
	if c.lcDone != nil {
		select {
		case <-c.lcDone:
			return c.lcCtx.Err()
		default:
		}
	}
	c.lcIters++
	if m := c.lcBudget.MaxNewton; m > 0 && c.lcIters > m {
		return &lifecycle.BudgetError{
			Kind:  lifecycle.OverIters,
			Iters: c.lcIters,
			Max:   m,
		}
	}
	if !c.lcDeadline.IsZero() && time.Now().After(c.lcDeadline) {
		return &lifecycle.BudgetError{
			Kind:    lifecycle.OverWall,
			Elapsed: time.Since(c.lcDeadline.Add(-c.lcBudget.Wall)),
			Wall:    c.lcBudget.Wall,
		}
	}
	return nil
}
