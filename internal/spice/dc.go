package spice

import (
	"fmt"

	"vstat/internal/lifecycle"
	"vstat/internal/obs"
)

// OPResult is a converged DC operating point.
type OPResult struct {
	c *Circuit
	x []float64
}

// V returns the voltage of a node index (0 for ground).
func (r *OPResult) V(node int) float64 { return nv(r.x, node) }

// VName returns the voltage of a named node.
func (r *OPResult) VName(name string) float64 {
	idx, ok := r.c.nodeIdx[name]
	if !ok {
		panic(fmt.Sprintf("spice: unknown node %q", name))
	}
	return nv(r.x, idx)
}

// SourceI returns the branch current of a voltage source (by index from
// AddV): positive current flows from the + terminal through the source to
// the − terminal, i.e. a supply delivering power has negative SourceI.
func (r *OPResult) SourceI(src int) float64 {
	return r.x[len(r.c.nodeNames)+src]
}

// Raw returns the raw unknown vector (nodes then branch currents).
func (r *OPResult) Raw() []float64 { return r.x }

// OP computes the DC operating point at t=0. It first attempts plain Newton
// from the zero (or warm) state, then gmin stepping, then source stepping.
func (c *Circuit) OP() (*OPResult, error) {
	return c.op(nil)
}

// OPFrom computes the operating point warm-started from a previous solution
// (e.g. during a DC sweep).
func (c *Circuit) OPFrom(prev *OPResult) (*OPResult, error) {
	if prev == nil {
		return c.op(nil)
	}
	guess := make([]float64, len(prev.x))
	copy(guess, prev.x)
	return c.op(guess)
}

func (c *Circuit) op(guess []float64) (*OPResult, error) {
	c.obsScope.Enter(obs.PhaseSolve)
	defer c.obsScope.Exit()
	x := make([]float64, c.unknowns())
	if err := c.solveOPInto(x, guess, false); err != nil {
		return nil, err
	}
	return &OPResult{c: c, x: x}, nil
}

// solveOPInto computes the DC operating point into x without allocating:
// plain Newton from the guess (or zero) state, then the bounded rescue
// ladder — gmin stepping, source stepping, pseudo-transient ramp. Each
// successful rung is counted in SolverStats so Monte Carlo run reports can
// attribute rescues per ladder stage; when every rung fails, the returned
// error is the last rung's typed *ConvergenceError. guess must not alias x.
// When carry is set, plain Newton runs in the fast-MC configuration: it may
// start from a Jacobian factorization carried over from a previous solve
// and uses the relaxed fast-path tolerances (see newton).
func (c *Circuit) solveOPInto(x, guess []float64, carry bool) error {
	n := c.unknowns()
	reset := func() {
		for i := range x {
			x[i] = 0
		}
		if guess != nil && len(guess) == n {
			copy(x, guess)
		}
	}
	reset()

	// 1. Plain Newton. The failure is kept as the trace cause: each rescued
	// rung reports the worst node that made plain Newton give up.
	ctx := assembleCtx{srcScale: 1, carry: carry, fast: carry}
	first := c.newton(x, &ctx)
	if first == nil {
		return nil
	}
	// An interrupted solve (context cancelled, budget exhausted) must not
	// climb the ladder: every further rung burns exactly the resource the
	// error protects. Same check after each rung below.
	if lifecycle.Interrupted(first) {
		return first.at(StageDCNewton, 0)
	}

	// 2. Gmin stepping. Each rung runs inside a trace span so the flight
	// recorder shows which rescue a pathological sample spent its time in
	// (free without a tracer: SpanBegin/SpanEnd are a nil check each).
	reset()
	c.obsScope.SpanBegin("rescue:" + string(StageDCGmin))
	cerr := c.gminStepInto(x)
	c.obsScope.SpanEnd()
	if cerr == nil {
		c.stats.DCGminRescues++
		c.traceRescue(StageDCGmin, 0, first)
		return nil
	}
	if lifecycle.Interrupted(cerr) {
		return cerr
	}

	// 3. Source stepping always ramps from the zero state.
	for i := range x {
		x[i] = 0
	}
	c.obsScope.SpanBegin("rescue:" + string(StageDCSource))
	cerr = c.sourceStepInto(x)
	c.obsScope.SpanEnd()
	if cerr == nil {
		c.stats.DCSourceRescues++
		c.traceRescue(StageDCSource, 0, first)
		return nil
	}
	if lifecycle.Interrupted(cerr) {
		return cerr
	}

	// 4. Pseudo-transient ramp.
	reset()
	c.obsScope.SpanBegin("rescue:" + string(StageDCPseudo))
	cerr = c.pseudoTransientInto(x)
	c.obsScope.SpanEnd()
	if cerr == nil {
		c.stats.DCPseudoRescues++
		c.traceRescue(StageDCPseudo, 0, first)
		return nil
	}
	return cerr
}

// gminStepInto solves with a large artificial conductance to ground and
// relaxes it, warm-starting each stage.
func (c *Circuit) gminStepInto(x []float64) *ConvergenceError {
	for _, gm := range []float64{1e-3, 1e-5, 1e-7, 1e-9, 0} {
		ctx := assembleCtx{srcScale: 1, gminExtra: gm}
		if cerr := c.newton(x, &ctx); cerr != nil {
			return cerr.at(StageDCGmin, 0)
		}
	}
	return nil
}

// sourceStepInto ramps all sources from 10% to 100%, warm-starting each λ.
func (c *Circuit) sourceStepInto(x []float64) *ConvergenceError {
	for _, lam := range []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1} {
		ctx := assembleCtx{srcScale: lam, gminExtra: 1e-9}
		if cerr := c.newton(x, &ctx); cerr != nil {
			cerr.Err = fmt.Errorf("at λ=%g: %w", lam, cerr.Err)
			return cerr.at(StageDCSource, 0)
		}
	}
	ctx := assembleCtx{srcScale: 1}
	return c.newton(x, &ctx).at(StageDCSource, 0)
}

// pseudoTransientInto is the last DC rescue rung: backward-Euler
// pseudo-transient continuation. Each sub-solve anchors every node to the
// previous pseudo-state through a conductance g (the companion of a
// grounded pseudo-capacitance Cp with g = Cp/h); a large g makes the solve
// nearly trivial, and each accepted pseudo-step relaxes g geometrically so
// the anchor walks toward the true operating point. A failed sub-solve
// tightens the anchor and retries within a bounded budget — which also
// rides out transiently ill-behaved model evaluations — and the rung only
// succeeds on a final anchor-free solve.
func (c *Circuit) pseudoTransientInto(x []float64) *ConvergenceError {
	n := c.unknowns()
	if len(c.ptRef) != n {
		c.ptRef = make([]float64, n)
		c.ptSave = make([]float64, n)
	}
	copy(c.ptRef, x)
	const (
		gStart = 1.0   // initial anchor conductance, S
		gCeil  = 1e6   // tightest anchor tried after failures
		gFloor = 1e-12 // at/below this the anchor is dropped (exact solve)
		budget = 60    // total sub-solves allowed
	)
	g := gStart
	var last *ConvergenceError
	for tries := 0; tries < budget; tries++ {
		ctx := assembleCtx{srcScale: 1, ptG: g, ptRef: c.ptRef}
		if g <= gFloor {
			ctx.ptG = 0
		}
		copy(c.ptSave, x)
		cerr := c.newton(x, &ctx)
		if cerr != nil {
			if lifecycle.Interrupted(cerr) {
				return cerr.at(StageDCPseudo, 0)
			}
			last = cerr
			copy(x, c.ptSave) // restart this pseudo-step from the anchor
			if g = g * 16; g > gCeil {
				g = gCeil
			}
			continue
		}
		if ctx.ptG == 0 {
			return nil // anchor-free solve converged: true operating point
		}
		copy(c.ptRef, x) // accept the pseudo-step, advance the anchor
		g /= 4
	}
	if last == nil {
		last = &ConvergenceError{Err: ErrNoConvergence}
	}
	last.Err = fmt.Errorf("pseudo-transient budget exhausted: %w", last.Err)
	return last.at(StageDCPseudo, 0)
}

// DCSweep solves the operating point for each value assigned to the voltage
// source src (index from AddV), warm-starting from the previous point. The
// source's waveform is restored afterwards.
func (c *Circuit) DCSweep(src int, values []float64) ([]*OPResult, error) {
	saved := c.vs[src].wave
	defer func() { c.vs[src].wave = saved }()

	out := make([]*OPResult, 0, len(values))
	var prev *OPResult
	for _, v := range values {
		c.vs[src].wave = DC(v)
		op, err := c.OPFrom(prev)
		if err != nil {
			return nil, fmt.Errorf("spice: DC sweep failed at %g V: %w", v, err)
		}
		out = append(out, op)
		prev = op
	}
	return out, nil
}

// DCSweepObserve is the allocation-free DC sweep: it solves the operating
// point for each value assigned to voltage source src, warm-starting from
// the previous point exactly like DCSweep, and records the voltage of node
// observe into out (which must have len(values) entries). The solve reuses
// circuit-owned sweep scratch; carry enables the carried-Jacobian fast path
// between sweep points. The source's waveform is restored afterwards.
func (c *Circuit) DCSweepObserve(src int, values []float64, observe int, out []float64, carry bool) error {
	if len(out) < len(values) {
		return fmt.Errorf("spice: DCSweepObserve out has %d entries for %d values", len(out), len(values))
	}
	saved := c.vs[src].wave
	defer func() { c.vs[src].wave = saved }()

	c.obsScope.Enter(obs.PhaseSolve)
	defer c.obsScope.Exit()

	n := c.unknowns()
	if len(c.swX) != n {
		c.swX = make([]float64, n)
		c.swGuess = make([]float64, n)
	}
	var guess []float64
	for k, v := range values {
		c.vs[src].wave = DC(v)
		if err := c.solveOPInto(c.swX, guess, carry); err != nil {
			return fmt.Errorf("spice: DC sweep failed at %g V: %w", v, err)
		}
		copy(c.swGuess, c.swX)
		guess = c.swGuess
		out[k] = nv(c.swX, observe)
	}
	return nil
}
