package spice

import (
	"context"
	"errors"
	"testing"
	"time"

	"vstat/internal/device"
	"vstat/internal/lifecycle"
	"vstat/internal/vsmodel"
)

// slowInverter nets the test inverter with every MOS wrapped in a
// FaultSlowEval card: each model evaluation sleeps perEval, so the solver
// reaches its iteration boundaries slowly but surely — the cooperative wall
// deadline, not the hang watchdog, is what must catch it.
func slowInverter(perEval time.Duration) (c *Circuit, out int) {
	c = New()
	vdd := c.Node("vdd")
	in := c.Node("in")
	out = c.Node("out")
	c.AddV("VDD", vdd, Gnd, DC(0.9))
	c.AddV("VIN", in, Gnd, Pulse{V0: 0, V1: 0.9, Delay: 20e-12, Rise: 10e-12, Fall: 10e-12, Width: 200e-12})
	n := vsmodel.NMOS40(300e-9)
	p := vsmodel.PMOS40(600e-9)
	c.AddMOS("MN", out, in, Gnd, Gnd,
		&device.FaultCard{Inner: &n, Mode: device.FaultSlowEval, SlowFor: perEval})
	c.AddMOS("MP", out, in, vdd, vdd,
		&device.FaultCard{Inner: &p, Mode: device.FaultSlowEval, SlowFor: perEval})
	c.AddC("CL", out, Gnd, 2e-15)
	return c, out
}

func TestArmSampleCancelledContextStopsSolve(t *testing.T) {
	c, _ := testInverter()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c.ArmSample(ctx, lifecycle.Budget{})
	if _, err := c.OP(); !errors.Is(err, context.Canceled) {
		t.Fatalf("OP under a cancelled context returned %v, want a context.Canceled chain", err)
	}
	// The cancellation must not be retried by the rescue ladder.
	if st := c.Stats(); st.DCGminRescues != 0 || st.DCSourceRescues != 0 || st.DCPseudoRescues != 0 {
		t.Fatalf("rescue ladder climbed on a cancelled sample: %+v", st)
	}
	// Disarming restores normal operation on the same circuit.
	c.DisarmSample()
	if _, err := c.OP(); err != nil {
		t.Fatalf("OP after DisarmSample: %v", err)
	}
}

func TestArmSampleCancelledContextStopsTransient(t *testing.T) {
	c, _ := testInverter()
	// Let the operating point succeed, then cancel before the transient.
	op, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	_ = op
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c.ArmSample(ctx, lifecycle.Budget{})
	_, err = c.Transient(TranOpts{Stop: 100e-12, Step: 1e-12})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("transient under a cancelled context returned %v, want a context.Canceled chain", err)
	}
	if !lifecycle.Interrupted(err) {
		t.Fatalf("transient cancellation %v not classified as interrupted", err)
	}
	// The sub-step rescue ladder must not have tried to ride out the
	// cancellation.
	if st := c.Stats(); st.TranHalvings != 0 || st.Rescues != 0 {
		t.Fatalf("transient rescue ladder climbed on a cancelled sample: %+v", st)
	}
}

func TestArmSampleIterationBudget(t *testing.T) {
	c, _ := testInverter()
	c.ArmSample(context.Background(), lifecycle.Budget{MaxNewton: 3})
	_, err := c.OP()
	var be *lifecycle.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("OP under a 3-iteration budget returned %v, want a BudgetError chain", err)
	}
	if be.Kind != lifecycle.OverIters {
		t.Fatalf("budget error kind %v, want OverIters", be.Kind)
	}
	if !lifecycle.IsBudget(err) || !lifecycle.Interrupted(err) {
		t.Fatalf("classification helpers disagree on %v", err)
	}
	if st := c.Stats(); st.DCGminRescues != 0 || st.DCSourceRescues != 0 || st.DCPseudoRescues != 0 {
		t.Fatalf("rescue ladder climbed on an over-budget sample: %+v", st)
	}
	if c.LifecycleIters() <= 3 {
		t.Fatalf("LifecycleIters = %d, want > 3 after tripping the cap", c.LifecycleIters())
	}
	// A generous budget on the same circuit solves fine and counts work.
	c.ArmSample(context.Background(), lifecycle.Budget{MaxNewton: 1 << 40})
	if _, err := c.OP(); err != nil {
		t.Fatalf("OP under a generous budget: %v", err)
	}
	if c.LifecycleIters() == 0 {
		t.Fatal("successful armed solve counted no iterations")
	}
}

// TestArmSampleWallBudgetSlowEval: a slow-but-alive sample (every model
// evaluation sleeps) keeps reaching iteration boundaries, so the cooperative
// wall check kills it — quickly, and typed.
func TestArmSampleWallBudgetSlowEval(t *testing.T) {
	c, _ := slowInverter(2 * time.Millisecond)
	c.ArmSample(context.Background(), lifecycle.Budget{Wall: 15 * time.Millisecond})
	start := time.Now()
	_, err := c.OP()
	elapsed := time.Since(start)
	var be *lifecycle.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("slow OP under a 15ms wall budget returned %v, want a BudgetError chain", err)
	}
	if be.Kind != lifecycle.OverWall {
		t.Fatalf("budget error kind %v, want OverWall", be.Kind)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("wall-budgeted solve ran %v before dying", elapsed)
	}
}

// TestArmedTransientAllocFree pins the acceptance criterion that budget
// checks add zero allocations per transient step: a fully armed circuit
// (live cancellation channel, wall deadline, and iteration cap) must repeat
// transients without a single allocation, exactly like a disarmed one.
func TestArmedTransientAllocFree(t *testing.T) {
	c, _ := testInverter()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := TranOpts{Stop: 100e-12, Step: 1e-12}
	var res TranResult
	c.ArmSample(ctx, lifecycle.Budget{Wall: time.Hour, MaxNewton: 1 << 40})
	if err := c.TransientInto(opts, &res); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		c.ArmSample(ctx, lifecycle.Budget{Wall: time.Hour, MaxNewton: 1 << 40})
		if err := c.TransientInto(opts, &res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("armed TransientInto allocates %.1f objects per run, want 0", allocs)
	}
}
