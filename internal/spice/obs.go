package spice

import "vstat/internal/obs"

// SetObs attaches a per-worker observability scope to the circuit. The
// solver then attributes factor and Newton-solve time to the scope's phase
// accumulators and routes rescue/non-finite/fallback traces to the scope's
// event sink. A nil scope (the default) keeps every instrumentation site a
// single pointer check — the solver hot path stays allocation-free and
// within the benchmark budget with observability disabled.
func (c *Circuit) SetObs(sc *obs.Scope) { c.obsScope = sc }

// SetObsSample tags subsequent solver traces with the Monte Carlo sample
// index currently running on this circuit.
func (c *Circuit) SetObsSample(idx int) { c.obsSample = idx }

// AttachTracer forwards a span tracer to the attached scope, so solver
// phase Enter/Exit pairs and rescue-ladder rungs emit trace spans. Safe
// (and a no-op) without a scope.
func (c *Circuit) AttachTracer(t obs.Tracer) { c.obsScope.SetTracer(t) }

// traceRescue emits a rescue-ladder escalation event carrying the rung that
// is being entered (or just succeeded) and the worst node of the triggering
// convergence failure. All trace helpers are cheap no-ops without an
// attached event sink, and the sink itself drops sampled-out events before
// building attributes.
func (c *Circuit) traceRescue(stage Stage, t float64, cause *ConvergenceError) {
	sink := c.obsScope.Events()
	if sink == nil {
		return
	}
	node, iters := "", 0
	if cause != nil {
		node, iters = cause.Node, cause.Iters
	}
	sink.Rescue(c.obsSample, string(stage), t, node, iters)
}

// traceNonFinite emits a NaN/Inf rejection event.
func (c *Circuit) traceNonFinite(where string, t float64) {
	c.obsScope.Events().NonFinite(c.obsSample, where, t)
}

// traceFallback emits a fast→exact fallback event.
func (c *Circuit) traceFallback(t float64) {
	c.obsScope.Events().Fallback(c.obsSample, t)
}
