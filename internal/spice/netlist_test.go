package spice

import (
	"math"
	"strings"
	"testing"
)

func TestParseValue(t *testing.T) {
	cases := map[string]float64{
		"1":     1,
		"1.5":   1.5,
		"-3":    -3,
		"1k":    1e3,
		"2.2u":  2.2e-6,
		"40n":   40e-9,
		"40nm":  40e-9,
		"1p":    1e-12,
		"3f":    3e-15,
		"5meg":  5e6,
		"1e-12": 1e-12,
		"2e3":   2e3,
		"0.9v":  0.9,
		"7m":    7e-3,
		"1g":    1e9,
		"2t":    2e12,
	}
	for in, want := range cases {
		got, err := ParseValue(in)
		if err != nil {
			t.Fatalf("ParseValue(%q): %v", in, err)
		}
		if math.Abs(got-want) > 1e-12*math.Abs(want) {
			t.Fatalf("ParseValue(%q) = %g want %g", in, got, want)
		}
	}
	for _, bad := range []string{"", "abc", "1x", "--3"} {
		if _, err := ParseValue(bad); err == nil {
			t.Fatalf("ParseValue(%q) should fail", bad)
		}
	}
}

const inverterDeck = `VS inverter test deck
VDD vdd 0 DC 0.9
VIN in 0 PULSE(0 0.9 20p 10p 10p 150p 400p)
MP out in vdd vdd pmos W=600n L=40n
MN out in 0 0 nmos W=300n L=40n
CL out 0 1f
.op
.tran 1p 400p
.end
`

func TestParseNetlistInverter(t *testing.T) {
	d, err := ParseNetlist(strings.NewReader(inverterDeck))
	if err != nil {
		t.Fatal(err)
	}
	if d.Title != "VS inverter test deck" {
		t.Fatalf("title %q", d.Title)
	}
	if !d.OPRequested || len(d.TranCards) != 1 {
		t.Fatalf("analyses: op=%v tran=%d", d.OPRequested, len(d.TranCards))
	}
	if d.TranCards[0].Step != 1e-12 || d.TranCards[0].Stop != 400e-12 {
		t.Fatalf("tran card %+v", d.TranCards[0])
	}
	// The deck runs: OP then transient.
	op, err := d.Circuit.OP()
	if err != nil {
		t.Fatal(err)
	}
	if v := op.VName("out"); v < 0.85 {
		t.Fatalf("OP out=%g", v)
	}
	res, err := d.Circuit.Transient(TranOpts{Stop: d.TranCards[0].Stop, Step: d.TranCards[0].Step})
	if err != nil {
		t.Fatal(err)
	}
	min := 1.0
	for _, v := range res.VName("out") {
		if v < min {
			min = v
		}
	}
	if min > 0.05 {
		t.Fatalf("inverter never switched: min=%g", min)
	}
}

func TestParseNetlistDCAndIC(t *testing.T) {
	deck := `sweep deck
V1 a 0 DC 0
R1 a b 1k
R2 b 0 1k
.ic v(b)=0.25
.dc V1 0 1 0.5
`
	d, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.DCCards) != 1 || d.DCCards[0].Source != "V1" {
		t.Fatalf("dc cards %+v", d.DCCards)
	}
	if d.ICs["b"] != 0.25 {
		t.Fatalf("ics %+v", d.ICs)
	}
	src := d.Circuit.VSourceIndex("V1")
	if src < 0 {
		t.Fatal("source not registered")
	}
	ops, err := d.Circuit.DCSweep(src, []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v := ops[2].VName("b"); math.Abs(v-0.5) > 1e-6 {
		t.Fatalf("sweep endpoint b=%g", v)
	}
}

func TestParseNetlistGoldenModels(t *testing.T) {
	deck := `golden
VDD vdd 0 DC 0.9
MN d vdd 0 0 nmos_golden W=1u L=40n
MP d2 0 vdd vdd pmos_golden W=1u L=40n
R1 d 0 1k
R2 d2 vdd 1k
.op
`
	d, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Circuit.OP(); err != nil {
		t.Fatal(err)
	}
}

func TestParseNetlistErrors(t *testing.T) {
	bad := []string{
		"t\nR1 a 0\n",                    // too few resistor fields
		"t\nM1 d g s b nmos W=1u\n",      // missing L
		"t\nM1 d g s b foo W=1u L=40n\n", // unknown model
		"t\nV1 a 0 WOBBLE(1 2)\n",        // unknown waveform
		"t\n.dc V1 0 1\n",                // short dc card
		"t\n.tran 1p\n",                  // short tran card
		"t\n.wibble\n",                   // unknown card
		"t\nX1 a b c\n",                  // unknown element
		"t\n.ic frog=3\n",                // bad ic token
		"t\nV1 a 0 PULSE(1 2 3)\n",       // short pulse
		"t\nV1 a 0 PWL(1 2 3)\n",         // odd pwl
	}
	for _, deck := range bad {
		if _, err := ParseNetlist(strings.NewReader(deck)); err == nil {
			t.Fatalf("deck %q should fail", deck)
		}
	}
}

func TestParsePWLAndComments(t *testing.T) {
	deck := `pwl deck
* a comment
V1 a 0 PWL(0 0 1n 1 2n, 0)
R1 a 0 1k
`
	d, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	w := d.Circuit.vs[0].wave
	if v := w.At(1e-9); math.Abs(v-1) > 1e-12 {
		t.Fatalf("PWL peak %g", v)
	}
	if v := w.At(1.5e-9); math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("PWL mid %g", v)
	}
}

func TestParseNetlistACCard(t *testing.T) {
	deck := `ac deck
VIN in 0 DC 0
R1 in out 1k
C1 out 0 1n
.ac VIN 1k 1meg 5
`
	d, err := ParseNetlist(strings.NewReader(deck))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.ACCards) != 1 {
		t.Fatalf("ac cards %d", len(d.ACCards))
	}
	ac := d.ACCards[0]
	if ac.Source != "VIN" || ac.FStart != 1e3 || ac.FStop != 1e6 || ac.Points != 5 {
		t.Fatalf("ac card %+v", ac)
	}
	src := d.Circuit.VSourceIndex(ac.Source)
	res, err := d.Circuit.AC(src, LogSpace(ac.FStart, ac.FStop, ac.Points))
	if err != nil {
		t.Fatal(err)
	}
	// DC-ish point near unity, high frequency attenuated.
	lo := res.VName("out", 0)
	hi := res.VName("out", len(res.Freqs)-1)
	if math.Hypot(real(lo), imag(lo)) < 0.99 {
		t.Fatalf("low-frequency magnitude %v", lo)
	}
	if math.Hypot(real(hi), imag(hi)) > 0.2 {
		t.Fatalf("high-frequency magnitude %v", hi)
	}
	// Bad cards.
	for _, bad := range []string{
		"t\n.ac VIN 1k 1meg\n",
		"t\n.ac VIN 0 1meg 5\n",
		"t\n.ac VIN 1meg 1k 5\n",
	} {
		if _, err := ParseNetlist(strings.NewReader(bad)); err == nil {
			t.Fatalf("deck %q should fail", bad)
		}
	}
}
