package spice

import (
	"fmt"
	"math"
)

// AdaptiveOpts configures TransientAdaptive.
type AdaptiveOpts struct {
	Stop    float64 // end time, s
	MaxStep float64 // largest allowed step, s
	MinStep float64 // smallest allowed step (default MaxStep/1024)
	// TolV is the per-node local-truncation proxy: the allowed difference
	// between the linear prediction and the converged solution (default
	// 1 mV). Larger values take bigger steps through quiet regions.
	TolV float64
	Trap bool
	UIC  bool
	IC   map[int]float64
}

// TransientAdaptive runs an implicit transient with local-truncation-error
// step control: each step starts from the linear extrapolation of the
// previous two points, and the max-norm gap between that prediction and the
// converged solution drives the step size (reject and halve above 4×TolV,
// grow by 1.4× below TolV/4). Quiet stretches of a waveform cost almost
// nothing, while edges are resolved down to MinStep.
//
// The resulting time grid is non-uniform; TranResult.At interpolates it
// transparently.
func (c *Circuit) TransientAdaptive(opts AdaptiveOpts) (*TranResult, error) {
	if opts.Stop <= 0 || opts.MaxStep <= 0 {
		return nil, fmt.Errorf("spice: invalid adaptive window stop=%g maxstep=%g", opts.Stop, opts.MaxStep)
	}
	if opts.MinStep <= 0 {
		opts.MinStep = opts.MaxStep / 1024
	}
	if opts.TolV <= 0 {
		opts.TolV = 1e-3
	}
	n := c.unknowns()
	nNodes := len(c.nodeNames)
	x := make([]float64, n)
	if opts.UIC {
		for node, v := range opts.IC {
			if node != Gnd {
				x[node] = v
			}
		}
	} else {
		op, err := c.OP()
		if err != nil {
			return nil, fmt.Errorf("spice: adaptive transient initial OP: %w", err)
		}
		copy(x, op.x)
	}

	ts := &tranState{h: opts.MinStep, trap: opts.Trap, firstBE: true}
	c.initTranHistory(x, ts)

	res := &TranResult{c: c}
	snap := func(t float64) {
		xc := make([]float64, n)
		copy(xc, x)
		res.Time = append(res.Time, t)
		res.xs = append(res.xs, xc)
	}
	snap(0)

	xPrev := make([]float64, n)
	copy(xPrev, x)
	tPrev := 0.0
	t := 0.0
	h := opts.MinStep // conservative start resolves the initial corner
	pred := make([]float64, n)
	work := make([]float64, n)

	for t < opts.Stop-1e-21 {
		if t+h > opts.Stop {
			h = opts.Stop - t
		}
		// Predict along the last segment's slope.
		if t > 0 && t > tPrev {
			f := h / (t - tPrev)
			for i := range pred {
				pred[i] = x[i] + f*(x[i]-xPrev[i])
			}
		} else {
			copy(pred, x)
		}
		copy(work, pred)
		ts.h = h
		c.saveTranHistory(ts)
		ctx := assembleCtx{t: t + h, srcScale: 1, tran: ts}
		err := c.stepSolve(work, &ctx)

		// Error proxy: prediction gap over the node voltages.
		gap := 0.0
		if err == nil {
			for i := 0; i < nNodes; i++ {
				if d := math.Abs(work[i] - pred[i]); d > gap {
					gap = d
				}
			}
		}

		if err != nil || gap > 4*opts.TolV {
			// Reject: shrink and retry (accept unconditionally at MinStep
			// to guarantee progress; the rescue ladder handles corners).
			if h > opts.MinStep {
				h = math.Max(h/2, opts.MinStep)
				continue
			}
			if err != nil {
				copy(work, x)
				if err2 := c.rescueLadder(x, work, t, h, ts, false); err2 != nil {
					return nil, fmt.Errorf("spice: adaptive transient failed at t=%g: %w", t+h, asError(err2))
				}
				// rescueStep already updated the charge history.
				copy(xPrev, x)
				copy(x, work)
				tPrev, t = t, t+h
				ts.firstBE = false
				snap(t)
				continue
			}
		}

		// Accept (unless the history update surfaced a NaN/Inf model
		// evaluation, which would poison every later step).
		c.updateTranHistory(work, ts)
		if !c.tranHistoryFinite(ts) {
			c.stats.NonFiniteRejects++
			c.restoreTranHistory(ts)
			if h > opts.MinStep {
				h = math.Max(h/2, opts.MinStep)
				continue
			}
			cerr := &ConvergenceError{Err: ErrNonFiniteSolution}
			return nil, fmt.Errorf("spice: adaptive transient failed at t=%g: %w", t+h, asError(cerr.at(StageTran, t+h)))
		}
		copy(xPrev, x)
		copy(x, work)
		tPrev, t = t, t+h
		ts.firstBE = false
		snap(t)
		if gap < opts.TolV/4 && h < opts.MaxStep {
			h = math.Min(h*1.4, opts.MaxStep)
		}
	}
	return res, nil
}
