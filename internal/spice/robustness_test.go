package spice

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vstat/internal/vsmodel"
)

// Property: for random resistive ladder networks the MNA solution matches
// the analytic series/parallel reduction.
func TestResistiveLadderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		rs := make([]float64, n) // series arms
		gs := make([]float64, n) // shunt arms
		for i := range rs {
			rs[i] = 100 + 10000*rng.Float64()
			gs[i] = 100 + 10000*rng.Float64()
		}
		// Build ladder: src - R0 - n1 - R1 - n2 ... each ni has shunt to gnd.
		c := New()
		prev := c.Node("in")
		c.AddV("V", prev, Gnd, DC(1))
		for i := 0; i < n; i++ {
			ni := c.Node("n" + string(rune('0'+i)))
			c.AddR("Rs"+string(rune('0'+i)), prev, ni, rs[i])
			c.AddR("Rg"+string(rune('0'+i)), ni, Gnd, gs[i])
			prev = ni
		}
		op, err := c.OP()
		if err != nil {
			return false
		}
		// Analytic: fold from the far end.
		rEq := math.Inf(1)
		for i := n - 1; i >= 0; i-- {
			// shunt gs[i] parallel with (rs[i+1]+rEq tail) handled iteratively
			tail := gs[i]
			if !math.IsInf(rEq, 1) {
				tail = 1 / (1/gs[i] + 1/rEq)
			}
			rEq = rs[i] + tail
		}
		iIn := 1 / rEq
		// Compare input current.
		got := -op.SourceI(0)
		return math.Abs(got-iIn) < 1e-6*(1+iIn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: transient charge conservation — the integral of source current
// equals the capacitor charge change in a source-R-C loop.
func TestTransientChargeConservation(t *testing.T) {
	for _, trap := range []bool{false, true} {
		c := New()
		in := c.Node("in")
		out := c.Node("out")
		R, C := 2000.0, 0.5e-9
		c.AddV("V", in, Gnd, PWL{T: []float64{0, 1e-6}, V: []float64{0, 1}})
		c.AddR("R", in, out, R)
		c.AddC("C", out, Gnd, C)
		h := 2e-9
		res, err := c.Transient(TranOpts{Stop: 2e-6, Step: h, Trap: trap, UIC: true})
		if err != nil {
			t.Fatal(err)
		}
		iSrc := res.SourceI(0)
		// Trapezoidal integral of the branch current (flows p→n inside the
		// source, so the current delivered into the circuit is −iSrc).
		qIn := 0.0
		for k := 1; k < len(iSrc); k++ {
			qIn += -0.5 * (iSrc[k] + iSrc[k-1]) * h
		}
		vOut := res.VName("out")
		qCap := C * (vOut[len(vOut)-1] - vOut[0])
		if math.Abs(qIn-qCap) > 0.02*math.Abs(qCap) {
			t.Fatalf("trap=%v: injected charge %g vs cap charge %g", trap, qIn, qCap)
		}
	}
}

// A floating-gate circuit exercises the gmin path: a MOSFET whose gate has
// no DC path must still converge.
func TestFloatingGateGminConvergence(t *testing.T) {
	c := New()
	vdd := c.Node("vdd")
	gate := c.Node("gate")
	out := c.Node("out")
	c.AddV("VDD", vdd, Gnd, DC(0.9))
	n := vsmodel.NMOS40(300e-9)
	c.AddMOS("MN", out, gate, Gnd, Gnd, &n)
	c.AddR("RL", vdd, out, 10000)
	c.AddC("CG", gate, Gnd, 1e-15) // gate floats in DC
	op, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	// Gate pulled to ground by gmin → device off → out ≈ vdd.
	if op.V(out) < 0.85 {
		t.Fatalf("out = %g", op.V(out))
	}
}

// Source stepping: a cross-coupled bistable pair with a poor initial guess
// still finds an operating point through the convergence aids.
func TestBistableOPConverges(t *testing.T) {
	c := New()
	vdd := c.Node("vdd")
	a := c.Node("a")
	b := c.Node("b")
	c.AddV("VDD", vdd, Gnd, DC(0.9))
	n1 := vsmodel.NMOS40(300e-9)
	p1 := vsmodel.PMOS40(600e-9)
	n2 := vsmodel.NMOS40(300e-9)
	p2 := vsmodel.PMOS40(600e-9)
	c.AddMOS("MN1", b, a, Gnd, Gnd, &n1)
	c.AddMOS("MP1", b, a, vdd, vdd, &p1)
	c.AddMOS("MN2", a, b, Gnd, Gnd, &n2)
	c.AddMOS("MP2", a, b, vdd, vdd, &p2)
	op, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	va, vb := op.V(a), op.V(b)
	// Any self-consistent point is acceptable: rails or metastable midpoint.
	if va < -0.01 || va > 0.91 || vb < -0.01 || vb > 0.91 {
		t.Fatalf("unphysical OP: a=%g b=%g", va, vb)
	}
}

func TestOPFromWarmStart(t *testing.T) {
	c := New()
	in := c.Node("in")
	c.AddV("V", in, Gnd, DC(1))
	c.AddR("R", in, Gnd, 100)
	op1, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	op2, err := c.OPFrom(op1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op2.V(in)-1) > 1e-9 {
		t.Fatal("warm start wrong")
	}
	if _, err := c.OPFrom(nil); err != nil {
		t.Fatal("OPFrom(nil) should fall back to cold start")
	}
}

func TestTransientInvalidOpts(t *testing.T) {
	c := New()
	c.AddR("R", c.Node("a"), Gnd, 100)
	if _, err := c.Transient(TranOpts{Stop: 0, Step: 1e-12}); err == nil {
		t.Fatal("expected error for Stop<=0")
	}
	if _, err := c.Transient(TranOpts{Stop: 1e-9, Step: 0}); err == nil {
		t.Fatal("expected error for Step<=0")
	}
}

func TestSetVSourceReplacesWaveform(t *testing.T) {
	c := New()
	in := c.Node("in")
	src := c.AddV("V", in, Gnd, DC(1))
	c.AddR("R", in, Gnd, 100)
	c.SetVSource(src, DC(2))
	op, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.V(in)-2) > 1e-9 {
		t.Fatalf("SetVSource did not take: %g", op.V(in))
	}
}
