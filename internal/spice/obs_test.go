package spice

import (
	"log/slog"
	"strings"
	"testing"
	"time"

	"vstat/internal/device"
	"vstat/internal/obs"
)

// TestInstrumentedHotPathAllocFreeWhenDisabled is the zero-overhead guard:
// with observability disabled (nil scope, the default), the instrumented
// solver hot path must allocate nothing per transient — the same contract
// TestTransientIntoReusesStorageAllocFree enforces pre-instrumentation.
func TestInstrumentedHotPathAllocFreeWhenDisabled(t *testing.T) {
	obs.SetEnabled(false)
	for _, fast := range []bool{false, true} {
		c, _ := testInverter()
		if c.obsScope != nil {
			t.Fatal("fresh circuit should have no observability scope")
		}
		opts := TranOpts{Stop: 100e-12, Step: 1e-12, Fast: fast}
		var res TranResult
		if err := c.TransientInto(opts, &res); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(5, func() {
			if err := c.TransientInto(opts, &res); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("fast=%v: instrumented TransientInto allocates %.1f objects per run with observability disabled, want 0", fast, allocs)
		}
	}
}

// TestInstrumentedHotPathAllocFreeWhenEnabled: even with a live scope
// attached, the per-transient recording path (span enters/exits, histogram
// observes) must not allocate.
func TestInstrumentedHotPathAllocFreeWhenEnabled(t *testing.T) {
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(false) })
	reg := obs.NewRegistry()
	pm := obs.NewPhaseMetrics(reg)
	sc := obs.NewScope(reg.NewShard(), pm)

	c, _ := testInverter()
	c.SetObs(sc)
	opts := TranOpts{Stop: 100e-12, Step: 1e-12}
	var res TranResult
	if err := c.TransientInto(opts, &res); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := c.TransientInto(opts, &res); err != nil {
			t.Fatal(err)
		}
		sc.EndSample()
	})
	if allocs != 0 {
		t.Fatalf("instrumented TransientInto allocates %.1f objects per run with a live scope, want 0", allocs)
	}
}

// TestSolverPhaseAttribution: a transient on an instrumented circuit books
// assemble-J, lu-factor, tri-solve and newton-solve self-time that sums to
// roughly the wall time of the run, and the assemble/factor/solve phases
// are nonempty (every transient refreshes the Jacobian at least once and
// runs at least one triangular solve per step).
func TestSolverPhaseAttribution(t *testing.T) {
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(false) })
	reg := obs.NewRegistry()
	pm := obs.NewPhaseMetrics(reg)
	sc := obs.NewScope(reg.NewShard(), pm)

	c, _ := testInverter()
	c.SetObs(sc)
	var res TranResult
	start := time.Now()
	if err := c.TransientInto(TranOpts{Stop: 400e-12, Step: 1e-12}, &res); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start).Nanoseconds()
	sc.EndSample()

	snap := reg.Snapshot()
	assemble := snap.Find("mc_phase_assemble-J_ns").Sum
	factor := snap.Find("mc_phase_lu-factor_ns").Sum
	tri := snap.Find("mc_phase_tri-solve_ns").Sum
	solve := snap.Find("mc_phase_newton-solve_ns").Sum
	if assemble <= 0 {
		t.Fatal("assemble-J phase recorded no time")
	}
	if factor <= 0 {
		t.Fatal("lu-factor phase recorded no time")
	}
	if tri <= 0 {
		t.Fatal("tri-solve phase recorded no time")
	}
	if solve <= 0 {
		t.Fatal("newton-solve phase recorded no time")
	}
	total := assemble + factor + tri + solve
	if float64(total) < 0.5*float64(wall) || total > wall+wall/10 {
		t.Fatalf("phase sum %v vs wall %v: expected the solver phases to cover the run",
			time.Duration(total), time.Duration(wall))
	}
}

// TestDCRescueTraces: a DC rescue emits a structured trace carrying the
// ladder stage, and the registry-facing counters (SolverStats) agree.
func TestDCRescueTraces(t *testing.T) {
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(false) })
	reg := obs.NewRegistry()
	pm := obs.NewPhaseMetrics(reg)
	sc := obs.NewScope(reg.NewShard(), pm)
	var buf strings.Builder
	sc.SetEvents(obs.NewEventSink(&buf, slog.LevelInfo, 1))

	// Fault the NMOS through the plain-Newton window so the gmin rung
	// rescues the OP (the calibration pattern of rescue_test.go).
	const maxNewton = 20
	ePlain := plainStageEvals(t, maxNewton)
	card := &device.FaultCard{Inner: cleanNMOS(), Mode: device.FaultNoConverge, Until: ePlain}
	c, _ := rescueInverter(card, DC(0.45))
	c.MaxNewton = maxNewton
	c.SetObs(sc)
	c.SetObsSample(7)
	if _, err := c.OP(); err != nil {
		t.Fatalf("OP not rescued: %v", err)
	}
	if c.Stats().DCGminRescues != 1 {
		t.Fatalf("expected a gmin rescue, stats: %+v", c.Stats())
	}
	out := buf.String()
	for _, want := range []string{"msg=rescue", "sample=7", "stage=dc-gmin"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rescue trace missing %q:\n%s", want, out)
		}
	}
}
