package spice

import (
	"math"
	"testing"

	"vstat/internal/vsmodel"
)

func TestVoltageDividerOP(t *testing.T) {
	c := New()
	in := c.Node("in")
	mid := c.Node("mid")
	c.AddV("V1", in, Gnd, DC(3))
	c.AddR("R1", in, mid, 1000)
	c.AddR("R2", mid, Gnd, 2000)
	op, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.V(mid)-2) > 1e-8 {
		t.Fatalf("divider mid = %g want 2", op.V(mid))
	}
	// Source current: 3V over 3k = 1 mA flowing out of the source's +.
	if math.Abs(op.SourceI(0)+1e-3) > 1e-8 {
		t.Fatalf("source current %g want -1e-3", op.SourceI(0))
	}
	if op.VName("mid") != op.V(mid) {
		t.Fatal("VName mismatch")
	}
}

func TestCurrentSourceOP(t *testing.T) {
	c := New()
	n1 := c.Node("n1")
	c.AddI("I1", Gnd, n1, DC(1e-3)) // 1 mA into n1
	c.AddR("R1", n1, Gnd, 1000)
	op, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.V(n1)-1) > 1e-6 {
		t.Fatalf("V(n1) = %g want 1", op.V(n1))
	}
}

func TestKCLResidualAtSolution(t *testing.T) {
	// Property: at a converged OP the assembled residual is ~0.
	c := New()
	vdd := c.Node("vdd")
	out := c.Node("out")
	c.AddV("VDD", vdd, Gnd, DC(0.9))
	c.AddV("VIN", c.Node("in"), Gnd, DC(0.45))
	n := vsmodel.NMOS40(300e-9)
	p := vsmodel.PMOS40(600e-9)
	c.AddMOS("MN", out, c.Node("in"), Gnd, Gnd, &n)
	c.AddMOS("MP", out, c.Node("in"), vdd, vdd, &p)
	op, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	// Residual check via re-assembly.
	f := make([]float64, c.unknowns())
	jac := newZeroMatrix(c.unknowns())
	ctx := assembleCtx{srcScale: 1}
	c.assemble(op.x, f, jac, &ctx, true)
	for i := 0; i < c.NumNodes(); i++ {
		if math.Abs(f[i]) > 1e-9 {
			t.Fatalf("KCL residual at node %s = %g", c.NodeName(i), f[i])
		}
	}
}

func TestRCTransientMatchesAnalytic(t *testing.T) {
	// Step response of RC low-pass: v(t) = V·(1 − e^{−t/RC}).
	for _, trap := range []bool{false, true} {
		c := New()
		in := c.Node("in")
		out := c.Node("out")
		R, C := 1000.0, 1e-9 // τ = 1 µs
		c.AddV("VIN", in, Gnd, Pulse{V0: 0, V1: 1, Delay: 0, Rise: 1e-12, Fall: 1e-12, Width: 1})
		c.AddR("R", in, out, R)
		c.AddC("C", out, Gnd, C)
		res, err := c.Transient(TranOpts{Stop: 5e-6, Step: 5e-9, Trap: trap, UIC: true})
		if err != nil {
			t.Fatal(err)
		}
		tau := R * C
		worst := 0.0
		for k, tm := range res.Time {
			if tm < 5e-9 {
				continue
			}
			want := 1 - math.Exp(-tm/tau)
			got := nv(res.xs[k], out)
			if d := math.Abs(got - want); d > worst {
				worst = d
			}
		}
		lim := 0.005
		if trap {
			lim = 0.002
		}
		if worst > lim {
			t.Fatalf("trap=%v: worst RC error %g", trap, worst)
		}
	}
}

func TestTrapMoreAccurateThanBE(t *testing.T) {
	// On a sine-driven RC, trapezoidal at the same step must beat BE.
	run := func(trap bool) float64 {
		c := New()
		in := c.Node("in")
		out := c.Node("out")
		R, C := 1000.0, 1e-9
		pts := 2001
		T := make([]float64, pts)
		V := make([]float64, pts)
		for i := range T {
			T[i] = 5e-6 * float64(i) / float64(pts-1)
			V[i] = math.Sin(2 * math.Pi * 1e6 * T[i])
		}
		c.AddV("VIN", in, Gnd, PWL{T: T, V: V})
		c.AddR("R", in, out, R)
		c.AddC("C", out, Gnd, C)
		res, err := c.Transient(TranOpts{Stop: 5e-6, Step: 2.5e-9, Trap: trap, UIC: true})
		if err != nil {
			t.Fatal(err)
		}
		// Analytic steady-state after a few τ.
		w := 2 * math.Pi * 1e6
		tau := R * C
		amp := 1 / math.Sqrt(1+(w*tau)*(w*tau))
		ph := math.Atan(w * tau)
		worst := 0.0
		for k, tm := range res.Time {
			if tm < 2e-6 {
				continue
			}
			want := amp * math.Sin(w*tm-ph)
			if d := math.Abs(nv(res.xs[k], out) - want); d > worst {
				worst = d
			}
		}
		return worst
	}
	be := run(false)
	tr := run(true)
	if tr >= be {
		t.Fatalf("TRAP error %g not better than BE %g", tr, be)
	}
}

func TestInverterVTC(t *testing.T) {
	c := New()
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	c.AddV("VDD", vdd, Gnd, DC(0.9))
	vin := c.AddV("VIN", in, Gnd, DC(0))
	n := vsmodel.NMOS40(300e-9)
	p := vsmodel.PMOS40(600e-9)
	c.AddMOS("MN", out, in, Gnd, Gnd, &n)
	c.AddMOS("MP", out, in, vdd, vdd, &p)

	var vins []float64
	for v := 0.0; v <= 0.9001; v += 0.0225 {
		vins = append(vins, v)
	}
	ops, err := c.DCSweep(vin, vins)
	if err != nil {
		t.Fatal(err)
	}
	// Endpoints rail-to-rail, monotone falling.
	if ops[0].V(out) < 0.88 {
		t.Fatalf("VTC(0) = %g", ops[0].V(out))
	}
	last := ops[len(ops)-1].V(out)
	if last > 0.02 {
		t.Fatalf("VTC(Vdd) = %g", last)
	}
	prev := math.Inf(1)
	for i, op := range ops {
		v := op.V(out)
		if v > prev+1e-7 {
			t.Fatalf("VTC not monotone at %g: %g > %g", vins[i], v, prev)
		}
		prev = v
	}
	// Switching threshold near midrail for this P/N sizing.
	var vm float64
	for i := 1; i < len(ops); i++ {
		if ops[i].V(out) < vins[i] { // crossing V(out)=Vin
			f := (vins[i-1] - ops[i-1].V(out)) /
				((ops[i].V(out) - ops[i-1].V(out)) - (vins[i] - vins[i-1]))
			_ = f
			vm = vins[i]
			break
		}
	}
	if vm < 0.3 || vm > 0.6 {
		t.Fatalf("switching threshold %g far from midrail", vm)
	}
}

func TestInverterTransientSwitches(t *testing.T) {
	for _, trap := range []bool{false, true} {
		c := New()
		vdd := c.Node("vdd")
		in := c.Node("in")
		out := c.Node("out")
		c.AddV("VDD", vdd, Gnd, DC(0.9))
		c.AddV("VIN", in, Gnd, Pulse{V0: 0, V1: 0.9, Delay: 20e-12, Rise: 10e-12, Fall: 10e-12, Width: 150e-12, Period: 400e-12})
		n := vsmodel.NMOS40(300e-9)
		p := vsmodel.PMOS40(600e-9)
		c.AddMOS("MN", out, in, Gnd, Gnd, &n)
		c.AddMOS("MP", out, in, vdd, vdd, &p)
		c.AddC("CL", out, Gnd, 1e-15)

		res, err := c.Transient(TranOpts{Stop: 400e-12, Step: 0.5e-12, Trap: trap})
		if err != nil {
			t.Fatalf("trap=%v: %v", trap, err)
		}
		v := res.VName("out")
		// Starts high (input low), falls after input rises, recovers.
		if v[0] < 0.85 {
			t.Fatalf("trap=%v: initial out %g", trap, v[0])
		}
		minV := 1.0
		for _, x := range v {
			if x < minV {
				minV = x
			}
		}
		if minV > 0.05 {
			t.Fatalf("trap=%v: output never pulled low (min %g)", trap, minV)
		}
		if end := v[len(v)-1]; end < 0.85 {
			t.Fatalf("trap=%v: output did not recover: %g", trap, end)
		}
	}
}

func TestPulseWaveform(t *testing.T) {
	p := Pulse{V0: 0, V1: 1, Delay: 1, Rise: 1, Fall: 1, Width: 2, Period: 10}
	cases := map[float64]float64{
		0: 0, 1: 0, 1.5: 0.5, 2: 1, 3.9: 1, 4.5: 0.5, 5: 0, 11.5: 0.5,
	}
	for tm, want := range cases {
		if got := p.At(tm); math.Abs(got-want) > 1e-12 {
			t.Fatalf("Pulse.At(%g) = %g want %g", tm, got, want)
		}
	}
}

func TestPWLWaveform(t *testing.T) {
	p := PWL{T: []float64{0, 1, 2}, V: []float64{0, 2, 0}}
	cases := map[float64]float64{-1: 0, 0.5: 1, 1: 2, 1.5: 1, 3: 0}
	for tm, want := range cases {
		if got := p.At(tm); math.Abs(got-want) > 1e-12 {
			t.Fatalf("PWL.At(%g) = %g want %g", tm, got, want)
		}
	}
	if (PWL{}).At(1) != 0 {
		t.Fatal("empty PWL")
	}
}

func TestTranAtInterpolation(t *testing.T) {
	c := New()
	in := c.Node("in")
	c.AddV("VIN", in, Gnd, PWL{T: []float64{0, 1e-9}, V: []float64{0, 1}})
	c.AddR("R", in, Gnd, 1000)
	res, err := c.Transient(TranOpts{Stop: 1e-9, Step: 0.25e-9, UIC: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.At(in, 0.5e-9); math.Abs(got-0.5) > 1e-6 {
		t.Fatalf("At(0.5ns) = %g", got)
	}
	if got := res.At(in, 2e-9); math.Abs(got-1) > 1e-6 {
		t.Fatalf("At beyond end = %g", got)
	}
}

func TestNodeReuseAndNames(t *testing.T) {
	c := New()
	a := c.Node("x")
	b := c.Node("x")
	if a != b {
		t.Fatal("Node must be idempotent")
	}
	if c.Node("0") != Gnd || c.Node("gnd") != Gnd {
		t.Fatal("ground aliases")
	}
	if c.NodeName(Gnd) != "gnd" || c.NodeName(a) != "x" {
		t.Fatal("NodeName")
	}
	if c.VSourceIndex("nope") != -1 {
		t.Fatal("VSourceIndex missing should be -1")
	}
}

func TestBadElements(t *testing.T) {
	c := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for R<=0")
		}
	}()
	c.AddR("R", c.Node("a"), Gnd, 0)
}

func newZeroMatrix(n int) *matrixAlias { return newMatrixForTest(n) }
