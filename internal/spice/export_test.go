package spice

import "vstat/internal/linalg"

// matrixAlias lets white-box tests reuse linalg.Matrix without importing it
// in the test file signature.
type matrixAlias = linalg.Matrix

func newMatrixForTest(n int) *matrixAlias { return linalg.NewMatrix(n, n) }
