package spice

import (
	"fmt"
	"math"
	"os"
	"testing"

	"vstat/internal/device"
	"vstat/internal/vsmodel"
)

// testInvChain nets `stages` VS-model inverters in series behind a pulse
// source with per-stage load caps: stages+2 node voltages plus two branch
// currents, enough unknowns to clear the auto-mode sparse cutover.
func testInvChain(stages int) (c *Circuit, out int) {
	c = New()
	vdd := c.Node("vdd")
	c.AddV("VDD", vdd, Gnd, DC(0.9))
	in := c.Node("in")
	c.AddV("VIN", in, Gnd, Pulse{V0: 0, V1: 0.9, Delay: 20e-12, Rise: 10e-12, Fall: 10e-12, Width: 200e-12})
	prev := in
	for s := 0; s < stages; s++ {
		out = c.Node(fmt.Sprintf("o%d", s))
		nm := vsmodel.NMOS40(300e-9)
		pm := vsmodel.PMOS40(600e-9)
		c.AddMOS(fmt.Sprintf("MN%d", s), out, prev, Gnd, Gnd, &nm)
		c.AddMOS(fmt.Sprintf("MP%d", s), out, prev, vdd, vdd, &pm)
		c.AddC(fmt.Sprintf("CL%d", s), out, Gnd, 2e-15)
		prev = out
	}
	return c, out
}

// TestSparseAssembleMatchesDense: the stamp-list assembly must produce
// bit-identical residuals and Jacobian entries to the dense assemble, for
// DC and transient contexts including the rescue-ladder terms (gmin
// stepping and the pseudo-transient anchor, which hit the reserved node
// diagonals).
func TestSparseAssembleMatchesDense(t *testing.T) {
	for _, tran := range []bool{false, true} {
		c, _ := testInverter()
		op, err := c.OP()
		if err != nil {
			t.Fatal(err)
		}
		n := c.unknowns()
		fDense := make([]float64, n)
		fSparse := make([]float64, n)
		jac := newZeroMatrix(n)
		ctx := assembleCtx{t: 1e-11, srcScale: 0.75, gminExtra: 1e-3,
			ptG: 0.5, ptRef: op.x}
		if tran {
			ts := &tranState{h: 1e-12}
			c.initTranHistory(op.x, ts)
			ctx.tran = ts
		}
		c.assemble(op.x, fDense, jac, &ctx, true)
		c.buildStampMap()
		c.assembleSparse(op.x, fSparse, &ctx)
		for i := range fDense {
			if fDense[i] != fSparse[i] {
				t.Fatalf("tran=%v: residual[%d] differs: dense %g sparse %g",
					tran, i, fDense[i], fSparse[i])
			}
		}
		spd := c.sp.Dense()
		for i := range jac.Data {
			if jac.Data[i] != spd.Data[i] {
				t.Fatalf("tran=%v: jac entry %d differs: dense %g sparse %g",
					tran, i, jac.Data[i], spd.Data[i])
			}
		}
	}
}

// TestSparseCoreTransientMatchesDense: the same netlist solved with the
// dense and the sparse core must agree at the operating point and along the
// whole transient waveform to well within the Newton tolerance band.
func TestSparseCoreTransientMatchesDense(t *testing.T) {
	cd, outD := testInvChain(3)
	cd.LinearCore = CoreDense
	cs, outS := testInvChain(3)
	cs.LinearCore = CoreSparse

	opD, err := cd.OP()
	if err != nil {
		t.Fatal(err)
	}
	opS, err := cs.OP()
	if err != nil {
		t.Fatal(err)
	}
	for i := range opD.x {
		if d := math.Abs(opD.x[i] - opS.x[i]); d > 1e-8 {
			t.Fatalf("OP unknown %d differs by %g between cores", i, d)
		}
	}

	opts := TranOpts{Stop: 300e-12, Step: 1e-12}
	rd, err := cd.Transient(opts)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := cs.Transient(opts)
	if err != nil {
		t.Fatal(err)
	}
	vd, vs := rd.V(outD), rs.V(outS)
	if len(vd) != len(vs) {
		t.Fatalf("step counts differ: %d vs %d", len(vd), len(vs))
	}
	worst := 0.0
	for k := range vd {
		if d := math.Abs(vd[k] - vs[k]); d > worst {
			worst = d
		}
	}
	if worst > 1e-6 {
		t.Fatalf("sparse waveform deviates by %g V from dense", worst)
	}
}

// TestSparseTransientAllocFree: after the warmup run (which builds the
// stamp map and the symbolic factorization), repeated transients on the
// sparse core must allocate nothing — the same contract the dense path has.
func TestSparseTransientAllocFree(t *testing.T) {
	c, _ := testInvChain(3)
	c.LinearCore = CoreSparse
	opts := TranOpts{Stop: 100e-12, Step: 1e-12}
	var res TranResult
	if err := c.TransientInto(opts, &res); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if err := c.TransientInto(opts, &res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("sparse TransientInto allocates %.1f objects per run, want 0", allocs)
	}
	fast := opts
	fast.Fast = true
	if err := c.TransientInto(fast, &res); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(5, func() {
		if err := c.TransientInto(fast, &res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("fast sparse TransientInto allocates %.1f objects per run, want 0", allocs)
	}
}

// TestSparseSymbolicSurvivesDeviceSwap: swapping a device parameter card
// (the pooled Monte Carlo re-stamp path) must keep both the stamp map and
// the symbolic factorization object — symbolic analysis runs once per
// topology, not once per sample.
func TestSparseSymbolicSurvivesDeviceSwap(t *testing.T) {
	c, out := testInvChain(3)
	c.LinearCore = CoreSparse
	x := make([]float64, c.unknowns())
	if err := c.solveOPInto(x, nil, true); err != nil {
		t.Fatal(err)
	}
	lu := c.spLU
	if lu == nil {
		t.Fatal("sparse OP left no symbolic factorization behind")
	}
	wide := vsmodel.NMOS40(900e-9)
	c.SetMOSDevice(0, &wide)
	if err := c.solveOPInto(x, nil, true); err != nil {
		t.Fatal(err)
	}
	if c.spLU != lu {
		t.Fatal("device swap rebuilt the symbolic factorization")
	}
	// And the restamped solve must match a freshly built circuit.
	ref, refOut := testInvChain(3)
	wide2 := vsmodel.NMOS40(900e-9)
	ref.SetMOSDevice(0, &wide2)
	op, err := ref.OP()
	if err != nil {
		t.Fatal(err)
	}
	_ = out
	if d := math.Abs(nv(x, out) - op.V(refOut)); d > 1e-6 {
		t.Fatalf("restamped sparse OP differs from fresh solve by %g V", d)
	}
}

// linCond is a linear drain-source conductance packaged as a four-terminal
// device: Id = G·(vd - vs), no charges. Exact native derivatives keep the
// Jacobian entries free of finite-difference noise, so the test controls
// the matrix values down to the last bit.
type linCond struct{ G float64 }

func (d *linCond) Kind() device.Kind { return device.NMOS }
func (d *linCond) Width() float64    { return 1e-6 }
func (d *linCond) Length() float64   { return 1e-6 }
func (d *linCond) Eval(vd, vg, vs, vb float64) device.Eval {
	return device.Eval{Id: d.G * (vd - vs)}
}
func (d *linCond) EvalDerivs4(vd, vg, vs, vb float64) device.Derivs {
	return device.Derivs{
		Eval: device.Eval{Id: d.G * (vd - vs)},
		GId:  [4]float64{d.G, 0, -d.G, 0},
	}
}

// growthNetlist nets the degenerate-pivot fixture: a driven node n1 carrying
// two swappable conductances whose sum controls n1's Jacobian diagonal.
//
//	VS(1V) — R3(1Ω) — n1 — GA(g) — n2 — R2(1Ω) — gnd
//	                   |
//	                  GB(g) to gnd
//
// At build values (GA=GB=1) the symbolic analysis pivots on n1's healthy
// diagonal. Re-stamping GB to -2+ε cancels that diagonal to ~ε while the
// off-diagonal below it stays O(1) — the frozen pivot order's multiplier
// blows past spGrowthLimit even though the matrix itself stays
// well-conditioned (the classic small-pivot/benign-matrix case).
func growthNetlist() (c *Circuit, n1, n2 int) {
	c = New()
	n1 = c.Node("n1")
	n2 = c.Node("n2")
	n3 := c.Node("n3")
	c.AddV("VS", n3, Gnd, DC(1))
	c.AddR("R3", n3, n1, 1)
	c.AddMOS("GA", n1, Gnd, n2, Gnd, &linCond{G: 1})
	c.AddMOS("GB", n1, Gnd, Gnd, Gnd, &linCond{G: 1})
	c.AddR("R2", n2, Gnd, 1)
	return c, n1, n2
}

// TestSparseGrowthTriggersRepivot exercises the factorSparse recovery path:
// after a device re-stamp drives the frozen pivot order numerically
// degenerate (Growth > spGrowthLimit), the core must re-run the symbolic
// analysis — counted in SolverStats.SparseRepivots — and still deliver the
// dense core's solution.
func TestSparseGrowthTriggersRepivot(t *testing.T) {
	c, n1, n2 := growthNetlist()
	c.LinearCore = CoreSparse
	if _, err := c.OP(); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().SparseRepivots; got != 0 {
		t.Fatalf("healthy first solve re-analyzed %d times, want 0", got)
	}

	// Re-stamp GB so n1's diagonal collapses to ~1e-12 under the pivot order
	// analyzed at GB=+1.
	c.SetMOSDevice(1, &linCond{G: -2 + 1e-12})
	op, err := c.OP()
	if err != nil {
		t.Fatalf("sparse OP after degenerate re-stamp: %v", err)
	}
	if got := c.Stats().SparseRepivots; got < 1 {
		t.Fatalf("SparseRepivots = %d after a degenerate re-stamp, want >= 1", got)
	}

	// The recovered factorization must match the dense core on the same
	// final values.
	cd, d1, d2 := growthNetlist()
	cd.LinearCore = CoreDense
	cd.SetMOSDevice(1, &linCond{G: -2 + 1e-12})
	ref, err := cd.OP()
	if err != nil {
		t.Fatalf("dense reference OP: %v", err)
	}
	for _, nd := range [][2]int{{n1, d1}, {n2, d2}} {
		if d := math.Abs(op.V(nd[0]) - ref.V(nd[1])); d > 1e-6 {
			t.Fatalf("sparse node voltage differs from dense by %g V after repivot", d)
		}
	}
}

// TestLinearCoreAutoCutover pins the auto-mode resolution: tiny systems
// stay dense, benchmark-sized systems go sparse, and the explicit knob
// overrides both.
func TestLinearCoreAutoCutover(t *testing.T) {
	if os.Getenv("VSTAT_LINEAR_CORE") != "" {
		t.Skip("VSTAT_LINEAR_CORE override active")
	}
	small, _ := testInverter() // 5 unknowns
	if small.useSparseCore() {
		t.Fatalf("auto picked sparse for n=%d, cutover is %d", small.unknowns(), sparseMinN)
	}
	big, _ := testInvChain(3) // 7 unknowns
	if !big.useSparseCore() {
		t.Fatalf("auto picked dense for n=%d, cutover is %d", big.unknowns(), sparseMinN)
	}
	small.LinearCore = CoreSparse
	if !small.useSparseCore() {
		t.Fatal("CoreSparse knob ignored")
	}
	big.LinearCore = CoreDense
	if big.useSparseCore() {
		t.Fatal("CoreDense knob ignored")
	}
}
