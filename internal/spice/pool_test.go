package spice

import (
	"math"
	"testing"

	"vstat/internal/vsmodel"
)

// testInverter nets a VS-model inverter with a pulse input and load cap,
// exercising every assemble stamp family (MOS, cap, resistor, sources).
func testInverter() (c *Circuit, out int) {
	c = New()
	vdd := c.Node("vdd")
	in := c.Node("in")
	out = c.Node("out")
	c.AddV("VDD", vdd, Gnd, DC(0.9))
	c.AddV("VIN", in, Gnd, Pulse{V0: 0, V1: 0.9, Delay: 20e-12, Rise: 10e-12, Fall: 10e-12, Width: 200e-12})
	n := vsmodel.NMOS40(300e-9)
	p := vsmodel.PMOS40(600e-9)
	c.AddMOS("MN", out, in, Gnd, Gnd, &n)
	c.AddMOS("MP", out, in, vdd, vdd, &p)
	c.AddR("RL", out, Gnd, 1e8)
	c.AddC("CL", out, Gnd, 2e-15)
	return c, out
}

func TestResidualOnlyAssembleLeavesJacUntouched(t *testing.T) {
	c, _ := testInverter()
	op, err := c.OP()
	if err != nil {
		t.Fatal(err)
	}
	n := c.unknowns()
	f := make([]float64, n)
	jac := newZeroMatrix(n)
	// Poison the Jacobian; a residual-only pass must not write a single
	// entry (the gmin stamp used to leak through).
	const sentinel = 1.25e300
	for i := range jac.Data {
		jac.Data[i] = sentinel
	}
	ctx := assembleCtx{srcScale: 1, gminExtra: 1e-3}
	c.assemble(op.x, f, jac, &ctx, false)
	for i, v := range jac.Data {
		if v != sentinel {
			t.Fatalf("residual-only assemble wrote jac entry %d: %g", i, v)
		}
	}
	// And the full pass must overwrite all of it back to finite stamps.
	c.assemble(op.x, f, jac, &ctx, true)
	for i, v := range jac.Data {
		if v == sentinel {
			t.Fatalf("full assemble left jac entry %d at the sentinel", i)
		}
	}
}

func TestTransientIntoReusesStorageAllocFree(t *testing.T) {
	c, _ := testInverter()
	opts := TranOpts{Stop: 100e-12, Step: 1e-12}
	var res TranResult
	// Warm once so scratch, integrator history, and waveform rows exist.
	if err := c.TransientInto(opts, &res); err != nil {
		t.Fatal(err)
	}
	row0 := &res.xs[0][0]
	allocs := testing.AllocsPerRun(5, func() {
		if err := c.TransientInto(opts, &res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("repeat TransientInto allocates %.1f objects per run, want 0", allocs)
	}
	if &res.xs[0][0] != row0 {
		t.Fatal("TransientInto reallocated waveform storage")
	}
	// Fast mode on the same circuit must stay allocation-free too.
	fast := opts
	fast.Fast = true
	if err := c.TransientInto(fast, &res); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(5, func() {
		if err := c.TransientInto(fast, &res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("fast TransientInto allocates %.1f objects per run, want 0", allocs)
	}
}

func TestFastTransientMatchesExact(t *testing.T) {
	cExact, out := testInverter()
	exact, err := cExact.Transient(TranOpts{Stop: 400e-12, Step: 1.5e-12})
	if err != nil {
		t.Fatal(err)
	}
	cFast, _ := testInverter()
	var res TranResult
	if err := cFast.TransientInto(TranOpts{Stop: 400e-12, Step: 1.5e-12, Fast: true}, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Time) != len(exact.Time) {
		t.Fatalf("step counts differ: %d vs %d", len(res.Time), len(exact.Time))
	}
	ve, vf := exact.V(out), res.V(out)
	worst := 0.0
	for k := range ve {
		if d := math.Abs(ve[k] - vf[k]); d > worst {
			worst = d
		}
	}
	// The fast path promises waveform agreement at its tolerance floor
	// (tolVFast = 1 µV) plus bounded accumulation; a few tolerances of
	// headroom still catches any real integration error.
	if worst > 5e-6 {
		t.Fatalf("fast waveform deviates by %g V from exact", worst)
	}
	// Second run on the same circuit (carried factors, reused history) must
	// not drift: fast mode may not leak state across samples beyond the
	// tolerance floor.
	var res2 TranResult
	if err := cFast.TransientInto(TranOpts{Stop: 400e-12, Step: 1.5e-12, Fast: true}, &res2); err != nil {
		t.Fatal(err)
	}
	v2 := res2.V(out)
	for k := range vf {
		if d := math.Abs(v2[k] - ve[k]); d > 5e-6 {
			t.Fatalf("repeat fast run deviates by %g V at step %d", d, k)
		}
	}
}

func TestCarriedFactorsInvalidatedByDeviceSwap(t *testing.T) {
	// A fast DC solve leaves carried factors behind; swapping a device card
	// must invalidate them so the next solve does not converge against the
	// old geometry's Jacobian.
	c, out := testInverter()
	x := make([]float64, c.unknowns())
	if err := c.solveOPInto(x, nil, true); err != nil {
		t.Fatal(err)
	}
	wide := vsmodel.NMOS40(900e-9) // 3x the template width
	c.SetMOSDevice(0, &wide)
	if err := c.solveOPInto(x, nil, true); err != nil {
		t.Fatal(err)
	}
	// Reference: a freshly built circuit with the same wide NMOS.
	ref, refOut := testInverter()
	wide2 := vsmodel.NMOS40(900e-9)
	ref.SetMOSDevice(0, &wide2)
	op, err := ref.OP()
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(nv(x, out) - op.V(refOut)); d > 1e-6 {
		t.Fatalf("restamped fast OP differs from fresh solve by %g V", d)
	}
}
