package spice

import (
	"errors"
	"math"
	"strings"
	"testing"

	"vstat/internal/device"
	"vstat/internal/vsmodel"
)

// rescueInverter builds a VS inverter whose NMOS is the given device (a
// FaultCard in most tests), biased mid-rail so the operating point needs
// real Newton work.
func rescueInverter(nmos device.Device, vin Waveform) (*Circuit, int) {
	c := New()
	vdd := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	c.AddV("VDD", vdd, Gnd, DC(0.9))
	c.AddV("VIN", in, Gnd, vin)
	p := vsmodel.PMOS40(600e-9)
	c.AddMOS("MP", out, in, vdd, vdd, &p)
	c.AddMOS("MN", out, in, Gnd, Gnd, nmos)
	c.AddC("CL", out, Gnd, 1e-15)
	return c, out
}

func cleanNMOS() device.Device {
	n := vsmodel.NMOS40(300e-9)
	return &n
}

// Every DC ladder rung is a complete solver: called directly (white box) on
// a healthy circuit, each must reach the same operating point plain Newton
// finds.
func TestDCLadderRungsSolveDirectly(t *testing.T) {
	cRef, outRef := rescueInverter(cleanNMOS(), DC(0.45))
	opRef, err := cRef.OP()
	if err != nil {
		t.Fatal(err)
	}
	vRef := opRef.V(outRef)

	rungs := []struct {
		name string
		run  func(c *Circuit, x []float64) *ConvergenceError
	}{
		{"gmin", func(c *Circuit, x []float64) *ConvergenceError { return c.gminStepInto(x) }},
		{"source", func(c *Circuit, x []float64) *ConvergenceError { return c.sourceStepInto(x) }},
		{"pseudo-tran", func(c *Circuit, x []float64) *ConvergenceError { return c.pseudoTransientInto(x) }},
	}
	for _, rung := range rungs {
		c, out := rescueInverter(cleanNMOS(), DC(0.45))
		x := make([]float64, c.unknowns())
		if cerr := rung.run(c, x); cerr != nil {
			t.Fatalf("%s rung failed on a healthy circuit: %v", rung.name, cerr)
		}
		if got := nv(x, out); math.Abs(got-vRef) > 1e-6 {
			t.Fatalf("%s rung OP %g, plain Newton %g", rung.name, got, vRef)
		}
	}
}

// plainStageEvals measures how many faulted-device evaluations the plain
// Newton stage burns before giving up, by replaying exactly the sequence
// solveOPInto runs. Deterministic: fresh identically-built circuits replay
// identical evaluation sequences.
func plainStageEvals(t *testing.T, maxNewton int) int64 {
	t.Helper()
	cal := &device.FaultCard{Inner: cleanNMOS(), Mode: device.FaultNoConverge}
	c, _ := rescueInverter(cal, DC(0.45))
	c.MaxNewton = maxNewton
	x := make([]float64, c.unknowns())
	ctx := assembleCtx{srcScale: 1}
	if cerr := c.newton(x, &ctx); cerr == nil {
		t.Fatal("plain Newton converged through a permanent fault")
	}
	return cal.Calls()
}

// Plain Newton fails inside the fault window; gmin stepping starts after it
// closes and rescues the solve. The rescue is attributed to exactly the
// gmin rung.
func TestGminRescueAfterPlainNewtonFailure(t *testing.T) {
	const maxNewton = 20
	ePlain := plainStageEvals(t, maxNewton)

	cRef, outRef := rescueInverter(cleanNMOS(), DC(0.45))
	opRef, err := cRef.OP()
	if err != nil {
		t.Fatal(err)
	}

	card := &device.FaultCard{Inner: cleanNMOS(), Mode: device.FaultNoConverge, Until: ePlain}
	c, out := rescueInverter(card, DC(0.45))
	c.MaxNewton = maxNewton
	op, err := c.OP()
	if err != nil {
		t.Fatalf("OP not rescued: %v", err)
	}
	st := c.Stats()
	if st.DCGminRescues != 1 || st.DCSourceRescues != 0 || st.DCPseudoRescues != 0 {
		t.Fatalf("rescue attribution: %+v", st)
	}
	if math.Abs(op.V(out)-opRef.V(outRef)) > 1e-6 {
		t.Fatalf("rescued OP %g vs clean %g", op.V(out), opRef.V(outRef))
	}
}

// ladderStageEvals extends the calibration through the gmin and source
// rungs, replaying solveOPInto's state resets between rungs.
func ladderStageEvals(t *testing.T, maxNewton int) (ePlain, eGmin, eSource int64) {
	t.Helper()
	cal := &device.FaultCard{Inner: cleanNMOS(), Mode: device.FaultNoConverge}
	c, _ := rescueInverter(cal, DC(0.45))
	c.MaxNewton = maxNewton
	x := make([]float64, c.unknowns())
	ctx := assembleCtx{srcScale: 1}
	if cerr := c.newton(x, &ctx); cerr == nil {
		t.Fatal("plain Newton converged through a permanent fault")
	}
	ePlain = cal.Calls()
	for i := range x {
		x[i] = 0
	}
	if cerr := c.gminStepInto(x); cerr == nil {
		t.Fatal("gmin stepping converged through a permanent fault")
	}
	eGmin = cal.Calls()
	for i := range x {
		x[i] = 0
	}
	if cerr := c.sourceStepInto(x); cerr == nil {
		t.Fatal("source stepping converged through a permanent fault")
	}
	eSource = cal.Calls()
	return
}

// Plain Newton and gmin stepping both fail inside the window; source
// stepping runs clean and rescues.
func TestSourceRescueAfterGminFailure(t *testing.T) {
	const maxNewton = 20
	_, eGmin, _ := ladderStageEvals(t, maxNewton)

	card := &device.FaultCard{Inner: cleanNMOS(), Mode: device.FaultNoConverge, Until: eGmin}
	c, out := rescueInverter(card, DC(0.45))
	c.MaxNewton = maxNewton
	op, err := c.OP()
	if err != nil {
		t.Fatalf("OP not rescued: %v", err)
	}
	st := c.Stats()
	if st.DCGminRescues != 0 || st.DCSourceRescues != 1 || st.DCPseudoRescues != 0 {
		t.Fatalf("rescue attribution: %+v", st)
	}
	if v := op.V(out); !finite(v) || v < -0.01 || v > 0.91 {
		t.Fatalf("unphysical rescued OP %g", v)
	}
}

// The first three rungs fail inside the window, which closes partway into
// the pseudo-transient budget; the ramp rides out the tail of the fault and
// rescues the solve — the "bounded budget also rides out transiently
// ill-behaved model evaluations" property.
func TestPseudoTransientRescueRidesOutFault(t *testing.T) {
	const maxNewton = 20
	_, _, eSource := ladderStageEvals(t, maxNewton)

	card := &device.FaultCard{Inner: cleanNMOS(), Mode: device.FaultNoConverge, Until: eSource + 200}
	c, out := rescueInverter(card, DC(0.45))
	c.MaxNewton = maxNewton
	op, err := c.OP()
	if err != nil {
		t.Fatalf("OP not rescued: %v", err)
	}
	st := c.Stats()
	if st.DCPseudoRescues != 1 {
		t.Fatalf("expected a pseudo-transient rescue: %+v", st)
	}
	if v := op.V(out); !finite(v) || v < -0.01 || v > 0.91 {
		t.Fatalf("unphysical rescued OP %g", v)
	}
	rc := c.Stats().RescueCounts()
	if rc["dc-pseudo-tran"] != 1 {
		t.Fatalf("RescueCounts = %v", rc)
	}
}

// A permanent fault exhausts the whole DC ladder; the returned error is the
// typed ConvergenceError of the last rung with the diagnosis fields set.
func TestDCLadderExhaustionTypedError(t *testing.T) {
	card := &device.FaultCard{Inner: cleanNMOS(), Mode: device.FaultNoConverge}
	c, _ := rescueInverter(card, DC(0.45))
	c.MaxNewton = 20
	_, err := c.OP()
	if err == nil {
		t.Fatal("OP converged through a permanent fault")
	}
	var cerr *ConvergenceError
	if !errors.As(err, &cerr) {
		t.Fatalf("err %T is not a *ConvergenceError", err)
	}
	if cerr.Stage != StageDCPseudo {
		t.Fatalf("Stage = %q, want %q (last rung tried)", cerr.Stage, StageDCPseudo)
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("err %v does not wrap ErrNoConvergence", err)
	}
	if cerr.Iters != 20 {
		t.Fatalf("Iters = %d, want the full budget 20", cerr.Iters)
	}
	if cerr.Node == "" {
		t.Fatal("worst node not recorded")
	}
	if !strings.Contains(err.Error(), "pseudo-transient budget exhausted") {
		t.Fatalf("error %q does not name the exhausted ladder", err)
	}
}

// A NaN-producing model is rejected before it can poison the iterate: the
// failure is typed ErrNonFiniteSolution, not a silent NaN operating point.
func TestDCNaNRejectedTyped(t *testing.T) {
	card := &device.FaultCard{Inner: cleanNMOS(), Mode: device.FaultNaN}
	c, _ := rescueInverter(card, DC(0.45))
	c.MaxNewton = 20
	_, err := c.OP()
	if err == nil {
		t.Fatal("OP converged through a NaN model")
	}
	if !errors.Is(err, ErrNonFiniteSolution) {
		t.Fatalf("err %v does not wrap ErrNonFiniteSolution", err)
	}
	if c.Stats().NonFiniteRejects == 0 {
		t.Fatal("NonFiniteRejects not counted")
	}
}

// tranEvalBudget runs a clean inverter transient and returns the total
// faulted-device eval count plus the settled output voltage, for placing
// fault windows mid-run.
func tranEvalBudget(t *testing.T) (int64, float64) {
	t.Helper()
	counter := &device.FaultCard{Inner: cleanNMOS(), After: math.MaxInt64}
	c, out := rescueInverter(counter, tranPulse())
	res, err := c.Transient(tranTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	v := res.V(out)
	return counter.Calls(), v[len(v)-1]
}

func tranPulse() Waveform {
	return Pulse{V0: 0, V1: 0.9, Delay: 20e-12, Rise: 20e-12, Fall: 20e-12, Width: 200e-12}
}

func tranTestOpts() TranOpts {
	return TranOpts{Stop: 500e-12, Step: 2e-12}
}

// A short NaN window mid-transient is rejected (never entering the charge
// history) and ridden out by the sub-step rescue ladder; the run completes
// and settles to the same logic level as the clean run.
func TestTransientNaNWindowRescued(t *testing.T) {
	total, vClean := tranEvalBudget(t)
	card := &device.FaultCard{Inner: cleanNMOS(), Mode: device.FaultNaN,
		After: total / 2, Until: total/2 + 6}
	c, out := rescueInverter(card, tranPulse())
	res, err := c.Transient(tranTestOpts())
	if err != nil {
		t.Fatalf("transient not rescued: %v", err)
	}
	st := c.Stats()
	if st.Rescues == 0 {
		t.Fatalf("no rescue recorded: %+v", st)
	}
	if st.NonFiniteRejects == 0 {
		t.Fatalf("NaN rejection not counted: %+v", st)
	}
	for i, v := range res.V(out) {
		if !finite(v) {
			t.Fatalf("NaN leaked into the waveform at sample %d", i)
		}
	}
	v := res.V(out)
	if math.Abs(v[len(v)-1]-vClean) > 1e-3 {
		t.Fatalf("rescued run settles at %g, clean at %g", v[len(v)-1], vClean)
	}
}

// A permanent NaN fault exhausts the transient rescue ladder; the error is
// typed with the tran-halve stage and wraps ErrNonFiniteSolution.
func TestTransientPermanentNaNFailsTyped(t *testing.T) {
	total, _ := tranEvalBudget(t)
	card := &device.FaultCard{Inner: cleanNMOS(), Mode: device.FaultNaN, After: total / 2}
	c, _ := rescueInverter(card, tranPulse())
	_, err := c.Transient(tranTestOpts())
	if err == nil {
		t.Fatal("transient survived a permanent NaN model")
	}
	var cerr *ConvergenceError
	if !errors.As(err, &cerr) {
		t.Fatalf("err %T is not a *ConvergenceError", err)
	}
	if cerr.Stage != StageTranHalve {
		t.Fatalf("Stage = %q, want %q", cerr.Stage, StageTranHalve)
	}
	if !errors.Is(err, ErrNonFiniteSolution) {
		t.Fatalf("err %v does not wrap ErrNonFiniteSolution", err)
	}
	if cerr.Time <= 0 || cerr.Time > 500e-12 {
		t.Fatalf("failure time %g outside the run window", cerr.Time)
	}
}

// In fast mode a chord stall inside the fault window triggers the
// fast→exact fallback before sub-stepping; the run still completes once the
// window closes.
func TestFastFallbackOnChordStall(t *testing.T) {
	// Calibrate the eval budget on a clean FAST run: the chord path caches
	// evaluations, so its counter advances far slower than the exact path's.
	counter := &device.FaultCard{Inner: cleanNMOS(), After: math.MaxInt64}
	cCal, outCal := rescueInverter(counter, tranPulse())
	cCal.MaxNewton = 20
	fastOpts := tranTestOpts()
	fastOpts.Fast = true
	resCal, err := cCal.Transient(fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	vCal := resCal.V(outCal)
	vClean := vCal[len(vCal)-1]
	total := counter.Calls()

	card := &device.FaultCard{Inner: cleanNMOS(), Mode: device.FaultNoConverge,
		After: total / 2, Until: total/2 + 200}
	c, out := rescueInverter(card, tranPulse())
	c.MaxNewton = 20
	opts := tranTestOpts()
	opts.Fast = true
	res, err := c.Transient(opts)
	if err != nil {
		t.Fatalf("fast transient not rescued: %v", err)
	}
	st := c.Stats()
	if st.FastFallbacks == 0 {
		t.Fatalf("fast→exact fallback not taken: %+v", st)
	}
	v := res.V(out)
	if math.Abs(v[len(v)-1]-vClean) > 2e-3 {
		t.Fatalf("rescued fast run settles at %g, clean at %g", v[len(v)-1], vClean)
	}
}

// A panicking device escapes the simulator (it must not swallow panics);
// fault isolation is the Monte Carlo driver's job, tested in montecarlo.
func TestDevicePanicEscapesSolver(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected the injected panic to escape OP")
		}
	}()
	card := &device.FaultCard{Inner: cleanNMOS(), Mode: device.FaultPanic}
	c, _ := rescueInverter(card, DC(0.45))
	c.OP()
}

// RescueCounts only reports nonzero counters and never the raw work
// counters (which vary with worker scheduling in pooled MC).
func TestRescueCountsOnlyLadderCounters(t *testing.T) {
	s := SolverStats{NewtonIters: 100, JacRefreshes: 10, TranSteps: 50,
		Rescues: 2, TranHalvings: 1, NonFiniteRejects: 3}
	rc := s.RescueCounts()
	want := map[string]int64{"tran-substep": 2, "tran-halve": 1, "nonfinite-reject": 3}
	if len(rc) != len(want) {
		t.Fatalf("RescueCounts = %v, want %v", rc, want)
	}
	for k, v := range want {
		if rc[k] != v {
			t.Fatalf("RescueCounts[%s] = %d, want %d", k, rc[k], v)
		}
	}
}
