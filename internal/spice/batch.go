package spice

import (
	"fmt"
	"math"

	"vstat/internal/device"
	"vstat/internal/lifecycle"
	"vstat/internal/obs"
)

// This file is the lockstep batched transient driver: K pooled circuit
// instances of one topology advance through the same fixed-step transient
// together, with all K device evaluations of each Newton round performed by
// one SoA kernel call per device position (device.BatchDevice). The solver
// arithmetic itself is not duplicated: every lane runs the scalar
// newtonState machine (mna.go) statement for statement, consuming the
// batched evaluations through Circuit.devPre. A lane that needs anything
// outside the straight-line happy path — a DC rescue rung, a fast→exact
// fallback, the sub-step ladder, a non-finite rejection — is *evicted*: its
// solver counters and lifecycle budget are rewound to the batch-entry
// snapshot and the lane re-runs the plain scalar TransientInto, so every
// lane's waveform and stats are bit-for-bit what a scalar run produces.
//
// The eviction rewind restores the circuit to its sample-start state
// (fresh-sample semantics: luValid dropped, stats and lifecycle iteration
// count restored). The Monte Carlo scheduler re-stamps each lane before
// every batch call — SetMOSDevice drops any carried factorization — so the
// rewound state matches what a pure scalar run of the same sample would
// have started from.

// LaneOutcome reports how one lane of a TransientBatch call finished.
type LaneOutcome struct {
	// Err is the lane's transient error, formatted exactly as the scalar
	// TransientInto formats it (nil on success).
	Err error
	// Evicted reports that the lane left the lockstep path and re-ran the
	// scalar transient (its result is still canonical).
	Evicted bool
}

// BatchSim drives K pooled circuits of identical topology in lockstep.
// All scratch is allocated at construction, so TransientBatch allocates
// nothing per timestep after warmup. A BatchSim belongs to one worker
// goroutine.
type BatchSim struct {
	lanes []*Circuit
	k     int

	// devs[i] batches the K lane instances of MOSFET position i.
	devs []device.BatchDevice
	out  *device.DerivsBatch

	// Gather arrays for one device position across lanes.
	vd, vg, vs, vb []float64
	mode           []device.EvalMode

	ns   []newtonState
	ctxs []assembleCtx

	// Batch-entry snapshots for the eviction rewind.
	statsSnap []SolverStats
	lcSnap    []int64

	lockstep []bool // lane still on the lockstep path this call
	inSolve  []bool // lane currently iterating in the lockstep Newton solve
	stepOK   []bool // lane converged the current timestep
	outcomes []LaneOutcome

	obsScope *obs.Scope

	// Evictions counts lanes that left the lockstep path across the
	// BatchSim's lifetime (monotone; read by the MC lane scheduler).
	Evictions int64
}

// NewBatchSim builds a lockstep driver over the given lane circuits, which
// must share one topology (same unknown count and MOSFET count — the pooled
// Monte Carlo setting, where lanes are clones of one template).
func NewBatchSim(lanes []*Circuit) (*BatchSim, error) {
	k := len(lanes)
	if k == 0 {
		return nil, fmt.Errorf("spice: batch needs at least one lane")
	}
	n, nm := lanes[0].unknowns(), lanes[0].NumMOS()
	for l, c := range lanes {
		if c.unknowns() != n || c.NumMOS() != nm {
			return nil, fmt.Errorf("spice: lane %d topology mismatch (%d unknowns / %d MOS, want %d / %d)",
				l, c.unknowns(), c.NumMOS(), n, nm)
		}
		if len(c.devPre) != nm {
			c.devPre = make([]device.Derivs, nm)
		}
	}
	b := &BatchSim{
		lanes:     lanes,
		k:         k,
		devs:      make([]device.BatchDevice, nm),
		out:       device.NewDerivsBatch(k),
		vd:        make([]float64, k),
		vg:        make([]float64, k),
		vs:        make([]float64, k),
		vb:        make([]float64, k),
		mode:      make([]device.EvalMode, k),
		ns:        make([]newtonState, k),
		ctxs:      make([]assembleCtx, k),
		statsSnap: make([]SolverStats, k),
		lcSnap:    make([]int64, k),
		lockstep:  make([]bool, k),
		inSolve:   make([]bool, k),
		stepOK:    make([]bool, k),
		outcomes:  make([]LaneOutcome, k),
	}
	for i := 0; i < nm; i++ {
		b.devs[i] = device.NewBatch(k, lanes[0].MOSDevice(i))
	}
	b.Rebind()
	return b, nil
}

// K returns the lane capacity.
func (b *BatchSim) K() int { return b.k }

// Lane returns lane l's circuit (for re-stamping, arming, measurement).
func (b *BatchSim) Lane(l int) *Circuit { return b.lanes[l] }

// SetObs attaches a per-worker observability scope: the batch driver
// attributes its SoA evaluation rounds to the device-eval-batch phase and
// the lane circuits attribute their solver phases as usual.
func (b *BatchSim) SetObs(sc *obs.Scope) {
	b.obsScope = sc
	for _, c := range b.lanes {
		c.SetObs(sc)
	}
}

// Rebind re-hoists every lane's current device instances into the batch
// kernels. TransientBatch calls it on entry, so re-stamped parameter cards
// (Restat) are always picked up; a device whose concrete type the model
// kernel cannot batch demotes that position to the scalar-loop fallback.
func (b *BatchSim) Rebind() {
	b.obsScope.Enter(obs.PhaseTapeBind)
	defer b.obsScope.Exit()
	for i := range b.devs {
		for l, c := range b.lanes {
			if !b.devs[i].SetLane(l, c.MOSDevice(i)) {
				fb := device.NewFallbackBatch(b.k)
				for j, cj := range b.lanes {
					fb.SetLane(j, cj.MOSDevice(i))
				}
				b.devs[i] = fb
				break
			}
		}
	}
}

// evalRound performs one batched device-evaluation round: for every MOSFET
// position, gather each active lane's terminal voltages from its solve
// vector, evaluate all lanes in one SoA kernel call, and scatter the bundles
// into the lanes' devPre slots for the next assemble. b.mode selects, per
// lane, full bundle / values only / skip.
func (b *BatchSim) evalRound(live int) {
	b.obsScope.Enter(obs.PhaseBatchEval)
	nm := len(b.devs)
	for i := 0; i < nm; i++ {
		for l := 0; l < live; l++ {
			if b.mode[l] == device.EvalSkip {
				continue
			}
			c := b.lanes[l]
			m := &c.mos[i]
			x := c.trX
			b.vd[l] = nv(x, m.d)
			b.vg[l] = nv(x, m.g)
			b.vs[l] = nv(x, m.s)
			b.vb[l] = nv(x, m.b)
		}
		b.devs[i].EvalDerivsBatch(b.vd, b.vg, b.vs, b.vb, b.mode, b.out)
		for l := 0; l < live; l++ {
			if b.mode[l] == device.EvalSkip {
				continue
			}
			b.out.LaneInto(l, &b.lanes[l].devPre[i])
			b.lanes[l].stats.ModelEvals++
		}
	}
	b.obsScope.Exit()
}

// lockstepNewton advances every in-solve lane to completion, one shared
// evaluation round per Newton iteration. Each lane's already-made refresh
// decision (newtonState.wantJ) picks its evaluation mode, so chord lanes pay
// values-only evaluations while refreshing lanes get the full bundle —
// exactly the work the scalar solver would have requested.
func (b *BatchSim) lockstepNewton(live int) {
	for {
		active := 0
		for l := 0; l < live; l++ {
			if !b.inSolve[l] {
				b.mode[l] = device.EvalSkip
				continue
			}
			if b.ns[l].wantJ {
				b.mode[l] = device.EvalFull
			} else {
				b.mode[l] = device.EvalValues
			}
			active++
		}
		if active == 0 {
			return
		}
		b.evalRound(live)
		for l := 0; l < live; l++ {
			if b.inSolve[l] && b.ns[l].step(&b.ctxs[l]) {
				b.inSolve[l] = false
			}
		}
	}
}

// laneDone finalizes a lane with a terminal (non-evicted) outcome.
func (b *BatchSim) laneDone(l int, err error) {
	b.lockstep[l] = false
	b.inSolve[l] = false
	b.mode[l] = device.EvalSkip
	b.lanes[l].devPreSet = false
	b.outcomes[l] = LaneOutcome{Err: err}
}

// evict rewinds lane l to its batch-entry state and re-runs the scalar
// transient, making the lane's result and counters bit-identical to a pure
// scalar run of the same sample.
func (b *BatchSim) evict(l int, opts TranOpts, guess []float64, res *TranResult) {
	c := b.lanes[l]
	b.lockstep[l] = false
	b.inSolve[l] = false
	b.mode[l] = device.EvalSkip
	c.devPreSet = false
	c.stats = b.statsSnap[l]
	c.lcIters = b.lcSnap[l]
	c.luValid = false
	b.Evictions++
	o := opts
	o.Guess = guess
	err := c.TransientInto(o, res)
	b.outcomes[l] = LaneOutcome{Err: err, Evicted: true}
}

// TransientBatch runs the fixed-step transient of TransientInto on lanes
// [0, live) in lockstep, writing lane l's waveforms into res[l]. guesses
// optionally warm-starts each lane's initial operating point (nil falls
// back to opts.Guess for every lane); opts is shared across lanes.
//
// The returned slice (owned by the BatchSim, valid until the next call)
// reports each lane's outcome. Lanes whose solve leaves the lockstep happy
// path are evicted to the scalar engine mid-call; lanes interrupted by
// cancellation or budget exhaustion fail with the scalar error and are not
// re-run. Lanes [live, k) are untouched.
func (b *BatchSim) TransientBatch(live int, opts TranOpts, guesses [][]float64, res []*TranResult) []LaneOutcome {
	if live < 1 || live > b.k {
		panic(fmt.Sprintf("spice: TransientBatch live=%d with %d lanes", live, b.k))
	}
	for l := 0; l < b.k; l++ {
		b.outcomes[l] = LaneOutcome{}
		b.lockstep[l] = l < live
		b.inSolve[l] = false
		b.stepOK[l] = false
		b.mode[l] = device.EvalSkip
	}
	if opts.Stop <= 0 || opts.Step <= 0 {
		err := fmt.Errorf("spice: invalid transient window stop=%g step=%g", opts.Stop, opts.Step)
		for l := 0; l < live; l++ {
			b.lockstep[l] = false
			b.outcomes[l] = LaneOutcome{Err: err}
		}
		return b.outcomes[:live]
	}
	laneGuess := func(l int) []float64 {
		if guesses != nil {
			return guesses[l]
		}
		return opts.Guess
	}

	b.Rebind()
	b.obsScope.Enter(obs.PhaseSolve)
	defer b.obsScope.Exit()

	// Per-lane preamble, mirroring TransientInto: scratch sizing, zero
	// state, then either UIC initial conditions or the plain-Newton rung of
	// the DC operating point — run in lockstep below. (The OP rescue ladder
	// is off the happy path: a lane that needs it is evicted and the scalar
	// ladder runs inside the re-run.)
	for l := 0; l < live; l++ {
		c := b.lanes[l]
		b.statsSnap[l] = c.stats
		b.lcSnap[l] = c.lcIters
		c.devPreSet = true
		n := c.unknowns()
		if len(c.trX) != n {
			c.trX = make([]float64, n)
			c.trPrev = make([]float64, n)
			c.trPrev2 = make([]float64, n)
			c.trPred = make([]float64, n)
		}
		x := c.trX
		for i := range x {
			x[i] = 0
		}
		if opts.UIC {
			for node, v := range opts.IC {
				if node != Gnd {
					x[node] = v
				}
			}
			continue
		}
		if g := laneGuess(l); g != nil && len(g) == n {
			copy(x, g)
		}
		b.ctxs[l] = assembleCtx{srcScale: 1, carry: opts.Fast, fast: opts.Fast}
		b.ns[l].init(c, x, &b.ctxs[l])
		b.inSolve[l] = true
	}
	b.lockstepNewton(live)
	if !opts.UIC {
		for l := 0; l < live; l++ {
			if !b.lockstep[l] {
				continue
			}
			if cerr := b.ns[l].cerr; cerr != nil {
				if lifecycle.Interrupted(cerr) {
					b.laneDone(l, fmt.Errorf("spice: transient initial OP: %w",
						cerr.at(StageDCNewton, 0)))
				} else {
					b.evict(l, opts, laneGuess(l), res[l])
				}
			}
		}
	}

	steps := int(math.Ceil(opts.Stop/opts.Step + 1e-9))
	for l := 0; l < live; l++ {
		if !b.lockstep[l] {
			continue
		}
		c := b.lanes[l]
		ts := &c.trState
		ts.h, ts.trap, ts.firstBE = opts.Step, opts.Trap, true
		c.initTranHistory(c.trX, ts)
		res[l].reset(c, steps+1)
		res[l].snap(0, c.trX)
		copy(c.trPrev, c.trX)
	}

	for k := 0; k < steps; k++ {
		t := float64(k+1) * opts.Step
		remaining := 0
		for l := 0; l < live; l++ {
			b.stepOK[l] = false
			if !b.lockstep[l] {
				continue
			}
			remaining++
			c := b.lanes[l]
			ts := &c.trState
			c.saveTranHistory(ts)
			x, xPrev, xPrev2, pred := c.trX, c.trPrev, c.trPrev2, c.trPred
			if k > 0 {
				if opts.Fast && k > 1 {
					for i := range pred {
						pred[i] = 3*(x[i]-xPrev[i]) + xPrev2[i]
					}
				} else {
					for i := range pred {
						pred[i] = 2*x[i] - xPrev[i]
					}
				}
				copy(xPrev2, xPrev)
				copy(xPrev, x)
				copy(x, pred)
			} else {
				copy(xPrev, x)
			}
			b.ctxs[l] = assembleCtx{t: t, srcScale: 1, tran: ts, carry: opts.Fast, fast: opts.Fast}
			b.ns[l].init(c, x, &b.ctxs[l])
			b.inSolve[l] = true
		}
		if remaining == 0 {
			break
		}
		b.lockstepNewton(live)

		for l := 0; l < live; l++ {
			if !b.lockstep[l] {
				continue
			}
			c := b.lanes[l]
			cerr := b.ns[l].cerr
			if cerr != nil {
				cerr = cerr.at(StageTran, t)
			} else if i := firstNonFinite(c.trX); i >= 0 {
				c.stats.NonFiniteRejects++
				c.traceNonFinite("tran-candidate", t)
				c.luValid = false
				e := &ConvergenceError{Node: c.unknownName(i), Err: ErrNonFiniteSolution}
				cerr = e.at(StageTran, t)
			}
			if cerr == nil {
				b.stepOK[l] = true
				continue
			}
			if lifecycle.Interrupted(cerr) {
				b.laneDone(l, fmt.Errorf("spice: transient interrupted at t=%g: %w",
					t, asError(cerr)))
				continue
			}
			// Fast→exact retry or the sub-step rescue ladder would be next on
			// the scalar path; both leave lockstep, so evict.
			b.evict(l, opts, laneGuess(l), res[l])
		}

		// Advance the charge history for surviving lanes. devPre still holds
		// each lane's final lockstep eval round — the pre-final-update Newton
		// state, exactly what the scalar path caches in evCache — so neither
		// mode needs an extra eval round here.
		for l := 0; l < live; l++ {
			if b.stepOK[l] {
				c := b.lanes[l]
				c.updateTranHistory(c.trX, &c.trState)
			}
		}

		for l := 0; l < live; l++ {
			if !b.stepOK[l] {
				continue
			}
			c := b.lanes[l]
			ts := &c.trState
			if !c.tranHistoryFinite(ts) {
				// The scalar path restores the snapshot and climbs the
				// sub-step ladder here; the eviction re-run reproduces that
				// (and the associated counters) from the sample start.
				b.evict(l, opts, laneGuess(l), res[l])
				continue
			}
			ts.firstBE = false
			c.stats.TranSteps++
			res[l].snap(t, c.trX)
		}
	}

	for l := 0; l < live; l++ {
		if b.lockstep[l] {
			b.lanes[l].devPreSet = false
		}
	}
	return b.outcomes[:live]
}
