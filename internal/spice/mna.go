package spice

import (
	"errors"
	"fmt"
	"math"

	"vstat/internal/device"
	"vstat/internal/linalg"
	"vstat/internal/obs"
)

// Newton solver tolerances.
const (
	tolV   = 1e-9  // V, max node-voltage update
	tolI   = 1e-10 // A, max KCL residual
	vLimit = 0.3   // V, per-iteration node update clamp

	// Fast-path tolerances: chord Newton converges linearly, so every
	// decade of tolerance costs roughly one residual pass per timestep.
	// 1 µV is the classic SPICE VNTOL default — error orders of magnitude
	// below any measured delay or noise margin (a 1 µV edge shift moves a
	// gate delay by femtoseconds at the benches' V/ns slew rates, and the
	// implicit integrator damps rather than accumulates it).
	tolVFast = 1e-6 // V
	tolIFast = 1e-7 // A
)

// ErrNoConvergence is returned when every convergence aid fails.
var ErrNoConvergence = errors.New("spice: Newton iteration failed to converge")

// tranState carries the charge/current history of the implicit integrator.
type tranState struct {
	h        float64      // current timestep
	trap     bool         // trapezoidal (else backward Euler)
	firstBE  bool         // force BE on the first step after (re)initialization
	qPrevMos [][4]float64 // per MOSFET terminal charges at t_n
	iPrevMos [][4]float64 // per MOSFET terminal charge-currents at t_n
	qPrevCap []float64    // per capacitor charge at t_n
	iPrevCap []float64    // per capacitor current at t_n
}

// assembleCtx selects the analysis terms for one Newton solve.
type assembleCtx struct {
	t         float64    // source evaluation time
	srcScale  float64    // source-stepping scale factor (1 = full)
	gminExtra float64    // gmin-stepping additional node-to-ground conductance
	ptG       float64    // pseudo-transient anchor conductance (0 = off)
	ptRef     []float64  // pseudo-transient anchor state (previous pseudo-step)
	tran      *tranState // nil for DC
	carry     bool       // allow reusing a Jacobian factored by a previous solve
	fast      bool       // cache device evaluations for the fast history update
}

// luKey identifies the analysis configuration a factored Jacobian belongs
// to; a carried factorization is only reused when the key matches exactly.
type luKey struct {
	h         float64
	trapPhase bool
	tran      bool
	gmin      float64
	pt        float64
	scale     float64
}

func ctxKey(ctx *assembleCtx) luKey {
	k := luKey{gmin: ctx.gminExtra, pt: ctx.ptG, scale: ctx.srcScale}
	if ctx.tran != nil {
		k.tran = true
		k.h = ctx.tran.h
		k.trapPhase = ctx.tran.trap && !ctx.tran.firstBE
	}
	return k
}

// SolverStats counts Newton work since the last ResetStats, for perf
// tracking (cmd/vsbench) and regression tests. The rescue counters below
// the first block record which rung of the convergence rescue ladder saved
// (or rejected) a solve; Monte Carlo drivers aggregate them into RunReports
// via RescueCounts.
type SolverStats struct {
	NewtonIters  int64 // linear solves (chord or full Newton iterations)
	JacRefreshes int64 // Jacobian assemblies + LU factorizations
	TranSteps    int64 // accepted transient timesteps
	Rescues      int64 // timesteps that fell back to the BE sub-step ladder

	DCGminRescues    int64 // DC solves rescued by gmin stepping
	DCSourceRescues  int64 // DC solves rescued by source stepping
	DCPseudoRescues  int64 // DC solves rescued by the pseudo-transient ramp
	TranHalvings     int64 // timestep-halving rescue levels entered
	FastFallbacks    int64 // fast→exact fallbacks (carried chord Jacobian dropped)
	NonFiniteRejects int64 // NaN/Inf iterates, candidates, or histories rejected

	// SparseRepivots counts sparse-core pivot-order re-analyses (zero pivot
	// or growth beyond spGrowthLimit under the frozen order). Excluded from
	// RescueCounts: whether a given sample trips the growth check depends on
	// which sample last re-analyzed this worker's pooled template, which is
	// scheduling-dependent.
	SparseRepivots int64

	// ModelEvals counts MOSFET compact-model evaluations (scalar Eval /
	// EvalDerivs calls and batched SoA lane-evaluations alike), the
	// denominator for per-kernel model-throughput metrics. Incremented at
	// the sites that invoke a model, not at the stamping sites that consume
	// a pre-computed bundle, so batch and scalar paths count identically.
	ModelEvals int64
}

// RescueCounts returns the nonzero rescue-ladder counters keyed by stage
// name, the form montecarlo.RunReport aggregates across workers. Only
// counters whose per-sample increments depend solely on the sample (not on
// worker scheduling or template construction) are included, so the summed
// map is invariant under worker count.
func (s SolverStats) RescueCounts() map[string]int64 {
	out := make(map[string]int64, 7)
	add := func(k string, v int64) {
		if v != 0 {
			out[k] = v
		}
	}
	add(string(StageDCGmin), s.DCGminRescues)
	add(string(StageDCSource), s.DCSourceRescues)
	add(string(StageDCPseudo), s.DCPseudoRescues)
	add(string(StageTranHalve), s.TranHalvings)
	add("tran-substep", s.Rescues)
	add("fast-fallback", s.FastFallbacks)
	add("nonfinite-reject", s.NonFiniteRejects)
	return out
}

// Work reduces the counter set to the two numbers the per-sample flight
// recorder ranks on: total Newton iterations and total rescue-ladder
// stages climbed (every counter RescueCounts exposes). Both are pure
// functions of the sample's physics, never of worker scheduling, so
// per-sample deltas of Work are deterministic at any worker count.
func (s SolverStats) Work() (iters, rescues int64) {
	return s.NewtonIters, s.DCGminRescues + s.DCSourceRescues + s.DCPseudoRescues +
		s.TranHalvings + s.Rescues + s.FastFallbacks + s.NonFiniteRejects
}

// Add returns the field-wise sum of two counter sets (benches spanning
// several circuits report one merged set).
func (s SolverStats) Add(o SolverStats) SolverStats {
	return SolverStats{
		NewtonIters:      s.NewtonIters + o.NewtonIters,
		JacRefreshes:     s.JacRefreshes + o.JacRefreshes,
		TranSteps:        s.TranSteps + o.TranSteps,
		Rescues:          s.Rescues + o.Rescues,
		DCGminRescues:    s.DCGminRescues + o.DCGminRescues,
		DCSourceRescues:  s.DCSourceRescues + o.DCSourceRescues,
		DCPseudoRescues:  s.DCPseudoRescues + o.DCPseudoRescues,
		TranHalvings:     s.TranHalvings + o.TranHalvings,
		FastFallbacks:    s.FastFallbacks + o.FastFallbacks,
		NonFiniteRejects: s.NonFiniteRejects + o.NonFiniteRejects,
		SparseRepivots:   s.SparseRepivots + o.SparseRepivots,
		ModelEvals:       s.ModelEvals + o.ModelEvals,
	}
}

// Stats returns the accumulated solver counters.
func (c *Circuit) Stats() SolverStats { return c.stats }

// ResetStats zeroes the solver counters.
func (c *Circuit) ResetStats() { c.stats = SolverStats{} }

// assemble fills the residual F(x) (sum of currents leaving each node, plus
// source constraint rows) and, when wantJ is set, its Jacobian. Residual-only
// assembly is much cheaper (one model evaluation per device instead of
// five), enabling chord-Newton iterations on a frozen Jacobian.
func (c *Circuit) assemble(x, f []float64, jac *linalg.Matrix, ctx *assembleCtx, wantJ bool) {
	for i := range f {
		f[i] = 0
	}
	if wantJ {
		jac.Zero()
	}
	nNodes := len(c.nodeNames)

	addF := func(node int, v float64) {
		if node != Gnd {
			f[node] += v
		}
	}
	addJ := func(row, col int, v float64) {
		if row != Gnd && col != Gnd {
			jac.Add(row, col, v)
		}
	}
	if !wantJ {
		addJ = func(int, int, float64) {}
	}

	// Global gmin to ground. Routed through addJ so residual-only passes
	// leave the frozen chord-Newton Jacobian untouched.
	g := c.Gmin + ctx.gminExtra
	for n := 0; n < nNodes; n++ {
		f[n] += g * x[n]
		addJ(n, n, g)
	}

	// Pseudo-transient anchor: a conductance from every node to the
	// previous pseudo-step's state, the backward-Euler companion of a
	// grounded pseudo-capacitance Cp with ptG = Cp/h. Large ptG keeps the
	// solve trivially well-conditioned near the anchor; the ramp in
	// pseudoTransient relaxes it toward the true operating point.
	if ctx.ptG > 0 {
		for n := 0; n < nNodes; n++ {
			f[n] += ctx.ptG * (x[n] - ctx.ptRef[n])
			addJ(n, n, ctx.ptG)
		}
	}

	// Resistors.
	for i := range c.rs {
		r := &c.rs[i]
		iv := r.g * (nv(x, r.a) - nv(x, r.b))
		addF(r.a, iv)
		addF(r.b, -iv)
		addJ(r.a, r.a, r.g)
		addJ(r.a, r.b, -r.g)
		addJ(r.b, r.a, -r.g)
		addJ(r.b, r.b, r.g)
	}

	// Voltage sources: branch current unknowns follow the node block.
	for i := range c.vs {
		v := &c.vs[i]
		br := nNodes + v.branch
		ib := x[br]
		addF(v.p, ib)
		addF(v.n, -ib)
		addJ(v.p, br, 1)
		addJ(v.n, br, -1)
		f[br] = nv(x, v.p) - nv(x, v.n) - ctx.srcScale*v.wave.At(ctx.t)
		addJ(br, v.p, 1)
		addJ(br, v.n, -1)
	}

	// Current sources.
	for i := range c.is {
		s := &c.is[i]
		iv := ctx.srcScale * s.wave.At(ctx.t)
		addF(s.p, iv)
		addF(s.n, -iv)
	}

	// Capacitors: open in DC, companion charge terms in transient.
	if ctx.tran != nil {
		ts := ctx.tran
		for i := range c.cs {
			cp := &c.cs[i]
			q := cp.c * (nv(x, cp.a) - nv(x, cp.b))
			var iq, geq float64
			if ts.trap && !ts.firstBE {
				iq = 2*(q-ts.qPrevCap[i])/ts.h - ts.iPrevCap[i]
				geq = 2 * cp.c / ts.h
			} else {
				iq = (q - ts.qPrevCap[i]) / ts.h
				geq = cp.c / ts.h
			}
			addF(cp.a, iq)
			addF(cp.b, -iq)
			addJ(cp.a, cp.a, geq)
			addJ(cp.a, cp.b, -geq)
			addJ(cp.b, cp.a, -geq)
			addJ(cp.b, cp.b, geq)
		}
	}

	// MOSFETs: DC channel current always; terminal charge currents in
	// transient. Transient assembles cache the model evaluations so the
	// converged step's history update (updateTranHistory) reuses the last
	// Newton evaluation instead of re-evaluating every device.
	cacheEv := ctx.tran != nil
	if cacheEv && len(c.evCache) != len(c.mos) {
		c.evCache = make([]device.Eval, len(c.mos))
	}
	for i := range c.mos {
		m := &c.mos[i]
		term := [4]int{m.d, m.g, m.s, m.b}
		var ev device.Eval
		var dv device.Derivs
		if c.devPreSet {
			// Lockstep batch driver: the SoA kernel already evaluated this
			// device at exactly these terminal voltages; consume its bundle
			// so the stamping arithmetic below is unchanged.
			dv = c.devPre[i]
			ev = dv.Eval
		} else if wantJ {
			dv = device.EvalDerivs(m.dev,
				nv(x, m.d), nv(x, m.g), nv(x, m.s), nv(x, m.b))
			ev = dv.Eval
			c.stats.ModelEvals++
		} else {
			ev = m.dev.Eval(nv(x, m.d), nv(x, m.g), nv(x, m.s), nv(x, m.b))
			c.stats.ModelEvals++
		}
		if cacheEv {
			c.evCache[i] = ev
		}
		addF(m.d, ev.Id)
		addF(m.s, -ev.Id)
		if wantJ {
			for j := 0; j < 4; j++ {
				addJ(m.d, term[j], dv.GId[j])
				addJ(m.s, term[j], -dv.GId[j])
			}
		}
		if ctx.tran != nil {
			ts := ctx.tran
			q := [4]float64{ev.Q.Qd, ev.Q.Qg, ev.Q.Qs, ev.Q.Qb}
			fac := 1 / ts.h
			if ts.trap && !ts.firstBE {
				fac = 2 / ts.h
			}
			for k := 0; k < 4; k++ {
				var iq float64
				if ts.trap && !ts.firstBE {
					iq = 2*(q[k]-ts.qPrevMos[i][k])/ts.h - ts.iPrevMos[i][k]
				} else {
					iq = (q[k] - ts.qPrevMos[i][k]) / ts.h
				}
				addF(term[k], iq)
				if wantJ {
					for j := 0; j < 4; j++ {
						addJ(term[k], term[j], fac*dv.CQ[k][j])
					}
				}
			}
		}
	}
}

// updateTranHistory advances the charge/current history after a converged
// timestep at solution x. Capacitor charges are linear in x and recomputed
// exactly. MOSFET terminal charges come from the evaluations cached by the
// last Newton assembly (or from the lockstep batch driver's devPre bundles),
// which sit at the pre-final-update Newton state: that differs from the
// converged x by less than the solve's voltage tolerance per node, so the
// charge error is far below the current tolerance in both the exact and
// fast paths. Every caller runs immediately after a successful stepSolve on
// the same circuit state, which is what fills the cache.
func (c *Circuit) updateTranHistory(x []float64, ts *tranState) {
	for i := range c.cs {
		cp := &c.cs[i]
		q := cp.c * (nv(x, cp.a) - nv(x, cp.b))
		var iq float64
		if ts.trap && !ts.firstBE {
			iq = 2*(q-ts.qPrevCap[i])/ts.h - ts.iPrevCap[i]
		} else {
			iq = (q - ts.qPrevCap[i]) / ts.h
		}
		ts.qPrevCap[i] = q
		ts.iPrevCap[i] = iq
	}
	for i := range c.mos {
		var e device.Eval
		if c.devPreSet {
			e = c.devPre[i].Eval
		} else {
			e = c.evCache[i]
		}
		q := [4]float64{e.Q.Qd, e.Q.Qg, e.Q.Qs, e.Q.Qb}
		for k := 0; k < 4; k++ {
			var iq float64
			if ts.trap && !ts.firstBE {
				iq = 2*(q[k]-ts.qPrevMos[i][k])/ts.h - ts.iPrevMos[i][k]
			} else {
				iq = (q[k] - ts.qPrevMos[i][k]) / ts.h
			}
			ts.qPrevMos[i][k] = q[k]
			ts.iPrevMos[i][k] = iq
		}
	}
}

// saveTranHistory snapshots the integrator charge history into
// circuit-owned scratch (reused across steps, so the hot path stays
// allocation-free after warmup). restoreTranHistory rewinds to the
// snapshot; together they make a failed or NaN-rejected step retryable at a
// finer sub-step without corrupting the history the next sample inherits.
func (c *Circuit) saveTranHistory(ts *tranState) {
	if len(c.hsQMos) != len(ts.qPrevMos) {
		c.hsQMos = make([][4]float64, len(ts.qPrevMos))
		c.hsIMos = make([][4]float64, len(ts.iPrevMos))
	}
	copy(c.hsQMos, ts.qPrevMos)
	copy(c.hsIMos, ts.iPrevMos)
	if len(c.hsQCap) != len(ts.qPrevCap) {
		c.hsQCap = make([]float64, len(ts.qPrevCap))
		c.hsICap = make([]float64, len(ts.iPrevCap))
	}
	copy(c.hsQCap, ts.qPrevCap)
	copy(c.hsICap, ts.iPrevCap)
}

// restoreTranHistory rewinds the charge history to the last snapshot.
func (c *Circuit) restoreTranHistory(ts *tranState) {
	copy(ts.qPrevMos, c.hsQMos)
	copy(ts.iPrevMos, c.hsIMos)
	copy(ts.qPrevCap, c.hsQCap)
	copy(ts.iPrevCap, c.hsICap)
}

// tranHistoryFinite reports whether every charge-history entry is finite.
func (c *Circuit) tranHistoryFinite(ts *tranState) bool {
	for i := range ts.qPrevMos {
		for k := 0; k < 4; k++ {
			if !finite(ts.qPrevMos[i][k]) || !finite(ts.iPrevMos[i][k]) {
				return false
			}
		}
	}
	for i := range ts.qPrevCap {
		if !finite(ts.qPrevCap[i]) || !finite(ts.iPrevCap[i]) {
			return false
		}
	}
	return true
}

// initTranHistory seeds the charge history from the state x with zero
// charge currents. Existing history slices are reused when the element
// counts match, so pooled transients allocate nothing here.
func (c *Circuit) initTranHistory(x []float64, ts *tranState) {
	if len(ts.qPrevCap) != len(c.cs) {
		ts.qPrevCap = make([]float64, len(c.cs))
		ts.iPrevCap = make([]float64, len(c.cs))
	} else {
		for i := range ts.iPrevCap {
			ts.iPrevCap[i] = 0
		}
	}
	if len(ts.qPrevMos) != len(c.mos) {
		ts.qPrevMos = make([][4]float64, len(c.mos))
		ts.iPrevMos = make([][4]float64, len(c.mos))
	} else {
		for i := range ts.iPrevMos {
			ts.iPrevMos[i] = [4]float64{}
		}
	}
	for i := range c.cs {
		cp := &c.cs[i]
		ts.qPrevCap[i] = cp.c * (nv(x, cp.a) - nv(x, cp.b))
	}
	for i := range c.mos {
		m := &c.mos[i]
		e := m.dev.Eval(nv(x, m.d), nv(x, m.g), nv(x, m.s), nv(x, m.b))
		c.stats.ModelEvals++
		ts.qPrevMos[i] = [4]float64{e.Q.Qd, e.Q.Qg, e.Q.Qs, e.Q.Qb}
	}
}

// luSolver is the factorization interface newton drives: both the dense
// *linalg.LU and the sparse *linalg.SparseLU satisfy it with the same
// no-allocation SolvePermuting contract.
type luSolver interface {
	SolvePermuting(b, scratch []float64) []float64
}

// newton runs damped Newton iteration on the system selected by ctx,
// starting from and updating x in place. On failure it returns a typed
// *ConvergenceError carrying the iteration budget spent and the worst node
// with its residual; the caller tags it with the analysis stage and time.
// A NaN/Inf iterate aborts the iteration immediately (counted in
// NonFiniteRejects) instead of grinding through the iteration budget, and
// the poisoned update is rolled back so x stays finite for the next rescue
// rung.
//
// When ctx.carry is set and the circuit holds a valid factorization from a
// previous solve with the same luKey, the iteration starts as chord Newton
// on that carried factorization; the stall detector refreshes the Jacobian
// as soon as the frozen factors stop contracting, so correctness never
// depends on the carried factors being fresh (convergence is always judged
// on the true residual).
func (c *Circuit) newton(x []float64, ctx *assembleCtx) *ConvergenceError {
	var ns newtonState
	ns.init(c, x, ctx)
	for !ns.step(ctx) {
	}
	return ns.cerr
}

// newtonState is one Newton solve unrolled into an explicitly resumable
// form: init is the scalar newton's preamble, step is exactly one iteration
// of its loop. The scalar newton above is init + step-until-finished; the
// lockstep batch driver (batch.go) interleaves step calls across K lanes,
// performing the device evaluations for all lanes in one SoA kernel call
// between rounds (wantJ tells it which lanes need the full bundle). The
// split is pure code motion — per lane, the arithmetic and control flow are
// the scalar solver's, statement for statement.
type newtonState struct {
	c *Circuit
	// ctx is deliberately NOT stored: step takes it as an argument so the
	// caller's stack-allocated assembleCtx never escapes (storing it here
	// costs one heap allocation per solve on the pooled hot path).
	x         []float64
	f         []float64
	scratch   []float64
	jac       *linalg.Matrix
	useSparse bool
	lu        luSolver
	maxIter   int
	key       luKey
	tv, ti    float64
	prevDv    float64
	forceJ    bool
	lastDv    float64
	lastF     float64
	lastWorst int
	iter      int
	// wantJ is the already-made refresh decision for the NEXT step call, so
	// the batch driver knows whether the lane needs a full derivative bundle
	// or values only before evaluating.
	wantJ bool
	// finished/cerr are the outcome once step returns true.
	finished bool
	cerr     *ConvergenceError
}

// init replicates the scalar newton preamble: scratch sizing, linear-core
// resolution, carried-factorization pickup.
func (ns *newtonState) init(c *Circuit, x []float64, ctx *assembleCtx) {
	n := c.unknowns()
	// Newton scratch buffers live on the circuit (one goroutine per
	// circuit), so transient loops do not re-allocate per step.
	if len(c.nwF) != n {
		c.nwF = make([]float64, n)
		c.nwScratch = make([]float64, n)
		c.nwJac, c.nwLU = nil, nil
		c.spReady = false
		c.luValid = false
	}
	// Resolve the linear core; the per-core workspaces are lazy so a circuit
	// on the sparse path never allocates the dense n² matrix (and vice
	// versa). A core switch invalidates any carried factorization.
	useSparse := c.useSparseCore()
	if useSparse != c.coreSparse {
		c.coreSparse = useSparse
		c.luValid = false
	}
	if useSparse {
		if !c.spReady {
			c.buildStampMap()
		}
	} else if c.nwJac == nil {
		c.nwJac = linalg.NewMatrix(n, n)
		c.nwLU = linalg.NewLUWorkspace(n)
	}

	maxIter := c.MaxNewton
	if maxIter <= 0 {
		maxIter = 150
	}
	*ns = newtonState{
		c: c, x: x,
		f: c.nwF, scratch: c.nwScratch, jac: c.nwJac,
		useSparse: useSparse,
		maxIter:   maxIter,
		key:       ctxKey(ctx),
		tv:        tolV, ti: tolI,
		prevDv:    math.Inf(1),
		forceJ:    true,
		lastWorst: -1,
	}
	if ctx.fast {
		ns.tv, ns.ti = tolVFast, tolIFast
	}
	if ctx.carry && c.luValid && c.luKey == ns.key {
		// Start as chord Newton on the carried factorization: prevDv below
		// the refresh threshold, no forced refresh. The first update that
		// moves any node by more than 50 mV triggers a refresh.
		if useSparse {
			ns.lu = c.spLU
		} else {
			ns.lu = c.nwLU
		}
		ns.prevDv = 0.1
		ns.forceJ = false
	}
	c.luValid = false
	// Refresh policy. The VS model's native derivative bundle falls out of
	// the series solve, so a with-Jacobian assembly costs the same device
	// work as a values-only one: in exact mode full Newton (refresh every
	// iteration, quadratic convergence) beats chord iteration, whose only
	// remaining saving is the factorization. Fast mode keeps chord Newton —
	// there the carried factorization skips assembly AND factoring, and the
	// stall detector refreshes whenever contraction slows.
	ns.wantJ = !ctx.fast || ns.lu == nil || ns.forceJ || ns.prevDv > 0.2
}

// fail records a terminal convergence error.
func (ns *newtonState) fail(cerr *ConvergenceError) bool {
	ns.finished = true
	ns.cerr = cerr
	return true
}

// step runs one Newton iteration (or reports iteration-budget exhaustion),
// returning true when the solve is finished — converged (cerr nil) or
// failed (cerr set). Exactly the body of the scalar newton's loop.
func (ns *newtonState) step(ctx *assembleCtx) bool {
	c, x := ns.c, ns.x
	nNodes := len(c.nodeNames)
	if ns.iter >= ns.maxIter {
		cerr := &ConvergenceError{Iters: ns.maxIter, Residual: ns.lastF,
			DeltaV: ns.lastDv, Err: ErrNoConvergence}
		if ns.lastWorst >= 0 {
			cerr.Node = c.unknownName(ns.lastWorst)
		}
		return ns.fail(cerr)
	}
	// Lifecycle check at the iteration boundary: every analysis (DC rungs,
	// transient steps, sub-step rescue pieces) funnels through here, so one
	// check site covers them all. Nil on the hot path, allocation-free while
	// the sample stays within budget.
	if lcErr := c.checkLifecycle(); lcErr != nil {
		return ns.fail(&ConvergenceError{Iters: ns.iter, Residual: ns.lastF,
			DeltaV: ns.lastDv, Err: lcErr})
	}
	f, jac, scratch := ns.f, ns.jac, ns.scratch
	// Assembly-with-Jacobian is the "assemble-J" observability phase and the
	// factorization refresh is "lu-factor", both carved out of newton-solve
	// so the device-model and linear-algebra costs are separately visible.
	wantJ := ns.wantJ
	if wantJ {
		c.obsScope.Enter(obs.PhaseAssemble)
		if ns.useSparse {
			c.assembleSparse(x, f, ctx)
		} else {
			c.assemble(x, f, jac, ctx, true)
		}
		c.obsScope.Exit()
	} else {
		c.assemble(x, f, nil, ctx, false)
	}
	// Reject NaN/Inf residuals before they reach the linear solve: a single
	// non-finite model evaluation would otherwise smear NaN over the whole
	// update vector and burn the full iteration budget (NaN compares false
	// against every tolerance).
	if i := firstNonFinite(f); i >= 0 {
		c.stats.NonFiniteRejects++
		c.traceNonFinite("newton-residual", ctx.t)
		return ns.fail(&ConvergenceError{Iters: ns.iter + 1, Node: c.unknownName(i),
			Residual: f[i], Err: ErrNonFiniteSolution})
	}
	if wantJ {
		c.obsScope.Enter(obs.PhaseFactor)
		var err error
		if ns.useSparse {
			err = c.factorSparse()
			ns.lu = c.spLU
		} else {
			err = c.nwLU.Factor(jac)
			ns.lu = c.nwLU
		}
		c.obsScope.Exit()
		if err != nil {
			return ns.fail(&ConvergenceError{Iters: ns.iter + 1,
				Err: fmt.Errorf("singular Jacobian: %w", err)})
		}
		c.stats.JacRefreshes++
	}
	c.stats.NewtonIters++
	c.obsScope.Enter(obs.PhaseTriSolve)
	dx := ns.lu.SolvePermuting(f, scratch)
	c.obsScope.Exit()
	// A finite residual through a near-singular factorization can still
	// produce Inf/NaN updates; reject them before touching x.
	if i := firstNonFinite(dx); i >= 0 {
		c.stats.NonFiniteRejects++
		c.traceNonFinite("newton-update", ctx.t)
		return ns.fail(&ConvergenceError{Iters: ns.iter + 1, Node: c.unknownName(i),
			Residual: ns.lastF, Err: ErrNonFiniteSolution})
	}

	// Voltage limiting on node entries.
	maxDv := 0.0
	for i := 0; i < nNodes; i++ {
		if dx[i] > vLimit {
			dx[i] = vLimit
		} else if dx[i] < -vLimit {
			dx[i] = -vLimit
		}
		if a := math.Abs(dx[i]); a > maxDv {
			maxDv = a
		}
	}
	for i := range x {
		x[i] -= dx[i]
	}

	maxF := 0.0
	worst := -1
	for i := 0; i < nNodes; i++ {
		if a := math.Abs(f[i]); a > maxF {
			maxF = a
			worst = i
		}
	}
	ns.lastDv, ns.lastF, ns.lastWorst = maxDv, maxF, worst
	if maxDv < ns.tv && maxF < ns.ti {
		c.luValid = true
		c.luKey = ns.key
		ns.finished = true
		return true
	}
	// A stale Jacobian must still contract; refresh when it stalls.
	ns.forceJ = !wantJ && maxDv > 0.5*ns.prevDv
	if !wantJ && !ns.forceJ && maxDv > ns.tv {
		// Chord contraction is linear, so the remaining iteration count is
		// predictable from the observed ratio. Refresh unless the frozen
		// factors will finish within a few more passes — this catches
		// switching edges on their first slow iteration instead of grinding
		// toward tolerance at ratio ~0.4.
		rho := maxDv / ns.prevDv
		if rho > 0.04 && math.Log(ns.tv/maxDv) < 3*math.Log(rho) {
			ns.forceJ = true
		}
	}
	ns.prevDv = maxDv
	ns.iter++
	// See init: exact mode runs full Newton now that the analytic device
	// bundle makes with-Jacobian assembly no dearer than values-only.
	ns.wantJ = !ctx.fast || ns.lu == nil || ns.forceJ || ns.prevDv > 0.2
	return false
}
