package spice

import (
	"errors"
	"fmt"
	"math"

	"vstat/internal/device"
	"vstat/internal/linalg"
)

// Newton solver tolerances.
const (
	tolV   = 1e-9  // V, max node-voltage update
	tolI   = 1e-10 // A, max KCL residual
	vLimit = 0.3   // V, per-iteration node update clamp
)

// ErrNoConvergence is returned when every convergence aid fails.
var ErrNoConvergence = errors.New("spice: Newton iteration failed to converge")

// tranState carries the charge/current history of the implicit integrator.
type tranState struct {
	h        float64      // current timestep
	trap     bool         // trapezoidal (else backward Euler)
	firstBE  bool         // force BE on the first step after (re)initialization
	qPrevMos [][4]float64 // per MOSFET terminal charges at t_n
	iPrevMos [][4]float64 // per MOSFET terminal charge-currents at t_n
	qPrevCap []float64    // per capacitor charge at t_n
	iPrevCap []float64    // per capacitor current at t_n
}

// assembleCtx selects the analysis terms for one Newton solve.
type assembleCtx struct {
	t         float64    // source evaluation time
	srcScale  float64    // source-stepping scale factor (1 = full)
	gminExtra float64    // gmin-stepping additional node-to-ground conductance
	tran      *tranState // nil for DC
}

// assemble fills the residual F(x) (sum of currents leaving each node, plus
// source constraint rows) and, when wantJ is set, its Jacobian. Residual-only
// assembly is much cheaper (one model evaluation per device instead of
// five), enabling chord-Newton iterations on a frozen Jacobian.
func (c *Circuit) assemble(x, f []float64, jac *linalg.Matrix, ctx *assembleCtx, wantJ bool) {
	for i := range f {
		f[i] = 0
	}
	if wantJ {
		jac.Zero()
	}
	nNodes := len(c.nodeNames)

	addF := func(node int, v float64) {
		if node != Gnd {
			f[node] += v
		}
	}
	addJ := func(row, col int, v float64) {
		if row != Gnd && col != Gnd {
			jac.Add(row, col, v)
		}
	}
	if !wantJ {
		addJ = func(int, int, float64) {}
	}

	// Global gmin to ground.
	g := c.Gmin + ctx.gminExtra
	for n := 0; n < nNodes; n++ {
		f[n] += g * x[n]
		jac.Add(n, n, g)
	}

	// Resistors.
	for i := range c.rs {
		r := &c.rs[i]
		iv := r.g * (nv(x, r.a) - nv(x, r.b))
		addF(r.a, iv)
		addF(r.b, -iv)
		addJ(r.a, r.a, r.g)
		addJ(r.a, r.b, -r.g)
		addJ(r.b, r.a, -r.g)
		addJ(r.b, r.b, r.g)
	}

	// Voltage sources: branch current unknowns follow the node block.
	for i := range c.vs {
		v := &c.vs[i]
		br := nNodes + v.branch
		ib := x[br]
		addF(v.p, ib)
		addF(v.n, -ib)
		addJ(v.p, br, 1)
		addJ(v.n, br, -1)
		f[br] = nv(x, v.p) - nv(x, v.n) - ctx.srcScale*v.wave.At(ctx.t)
		addJ(br, v.p, 1)
		addJ(br, v.n, -1)
	}

	// Current sources.
	for i := range c.is {
		s := &c.is[i]
		iv := ctx.srcScale * s.wave.At(ctx.t)
		addF(s.p, iv)
		addF(s.n, -iv)
	}

	// Capacitors: open in DC, companion charge terms in transient.
	if ctx.tran != nil {
		ts := ctx.tran
		for i := range c.cs {
			cp := &c.cs[i]
			q := cp.c * (nv(x, cp.a) - nv(x, cp.b))
			var iq, geq float64
			if ts.trap && !ts.firstBE {
				iq = 2*(q-ts.qPrevCap[i])/ts.h - ts.iPrevCap[i]
				geq = 2 * cp.c / ts.h
			} else {
				iq = (q - ts.qPrevCap[i]) / ts.h
				geq = cp.c / ts.h
			}
			addF(cp.a, iq)
			addF(cp.b, -iq)
			addJ(cp.a, cp.a, geq)
			addJ(cp.a, cp.b, -geq)
			addJ(cp.b, cp.a, -geq)
			addJ(cp.b, cp.b, geq)
		}
	}

	// MOSFETs: DC channel current always; terminal charge currents in
	// transient.
	for i := range c.mos {
		m := &c.mos[i]
		term := [4]int{m.d, m.g, m.s, m.b}
		var ev device.Eval
		var dv device.Derivs
		if wantJ {
			dv = device.EvalDerivs(m.dev,
				nv(x, m.d), nv(x, m.g), nv(x, m.s), nv(x, m.b))
			ev = dv.Eval
		} else {
			ev = m.dev.Eval(nv(x, m.d), nv(x, m.g), nv(x, m.s), nv(x, m.b))
		}
		addF(m.d, ev.Id)
		addF(m.s, -ev.Id)
		if wantJ {
			for j := 0; j < 4; j++ {
				addJ(m.d, term[j], dv.GId[j])
				addJ(m.s, term[j], -dv.GId[j])
			}
		}
		if ctx.tran != nil {
			ts := ctx.tran
			q := [4]float64{ev.Q.Qd, ev.Q.Qg, ev.Q.Qs, ev.Q.Qb}
			fac := 1 / ts.h
			if ts.trap && !ts.firstBE {
				fac = 2 / ts.h
			}
			for k := 0; k < 4; k++ {
				var iq float64
				if ts.trap && !ts.firstBE {
					iq = 2*(q[k]-ts.qPrevMos[i][k])/ts.h - ts.iPrevMos[i][k]
				} else {
					iq = (q[k] - ts.qPrevMos[i][k]) / ts.h
				}
				addF(term[k], iq)
				if wantJ {
					for j := 0; j < 4; j++ {
						addJ(term[k], term[j], fac*dv.CQ[k][j])
					}
				}
			}
		}
	}
}

// updateTranHistory recomputes the charge/current history after a converged
// timestep at solution x.
func (c *Circuit) updateTranHistory(x []float64, ts *tranState) {
	for i := range c.cs {
		cp := &c.cs[i]
		q := cp.c * (nv(x, cp.a) - nv(x, cp.b))
		var iq float64
		if ts.trap && !ts.firstBE {
			iq = 2*(q-ts.qPrevCap[i])/ts.h - ts.iPrevCap[i]
		} else {
			iq = (q - ts.qPrevCap[i]) / ts.h
		}
		ts.qPrevCap[i] = q
		ts.iPrevCap[i] = iq
	}
	for i := range c.mos {
		m := &c.mos[i]
		e := m.dev.Eval(nv(x, m.d), nv(x, m.g), nv(x, m.s), nv(x, m.b))
		q := [4]float64{e.Q.Qd, e.Q.Qg, e.Q.Qs, e.Q.Qb}
		for k := 0; k < 4; k++ {
			var iq float64
			if ts.trap && !ts.firstBE {
				iq = 2*(q[k]-ts.qPrevMos[i][k])/ts.h - ts.iPrevMos[i][k]
			} else {
				iq = (q[k] - ts.qPrevMos[i][k]) / ts.h
			}
			ts.qPrevMos[i][k] = q[k]
			ts.iPrevMos[i][k] = iq
		}
	}
}

// initTranHistory seeds the charge history from the state x with zero
// charge currents.
func (c *Circuit) initTranHistory(x []float64, ts *tranState) {
	ts.qPrevCap = make([]float64, len(c.cs))
	ts.iPrevCap = make([]float64, len(c.cs))
	ts.qPrevMos = make([][4]float64, len(c.mos))
	ts.iPrevMos = make([][4]float64, len(c.mos))
	for i := range c.cs {
		cp := &c.cs[i]
		ts.qPrevCap[i] = cp.c * (nv(x, cp.a) - nv(x, cp.b))
	}
	for i := range c.mos {
		m := &c.mos[i]
		e := m.dev.Eval(nv(x, m.d), nv(x, m.g), nv(x, m.s), nv(x, m.b))
		ts.qPrevMos[i] = [4]float64{e.Q.Qd, e.Q.Qg, e.Q.Qs, e.Q.Qb}
	}
}

// newton runs damped Newton iteration on the system selected by ctx,
// starting from and updating x in place.
func (c *Circuit) newton(x []float64, ctx *assembleCtx) error {
	n := c.unknowns()
	nNodes := len(c.nodeNames)
	// Newton scratch buffers live on the circuit (one goroutine per
	// circuit), so transient loops do not re-allocate per step.
	if len(c.nwF) != n {
		c.nwF = make([]float64, n)
		c.nwScratch = make([]float64, n)
		c.nwJac = linalg.NewMatrix(n, n)
	}
	f, jac, scratch := c.nwF, c.nwJac, c.nwScratch

	maxIter := c.MaxNewton
	if maxIter <= 0 {
		maxIter = 150
	}
	var lu *linalg.LU
	prevDv := math.Inf(1)
	forceJ := true
	for iter := 0; iter < maxIter; iter++ {
		// Chord Newton: refresh the (expensive, finite-differenced)
		// Jacobian on the first iteration and whenever contraction slows;
		// in between, re-use the factored Jacobian with fresh residuals.
		wantJ := lu == nil || forceJ || prevDv > 0.2
		c.assemble(x, f, jac, ctx, wantJ)
		if wantJ {
			var err error
			lu, err = linalg.NewLU(jac)
			if err != nil {
				return fmt.Errorf("spice: singular Jacobian: %w", err)
			}
		}
		dx := lu.SolvePermuting(f, scratch)

		// Voltage limiting on node entries.
		maxDv := 0.0
		for i := 0; i < nNodes; i++ {
			if dx[i] > vLimit {
				dx[i] = vLimit
			} else if dx[i] < -vLimit {
				dx[i] = -vLimit
			}
			if a := math.Abs(dx[i]); a > maxDv {
				maxDv = a
			}
		}
		for i := range x {
			x[i] -= dx[i]
		}

		maxF := 0.0
		for i := 0; i < nNodes; i++ {
			if a := math.Abs(f[i]); a > maxF {
				maxF = a
			}
		}
		if maxDv < tolV && maxF < tolI {
			return nil
		}
		// A stale Jacobian must still contract; refresh when it stalls.
		forceJ = !wantJ && maxDv > 0.5*prevDv
		prevDv = maxDv
	}
	return ErrNoConvergence
}
