package spice

import (
	"fmt"
	"math"

	"vstat/internal/device"
	"vstat/internal/linalg"
)

// ACResult holds complex node voltages per analysis frequency for a
// unit-magnitude AC excitation.
type ACResult struct {
	c     *Circuit
	Freqs []float64
	// xs[k] is the complex solution vector at Freqs[k].
	xs [][]complex128
}

// V returns the complex node voltage at frequency index k.
func (r *ACResult) V(node, k int) complex128 {
	if node == Gnd {
		return 0
	}
	return r.xs[k][node]
}

// VName returns the complex voltage of a named node at frequency index k.
func (r *ACResult) VName(name string, k int) complex128 {
	idx, ok := r.c.nodeIdx[name]
	if !ok {
		panic(fmt.Sprintf("spice: unknown node %q", name))
	}
	return r.V(idx, k)
}

// MagDB returns 20·log10|V(node)| at frequency index k.
func (r *ACResult) MagDB(node, k int) float64 {
	v := r.V(node, k)
	return 20 * math.Log10(cmplxAbs(v))
}

func cmplxAbs(v complex128) float64 { return math.Hypot(real(v), imag(v)) }

// AC runs small-signal analysis: it linearizes every device at the DC
// operating point (conductances from ∂Id/∂V, capacitances from ∂Q/∂V) and
// solves (G + jωC)·x = b at each frequency, with a unit AC source replacing
// the waveform of the voltage source acSrc. Independent sources other than
// acSrc are AC-shorted (V) or AC-opened (I), as in SPICE.
func (c *Circuit) AC(acSrc int, freqs []float64) (*ACResult, error) {
	op, err := c.OP()
	if err != nil {
		return nil, fmt.Errorf("spice: AC operating point: %w", err)
	}
	n := c.unknowns()
	nNodes := len(c.nodeNames)

	// Real conductance and capacitance matrices from linearization.
	g := linalg.NewMatrix(n, n)
	cm := linalg.NewMatrix(n, n)
	addG := func(row, col int, v float64) {
		if row != Gnd && col != Gnd {
			g.Add(row, col, v)
		}
	}
	addC := func(row, col int, v float64) {
		if row != Gnd && col != Gnd {
			cm.Add(row, col, v)
		}
	}
	for i := 0; i < nNodes; i++ {
		g.Add(i, i, c.Gmin)
	}
	for i := range c.rs {
		r := &c.rs[i]
		addG(r.a, r.a, r.g)
		addG(r.a, r.b, -r.g)
		addG(r.b, r.a, -r.g)
		addG(r.b, r.b, r.g)
	}
	for i := range c.cs {
		cp := &c.cs[i]
		addC(cp.a, cp.a, cp.c)
		addC(cp.a, cp.b, -cp.c)
		addC(cp.b, cp.a, -cp.c)
		addC(cp.b, cp.b, cp.c)
	}
	for i := range c.vs {
		v := &c.vs[i]
		br := nNodes + v.branch
		addG(v.p, br, 1)
		addG(v.n, br, -1)
		addG(br, v.p, 1)
		addG(br, v.n, -1)
	}
	for i := range c.mos {
		m := &c.mos[i]
		term := [4]int{m.d, m.g, m.s, m.b}
		dv := device.EvalDerivs(m.dev,
			op.V(m.d), op.V(m.g), op.V(m.s), op.V(m.b))
		for j := 0; j < 4; j++ {
			addG(m.d, term[j], dv.GId[j])
			addG(m.s, term[j], -dv.GId[j])
			for k := 0; k < 4; k++ {
				addC(term[k], term[j], dv.CQ[k][j])
			}
		}
	}

	// RHS: unit excitation on the chosen source's branch row.
	b := make([]complex128, n)
	b[nNodes+c.vs[acSrc].branch] = 1

	res := &ACResult{c: c, Freqs: freqs}
	a := linalg.NewCMatrix(n, n)
	for _, f := range freqs {
		w := 2 * math.Pi * f
		for i := 0; i < n; i++ {
			gr := g.Row(i)
			cr := cm.Row(i)
			ar := a.Row(i)
			for j := 0; j < n; j++ {
				ar[j] = complex(gr[j], w*cr[j])
			}
		}
		x, err := linalg.SolveCLinear(a, b)
		if err != nil {
			return nil, fmt.Errorf("spice: AC solve at %g Hz: %w", f, err)
		}
		res.xs = append(res.xs, x)
	}
	return res, nil
}

// LogSpace returns n log-spaced frequencies from f0 to f1 inclusive.
func LogSpace(f0, f1 float64, n int) []float64 {
	if n < 2 {
		return []float64{f0}
	}
	out := make([]float64, n)
	l0, l1 := math.Log10(f0), math.Log10(f1)
	for i := range out {
		out[i] = math.Pow(10, l0+(l1-l0)*float64(i)/float64(n-1))
	}
	return out
}
