package ssta

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vstat/internal/stats"
)

func TestChainGaussianSums(t *testing.T) {
	// A pure chain has no MAX: arrival is the exact sum of Gaussians.
	g, _, sink := Chain(10, Gaussian{Mu: 5e-12, Sigma: 0.5e-12})
	arr, err := g.PropagateGaussian()
	if err != nil {
		t.Fatal(err)
	}
	a := arr[sink]
	if math.Abs(a.Mu-50e-12) > 1e-18 {
		t.Fatalf("chain mean %g", a.Mu)
	}
	want := 0.5e-12 * math.Sqrt(10)
	if math.Abs(a.Sigma-want) > 1e-18 {
		t.Fatalf("chain sigma %g want %g", a.Sigma, want)
	}
}

func TestChainMCMatchesGaussian(t *testing.T) {
	d := Gaussian{Mu: 5e-12, Sigma: 0.5e-12}
	g, _, sink := Chain(8, d)
	arr, _ := g.PropagateGaussian()
	mc, err := g.PropagateMC([]NodeID{sink}, 20000, 3)
	if err != nil {
		t.Fatal(err)
	}
	mu := stats.Mean(mc[sink])
	sd := stats.StdDev(mc[sink])
	if math.Abs(mu-arr[sink].Mu) > 3*sd/math.Sqrt(20000) {
		t.Fatalf("MC mean %g vs analytic %g", mu, arr[sink].Mu)
	}
	if math.Abs(sd-arr[sink].Sigma)/arr[sink].Sigma > 0.03 {
		t.Fatalf("MC sigma %g vs analytic %g", sd, arr[sink].Sigma)
	}
}

// Property: Clark's max matches Monte Carlo for independent Gaussians.
func TestClarkMaxProperty(t *testing.T) {
	f := func(s1, s2 uint8, dm int8) bool {
		x := ArrivalGauss{Mu: 0, Sigma: 0.1 + float64(s1)/256}
		y := ArrivalGauss{Mu: float64(dm) / 64, Sigma: 0.1 + float64(s2)/256}
		c := clarkMax(x, y)
		rng := rand.New(rand.NewSource(int64(s1)*7 + int64(s2)*13 + int64(dm)))
		n := 40000
		var sum, sum2 float64
		for i := 0; i < n; i++ {
			v := math.Max(x.Mu+x.Sigma*rng.NormFloat64(), y.Mu+y.Sigma*rng.NormFloat64())
			sum += v
			sum2 += v * v
		}
		mu := sum / float64(n)
		sd := math.Sqrt(sum2/float64(n) - mu*mu)
		// Clark is exact for the first two moments of the max of two
		// Gaussians; tolerance covers MC noise only.
		return math.Abs(mu-c.Mu) < 0.02 && math.Abs(sd-c.Sigma) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestClarkMaxDegenerate(t *testing.T) {
	c := clarkMax(ArrivalGauss{Mu: 3}, ArrivalGauss{Mu: 5})
	if c.Mu != 5 || c.Sigma != 0 {
		t.Fatalf("deterministic max: %+v", c)
	}
}

func TestBalancedTreeMaxRaisesMean(t *testing.T) {
	// With many parallel equal paths, the expected max exceeds a single
	// path's mean — the MAX penalty SSTA exists to capture.
	d := Gaussian{Mu: 5e-12, Sigma: 0.8e-12}
	g, sink := Balanced(3, d) // 8 parallel 3-stage paths + sink edge
	arr, err := g.PropagateGaussian()
	if err != nil {
		t.Fatal(err)
	}
	singlePath := 4 * 5e-12
	if arr[sink].Mu <= singlePath {
		t.Fatalf("tree mean %g not above single path %g", arr[sink].Mu, singlePath)
	}
	// MC agrees on the mean within a few percent (Clark is approximate
	// under reconvergence, but close for balanced trees).
	mc, err := g.PropagateMC([]NodeID{sink}, 8000, 5)
	if err != nil {
		t.Fatal(err)
	}
	mu := stats.Mean(mc[sink])
	if math.Abs(mu-arr[sink].Mu)/mu > 0.04 {
		t.Fatalf("tree MC mean %g vs Clark %g", mu, arr[sink].Mu)
	}
}

func TestEmpiricalDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	samples := make([]float64, 5000)
	for i := range samples {
		samples[i] = 10 + rng.ExpFloat64() // skewed
	}
	e := NewEmpirical(samples)
	mu, sd := e.MeanSigma()
	if math.Abs(mu-stats.Mean(samples)) > 1e-12 || math.Abs(sd-stats.StdDev(samples)) > 1e-12 {
		t.Fatal("empirical summary")
	}
	// Bootstrap preserves the skew that a Gaussian summary loses.
	g, _, sink := Chain(1, e)
	mc, err := g.PropagateMC([]NodeID{sink}, 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sk := stats.Skewness(mc[sink]); sk < 1 {
		t.Fatalf("bootstrap lost skew: %g", sk)
	}
	// Lazy-init path of MeanSigma.
	lazy := &Empirical{Samples: samples}
	lm, _ := lazy.MeanSigma()
	if math.Abs(lm-mu) > 1e-12 {
		t.Fatal("lazy init")
	}
}

func TestCycleDetection(t *testing.T) {
	g := New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	g.AddEdge(a, b, Gaussian{Mu: 1})
	g.AddEdge(b, a, Gaussian{Mu: 1})
	if _, err := g.PropagateGaussian(); err != ErrCycle {
		t.Fatalf("want ErrCycle, got %v", err)
	}
	if _, err := g.PropagateMC([]NodeID{a}, 10, 1); err != ErrCycle {
		t.Fatalf("want ErrCycle, got %v", err)
	}
}

// The paper's point, end to end: with skewed per-gate delays the Gaussian
// SSTA underestimates the high quantiles that MC sees.
func TestGaussianSSTAUnderestimatesSkewedTail(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	samples := make([]float64, 4000)
	for i := range samples {
		// Lognormal-ish gate delay, like NAND2 at 0.55 V.
		samples[i] = 10e-12 * math.Exp(0.35*rng.NormFloat64())
	}
	e := NewEmpirical(samples)
	g, _, sink := Chain(6, e)
	arr, _ := g.PropagateGaussian()
	mc, err := g.PropagateMC([]NodeID{sink}, 30000, 9)
	if err != nil {
		t.Fatal(err)
	}
	q999MC := stats.Quantile(mc[sink], 0.999)
	q999G := arr[sink].Mu + 3.090*arr[sink].Sigma
	if q999MC <= q999G {
		t.Fatalf("expected MC 99.9%% tail %g above Gaussian prediction %g", q999MC, q999G)
	}
}
