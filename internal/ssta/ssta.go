// Package ssta implements a small block-based statistical static timing
// analyzer over a gate-level timing graph, in two modes:
//
//   - Gaussian (first-order canonical) propagation with Clark's MAX
//     approximation — the classic SSTA the paper's reference [14] builds on;
//   - Monte Carlo propagation that resamples the true per-gate delay
//     populations.
//
// The pair quantifies the paper's low-power observation: when gate delays
// turn non-Gaussian at low Vdd (paper Fig. 7), Gaussian SSTA loses tail
// accuracy even though each underlying process parameter is an independent
// Gaussian. Within-die random mismatch makes gate delays independent, which
// is the regime this analyzer targets (reconvergent-fanout correlation is
// deliberately out of scope and documented as such).
package ssta

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"vstat/internal/stats"
)

// DelayDist is an edge delay model.
type DelayDist interface {
	// MeanSigma returns the Gaussian summary used by analytic SSTA.
	MeanSigma() (mu, sigma float64)
	// Sample draws one delay realization for Monte Carlo SSTA.
	Sample(rng *rand.Rand) float64
}

// Gaussian is an analytic normal delay.
type Gaussian struct {
	Mu, Sigma float64
}

// MeanSigma returns the parameters.
func (g Gaussian) MeanSigma() (float64, float64) { return g.Mu, g.Sigma }

// Sample draws from N(Mu, Sigma²).
func (g Gaussian) Sample(rng *rand.Rand) float64 { return g.Mu + g.Sigma*rng.NormFloat64() }

// Empirical wraps a measured delay population (e.g. circuit Monte Carlo
// samples); Sample bootstraps from it, preserving non-Gaussian shape.
type Empirical struct {
	Samples []float64
	mu, sd  float64
	init    bool
}

// NewEmpirical precomputes the Gaussian summary.
func NewEmpirical(samples []float64) *Empirical {
	return &Empirical{
		Samples: samples,
		mu:      stats.Mean(samples),
		sd:      stats.StdDev(samples),
		init:    true,
	}
}

// MeanSigma returns the sample mean and standard deviation.
func (e *Empirical) MeanSigma() (float64, float64) {
	if !e.init {
		e.mu, e.sd = stats.Mean(e.Samples), stats.StdDev(e.Samples)
		e.init = true
	}
	return e.mu, e.sd
}

// Sample bootstraps one delay.
func (e *Empirical) Sample(rng *rand.Rand) float64 {
	return e.Samples[rng.Intn(len(e.Samples))]
}

// NodeID identifies a timing node.
type NodeID int

type edge struct {
	from, to NodeID
	d        DelayDist
}

// Graph is a timing DAG: arrival time at a node is the max over incoming
// (arrival(from) + edge delay); nodes without incoming edges arrive at 0.
type Graph struct {
	names []string
	edges []edge
	in    map[NodeID][]int // incoming edge indices per node
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{in: map[NodeID][]int{}}
}

// AddNode creates a named timing node.
func (g *Graph) AddNode(name string) NodeID {
	g.names = append(g.names, name)
	return NodeID(len(g.names) - 1)
}

// AddEdge adds a timing arc with the given delay distribution.
func (g *Graph) AddEdge(from, to NodeID, d DelayDist) {
	idx := len(g.edges)
	g.edges = append(g.edges, edge{from: from, to: to, d: d})
	g.in[to] = append(g.in[to], idx)
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.names) }

// ErrCycle is returned when the graph is not a DAG.
var ErrCycle = errors.New("ssta: timing graph has a cycle")

// topo returns a topological order of the nodes.
func (g *Graph) topo() ([]NodeID, error) {
	n := len(g.names)
	indeg := make([]int, n)
	out := map[NodeID][]NodeID{}
	for _, e := range g.edges {
		indeg[e.to]++
		out[e.from] = append(out[e.from], e.to)
	}
	var queue []NodeID
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, NodeID(i))
		}
	}
	var order []NodeID
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, w := range out[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCycle
	}
	return order, nil
}

// ArrivalGauss is the Gaussian arrival-time summary at a node.
type ArrivalGauss struct {
	Mu, Sigma float64
}

// PropagateGaussian runs first-order Gaussian SSTA: arrival distributions
// are kept normal, sums add means/variances (independent edges), and max is
// Clark's approximation with zero correlation.
func (g *Graph) PropagateGaussian() (map[NodeID]ArrivalGauss, error) {
	order, err := g.topo()
	if err != nil {
		return nil, err
	}
	arr := make(map[NodeID]ArrivalGauss, len(order))
	for _, v := range order {
		ins := g.in[v]
		if len(ins) == 0 {
			arr[v] = ArrivalGauss{}
			continue
		}
		var acc ArrivalGauss
		for k, ei := range ins {
			e := g.edges[ei]
			mu, sd := e.d.MeanSigma()
			a := arr[e.from]
			cand := ArrivalGauss{Mu: a.Mu + mu, Sigma: math.Hypot(a.Sigma, sd)}
			if k == 0 {
				acc = cand
			} else {
				acc = clarkMax(acc, cand)
			}
		}
		arr[v] = acc
	}
	return arr, nil
}

// clarkMax approximates max(X, Y) of independent Gaussians as a Gaussian
// via Clark's moment formulas (1961).
func clarkMax(x, y ArrivalGauss) ArrivalGauss {
	theta := math.Hypot(x.Sigma, y.Sigma)
	if theta == 0 {
		return ArrivalGauss{Mu: math.Max(x.Mu, y.Mu)}
	}
	alpha := (x.Mu - y.Mu) / theta
	phi := stats.NormalPDF(alpha, 0, 1)
	cdfA := stats.NormalCDF(alpha, 0, 1)
	cdfB := 1 - cdfA
	m := x.Mu*cdfA + y.Mu*cdfB + theta*phi
	m2 := (x.Mu*x.Mu+x.Sigma*x.Sigma)*cdfA +
		(y.Mu*y.Mu+y.Sigma*y.Sigma)*cdfB +
		(x.Mu+y.Mu)*theta*phi
	v := m2 - m*m
	if v < 0 {
		v = 0
	}
	return ArrivalGauss{Mu: m, Sigma: math.Sqrt(v)}
}

// PropagateMC Monte Carlos the graph: every trial draws one realization per
// edge (independent within-die mismatch) and computes exact max/plus
// arrival times. It returns the sampled arrival population per node of
// interest.
func (g *Graph) PropagateMC(sinks []NodeID, n int, seed int64) (map[NodeID][]float64, error) {
	order, err := g.topo()
	if err != nil {
		return nil, err
	}
	out := make(map[NodeID][]float64, len(sinks))
	for _, s := range sinks {
		out[s] = make([]float64, n)
	}
	arr := make([]float64, len(g.names))
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < n; trial++ {
		for _, v := range order {
			ins := g.in[v]
			if len(ins) == 0 {
				arr[v] = 0
				continue
			}
			best := math.Inf(-1)
			for _, ei := range ins {
				e := g.edges[ei]
				if t := arr[e.from] + e.d.Sample(rng); t > best {
					best = t
				}
			}
			arr[v] = best
		}
		for _, s := range sinks {
			out[s][trial] = arr[s]
		}
	}
	return out, nil
}

// Chain builds a linear pipeline of n stages sharing a delay distribution
// and returns the graph with its source and sink.
func Chain(n int, d DelayDist) (*Graph, NodeID, NodeID) {
	g := New()
	src := g.AddNode("src")
	prev := src
	for i := 0; i < n; i++ {
		v := g.AddNode(fmt.Sprintf("s%d", i))
		g.AddEdge(prev, v, d)
		prev = v
	}
	return g, src, prev
}

// Balanced builds a complete binary reconvergence tree of the given depth
// feeding a single sink (2^depth parallel paths of `depth` stages), the
// worst case for MAX-dominated statistics.
func Balanced(depth int, d DelayDist) (*Graph, NodeID) {
	g := New()
	src := g.AddNode("src")
	leaves := []NodeID{src}
	for level := 0; level < depth; level++ {
		var next []NodeID
		for i, v := range leaves {
			a := g.AddNode(fmt.Sprintf("l%d.%da", level, i))
			b := g.AddNode(fmt.Sprintf("l%d.%db", level, i))
			g.AddEdge(v, a, d)
			g.AddEdge(v, b, d)
			next = append(next, a, b)
		}
		leaves = next
	}
	sink := g.AddNode("sink")
	for _, v := range leaves {
		g.AddEdge(v, sink, d)
	}
	return g, sink
}
