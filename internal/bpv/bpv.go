// Package bpv implements the Backward Propagation of Variance statistical
// extraction of the paper (Sec. III, Eqs. (8)–(10)): measured variances of
// the electrical targets e_i ∈ {Idsat, log10 Ioff, Cgg@Vdd} over several
// transistor geometries are mapped onto the squared mismatch coefficients
// α² of the independent VS statistical parameters through the sensitivity
// matrix of the *nominal* VS model.
//
// Paper-faithful details implemented here:
//
//   - the e_i targets are chosen to stay Gaussian (Idsat, log10 of Ioff,
//     Cgg at Vdd);
//   - σ_Cinv (α5) is measured directly rather than extracted, because the
//     thermally grown oxide is tightly controlled (σ < 0.5 %) and BPV tends
//     to overestimate such parameters; its contribution is subtracted from
//     the measured variances before the solve (the LHS of Eq. (10));
//   - the LER constraint α2 = α3 (σL/σW = L/W) removes one unknown;
//   - vxo is *not* an independent parameter: its variation enters through
//     the Δµ and Δδ(Leff) couplings of Eq. (5), which the sensitivities
//     pick up automatically because they are computed through the model's
//     ApplyDeltas mapping;
//   - the system is solved either per geometry (exact 3×3) or jointly over
//     all geometries (stacked non-negative least squares), the comparison
//     the paper reports in Fig. 2.
package bpv

import (
	"errors"
	"fmt"
	"math"

	"vstat/internal/device"
	"vstat/internal/linalg"
	"vstat/internal/variation"
	"vstat/internal/vsmodel"
)

// Targets evaluates the three electrical extraction targets at supply Vdd.
type Targets struct {
	Vdd float64
}

// Eval returns Idsat (A), log10(Ioff/A) and Cgg (F) for the device, using
// polarity-appropriate bias.
func (t Targets) Eval(d device.Device) (idsat, log10Ioff, cgg float64) {
	v := t.Vdd
	switch d.Kind() {
	case device.PMOS:
		idsat = -d.Eval(0, 0, v, v).Id
		ioff := -d.Eval(0, v, v, v).Id
		log10Ioff = safeLog10(ioff)
		cgg = device.Cgg(d, v, 0, v, v)
	default:
		idsat = d.Eval(v, v, 0, 0).Id
		ioff := d.Eval(v, 0, 0, 0).Id
		log10Ioff = safeLog10(ioff)
		cgg = device.Cgg(d, 0, v, 0, 0)
	}
	return idsat, log10Ioff, cgg
}

// EvalVec returns the three targets as a slice in the canonical order
// (Idsat, log10Ioff, Cgg).
func (t Targets) EvalVec(d device.Device) []float64 {
	a, b, c := t.Eval(d)
	return []float64{a, b, c}
}

func safeLog10(x float64) float64 {
	if x <= 0 {
		return -30 // well below any physical off-current; keeps MC samples finite
	}
	return math.Log10(x)
}

// Sensitivities holds ∂e_i/∂p_j of the nominal VS model at one geometry,
// with i ∈ {Idsat, log10Ioff, Cgg} and j ∈ {VT0, L, W, µ, Cinv} (SI units).
type Sensitivities struct {
	W, L float64
	// D[i][j], rows: Idsat, log10Ioff, Cgg; cols: VT0, L, W, Mu, Cinv.
	D [3][5]float64
}

// paramSteps are the central-difference steps for each VS statistical
// parameter, chosen small against each parameter's scale but large against
// solver noise.
type paramSteps struct {
	vt0, l, w, mu, cinv float64
}

func stepsFor(card vsmodel.Params) paramSteps {
	return paramSteps{
		vt0:  1e-3,            // 1 mV
		l:    0.05e-9,         // 0.05 nm
		w:    0.5e-9,          // 0.5 nm
		mu:   0.005 * card.Mu, // 0.5 %
		cinv: 0.005 * card.Cinv,
	}
}

// SensitivitiesAt computes the FD sensitivity matrix of the nominal card at
// geometry (w, l). The derivatives are taken through ApplyDeltas, so the
// vxo responses to Δµ and ΔLeff (paper Eq. 5) are folded into the µ and L
// columns, as the paper requires for the independence of the p_j.
func SensitivitiesAt(card vsmodel.Params, k device.Kind, w, l float64, tg Targets) Sensitivities {
	card.TypeK = k
	base := card.WithGeometry(w, l)
	st := stepsFor(base)
	out := Sensitivities{W: w, L: l}

	deltaFor := func(j int, h float64) device.Deltas {
		var d device.Deltas
		switch j {
		case 0:
			d.DVT0 = h
		case 1:
			d.DL = h
		case 2:
			d.DW = h
		case 3:
			d.DMu = h
		case 4:
			d.DCinv = h
		}
		return d
	}
	steps := []float64{st.vt0, st.l, st.w, st.mu, st.cinv}
	for j := 0; j < 5; j++ {
		h := steps[j]
		pp := base.ApplyDeltas(deltaFor(j, h))
		pm := base.ApplyDeltas(deltaFor(j, -h))
		ep := tg.EvalVec(&pp)
		em := tg.EvalVec(&pm)
		for i := 0; i < 3; i++ {
			out.D[i][j] = (ep[i] - em[i]) / (2 * h)
		}
	}
	return out
}

// GeometryVariance is one row of measured (Monte Carlo or silicon)
// statistics: the standard deviations of the three targets at a geometry.
type GeometryVariance struct {
	W, L                               float64
	SigmaIdsat, SigmaLogIoff, SigmaCgg float64
}

// Extraction configures a BPV run.
type Extraction struct {
	Card   vsmodel.Params // nominal VS card (geometry retargeted internally)
	Kind   device.Kind
	Vdd    float64
	Alpha5 float64 // directly measured σ_Cinv coefficient (SI, m·F/m²)
}

// ErrInsufficientData is returned when no geometry rows are supplied.
var ErrInsufficientData = errors.New("bpv: no geometry variance data")

// lhsAndRows builds, for one geometry, the Cinv-corrected LHS (Eq. 10 left
// side) and the coefficient rows over the unknowns [α1², α2²(=α3²), α4²].
func (e *Extraction) lhsAndRows(g GeometryVariance) (lhs [3]float64, rows [3][3]float64) {
	s := SensitivitiesAt(e.Card, e.Kind, g.W, g.L, Targets{Vdd: e.Vdd})
	sigmaCinv := e.Alpha5 / math.Sqrt(g.W*g.L)
	meas := [3]float64{g.SigmaIdsat, g.SigmaLogIoff, g.SigmaCgg}
	wl := g.W * g.L
	fL := g.L / g.W
	fW := g.W / g.L
	for i := 0; i < 3; i++ {
		lhs[i] = meas[i]*meas[i] - s.D[i][4]*s.D[i][4]*sigmaCinv*sigmaCinv
		if lhs[i] < 0 {
			lhs[i] = 0 // Cinv correction cannot exceed the measured variance
		}
		rows[i] = [3]float64{
			s.D[i][0] * s.D[i][0] / wl,
			s.D[i][1]*s.D[i][1]*fL + s.D[i][2]*s.D[i][2]*fW, // α2=α3 merge
			s.D[i][3] * s.D[i][3] / wl,
		}
	}
	return lhs, rows
}

// scaleColumns normalizes each column of the stacked system to unit norm to
// balance the wildly different magnitudes of V², m² and (m²/Vs)² entries;
// the solution is rescaled afterwards.
func scaleColumns(a *linalg.Matrix) []float64 {
	scales := make([]float64, a.Cols)
	for j := 0; j < a.Cols; j++ {
		s := 0.0
		for i := 0; i < a.Rows; i++ {
			s += a.At(i, j) * a.At(i, j)
		}
		s = math.Sqrt(s)
		if s == 0 {
			s = 1
		}
		scales[j] = s
		for i := 0; i < a.Rows; i++ {
			a.Set(i, j, a.At(i, j)/s)
		}
	}
	return scales
}

// solve runs NNLS on the stacked system and converts α² to Alphas.
func (e *Extraction) solve(lhs []float64, rows [][3]float64) (variation.Alphas, error) {
	m := len(rows)
	a := linalg.NewMatrix(m, 3)
	for i, r := range rows {
		a.Set(i, 0, r[0])
		a.Set(i, 1, r[1])
		a.Set(i, 2, r[2])
	}
	// Row scaling: normalize each equation by its LHS magnitude so Idsat
	// (A²) and log10Ioff (dimensionless) rows weigh comparably.
	for i := 0; i < m; i++ {
		s := lhs[i]
		if s <= 0 {
			s = a.Row(i)[0] + a.Row(i)[1] + a.Row(i)[2]
			if s == 0 {
				s = 1
			}
		}
		inv := 1 / s
		for j := 0; j < 3; j++ {
			a.Set(i, j, a.At(i, j)*inv)
		}
		lhs[i] *= inv
	}
	colScale := scaleColumns(a)
	x, err := linalg.NNLS(a, lhs)
	if err != nil {
		return variation.Alphas{}, fmt.Errorf("bpv: NNLS: %w", err)
	}
	for j := range x {
		x[j] /= colScale[j]
	}
	al := variation.Alphas{
		A1: math.Sqrt(math.Max(x[0], 0)),
		A2: math.Sqrt(math.Max(x[1], 0)),
		A4: math.Sqrt(math.Max(x[2], 0)),
		A5: e.Alpha5,
	}
	al.A3 = al.A2
	return al, nil
}

// SolveJoint stacks all geometries and solves the constrained system by
// non-negative least squares — the "solved together" mode the paper
// recommends for consistent, scalable coefficients.
func (e *Extraction) SolveJoint(data []GeometryVariance) (variation.Alphas, error) {
	if len(data) == 0 {
		return variation.Alphas{}, ErrInsufficientData
	}
	var lhs []float64
	var rows [][3]float64
	for _, g := range data {
		l, r := e.lhsAndRows(g)
		for i := 0; i < 3; i++ {
			lhs = append(lhs, l[i])
			rows = append(rows, r[i])
		}
	}
	return e.solve(lhs, rows)
}

// SolveJointUnconstrained drops the α2=α3 LER constraint and solves for
// four independent coefficients. This is the ablation of the paper's
// σL/σW = L/W assumption: with W-dominated geometries the L column is
// poorly excited and the split becomes ill-conditioned, which is why the
// paper ties the two.
func (e *Extraction) SolveJointUnconstrained(data []GeometryVariance) (variation.Alphas, error) {
	if len(data) == 0 {
		return variation.Alphas{}, ErrInsufficientData
	}
	m := 3 * len(data)
	a := linalg.NewMatrix(m, 4)
	lhs := make([]float64, 0, m)
	row := 0
	for _, g := range data {
		s := SensitivitiesAt(e.Card, e.Kind, g.W, g.L, Targets{Vdd: e.Vdd})
		sigmaCinv := e.Alpha5 / math.Sqrt(g.W*g.L)
		meas := [3]float64{g.SigmaIdsat, g.SigmaLogIoff, g.SigmaCgg}
		wl := g.W * g.L
		for i := 0; i < 3; i++ {
			l := meas[i]*meas[i] - s.D[i][4]*s.D[i][4]*sigmaCinv*sigmaCinv
			if l < 0 {
				l = 0
			}
			a.Set(row, 0, s.D[i][0]*s.D[i][0]/wl)
			a.Set(row, 1, s.D[i][1]*s.D[i][1]*g.L/g.W)
			a.Set(row, 2, s.D[i][2]*s.D[i][2]*g.W/g.L)
			a.Set(row, 3, s.D[i][3]*s.D[i][3]/wl)
			// Row scaling as in solve().
			sc := l
			if sc <= 0 {
				sc = a.Row(row)[0] + a.Row(row)[1] + a.Row(row)[2] + a.Row(row)[3]
				if sc == 0 {
					sc = 1
				}
			}
			inv := 1 / sc
			for j := 0; j < 4; j++ {
				a.Set(row, j, a.At(row, j)*inv)
			}
			lhs = append(lhs, l*inv)
			row++
		}
	}
	colScale := scaleColumns(a)
	x, err := linalg.NNLS(a, lhs)
	if err != nil {
		return variation.Alphas{}, fmt.Errorf("bpv: NNLS: %w", err)
	}
	for j := range x {
		x[j] /= colScale[j]
	}
	return variation.Alphas{
		A1: math.Sqrt(math.Max(x[0], 0)),
		A2: math.Sqrt(math.Max(x[1], 0)),
		A3: math.Sqrt(math.Max(x[2], 0)),
		A4: math.Sqrt(math.Max(x[3], 0)),
		A5: e.Alpha5,
	}, nil
}

// SolveIndividual solves the 3×3 system of a single geometry — the
// "solved separately" mode of paper Fig. 2.
func (e *Extraction) SolveIndividual(g GeometryVariance) (variation.Alphas, error) {
	l, r := e.lhsAndRows(g)
	return e.solve(l[:], [][3]float64{r[0], r[1], r[2]})
}

// PredictSigmas forward-propagates a coefficient set through the nominal
// sensitivities at one geometry, returning the predicted σ of the three
// targets (the consistency check behind paper Fig. 3 and Table III).
func (e *Extraction) PredictSigmas(al variation.Alphas, w, l float64) (sIdsat, sLogIoff, sCgg float64) {
	s := SensitivitiesAt(e.Card, e.Kind, w, l, Targets{Vdd: e.Vdd})
	sg := al.Sigmas(w, l)
	sig := [5]float64{sg.VT0, sg.L, sg.W, sg.Mu, sg.Cinv}
	var out [3]float64
	for i := 0; i < 3; i++ {
		v := 0.0
		for j := 0; j < 5; j++ {
			t := s.D[i][j] * sig[j]
			v += t * t
		}
		out[i] = math.Sqrt(v)
	}
	return out[0], out[1], out[2]
}
