package bpv

import (
	"math"
	"testing"

	"vstat/internal/device"
	"vstat/internal/variation"
	"vstat/internal/vsmodel"
)

// Ablation (DESIGN.md §5): the α2=α3 constraint. On exact synthetic data
// the unconstrained solve must agree with the constrained one; its value is
// robustness, which the constrained solve provides on noisy data.
func TestUnconstrainedMatchesOnExactData(t *testing.T) {
	truth := variation.FromPaperUnits(2.3, 3.71, 3.71, 944, 0.29)
	ex := &Extraction{Card: vsmodel.NMOS40(1e-6), Kind: device.NMOS, Vdd: 0.9, Alpha5: truth.A5}
	var data []GeometryVariance
	for _, g := range standardGeometries() {
		s1, s2, s3 := ex.PredictSigmas(truth, g[0], g[1])
		data = append(data, GeometryVariance{W: g[0], L: g[1], SigmaIdsat: s1, SigmaLogIoff: s2, SigmaCgg: s3})
	}
	got, err := ex.SolveJointUnconstrained(data)
	if err != nil {
		t.Fatal(err)
	}
	g1, g2, g3, g4, _ := got.PaperUnits()
	w1, w2, w3, w4, _ := truth.PaperUnits()
	// α1 and α3 (the W term, well excited by the width sweep) recover
	// tightly; α2 (the L term) is weakly excited — that ill-conditioning is
	// exactly why the paper imposes α2=α3.
	if math.Abs(g1-w1)/w1 > 0.05 {
		t.Fatalf("α1 %g want %g", g1, w1)
	}
	if math.Abs(g3-w3)/w3 > 0.15 {
		t.Fatalf("α3 %g want %g", g3, w3)
	}
	if math.Abs(g4-w4)/w4 > 0.25 {
		t.Fatalf("α4 %g want %g", g4, w4)
	}
	// α2 may wander; record rather than assert tightly, but it must not
	// explode past physical bounds.
	if g2 < 0 || g2 > 4*w2 {
		t.Fatalf("α2 %g diverged (truth %g)", g2, w2)
	}
}

// Ablation: the vxo coupling of paper Eq. (5). Freezing it must weaken the
// Idsat sensitivities to µ and L — the reason the paper does NOT treat vxo
// as an independent statistical parameter.
func TestVxoCouplingAblation(t *testing.T) {
	card := vsmodel.NMOS40(1e-6)
	frozen := card
	frozen.AlphaVel = 0
	frozen.GammaVel = -1 // makes MuVeloCoupling = (1-B)(1-0-1)+0 = 0
	frozen.SDelta = 0

	if c := frozen.MuVeloCoupling(); math.Abs(c) > 1e-12 {
		t.Fatalf("frozen coupling = %g, want 0", c)
	}

	tg := Targets{Vdd: 0.9}
	full := SensitivitiesAt(card, device.NMOS, 600e-9, 40e-9, tg)
	froz := SensitivitiesAt(frozen, device.NMOS, 600e-9, 40e-9, tg)

	// µ column: with coupling, Δµ also raises vxo, so |∂Idsat/∂µ| is larger.
	if math.Abs(full.D[0][3]) <= math.Abs(froz.D[0][3]) {
		t.Fatalf("µ sensitivity with coupling %g not above frozen %g",
			full.D[0][3], froz.D[0][3])
	}
	// L column: with coupling, ΔL moves vxo through δ(L); magnitude grows.
	if math.Abs(full.D[0][1]) <= math.Abs(froz.D[0][1]) {
		t.Fatalf("L sensitivity with coupling %g not above frozen %g",
			full.D[0][1], froz.D[0][1])
	}
	// The coupling contribution is first-order, not a rounding artifact.
	if r := math.Abs(full.D[0][3]) / math.Abs(froz.D[0][3]); r < 1.2 {
		t.Fatalf("coupling boost only %gx", r)
	}
}

func TestUnconstrainedNoData(t *testing.T) {
	ex := &Extraction{Card: vsmodel.NMOS40(1e-6), Kind: device.NMOS, Vdd: 0.9}
	if _, err := ex.SolveJointUnconstrained(nil); err != ErrInsufficientData {
		t.Fatalf("want ErrInsufficientData, got %v", err)
	}
}
