package bpv

import (
	"math"
	"math/rand"
	"testing"

	"vstat/internal/device"
	"vstat/internal/montecarlo"
	"vstat/internal/stats"
	"vstat/internal/variation"
	"vstat/internal/vsmodel"
)

const vddT = 0.9

// standardGeometries mirrors the paper's extraction set: several widths at
// L=40 nm plus one longer-channel point.
func standardGeometries() [][2]float64 {
	return [][2]float64{
		{120e-9, 40e-9},
		{300e-9, 40e-9},
		{600e-9, 40e-9},
		{1000e-9, 40e-9},
		{1500e-9, 40e-9},
		{600e-9, 60e-9},
	}
}

func TestTargetsNominalValues(t *testing.T) {
	n := vsmodel.NMOS40(600e-9)
	tg := Targets{Vdd: vddT}
	idsat, logIoff, cgg := tg.Eval(&n)
	if idsat < 200e-6 || idsat > 800e-6 {
		t.Fatalf("Idsat %g implausible for W=600nm", idsat)
	}
	if logIoff > -6 || logIoff < -10 {
		t.Fatalf("log10Ioff %g implausible", logIoff)
	}
	if cgg < 1e-16 || cgg > 1e-14 {
		t.Fatalf("Cgg %g implausible", cgg)
	}
	p := vsmodel.PMOS40(600e-9)
	idsatP, logIoffP, cggP := tg.Eval(&p)
	if idsatP <= 0 || idsatP >= idsat {
		t.Fatalf("PMOS Idsat %g should be positive and below NMOS %g", idsatP, idsat)
	}
	if logIoffP > -6 || cggP <= 0 {
		t.Fatalf("PMOS targets: %g %g", logIoffP, cggP)
	}
}

func TestSafeLog10(t *testing.T) {
	if safeLog10(1e-8) != -8 {
		t.Fatal("log10")
	}
	if safeLog10(0) != -30 || safeLog10(-1) != -30 {
		t.Fatal("guard")
	}
}

func TestSensitivitySigns(t *testing.T) {
	s := SensitivitiesAt(vsmodel.NMOS40(1e-6), device.NMOS, 600e-9, 40e-9, Targets{Vdd: vddT})
	// Raising VT0 cuts Idsat and Ioff.
	if s.D[0][0] >= 0 {
		t.Fatalf("dIdsat/dVT0 = %g, want < 0", s.D[0][0])
	}
	if s.D[1][0] >= 0 {
		t.Fatalf("dlogIoff/dVT0 = %g, want < 0", s.D[1][0])
	}
	// Wider device drives more and holds more charge.
	if s.D[0][2] <= 0 || s.D[2][2] <= 0 {
		t.Fatalf("width sensitivities: %g %g", s.D[0][2], s.D[2][2])
	}
	// Higher mobility raises Idsat (via vxo coupling too).
	if s.D[0][3] <= 0 {
		t.Fatalf("dIdsat/dµ = %g", s.D[0][3])
	}
	// Higher Cinv raises Cgg.
	if s.D[2][4] <= 0 {
		t.Fatalf("dCgg/dCinv = %g", s.D[2][4])
	}
	// Longer channel: smaller DIBL → lower Ioff.
	if s.D[1][1] >= 0 {
		t.Fatalf("dlogIoff/dL = %g, want < 0", s.D[1][1])
	}
}

func TestVxoCouplingInsideSensitivities(t *testing.T) {
	// The µ column must exceed the "frozen-vxo" sensitivity because Δµ also
	// raises vxo (paper Eq. 5). Compare against a card with zero coupling.
	card := vsmodel.NMOS40(1e-6)
	tg := Targets{Vdd: vddT}
	sFull := SensitivitiesAt(card, device.NMOS, 600e-9, 40e-9, tg)
	noCouple := card
	noCouple.AlphaVel, noCouple.GammaVel = 0, 0
	noCouple.LambdaMFP = 1e-30 // B → 0, coupling = alphaVel + (1)(1-0+0) = 1? force via SDelta too
	// zero out both coupling channels
	noCouple.SDelta = 0
	// with AlphaVel=0, GammaVel=0 and B→0 the µ factor is 1·Δµ/µ... so
	// instead set the factor explicitly by comparing against analytic.
	_ = noCouple
	cpl := card.MuVeloCoupling()
	if cpl <= 1 {
		t.Fatalf("µ→vxo coupling factor %g should exceed 1 for B<1", cpl)
	}
	// Analytic cross-check: relative Idsat sensitivity to µ should be
	// roughly (1+cpl-1)=cpl× stronger than charge-only scaling suggests.
	if sFull.D[0][3] <= 0 {
		t.Fatal("µ sensitivity must be positive")
	}
}

// TestRoundTripAnalytic: generate target variances by linear propagation of
// a known coefficient set through the model's own sensitivities, then
// extract. Joint NNLS must recover the truth almost exactly.
func TestRoundTripAnalytic(t *testing.T) {
	truth := variation.FromPaperUnits(2.3, 3.71, 3.71, 944, 0.29)
	ex := &Extraction{
		Card:   vsmodel.NMOS40(1e-6),
		Kind:   device.NMOS,
		Vdd:    vddT,
		Alpha5: truth.A5,
	}
	var data []GeometryVariance
	for _, g := range standardGeometries() {
		s1, s2, s3 := ex.PredictSigmas(truth, g[0], g[1])
		data = append(data, GeometryVariance{
			W: g[0], L: g[1],
			SigmaIdsat: s1, SigmaLogIoff: s2, SigmaCgg: s3,
		})
	}
	got, err := ex.SolveJoint(data)
	if err != nil {
		t.Fatal(err)
	}
	g1, g2, g3, g4, g5 := got.PaperUnits()
	w1, w2, _, w4, w5 := truth.PaperUnits()
	if math.Abs(g1-w1)/w1 > 0.02 {
		t.Fatalf("α1 %g want %g", g1, w1)
	}
	if math.Abs(g2-w2)/w2 > 0.05 {
		t.Fatalf("α2 %g want %g", g2, w2)
	}
	if g2 != g3 {
		t.Fatalf("α2=α3 constraint violated: %g %g", g2, g3)
	}
	if math.Abs(g4-w4)/w4 > 0.08 {
		t.Fatalf("α4 %g want %g", g4, w4)
	}
	if g5 != w5 {
		t.Fatalf("α5 must pass through: %g want %g", g5, w5)
	}
}

// TestRoundTripMonteCarlo: variances measured from actual Gaussian sampling
// through the full nonlinear model; recovery within MC tolerance.
func TestRoundTripMonteCarlo(t *testing.T) {
	truth := variation.FromPaperUnits(2.3, 3.71, 3.71, 944, 0.29)
	card := vsmodel.NMOS40(1e-6)
	ex := &Extraction{Card: card, Kind: device.NMOS, Vdd: vddT, Alpha5: truth.A5}
	tg := Targets{Vdd: vddT}
	const n = 1500

	var data []GeometryVariance
	for gi, g := range standardGeometries() {
		samples, err := montecarlo.Map(n, int64(1000+gi), 0, func(idx int, rng *rand.Rand) ([]float64, error) {
			d := truth.Sample(rng, g[0], g[1])
			inst := card.WithGeometry(g[0], g[1]).ApplyDeltas(d)
			return tg.EvalVec(&inst), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, GeometryVariance{
			W: g[0], L: g[1],
			SigmaIdsat:   stats.StdDev(montecarlo.Column(samples, 0)),
			SigmaLogIoff: stats.StdDev(montecarlo.Column(samples, 1)),
			SigmaCgg:     stats.StdDev(montecarlo.Column(samples, 2)),
		})
	}
	got, err := ex.SolveJoint(data)
	if err != nil {
		t.Fatal(err)
	}
	g1, g2, _, g4, _ := got.PaperUnits()
	w1, w2, _, w4, _ := truth.PaperUnits()
	// MC with n=1500 per geometry: σ estimates carry ~2% noise; allow 12%.
	if math.Abs(g1-w1)/w1 > 0.12 {
		t.Fatalf("α1 %g want %g", g1, w1)
	}
	if math.Abs(g2-w2)/w2 > 0.2 {
		t.Fatalf("α2 %g want %g", g2, w2)
	}
	if math.Abs(g4-w4)/w4 > 0.25 {
		t.Fatalf("α4 %g want %g", g4, w4)
	}
}

func TestSolveIndividualCloseToJoint(t *testing.T) {
	// Paper Fig. 2: per-geometry solves agree with the joint solve to ~10%.
	truth := variation.FromPaperUnits(2.3, 3.71, 3.71, 944, 0.29)
	ex := &Extraction{Card: vsmodel.NMOS40(1e-6), Kind: device.NMOS, Vdd: vddT, Alpha5: truth.A5}
	var data []GeometryVariance
	for _, g := range standardGeometries() {
		s1, s2, s3 := ex.PredictSigmas(truth, g[0], g[1])
		data = append(data, GeometryVariance{W: g[0], L: g[1], SigmaIdsat: s1, SigmaLogIoff: s2, SigmaCgg: s3})
	}
	joint, err := ex.SolveJoint(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range data {
		ind, err := ex.SolveIndividual(g)
		if err != nil {
			t.Fatal(err)
		}
		sJ := joint.Sigmas(g.W, g.L)
		sI := ind.Sigmas(g.W, g.L)
		if rel := math.Abs(sI.VT0-sJ.VT0) / sJ.VT0; rel > 0.1 {
			t.Fatalf("W=%g: individual σVT0 off joint by %g", g.W, rel)
		}
	}
}

func TestSolveJointNoData(t *testing.T) {
	ex := &Extraction{Card: vsmodel.NMOS40(1e-6), Kind: device.NMOS, Vdd: vddT}
	if _, err := ex.SolveJoint(nil); err != ErrInsufficientData {
		t.Fatalf("expected ErrInsufficientData, got %v", err)
	}
}

func TestPredictSigmasPositive(t *testing.T) {
	truth := variation.GoldenTruthNMOS()
	ex := &Extraction{Card: vsmodel.NMOS40(1e-6), Kind: device.NMOS, Vdd: vddT, Alpha5: truth.A5}
	s1, s2, s3 := ex.PredictSigmas(truth, 600e-9, 40e-9)
	if s1 <= 0 || s2 <= 0 || s3 <= 0 {
		t.Fatalf("predicted sigmas: %g %g %g", s1, s2, s3)
	}
	// Pelgrom: wider device → smaller relative Idsat spread.
	w1, _, _ := ex.PredictSigmas(truth, 1500e-9, 40e-9)
	n := vsmodel.NMOS40(600e-9)
	idsat600, _, _ := Targets{Vdd: vddT}.Eval(&n)
	n15 := vsmodel.NMOS40(1500e-9)
	idsat1500, _, _ := Targets{Vdd: vddT}.Eval(&n15)
	if w1/idsat1500 >= s1/idsat600 {
		t.Fatalf("relative σIdsat should shrink with width: %g vs %g",
			w1/idsat1500, s1/idsat600)
	}
}
