package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Progress is a live progress reporter for long Monte Carlo runs: worker
// goroutines tick it per sample (atomic adds only), and a background
// ticker renders throughput, ETA, and fail/rescue rates on an interval. A
// nil *Progress is a no-op, so drivers attach it only when asked to.
type Progress struct {
	w        io.Writer
	interval time.Duration

	// Extra, when set, is appended to every progress line (e.g. a driver
	// pulling extra counters from the metrics registry). Called from the
	// ticker goroutine; must be safe for concurrent use.
	Extra func() string

	total   atomic.Int64
	workers atomic.Int64
	done    atomic.Int64
	failed  atomic.Int64
	rescued atomic.Int64
	start   atomic.Int64 // unix ns

	mu   sync.Mutex // guards w and ticker lifecycle
	stop chan struct{}
	wg   sync.WaitGroup
}

// NewProgress builds a reporter writing to w every interval (minimum
// 100ms). Returns nil when observability is disabled or w is nil.
func NewProgress(w io.Writer, interval time.Duration) *Progress {
	if !Enabled() || w == nil {
		return nil
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	return &Progress{w: w, interval: interval}
}

// RunStart records run shape and starts the ticker goroutine.
func (p *Progress) RunStart(total, workers int) {
	if p == nil {
		return
	}
	p.total.Store(int64(total))
	p.workers.Store(int64(workers))
	p.done.Store(0)
	p.failed.Store(0)
	p.rescued.Store(0)
	p.start.Store(time.Now().UnixNano())

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return // already running
	}
	p.stop = make(chan struct{})
	p.wg.Add(1)
	go func(stop chan struct{}) {
		defer p.wg.Done()
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				p.emit(false)
			}
		}
	}(p.stop)
}

// SampleDone ticks one completed sample (failed samples still count toward
// progress; they are also counted in the fail rate).
func (p *Progress) SampleDone(failed bool) {
	if p == nil {
		return
	}
	p.done.Add(1)
	if failed {
		p.failed.Add(1)
	}
}

// AddRescued adds to the run's rescue-escalation tally (fed by the
// experiments layer's per-sample solver-stat deltas).
func (p *Progress) AddRescued(n int64) {
	if p == nil || n == 0 {
		return
	}
	p.rescued.Add(n)
}

// RunEnd stops the ticker and emits a final line.
func (p *Progress) RunEnd() {
	if p == nil {
		return
	}
	p.mu.Lock()
	stop := p.stop
	p.stop = nil
	p.mu.Unlock()
	if stop != nil {
		close(stop)
		p.wg.Wait()
	}
	p.emit(true)
}

func (p *Progress) emit(final bool) {
	line := p.line(time.Now())
	if p.Extra != nil {
		if x := p.Extra(); x != "" {
			line += " " + x
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if final {
		fmt.Fprintf(p.w, "%s done\n", line)
	} else {
		fmt.Fprintln(p.w, line)
	}
}

// line renders the current progress state (separate from emit so tests can
// exercise the formatting deterministically).
func (p *Progress) line(now time.Time) string {
	done := p.done.Load()
	total := p.total.Load()
	failed := p.failed.Load()
	rescued := p.rescued.Load()
	elapsed := now.Sub(time.Unix(0, p.start.Load()))
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	rate := float64(done) / elapsed.Seconds()
	eta := "?"
	if rate > 0 && total > done {
		eta = (time.Duration(float64(total-done)/rate*float64(time.Second)) / time.Second * time.Second).String()
	} else if total <= done {
		eta = "0s"
	}
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(done) / float64(total)
	}
	failPct := 0.0
	if done > 0 {
		failPct = 100 * float64(failed) / float64(done)
	}
	return fmt.Sprintf("mc %d/%d (%.1f%%) %.1f samp/s eta %s fail %.1f%% rescued %d workers %d",
		done, total, pct, rate, eta, failPct, rescued, p.workers.Load())
}
