package obs

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestShardMergeDeterminism is the merge-determinism contract: the same
// set of increments distributed over N worker shards merges bit-identical
// to a single shard holding all of them, for counters, gauges (additive),
// and histograms. Mirrors the MC bit-identity tests.
func TestShardMergeDeterminism(t *testing.T) {
	type op struct {
		kind int // 0 counter, 1 hist, 2 gauge-add-once
		id   int
		v    int64
	}
	rng := rand.New(rand.NewSource(42))
	var ops []op
	for i := 0; i < 5000; i++ {
		switch rng.Intn(2) {
		case 0:
			ops = append(ops, op{kind: 0, id: rng.Intn(3), v: int64(rng.Intn(10))})
		default:
			ops = append(ops, op{kind: 1, id: rng.Intn(2), v: int64(rng.Intn(1 << 20))})
		}
	}

	build := func(workers int) Snapshot {
		r := NewRegistry()
		var cids [3]CounterID
		for i := range cids {
			cids[i] = r.Counter([]string{"a", "b", "c"}[i])
		}
		var hids [2]HistID
		hids[0] = r.Histogram("h0", ExpBounds(16, 2, 12))
		hids[1] = r.Histogram("h1", []int64{10, 100, 1000})
		shards := make([]*Shard, workers)
		for w := range shards {
			shards[w] = r.NewShard()
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i, o := range ops {
					if i%workers != w {
						continue
					}
					switch o.kind {
					case 0:
						shards[w].Add(cids[o.id], o.v)
					case 1:
						shards[w].Observe(hids[o.id], o.v)
					}
				}
			}(w)
		}
		wg.Wait()
		return r.Snapshot()
	}

	ref := build(1)
	for _, workers := range []int{2, 3, 8} {
		got := build(workers)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("snapshot with %d workers differs from 1-worker reference:\n1: %+v\n%d: %+v",
				workers, ref, workers, got)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	id := r.Histogram("lat", []int64{10, 20, 40, 80})
	s := r.NewShard()
	// 100 observations uniform in (0,10]: p50 should interpolate to ~5.
	for i := 0; i < 100; i++ {
		s.Observe(id, 5)
	}
	snap := r.Snapshot().Find("lat")
	if snap.Count != 100 || snap.Sum != 500 {
		t.Fatalf("count/sum = %d/%d, want 100/500", snap.Count, snap.Sum)
	}
	if p := snap.Quantile(0.5); p <= 0 || p > 10 {
		t.Fatalf("p50 = %v, want in (0,10]", p)
	}
	// Overflow bucket reports the last finite bound.
	s.Observe(id, 1<<40)
	snap = r.Snapshot().Find("lat")
	if p := snap.Quantile(0.999); p != 80 {
		t.Fatalf("overflow quantile = %v, want 80", p)
	}
	if snap.Counts[len(snap.Counts)-1] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", snap.Counts[len(snap.Counts)-1])
	}
}

func TestSnapshotJSONAndPrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("mc_samples_total")
	g := r.Gauge("mc_workers")
	h := r.Histogram("newton_iters", []int64{4, 8, 16})
	s := r.NewShard()
	s.Add(c, 7)
	s.Set(g, 4)
	s.Observe(h, 5)
	s.Observe(h, 100)

	snap := r.Snapshot()
	blob, err := snap.MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.FindCounter("mc_samples_total") != 7 {
		t.Fatalf("counter lost in JSON round-trip: %+v", back)
	}

	var b strings.Builder
	if err := snap.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE mc_samples_total counter",
		"mc_samples_total 7",
		"# TYPE mc_workers gauge",
		"newton_iters_bucket{le=\"8\"} 1",
		"newton_iters_bucket{le=\"+Inf\"} 2",
		"newton_iters_sum 105",
		"newton_iters_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus text missing %q:\n%s", want, text)
		}
	}
}

// TestPrometheusGoldenOutput pins the text exposition format byte-exactly:
// metric families emit in sorted-name order regardless of registration
// order, HELP text escapes backslash and newline (quotes stay bare), label
// values additionally escape quotes, and a second render is identical to
// the first.
func TestPrometheusGoldenOutput(t *testing.T) {
	r := NewRegistry()
	// Registered deliberately out of sorted order.
	z := r.Counter("z_total")
	a := r.Counter("a_total")
	g := r.Gauge("m_gauge")
	h := r.Histogram("h_ns", []int64{10, 20})
	r.SetHelp("a_total", "Line one\nline \"two\" with \\ backslash.")
	r.SetHelp("h_ns", "Latency\\path")
	s := r.NewShard()
	s.Add(a, 3)
	s.Add(z, 7)
	s.Set(g, 5)
	s.Observe(h, 5)
	s.Observe(h, 15)
	s.Observe(h, 999)

	want := `# HELP a_total Line one\nline "two" with \\ backslash.
# TYPE a_total counter
a_total 3
# TYPE z_total counter
z_total 7
# TYPE m_gauge gauge
m_gauge 5
# HELP h_ns Latency\\path
# TYPE h_ns histogram
h_ns_bucket{le="10"} 1
h_ns_bucket{le="20"} 2
h_ns_bucket{le="+Inf"} 3
h_ns_sum 1019
h_ns_count 3
`
	snap := r.Snapshot()
	var b strings.Builder
	if err := snap.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Fatalf("prometheus text not byte-identical to golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	var b2 strings.Builder
	if err := snap.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != b.String() {
		t.Fatal("two renders of the same snapshot differ")
	}
}

// TestHelpSurvivesSnapshotJSON pins that HELP text rides the -metrics-out
// JSON document, so a file written by one process renders the same
// exposition text elsewhere.
func TestHelpSurvivesSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	r.SetHelp("x_total", "Help text.")
	blob, err := r.Snapshot().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := back.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "# HELP x_total Help text.\n") {
		t.Fatalf("HELP lost through the JSON round-trip:\n%s", b.String())
	}
}

func TestNilShardIsNoOp(t *testing.T) {
	var s *Shard
	s.Add(0, 1)
	s.Set(0, 1)
	s.Observe(0, 1)
}

func TestRegistrationAfterShardPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("a")
	r.NewShard()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic registering after first shard")
		}
	}()
	r.Counter("b")
}

func TestExpBounds(t *testing.T) {
	b := ExpBounds(256, 1.5, 41)
	if b[0] != 256 {
		t.Fatalf("first bound = %d", b[0])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %v", i, b)
		}
	}
}

// TestShardOpsAllocFree guards the recording hot path: counter adds and
// histogram observes on a live shard must not allocate.
func TestShardOpsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h", ExpBounds(16, 2, 20))
	s := r.NewShard()
	if n := testing.AllocsPerRun(200, func() {
		s.Add(c, 1)
		s.Observe(h, 12345)
	}); n != 0 {
		t.Fatalf("shard ops allocate %v allocs/op, want 0", n)
	}
	var nilShard *Shard
	if n := testing.AllocsPerRun(200, func() {
		nilShard.Add(c, 1)
		nilShard.Observe(h, 12345)
	}); n != 0 {
		t.Fatalf("nil shard ops allocate %v allocs/op, want 0", n)
	}
}
