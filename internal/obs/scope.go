package obs

import "time"

// Phase identifies one of the fixed Monte Carlo sample phases the Scope
// attributes wall time to. The set matches the pooled MC pipeline: draw
// the sample's parameter vector, re-stamp the pooled circuit, assemble the
// Jacobian (device evaluation + stamping), factor it, run the Newton/
// transient solve with its triangular solves carved out, and extract the
// measurement. Splitting assembly from factorization and the triangular
// solves from the Newton loop separates device-model cost from linear
// algebra, so the dense-vs-sparse linear-core comparison is directly
// measurable in BENCH_mc.json.
type Phase int32

const (
	PhaseDraw      Phase = iota // sample-draw: RNG + parameter vector
	PhaseRestamp                // re-stamp: pooled circuit Restat
	PhaseAssemble               // assemble-J: device evaluation + Jacobian stamping
	PhaseFactor                 // lu-factor: LU refresh (dense Factor / sparse Refactor)
	PhaseTriSolve               // tri-solve: forward/back substitution per Newton iter
	PhaseSolve                  // newton-solve: the solver proper (minus the above)
	PhaseMeasure                // measure: waveform/metric extraction
	PhaseBatchEval              // device-eval-batch: lockstep SoA device evaluation
	PhaseTapeBind               // tape-bind: op-tape constant folding at lane bind
	NumPhases
)

var phaseNames = [NumPhases]string{
	"sample-draw",
	"re-stamp",
	"assemble-J",
	"lu-factor",
	"tri-solve",
	"newton-solve",
	"measure",
	"device-eval-batch",
	"tape-bind",
}

// String returns the phase's metric-name segment.
func (p Phase) String() string {
	if p < 0 || p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// PhaseMetrics bundles the registry IDs for per-phase accounting: one
// nanosecond histogram (per-sample phase time) and one total-ns counter per
// phase. Register once per run and share across workers.
type PhaseMetrics struct {
	Hist  [NumPhases]HistID
	Total [NumPhases]CounterID
}

// PhaseBounds is the default bucket layout for per-sample phase times:
// geometric from 256 ns to ~2.6 s.
func PhaseBounds() []int64 { return ExpBounds(256, 1.5, 41) }

// NewPhaseMetrics registers the per-phase histograms and counters under
// "mc_phase_<name>_ns".
func NewPhaseMetrics(r *Registry) *PhaseMetrics {
	pm := &PhaseMetrics{}
	bounds := PhaseBounds()
	for p := Phase(0); p < NumPhases; p++ {
		pm.Hist[p] = r.Histogram("mc_phase_"+p.String()+"_ns", bounds)
		pm.Total[p] = r.Counter("mc_phase_" + p.String() + "_ns_total")
	}
	return pm
}

// frame is one open span on the Scope's phase stack.
type frame struct {
	phase Phase
	start time.Time
}

// Tracer receives the Scope's phase span boundaries — the bridge between
// the self-time accounting here and the distributed-tracing span capture
// in internal/obs/trace (which implements this interface without obs
// having to import it). Timestamps are unix nanoseconds, forwarded from
// the clock reads Enter/Exit already make, so attaching a tracer adds no
// extra time.Now calls to the hot path.
type Tracer interface {
	BeginSpan(name string, nowNs int64)
	EndSpan(nowNs int64)
}

// Scope is a per-worker phase-timing handle: a fixed-size stack of open
// spans plus per-phase self-time accumulators, flushed into a Shard at
// sample end. Enter on a nested phase pauses the parent frame, so the five
// phases are disjoint and their per-sample times sum to the instrumented
// wall time (the acceptance criterion's within-10%-of-wall contract).
//
// A Scope belongs to one worker goroutine; it is not safe for concurrent
// use. A nil *Scope is a no-op on every method, and NewScope returns nil
// while the package gate is off, so instrumentation trees collapse to a
// pointer check when observability is disabled.
type Scope struct {
	shard  *Shard
	pm     *PhaseMetrics
	sink   *EventSink
	tracer Tracer

	acc   [NumPhases]int64 // self-time this sample, ns
	stack [16]frame
	depth int
}

// NewScope builds a phase-timing scope recording into the given shard, or
// nil when observability is disabled (or any input is nil).
func NewScope(shard *Shard, pm *PhaseMetrics) *Scope {
	if !Enabled() || shard == nil || pm == nil {
		return nil
	}
	return &Scope{shard: shard, pm: pm}
}

// SetEvents attaches a sampled event sink for solver traces.
func (s *Scope) SetEvents(sink *EventSink) {
	if s == nil {
		return
	}
	s.sink = sink
}

// SetTracer attaches (or, with nil, detaches) a span tracer. With no
// tracer the only added cost on Enter/Exit is one nil pointer check, and
// the hot path stays allocation-free (pinned by internal/spice tests).
func (s *Scope) SetTracer(t Tracer) {
	if s == nil {
		return
	}
	s.tracer = t
}

// Enter opens a span for the given phase, pausing the enclosing span so
// only self-time accrues to each phase. Must be matched by Exit.
func (s *Scope) Enter(p Phase) {
	if s == nil {
		return
	}
	now := time.Now()
	if s.depth > 0 && s.depth <= len(s.stack) {
		f := &s.stack[s.depth-1]
		s.acc[f.phase] += now.Sub(f.start).Nanoseconds()
	}
	if s.depth < len(s.stack) {
		s.stack[s.depth] = frame{phase: p, start: now}
	}
	s.depth++
	if s.tracer != nil {
		s.tracer.BeginSpan(p.String(), now.UnixNano())
	}
}

// Exit closes the innermost span and resumes the parent frame.
func (s *Scope) Exit() {
	if s == nil || s.depth == 0 {
		return
	}
	now := time.Now()
	s.depth--
	if s.depth < len(s.stack) {
		f := &s.stack[s.depth]
		s.acc[f.phase] += now.Sub(f.start).Nanoseconds()
	}
	if s.depth > 0 && s.depth <= len(s.stack) {
		s.stack[s.depth-1].start = now
	}
	if s.tracer != nil {
		s.tracer.EndSpan(now.UnixNano())
	}
}

// SpanBegin opens an ad-hoc trace span (a rescue-ladder rung, say) on the
// attached tracer without touching the phase self-time stack. A no-op —
// one nil check — without a tracer; must be paired with SpanEnd.
func (s *Scope) SpanBegin(name string) {
	if s == nil || s.tracer == nil {
		return
	}
	s.tracer.BeginSpan(name, time.Now().UnixNano())
}

// SpanEnd closes the innermost SpanBegin span.
func (s *Scope) SpanEnd() {
	if s == nil || s.tracer == nil {
		return
	}
	s.tracer.EndSpan(time.Now().UnixNano())
}

// EndSample flushes the per-sample phase accumulators into the shard's
// histograms and totals, and resets them for the next sample. Phases with
// zero accumulated time are still observed (a zero bucket entry) so sample
// counts line up across phases.
func (s *Scope) EndSample() {
	if s == nil {
		return
	}
	for p := Phase(0); p < NumPhases; p++ {
		ns := s.acc[p]
		s.shard.Observe(s.pm.Hist[p], ns)
		s.shard.Add(s.pm.Total[p], ns)
		s.acc[p] = 0
	}
	s.depth = 0
}

// Shard exposes the underlying shard for ad-hoc counters/histograms tied to
// the same worker (nil-safe: returns nil on a nil scope).
func (s *Scope) Shard() *Shard {
	if s == nil {
		return nil
	}
	return s.shard
}

// Observe records into a histogram on this scope's shard.
func (s *Scope) Observe(id HistID, v int64) {
	if s == nil {
		return
	}
	s.shard.Observe(id, v)
}

// Add increments a counter on this scope's shard.
func (s *Scope) Add(id CounterID, delta int64) {
	if s == nil {
		return
	}
	s.shard.Add(id, delta)
}

// Set stores a gauge on this scope's shard.
func (s *Scope) Set(id GaugeID, v int64) {
	if s == nil {
		return
	}
	s.shard.Set(id, v)
}
