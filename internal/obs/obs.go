// Package obs is the repository's structured observability layer: a
// lock-cheap metrics registry (counters, gauges, fixed-bucket histograms
// with per-worker atomic shards that merge deterministically), span-style
// per-sample phase timing (obs.Scope), a sampled structured-event sink for
// solver traces (log/slog), and a live progress reporter for long Monte
// Carlo runs.
//
// The package is dependency-free (standard library only) and built so the
// instrumented hot paths cost nothing when observability is off:
//
//   - Every Scope/Shard/EventSink method is nil-safe: a nil receiver is a
//     no-op, so un-instrumented code passes nil handles and pays a single
//     pointer check.
//   - The package-level Enabled gate keeps construction honest: NewScope
//     returns nil while observability is disabled, so an entire
//     instrumentation tree collapses to nil handles.
//   - Enabled paths allocate nothing per event: shards are preallocated
//     atomics, Scope keeps fixed-size phase accumulators, and the event
//     sink drops sampled-out events before building attributes.
//
// Attribution follows the Monte Carlo determinism contract: counters and
// histogram bucket/sum cells are int64, so merging N worker shards is
// bit-identical to one shard holding the same increments, and per-sample
// counter attribution is invariant under worker count.
package obs

import "sync/atomic"

// enabled is the package-level observability gate. Default off: the
// instrumented solver hot paths stay zero-cost until a driver opts in.
var enabled atomic.Bool

// SetEnabled turns the observability layer on or off process-wide. Drivers
// (cmd/vsrepro, cmd/vsbench) enable it when any observability flag is set;
// tests enable it around instrumented runs.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether the observability layer is on.
func Enabled() bool { return enabled.Load() }
