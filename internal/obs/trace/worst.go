package trace

// The flight recorder: every sample produces a small fixed-size diagnostic
// (SampleDiag); full span detail survives only for the K worst samples.
// Determinism is the load-bearing property — the same K samples must be
// retained at any worker count and any sharding — so the ranking uses only
// fields that are pure functions of (seed, idx): the verdict, the rescue
// work, and the Newton iteration count. Wall time is recorded for humans
// but deliberately excluded from the order (it depends on machine load).

// DefaultWorstK is the flight-recorder retention depth when unset.
const DefaultWorstK = 8

// Sample verdicts, in increasing severity. Budget and hang verdicts are
// only as deterministic as the budgets that produce them (a wall-clock
// budget can trip on one machine and not another); runs without budgets
// produce only "ok", "failed", and "panic", all deterministic.
const (
	VerdictOK          = "ok"
	VerdictFailed      = "failed"
	VerdictBudgetWall  = "budget-wall"
	VerdictBudgetIters = "budget-iters"
	VerdictBudgetHang  = "budget-hang"
	VerdictPanic       = "panic"
)

// severity ranks verdicts for the worst-K order: any failure outranks any
// success, panics outrank everything.
func severity(verdict string) int {
	switch verdict {
	case VerdictOK, "":
		return 0
	case VerdictPanic:
		return 3
	case VerdictBudgetWall, VerdictBudgetIters, VerdictBudgetHang:
		return 2
	default:
		return 1
	}
}

// SampleDiag is the fixed-size per-sample diagnostic every traced sample
// produces: enough to rank it, locate it, and explain it without keeping
// its spans.
type SampleDiag struct {
	Run       string `json:"run,omitempty"` // mc-run name (experiment/bench)
	Idx       int    `json:"idx"`           // global sample index
	Iters     int64  `json:"iters"`         // Newton iterations this sample
	Rescues   int64  `json:"rescues"`       // rescue-ladder stages climbed
	WallNs    int64  `json:"wall_ns"`       // wall time (excluded from ranking)
	Verdict   string `json:"verdict"`
	WorstNode string `json:"worst_node,omitempty"` // worst KCL node of the failure
	Err       string `json:"err,omitempty"`
}

// Worse reports whether a ranks strictly worse (= more worth keeping) than
// b. The order is total and uses only deterministic fields, with (run, idx)
// as the final tie-break, so any top-K selection under it is unique.
func Worse(a, b SampleDiag) bool {
	if sa, sb := severity(a.Verdict), severity(b.Verdict); sa != sb {
		return sa > sb
	}
	if a.Rescues != b.Rescues {
		return a.Rescues > b.Rescues
	}
	if a.Iters != b.Iters {
		return a.Iters > b.Iters
	}
	if a.Run != b.Run {
		return a.Run < b.Run
	}
	return a.Idx < b.Idx
}

// SampleRecord is one retained worst sample: its diagnostic plus the full
// span detail captured while it ran. Truncated marks a sample whose span
// buffer overflowed (detail capped, diagnostic still exact).
type SampleRecord struct {
	Diag      SampleDiag `json:"diag"`
	Events    []Event    `json:"events,omitempty"`
	Truncated bool       `json:"truncated,omitempty"`
}

// WorstSet keeps the K worst sample records under the Worse order. The
// zero value with K set is ready to use. Not safe for concurrent use.
type WorstSet struct {
	K    int
	recs []SampleRecord // sorted, worst first
}

// WouldKeep reports whether a sample with diagnostic d would enter the set
// — the cheap pre-check that lets callers skip copying span buffers for
// samples that won't survive.
func (w *WorstSet) WouldKeep(d SampleDiag) bool {
	if w.K <= 0 {
		return false
	}
	if len(w.recs) < w.K {
		return true
	}
	return Worse(d, w.recs[len(w.recs)-1].Diag)
}

// Add inserts rec if it ranks among the K worst, evicting the best of the
// current set when full. Returns whether rec was kept.
func (w *WorstSet) Add(rec SampleRecord) bool {
	if !w.WouldKeep(rec.Diag) {
		return false
	}
	i := len(w.recs)
	for i > 0 && Worse(rec.Diag, w.recs[i-1].Diag) {
		i--
	}
	w.recs = append(w.recs, SampleRecord{})
	copy(w.recs[i+1:], w.recs[i:])
	w.recs[i] = rec
	if len(w.recs) > w.K {
		w.recs = w.recs[:w.K]
	}
	return true
}

// Records returns the retained records, worst first.
func (w *WorstSet) Records() []SampleRecord { return w.recs }
