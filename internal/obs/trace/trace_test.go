package trace

import (
	"path/filepath"
	"sort"
	"testing"
)

// diags builds a deterministic population of sample diagnostics with
// repeated verdict/rescue/iteration patterns so the worst-K selection has
// genuine ties to break.
func diags(n int) []SampleDiag {
	verdicts := []string{VerdictOK, VerdictOK, VerdictOK, VerdictFailed, VerdictOK, VerdictBudgetIters, VerdictOK, VerdictPanic}
	out := make([]SampleDiag, n)
	for i := range out {
		out[i] = SampleDiag{
			Run:     "mc",
			Idx:     i,
			Iters:   int64(37 * (i % 11)),
			Rescues: int64(i % 3),
			WallNs:  int64(1000 * ((i * 7919) % 13)), // noise: must not affect ranking
			Verdict: verdicts[i%len(verdicts)],
		}
	}
	return out
}

// globalTopK selects the K worst diagnostics by full sort under Worse — the
// reference the sharded merges must reproduce.
func globalTopK(ds []SampleDiag, k int) []SampleDiag {
	s := append([]SampleDiag(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return Worse(s[i], s[j]) })
	if len(s) > k {
		s = s[:k]
	}
	return s
}

// TestWorstSetMergeDeterministic is the flight-recorder determinism
// contract: partitioning the sample population across any number of
// per-worker top-K sets and merging them in any order yields exactly the
// global top-K, in the same order.
func TestWorstSetMergeDeterministic(t *testing.T) {
	const k = 8
	ds := diags(100)
	want := globalTopK(ds, k)

	for _, workers := range []int{1, 3, 4, 8, 17} {
		// Deal samples round-robin to workers (the engine's index stream is
		// arbitrary, so any partition must give the same answer).
		perWorker := make([]WorstSet, workers)
		for i := range perWorker {
			perWorker[i] = WorstSet{K: k}
		}
		for i, d := range ds {
			perWorker[i%workers].Add(SampleRecord{Diag: d})
		}
		// Merge in two different orders.
		for _, reverse := range []bool{false, true} {
			global := WorstSet{K: k}
			for i := range perWorker {
				w := i
				if reverse {
					w = workers - 1 - i
				}
				for _, rec := range perWorker[w].Records() {
					global.Add(rec)
				}
			}
			got := global.Records()
			if len(got) != len(want) {
				t.Fatalf("workers=%d reverse=%v: kept %d records, want %d", workers, reverse, len(got), len(want))
			}
			for i := range got {
				if got[i].Diag != want[i] {
					t.Fatalf("workers=%d reverse=%v: record %d = %+v, want %+v",
						workers, reverse, i, got[i].Diag, want[i])
				}
			}
		}
	}
}

// TestWorseTotalOrder pins the ranking axes: severity dominates, then
// rescues, then iterations; wall time never participates; (run, idx) breaks
// all remaining ties so the order is total.
func TestWorseTotalOrder(t *testing.T) {
	base := SampleDiag{Run: "r", Idx: 5, Iters: 100, Rescues: 1, Verdict: VerdictOK}
	cases := []struct {
		name  string
		a, b  SampleDiag
		worse bool
	}{
		{"failure outranks ok", SampleDiag{Verdict: VerdictFailed}, SampleDiag{Verdict: VerdictOK, Iters: 1e6}, true},
		{"panic outranks budget", SampleDiag{Verdict: VerdictPanic}, SampleDiag{Verdict: VerdictBudgetWall, Rescues: 99}, true},
		{"budget outranks plain failure", SampleDiag{Verdict: VerdictBudgetHang}, SampleDiag{Verdict: VerdictFailed, Rescues: 99}, true},
		{"rescues beat iters", SampleDiag{Rescues: 2}, SampleDiag{Rescues: 1, Iters: 1e6}, true},
		{"iters break rescue ties", SampleDiag{Rescues: 1, Iters: 101}, SampleDiag{Rescues: 1, Iters: 100}, true},
		{"wall time is ignored", base, withWall(base, 1<<40), false},
		{"idx is the final tiebreak", base, withIdx(base, 6), true},
	}
	for _, c := range cases {
		if got := Worse(c.a, c.b); got != c.worse {
			t.Errorf("%s: Worse = %v, want %v", c.name, got, c.worse)
		}
	}
	// Antisymmetry on the wall-time case: equal under the order both ways.
	if Worse(withWall(base, 1<<40), base) {
		t.Error("wall time leaked into the ranking")
	}
}

func withWall(d SampleDiag, w int64) SampleDiag { d.WallNs = w; return d }
func withIdx(d SampleDiag, i int) SampleDiag    { d.Idx = i; return d }

// TestSampleTracerCapture checks span capture mechanics: nesting parents
// correctly, deterministic IDs, pairing under over-deep nesting, and the
// truncation flag once the event cap is hit.
func TestSampleTracerCapture(t *testing.T) {
	rec := New("test", 4)
	parent := rec.Start("mc", CatMCRun, 0)
	m := NewMC(rec, "mc", parent.ID(), 4)
	w := m.NewWorker(0)

	// Normal nesting.
	w.BeginSample(3)
	w.BeginSpan("newton-solve", 100)
	w.BeginSpan("tri-solve", 110)
	w.EndSpan(120)
	w.EndSpan(130)
	w.EndSample(SampleDiag{Verdict: VerdictFailed, Iters: 7})

	m.FinishWorker(w)
	recs := m.Finish()
	if len(recs) != 1 {
		t.Fatalf("kept %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Diag.Idx != 3 || r.Diag.Run != "mc" || r.Diag.WallNs < 0 {
		t.Fatalf("diag not filled in: %+v", r.Diag)
	}
	if len(r.Events) != 3 {
		t.Fatalf("captured %d events, want 3 (sample + 2 phases)", len(r.Events))
	}
	sample, outer, inner := r.Events[0], r.Events[1], r.Events[2]
	if sample.Cat != CatSample || sample.Parent != parent.ID() {
		t.Fatalf("sample span = %+v, want parent %d", sample, parent.ID())
	}
	if outer.Parent != sample.ID || inner.Parent != outer.ID {
		t.Fatalf("phase nesting broken: outer.Parent=%d inner.Parent=%d sample.ID=%d outer.ID=%d",
			outer.Parent, inner.Parent, sample.ID, outer.ID)
	}
	if inner.Dur != 10 || outer.Dur != 30 {
		t.Fatalf("span durations = %d, %d; want 10, 30", inner.Dur, outer.Dur)
	}
	if sample.Note != VerdictFailed {
		t.Fatalf("sample note = %q, want verdict", sample.Note)
	}
	// Deterministic ID: base + (idx+1)<<sampleSeqBits.
	if want := m.base + uint64(4)<<sampleSeqBits; sample.ID != want {
		t.Fatalf("sample ID = %d, want %d", sample.ID, want)
	}

	// Over-cap capture: blow both the depth and the event cap; pairing must
	// survive and the record must be marked truncated.
	w2 := m.NewWorker(1)
	w2.BeginSample(9)
	for i := 0; i < maxSampleEvents+maxSpanDepth+10; i++ {
		w2.BeginSpan("deep", int64(i))
	}
	for i := 0; i < maxSampleEvents+maxSpanDepth+10; i++ {
		w2.EndSpan(int64(1000 + i))
	}
	w2.EndSample(SampleDiag{Verdict: VerdictPanic})
	m.FinishWorker(w2)
	recs = m.Finish()
	var panicked *SampleRecord
	for i := range recs {
		if recs[i].Diag.Idx == 9 {
			panicked = &recs[i]
		}
	}
	if panicked == nil {
		t.Fatal("over-cap sample did not survive into the worst set")
	}
	if !panicked.Truncated {
		t.Fatal("over-cap sample not marked truncated")
	}
	if len(panicked.Events) > maxSampleEvents {
		t.Fatalf("captured %d events, cap is %d", len(panicked.Events), maxSampleEvents)
	}
	for _, ev := range panicked.Events[1:] {
		if ev.Dur <= 0 {
			t.Fatalf("unpaired span after truncation: %+v", ev)
		}
	}
}

// TestFileRoundTrip writes a recorder with structural spans and worst-K
// sample detail to disk and loads it back: every span survives with ID,
// parent, category, note, and sample index intact, the trace stays
// connected, and the summary matches.
func TestFileRoundTrip(t *testing.T) {
	rec := New("proc-a", 2)
	run := rec.Start("run", CatRun, 0)
	exp := rec.Start("exp-1", CatExperiment, run.ID())
	m := NewMC(rec, "exp-1/mc", exp.ID(), 2)
	w := m.NewWorker(0)
	for idx := 0; idx < 5; idx++ {
		w.BeginSample(idx)
		w.BeginSpan("newton-solve", int64(idx*100))
		w.EndSpan(int64(idx*100 + 50))
		d := SampleDiag{Iters: int64(10 * idx), Verdict: VerdictOK}
		if idx == 4 {
			d.Verdict = VerdictFailed
			d.Err = "singular matrix"
			d.WorstNode = "n7"
		}
		w.EndSample(d)
	}
	m.FinishWorker(w)
	m.Finish()
	exp.Note("done")
	exp.End()
	run.End()

	path := filepath.Join(t.TempDir(), "out.trace.json")
	if err := rec.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	evs, sum, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	wantEvs, wantSum := rec.Export()
	if len(evs) != len(wantEvs) {
		t.Fatalf("loaded %d events, wrote %d", len(evs), len(wantEvs))
	}
	if got := Orphans(evs); got != 0 {
		t.Fatalf("%d orphan spans after round-trip", got)
	}
	// Index by ID: order through the file is not part of the contract.
	byID := map[uint64]Event{}
	for _, ev := range evs {
		byID[ev.ID] = ev
	}
	for _, want := range wantEvs {
		got, ok := byID[want.ID]
		if !ok {
			t.Fatalf("event %d (%s) lost in round-trip", want.ID, want.Name)
		}
		// Timestamps quantize to the file's microsecond resolution; compare
		// the identity-bearing fields exactly.
		got.Start, got.Dur = want.Start, want.Dur
		if got != want {
			t.Fatalf("event %d round-tripped as %+v, want %+v", want.ID, got, want)
		}
	}
	if sum.K != wantSum.K || len(sum.Worst) != len(wantSum.Worst) {
		t.Fatalf("summary = K=%d/%d records, want K=%d/%d", sum.K, len(sum.Worst), wantSum.K, len(wantSum.Worst))
	}
	for i := range sum.Worst {
		if sum.Worst[i].Diag != wantSum.Worst[i].Diag {
			t.Fatalf("worst[%d].Diag = %+v, want %+v", i, sum.Worst[i].Diag, wantSum.Worst[i].Diag)
		}
	}
	if sum.Worst[0].Diag.Verdict != VerdictFailed || sum.Worst[0].Diag.WorstNode != "n7" {
		t.Fatalf("failed sample not ranked worst: %+v", sum.Worst[0].Diag)
	}
}

// TestNilSafety pins the disabled-tracing contract: every method on a nil
// recorder, MC, tracer, or span is a no-op.
func TestNilSafety(t *testing.T) {
	var r *Recorder
	if r.K() != 0 || r.AllocID() != 0 || r.AllocBase() != 0 {
		t.Fatal("nil recorder returned non-zero IDs")
	}
	r.Append(Event{})
	r.AddWorst([]SampleRecord{{}})
	if evs, worst := r.Snapshot(); evs != nil || worst != nil {
		t.Fatal("nil recorder snapshot not empty")
	}
	if err := r.WriteFile("/nonexistent/should-not-be-written"); err != nil {
		t.Fatal("nil recorder WriteFile must be a no-op")
	}
	sp := r.Start("x", CatRun, 0)
	if sp.ID() != 0 {
		t.Fatal("nil span has an ID")
	}
	sp.Note("n")
	sp.End()

	m := NewMC(nil, "run", 0, 4)
	if m != nil {
		t.Fatal("NewMC with nil recorder must return nil")
	}
	w := m.NewWorker(0)
	if w != nil {
		t.Fatal("nil MC handed out a worker")
	}
	w.BeginSample(0)
	w.BeginSpan("x", 0)
	w.EndSpan(1)
	w.EndSample(SampleDiag{})
	m.FinishWorker(w)
	if m.Finish() != nil {
		t.Fatal("nil MC finished with records")
	}
}

// TestStandaloneMCMatchesLocal pins the cross-process contract: a
// standalone MC (shard worker) with the same base produces sample span IDs
// identical to a local MC's, so a coordinator can merge remote records
// without translation.
func TestStandaloneMCMatchesLocal(t *testing.T) {
	const base, parent = uint64(7) << idBlockShift, uint64(42)
	m := NewStandaloneMC("mc", "shard-0/a0", parent, base, 4)
	w := m.NewWorker(0)
	w.BeginSample(100)
	w.EndSample(SampleDiag{Verdict: VerdictFailed})
	m.FinishWorker(w)
	recs := m.Finish()
	if len(recs) != 1 {
		t.Fatalf("kept %d records, want 1", len(recs))
	}
	ev := recs[0].Events[0]
	if want := base + uint64(101)<<sampleSeqBits; ev.ID != want {
		t.Fatalf("standalone sample ID = %d, want deterministic %d", ev.ID, want)
	}
	if ev.Parent != parent {
		t.Fatalf("standalone sample parent = %d, want wire parent %d", ev.Parent, parent)
	}
	if ev.Proc != "shard-0/a0" {
		t.Fatalf("standalone sample proc = %q", ev.Proc)
	}
}
