package trace

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
)

// Chrome trace-event JSON export. The file is the standard
// {"traceEvents":[...]} object-format document Perfetto and
// chrome://tracing load, with span IDs/parents carried in each event's
// args, plus one extra top-level "vstat" section (tolerated by both
// viewers) holding the worst-K flight-recorder table so `vstrace
// summarize` doesn't have to reconstruct diagnostics from spans.

// Summary is the "vstat" section of a trace file.
type Summary struct {
	K     int            `json:"k"`
	Worst []SampleRecord `json:"worst"`
}

// File is the full trace document.
type File struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
	Vstat       Summary       `json:"vstat"`
}

// chromeEvent is one trace-event record. Ph "X" is a complete (begin+end)
// event with ts/dur in microseconds; "M" is metadata (process names).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Export flattens the recorder's state — structural spans plus the events
// of the surviving global worst-K samples — into one event list plus the
// summary. Process tracks (pids) are assigned by sorted proc name, so the
// export of a given span set is deterministic.
func (r *Recorder) Export() ([]Event, Summary) {
	evs, worst := r.Snapshot()
	for _, rec := range worst {
		evs = append(evs, rec.Events...)
	}
	return evs, Summary{K: r.K(), Worst: worst}
}

// WriteFile exports the trace to path as Chrome trace-event JSON.
func (r *Recorder) WriteFile(path string) error {
	if r == nil {
		return nil
	}
	evs, sum := r.Export()
	blob, err := Marshal(evs, sum)
	if err != nil {
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

// Marshal renders events plus the summary as the trace-file JSON document.
func Marshal(evs []Event, sum Summary) ([]byte, error) {
	pids := procTable(evs)
	f := File{Vstat: sum, TraceEvents: make([]chromeEvent, 0, len(evs)+len(pids))}
	// Metadata: name each process track, in deterministic (sorted) order.
	names := make([]string, 0, len(pids))
	for p := range pids {
		names = append(names, p)
	}
	sort.Strings(names)
	for _, p := range names {
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pids[p],
			Args: map[string]any{"name": p},
		})
	}
	for i := range evs {
		ev := &evs[i]
		// IDs travel as decimal strings: JSON numbers round-trip through
		// float64 and a 64-bit span ID does not survive that.
		ce := chromeEvent{
			Name: ev.Name, Cat: ev.Cat, Ph: "X",
			Ts:  float64(ev.Start) / 1e3,
			Dur: float64(ev.Dur) / 1e3,
			Pid: pids[ev.Proc], Tid: ev.Worker,
			Args: map[string]any{"id": strconv.FormatUint(ev.ID, 10)},
		}
		if ev.Parent != 0 {
			ce.Args["parent"] = strconv.FormatUint(ev.Parent, 10)
		}
		if ev.Sample >= 0 {
			ce.Args["sample"] = ev.Sample
		}
		if ev.Note != "" {
			ce.Args["note"] = ev.Note
		}
		f.TraceEvents = append(f.TraceEvents, ce)
	}
	blob, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// procTable assigns each distinct proc label a pid, sorted for determinism.
func procTable(evs []Event) map[string]int {
	names := map[string]int{}
	for i := range evs {
		names[evs[i].Proc] = 0
	}
	sorted := make([]string, 0, len(names))
	for p := range names {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	for i, p := range sorted {
		names[p] = i + 1
	}
	return names
}

// ReadFile loads a trace file back into span events plus the summary —
// the shared loader for cmd/vstrace and the acceptance tests.
func ReadFile(path string) ([]Event, Summary, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, Summary{}, err
	}
	return Unmarshal(blob)
}

// Unmarshal parses a trace-file document produced by Marshal.
func Unmarshal(blob []byte) ([]Event, Summary, error) {
	var f File
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, Summary{}, fmt.Errorf("trace: parse: %w", err)
	}
	procs := map[int]string{}
	evs := make([]Event, 0, len(f.TraceEvents))
	for _, ce := range f.TraceEvents {
		if ce.Ph == "M" {
			if ce.Name == "process_name" {
				if n, ok := ce.Args["name"].(string); ok {
					procs[ce.Pid] = n
				}
			}
			continue
		}
		if ce.Ph != "X" {
			continue
		}
		ev := Event{
			Name: ce.Name, Cat: ce.Cat,
			Start: int64(ce.Ts * 1e3), Dur: int64(ce.Dur * 1e3),
			Worker: ce.Tid, Sample: -1, Proc: procs[ce.Pid],
		}
		ev.ID = argU64(ce.Args, "id")
		ev.Parent = argU64(ce.Args, "parent")
		if s, ok := ce.Args["sample"]; ok {
			if v, ok := s.(float64); ok {
				ev.Sample = int(v)
			}
		}
		if n, ok := ce.Args["note"].(string); ok {
			ev.Note = n
		}
		evs = append(evs, ev)
	}
	return evs, f.Vstat, nil
}

func argU64(args map[string]any, key string) uint64 {
	switch x := args[key].(type) {
	case string:
		u, _ := strconv.ParseUint(x, 10, 64)
		return u
	case float64:
		return uint64(x)
	}
	return 0
}
