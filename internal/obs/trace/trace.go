// Package trace is the distributed-tracing layer of the observability
// stack: causal spans from run → experiment → shard attempt → sample →
// solver phase, stitched across process boundaries by explicit parent IDs
// carried on the shard wire format, and exported as Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing).
//
// The design splits spans into two tiers with very different volumes:
//
//   - Structural spans (run, experiment, mc-run, dispatch, shard attempt)
//     number in the tens-to-hundreds per run. They are appended to a
//     mutex-protected Recorder as they close and all survive to the file.
//
//   - Sample and phase spans number in the millions. Each worker records
//     them into a fixed-capacity per-sample scratch buffer (a SampleTracer)
//     and, at sample end, keeps the full span detail only when the sample
//     enters the worker's top-K worst set (see worst.go). Everything else
//     is reduced to nothing — the sample's fixed-size diagnostic was the
//     only thing ever allocated, and it lived on the stack.
//
// Everything is nil-safe: a nil *Recorder, *MC, *SampleTracer, or *Span is
// a no-op on every method, so a disabled trace costs one pointer check per
// call site and zero allocations (pinned by tests in internal/spice).
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Span categories. Chrome trace viewers group by these.
const (
	CatRun        = "run"        // whole CLI invocation
	CatExperiment = "experiment" // one experiment / bench unit
	CatMCRun      = "mc-run"     // one Monte Carlo population
	CatDispatch   = "dispatch"   // coordinator-side view of one shard attempt
	CatShard      = "shard"      // worker-side execution of one shard attempt
	CatSample     = "sample"     // one Monte Carlo sample
	CatPhase      = "phase"      // solver phase / rescue rung inside a sample
)

// Event is one completed span. IDs are globally unique within a trace;
// Parent is 0 for the root. Timestamps are unix nanoseconds, so spans from
// different processes on the same machine align on a common axis.
type Event struct {
	Name   string `json:"name"`
	Cat    string `json:"cat"`
	ID     uint64 `json:"id"`
	Parent uint64 `json:"parent,omitempty"`
	Start  int64  `json:"start_ns"`
	Dur    int64  `json:"dur_ns"`
	Proc   string `json:"proc,omitempty"`   // process/track label
	Worker int    `json:"worker,omitempty"` // worker ordinal within the proc
	Sample int    `json:"sample"`           // global sample index, -1 for structural spans
	Note   string `json:"note,omitempty"`   // outcome annotation (committed/lost/verdict/…)
}

// idBlockShift sizes the ID blocks AllocBase hands out: each block holds
// 2^48 IDs, enough for deterministic per-sample IDs of a multi-billion
// sample run, while structural spans draw small sequential IDs from block
// zero — the two ranges can never collide.
const idBlockShift = 48

// Recorder collects one process's structural spans and the run-global
// worst-K sample set. Safe for concurrent use. A nil *Recorder is a no-op
// everywhere, which is how tracing is disabled.
type Recorder struct {
	proc string
	k    int

	nextID   atomic.Uint64
	nextBase atomic.Uint64

	mu     sync.Mutex
	events []Event
	worst  WorstSet
}

// New builds a recorder labelled with the process name, keeping the k
// worst samples run-wide (k <= 0 defaults to DefaultWorstK).
func New(proc string, k int) *Recorder {
	if k <= 0 {
		k = DefaultWorstK
	}
	return &Recorder{proc: proc, k: k, worst: WorstSet{K: k}}
}

// K returns the worst-sample retention depth (0 on a nil recorder).
func (r *Recorder) K() int {
	if r == nil {
		return 0
	}
	return r.k
}

// AllocID returns the next small sequential span ID (block zero).
func (r *Recorder) AllocID() uint64 {
	if r == nil {
		return 0
	}
	return r.nextID.Add(1)
}

// AllocBase reserves a fresh 2^48-wide ID block for a sub-trace (one Monte
// Carlo run, or one shard attempt shipped to another process) so its
// deterministically derived sample IDs cannot collide with any other
// block's.
func (r *Recorder) AllocBase() uint64 {
	if r == nil {
		return 0
	}
	return r.nextBase.Add(1) << idBlockShift
}

// Append adds completed events (worker-side shard spans arriving in a
// committed envelope, typically).
func (r *Recorder) Append(evs ...Event) {
	if r == nil || len(evs) == 0 {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, evs...)
	r.mu.Unlock()
}

// AddWorst merges sample records into the run-global worst-K set. The set
// ordering is deterministic in the samples' diagnostics (see Worse), so the
// surviving K are independent of merge order, worker count, and sharding.
func (r *Recorder) AddWorst(recs []SampleRecord) {
	if r == nil || len(recs) == 0 {
		return
	}
	r.mu.Lock()
	for i := range recs {
		r.worst.Add(recs[i])
	}
	r.mu.Unlock()
}

// Snapshot returns copies of the structural events and the current global
// worst set.
func (r *Recorder) Snapshot() ([]Event, []SampleRecord) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	evs := append([]Event(nil), r.events...)
	worst := append([]SampleRecord(nil), r.worst.Records()...)
	return evs, worst
}

// Span is one open structural span; End appends it to the recorder.
type Span struct {
	r  *Recorder
	ev Event
}

// Start opens a structural span under the given parent (0 = root).
func (r *Recorder) Start(name, cat string, parent uint64) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, ev: Event{
		Name: name, Cat: cat, ID: r.AllocID(), Parent: parent,
		Start: time.Now().UnixNano(), Proc: r.proc, Sample: -1,
	}}
}

// ID returns the span's ID (0 on nil, safe to use as a parent).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.ev.ID
}

// Note annotates the span's outcome.
func (s *Span) Note(note string) {
	if s == nil {
		return
	}
	s.ev.Note = note
}

// End closes the span and appends it to the recorder. Calling End twice
// records the span twice; don't.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.ev.Dur = time.Now().UnixNano() - s.ev.Start
	s.r.Append(s.ev)
}

// Orphans counts events whose Parent is neither 0 nor the ID of any event
// in the set — the "one connected trace" acceptance check.
func Orphans(evs []Event) int {
	ids := make(map[uint64]struct{}, len(evs))
	for i := range evs {
		ids[evs[i].ID] = struct{}{}
	}
	orphans := 0
	for i := range evs {
		if p := evs[i].Parent; p != 0 {
			if _, ok := ids[p]; !ok {
				orphans++
			}
		}
	}
	return orphans
}
