package trace

import (
	"sync"
	"time"
)

// Per-sample span capture limits. The caps bound the flight recorder's
// footprint: one scratch buffer of maxSampleEvents events per worker,
// reused across samples, copied out only when a sample enters the top-K.
const (
	maxSampleEvents = 512
	maxSpanDepth    = 32
	// sampleSeqBits is the per-sample ID sub-space: sample idx's span IDs
	// are base + (idx+1)<<sampleSeqBits + seq, so IDs are deterministic in
	// (base, idx, seq) and two samples' ID ranges never overlap as long as
	// a sample emits < 2^sampleSeqBits spans (the event cap guarantees it).
	sampleSeqBits = 10
)

// MC is the per-Monte-Carlo-run trace bundle montecarlo.RunOpts carries:
// it hands each engine worker a SampleTracer and merges the workers'
// worst-K sets deterministically at the end. rec may be nil (a shard
// worker tracing on behalf of a remote coordinator); the merged records
// are then only returned from Finish, for the caller to ship over the
// wire. A nil *MC disables sample tracing at the cost of one nil check.
type MC struct {
	rec    *Recorder
	run    string
	proc   string
	parent uint64
	base   uint64
	k      int

	mu    sync.Mutex
	worst WorstSet
}

// NewMC builds the trace bundle for one Monte Carlo run recording into
// rec: sample spans parent to parentSpan, and sample IDs draw from a fresh
// ID block. Returns nil when rec is nil.
func NewMC(rec *Recorder, run string, parentSpan uint64, k int) *MC {
	if rec == nil {
		return nil
	}
	if k <= 0 {
		k = rec.K()
	}
	return &MC{rec: rec, run: run, proc: rec.proc, parent: parentSpan,
		base: rec.AllocBase(), k: k, worst: WorstSet{K: k}}
}

// NewStandaloneMC builds the bundle for a run whose trace is collected for
// a remote coordinator: the parent span ID and the ID base arrive on the
// wire (shard.Request), and the merged worst records leave on it.
func NewStandaloneMC(run, proc string, parentSpan, base uint64, k int) *MC {
	if k <= 0 {
		k = DefaultWorstK
	}
	return &MC{run: run, proc: proc, parent: parentSpan, base: base, k: k,
		worst: WorstSet{K: k}}
}

// NewWorker hands engine worker w its sample tracer (nil on a nil MC).
func (m *MC) NewWorker(w int) *SampleTracer {
	if m == nil {
		return nil
	}
	return &SampleTracer{
		run: m.run, proc: m.proc, worker: w, parent: m.parent, base: m.base,
		worst: WorstSet{K: m.k}, idx: -1,
		buf: make([]Event, 0, maxSampleEvents),
	}
}

// FinishWorker merges a worker's worst set into the run's. The engine
// calls it once per cleanly exiting worker; a worker abandoned by the hang
// watchdog never reaches it, so its records are dropped rather than raced
// over. Nil-safe on both sides.
func (m *MC) FinishWorker(t *SampleTracer) {
	if m == nil || t == nil {
		return
	}
	m.mu.Lock()
	for _, rec := range t.worst.Records() {
		m.worst.Add(rec)
	}
	m.mu.Unlock()
}

// Finish returns the run's merged worst-K records (worst first) and, when
// the MC records into a local Recorder, folds them into the run-global
// worst set. Call after every worker has finished.
func (m *MC) Finish() []SampleRecord {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	recs := append([]SampleRecord(nil), m.worst.Records()...)
	m.mu.Unlock()
	m.rec.AddWorst(recs)
	return recs
}

// SampleTracer is one engine worker's span capture. It implements
// obs.Tracer, so an obs.Scope forwards its phase Enter/Exit pairs here;
// the montecarlo engine brackets each sample with BeginSample/EndSample.
// Owned by one worker goroutine; not safe for concurrent use.
type SampleTracer struct {
	run    string
	proc   string
	worker int
	parent uint64
	base   uint64

	worst WorstSet

	idx      int // current global sample index, -1 between samples
	sampleID uint64
	startNs  int64
	seq      uint64
	buf      []Event
	stack    [maxSpanDepth]int32 // buf index per open span, -1 = dropped
	depth    int
	dropped  int
}

// BeginSample opens the sample span for global index idx, resetting the
// scratch buffer. The span's ID is deterministic in (base, idx).
func (t *SampleTracer) BeginSample(idx int) {
	if t == nil {
		return
	}
	t.idx = idx
	t.sampleID = t.base + (uint64(idx)+1)<<sampleSeqBits
	t.seq = 0
	t.dropped = 0
	t.startNs = time.Now().UnixNano()
	t.buf = t.buf[:0]
	t.buf = append(t.buf, Event{
		Name: "sample", Cat: CatSample, ID: t.sampleID, Parent: t.parent,
		Start: t.startNs, Proc: t.proc, Worker: t.worker, Sample: idx,
	})
	t.stack[0] = 0
	t.depth = 1
}

// BeginSpan opens a phase span nested under the innermost open span
// (obs.Tracer). Outside a sample it is a no-op. Over-cap spans are counted
// and dropped, keeping Begin/End pairing intact.
func (t *SampleTracer) BeginSpan(name string, nowNs int64) {
	if t == nil || t.idx < 0 {
		return
	}
	rec := int32(-1)
	if t.depth < maxSpanDepth && len(t.buf) < maxSampleEvents && t.seq < (1<<sampleSeqBits)-2 {
		t.seq++
		t.buf = append(t.buf, Event{
			Name: name, Cat: CatPhase, ID: t.sampleID + t.seq, Parent: t.openParent(),
			Start: nowNs, Proc: t.proc, Worker: t.worker, Sample: t.idx,
		})
		rec = int32(len(t.buf) - 1)
	} else {
		t.dropped++
	}
	if t.depth < maxSpanDepth {
		t.stack[t.depth] = rec
	}
	t.depth++
}

// EndSpan closes the innermost open phase span (obs.Tracer). The sample
// span itself is only closed by EndSample.
func (t *SampleTracer) EndSpan(nowNs int64) {
	if t == nil || t.idx < 0 || t.depth <= 1 {
		return
	}
	t.depth--
	if t.depth < maxSpanDepth {
		if bi := t.stack[t.depth]; bi >= 0 {
			ev := &t.buf[bi]
			ev.Dur = nowNs - ev.Start
		}
	}
}

// openParent returns the ID of the innermost recorded open span.
func (t *SampleTracer) openParent() uint64 {
	for d := t.depth - 1; d >= 0; d-- {
		if d < maxSpanDepth && t.stack[d] >= 0 {
			return t.buf[t.stack[d]].ID
		}
	}
	return t.sampleID
}

// EndSample closes the sample span and files its diagnostic: every sample
// updates the worker's worst-K set, but the span detail is copied out of
// the scratch buffer only when the sample actually enters it. d.Idx, d.Run
// and d.WallNs are filled in here.
func (t *SampleTracer) EndSample(d SampleDiag) {
	if t == nil || t.idx < 0 {
		return
	}
	now := time.Now().UnixNano()
	for t.depth > 1 {
		t.EndSpan(now)
	}
	t.buf[0].Dur = now - t.buf[0].Start
	d.Idx = t.idx
	d.Run = t.run
	d.WallNs = now - t.startNs
	t.buf[0].Note = d.Verdict
	if t.worst.WouldKeep(d) {
		t.worst.Add(SampleRecord{
			Diag:      d,
			Events:    append([]Event(nil), t.buf...),
			Truncated: t.dropped > 0,
		})
	}
	t.idx = -1
}
