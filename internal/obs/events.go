package obs

import (
	"io"
	"log/slog"
	"sync/atomic"
)

// EventSink emits structured solver-trace events (rescue-ladder
// escalations, non-finite rejections, fast→exact fallbacks) through
// log/slog with 1-in-every sampling so 10k-sample runs stay cheap. The
// sampling gate is checked before any attribute is built, so sampled-out
// events cost one atomic add. A nil *EventSink is a no-op.
type EventSink struct {
	log   *slog.Logger
	every int64
	n     atomic.Int64
}

// NewEventSink builds a sink writing slog text lines to w at the given
// level, emitting one event in every `every` (every <= 1 means all).
func NewEventSink(w io.Writer, level slog.Level, every int) *EventSink {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	return NewEventSinkLogger(slog.New(h), every)
}

// NewEventSinkLogger builds a sink on an existing logger.
func NewEventSinkLogger(log *slog.Logger, every int) *EventSink {
	if every < 1 {
		every = 1
	}
	return &EventSink{log: log, every: int64(every)}
}

// take reports whether the next event passes the sampling gate.
func (e *EventSink) take() bool {
	if e == nil {
		return false
	}
	return (e.n.Add(1)-1)%e.every == 0
}

// Taken returns how many events were offered to the sink (sampled or not);
// used by tests and the run summary.
func (e *EventSink) Taken() int64 {
	if e == nil {
		return 0
	}
	return e.n.Load()
}

// Rescue records a rescue-ladder escalation: which ladder stage recovered
// the solve, the sample and simulated time it happened at, and the worst
// node of the triggering convergence failure.
func (e *EventSink) Rescue(sample int, stage string, t float64, worstNode string, iters int) {
	if !e.take() {
		return
	}
	e.log.Warn("rescue",
		slog.Int("sample", sample),
		slog.String("stage", stage),
		slog.Float64("t", t),
		slog.String("worst_node", worstNode),
		slog.Int("iters", iters))
}

// NonFinite records a NaN/Inf iterate or candidate rejection.
func (e *EventSink) NonFinite(sample int, where string, t float64) {
	if !e.take() {
		return
	}
	e.log.Warn("nonfinite",
		slog.Int("sample", sample),
		slog.String("where", where),
		slog.Float64("t", t))
}

// Fallback records a fast-mode chord-Newton solve handing the step back to
// the exact path.
func (e *EventSink) Fallback(sample int, t float64) {
	if !e.take() {
		return
	}
	e.log.Info("fast_fallback",
		slog.Int("sample", sample),
		slog.Float64("t", t))
}

// SampleFailed records a sample the MC policy skipped after all rescues.
func (e *EventSink) SampleFailed(sample int, err error) {
	if !e.take() {
		return
	}
	e.log.Error("sample_failed",
		slog.Int("sample", sample),
		slog.String("err", err.Error()))
}

// Events returns the scope's attached sink (nil-safe), letting deep solver
// code reach the sink through the handle it already has.
func (s *Scope) Events() *EventSink {
	if s == nil {
		return nil
	}
	return s.sink
}
