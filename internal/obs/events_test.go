package obs

import (
	"errors"
	"log/slog"
	"strings"
	"testing"
)

func TestEventSinkSampling(t *testing.T) {
	var b strings.Builder
	sink := NewEventSink(&b, slog.LevelInfo, 3)
	for i := 0; i < 9; i++ {
		sink.Rescue(i, "dc-gmin", 0, "out", 12)
	}
	if got := strings.Count(b.String(), "msg=rescue"); got != 3 {
		t.Fatalf("1-in-3 sampling emitted %d of 9 events, want 3:\n%s", got, b.String())
	}
	if sink.Taken() != 9 {
		t.Fatalf("Taken() = %d, want 9", sink.Taken())
	}
}

func TestEventSinkLevels(t *testing.T) {
	var b strings.Builder
	sink := NewEventSink(&b, slog.LevelWarn, 1)
	sink.Fallback(1, 1e-9)                  // Info: filtered by level
	sink.NonFinite(2, "tran-iterate", 2e-9) // Warn: emitted
	out := b.String()
	if strings.Contains(out, "fast_fallback") {
		t.Fatalf("info event leaked through warn level:\n%s", out)
	}
	if !strings.Contains(out, "nonfinite") || !strings.Contains(out, "where=tran-iterate") {
		t.Fatalf("warn event missing:\n%s", out)
	}
}

func TestEventSinkAttrs(t *testing.T) {
	var b strings.Builder
	sink := NewEventSink(&b, slog.LevelInfo, 1)
	sink.Rescue(17, "tran-halve", 3.5e-10, "n2", 41)
	sink.SampleFailed(18, errors.New("no convergence"))
	out := b.String()
	for _, want := range []string{"sample=17", "stage=tran-halve", "worst_node=n2", "iters=41",
		"sample=18", "msg=sample_failed"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestNilEventSinkIsNoOp(t *testing.T) {
	var sink *EventSink
	sink.Rescue(0, "dc-gmin", 0, "", 0)
	sink.NonFinite(0, "", 0)
	sink.Fallback(0, 0)
	sink.SampleFailed(0, errors.New("x"))
	if sink.Taken() != 0 {
		t.Fatal("nil sink should report zero taken")
	}
}
