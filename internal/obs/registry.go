package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// CounterID, GaugeID and HistID index a metric within its registry. IDs are
// dense, so shards store metric cells in flat slices and every record
// operation is an index plus an atomic add.
type (
	CounterID int32
	GaugeID   int32
	HistID    int32
)

// histDef is one registered histogram: a name and its fixed ascending
// bucket upper bounds (an implicit +Inf overflow bucket follows the last).
type histDef struct {
	name   string
	bounds []int64
}

// Registry holds the metric definitions of one run plus the per-worker
// shards recording into them. Registration is mutex-protected and happens
// once at startup; recording happens on lock-free atomic shard cells; the
// merge at Snapshot is deterministic (int64 sums in registration order), so
// an N-worker snapshot is bit-identical to a 1-worker snapshot of the same
// increments.
type Registry struct {
	mu       sync.Mutex
	counters []string
	gauges   []string
	hists    []histDef
	help     map[string]string
	shards   []*Shard
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// SetHelp attaches Prometheus HELP text to a metric name. The text is
// stored verbatim; WritePrometheus escapes it per the text exposition
// format. Callable any time (help is presentation, not a recording cell).
func (r *Registry) SetHelp(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.help == nil {
		r.help = make(map[string]string)
	}
	r.help[name] = text
}

// Counter registers a counter and returns its ID. All metrics must be
// registered before the first shard is created.
func (r *Registry) Counter(name string) CounterID {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkUnsharded(name)
	r.counters = append(r.counters, name)
	return CounterID(len(r.counters) - 1)
}

// Gauge registers a gauge. Gauges merge additively across shards (each
// worker sets its own cell; the snapshot reports the sum), which fits the
// fleet-style gauges the MC stack needs (workers, in-flight samples).
func (r *Registry) Gauge(name string) GaugeID {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkUnsharded(name)
	r.gauges = append(r.gauges, name)
	return GaugeID(len(r.gauges) - 1)
}

// Histogram registers a fixed-bucket histogram with the given ascending
// bucket upper bounds; values above the last bound land in an implicit
// overflow bucket. The bounds slice is copied.
func (r *Registry) Histogram(name string, bounds []int64) HistID {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkUnsharded(name)
	r.hists = append(r.hists, histDef{name: name, bounds: append([]int64(nil), bounds...)})
	return HistID(len(r.hists) - 1)
}

func (r *Registry) checkUnsharded(name string) {
	if len(r.shards) > 0 {
		panic(fmt.Sprintf("obs: metric %q registered after the first shard", name))
	}
}

// NewShard creates and registers a new per-worker shard sized for the
// current metric set. Safe to call concurrently (worker-pool startup).
func (r *Registry) NewShard() *Shard {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Shard{
		counters: make([]atomic.Int64, len(r.counters)),
		gauges:   make([]atomic.Int64, len(r.gauges)),
		hists:    make([]histShard, len(r.hists)),
	}
	for i := range r.hists {
		s.hists[i].bounds = r.hists[i].bounds
		s.hists[i].counts = make([]atomic.Int64, len(r.hists[i].bounds)+1)
	}
	r.shards = append(r.shards, s)
	return s
}

// Shard is one worker's private set of metric cells. All operations are
// atomic adds/stores on preallocated cells: no locks, no allocation, safe
// for the owning worker to write while a reporter snapshots concurrently.
// A nil *Shard is a no-op recorder.
type Shard struct {
	counters []atomic.Int64
	gauges   []atomic.Int64
	hists    []histShard
}

type histShard struct {
	bounds []int64 // shared, read-only
	counts []atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
}

// Add increments a counter.
func (s *Shard) Add(id CounterID, delta int64) {
	if s == nil {
		return
	}
	s.counters[id].Add(delta)
}

// Set stores a gauge value.
func (s *Shard) Set(id GaugeID, v int64) {
	if s == nil {
		return
	}
	s.gauges[id].Store(v)
}

// Observe records one histogram observation.
func (s *Shard) Observe(id HistID, v int64) {
	if s == nil {
		return
	}
	h := &s.hists[id]
	// Manual binary search: sort.Search's closure can escape under some
	// build modes and this must stay allocation-free.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// CounterSnap is one merged counter value.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one merged (additively) gauge value.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistSnap is one merged histogram: bucket counts (the last entry is the
// overflow bucket), total count/sum and precomputed quantile estimates.
type HistSnap struct {
	Name   string  `json:"name"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts by
// linear interpolation inside the containing bucket. Observations in the
// overflow bucket report the last finite bound.
func (h HistSnap) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := q * float64(h.Count)
	var cum int64
	var lower int64
	for i, c := range h.Counts {
		if c > 0 && float64(cum+c) >= target {
			if i >= len(h.Bounds) {
				return float64(lower) // overflow bucket: no upper bound
			}
			upper := h.Bounds[i]
			frac := (target - float64(cum)) / float64(c)
			return float64(lower) + frac*float64(upper-lower)
		}
		cum += c
		if i < len(h.Bounds) {
			lower = h.Bounds[i]
		}
	}
	return float64(lower)
}

// Mean returns the mean observed value (0 for an empty histogram).
func (h HistSnap) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Snapshot is a merged, immutable view of a registry, JSON-marshalable as
// the -metrics-out document.
type Snapshot struct {
	Counters   []CounterSnap `json:"counters,omitempty"`
	Gauges     []GaugeSnap   `json:"gauges,omitempty"`
	Histograms []HistSnap    `json:"histograms,omitempty"`
	// Help maps metric names to their HELP text (only names that have any).
	Help map[string]string `json:"help,omitempty"`
}

// Snapshot merges every shard in registration order. Counters and
// histogram cells are int64 sums, so the result is independent of how the
// increments were distributed across shards (the merge-determinism
// contract); it is safe to call while workers are still recording (live
// /metrics endpoint), in which case it is a point-in-time lower bound.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var snap Snapshot
	for i, name := range r.counters {
		var v int64
		for _, s := range r.shards {
			v += s.counters[i].Load()
		}
		snap.Counters = append(snap.Counters, CounterSnap{Name: name, Value: v})
	}
	for i, name := range r.gauges {
		var v int64
		for _, s := range r.shards {
			v += s.gauges[i].Load()
		}
		snap.Gauges = append(snap.Gauges, GaugeSnap{Name: name, Value: v})
	}
	for i, def := range r.hists {
		hs := HistSnap{
			Name:   def.name,
			Bounds: def.bounds,
			Counts: make([]int64, len(def.bounds)+1),
		}
		for _, s := range r.shards {
			h := &s.hists[i]
			for b := range hs.Counts {
				hs.Counts[b] += h.counts[b].Load()
			}
			hs.Count += h.count.Load()
			hs.Sum += h.sum.Load()
		}
		hs.P50, hs.P90, hs.P99 = hs.Quantile(0.50), hs.Quantile(0.90), hs.Quantile(0.99)
		snap.Histograms = append(snap.Histograms, hs)
	}
	if len(r.help) > 0 {
		snap.Help = make(map[string]string, len(r.help))
		for k, v := range r.help {
			snap.Help[k] = v
		}
	}
	return snap
}

// Find returns the named histogram snapshot, or a zero HistSnap.
func (s Snapshot) Find(name string) HistSnap {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h
		}
	}
	return HistSnap{}
}

// FindCounter returns the named counter's value (0 when absent).
func (s Snapshot) FindCounter(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// MarshalIndentJSON renders the snapshot as the -metrics-out JSON document.
func (s Snapshot) MarshalIndentJSON() ([]byte, error) {
	blob, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(blob, '\n'), nil
}

// promName sanitizes a metric name into the Prometheus charset.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeHelp escapes HELP text per the Prometheus text exposition format:
// backslash and newline only.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// escapeLabel escapes a label value: backslash, newline, and double quote.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\n\"") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (counters, gauges, and cumulative-bucket histograms). The output
// is byte-deterministic for a given snapshot: each metric family is emitted
// in sorted-name order regardless of registration order, and HELP text and
// label values are escaped per the exposition format (so a scrape can never
// be corrupted by a newline, quote, or backslash in a help string).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	help := func(name, n string) error {
		if s.Help == nil {
			return nil
		}
		txt, ok := s.Help[name]
		if !ok || txt == "" {
			return nil
		}
		_, err := fmt.Fprintf(w, "# HELP %s %s\n", n, escapeHelp(txt))
		return err
	}
	counters := append([]CounterSnap(nil), s.Counters...)
	sort.Slice(counters, func(i, j int) bool { return counters[i].Name < counters[j].Name })
	for _, c := range counters {
		n := promName(c.Name)
		if err := help(c.Name, n); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value); err != nil {
			return err
		}
	}
	gauges := append([]GaugeSnap(nil), s.Gauges...)
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].Name < gauges[j].Name })
	for _, g := range gauges {
		n := promName(g.Name)
		if err := help(g.Name, n); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, g.Value); err != nil {
			return err
		}
	}
	hists := append([]HistSnap(nil), s.Histograms...)
	sort.Slice(hists, func(i, j int) bool { return hists[i].Name < hists[j].Name })
	for _, h := range hists {
		n := promName(h.Name)
		if err := help(h.Name, n); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%d", h.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", n, escapeLabel(le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", n, h.Sum, n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry as a live Prometheus text endpoint
// (conventionally mounted at /metrics next to the pprof handlers).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.Snapshot().WritePrometheus(w)
	})
}

// ExpBounds builds n geometrically spaced integer bucket bounds starting at
// lo (>= 1) with the given factor (> 1), deduplicated and ascending — the
// standard shape for nanosecond latency and iteration-count histograms.
func ExpBounds(lo int64, factor float64, n int) []int64 {
	if lo < 1 || factor <= 1 || n < 1 {
		panic("obs: ExpBounds wants lo >= 1, factor > 1, n >= 1")
	}
	out := make([]int64, 0, n)
	x := float64(lo)
	for i := 0; i < n; i++ {
		v := int64(x + 0.5)
		if len(out) == 0 || v > out[len(out)-1] {
			out = append(out, v)
		}
		x *= factor
	}
	return out
}
