package obs

import (
	"testing"
	"time"
)

func newTestScope(t *testing.T) (*Scope, *Registry) {
	t.Helper()
	SetEnabled(true)
	t.Cleanup(func() { SetEnabled(false) })
	r := NewRegistry()
	pm := NewPhaseMetrics(r)
	sc := NewScope(r.NewShard(), pm)
	if sc == nil {
		t.Fatal("NewScope returned nil with observability enabled")
	}
	return sc, r
}

// TestScopeSelfTimeDisjoint checks the pause-stack accounting: a nested
// span's time accrues only to the inner phase, so phase times are disjoint
// and sum to the instrumented wall time.
func TestScopeSelfTimeDisjoint(t *testing.T) {
	sc, r := newTestScope(t)

	wallStart := time.Now()
	sc.Enter(PhaseSolve)
	time.Sleep(20 * time.Millisecond)
	sc.Enter(PhaseFactor) // pauses solve
	time.Sleep(20 * time.Millisecond)
	sc.Exit() // resumes solve
	time.Sleep(20 * time.Millisecond)
	sc.Exit()
	wall := time.Since(wallStart).Nanoseconds()
	sc.EndSample()

	snap := r.Snapshot()
	solve := snap.Find("mc_phase_newton-solve_ns").Sum
	factor := snap.Find("mc_phase_lu-factor_ns").Sum
	if solve < int64(30*time.Millisecond) {
		t.Fatalf("solve self-time = %v, want >= 30ms", time.Duration(solve))
	}
	if factor < int64(15*time.Millisecond) {
		t.Fatalf("factor self-time = %v, want >= 15ms", time.Duration(factor))
	}
	total := solve + factor
	if total > wall || float64(total) < 0.9*float64(wall) {
		t.Fatalf("phase sum %v vs wall %v: want within [0.9*wall, wall]",
			time.Duration(total), time.Duration(wall))
	}
}

// TestScopeEndSampleResets checks per-sample accumulators clear between
// samples and every phase is observed once per sample.
func TestScopeEndSampleResets(t *testing.T) {
	sc, r := newTestScope(t)
	for i := 0; i < 3; i++ {
		sc.Enter(PhaseMeasure)
		sc.Exit()
		sc.EndSample()
	}
	snap := r.Snapshot()
	for p := Phase(0); p < NumPhases; p++ {
		h := snap.Find("mc_phase_" + p.String() + "_ns")
		if h.Count != 3 {
			t.Fatalf("phase %v observed %d times, want 3", p, h.Count)
		}
	}
}

func TestNewScopeDisabledReturnsNil(t *testing.T) {
	SetEnabled(false)
	r := NewRegistry()
	pm := NewPhaseMetrics(r)
	if sc := NewScope(r.NewShard(), pm); sc != nil {
		t.Fatal("NewScope should return nil while disabled")
	}
}

// TestNilScopeIsNoOp: the whole instrumentation surface must be callable
// on a nil scope — this is what the disabled hot path exercises.
func TestNilScopeIsNoOp(t *testing.T) {
	var sc *Scope
	sc.Enter(PhaseSolve)
	sc.Exit()
	sc.EndSample()
	sc.Observe(0, 1)
	sc.Add(0, 1)
	sc.Set(0, 1)
	sc.SetEvents(nil)
	if sc.Shard() != nil || sc.Events() != nil {
		t.Fatal("nil scope accessors should return nil")
	}
}

// TestScopeAllocFree guards both sides of the gate: nil-scope calls (the
// disabled path) and live-scope span/flush calls (the enabled path) must
// be allocation-free.
func TestScopeAllocFree(t *testing.T) {
	var nilSc *Scope
	if n := testing.AllocsPerRun(200, func() {
		nilSc.Enter(PhaseSolve)
		nilSc.Enter(PhaseFactor)
		nilSc.Exit()
		nilSc.Exit()
		nilSc.EndSample()
	}); n != 0 {
		t.Fatalf("nil scope allocates %v allocs/op, want 0", n)
	}

	sc, _ := newTestScope(t)
	if n := testing.AllocsPerRun(200, func() {
		sc.Enter(PhaseSolve)
		sc.Enter(PhaseFactor)
		sc.Exit()
		sc.Exit()
		sc.EndSample()
	}); n != 0 {
		t.Fatalf("live scope allocates %v allocs/op, want 0", n)
	}
}

func TestScopeStackOverflowIsSafe(t *testing.T) {
	sc, _ := newTestScope(t)
	for i := 0; i < 40; i++ {
		sc.Enter(PhaseSolve)
	}
	for i := 0; i < 40; i++ {
		sc.Exit()
	}
	sc.Exit() // extra exit must not underflow
	sc.EndSample()
}

func TestPhaseString(t *testing.T) {
	want := map[Phase]string{
		PhaseDraw:     "sample-draw",
		PhaseRestamp:  "re-stamp",
		PhaseAssemble: "assemble-J",
		PhaseFactor:   "lu-factor",
		PhaseTriSolve: "tri-solve",
		PhaseSolve:    "newton-solve",
		PhaseMeasure:  "measure",
		Phase(99):     "unknown",
	}
	for p, s := range want {
		if p.String() != s {
			t.Fatalf("Phase(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
}
