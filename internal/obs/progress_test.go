package obs

import (
	"strings"
	"testing"
	"time"
)

func TestProgressLine(t *testing.T) {
	SetEnabled(true)
	t.Cleanup(func() { SetEnabled(false) })
	var b strings.Builder
	p := NewProgress(&b, time.Hour) // ticker never fires in-test
	if p == nil {
		t.Fatal("NewProgress returned nil while enabled")
	}
	p.RunStart(1000, 4)
	for i := 0; i < 250; i++ {
		p.SampleDone(i%50 == 0)
	}
	p.AddRescued(7)
	line := p.line(time.Unix(0, p.start.Load()).Add(2 * time.Second))
	for _, want := range []string{"mc 250/1000", "(25.0%)", "125.0 samp/s", "fail 2.0%", "rescued 7", "workers 4"} {
		if !strings.Contains(line, want) {
			t.Fatalf("progress line missing %q: %s", want, line)
		}
	}
	p.RunEnd()
	if out := b.String(); !strings.Contains(out, "done") {
		t.Fatalf("RunEnd should emit a final line: %q", out)
	}
}

func TestProgressDisabledAndNil(t *testing.T) {
	SetEnabled(false)
	var b strings.Builder
	if p := NewProgress(&b, time.Second); p != nil {
		t.Fatal("NewProgress should return nil while disabled")
	}
	var p *Progress
	p.RunStart(10, 1)
	p.SampleDone(false)
	p.AddRescued(1)
	p.RunEnd()
}

func TestProgressExtra(t *testing.T) {
	SetEnabled(true)
	t.Cleanup(func() { SetEnabled(false) })
	var b strings.Builder
	p := NewProgress(&b, time.Hour)
	p.Extra = func() string { return "jac=42" }
	p.RunStart(10, 1)
	p.RunEnd()
	if !strings.Contains(b.String(), "jac=42") {
		t.Fatalf("Extra text missing from output: %q", b.String())
	}
}
