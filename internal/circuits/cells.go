package circuits

import (
	"fmt"

	"vstat/internal/device"
	"vstat/internal/spice"
)

// AddNOR2 appends a two-input static CMOS NOR gate: series PMOS pull-up
// (input a on the top transistor), parallel NMOS pull-down.
func AddNOR2(c *spice.Circuit, name string, a, b, out, vdd int, sz Sizing, f Factory) {
	mid := c.Node(name + ".mid")
	c.AddMOS(name+".MPA", mid, a, vdd, vdd, f(device.PMOS, sz.WP, sz.L))
	c.AddMOS(name+".MPB", out, b, mid, vdd, f(device.PMOS, sz.WP, sz.L))
	c.AddMOS(name+".MNA", out, a, spice.Gnd, spice.Gnd, f(device.NMOS, sz.WN, sz.L))
	c.AddMOS(name+".MNB", out, b, spice.Gnd, spice.Gnd, f(device.NMOS, sz.WN, sz.L))
}

// AddBufferChain appends n inverters in series from in, returning the final
// output node. Odd n inverts.
func AddBufferChain(c *spice.Circuit, name string, in, vdd int, n int, sz Sizing, f Factory) int {
	node := in
	for i := 0; i < n; i++ {
		next := c.Node(fmt.Sprintf("%s.n%d", name, i))
		AddInverter(c, fmt.Sprintf("%s.inv%d", name, i), node, next, vdd, sz, f)
		node = next
	}
	return node
}

// NOR2FO builds a fanout-of-k NOR2 bench: input a switches, input b is tied
// low, the output drives k NOR2 loads.
func NOR2FO(k int, vdd float64, sz Sizing, f Factory) *GateBench {
	c := spice.New()
	vddN := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	vs := c.AddV("VDD", vddN, spice.Gnd, spice.DC(vdd))
	vi := c.AddV("VIN", in, spice.Gnd, DefaultPulse(vdd))
	AddNOR2(c, "XDRV", in, spice.Gnd, out, vddN, sz, f)
	for i := 0; i < k; i++ {
		lo := c.Node(loadName(i))
		AddNOR2(c, "XL"+string(rune('0'+i)), out, out, lo, vddN, sz, f)
	}
	return &GateBench{Ckt: c, VddSrc: vs, VinSrc: vi, In: in, Out: out, Vdd: vdd}
}

// RingOscillator is an odd-stage inverter ring with per-stage load caps,
// used for frequency/leakage style metrics without an external stimulus.
type RingOscillator struct {
	Ckt    *spice.Circuit
	VddSrc int
	Stages []int // stage output nodes
	Vdd    float64
	N      int
}

// NewRingOscillator builds an n-stage (odd) ring.
func NewRingOscillator(n int, vdd float64, sz Sizing, f Factory) *RingOscillator {
	if n < 3 || n%2 == 0 {
		panic("circuits: ring oscillator needs an odd stage count >= 3")
	}
	c := spice.New()
	vddN := c.Node("vdd")
	vs := c.AddV("VDD", vddN, spice.Gnd, spice.DC(vdd))
	nodes := make([]int, n)
	for i := range nodes {
		nodes[i] = c.Node(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < n; i++ {
		AddInverter(c, fmt.Sprintf("XS%d", i), nodes[i], nodes[(i+1)%n], vddN, sz, f)
	}
	return &RingOscillator{Ckt: c, VddSrc: vs, Stages: nodes, Vdd: vdd, N: n}
}

// KickIC returns transient initial conditions that break the metastable
// symmetry: alternating rails with one doubled stage (the odd stage count
// guarantees oscillation from any non-metastable state).
func (r *RingOscillator) KickIC() map[int]float64 {
	ic := make(map[int]float64, r.N)
	v := 0.0
	for _, n := range r.Stages {
		ic[n] = v
		v = r.Vdd - v
	}
	return ic
}

// Frequency runs a transient and measures the oscillation frequency from
// the last two rising crossings of stage 0.
func (r *RingOscillator) Frequency(stop, step float64) (float64, error) {
	res, err := r.Ckt.Transient(spice.TranOpts{Stop: stop, Step: step, UIC: true, IC: r.KickIC()})
	if err != nil {
		return 0, err
	}
	return r.frequencyFrom(res)
}

// frequencyFrom extracts the settled oscillation frequency from a finished
// transient of this ring.
func (r *RingOscillator) frequencyFrom(res *spice.TranResult) (float64, error) {
	v := res.V(r.Stages[0])
	half := r.Vdd / 2
	var crossings []float64
	for i := 1; i < len(res.Time); i++ {
		if v[i-1] < half && v[i] >= half {
			f := (half - v[i-1]) / (v[i] - v[i-1])
			crossings = append(crossings, res.Time[i-1]+f*(res.Time[i]-res.Time[i-1]))
		}
	}
	if len(crossings) < 3 {
		return 0, fmt.Errorf("circuits: ring did not oscillate (%d crossings)", len(crossings))
	}
	// Average the last few periods for a settled estimate.
	last := crossings[len(crossings)-1]
	prev := crossings[len(crossings)-2]
	return 1 / (last - prev), nil
}
