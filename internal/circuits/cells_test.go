package circuits

import (
	"math"
	"testing"

	"vstat/internal/spice"
)

func TestNOR2Switches(t *testing.T) {
	sz := Sizing{WP: 1200e-9, WN: 300e-9, L: 40e-9} // NOR needs strong series P
	b := NOR2FO(3, 0.9, sz, nominalVS)
	res, err := b.Ckt.Transient(spice.TranOpts{Stop: PulsePeriod, Step: 2e-12})
	if err != nil {
		t.Fatal(err)
	}
	v := res.V(b.Out)
	min, max := v[0], v[0]
	for _, x := range v {
		min = math.Min(min, x)
		max = math.Max(max, x)
	}
	// b tied low, a pulses: out = NOT a, full swing.
	if min > 0.05 || max < 0.85 {
		t.Fatalf("NOR2 swing [%g, %g]", min, max)
	}
	// Out starts high (a low).
	if v[0] < 0.85 {
		t.Fatalf("NOR2 initial out %g", v[0])
	}
}

func TestBufferChainPropagates(t *testing.T) {
	c := spice.New()
	vdd := c.Node("vdd")
	in := c.Node("in")
	c.AddV("VDD", vdd, spice.Gnd, spice.DC(0.9))
	c.AddV("VIN", in, spice.Gnd, spice.Pulse{V0: 0, V1: 0.9, Delay: 20e-12, Rise: 10e-12, Fall: 10e-12, Width: 300e-12})
	sz := Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	out := AddBufferChain(c, "XB", in, vdd, 4, sz, nominalVS) // even: non-inverting
	res, err := c.Transient(spice.TranOpts{Stop: 200e-12, Step: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// After the input rise, out follows high with some delay.
	if vEnd := res.At(out, 200e-12); vEnd < 0.85 {
		t.Fatalf("chain output %g", vEnd)
	}
	tIn, _ := crossTest(res.Time, res.V(in), 0.45, true, 0)
	tOut, err := crossTest(res.Time, res.V(out), 0.45, true, tIn)
	if err != nil {
		t.Fatal(err)
	}
	if d := tOut - tIn; d <= 0 || d > 100e-12 {
		t.Fatalf("chain delay %g", d)
	}
}

func TestRingOscillatorFrequency(t *testing.T) {
	sz := Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	ro := NewRingOscillator(5, 0.9, sz, nominalVS)
	f, err := ro.Frequency(1.2e-9, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	// Period ≈ 2·N·tinv with tinv a few ps: expect tens of GHz.
	if f < 5e9 || f > 200e9 {
		t.Fatalf("ring frequency %g Hz implausible", f)
	}
	// More stages must oscillate slower.
	ro7 := NewRingOscillator(7, 0.9, sz, nominalVS)
	f7, err := ro7.Frequency(1.6e-9, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if f7 >= f {
		t.Fatalf("7-stage ring %g not slower than 5-stage %g", f7, f)
	}
}

func TestRingOscillatorPanicsOnEvenStages(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for even stage count")
		}
	}()
	NewRingOscillator(4, 0.9, Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}, nominalVS)
}
