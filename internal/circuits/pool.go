package circuits

import (
	"context"
	"fmt"

	"vstat/internal/device"
	"vstat/internal/lifecycle"
	"vstat/internal/obs"
	"vstat/internal/spice"
)

// This file is the pooled Monte Carlo layer: each bench is built once per
// worker and re-stamped per sample. A Recorder remembers the geometry of
// every factory draw made while building the template; Restat replays those
// draws against a fresh (statistical) factory and installs the new device
// cards in place via Circuit.SetMOSDevice, so the per-sample cost is six to
// a dozen parameter-card draws instead of a netlist rebuild. Replayed draws
// happen in the original build order, which keeps the per-sample RNG stream
// — and therefore every sampled metric — bit-identical to the unpooled
// path.

// Stamp records the polarity and drawn geometry of one factory call.
type Stamp struct {
	Kind device.Kind
	W, L float64
}

// Recorder captures the sequence of factory draws made while building a
// circuit, in call order.
type Recorder struct {
	Stamps []Stamp
}

// Wrap returns a factory that delegates to f while recording each draw.
func (r *Recorder) Wrap(f Factory) Factory {
	return func(k device.Kind, w, l float64) device.Device {
		r.Stamps = append(r.Stamps, Stamp{Kind: k, W: w, L: l})
		return f(k, w, l)
	}
}

// Restamp redraws every recorded device from f in record order and installs
// the fresh cards into c. It requires the i-th recorded draw to correspond
// to the i-th AddMOS call, which holds for every builder in this package
// that passes the factory result directly to AddMOS (inverter, NAND/NOR,
// DFF, ring). The SRAM cell draws in a different order and has its own
// bespoke pooled type.
func (r *Recorder) Restamp(c *spice.Circuit, f Factory) {
	if len(r.Stamps) != c.NumMOS() {
		panic(fmt.Sprintf("circuits: recorder has %d stamps for %d devices", len(r.Stamps), c.NumMOS()))
	}
	for i, st := range r.Stamps {
		c.SetMOSDevice(i, f(st.Kind, st.W, st.L))
	}
}

// PooledGate is a reusable delay testbench: the netlist, node map, solver
// scratch, and waveform storage persist across samples; only the device
// parameter cards change.
type PooledGate struct {
	*GateBench
	rec Recorder

	// Res is the reusable transient result, refilled by Transient.
	Res spice.TranResult

	// Fast enables the carried-Jacobian/warm-start transient path; leave
	// unset for bit-identical waveforms with the unpooled bench.
	Fast bool

	warm []float64 // nominal DC operating point (fast-mode Newton seed)
}

func newPooledGate(b *GateBench, rec Recorder, fast bool) (*PooledGate, error) {
	p := &PooledGate{GateBench: b, rec: rec, Fast: fast}
	if fast {
		// Solve the nominal operating point once per template; every
		// sample's DC Newton starts here. Perturbations are small, so a
		// few chord iterations suffice.
		op, err := b.Ckt.OP()
		if err != nil {
			return nil, fmt.Errorf("circuits: pooled bench nominal OP: %w", err)
		}
		p.warm = append([]float64(nil), op.Raw()...)
	}
	return p, nil
}

// NewPooledInverterFO builds a fanout-of-k inverter bench template with
// nominal devices. fast selects the carried-Jacobian/warm-start solver path.
func NewPooledInverterFO(k int, vdd float64, sz Sizing, nominal Factory, fast bool) (*PooledGate, error) {
	var rec Recorder
	b := InverterFO(k, vdd, sz, rec.Wrap(nominal))
	return newPooledGate(b, rec, fast)
}

// NewPooledNAND2FO builds a fanout-of-k NAND2 bench template with nominal
// devices.
func NewPooledNAND2FO(k int, vdd float64, sz Sizing, nominal Factory, fast bool) (*PooledGate, error) {
	var rec Recorder
	b := NAND2FO(k, vdd, sz, rec.Wrap(nominal))
	return newPooledGate(b, rec, fast)
}

// Restat re-stamps every transistor from f (statistical factories draw
// fresh mismatch per device) without touching topology or scratch.
func (p *PooledGate) Restat(f Factory) { p.rec.Restamp(p.Ckt, f) }

// SetObs attaches an observability scope to the template circuit (nil-safe;
// see spice.Circuit.SetObs).
func (p *PooledGate) SetObs(sc *obs.Scope) { p.Ckt.SetObs(sc) }

// AttachTracer implements montecarlo.TraceAttacher: phase spans and rescue
// rungs of the template circuit flow to the worker's sample tracer.
func (p *PooledGate) AttachTracer(t obs.Tracer) { p.Ckt.AttachTracer(t) }

// RescueCounts implements montecarlo.RescueReporter: the nonzero
// rescue-ladder counters accumulated by this worker's template circuit.
func (p *PooledGate) RescueCounts() map[string]int64 {
	return p.Ckt.Stats().RescueCounts()
}

// SolverWork implements montecarlo.WorkReporter: cumulative Newton
// iterations and rescue stages, the flight recorder's ranking inputs.
func (p *PooledGate) SolverWork() (iters, rescues int64) {
	return p.Ckt.Stats().Work()
}

// ArmSample implements montecarlo.SampleArmer: the template circuit
// enforces ctx and the per-sample budget at Newton iteration boundaries.
func (p *PooledGate) ArmSample(ctx context.Context, b lifecycle.Budget) {
	p.Ckt.ArmSample(ctx, b)
}

// Transient runs the bench transient into the reusable result.
func (p *PooledGate) Transient(stop, step float64) (*spice.TranResult, error) {
	opts := spice.TranOpts{Stop: stop, Step: step}
	if p.Fast {
		opts.Fast = true
		opts.Guess = p.warm
	}
	if err := p.Ckt.TransientInto(opts, &p.Res); err != nil {
		return nil, err
	}
	return &p.Res, nil
}

// PooledDFF is a reusable flip-flop bench for setup/hold Monte Carlo.
type PooledDFF struct {
	*DFF
	rec Recorder

	// Res is the reusable transient result for the bisection trials.
	Res spice.TranResult

	// Fast selects the carried-Jacobian transient path (setup/hold trials
	// start from explicit initial conditions, so there is no DC warm
	// start).
	Fast bool
}

// NewPooledDFF builds the register template with nominal devices.
func NewPooledDFF(vdd float64, sz DFFSizing, nominal Factory, fast bool) *PooledDFF {
	p := &PooledDFF{Fast: fast}
	p.DFF = NewDFF(vdd, sz, p.rec.Wrap(nominal))
	return p
}

// Restat re-stamps every transistor from f.
func (p *PooledDFF) Restat(f Factory) { p.rec.Restamp(p.Ckt, f) }

// SetObs attaches an observability scope to the template circuit.
func (p *PooledDFF) SetObs(sc *obs.Scope) { p.Ckt.SetObs(sc) }

// AttachTracer implements montecarlo.TraceAttacher.
func (p *PooledDFF) AttachTracer(t obs.Tracer) { p.Ckt.AttachTracer(t) }

// RescueCounts implements montecarlo.RescueReporter.
func (p *PooledDFF) RescueCounts() map[string]int64 {
	return p.Ckt.Stats().RescueCounts()
}

// SolverWork implements montecarlo.WorkReporter.
func (p *PooledDFF) SolverWork() (iters, rescues int64) {
	return p.Ckt.Stats().Work()
}

// ArmSample implements montecarlo.SampleArmer.
func (p *PooledDFF) ArmSample(ctx context.Context, b lifecycle.Budget) {
	p.Ckt.ArmSample(ctx, b)
}

// PooledRing is a reusable ring-oscillator bench.
type PooledRing struct {
	*RingOscillator
	rec  Recorder
	Res  spice.TranResult
	Fast bool
}

// NewPooledRing builds an n-stage ring template with nominal devices.
func NewPooledRing(n int, vdd float64, sz Sizing, nominal Factory, fast bool) *PooledRing {
	p := &PooledRing{Fast: fast}
	p.RingOscillator = NewRingOscillator(n, vdd, sz, p.rec.Wrap(nominal))
	return p
}

// Restat re-stamps every transistor from f.
func (p *PooledRing) Restat(f Factory) { p.rec.Restamp(p.Ckt, f) }

// SetObs attaches an observability scope to the template circuit.
func (p *PooledRing) SetObs(sc *obs.Scope) { p.Ckt.SetObs(sc) }

// AttachTracer implements montecarlo.TraceAttacher.
func (p *PooledRing) AttachTracer(t obs.Tracer) { p.Ckt.AttachTracer(t) }

// RescueCounts implements montecarlo.RescueReporter.
func (p *PooledRing) RescueCounts() map[string]int64 {
	return p.Ckt.Stats().RescueCounts()
}

// SolverWork implements montecarlo.WorkReporter.
func (p *PooledRing) SolverWork() (iters, rescues int64) {
	return p.Ckt.Stats().Work()
}

// ArmSample implements montecarlo.SampleArmer.
func (p *PooledRing) ArmSample(ctx context.Context, b lifecycle.Budget) {
	p.Ckt.ArmSample(ctx, b)
}

// Frequency measures the oscillation frequency like
// RingOscillator.Frequency, but reuses the pooled transient storage.
func (p *PooledRing) Frequency(stop, step float64) (float64, error) {
	opts := spice.TranOpts{Stop: stop, Step: step, UIC: true, IC: p.KickIC(), Fast: p.Fast}
	if err := p.Ckt.TransientInto(opts, &p.Res); err != nil {
		return 0, err
	}
	return p.frequencyFrom(&p.Res)
}

// PooledSRAM holds prebuilt left/right butterfly half-circuits sharing the
// six devices of one template cell. The SRAM cell draws its devices in
// struct order (PDL, PDR, PUL, PUR, PGL, PGR) while the netlist stamps them
// in a different order and into two circuits at once, so the re-stamp
// mapping is explicit rather than recorded.
type PooledSRAM struct {
	Cell *SRAMCell
	Vdd  float64

	// Fast enables the carried-Jacobian DC path between sweep points.
	Fast bool

	cL, cR         *spice.Circuit
	wlL, wlR       int // VWL source indices (read/hold switch)
	forceL, forceR int
	obsL, obsR     int

	// In is the shared sweep grid; OutL/OutR are the reusable observed
	// curves. Butterfly's returned curves alias this storage.
	In, OutL, OutR []float64
}

// NewPooledSRAM builds the two half-circuits once for an n-point sweep.
func NewPooledSRAM(vdd float64, sz SRAMSizing, nominal Factory, n int, fast bool) *PooledSRAM {
	cell := NewSRAMCell(vdd, sz, nominal)
	p := &PooledSRAM{Cell: cell, Vdd: vdd, Fast: fast}
	p.cL, p.forceL, p.obsL = cell.butterflyCircuit("L", false)
	p.cR, p.forceR, p.obsR = cell.butterflyCircuit("R", false)
	p.wlL = p.cL.VSourceIndex("VWL")
	p.wlR = p.cR.VSourceIndex("VWL")
	p.In = make([]float64, n)
	for i := range p.In {
		p.In[i] = vdd * float64(i) / float64(n-1)
	}
	p.OutL = make([]float64, n)
	p.OutR = make([]float64, n)
	return p
}

// Restat redraws the six cell devices from f in NewSRAMCell order (keeping
// the statistical RNG stream identical to an unpooled NewSRAMCell call) and
// installs them into both half-circuits.
func (p *PooledSRAM) Restat(f Factory) {
	c := p.Cell
	c.PDL = f(device.NMOS, c.Sz.WPD, c.Sz.L)
	c.PDR = f(device.NMOS, c.Sz.WPD, c.Sz.L)
	c.PUL = f(device.PMOS, c.Sz.WPU, c.Sz.L)
	c.PUR = f(device.PMOS, c.Sz.WPU, c.Sz.L)
	c.PGL = f(device.NMOS, c.Sz.WPG, c.Sz.L)
	c.PGR = f(device.NMOS, c.Sz.WPG, c.Sz.L)
	for _, ckt := range [2]*spice.Circuit{p.cL, p.cR} {
		// butterflyCircuit AddMOS order: PUL, PDL, PUR, PDR, PGL, PGR.
		ckt.SetMOSDevice(0, c.PUL)
		ckt.SetMOSDevice(1, c.PDL)
		ckt.SetMOSDevice(2, c.PUR)
		ckt.SetMOSDevice(3, c.PDR)
		ckt.SetMOSDevice(4, c.PGL)
		ckt.SetMOSDevice(5, c.PGR)
	}
}

// SetObs attaches an observability scope to both half-circuits: the sweeps
// run sequentially on one worker goroutine, so sharing a scope is safe and
// keeps the sample's phase accounting in one place.
func (p *PooledSRAM) SetObs(sc *obs.Scope) {
	p.cL.SetObs(sc)
	p.cR.SetObs(sc)
}

// SetObsSample tags both half-circuits' traces with the MC sample index.
func (p *PooledSRAM) SetObsSample(idx int) {
	p.cL.SetObsSample(idx)
	p.cR.SetObsSample(idx)
}

// Stats returns the summed solver counters of both half-circuits.
func (p *PooledSRAM) Stats() spice.SolverStats {
	return p.cL.Stats().Add(p.cR.Stats())
}

// AttachTracer implements montecarlo.TraceAttacher on both half-circuits
// (they share a scope, so the tracer is simply set twice).
func (p *PooledSRAM) AttachTracer(t obs.Tracer) {
	p.cL.AttachTracer(t)
	p.cR.AttachTracer(t)
}

// RescueCounts implements montecarlo.RescueReporter over both half-circuits.
func (p *PooledSRAM) RescueCounts() map[string]int64 {
	return p.Stats().RescueCounts()
}

// SolverWork implements montecarlo.WorkReporter over both half-circuits.
func (p *PooledSRAM) SolverWork() (iters, rescues int64) {
	return p.Stats().Work()
}

// ResetStats zeroes the solver counters of both half-circuits.
func (p *PooledSRAM) ResetStats() {
	p.cL.ResetStats()
	p.cR.ResetStats()
}

// ArmSample implements montecarlo.SampleArmer on both half-circuits. Each
// half gets its own wall deadline (the halves solve sequentially, so a
// sample may spend up to 2·Wall at iteration boundaries before tripping);
// the montecarlo watchdog still enforces the sample-level Wall+grace bound.
func (p *PooledSRAM) ArmSample(ctx context.Context, b lifecycle.Budget) {
	p.cL.ArmSample(ctx, b)
	p.cR.ArmSample(ctx, b)
}

// SetLinearCore selects the Jacobian factorization backend of both
// half-circuits (see spice.LinearCore).
func (p *PooledSRAM) SetLinearCore(core spice.LinearCore) {
	p.cL.LinearCore = core
	p.cR.LinearCore = core
}

// MatrixInfo reports the MNA matrix shape of one half-circuit (the two are
// structurally identical mirrors); see spice.Circuit.MatrixInfo.
func (p *PooledSRAM) MatrixInfo() (n, nnz int, sparse bool) {
	return p.cL.MatrixInfo()
}

// Butterfly sweeps both prebuilt half-circuits, switching the word line for
// READ or HOLD, and returns the two transfer curves. The curves alias the
// pooled buffers and are only valid until the next Butterfly call.
func (p *PooledSRAM) Butterfly(read bool) (left, right ButterflyCurve, err error) {
	wl := 0.0
	if read {
		wl = p.Vdd
	}
	p.cL.SetVSource(p.wlL, spice.DC(wl))
	p.cR.SetVSource(p.wlR, spice.DC(wl))
	if err = p.cL.DCSweepObserve(p.forceL, p.In, p.obsL, p.OutL, p.Fast); err != nil {
		return
	}
	if err = p.cR.DCSweepObserve(p.forceR, p.In, p.obsR, p.OutR, p.Fast); err != nil {
		return
	}
	left = ButterflyCurve{In: p.In, Out: p.OutL}
	right = ButterflyCurve{In: p.In, Out: p.OutR}
	return
}
