package circuits

import (
	"vstat/internal/device"
	"vstat/internal/spice"
)

// SRAMSizing configures the 6T cell transistor widths; the paper's Fig. 9
// cell uses N (pull-down) = 150 nm at L = 40 nm. Pull-up and pass-gate
// follow a standard read-stable ratioing.
type SRAMSizing struct {
	WPD, WPU, WPG, L float64
}

// DefaultSRAMSizing returns the Fig. 9 cell sizing.
func DefaultSRAMSizing() SRAMSizing {
	return SRAMSizing{WPD: 150e-9, WPU: 80e-9, WPG: 110e-9, L: 40e-9}
}

// SRAMCell holds the six transistor instances of one cell, so the same
// mismatched devices can be re-netlisted for the left and right butterfly
// half-measurements (device instances are stateless and shareable).
type SRAMCell struct {
	Sz  SRAMSizing
	Vdd float64

	PDL, PDR device.Device // pull-down NMOS, left/right
	PUL, PUR device.Device // pull-up PMOS
	PGL, PGR device.Device // pass-gate NMOS
}

// NewSRAMCell draws the six transistor instances from the factory.
func NewSRAMCell(vdd float64, sz SRAMSizing, f Factory) *SRAMCell {
	return &SRAMCell{
		Sz:  sz,
		Vdd: vdd,
		PDL: f(device.NMOS, sz.WPD, sz.L),
		PDR: f(device.NMOS, sz.WPD, sz.L),
		PUL: f(device.PMOS, sz.WPU, sz.L),
		PUR: f(device.PMOS, sz.WPU, sz.L),
		PGL: f(device.NMOS, sz.WPG, sz.L),
		PGR: f(device.NMOS, sz.WPG, sz.L),
	}
}

// butterflyCircuit nets the full cell with node q forced by a sweepable
// source, returning the circuit, the source index and the observed node.
// side selects which storage node is forced: "L" forces q and observes qb,
// "R" forces qb and observes q. read=true puts the cell in READ condition
// (word line high, both bitlines held at Vdd); read=false is HOLD (word
// line off).
func (s *SRAMCell) butterflyCircuit(side string, read bool) (c *spice.Circuit, force int, observe int) {
	c = spice.New()
	vddN := c.Node("vdd")
	q := c.Node("q")
	qb := c.Node("qb")
	wl := c.Node("wl")
	bl := c.Node("bl")
	br := c.Node("br")

	c.AddV("VDD", vddN, spice.Gnd, spice.DC(s.Vdd))
	wlV := 0.0
	if read {
		wlV = s.Vdd
	}
	c.AddV("VWL", wl, spice.Gnd, spice.DC(wlV))
	c.AddV("VBL", bl, spice.Gnd, spice.DC(s.Vdd))
	c.AddV("VBR", br, spice.Gnd, spice.DC(s.Vdd))

	// Cross-coupled inverters.
	c.AddMOS("PUL", q, qb, vddN, vddN, s.PUL)
	c.AddMOS("PDL", q, qb, spice.Gnd, spice.Gnd, s.PDL)
	c.AddMOS("PUR", qb, q, vddN, vddN, s.PUR)
	c.AddMOS("PDR", qb, q, spice.Gnd, spice.Gnd, s.PDR)
	// Access transistors.
	c.AddMOS("PGL", bl, wl, q, spice.Gnd, s.PGL)
	c.AddMOS("PGR", br, wl, qb, spice.Gnd, s.PGR)

	if side == "L" {
		force = c.AddV("VFORCE", q, spice.Gnd, spice.DC(0))
		observe = qb
	} else {
		force = c.AddV("VFORCE", qb, spice.Gnd, spice.DC(0))
		observe = q
	}
	return c, force, observe
}

// ButterflyCurve is one voltage-transfer lobe of the butterfly plot:
// Out[i] is the response of the opposite storage node when the forced node
// is held at In[i].
type ButterflyCurve struct {
	In, Out []float64
}

// Butterfly sweeps both half-cells and returns the two transfer curves of
// the butterfly plot (paper Fig. 9 a/d). n is the number of sweep points.
func (s *SRAMCell) Butterfly(read bool, n int) (left, right ButterflyCurve, err error) {
	sweep := make([]float64, n)
	for i := range sweep {
		sweep[i] = s.Vdd * float64(i) / float64(n-1)
	}
	for _, side := range []string{"L", "R"} {
		c, force, observe := s.butterflyCircuit(side, read)
		ops, e := c.DCSweep(force, sweep)
		if e != nil {
			return left, right, e
		}
		out := make([]float64, n)
		for i, op := range ops {
			out[i] = op.V(observe)
		}
		cv := ButterflyCurve{In: sweep, Out: out}
		if side == "L" {
			left = cv
		} else {
			right = cv
		}
	}
	return left, right, nil
}
