package circuits

import (
	"vstat/internal/device"
	"vstat/internal/spice"
)

// DFF is the master–slave register of paper Fig. 8(a): two latch stages
// coupled by NMOS-only pass transistors. The master pass gate is driven by
// clkb (transparent while CLK is low) and the slave pass gate by clk, so
// data is captured on the rising CLK edge. Weak feedback inverters restore
// the level degraded by the NMOS passes.
type DFF struct {
	Ckt                  *spice.Circuit
	VddSrc, ClkSrc, DSrc int
	D, Clk, Q            int
	M1, M2, S1, ClkB     int // internal nodes, exposed for initial conditions
	Vdd                  float64
}

// ICHoldingZero returns transient initial conditions with the register
// holding Q=0 and the clock low (master transparent at D=0). Latches are
// bistable, so Monte Carlo transients must start from explicit conditions
// rather than an arbitrary operating point.
func (ff *DFF) ICHoldingZero() map[int]float64 {
	return map[int]float64{
		ff.D: 0, ff.Clk: 0, ff.ClkB: ff.Vdd,
		ff.M1: 0, ff.M2: ff.Vdd,
		ff.S1: ff.Vdd, ff.Q: 0,
	}
}

// DFFSizing configures the flip-flop transistor sizes; the paper gives
// P/N = 600 nm/300 nm for the forward inverters at L = 40 nm.
type DFFSizing struct {
	Fwd  Sizing  // forward latch inverters and output buffer
	Fb   Sizing  // weak feedback inverters
	WPas float64 // NMOS pass-transistor width
	L    float64
}

// DefaultDFFSizing returns the paper's Fig. 8 sizing: forward inverters
// P/N = 600/300 nm, quarter-strength feedback, 300 nm passes, L = 40 nm.
func DefaultDFFSizing() DFFSizing {
	return DFFSizing{
		Fwd: Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9},
		// The keeper must lose the write fight against the level-degraded
		// NMOS pass across mismatch: narrow and long-channel.
		Fb:   Sizing{WP: 100e-9, WN: 50e-9, L: 80e-9},
		WPas: 450e-9,
		L:    40e-9,
	}
}

// NewDFF builds the register with externally driven D and CLK sources
// (waveforms are installed by the caller via SetVSource).
func NewDFF(vdd float64, sz DFFSizing, f Factory) *DFF {
	c := spice.New()
	vddN := c.Node("vdd")
	d := c.Node("d")
	clk := c.Node("clk")
	clkb := c.Node("clkb")
	m1 := c.Node("m1") // master storage
	m2 := c.Node("m2") // master inverted
	s1 := c.Node("s1") // slave storage
	q := c.Node("q")

	vs := c.AddV("VDD", vddN, spice.Gnd, spice.DC(vdd))
	ds := c.AddV("VD", d, spice.Gnd, spice.DC(0))
	cs := c.AddV("VCLK", clk, spice.Gnd, spice.DC(0))

	// Clock inverter generates clkb on-chip.
	AddInverter(c, "XCKB", clk, clkb, vddN, sz.Fwd, f)

	// Master: pass gate transparent while CLK low.
	c.AddMOS("TPAS1", m1, clkb, d, spice.Gnd, f(device.NMOS, sz.WPas, sz.L))
	AddInverter(c, "XM1", m1, m2, vddN, sz.Fwd, f)
	AddInverter(c, "XM2", m2, m1, vddN, sz.Fb, f) // weak keeper

	// Slave: pass gate transparent while CLK high.
	c.AddMOS("TPAS2", s1, clk, m2, spice.Gnd, f(device.NMOS, sz.WPas, sz.L))
	AddInverter(c, "XS1", s1, q, vddN, sz.Fwd, f)
	AddInverter(c, "XS2", q, s1, vddN, sz.Fb, f) // weak keeper

	return &DFF{
		Ckt: c, VddSrc: vs, ClkSrc: cs, DSrc: ds,
		D: d, Clk: clk, Q: q,
		M1: m1, M2: m2, S1: s1, ClkB: clkb,
		Vdd: vdd,
	}
}
