// Package circuits builds the paper's benchmark circuits — fanout-loaded
// INV and NAND2 standard cells, the NMOS-pass-transistor master–slave D
// flip-flop of Fig. 8(a), and the 6T SRAM cell of Fig. 9 — as spice
// netlists over any compact model (VS or golden) supplied through a device
// Factory. Every transistor instance is created through the factory, so a
// statistical factory yields an independently mismatched instance per
// device, which is exactly the within-die Monte Carlo setting of the paper.
package circuits

import (
	"vstat/internal/device"
	"vstat/internal/spice"
)

// Factory creates one transistor instance of the given polarity and drawn
// geometry. Statistical factories draw fresh mismatch deltas on every call;
// nominal factories return unperturbed cards.
type Factory func(k device.Kind, w, l float64) device.Device

// Sizing gives the P and N widths and the common gate length of a cell.
type Sizing struct {
	WP, WN, L float64
}

// Scale returns the sizing with both widths multiplied by k.
func (s Sizing) Scale(k float64) Sizing {
	return Sizing{WP: s.WP * k, WN: s.WN * k, L: s.L}
}

// AddInverter appends a static CMOS inverter between in and out.
func AddInverter(c *spice.Circuit, name string, in, out, vdd int, sz Sizing, f Factory) {
	c.AddMOS(name+".MP", out, in, vdd, vdd, f(device.PMOS, sz.WP, sz.L))
	c.AddMOS(name+".MN", out, in, spice.Gnd, spice.Gnd, f(device.NMOS, sz.WN, sz.L))
}

// AddNAND2 appends a two-input static CMOS NAND gate: parallel PMOS pull-up,
// series NMOS pull-down (input a on the bottom transistor).
func AddNAND2(c *spice.Circuit, name string, a, b, out, vdd int, sz Sizing, f Factory) {
	mid := c.Node(name + ".mid")
	c.AddMOS(name+".MPA", out, a, vdd, vdd, f(device.PMOS, sz.WP, sz.L))
	c.AddMOS(name+".MPB", out, b, vdd, vdd, f(device.PMOS, sz.WP, sz.L))
	c.AddMOS(name+".MNB", out, b, mid, spice.Gnd, f(device.NMOS, sz.WN, sz.L))
	c.AddMOS(name+".MNA", mid, a, spice.Gnd, spice.Gnd, f(device.NMOS, sz.WN, sz.L))
}

// GateBench is a complete delay testbench: a driver gate loaded by fanout
// copies of itself, with supply and input sources ready for transient
// analysis.
type GateBench struct {
	Ckt     *spice.Circuit
	VddSrc  int // AddV index of the supply (for leakage readback)
	VinSrc  int // AddV index of the input pulse
	In, Out int // driver input and output nodes
	Vdd     float64
}

// Timing of the default input pulse used by the benches.
const (
	// EdgeTime is the input rise/fall time.
	EdgeTime = 10e-12
	// PulseDelay is the quiet time before the first input edge.
	PulseDelay = 30e-12
	// PulseWidth is the input high time.
	PulseWidth = 400e-12
	// PulsePeriod spans one full low-high-low input cycle.
	PulsePeriod = 900e-12
)

// DefaultPulse returns the standard low-high-low input pulse of the gate
// benches, exported so pooled benches can reinstall it after a DC override
// (e.g. the Fig. 6 leakage measurement).
func DefaultPulse(vdd float64) spice.Pulse {
	return spice.Pulse{
		V0: 0, V1: vdd, Delay: PulseDelay, Rise: EdgeTime, Fall: EdgeTime,
		Width: PulseWidth, Period: PulsePeriod,
	}
}

// InverterFO builds a fanout-of-k inverter bench (paper Fig. 5/6 use k=3):
// one driver inverter whose output is loaded by k receiver inverters.
func InverterFO(k int, vdd float64, sz Sizing, f Factory) *GateBench {
	c := spice.New()
	vddN := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	vs := c.AddV("VDD", vddN, spice.Gnd, spice.DC(vdd))
	vi := c.AddV("VIN", in, spice.Gnd, DefaultPulse(vdd))
	AddInverter(c, "XDRV", in, out, vddN, sz, f)
	for i := 0; i < k; i++ {
		lo := c.Node(loadName(i))
		AddInverter(c, "XL"+string(rune('0'+i)), out, lo, vddN, sz, f)
	}
	return &GateBench{Ckt: c, VddSrc: vs, VinSrc: vi, In: in, Out: out, Vdd: vdd}
}

// NAND2FO builds a fanout-of-k NAND2 bench (paper Fig. 7): input a switches,
// input b is tied high, the output drives k NAND2 loads (both load inputs
// tied to the driven net).
func NAND2FO(k int, vdd float64, sz Sizing, f Factory) *GateBench {
	c := spice.New()
	vddN := c.Node("vdd")
	in := c.Node("in")
	out := c.Node("out")
	vs := c.AddV("VDD", vddN, spice.Gnd, spice.DC(vdd))
	vi := c.AddV("VIN", in, spice.Gnd, DefaultPulse(vdd))
	AddNAND2(c, "XDRV", in, vddN, out, vddN, sz, f)
	for i := 0; i < k; i++ {
		lo := c.Node(loadName(i))
		AddNAND2(c, "XL"+string(rune('0'+i)), out, out, lo, vddN, sz, f)
	}
	return &GateBench{Ckt: c, VddSrc: vs, VinSrc: vi, In: in, Out: out, Vdd: vdd}
}

func loadName(i int) string { return "load" + string(rune('0'+i)) }
