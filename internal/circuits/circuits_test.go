package circuits

import (
	"math"
	"testing"

	"vstat/internal/device"
	"vstat/internal/spice"
	"vstat/internal/vsmodel"
)

func nominalVS(k device.Kind, w, l float64) device.Device {
	p := vsmodel.Card(k, w).WithGeometry(w, l)
	return &p
}

func TestInverterFO3Delay(t *testing.T) {
	sz := Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	b := InverterFO(3, 0.9, sz, nominalVS)
	res, err := b.Ckt.Transient(spice.TranOpts{Stop: PulsePeriod, Step: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	// Output inverts: falls after the rising input edge.
	tIn, err := crossTest(res.Time, res.V(b.In), 0.45, true, 0)
	if err != nil {
		t.Fatal(err)
	}
	tOut, err := crossTest(res.Time, res.V(b.Out), 0.45, false, tIn)
	if err != nil {
		t.Fatal(err)
	}
	d := tOut - tIn
	// FO3 inverter delay at 40 nm/0.9 V: a few ps, certainly under 50 ps.
	if d <= 0 || d > 50e-12 {
		t.Fatalf("FO3 delay %g s implausible", d)
	}
}

func TestInverterSizesScaleDelayWeakly(t *testing.T) {
	// Same FO ratio, scaled sizes: delay roughly invariant (within 40%),
	// because load and drive scale together (self-loading differs slightly).
	base := Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	delays := map[float64]float64{}
	for _, k := range []float64{0.5, 1, 2} {
		b := InverterFO(3, 0.9, base.Scale(k), nominalVS)
		res, err := b.Ckt.Transient(spice.TranOpts{Stop: PulsePeriod, Step: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		tIn, _ := crossTest(res.Time, res.V(b.In), 0.45, true, 0)
		tOut, err := crossTest(res.Time, res.V(b.Out), 0.45, false, tIn)
		if err != nil {
			t.Fatal(err)
		}
		delays[k] = tOut - tIn
	}
	if math.Abs(delays[2]-delays[0.5]) > 0.4*delays[1] {
		t.Fatalf("scaled delays diverge: %v", delays)
	}
}

func TestNAND2LowVddStillSwitches(t *testing.T) {
	sz := Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	for _, vdd := range []float64{0.9, 0.7, 0.55} {
		b := NAND2FO(3, vdd, sz, nominalVS)
		res, err := b.Ckt.Transient(spice.TranOpts{Stop: PulsePeriod, Step: 2e-12})
		if err != nil {
			t.Fatalf("vdd=%g: %v", vdd, err)
		}
		v := res.V(b.Out)
		// b high, a pulses: output must swing low then recover.
		min, max := v[0], v[0]
		for _, x := range v {
			min = math.Min(min, x)
			max = math.Max(max, x)
		}
		if min > 0.1*vdd || max < 0.9*vdd {
			t.Fatalf("vdd=%g: output swing [%g, %g]", vdd, min, max)
		}
	}
}

func TestNAND2DelayGrowsAsVddFalls(t *testing.T) {
	sz := Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	var prev float64
	for _, vdd := range []float64{0.9, 0.7, 0.55} {
		b := NAND2FO(3, vdd, sz, nominalVS)
		res, err := b.Ckt.Transient(spice.TranOpts{Stop: PulsePeriod, Step: 2e-12})
		if err != nil {
			t.Fatal(err)
		}
		tIn, _ := crossTest(res.Time, res.V(b.In), vdd/2, true, 0)
		tOut, err := crossTest(res.Time, res.V(b.Out), vdd/2, false, tIn)
		if err != nil {
			t.Fatal(err)
		}
		d := tOut - tIn
		if d <= prev {
			t.Fatalf("delay must grow as Vdd falls: %g at %g after %g", d, vdd, prev)
		}
		prev = d
	}
}

func TestDFFCapturesOnRisingEdge(t *testing.T) {
	ff := NewDFF(0.9, DefaultDFFSizing(), nominalVS)
	// D goes high well before the clock edge at 600 ps.
	ff.Ckt.SetVSource(ff.DSrc, spice.PWL{T: []float64{0, 200e-12, 210e-12}, V: []float64{0, 0, 0.9}})
	ff.Ckt.SetVSource(ff.ClkSrc, spice.PWL{T: []float64{0, 600e-12, 610e-12}, V: []float64{0, 0, 0.9}})
	res, err := ff.Ckt.Transient(spice.TranOpts{Stop: 1.1e-9, Step: 1e-12, UIC: true, IC: ff.ICHoldingZero()})
	if err != nil {
		t.Fatal(err)
	}
	q := res.V(ff.Q)
	// Before the edge Q stays low; after the edge Q is high.
	qBefore := res.At(ff.Q, 580e-12)
	qAfter := q[len(q)-1]
	if qBefore > 0.2 {
		t.Fatalf("Q leaked high before clock edge: %g", qBefore)
	}
	if qAfter < 0.7 {
		t.Fatalf("Q failed to capture: %g", qAfter)
	}
}

func TestDFFHoldsZeroWithoutClock(t *testing.T) {
	ff := NewDFF(0.9, DefaultDFFSizing(), nominalVS)
	ff.Ckt.SetVSource(ff.DSrc, spice.PWL{T: []float64{0, 100e-12, 110e-12}, V: []float64{0, 0, 0.9}})
	ff.Ckt.SetVSource(ff.ClkSrc, spice.DC(0))
	res, err := ff.Ckt.Transient(spice.TranOpts{Stop: 800e-12, Step: 1e-12, UIC: true, IC: ff.ICHoldingZero()})
	if err != nil {
		t.Fatal(err)
	}
	if q := res.At(ff.Q, 800e-12); q > 0.2 {
		t.Fatalf("Q moved without a clock edge: %g", q)
	}
}

func TestSRAMButterflyShapes(t *testing.T) {
	cell := NewSRAMCell(0.9, DefaultSRAMSizing(), nominalVS)
	for _, read := range []bool{false, true} {
		l, r, err := cell.Butterfly(read, 61)
		if err != nil {
			t.Fatalf("read=%v: %v", read, err)
		}
		if len(l.In) != 61 || len(r.In) != 61 {
			t.Fatal("sweep length")
		}
		// Transfer curves fall monotonically.
		for i := 1; i < len(l.Out); i++ {
			if l.Out[i] > l.Out[i-1]+1e-6 {
				t.Fatalf("read=%v: left curve not falling at %d", read, i)
			}
			if r.Out[i] > r.Out[i-1]+1e-6 {
				t.Fatalf("read=%v: right curve not falling at %d", read, i)
			}
		}
		// Hold curves swing essentially rail to rail; read curves have a
		// degraded low level at the start (cell pulled up by the access
		// device) but still show strong regeneration.
		if l.Out[0] < 0.8*0.9 {
			t.Fatalf("read=%v: left curve high level %g", read, l.Out[0])
		}
		if read {
			if l.Out[len(l.Out)-1] < 0.01 {
				t.Fatalf("read curve low level suspiciously hard: %g", l.Out[len(l.Out)-1])
			}
		} else {
			if l.Out[len(l.Out)-1] > 0.05 {
				t.Fatalf("hold curve low level %g", l.Out[len(l.Out)-1])
			}
		}
	}
}

func TestFactoryCalledPerDevice(t *testing.T) {
	count := 0
	f := func(k device.Kind, w, l float64) device.Device {
		count++
		return nominalVS(k, w, l)
	}
	InverterFO(3, 0.9, Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}, f)
	if count != 8 { // driver + 3 loads, 2 transistors each
		t.Fatalf("factory called %d times, want 8", count)
	}
	count = 0
	NAND2FO(3, 0.9, Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}, f)
	if count != 16 {
		t.Fatalf("factory called %d times, want 16", count)
	}
	count = 0
	NewSRAMCell(0.9, DefaultSRAMSizing(), f)
	if count != 6 {
		t.Fatalf("factory called %d times, want 6", count)
	}
}

// crossTest is a minimal local crossing finder (measure depends on circuits'
// sibling packages; keep this package self-contained in tests).
func crossTest(t, v []float64, level float64, rising bool, after float64) (float64, error) {
	for i := 1; i < len(t); i++ {
		if t[i] <= after {
			continue
		}
		a, b := v[i-1], v[i]
		if (rising && a < level && b >= level) || (!rising && a > level && b <= level) {
			f := (level - a) / (b - a)
			return t[i-1] + f*(t[i]-t[i-1]), nil
		}
	}
	return 0, errNoCross
}

var errNoCross = errNC{}

type errNC struct{}

func (errNC) Error() string { return "no crossing" }
