package circuits_test

import (
	"fmt"
	"math"
	"testing"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/montecarlo"
	"vstat/internal/spice"
)

// scalarGateRun runs samples [0, n) sequentially on one pooled scalar bench,
// returning each sample's full output waveform (nil on error), its error
// string, and the circuit's final cumulative solver stats.
func scalarGateRun(t *testing.T, fast bool, maxNewton, n int, seed int64) ([][]float64, []string, spice.SolverStats) {
	t.Helper()
	m := core.DefaultStatVS()
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	p, err := circuits.NewPooledInverterFO(3, 0.9, sz, m.Nominal(), fast)
	if err != nil {
		t.Fatalf("scalar template: %v", err)
	}
	if maxNewton > 0 {
		p.Ckt.MaxNewton = maxNewton
	}
	// Drop the template-construction nominal OP (fast mode) so the stats
	// comparison covers only the per-sample work.
	p.Ckt.ResetStats()
	waves := make([][]float64, n)
	errs := make([]string, n)
	for idx := 0; idx < n; idx++ {
		p.Restat(m.Statistical(montecarlo.SampleRNG(seed, idx)))
		res, err := p.Transient(560e-12, 1.5e-12)
		if err != nil {
			errs[idx] = err.Error()
			continue
		}
		waves[idx] = append(res.V(p.Out), res.Time...)
	}
	return waves, errs, p.Ckt.Stats()
}

// batchGateRun runs the same samples through a K-lane lockstep batch,
// filling lanes in index order (sample idx -> lane idx%K of batch idx/K).
func batchGateRun(t *testing.T, fast bool, maxNewton, n, k int, seed int64) ([][]float64, []string, spice.SolverStats, int64) {
	t.Helper()
	m := core.DefaultStatVS()
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	b, err := circuits.NewPooledGateBatch(k, func() (*circuits.PooledGate, error) {
		return circuits.NewPooledInverterFO(3, 0.9, sz, m.Nominal(), fast)
	})
	if err != nil {
		t.Fatalf("batch template: %v", err)
	}
	for _, p := range b.Lanes {
		if maxNewton > 0 {
			p.Ckt.MaxNewton = maxNewton
		}
		p.Ckt.ResetStats()
	}
	waves := make([][]float64, n)
	errsS := make([]string, n)
	for lo := 0; lo < n; lo += k {
		mLanes := k
		if lo+mLanes > n {
			mLanes = n - lo
		}
		for j := 0; j < mLanes; j++ {
			b.Restat(j, m.Statistical(montecarlo.SampleRNG(seed, lo+j)))
		}
		outs := b.TransientBatch(mLanes, 560e-12, 1.5e-12)
		for j := 0; j < mLanes; j++ {
			if outs[j].Err != nil {
				errsS[lo+j] = outs[j].Err.Error()
				continue
			}
			res := &b.Lanes[j].Res
			waves[lo+j] = append(res.V(b.Lanes[j].Out), res.Time...)
		}
	}
	var stats spice.SolverStats
	for _, p := range b.Lanes {
		stats = stats.Add(p.Ckt.Stats())
	}
	return waves, errsS, stats, b.Evictions()
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestBatchGateBitIdentity is the end-to-end lockstep contract: for every
// lane width, every sample's waveform (and the summed solver counters) must
// be bit-identical to the scalar pooled engine, in both exact and fast mode,
// including ragged final batches.
func TestBatchGateBitIdentity(t *testing.T) {
	const n, seed = 10, 20130318
	for _, fast := range []bool{false, true} {
		sw, serrs, sstats := scalarGateRun(t, fast, 0, n, seed)
		for _, k := range []int{1, 3, 8, 16} {
			t.Run(fmt.Sprintf("fast=%v/k=%d", fast, k), func(t *testing.T) {
				bw, berrs, bstats, _ := batchGateRun(t, fast, 0, n, k, seed)
				for idx := 0; idx < n; idx++ {
					if serrs[idx] != berrs[idx] {
						t.Fatalf("sample %d error mismatch: scalar %q batch %q", idx, serrs[idx], berrs[idx])
					}
					if !bitsEqual(sw[idx], bw[idx]) {
						t.Fatalf("sample %d waveform differs from scalar run", idx)
					}
				}
				if sstats != bstats {
					t.Fatalf("solver stats diverge:\nscalar %+v\nbatch  %+v", sstats, bstats)
				}
			})
		}
	}
}

// TestBatchGateEvictionMatchesScalar starves the Newton budget so lanes are
// forced off the lockstep path mid-batch; evicted lanes must reproduce the
// scalar engine's waveforms, errors, and rescue counters exactly.
func TestBatchGateEvictionMatchesScalar(t *testing.T) {
	const n, k, seed = 8, 4, 777
	for _, fast := range []bool{false, true} {
		for _, maxNewton := range []int{2, 4} {
			sw, serrs, sstats := scalarGateRun(t, fast, maxNewton, n, seed)
			bw, berrs, bstats, evicted := batchGateRun(t, fast, maxNewton, n, k, seed)
			for idx := 0; idx < n; idx++ {
				if serrs[idx] != berrs[idx] {
					t.Fatalf("fast=%v maxNewton=%d sample %d error mismatch: scalar %q batch %q",
						fast, maxNewton, idx, serrs[idx], berrs[idx])
				}
				if !bitsEqual(sw[idx], bw[idx]) {
					t.Fatalf("fast=%v maxNewton=%d sample %d waveform differs", fast, maxNewton, idx)
				}
			}
			if sstats != bstats {
				t.Fatalf("fast=%v maxNewton=%d stats diverge:\nscalar %+v\nbatch  %+v",
					fast, maxNewton, sstats, bstats)
			}
			if maxNewton == 2 && evicted == 0 {
				t.Fatalf("fast=%v maxNewton=2: expected forced evictions, got none", fast)
			}
		}
	}
}

// TestBatchTransientZeroAlloc pins the hot-path contract: with the lanes
// stamped, a warmed-up TransientBatch performs zero heap allocations.
func TestBatchTransientZeroAlloc(t *testing.T) {
	m := core.DefaultStatVS()
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	b, err := circuits.NewPooledGateBatch(8, func() (*circuits.PooledGate, error) {
		return circuits.NewPooledInverterFO(3, 0.9, sz, m.Nominal(), true)
	})
	if err != nil {
		t.Fatalf("batch template: %v", err)
	}
	for j := 0; j < b.K(); j++ {
		b.Restat(j, m.Statistical(montecarlo.SampleRNG(1, j)))
	}
	run := func() {
		outs := b.TransientBatch(b.K(), 560e-12, 1.5e-12)
		for _, o := range outs {
			if o.Err != nil {
				t.Fatalf("lane failed: %v", o.Err)
			}
			if o.Evicted {
				t.Fatalf("unexpected eviction in alloc benchmark")
			}
		}
	}
	run() // warmup: result storage, solver scratch, batch kernels
	if allocs := testing.AllocsPerRun(5, run); allocs != 0 {
		t.Fatalf("TransientBatch allocates %.1f times per call, want 0", allocs)
	}
}
