package circuits_test

import (
	"testing"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/montecarlo"
)

// benchScalarGate measures the scalar pooled engine: one Restat + full
// transient per iteration, cycling through a fixed set of samples.
func benchScalarGate(b *testing.B, fast bool) {
	m := core.DefaultStatVS()
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	p, err := circuits.NewPooledInverterFO(3, 0.9, sz, m.Nominal(), fast)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Restat(m.Statistical(montecarlo.SampleRNG(1, i%32)))
		if _, err := p.Transient(560e-12, 1.5e-12); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBatchGate measures the K-lane lockstep engine on the same samples;
// b.N counts samples (not batches) so ns/op is directly comparable to the
// scalar benchmark.
func benchBatchGate(b *testing.B, k int, fast bool) {
	m := core.DefaultStatVS()
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	bt, err := circuits.NewPooledGateBatch(k, func() (*circuits.PooledGate, error) {
		return circuits.NewPooledInverterFO(3, 0.9, sz, m.Nominal(), fast)
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += k {
		live := k
		if i+live > b.N {
			live = b.N - i
		}
		for j := 0; j < live; j++ {
			bt.Restat(j, m.Statistical(montecarlo.SampleRNG(1, (i+j)%32)))
		}
		for _, o := range bt.TransientBatch(live, 560e-12, 1.5e-12) {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
	}
}

func BenchmarkGateTransientScalarExact(b *testing.B) { benchScalarGate(b, false) }
func BenchmarkGateTransientScalarFast(b *testing.B)  { benchScalarGate(b, true) }
func BenchmarkGateTransientBatch8Exact(b *testing.B) { benchBatchGate(b, 8, false) }
func BenchmarkGateTransientBatch8Fast(b *testing.B)  { benchBatchGate(b, 8, true) }
