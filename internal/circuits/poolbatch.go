package circuits

import (
	"context"
	"fmt"

	"vstat/internal/lifecycle"
	"vstat/internal/obs"
	"vstat/internal/spice"
)

// PooledGateBatch is the K-lane pooled delay testbench: K clones of one
// PooledGate template advanced in lockstep by a spice.BatchSim, so the K
// statistical samples in flight share one SoA device-evaluation call per
// Newton round. Each lane keeps its own circuit, waveform storage, solver
// counters, and lifecycle arming — one Monte Carlo sample maps to one lane.
type PooledGateBatch struct {
	Lanes []*PooledGate
	Sim   *spice.BatchSim

	// Fast selects the carried-Jacobian/warm-start path for every lane
	// (copied from the lane template at construction).
	Fast bool

	res     []*spice.TranResult
	guesses [][]float64

	// Outcomes holds the last TransientBatch call's per-lane outcomes.
	Outcomes []spice.LaneOutcome
}

// NewPooledGateBatch builds k lanes from the given template builder (each
// call must yield an identical-topology pooled bench, e.g. a closure over
// NewPooledInverterFO with fixed arguments) and wires them into a lockstep
// batch driver.
func NewPooledGateBatch(k int, build func() (*PooledGate, error)) (*PooledGateBatch, error) {
	if k < 1 {
		return nil, fmt.Errorf("circuits: batch needs at least one lane, got %d", k)
	}
	b := &PooledGateBatch{
		Lanes:   make([]*PooledGate, k),
		res:     make([]*spice.TranResult, k),
		guesses: make([][]float64, k),
	}
	ckts := make([]*spice.Circuit, k)
	for l := 0; l < k; l++ {
		p, err := build()
		if err != nil {
			return nil, fmt.Errorf("circuits: batch lane %d: %w", l, err)
		}
		b.Lanes[l] = p
		ckts[l] = p.Ckt
		b.res[l] = &p.Res
		b.guesses[l] = p.warm
	}
	b.Fast = b.Lanes[0].Fast
	sim, err := spice.NewBatchSim(ckts)
	if err != nil {
		return nil, err
	}
	b.Sim = sim
	return b, nil
}

// K returns the lane capacity.
func (b *PooledGateBatch) K() int { return len(b.Lanes) }

// Restat re-stamps lane l's transistors from f (one statistical sample).
func (b *PooledGateBatch) Restat(l int, f Factory) { b.Lanes[l].Restat(f) }

// SetObs attaches one worker scope to the batch driver and every lane.
func (b *PooledGateBatch) SetObs(sc *obs.Scope) { b.Sim.SetObs(sc) }

// SetLaneSample tags lane l's solver traces with its Monte Carlo sample
// index.
func (b *PooledGateBatch) SetLaneSample(l, idx int) { b.Lanes[l].Ckt.SetObsSample(idx) }

// ArmLane implements montecarlo.BatchSampleArmer: lane l's circuit enforces
// ctx and the per-sample budget at Newton iteration boundaries.
func (b *PooledGateBatch) ArmLane(l int, ctx context.Context, bud lifecycle.Budget) {
	b.Lanes[l].Ckt.ArmSample(ctx, bud)
}

// LaneRescueCounts implements montecarlo.LaneRescueReporter for per-sample
// checkpoint deltas.
func (b *PooledGateBatch) LaneRescueCounts(l int) map[string]int64 {
	return b.Lanes[l].RescueCounts()
}

// RescueCounts implements montecarlo.RescueReporter: the lane counters
// summed, so batched run reports aggregate exactly like scalar ones.
func (b *PooledGateBatch) RescueCounts() map[string]int64 {
	var out map[string]int64
	for _, p := range b.Lanes {
		for k, v := range p.RescueCounts() {
			if out == nil {
				out = make(map[string]int64, 8)
			}
			out[k] += v
		}
	}
	return out
}

// Evictions returns the cumulative lockstep evictions across the batch's
// lifetime.
func (b *PooledGateBatch) Evictions() int64 { return b.Sim.Evictions }

// TransientBatch runs the bench transient on lanes [0, m) in lockstep.
// Lane l's waveforms land in b.Lanes[l].Res; the returned outcomes (owned
// by the driver, valid until the next call) carry each lane's error exactly
// as the scalar Transient would have reported it.
func (b *PooledGateBatch) TransientBatch(m int, stop, step float64) []spice.LaneOutcome {
	opts := spice.TranOpts{Stop: stop, Step: step, Fast: b.Fast}
	var guesses [][]float64
	if b.Fast {
		guesses = b.guesses
	}
	b.Outcomes = b.Sim.TransientBatch(m, opts, guesses, b.res)
	return b.Outcomes
}
