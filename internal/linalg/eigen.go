package linalg

import (
	"math"
	"sort"
)

// SymEigen computes the eigen-decomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns eigenvalues in descending order and the
// matrix of corresponding eigenvectors as columns.
//
// Only the symmetric part (a+aᵀ)/2 is considered. The method is O(n³) per
// sweep and converges quadratically; matrices in this repository are tiny
// (2×2 covariance ellipses up to ~6×6 BPV normal matrices).
func SymEigen(a *Matrix) (values []float64, vectors *Matrix) {
	if a.Rows != a.Cols {
		panic("linalg: SymEigen of non-square matrix")
	}
	n := a.Rows
	// Work on the symmetrized copy.
	w := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w.Set(i, j, 0.5*(a.At(i, j)+a.At(j, i)))
		}
	}
	v := Identity(n)

	offDiag := func() float64 {
		s := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += w.At(i, j) * w.At(i, j)
			}
		}
		return math.Sqrt(s)
	}
	scale := w.MaxAbs()
	if scale == 0 {
		scale = 1
	}
	for sweep := 0; sweep < 100 && offDiag() > 1e-14*scale*float64(n); sweep++ {
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= 1e-300 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/cols p and q.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.At(i, i)
	}
	// Sort descending, permuting eigenvector columns accordingly.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })
	sortedVals := make([]float64, n)
	sortedVecs := NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			sortedVecs.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, sortedVecs
}
