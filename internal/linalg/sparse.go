package linalg

// Sparse is a square sparse matrix in compressed-sparse-column (CSC) form.
// The pattern (ColPtr/RowIdx) is built once by a SparseBuilder and then
// frozen; only Val changes between factorizations. This is the natural shape
// for MNA Jacobians: the nonzero pattern is fixed per circuit template while
// every Monte Carlo sample, Newton iteration, and timestep rewrites the
// values.
type Sparse struct {
	N      int
	ColPtr []int32 // len N+1; column j occupies RowIdx/Val[ColPtr[j]:ColPtr[j+1]]
	RowIdx []int32 // row index of each stored entry, ascending within a column
	Val    []float64
}

// NNZ returns the number of stored entries.
func (s *Sparse) NNZ() int { return len(s.RowIdx) }

// Zero clears all stored values, retaining the pattern.
func (s *Sparse) Zero() {
	for i := range s.Val {
		s.Val[i] = 0
	}
}

// At returns element (i,j) by binary search over column j (zero when the
// position is not stored). It is a convenience for tests and debugging, not
// a hot-path accessor.
func (s *Sparse) At(i, j int) float64 {
	lo, hi := s.ColPtr[j], s.ColPtr[j+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch r := s.RowIdx[mid]; {
		case r == int32(i):
			return s.Val[mid]
		case r < int32(i):
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return 0
}

// Dense expands the matrix to dense form (tests and the dense-fallback
// comparisons).
func (s *Sparse) Dense() *Matrix {
	m := NewMatrix(s.N, s.N)
	for j := 0; j < s.N; j++ {
		for p := s.ColPtr[j]; p < s.ColPtr[j+1]; p++ {
			m.Set(int(s.RowIdx[p]), j, s.Val[p])
		}
	}
	return m
}

// MaxAbs returns the largest absolute stored value.
func (s *Sparse) MaxAbs() float64 {
	max := 0.0
	for _, v := range s.Val {
		if v < 0 {
			v = -v
		}
		if v > max {
			max = v
		}
	}
	return max
}

// SparseBuilder collects matrix positions (with repeats) in stamp order and
// compresses them into a Sparse plus a stamp-site → value-slot mapping.
// Circuit assembly registers every device stamp position once at build time;
// per-sample numeric assembly then writes straight into Val through the
// returned slots with no searching and no zeroing of n² entries.
type SparseBuilder struct {
	n    int
	rows []int32
	cols []int32
}

// NewSparseBuilder starts a builder for an n×n matrix.
func NewSparseBuilder(n int) *SparseBuilder {
	if n < 0 {
		panic("linalg: negative sparse dimension")
	}
	return &SparseBuilder{n: n}
}

// Add registers a stamp site at (row, col) and returns its site index.
// Duplicate positions are allowed (several devices stamping one node pair)
// and collapse to a single stored entry at Build time.
func (b *SparseBuilder) Add(row, col int) int {
	if row < 0 || row >= b.n || col < 0 || col >= b.n {
		panic("linalg: sparse stamp out of range")
	}
	b.rows = append(b.rows, int32(row))
	b.cols = append(b.cols, int32(col))
	return len(b.rows) - 1
}

// Sites returns the number of registered stamp sites.
func (b *SparseBuilder) Sites() int { return len(b.rows) }

// Build compresses the registered sites into a CSC matrix (values zeroed)
// and returns, for each site index in Add order, the slot in Val that site
// stamps into.
func (b *SparseBuilder) Build() (*Sparse, []int32) {
	n := b.n
	// Counting sort by (col, row): two passes of bucket counting keep the
	// build O(sites + n) and deterministic.
	colCount := make([]int32, n+1)
	for _, c := range b.cols {
		colCount[c+1]++
	}
	for j := 0; j < n; j++ {
		colCount[j+1] += colCount[j]
	}
	// Order sites by column, stable in Add order.
	byCol := make([]int32, len(b.rows))
	next := make([]int32, n)
	copy(next, colCount[:n])
	for s := range b.cols {
		c := b.cols[s]
		byCol[next[c]] = int32(s)
		next[c]++
	}

	sp := &Sparse{N: n, ColPtr: make([]int32, n+1)}
	slots := make([]int32, len(b.rows))
	// Per-column: sort the (few) sites by row, dedup into slots.
	var rowBuf []int32
	for j := 0; j < n; j++ {
		lo, hi := colCount[j], colCount[j+1]
		sites := byCol[lo:hi]
		rowBuf = rowBuf[:0]
		for _, s := range sites {
			rowBuf = append(rowBuf, b.rows[s])
		}
		sortInt32(rowBuf)
		// Unique rows of this column, appended to the CSC arrays.
		base := int32(len(sp.RowIdx))
		var prev int32 = -1
		for _, r := range rowBuf {
			if r != prev {
				sp.RowIdx = append(sp.RowIdx, r)
				prev = r
			}
		}
		// Map each site to its slot by binary search over the unique rows.
		uniq := sp.RowIdx[base:]
		for _, s := range sites {
			slots[s] = base + searchInt32(uniq, b.rows[s])
		}
		sp.ColPtr[j+1] = int32(len(sp.RowIdx))
	}
	sp.Val = make([]float64, len(sp.RowIdx))
	return sp, slots
}

// sortInt32 is an insertion sort: per-column site counts are tiny (a handful
// of device stamps), where this beats the generic sort.
func sortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// searchInt32 returns the index of v in the ascending slice a.
func searchInt32(a []int32, v int32) int32 {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int32(lo)
}
