// Package linalg provides the small dense linear-algebra kernel used by the
// statistical VS model tool chain: matrices, LU and QR factorizations,
// Cholesky, a symmetric eigensolver, and non-negative least squares.
//
// Everything is implemented from scratch on float64 slices (the Go standard
// library has no linear algebra), sized for the problems in this repository:
// MNA systems of a few dozen unknowns and BPV least-squares stacks with a
// handful of columns. Algorithms favour clarity and numerical robustness
// (partial pivoting, Householder reflections) over blocking or SIMD.
package linalg

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense, row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic("linalg: negative matrix dimension")
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewMatrixFromRows builds a matrix from row slices. All rows must have the
// same length.
func NewMatrixFromRows(rows [][]float64) *Matrix {
	r := len(rows)
	if r == 0 {
		return NewMatrix(0, 0)
	}
	c := len(rows[0])
	m := NewMatrix(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*c:(i+1)*c], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i,j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add adds v to element (i,j) in place.
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero sets all elements to zero, retaining the allocation.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m*b as a new matrix.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d * %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			bk := b.Row(k)
			for j := range oi {
				oi[j] += a * bk[j]
			}
		}
	}
	return out
}

// MulVec returns m*x as a new vector.
func (m *Matrix) MulVec(x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d * %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// Scale multiplies every element by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.Data {
		m.Data[i] *= s
	}
	return m
}

// AddMatrix returns m+b as a new matrix.
func (m *Matrix) AddMatrix(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: AddMatrix dimension mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// SubMatrix returns m-b as a new matrix.
func (m *Matrix) SubMatrix(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: SubMatrix dimension mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] -= b.Data[i]
	}
	return out
}

// MaxAbs returns the largest absolute element value (0 for empty matrices).
func (m *Matrix) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// String formats the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			fmt.Fprintf(&b, "% .6e ", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ErrSingular is returned when a factorization meets an (effectively)
// singular matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	// Scaled accumulation to avoid overflow for large entries.
	scale, ssq := 0.0, 1.0
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the max-abs norm of v.
func NormInf(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AXPY computes y += a*x in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: AXPY length mismatch")
	}
	for i := range x {
		y[i] += a * x[i]
	}
}

// VecClone returns a copy of v.
func VecClone(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// VecSub returns a-b as a new vector.
func VecSub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("linalg: VecSub length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}
