package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// mnaSystem is a random MNA-patterned sparse system: nNodes node rows with a
// guaranteed (gmin-style) diagonal plus symmetric conductance quads, and
// nBranch voltage-source branch rows with ±1 incidence couplings and a
// structurally zero diagonal — the row shape that forces real pivoting.
type mnaSystem struct {
	b     *SparseBuilder
	sites []int32 // slot per site after Build
	sp    *Sparse

	quadSites  [][4]int    // resistor-style stamps (a,a),(a,b),(b,a),(b,b)
	quadPairs  [][2]int    // the (a,b) node pair of each quad
	diagSites  []int       // per node
	branchInc  [][4]int    // (p,br),(br,p),(n,br),(br,n)
	branchPair [][2]int    // (p,n) nodes of each branch
	vals       []stampVals // regenerated per refactor
}

type stampVals struct {
	g float64 // conductance of a quad (unused for branches)
}

// buildMNA constructs the pattern once; refill stamps fresh random values.
func buildMNA(rng *rand.Rand, nNodes, nBranch, nQuads int) *mnaSystem {
	n := nNodes + nBranch
	s := &mnaSystem{b: NewSparseBuilder(n)}
	for i := 0; i < nNodes; i++ {
		s.diagSites = append(s.diagSites, s.b.Add(i, i))
	}
	for q := 0; q < nQuads; q++ {
		a := rng.Intn(nNodes)
		bb := rng.Intn(nNodes)
		for bb == a {
			bb = rng.Intn(nNodes)
		}
		s.quadPairs = append(s.quadPairs, [2]int{a, bb})
		s.quadSites = append(s.quadSites, [4]int{
			s.b.Add(a, a), s.b.Add(a, bb), s.b.Add(bb, a), s.b.Add(bb, bb),
		})
	}
	for v := 0; v < nBranch; v++ {
		br := nNodes + v
		p := rng.Intn(nNodes)
		q := rng.Intn(nNodes)
		for q == p {
			q = rng.Intn(nNodes)
		}
		s.branchPair = append(s.branchPair, [2]int{p, q})
		s.branchInc = append(s.branchInc, [4]int{
			s.b.Add(p, br), s.b.Add(br, p), s.b.Add(q, br), s.b.Add(br, q),
		})
	}
	s.sp, s.sites = s.b.Build()
	return s
}

// refill stamps fresh random, well-conditioned values through the site map,
// the way circuit assembly writes device stamps per sample.
func (s *mnaSystem) refill(rng *rand.Rand) {
	s.sp.Zero()
	add := func(site int, v float64) { s.sp.Val[s.sites[site]] += v }
	// The value ranges keep the condition number around 1e2–1e3 so the
	// 1e-12 sparse-vs-dense bound tests the factorization itself rather
	// than condition-amplified rounding common to both paths.
	for _, d := range s.diagSites {
		add(d, 0.05) // gmin-style anchor keeps node rows nonsingular
	}
	for _, q := range s.quadSites {
		g := 0.5 + 1.5*rng.Float64()
		add(q[0], g)
		add(q[1], -g)
		add(q[2], -g)
		add(q[3], g)
	}
	for _, inc := range s.branchInc {
		add(inc[0], 1)
		add(inc[1], 1)
		add(inc[2], -1)
		add(inc[3], -1)
	}
}

func relDiff(a, b []float64) float64 {
	num, den := 0.0, 0.0
	for i := range a {
		num += (a[i] - b[i]) * (a[i] - b[i])
		den += b[i] * b[i]
	}
	if den == 0 {
		return math.Sqrt(num)
	}
	return math.Sqrt(num / den)
}

// TestSparseLUMatchesDenseRandomMNA: sparse solve equals the dense LU solve
// within 1e-12 relative on randomized MNA-patterned systems, including after
// repeated numeric refactors with fresh values on the same symbolic object.
func TestSparseLUMatchesDenseRandomMNA(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		nNodes := 4 + rng.Intn(40)
		nBranch := 1 + rng.Intn(4)
		nQuads := nNodes + rng.Intn(3*nNodes)
		s := buildMNA(rng, nNodes, nBranch, nQuads)
		s.refill(rng)

		f, err := NewSparseLU(s.sp)
		if err != nil {
			t.Fatalf("trial %d: analyze: %v", trial, err)
		}
		n := s.sp.N
		b := make([]float64, n)
		scratch := make([]float64, n)
		for refac := 0; refac < 6; refac++ {
			if refac > 0 {
				s.refill(rng) // fresh values, same pattern, same symbolic object
			}
			if err := f.Refactor(s.sp); err != nil {
				t.Fatalf("trial %d refactor %d: %v", trial, refac, err)
			}
			dense, err := NewLU(s.sp.Dense())
			if err != nil {
				t.Fatalf("trial %d refactor %d: dense: %v", trial, refac, err)
			}
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			got := append([]float64(nil), f.SolvePermuting(b, scratch)...)
			want := dense.Solve(b)
			if d := relDiff(got, want); d > 1e-12 {
				t.Fatalf("trial %d refactor %d: sparse vs dense rel diff %.3g (n=%d nnz=%d)",
					trial, refac, d, n, s.sp.NNZ())
			}
		}
	}
}

// TestSparseLUPivotDegenerate: systems whose natural diagonal order is
// unusable (zero branch diagonals, plus a leading node row zeroed to force a
// row swap) must still factor and agree with dense partial pivoting.
func TestSparseLUPivotDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		s := buildMNA(rng, 12, 3, 30)
		s.refill(rng)
		// Kill the first node's diagonal entirely: the row survives only
		// through its branch/quad couplings, so diagonal pivoting at step 0
		// is impossible.
		s.sp.Val[s.sites[s.diagSites[0]]] = 0
		for qi, q := range s.quadPairs {
			if q[0] == 0 {
				s.sp.Val[s.sites[s.quadSites[qi][0]]] = 0
			}
			if q[1] == 0 {
				s.sp.Val[s.sites[s.quadSites[qi][3]]] = 0
			}
		}
		dense, derr := NewLU(s.sp.Dense())
		f, serr := NewSparseLU(s.sp)
		if derr != nil {
			// Degenerate enough to be singular: the sparse path must agree.
			if serr == nil {
				if err := f.Refactor(s.sp); err == nil {
					t.Fatalf("trial %d: dense says singular, sparse factored", trial)
				}
			}
			continue
		}
		if serr != nil {
			t.Fatalf("trial %d: dense factored but sparse analyze failed: %v", trial, serr)
		}
		if err := f.Refactor(s.sp); err != nil {
			t.Fatalf("trial %d: refactor: %v", trial, err)
		}
		n := s.sp.N
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		scratch := make([]float64, n)
		got := f.SolvePermuting(b, scratch)
		want := dense.Solve(b)
		if d := relDiff(got, want); d > 1e-12 {
			t.Fatalf("trial %d: degenerate-pivot rel diff %.3g", trial, d)
		}
	}
}

// TestSparseLUSingular: an exactly singular matrix reports ErrSingular from
// Analyze, and a refactor whose values zero a whole row reports ErrSingular
// rather than producing NaN factors silently.
func TestSparseLUSingular(t *testing.T) {
	b := NewSparseBuilder(3)
	d0 := b.Add(0, 0)
	d1 := b.Add(1, 1)
	b.Add(2, 2) // structurally present, numerically zero
	sp, sites := b.Build()
	sp.Val[sites[d0]] = 1
	sp.Val[sites[d1]] = 2
	if _, err := NewSparseLU(sp); !errors.Is(err, ErrSingular) {
		t.Fatalf("Analyze on singular matrix: got %v, want ErrSingular", err)
	}

	// Healthy analysis, then a value set that zeroes a pivot at refactor.
	rng := rand.New(rand.NewSource(3))
	s := buildMNA(rng, 8, 2, 16)
	s.refill(rng)
	f, err := NewSparseLU(s.sp)
	if err != nil {
		t.Fatal(err)
	}
	s.sp.Zero() // all-zero values: first pivot is exactly zero
	if err := f.Refactor(s.sp); !errors.Is(err, ErrSingular) {
		t.Fatalf("Refactor on zero matrix: got %v, want ErrSingular", err)
	}
	// The symbolic object must recover on the next good refactor.
	s.refill(rng)
	if err := f.Refactor(s.sp); err != nil {
		t.Fatalf("refactor after singular: %v", err)
	}
}

// TestSparseLURefactorSolveAllocFree: the per-sample path — refactor plus
// triangular solve — must not allocate.
func TestSparseLURefactorSolveAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := buildMNA(rng, 24, 3, 60)
	s.refill(rng)
	f, err := NewSparseLU(s.sp)
	if err != nil {
		t.Fatal(err)
	}
	n := s.sp.N
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	scratch := make([]float64, n)
	allocs := testing.AllocsPerRun(100, func() {
		if err := f.Refactor(s.sp); err != nil {
			t.Fatal(err)
		}
		f.SolvePermuting(b, scratch)
	})
	if allocs != 0 {
		t.Fatalf("Refactor+SolvePermuting allocates %.1f objects per cycle, want 0", allocs)
	}
}

// TestSparseLUGrowthSignalsDegeneracy: values that invert the magnitude
// relation the pivot order was chosen for produce a large Growth, the
// re-analysis trigger, and re-Analyze restores modest growth.
func TestSparseLUGrowthSignalsDegeneracy(t *testing.T) {
	b := NewSparseBuilder(2)
	s00 := b.Add(0, 0)
	s01 := b.Add(0, 1)
	s10 := b.Add(1, 0)
	s11 := b.Add(1, 1)
	sp, sites := b.Build()
	set := func(site int, v float64) { sp.Val[sites[site]] = v }
	set(s00, 1)
	set(s01, 0.5)
	set(s10, 0.5)
	set(s11, 1)
	f, err := NewSparseLU(sp)
	if err != nil {
		t.Fatal(err)
	}
	// Shrink the analyzed pivot by 12 orders of magnitude: the static order
	// now divides a large entry by a tiny pivot.
	set(s00, 1e-12)
	if err := f.Refactor(sp); err != nil {
		t.Fatal(err)
	}
	if f.Growth() < 1e10 {
		t.Fatalf("Growth() = %g after pivot collapse, want > 1e10", f.Growth())
	}
	if err := f.Analyze(sp); err != nil {
		t.Fatal(err)
	}
	if err := f.Refactor(sp); err != nil {
		t.Fatal(err)
	}
	if f.Growth() > 1 {
		t.Fatalf("Growth() = %g after re-analysis, want <= 1", f.Growth())
	}
	// And the re-pivoted solve is still right.
	x := f.SolvePermuting([]float64{1, 2}, make([]float64, 2))
	dense, _ := NewLU(sp.Dense())
	want := dense.Solve([]float64{1, 2})
	if d := relDiff(x, want); d > 1e-12 {
		t.Fatalf("post-reanalysis rel diff %.3g", d)
	}
}

// TestSparseBuilderSlots: duplicate stamp sites collapse to one slot and
// distinct positions get distinct slots, with CSC columns sorted.
func TestSparseBuilderSlots(t *testing.T) {
	b := NewSparseBuilder(3)
	a1 := b.Add(2, 1)
	a2 := b.Add(0, 1)
	a3 := b.Add(2, 1) // duplicate of a1
	a4 := b.Add(1, 0)
	sp, sites := b.Build()
	if sp.NNZ() != 3 {
		t.Fatalf("nnz = %d, want 3", sp.NNZ())
	}
	if sites[a1] != sites[a3] {
		t.Fatalf("duplicate site got distinct slots %d vs %d", sites[a1], sites[a3])
	}
	if sites[a1] == sites[a2] || sites[a2] == sites[a4] {
		t.Fatal("distinct positions share a slot")
	}
	sp.Val[sites[a1]] += 2
	sp.Val[sites[a2]] += 5
	sp.Val[sites[a3]] += 3
	sp.Val[sites[a4]] += 7
	if got := sp.At(2, 1); got != 5 {
		t.Fatalf("At(2,1) = %g, want 5 (accumulated duplicate)", got)
	}
	if got := sp.At(0, 1); got != 5 {
		t.Fatalf("At(0,1) = %g, want 5", got)
	}
	if got := sp.At(1, 0); got != 7 {
		t.Fatalf("At(1,0) = %g, want 7", got)
	}
	if got := sp.At(0, 0); got != 0 {
		t.Fatalf("At(0,0) = %g, want 0 (unstored)", got)
	}
	for j := 0; j < 3; j++ {
		for p := sp.ColPtr[j] + 1; p < sp.ColPtr[j+1]; p++ {
			if sp.RowIdx[p-1] >= sp.RowIdx[p] {
				t.Fatal("column rows not strictly ascending")
			}
		}
	}
}

// TestInverseAllocsIndependentOfN: the RHS-buffer reuse in Inverse keeps the
// allocation count a small constant rather than n allocations for the n
// unit-vector solves.
func TestInverseAllocsIndependentOfN(t *testing.T) {
	alloc := func(n int) float64 {
		a := NewMatrix(n, n)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonally dominant
		}
		return testing.AllocsPerRun(20, func() {
			if _, err := Inverse(a); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := alloc(4), alloc(64)
	if large != small {
		t.Fatalf("Inverse allocs grew with n: %0.f at n=4 vs %0.f at n=64 (per-column RHS allocation regressed)",
			small, large)
	}
	// And it is still an inverse.
	n := 12
	a := NewMatrix(n, n)
	rng := rand.New(rand.NewSource(5))
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	inv, err := Inverse(a)
	if err != nil {
		t.Fatal(err)
	}
	prod := a.Mul(inv)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(prod.At(i, j)-want) > 1e-10 {
				t.Fatalf("A*inv(A)[%d,%d] = %g", i, j, prod.At(i, j))
			}
		}
	}
}
