package linalg

import "math"

// Cholesky holds the lower-triangular factor L of a symmetric
// positive-definite matrix A = L Lᵀ.
type Cholesky struct {
	l *Matrix
}

// NewCholesky factors the symmetric positive-definite matrix a (only the
// lower triangle of a is read). It returns ErrSingular when a is not
// positive definite.
func NewCholesky(a *Matrix) (*Cholesky, error) {
	if a.Rows != a.Cols {
		panic("linalg: Cholesky of non-square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if s <= 0 {
					return nil, ErrSingular
				}
				l.Set(i, i, math.Sqrt(s))
			} else {
				l.Set(i, j, s/l.At(j, j))
			}
		}
	}
	return &Cholesky{l: l}, nil
}

// L returns the lower-triangular factor (shared, do not modify).
func (c *Cholesky) L() *Matrix { return c.l }

// Solve solves A x = b.
func (c *Cholesky) Solve(b []float64) []float64 {
	n := c.l.Rows
	if len(b) != n {
		panic("linalg: Cholesky.Solve dimension mismatch")
	}
	x := VecClone(b)
	// L y = b
	for i := 0; i < n; i++ {
		s := x[i]
		for j := 0; j < i; j++ {
			s -= c.l.At(i, j) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	// Lᵀ x = y
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.At(j, i) * x[j]
		}
		x[i] = s / c.l.At(i, i)
	}
	return x
}

// MulLVec returns L*v; used to colour independent Gaussian samples with a
// target covariance (v ~ N(0,I) → L v ~ N(0, A)).
func (c *Cholesky) MulLVec(v []float64) []float64 {
	n := c.l.Rows
	if len(v) != n {
		panic("linalg: MulLVec dimension mismatch")
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j <= i; j++ {
			s += c.l.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out
}
