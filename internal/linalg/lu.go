package linalg

import "math"

// LU holds an LU factorization with partial pivoting: P*A = L*U.
// L has a unit diagonal and is stored, together with U, in lu.
type LU struct {
	lu   *Matrix
	piv  []int
	sign int // determinant sign from row swaps
}

// NewLU factors the square matrix a (which is not modified).
// It returns ErrSingular when a pivot is exactly zero; near-singular systems
// are still factored and reported by Cond-style checks at solve time.
func NewLU(a *Matrix) (*LU, error) {
	f := NewLUWorkspace(a.Rows)
	if err := f.Factor(a); err != nil {
		return nil, err
	}
	return f, nil
}

// NewLUWorkspace allocates an empty n×n factorization workspace. Factor
// refactors into it without allocating, so Newton loops can own one
// workspace and refresh the Jacobian factorization in place.
func NewLUWorkspace(n int) *LU {
	return &LU{lu: NewMatrix(n, n), piv: make([]int, n), sign: 1}
}

// Factor refactors the square matrix a (which is not modified) into the
// receiver's preallocated workspace. It is the allocation-free core of NewLU
// and produces bit-identical factors. It returns ErrSingular when a pivot is
// exactly zero; the workspace contents are then undefined until the next
// successful Factor.
func (f *LU) Factor(a *Matrix) error {
	if a.Rows != a.Cols {
		panic("linalg: LU of non-square matrix")
	}
	n := a.Rows
	if f.lu.Rows != n || f.lu.Cols != n {
		panic("linalg: LU.Factor workspace dimension mismatch")
	}
	copy(f.lu.Data, a.Data)
	f.sign = 1
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	for k := 0; k < n; k++ {
		// Find pivot.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				max, p = v, i
			}
		}
		if max == 0 {
			return ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return nil
}

// Solve solves A x = b for one right-hand side, returning a fresh slice.
func (f *LU) Solve(b []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n {
		panic("linalg: LU.Solve dimension mismatch")
	}
	x := make([]float64, n)
	// Apply permutation.
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	f.SolveInPlace(x)
	return x
}

// SolveInPlace solves A x = b where b is already permuted by piv (as done by
// Solve); it is exposed for the hot path in the circuit simulator which
// manages its own permuted buffer via SolvePermuting.
func (f *LU) SolveInPlace(x []float64) {
	n := f.lu.Rows
	lu := f.lu
	// Forward substitution with unit-lower L.
	for i := 1; i < n; i++ {
		ri := lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		ri := lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
}

// SolvePermuting permutes b by the pivot order into scratch (which must have
// length n), solves in place, and returns scratch. It performs no
// allocations, for use in Newton inner loops.
func (f *LU) SolvePermuting(b, scratch []float64) []float64 {
	n := f.lu.Rows
	if len(b) != n || len(scratch) != n {
		panic("linalg: SolvePermuting dimension mismatch")
	}
	for i := 0; i < n; i++ {
		scratch[i] = b[f.piv[i]]
	}
	f.SolveInPlace(scratch)
	return scratch
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// SolveLinear factors a and solves a single system in one call.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}

// Inverse returns the inverse of a, or ErrSingular. The n unit-vector
// solves share one RHS buffer through SolvePermuting, so the allocation
// count is a small constant independent of n.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := NewLU(a)
	if err != nil {
		return nil, err
	}
	n := a.Rows
	inv := NewMatrix(n, n)
	e := make([]float64, n)
	scratch := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range e {
			e[i] = 0
		}
		e[j] = 1
		col := f.SolvePermuting(e, scratch)
		for i := 0; i < n; i++ {
			inv.Set(i, j, col[i])
		}
	}
	return inv, nil
}
