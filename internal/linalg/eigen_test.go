package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestSymEigenDiagonal(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{3, 0}, {0, 5}})
	vals, vecs := SymEigen(a)
	if !almostEq(vals[0], 5, 1e-12) || !almostEq(vals[1], 3, 1e-12) {
		t.Fatalf("vals %v", vals)
	}
	// Leading eigenvector is ±e2.
	if math.Abs(math.Abs(vecs.At(1, 0))-1) > 1e-10 {
		t.Fatalf("vecs %v", vecs)
	}
}

func TestSymEigen2x2Known(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewMatrixFromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs := SymEigen(a)
	if !almostEq(vals[0], 3, 1e-12) || !almostEq(vals[1], 1, 1e-12) {
		t.Fatalf("vals %v", vals)
	}
	// Eigenvector for 3 is (1,1)/√2 up to sign.
	r := vecs.At(0, 0) / vecs.At(1, 0)
	if !almostEq(r, 1, 1e-9) {
		t.Fatalf("leading eigenvector ratio %g", r)
	}
}

// Property: A v_i = λ_i v_i and Vᵀ V = I for random symmetric matrices.
func TestSymEigenProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(5)
		b := randomMatrix(rng, n)
		a := b.AddMatrix(b.T()).Scale(0.5)
		vals, vecs := SymEigen(a)
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				t.Fatalf("eigenvalues not sorted: %v", vals)
			}
		}
		for c := 0; c < n; c++ {
			v := make([]float64, n)
			for r := 0; r < n; r++ {
				v[r] = vecs.At(r, c)
			}
			av := a.MulVec(v)
			for r := 0; r < n; r++ {
				if math.Abs(av[r]-vals[c]*v[r]) > 1e-8*(1+a.MaxAbs()) {
					t.Fatalf("A v != λ v (col %d): %v vs λ=%g v=%v", c, av, vals[c], v)
				}
			}
			if !almostEq(Norm2(v), 1, 1e-9) {
				t.Fatalf("eigenvector not unit norm: %v", v)
			}
		}
	}
}
