package linalg

import "math"

// QR holds a Householder QR factorization of an m×n matrix with m >= n.
type QR struct {
	qr    *Matrix   // Householder vectors below diagonal, R on/above
	rdiag []float64 // diagonal of R
}

// NewQR factors a (not modified). Requires a.Rows >= a.Cols.
func NewQR(a *Matrix) *QR {
	if a.Rows < a.Cols {
		panic("linalg: QR requires rows >= cols")
	}
	m, n := a.Rows, a.Cols
	f := &QR{qr: a.Clone(), rdiag: make([]float64, n)}
	qr := f.qr
	for k := 0; k < n; k++ {
		// Norm of column k below the diagonal.
		nrm := 0.0
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.At(i, k))
		}
		if nrm != 0 {
			if qr.At(k, k) < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				qr.Set(i, k, qr.At(i, k)/nrm)
			}
			qr.Add(k, k, 1)
			// Apply transformation to remaining columns.
			for j := k + 1; j < n; j++ {
				s := 0.0
				for i := k; i < m; i++ {
					s += qr.At(i, k) * qr.At(i, j)
				}
				s = -s / qr.At(k, k)
				for i := k; i < m; i++ {
					qr.Add(i, j, s*qr.At(i, k))
				}
			}
		}
		f.rdiag[k] = -nrm
	}
	return f
}

// FullRank reports whether R has no (near-)zero diagonal entry relative to
// the largest one.
func (f *QR) FullRank() bool {
	max := 0.0
	for _, d := range f.rdiag {
		if a := math.Abs(d); a > max {
			max = a
		}
	}
	if max == 0 {
		return false
	}
	for _, d := range f.rdiag {
		if math.Abs(d) <= 1e-13*max {
			return false
		}
	}
	return true
}

// Solve returns the least-squares solution x minimizing ||A x - b||2.
// It returns ErrSingular when A is rank deficient.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows, f.qr.Cols
	if len(b) != m {
		panic("linalg: QR.Solve dimension mismatch")
	}
	if !f.FullRank() {
		return nil, ErrSingular
	}
	y := VecClone(b)
	qr := f.qr
	// Compute Q^T b.
	for k := 0; k < n; k++ {
		if qr.At(k, k) == 0 {
			continue
		}
		s := 0.0
		for i := k; i < m; i++ {
			s += qr.At(i, k) * y[i]
		}
		s = -s / qr.At(k, k)
		for i := k; i < m; i++ {
			y[i] += s * qr.At(i, k)
		}
	}
	// Back substitution R x = (Q^T b)[:n].
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdiag[i]
	}
	return x, nil
}

// LeastSquares solves min ||A x - b||2 via QR in one call.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	return NewQR(a).Solve(b)
}
