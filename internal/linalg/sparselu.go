package linalg

import "math"

// SparseLU is a sparse LU factorization with a one-time symbolic analysis
// and an allocation-free numeric refactor, built for matrices whose pattern
// is fixed while their values change many times (MNA Jacobians across Monte
// Carlo samples, Newton iterations, and timesteps).
//
// Analyze chooses a fill-reducing pivot order (Markowitz cost with threshold
// partial pivoting, diagonal-preferring) against representative numeric
// values, computes the static fill-in pattern of P·A·Q = L·U, and unrolls
// the whole elimination into a flat operation tape: per-column divide ops and
// multiply-subtract update ops addressing precomputed value slots. Refactor
// then replays the tape over fresh values — no pivot search, no pattern
// work, no allocation — and the triangular solves walk the same static
// slots. On the benchmark circuits the tape is a few hundred fused ops
// against the dense path's O(n³/3) factor plus O(n²) copy/zero traffic.
//
// Pivot health mirrors the dense path's ErrSingular contract: a refactor
// meeting an exactly-zero pivot returns ErrSingular, and Growth reports the
// largest multiplier magnitude of the last refactor so callers can detect a
// numerically degenerate (but nonzero) static pivot order and re-run Analyze
// against the offending values — the rare re-pivot path.
type SparseLU struct {
	n       int
	rowPerm []int32 // permuted row k ← original row rowPerm[k]
	colPerm []int32 // permuted col k ← original col colPerm[k]

	vals    []float64 // static L\U storage (unit-diagonal L implicit)
	scatter []int32   // A's CSC slot s stamps into vals[scatter[s]]

	pivSlot []int32 // vals slot of U(k,k), per elimination step

	// Divide ops, grouped by elimination step k: vals[divSlot] /= pivot.
	// divRow doubles as the row index for the column-oriented forward solve.
	divStart []int32
	divSlot  []int32
	divRow   []int32

	// Update ops, grouped by step k: vals[updT] -= vals[updL]*vals[updU].
	updStart []int32
	updT     []int32
	updL     []int32
	updU     []int32

	// U row slots for the back substitution, grouped by row k.
	bwdStart []int32
	bwdSlot  []int32
	bwdCol   []int32

	pb     []float64 // permuted solve buffer
	growth float64   // max |multiplier| of the last Refactor
}

// pivotThreshold is the Markowitz threshold-pivoting parameter: a candidate
// pivot must be at least this fraction of the largest active entry in its
// column, bounding every multiplier by its reciprocal. 0.1 keeps the
// factors within ~one decimal digit of partial pivoting's accuracy while
// still letting the Markowitz cost pick sparse pivots; the extra fill on
// MNA patterns is marginal.
const pivotThreshold = 0.1

// NewSparseLU analyzes the pattern and representative values of a and
// returns a factorization object ready for Refactor/SolvePermuting. It
// returns ErrSingular when no acceptable pivot exists at some step.
func NewSparseLU(a *Sparse) (*SparseLU, error) {
	f := &SparseLU{}
	if err := f.Analyze(a); err != nil {
		return nil, err
	}
	return f, nil
}

// Analyze (re)runs the symbolic analysis against the pattern and current
// values of a: pivot-order selection, static fill-in pattern, and operation
// tape. It allocates; the per-sample path is Refactor. Call it again only
// when Refactor reports ErrSingular or excessive Growth — values so far from
// the analyzed ones that the static pivot order has gone numerically bad.
func (f *SparseLU) Analyze(a *Sparse) error {
	n := a.N
	if n == 0 {
		return ErrSingular
	}
	// Working pattern and values in original coordinates. occ is structural:
	// once a position fills in it stays in the pattern even if its value
	// cancels to zero, so the tape is value-independent.
	occ := make([]bool, n*n)
	w := make([]float64, n*n)
	rowCnt := make([]int32, n) // active-entry counts for the Markowitz cost
	colCnt := make([]int32, n)
	for j := 0; j < n; j++ {
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			i := int(a.RowIdx[p])
			if !occ[i*n+j] {
				occ[i*n+j] = true
				rowCnt[i]++
				colCnt[j]++
			}
			w[i*n+j] += a.Val[p]
		}
	}

	rowPerm := make([]int32, n) // step k -> original row
	colPerm := make([]int32, n)
	rowDone := make([]bool, n)
	colDone := make([]bool, n)
	invRow := make([]int32, n) // original row -> step
	invCol := make([]int32, n)

	for k := 0; k < n; k++ {
		pi, pj := f.pickPivot(n, occ, w, rowCnt, colCnt, rowDone, colDone)
		if pi < 0 {
			return ErrSingular
		}
		rowPerm[k], colPerm[k] = int32(pi), int32(pj)
		invRow[pi], invCol[pj] = int32(k), int32(k)
		rowDone[pi], colDone[pj] = true, true
		rowCnt[pi] = 0
		colCnt[pj] = 0
		for j := 0; j < n; j++ {
			if !colDone[j] && occ[pi*n+j] {
				colCnt[j]--
			}
		}
		for i := 0; i < n; i++ {
			if !rowDone[i] && occ[i*n+pj] {
				rowCnt[i]--
			}
		}
		// Eliminate: scale column pj below the pivot, update the active
		// submatrix, recording structural fill.
		piv := w[pi*n+pj]
		for i := 0; i < n; i++ {
			if rowDone[i] || !occ[i*n+pj] {
				continue
			}
			m := w[i*n+pj] / piv
			w[i*n+pj] = m
			for j := 0; j < n; j++ {
				if colDone[j] || !occ[pi*n+j] {
					continue
				}
				if !occ[i*n+j] {
					occ[i*n+j] = true
					rowCnt[i]++
					colCnt[j]++
				}
				w[i*n+j] -= m * w[pi*n+j]
			}
		}
	}

	// Slot layout over the final pattern, in permuted coordinates: per step
	// k the pivot, then U row k, then L column k — the order the tape and
	// the solves touch them.
	pos := make([]int32, n*n)
	for i := range pos {
		pos[i] = -1
	}
	permOcc := func(ki, kj int) bool {
		return occ[int(rowPerm[ki])*n+int(colPerm[kj])]
	}
	var nslots int32
	for k := 0; k < n; k++ {
		pos[k*n+k] = nslots
		nslots++
		for kj := k + 1; kj < n; kj++ {
			if permOcc(k, kj) {
				pos[k*n+kj] = nslots
				nslots++
			}
		}
		for ki := k + 1; ki < n; ki++ {
			if permOcc(ki, k) {
				pos[ki*n+k] = nslots
				nslots++
			}
		}
	}

	f.n = n
	f.rowPerm, f.colPerm = rowPerm, colPerm
	f.vals = make([]float64, nslots)
	f.pivSlot = make([]int32, n)
	f.divStart = make([]int32, n+1)
	f.updStart = make([]int32, n+1)
	f.bwdStart = make([]int32, n+1)
	f.divSlot, f.divRow = f.divSlot[:0], f.divRow[:0]
	f.updT, f.updL, f.updU = f.updT[:0], f.updL[:0], f.updU[:0]
	f.bwdSlot, f.bwdCol = f.bwdSlot[:0], f.bwdCol[:0]
	for k := 0; k < n; k++ {
		f.pivSlot[k] = pos[k*n+k]
		f.divStart[k] = int32(len(f.divSlot))
		f.updStart[k] = int32(len(f.updT))
		f.bwdStart[k] = int32(len(f.bwdSlot))
		for kj := k + 1; kj < n; kj++ {
			if permOcc(k, kj) {
				f.bwdSlot = append(f.bwdSlot, pos[k*n+kj])
				f.bwdCol = append(f.bwdCol, int32(kj))
			}
		}
		for ki := k + 1; ki < n; ki++ {
			if !permOcc(ki, k) {
				continue
			}
			f.divSlot = append(f.divSlot, pos[ki*n+k])
			f.divRow = append(f.divRow, int32(ki))
			for kj := k + 1; kj < n; kj++ {
				if permOcc(k, kj) {
					f.updT = append(f.updT, pos[ki*n+kj])
					f.updL = append(f.updL, pos[ki*n+k])
					f.updU = append(f.updU, pos[k*n+kj])
				}
			}
		}
	}
	f.divStart[n] = int32(len(f.divSlot))
	f.updStart[n] = int32(len(f.updT))
	f.bwdStart[n] = int32(len(f.bwdSlot))

	// A-pattern scatter: CSC slot s of A lands at vals[scatter[s]].
	f.scatter = make([]int32, a.NNZ())
	for j := 0; j < n; j++ {
		kj := invCol[j]
		for p := a.ColPtr[j]; p < a.ColPtr[j+1]; p++ {
			ki := invRow[a.RowIdx[p]]
			f.scatter[p] = pos[int(ki)*n+int(kj)]
		}
	}
	f.pb = make([]float64, n)
	f.growth = 1
	return nil
}

// pickPivot selects the next pivot by Markowitz cost (r-1)(c-1) among
// numerically acceptable active entries (threshold partial pivoting against
// the active column max). Acceptable diagonal entries are preferred at equal
// cost — the natural choice for MNA matrices where gmin guarantees node
// diagonals. Returns (-1,-1) when the active submatrix has no nonzero entry.
func (f *SparseLU) pickPivot(n int, occ []bool, w []float64, rowCnt, colCnt []int32, rowDone, colDone []bool) (int, int) {
	bestI, bestJ := -1, -1
	var bestCost int64 = math.MaxInt64
	bestDiag := false
	for j := 0; j < n; j++ {
		if colDone[j] {
			continue
		}
		// Active column max for the threshold test.
		colMax := 0.0
		for i := 0; i < n; i++ {
			if rowDone[i] || !occ[i*n+j] {
				continue
			}
			if v := math.Abs(w[i*n+j]); v > colMax {
				colMax = v
			}
		}
		if colMax == 0 {
			continue
		}
		thresh := pivotThreshold * colMax
		for i := 0; i < n; i++ {
			if rowDone[i] || !occ[i*n+j] {
				continue
			}
			if math.Abs(w[i*n+j]) < thresh {
				continue
			}
			cost := int64(rowCnt[i]-1) * int64(colCnt[j]-1)
			diag := i == j
			if cost < bestCost || (cost == bestCost && diag && !bestDiag) {
				bestCost, bestI, bestJ, bestDiag = cost, i, j, diag
			}
		}
	}
	return bestI, bestJ
}

// Refactor recomputes the numeric factors from the values of a (whose
// pattern must be the one given to Analyze) by replaying the static
// elimination tape. It performs no allocations. It returns ErrSingular when
// a pivot is exactly zero; the factors are then undefined until the next
// successful Refactor. Callers watching Growth can detect a numerically
// degenerate pivot order and re-Analyze.
func (f *SparseLU) Refactor(a *Sparse) error {
	if a.N != f.n || a.NNZ() != len(f.scatter) {
		panic("linalg: SparseLU.Refactor pattern mismatch")
	}
	vals := f.vals
	for i := range vals {
		vals[i] = 0
	}
	for s, p := range f.scatter {
		vals[p] += a.Val[s]
	}
	growth := 0.0
	for k := 0; k < f.n; k++ {
		piv := vals[f.pivSlot[k]]
		if piv == 0 {
			f.growth = math.Inf(1)
			return ErrSingular
		}
		for t := f.divStart[k]; t < f.divStart[k+1]; t++ {
			m := vals[f.divSlot[t]] / piv
			vals[f.divSlot[t]] = m
			if m < 0 {
				m = -m
			}
			if m > growth {
				growth = m
			}
		}
		for t := f.updStart[k]; t < f.updStart[k+1]; t++ {
			vals[f.updT[t]] -= vals[f.updL[t]] * vals[f.updU[t]]
		}
	}
	f.growth = growth
	return nil
}

// Growth returns the largest multiplier magnitude |L(i,k)| of the last
// Refactor. Partial pivoting would bound this by 1; a static pivot order
// keeps it modest while the values resemble the analyzed ones, and a blow-up
// (say beyond 1e8) signals the pivot order has gone numerically degenerate
// for the current values — the caller should re-Analyze.
func (f *SparseLU) Growth() float64 { return f.growth }

// N returns the matrix dimension.
func (f *SparseLU) N() int { return f.n }

// FlopEstimate returns the number of fused multiply-subtract update ops per
// refactor — the sparse counterpart of the dense n³/3 figure, for perf
// records.
func (f *SparseLU) FlopEstimate() int { return len(f.updT) }

// SolvePermuting solves A x = b using the current factors: b is permuted by
// the pivot row order into an internal buffer, the static triangular solves
// run in place, and the column permutation scatters the solution into
// scratch (which must have length n) in original unknown order. It matches
// the dense LU.SolvePermuting contract: no allocations, scratch returned.
func (f *SparseLU) SolvePermuting(b, scratch []float64) []float64 {
	n := f.n
	if len(b) != n || len(scratch) != n {
		panic("linalg: SparseLU.SolvePermuting dimension mismatch")
	}
	pb, vals := f.pb, f.vals
	for k := 0; k < n; k++ {
		pb[k] = b[f.rowPerm[k]]
	}
	// Forward substitution with unit-lower L, column-oriented: the div tape
	// slots are exactly the L column entries.
	for k := 0; k < n; k++ {
		xk := pb[k]
		if xk == 0 {
			continue
		}
		for t := f.divStart[k]; t < f.divStart[k+1]; t++ {
			pb[f.divRow[t]] -= vals[f.divSlot[t]] * xk
		}
	}
	// Back substitution with U, row-oriented.
	for k := n - 1; k >= 0; k-- {
		s := pb[k]
		for t := f.bwdStart[k]; t < f.bwdStart[k+1]; t++ {
			s -= vals[f.bwdSlot[t]] * pb[f.bwdCol[t]]
		}
		pb[k] = s / vals[f.pivSlot[k]]
	}
	for k := 0; k < n; k++ {
		scratch[f.colPerm[k]] = pb[k]
	}
	return scratch
}
