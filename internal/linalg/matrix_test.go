package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("At wrong: %v", m)
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Fatal("Set failed")
	}
	m.Add(0, 0, 1)
	if m.At(0, 0) != 10 {
		t.Fatal("Add failed")
	}
	tt := m.T()
	if tt.At(1, 0) != 2 {
		t.Fatal("T failed")
	}
	c := m.Clone()
	c.Set(0, 0, -1)
	if m.At(0, 0) != 10 {
		t.Fatal("Clone aliases storage")
	}
	m.Zero()
	if m.MaxAbs() != 0 {
		t.Fatal("Zero failed")
	}
}

func TestIdentityMul(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	i3 := Identity(3)
	p := a.Mul(i3)
	for k := range a.Data {
		if p.Data[k] != a.Data[k] {
			t.Fatalf("A*I != A at %d", k)
		}
	}
}

func TestMulVec(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y := a.MulVec([]float64{1, -1})
	want := []float64{-1, -1, -1}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MulVec got %v want %v", y, want)
		}
	}
}

func TestAddSubScale(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := NewMatrixFromRows([][]float64{{4, 3}, {2, 1}})
	s := a.AddMatrix(b)
	if s.At(0, 0) != 5 || s.At(1, 1) != 5 {
		t.Fatal("AddMatrix wrong")
	}
	d := a.SubMatrix(b)
	if d.At(0, 0) != -3 || d.At(1, 1) != 3 {
		t.Fatal("SubMatrix wrong")
	}
	a.Clone().Scale(2) // should not affect a
	if a.At(0, 0) != 1 {
		t.Fatal("Scale aliased")
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if !almostEq(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2 wrong")
	}
	if NormInf([]float64{-7, 2}) != 7 {
		t.Fatal("NormInf wrong")
	}
	// Norm2 must not overflow for huge components.
	if v := Norm2([]float64{1e308, 1e308}); math.IsInf(v, 1) {
		t.Fatal("Norm2 overflowed")
	}
}

func randomMatrix(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestLUSolveResidualProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(8)
		a := randomMatrix(r, n)
		// Diagonal boost keeps condition numbers sane for the property.
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := SolveLinear(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEq(got[i], x[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := NewLU(a); err == nil {
		t.Fatal("expected ErrSingular for rank-1 matrix")
	}
}

func TestLUDet(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{2, 0, 0}, {0, 3, 0}, {0, 0, 4}})
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), 24, 1e-12) {
		t.Fatalf("Det got %g want 24", f.Det())
	}
	// Swap two rows: determinant negates.
	b := NewMatrixFromRows([][]float64{{0, 3, 0}, {2, 0, 0}, {0, 0, 4}})
	fb, _ := NewLU(b)
	if !almostEq(fb.Det(), -24, 1e-12) {
		t.Fatalf("Det after swap got %g want -24", fb.Det())
	}
}

func TestInverseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		a := randomMatrix(rng, n)
		for i := 0; i < n; i++ {
			a.Add(i, i, float64(n))
		}
		inv, err := Inverse(a)
		if err != nil {
			t.Fatal(err)
		}
		p := a.Mul(inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(p.At(i, j)-want) > 1e-9 {
					t.Fatalf("A*inv(A) not identity at (%d,%d): %g", i, j, p.At(i, j))
				}
			}
		}
	}
}

func TestSolvePermutingNoAlloc(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{0, 2}, {3, 1}})
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{4, 5}
	scratch := make([]float64, 2)
	allocs := testing.AllocsPerRun(100, func() {
		f.SolvePermuting(b, scratch)
	})
	if allocs != 0 {
		t.Fatalf("SolvePermuting allocates %v per run", allocs)
	}
	x := f.SolvePermuting(b, scratch)
	// 2y=4 → y=2; 3x+y=5 → x=1
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 2, 1e-12) {
		t.Fatalf("SolvePermuting wrong: %v", x)
	}
}
