package linalg

import "math/cmplx"

// CMatrix is a dense, row-major complex matrix used by AC small-signal
// analysis (G + jωC systems).
type CMatrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewCMatrix returns a zeroed r×c complex matrix.
func NewCMatrix(r, c int) *CMatrix {
	return &CMatrix{Rows: r, Cols: c, Data: make([]complex128, r*c)}
}

// At returns element (i,j).
func (m *CMatrix) At(i, j int) complex128 { return m.Data[i*m.Cols+j] }

// Set assigns element (i,j).
func (m *CMatrix) Set(i, j int, v complex128) { m.Data[i*m.Cols+j] = v }

// Add adds v to element (i,j).
func (m *CMatrix) Add(i, j int, v complex128) { m.Data[i*m.Cols+j] += v }

// Row returns a view of row i.
func (m *CMatrix) Row(i int) []complex128 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Zero clears the matrix in place.
func (m *CMatrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CLU is an LU factorization with partial pivoting of a complex matrix.
type CLU struct {
	lu  *CMatrix
	piv []int
}

// NewCLU factors the square complex matrix a (not modified).
func NewCLU(a *CMatrix) (*CLU, error) {
	if a.Rows != a.Cols {
		panic("linalg: CLU of non-square matrix")
	}
	n := a.Rows
	lu := NewCMatrix(n, n)
	copy(lu.Data, a.Data)
	f := &CLU{lu: lu, piv: make([]int, n)}
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		p := k
		max := cmplx.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := cmplx.Abs(lu.At(i, k)); v > max {
				max, p = v, i
			}
		}
		if max == 0 {
			return nil, ErrSingular
		}
		if p != k {
			rk, rp := lu.Row(k), lu.Row(p)
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
		}
		pivot := lu.At(k, k)
		for i := k + 1; i < n; i++ {
			m := lu.At(i, k) / pivot
			lu.Set(i, k, m)
			if m == 0 {
				continue
			}
			ri, rk := lu.Row(i), lu.Row(k)
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return f, nil
}

// Solve solves A x = b for one complex right-hand side.
func (f *CLU) Solve(b []complex128) []complex128 {
	n := f.lu.Rows
	if len(b) != n {
		panic("linalg: CLU.Solve dimension mismatch")
	}
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		ri := f.lu.Row(i)
		s := x[i]
		for j := 0; j < i; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		ri := f.lu.Row(i)
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
	return x
}

// SolveCLinear factors and solves in one call.
func SolveCLinear(a *CMatrix, b []complex128) ([]complex128, error) {
	f, err := NewCLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
