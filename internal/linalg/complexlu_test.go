package linalg

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestCLUSolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(8)
		a := NewCMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		for i := 0; i < n; i++ {
			a.Add(i, i, complex(float64(n), 0))
		}
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		// b = A x
		b := make([]complex128, n)
		for i := 0; i < n; i++ {
			s := complex(0, 0)
			for j := 0; j < n; j++ {
				s += a.At(i, j) * x[j]
			}
			b[i] = s
		}
		got, err := SolveCLinear(a, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(got[i]-x[i]) > 1e-9*(1+cmplx.Abs(x[i])) {
				t.Fatalf("trial %d: x[%d] = %v want %v", trial, i, got[i], x[i])
			}
		}
	}
}

func TestCLUSingular(t *testing.T) {
	a := NewCMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := NewCLU(a); err == nil {
		t.Fatal("expected ErrSingular")
	}
}

func TestCMatrixOps(t *testing.T) {
	m := NewCMatrix(2, 2)
	m.Set(0, 1, 3+4i)
	if m.At(0, 1) != 3+4i {
		t.Fatal("Set/At")
	}
	m.Add(0, 1, 1)
	if m.At(0, 1) != 4+4i {
		t.Fatal("Add")
	}
	if len(m.Row(1)) != 2 {
		t.Fatal("Row")
	}
	m.Zero()
	if m.At(0, 1) != 0 {
		t.Fatal("Zero")
	}
}
