package linalg

import (
	"errors"
	"math/rand"
	"testing"
)

func randomSPDish(rng *rand.Rand, n int) *Matrix {
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	for i := 0; i < n; i++ {
		a.Add(i, i, float64(n)) // diagonal dominance keeps it well-conditioned
	}
	return a
}

func TestFactorMatchesNewLU(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 16} {
		a := randomSPDish(rng, n)
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		fresh, err := NewLU(a)
		if err != nil {
			t.Fatal(err)
		}
		ws := NewLUWorkspace(n)
		if err := ws.Factor(a); err != nil {
			t.Fatal(err)
		}
		// Same pivots, same factors, bit-identical solves.
		xf, xw := fresh.Solve(b), ws.Solve(b)
		for i := range xf {
			if xf[i] != xw[i] {
				t.Fatalf("n=%d: workspace solve differs at %d: %g vs %g", n, i, xw[i], xf[i])
			}
		}
		if fresh.Det() != ws.Det() {
			t.Fatalf("n=%d: det %g vs %g", n, ws.Det(), fresh.Det())
		}
	}
}

func TestFactorReuseAndAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	const n = 12
	ws := NewLUWorkspace(n)
	b := make([]float64, n)
	scratch := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	// Refactoring a sequence of matrices into one workspace must match fresh
	// factorizations each time (no state leaks between Factor calls).
	for trial := 0; trial < 4; trial++ {
		a := randomSPDish(rng, n)
		if err := ws.Factor(a); err != nil {
			t.Fatal(err)
		}
		fresh, err := NewLU(a)
		if err != nil {
			t.Fatal(err)
		}
		xw := ws.SolvePermuting(b, scratch)
		xf := fresh.Solve(b)
		for i := range xf {
			if xw[i] != xf[i] {
				t.Fatalf("trial %d: reused workspace differs at %d", trial, i)
			}
		}
	}
	a := randomSPDish(rng, n)
	allocs := testing.AllocsPerRun(50, func() {
		if err := ws.Factor(a); err != nil {
			t.Fatal(err)
		}
		ws.SolvePermuting(b, scratch)
	})
	if allocs != 0 {
		t.Fatalf("Factor+SolvePermuting allocates %.1f objects per run, want 0", allocs)
	}
}

func TestFactorSingular(t *testing.T) {
	a := NewMatrix(3, 3) // all zeros
	ws := NewLUWorkspace(3)
	if err := ws.Factor(a); !errors.Is(err, ErrSingular) {
		t.Fatalf("singular factor returned %v", err)
	}
	// The workspace must recover on the next successful Factor.
	rng := rand.New(rand.NewSource(9))
	good := randomSPDish(rng, 3)
	if err := ws.Factor(good); err != nil {
		t.Fatal(err)
	}
	fresh, _ := NewLU(good)
	b := []float64{1, 2, 3}
	xw, xf := ws.Solve(b), fresh.Solve(b)
	for i := range xf {
		if xw[i] != xf[i] {
			t.Fatalf("post-singular reuse differs at %d", i)
		}
	}
}

func TestFactorDimensionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched workspace did not panic")
		}
	}()
	ws := NewLUWorkspace(3)
	ws.Factor(NewMatrix(4, 4))
}
