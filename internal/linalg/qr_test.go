package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRSquareSolve(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{2, 1}, {1, 3}})
	x, err := LeastSquares(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 → x=1, y=3
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("got %v", x)
	}
}

func TestQROverdetermined(t *testing.T) {
	// Fit y = 2t + 1 exactly from 4 points.
	a := NewMatrixFromRows([][]float64{{0, 1}, {1, 1}, {2, 1}, {3, 1}})
	b := []float64{1, 3, 5, 7}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 2, 1e-12) || !almostEq(x[1], 1, 1e-12) {
		t.Fatalf("got %v", x)
	}
}

func TestQRRankDeficient(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected error for rank-deficient LS")
	}
}

// Property: the least-squares residual is orthogonal to the column space.
func TestQRNormalEquationsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 4 + r.Intn(8)
		n := 2 + r.Intn(3)
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // rank-deficient random draw: skip
		}
		res := VecSub(b, a.MulVec(x))
		for j := 0; j < n; j++ {
			col := make([]float64, m)
			for i := 0; i < m; i++ {
				col[i] = a.At(i, j)
			}
			if math.Abs(Dot(col, res)) > 1e-8*(1+Norm2(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskySolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(6)
		// Build SPD: BᵀB + I.
		b := randomMatrix(rng, n)
		a := b.T().Mul(b)
		for i := 0; i < n; i++ {
			a.Add(i, i, 1)
		}
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		rhs := a.MulVec(x)
		got := ch.Solve(rhs)
		for i := range x {
			if !almostEq(got[i], x[i], 1e-9) {
				t.Fatalf("Cholesky solve mismatch: got %v want %v", got, x)
			}
		}
		// L Lᵀ must reconstruct a.
		l := ch.L()
		rec := l.Mul(l.T())
		if rec.SubMatrix(a).MaxAbs() > 1e-9*(1+a.MaxAbs()) {
			t.Fatal("L*Lᵀ does not reconstruct A")
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := NewCholesky(a); err == nil {
		t.Fatal("expected ErrSingular for indefinite matrix")
	}
}

func TestCholeskyColoring(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{4, 2}, {2, 3}})
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	v := ch.MulLVec([]float64{1, 0})
	// First column of L is (2, 1).
	if !almostEq(v[0], 2, 1e-12) || !almostEq(v[1], 1, 1e-12) {
		t.Fatalf("MulLVec got %v", v)
	}
}
