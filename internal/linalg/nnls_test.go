package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNNLSUnconstrainedInterior(t *testing.T) {
	// When the unconstrained solution is positive, NNLS must match LS.
	a := NewMatrixFromRows([][]float64{{2, 0}, {0, 3}, {1, 1}})
	xTrue := []float64{1.5, 2.5}
	b := a.MulVec(xTrue)
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xTrue {
		if !almostEq(x[i], xTrue[i], 1e-9) {
			t.Fatalf("got %v want %v", x, xTrue)
		}
	}
}

func TestNNLSActiveConstraint(t *testing.T) {
	// Classic example where plain LS would produce a negative coordinate.
	a := NewMatrixFromRows([][]float64{{1, 1}, {1, 1.0001}})
	b := []float64{1, 0.9} // LS solution has a large negative component
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if v < 0 {
			t.Fatalf("x[%d]=%g negative", i, v)
		}
	}
}

// Properties: non-negativity always; KKT optimality (gradient ≤ 0 on active
// set, ≈0 on passive set).
func TestNNLSKKTProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := 3 + r.Intn(10)
		n := 1 + r.Intn(4)
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		x, err := NNLS(a, b)
		if err != nil {
			return false
		}
		res := VecSub(b, a.MulVec(x))
		tol := 1e-6 * (1 + Norm2(b))
		for j := 0; j < n; j++ {
			if x[j] < 0 {
				return false
			}
			col := make([]float64, m)
			for i := 0; i < m; i++ {
				col[i] = a.At(i, j)
			}
			g := Dot(col, res) // gradient of ½||r||² wrt x_j is -g
			if x[j] > 1e-10 {
				if math.Abs(g) > tol {
					return false
				}
			} else if g > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestNNLSRecoversNonNegativeTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		m, n := 12, 4
		a := NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = math.Abs(rng.NormFloat64())
		}
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = math.Abs(rng.NormFloat64())
		}
		b := a.MulVec(xTrue)
		x, err := NNLS(a, b)
		if err != nil {
			t.Fatal(err)
		}
		// Exact data: residual must be ~0.
		res := VecSub(b, a.MulVec(x))
		if Norm2(res) > 1e-8*(1+Norm2(b)) {
			t.Fatalf("trial %d: residual %g too large", trial, Norm2(res))
		}
	}
}

func TestNNLSZeroRHS(t *testing.T) {
	a := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	x, err := NNLS(a, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("got %v want zeros", x)
	}
}
