package linalg

import (
	"math"
)

// NNLS solves the non-negative least squares problem
//
//	min ||A x - b||2  subject to  x >= 0
//
// using the active-set algorithm of Lawson & Hanson (1974). BPV extraction
// uses this to solve for squared mismatch coefficients α², which must be
// non-negative to be physical (a plain least-squares solve can go negative
// when a parameter contributes almost nothing to the measured variances).
func NNLS(a *Matrix, b []float64) ([]float64, error) {
	m, n := a.Rows, a.Cols
	if len(b) != m {
		panic("linalg: NNLS dimension mismatch")
	}
	x := make([]float64, n)
	passive := make([]bool, n) // true: in passive (free) set P
	w := make([]float64, n)    // gradient Aᵀ(b - A x)

	resid := func() []float64 {
		r := VecClone(b)
		for i := 0; i < m; i++ {
			ri := a.Row(i)
			for j := 0; j < n; j++ {
				r[i] -= ri[j] * x[j]
			}
		}
		return r
	}
	// Solve the unconstrained LS problem restricted to the passive set.
	solvePassive := func() ([]float64, []int, error) {
		var cols []int
		for j := 0; j < n; j++ {
			if passive[j] {
				cols = append(cols, j)
			}
		}
		sub := NewMatrix(m, len(cols))
		for i := 0; i < m; i++ {
			for k, j := range cols {
				sub.Set(i, k, a.At(i, j))
			}
		}
		z, err := LeastSquares(sub, b)
		return z, cols, err
	}

	const maxOuter = 300
	tolScale := 0.0
	for _, v := range a.Data {
		if av := math.Abs(v); av > tolScale {
			tolScale = av
		}
	}
	tol := 1e-12 * (tolScale*NormInf(b) + 1)

	for outer := 0; outer < maxOuter; outer++ {
		r := resid()
		for j := 0; j < n; j++ {
			s := 0.0
			for i := 0; i < m; i++ {
				s += a.At(i, j) * r[i]
			}
			w[j] = s
		}
		// Find the most violated KKT multiplier among the active set.
		best, bestJ := tol, -1
		for j := 0; j < n; j++ {
			if !passive[j] && w[j] > best {
				best, bestJ = w[j], j
			}
		}
		if bestJ < 0 {
			return x, nil // KKT satisfied
		}
		passive[bestJ] = true

		for inner := 0; inner < maxOuter; inner++ {
			z, cols, err := solvePassive()
			if err != nil {
				// Rank-deficient passive set: drop the variable we just
				// added and accept the current iterate.
				passive[bestJ] = false
				return x, nil
			}
			minZ := math.Inf(1)
			for _, v := range z {
				if v < minZ {
					minZ = v
				}
			}
			if minZ > 0 {
				for j := range x {
					x[j] = 0
				}
				for k, j := range cols {
					x[j] = z[k]
				}
				break
			}
			// Step toward z only as far as feasibility allows.
			alpha := math.Inf(1)
			for k, j := range cols {
				if z[k] <= 0 {
					if d := x[j] - z[k]; d > 0 {
						if t := x[j] / d; t < alpha {
							alpha = t
						}
					}
				}
			}
			if math.IsInf(alpha, 1) {
				alpha = 0
			}
			for k, j := range cols {
				x[j] += alpha * (z[k] - x[j])
			}
			for _, j := range cols {
				if x[j] <= tol {
					x[j] = 0
					passive[j] = false
				}
			}
		}
	}
	return x, nil
}
