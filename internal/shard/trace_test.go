package shard

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"vstat/internal/obs/trace"
)

// traceWorkState gives the tracing tests a worker state whose solver-work
// counters are pure functions of the sample index, so the flight recorder's
// worst-K ranking is deterministic across worker counts, shard sizes, and
// transports.
type traceWorkState struct{ iters, rescues int64 }

func (s *traceWorkState) SolverWork() (int64, int64) { return s.iters, s.rescues }

func traceTestFn(s *traceWorkState, idx int, rng *rand.Rand) (float64, error) {
	s.iters += int64(5 + idx%89)
	if idx%31 == 0 {
		s.rescues += int64(1 + idx%2)
	}
	if idx%97 == 13 {
		return 0, fmt.Errorf("synthetic non-convergence at sample %d", idx)
	}
	return float64(idx) + rng.Float64(), nil
}

func traceExec() ExecFn[float64] {
	return NewExecutor[*traceWorkState, float64](testHash, 2,
		func(int) (*traceWorkState, error) { return &traceWorkState{}, nil }, traceTestFn)
}

// jsonTransport dispatches through the exact JSON serialization the remote
// transports use — the subprocess wire without the subprocess.
type jsonTransport struct{ Exec ExecFn[float64] }

func (j jsonTransport) Dispatch(ctx context.Context, req Request) ([]*Envelope[float64], error) {
	env, err := JSONRoundTrip(ctx, j.Exec, req)
	if err != nil {
		return nil, err
	}
	return []*Envelope[float64]{env}, nil
}

// tracedRun executes one traced sharded campaign and returns the exported
// span set and summary. Endpoint transports are supplied by the caller.
func tracedRun(t *testing.T, n, shardSize, k int, seed int64, eps []Endpoint[float64],
	plan *FaultPlan) ([]trace.Event, trace.Summary, Result[float64]) {
	t.Helper()
	rec := trace.New("coordinator", k)
	runSpan := rec.Start("test run", trace.CatRun, 0)
	cfg := Config{
		N: n, Seed: seed, ConfigHash: testHash, ShardSize: shardSize, MaxFailFrac: 1.0,
		DeadAfter: 20, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond,
		Trace: rec, TraceParent: runSpan.ID(), TraceK: k,
	}
	if plan != nil {
		for i := range eps {
			eps[i].Transport = Wrap(plan, eps[i].Transport)
		}
	}
	res, err := Run(context.Background(), cfg, eps, traceExec())
	if err != nil {
		t.Fatal(err)
	}
	runSpan.End()
	evs, sum := rec.Export()
	return evs, sum, res
}

// TestTraceConnectedAcrossTransports is the distributed-tracing acceptance:
// a campaign spread over an in-process loopback worker, a JSON round-trip
// worker (the subprocess wire format), and a real HTTP worker — with a
// scripted drop forcing one retry attempt — must export one connected
// trace: zero orphans, every worker-side shard span parented to the run
// span, and sample/phase detail surviving only under retained shard spans.
func TestTraceConnectedAcrossTransports(t *testing.T) {
	srv := httptest.NewServer(Handler(traceExec()))
	defer srv.Close()

	plan := &FaultPlan{Rules: []FaultRule{
		{Shard: 1, Attempt: 0, Kind: FaultDrop}, // retry gets a fresh trace ID block
	}}
	eps := []Endpoint[float64]{
		{Name: "loop", Transport: Loopback[float64]{Exec: traceExec()}},
		{Name: "json", Transport: jsonTransport{Exec: traceExec()}},
		{Name: "http", Transport: HTTPEndpoint[float64]{Base: srv.URL}},
	}
	evs, sum, res := tracedRun(t, 600, 100, 4, 20260809, eps, plan)

	if got := trace.Orphans(evs); got != 0 {
		t.Fatalf("%d orphan spans in a %d-span export", got, len(evs))
	}
	var runID uint64
	counts := map[string]int{}
	for i := range evs {
		counts[evs[i].Cat]++
		if evs[i].Cat == trace.CatRun {
			runID = evs[i].ID
		}
	}
	if counts[trace.CatRun] != 1 {
		t.Fatalf("export holds %d run spans, want 1", counts[trace.CatRun])
	}
	if counts[trace.CatShard] != res.Shards {
		t.Fatalf("%d worker-side shard spans for %d committed shards", counts[trace.CatShard], res.Shards)
	}
	// One dispatch span per attempt, including the dropped one.
	if int64(counts[trace.CatDispatch]) != res.Stats.Dispatched {
		t.Fatalf("%d dispatch spans for %d dispatched attempts", counts[trace.CatDispatch], res.Stats.Dispatched)
	}
	if counts[trace.CatSample] == 0 || counts[trace.CatPhase] != 0 {
		// traceWorkState attaches no obs.Scope, so samples carry no phase
		// spans here — but the worst samples' sample spans must survive.
		t.Fatalf("sample detail wrong: %d sample spans, %d phase spans", counts[trace.CatSample], counts[trace.CatPhase])
	}
	shardIDs := map[uint64]bool{}
	for i := range evs {
		ev := &evs[i]
		switch ev.Cat {
		case trace.CatShard:
			if ev.Parent != runID {
				t.Fatalf("shard span %q parented to %d, want the run span %d", ev.Name, ev.Parent, runID)
			}
			shardIDs[ev.ID] = true
		case trace.CatDispatch:
			if ev.Parent != runID {
				t.Fatalf("dispatch span %q parented to %d, want the run span %d", ev.Name, ev.Parent, runID)
			}
			if ev.Note == "" {
				t.Fatalf("dispatch span %q carries no outcome note", ev.Name)
			}
		}
	}
	for i := range evs {
		if evs[i].Cat == trace.CatSample && !shardIDs[evs[i].Parent] {
			t.Fatalf("sample span %d parented to %d, not a committed shard span", evs[i].Sample, evs[i].Parent)
		}
	}
	if len(sum.Worst) != 4 {
		t.Fatalf("flight recorder kept %d records, want 4", len(sum.Worst))
	}
	// Committed-only merge: the dropped attempt's spans must not appear.
	lost := 0
	for i := range evs {
		if evs[i].Cat == trace.CatDispatch && evs[i].Note == "lost" {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("the scripted drop left no lost dispatch span")
	}
}

// TestTraceWorstKIdenticalAcrossDeployments pins the flight-recorder
// determinism contract end to end: the same K worst samples — same
// diagnostics, same order — survive whether the campaign runs on 1, 4, or
// 8 workers, and whether the envelopes cross a wire or not.
func TestTraceWorstKIdenticalAcrossDeployments(t *testing.T) {
	const n, shardSize, k = 1200, 150, 6
	const seed = int64(4242)

	var ref []trace.SampleDiag
	for _, workers := range []int{1, 4, 8} {
		for _, wire := range []bool{false, true} {
			label := fmt.Sprintf("workers=%d wire=%v", workers, wire)
			var eps []Endpoint[float64]
			for w := 0; w < workers; w++ {
				var tr Transport[float64]
				if wire {
					tr = jsonTransport{Exec: traceExec()}
				} else {
					tr = Loopback[float64]{Exec: traceExec()}
				}
				eps = append(eps, Endpoint[float64]{Name: fmt.Sprintf("w%d", w), Transport: tr})
			}
			_, sum, _ := tracedRun(t, n, shardSize, k, seed, eps, nil)
			if len(sum.Worst) != k {
				t.Fatalf("%s: kept %d records, want %d", label, len(sum.Worst), k)
			}
			got := make([]trace.SampleDiag, k)
			for i, r := range sum.Worst {
				got[i] = r.Diag
				got[i].WallNs = 0 // machine timing; excluded from the contract
			}
			if ref == nil {
				ref = got
				if got[0].Verdict != trace.VerdictFailed {
					t.Fatalf("worst record is %+v, want a failed sample on top", got[0])
				}
				continue
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("%s: worst[%d] = %+v, want %+v", label, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestTraceWireRoundTripPreservesRecords pins the envelope encoding: worst
// records and shard spans survive the JSON wire bit-for-bit, IDs included
// (they are large block-based uint64s that would corrupt through float64).
func TestTraceWireRoundTripPreservesRecords(t *testing.T) {
	exec := traceExec()
	req := Request{
		ConfigHash: testHash, Seed: 77, N: 200, Lo: 0, Hi: 200, MaxFailFrac: 1.0,
		Trace: true, TraceK: 3, TraceParent: 41,
		TraceBase: uint64(9) << 48,
	}
	direct, err := exec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	wired, err := JSONRoundTrip(context.Background(), exec, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(wired.Worst) != len(direct.Worst) || len(wired.Worst) != 3 {
		t.Fatalf("wire kept %d worst records, direct %d, want 3", len(wired.Worst), len(direct.Worst))
	}
	for i := range direct.Worst {
		// Two separate executions: wall time differs, everything else must not.
		wired.Worst[i].Diag.WallNs, direct.Worst[i].Diag.WallNs = 0, 0
		if wired.Worst[i].Diag != direct.Worst[i].Diag {
			t.Fatalf("worst[%d].Diag changed on the wire: %+v vs %+v", i, wired.Worst[i].Diag, direct.Worst[i].Diag)
		}
		for j := range direct.Worst[i].Events {
			w, d := wired.Worst[i].Events[j], direct.Worst[i].Events[j]
			if w.ID != d.ID || w.Parent != d.Parent {
				t.Fatalf("worst[%d] span %d IDs changed on the wire: (%d,%d) vs (%d,%d)",
					i, j, w.ID, w.Parent, d.ID, d.Parent)
			}
		}
	}
	if len(wired.TraceEvents) != 1 || wired.TraceEvents[0].ID != req.TraceBase ||
		wired.TraceEvents[0].Parent != req.TraceParent {
		t.Fatalf("shard span corrupted on the wire: %+v", wired.TraceEvents)
	}
	// Untraced requests must not grow the envelope.
	req.Trace = false
	plain, err := exec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TraceEvents != nil || plain.Worst != nil {
		t.Fatal("untraced request produced trace payload")
	}
}
