package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vstat/internal/obs"
)

// killAfter cancels the run (the in-process stand-in for kill -9 on the
// coordinator) once `remaining` envelopes have been delivered by the
// transport. The envelope that trips the switch is itself discarded by the
// coordinator's shutdown check, so the journal ends up holding roughly —
// not exactly — that many commits, like a real crash would.
type killAfter[T any] struct {
	next      Transport[T]
	remaining *atomic.Int64
	kill      func()
}

func (k killAfter[T]) Dispatch(ctx context.Context, req Request) ([]*Envelope[T], error) {
	envs, err := k.next.Dispatch(ctx, req)
	if err == nil && len(envs) > 0 && k.remaining.Add(-1) == 0 {
		k.kill()
	}
	return envs, err
}

// faultMatrix is the standard drop/vanish/duplicate/corrupt script the
// bit-identical acceptance tests share.
func faultMatrix() []FaultRule {
	return []FaultRule{
		{Shard: 0, Attempt: 0, Kind: FaultDrop},
		{Shard: 1, Attempt: 0, Kind: FaultDrop},
		{Shard: 1, Attempt: 1, Kind: FaultVanish},
		{Shard: 2, Attempt: 0, Kind: FaultDuplicate},
		{Shard: 3, Attempt: 0, Kind: FaultCorrupt},
	}
}

// TestJournalResumeKillAt50BitIdentical is the crash-safety acceptance
// test: a 10k-sample journaled run is killed once ~50% of shards have
// committed, then restarted with the same journal. The restart must
// restore the committed prefix (ResumeSkipped > 0, those shards never
// re-dispatched) and merge bit-identically to the single-process run — at
// shard sizes {256, 1000, 4096}, differing worker counts, under the
// drop/vanish/duplicate/corrupt fault matrix.
func TestJournalResumeKillAt50BitIdentical(t *testing.T) {
	const n = 10_000
	const seed = int64(20260809)
	want, wantRep := baseline(t, n, seed)

	for _, tc := range []struct {
		shardSize int
		workers   int
	}{
		{256, 2},
		{1000, 3},
		{4096, 1},
	} {
		label := fmt.Sprintf("shardSize=%d workers=%d", tc.shardSize, tc.workers)
		nShards := (n + tc.shardSize - 1) / tc.shardSize
		path := filepath.Join(t.TempDir(), "run.journal.json")
		cfg := Config{
			N: n, Seed: seed, ConfigHash: testHash,
			ShardSize:   tc.shardSize,
			MaxFailFrac: 1.0,
			MaxAttempts: 6,
			DeadAfter:   50,
			BackoffBase: time.Millisecond,
			BackoffMax:  20 * time.Millisecond,
		}

		// Phase 1: journaled run killed at ~50% committed.
		ctx1, kill := context.WithCancel(context.Background())
		plan := &FaultPlan{Rules: faultMatrix()}
		var remaining atomic.Int64
		remaining.Store(int64(nShards/2 + 1))
		var eps []Endpoint[float64]
		for w := 0; w < tc.workers; w++ {
			eps = append(eps, Endpoint[float64]{
				Name: fmt.Sprintf("w%d", w),
				Transport: killAfter[float64]{
					next:      Wrap(plan, Loopback[float64]{Exec: testExec()}),
					remaining: &remaining,
					kill:      kill,
				},
			})
		}
		jnl1, err := CreateJournal[float64](path, cfg)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		_, err = RunWithOptions(ctx1, cfg, eps, nil, RunOptions[float64]{Journal: jnl1})
		kill()
		if err == nil && nShards > 1 {
			t.Fatalf("%s: killed run reported success", label)
		}
		committed := jnl1.Commits()
		jnl1.Close()
		if nShards > 2 && (committed == 0 || committed >= int64(nShards)) {
			t.Fatalf("%s: kill landed badly: %d of %d shards journaled", label, committed, nShards)
		}

		// Phase 2: fresh coordinator, same journal, same fault script (the
		// uncommitted shards restart at attempt 0, so their faults replay).
		jnl2, err := OpenJournal[float64](path, cfg)
		if err != nil {
			t.Fatalf("%s: reopen: %v", label, err)
		}
		var eps2 []Endpoint[float64]
		for w := 0; w < tc.workers; w++ {
			eps2 = append(eps2, Endpoint[float64]{
				Name:      fmt.Sprintf("w%d", w),
				Transport: Wrap(&FaultPlan{Rules: faultMatrix()}, Loopback[float64]{Exec: testExec()}),
			})
		}
		res, err := RunWithOptions(context.Background(), cfg, eps2, nil, RunOptions[float64]{Journal: jnl2})
		if err != nil {
			t.Fatalf("%s: resume: %v", label, err)
		}
		assertBitIdentical(t, label, res, want, wantRep)
		assertStatsInvariants(t, label, res)
		if res.Stats.ResumeSkipped != committed {
			t.Fatalf("%s: restored %d shards, journal held %d", label, res.Stats.ResumeSkipped, committed)
		}
		if res.Stats.ResumeSkipped+res.Stats.JournalCommits != int64(nShards) {
			t.Fatalf("%s: restored %d + journaled %d != %d shards",
				label, res.Stats.ResumeSkipped, res.Stats.JournalCommits, nShards)
		}
		// The journal now holds every shard: a third run is pure restore,
		// no dispatch at all.
		jnl3, err := OpenJournal[float64](path, cfg)
		if err != nil {
			t.Fatalf("%s: reopen full: %v", label, err)
		}
		res3, err := RunWithOptions(context.Background(), cfg, nil, nil, RunOptions[float64]{Journal: jnl3})
		jnl3.Close()
		if err != nil {
			t.Fatalf("%s: full-restore run: %v", label, err)
		}
		assertBitIdentical(t, label+" full-restore", res3, want, wantRep)
		if res3.Stats.Dispatched != 0 || res3.Stats.ResumeSkipped != int64(nShards) {
			t.Fatalf("%s: full restore dispatched %d, restored %d of %d",
				label, res3.Stats.Dispatched, res3.Stats.ResumeSkipped, nShards)
		}
	}
}

// TestFaultCoordKillModeResumes drives the coordinator-kill fault mode:
// the plan's Kill hook cancels the run at a scripted (shard, attempt)
// coordinate, and a journaled restart completes bit-identically.
func TestFaultCoordKillModeResumes(t *testing.T) {
	const n = 2000
	const seed = int64(31)
	want, wantRep := baseline(t, n, seed)
	path := filepath.Join(t.TempDir(), "run.journal.json")
	cfg := Config{
		N: n, Seed: seed, ConfigHash: testHash, ShardSize: 250, MaxFailFrac: 1.0,
		BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond, DeadAfter: 50,
	}
	ctx, kill := context.WithCancel(context.Background())
	plan := &FaultPlan{
		Rules: []FaultRule{{Shard: 4, Attempt: 0, Kind: FaultCoordKill}},
		Kill:  kill,
	}
	jnl, err := CreateJournal[float64](path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eps := []Endpoint[float64]{{Name: "w0", Transport: Wrap(plan, Loopback[float64]{Exec: testExec()})}}
	if _, err := RunWithOptions(ctx, cfg, eps, nil, RunOptions[float64]{Journal: jnl}); err == nil {
		t.Fatal("coordinator-killed run reported success")
	}
	jnl.Close()

	jnl2, err := OpenJournal[float64](path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	eps2 := []Endpoint[float64]{{Name: "w0", Transport: Loopback[float64]{Exec: testExec()}}}
	res, err := RunWithOptions(context.Background(), cfg, eps2, nil, RunOptions[float64]{Journal: jnl2})
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "coord-kill-resume", res, want, wantRep)
	assertStatsInvariants(t, "coord-kill-resume", res)
	if res.Stats.ResumeSkipped == 0 {
		t.Fatalf("nothing restored from the journal: %+v", res.Stats)
	}
}

// TestJournalTornTailRedispatched pins torn-write recovery: a journal cut
// mid-record (simulated partial write) and one with a flipped byte in its
// final record must both be detected on open — the damaged tail is
// truncated, its shard re-dispatched, and the merged run stays
// bit-identical. This is the corrupt-tail case of the fault matrix.
func TestJournalTornTailRedispatched(t *testing.T) {
	const n = 1000
	const seed = int64(17)
	want, wantRep := baseline(t, n, seed)
	cfg := Config{N: n, Seed: seed, ConfigHash: testHash, ShardSize: 100, MaxFailFrac: 1.0}
	nShards := 10

	fullJournal := func(t *testing.T, path string) {
		jnl, err := CreateJournal[float64](path, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eps := []Endpoint[float64]{{Name: "w0", Transport: Loopback[float64]{Exec: testExec()}}}
		if _, err := RunWithOptions(context.Background(), cfg, eps, nil, RunOptions[float64]{Journal: jnl}); err != nil {
			t.Fatal(err)
		}
		jnl.Close()
	}

	for _, tc := range []struct {
		name   string
		damage func(t *testing.T, path string)
	}{
		{"truncated-mid-record", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Chop the trailing newline plus a slice of the last record:
			// exactly what a crash mid-append leaves behind.
			if err := os.WriteFile(path, raw[:len(raw)-37], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupt-tail-byte", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			// Flip a byte inside the last record's payload (line structure
			// intact, CRC must catch it).
			raw[len(raw)-20] ^= 0x40
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "run.journal.json")
			fullJournal(t, path)
			tc.damage(t, path)
			jnl, err := OpenJournal[float64](path, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer jnl.Close()
			if jnl.Dropped() != 1 {
				t.Fatalf("open dropped %d records, want 1", jnl.Dropped())
			}
			eps := []Endpoint[float64]{{Name: "w0", Transport: Loopback[float64]{Exec: testExec()}}}
			res, err := RunWithOptions(context.Background(), cfg, eps, nil, RunOptions[float64]{Journal: jnl})
			if err != nil {
				t.Fatal(err)
			}
			assertBitIdentical(t, tc.name, res, want, wantRep)
			assertStatsInvariants(t, tc.name, res)
			if res.Stats.ResumeSkipped != int64(nShards-1) {
				t.Fatalf("restored %d shards, want %d (damaged one re-dispatched)",
					res.Stats.ResumeSkipped, nShards-1)
			}
			if res.Stats.Dispatched != 1 || res.Stats.JournalCommits != 1 {
				t.Fatalf("damaged shard not re-dispatched exactly once: %+v", res.Stats)
			}
		})
	}
}

// TestJournalRejectsForeignRun pins run-identity validation: a journal
// written under one (hash, n, shard size, seed) must refuse to resume any
// other run, never silently merge foreign samples.
func TestJournalRejectsForeignRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal.json")
	cfg := Config{N: 1000, Seed: 1, ConfigHash: testHash, ShardSize: 100}
	jnl, err := CreateJournal[float64](path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	jnl.Close()
	for _, mut := range []func(*Config){
		func(c *Config) { c.Seed = 2 },
		func(c *Config) { c.N = 2000 },
		func(c *Config) { c.ShardSize = 50 },
		func(c *Config) { c.ConfigHash = "other" },
	} {
		bad := cfg
		mut(&bad)
		if _, err := OpenJournal[float64](path, bad); err == nil ||
			!strings.Contains(err.Error(), "different run") {
			t.Fatalf("foreign config accepted (err %v)", err)
		}
	}
	// A run handed a journal for a different config must refuse too.
	jnl2, err := OpenJournal[float64](path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	bad := cfg
	bad.Seed = 99
	if _, err := RunWithOptions(context.Background(), bad, nil, testExec(),
		RunOptions[float64]{Journal: jnl2}); err == nil {
		t.Fatal("RunWithOptions accepted a journal from a different run")
	}
}

// TestJournalTornHeaderStartsFresh: a crash inside CreateJournal before
// the header sync leaves a torn first line; open must treat the file as
// fresh rather than erroring forever.
func TestJournalTornHeaderStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"config_`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: 100, Seed: 1, ConfigHash: testHash, ShardSize: 50, MaxFailFrac: 1.0}
	jnl, err := OpenJournal[float64](path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl.Close()
	res, err := RunWithOptions(context.Background(), cfg, nil, testExec(), RunOptions[float64]{Journal: jnl})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ResumeSkipped != 0 || res.Stats.JournalCommits != 2 {
		t.Fatalf("torn-header journal did not start fresh: %+v", res.Stats)
	}
}

// TestStatsCheckCatchesViolations pins the invariant checker `vsshard run`
// exits non-zero on.
func TestStatsCheckCatchesViolations(t *testing.T) {
	good := Stats{
		Dispatched: 4, Committed: 4,
		CommitLatency: make([]time.Duration, 4),
	}
	if err := good.Check(4); err != nil {
		t.Fatalf("sound stats rejected: %v", err)
	}
	resumed := Stats{
		Dispatched: 1, Committed: 4, ResumeSkipped: 3, JournalCommits: 1,
		CommitLatency: make([]time.Duration, 1),
	}
	if err := resumed.Check(4); err != nil {
		t.Fatalf("sound resumed stats rejected: %v", err)
	}
	cases := []struct {
		name string
		s    Stats
	}{
		{"missing-commit", Stats{Dispatched: 4, Committed: 3, CommitLatency: make([]time.Duration, 3)}},
		{"latency-mismatch", Stats{Dispatched: 4, Committed: 4, CommitLatency: make([]time.Duration, 3)}},
		{"accounting", Stats{Dispatched: 9, Committed: 4, CommitLatency: make([]time.Duration, 4)}},
		{"excess-restored", Stats{Dispatched: 0, Committed: 4, ResumeSkipped: 5}},
	}
	for _, tc := range cases {
		if err := tc.s.Check(4); err == nil {
			t.Fatalf("%s: violation passed Check", tc.name)
		} else if !strings.Contains(err.Error(), "invariant") {
			t.Fatalf("%s: undiagnostic error %v", tc.name, err)
		}
	}
}

// TestJournalMetricsExported runs a journaled resume with a registry
// attached and checks the new counters and gauges flow through the obs
// snapshot and the Prometheus text exposition with their HELP strings.
func TestJournalMetricsExported(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal.json")
	cfg := Config{N: 1000, Seed: 5, ConfigHash: testHash, ShardSize: 100, MaxFailFrac: 1.0}

	jnl, err := CreateJournal[float64](path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	eps := []Endpoint[float64]{{Name: "w0", Transport: Loopback[float64]{Exec: testExec()}}}
	if _, err := RunWithOptions(context.Background(), cfg, eps, nil, RunOptions[float64]{Journal: jnl}); err != nil {
		t.Fatal(err)
	}
	jnl.Close()

	reg := obs.NewRegistry()
	cfg.Metrics = NewMetrics(reg)
	jnl2, err := OpenJournal[float64](path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	res, err := RunWithOptions(context.Background(), cfg, nil, nil, RunOptions[float64]{Journal: jnl2})
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["shard_journal_resume_skipped_total"] != res.Stats.ResumeSkipped ||
		res.Stats.ResumeSkipped != 10 {
		t.Fatalf("resume-skipped counter %d, stats %d, want 10",
			counters["shard_journal_resume_skipped_total"], res.Stats.ResumeSkipped)
	}
	if counters["shard_journal_commits_total"] != res.Stats.JournalCommits {
		t.Fatalf("journal-commits counter %d, stats %d",
			counters["shard_journal_commits_total"], res.Stats.JournalCommits)
	}
	gauges := map[string]int64{}
	for _, g := range snap.Gauges {
		gauges[g.Name] = g.Value
	}
	if gauges["shard_coordinator_peak_rss_bytes"] <= 0 {
		t.Fatalf("peak-RSS gauge %d, want > 0", gauges["shard_coordinator_peak_rss_bytes"])
	}
	if gauges["shard_coordinator_peak_live_envelopes"] != res.Stats.PeakLiveEnvelopes {
		t.Fatalf("peak-live gauge %d, stats %d",
			gauges["shard_coordinator_peak_live_envelopes"], res.Stats.PeakLiveEnvelopes)
	}
	var buf strings.Builder
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# HELP shard_journal_commits_total",
		"# HELP shard_journal_resume_skipped_total",
		"# TYPE shard_coordinator_peak_rss_bytes gauge",
		"shard_coordinator_peak_live_envelopes",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Prometheus exposition missing %q:\n%s", want, buf.String())
		}
	}
}

// TestJournalAppendFailureFailsRun: once the journal cannot make a commit
// durable, the run must fail loudly rather than continue volatile.
func TestJournalAppendFailureFailsRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.journal.json")
	cfg := Config{N: 200, Seed: 1, ConfigHash: testHash, ShardSize: 50, MaxFailFrac: 1.0}
	jnl, err := CreateJournal[float64](path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	jnl.Close() // writes on a closed file must error
	_, err = RunWithOptions(context.Background(), cfg, nil, testExec(), RunOptions[float64]{Journal: jnl})
	if err == nil || !strings.Contains(err.Error(), "journal append") {
		t.Fatalf("run with a dead journal returned %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("journal failure masked as cancellation: %v", err)
	}
}
