package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vstat/internal/lifecycle"
	"vstat/internal/montecarlo"
	"vstat/internal/obs/trace"
)

// Config parameterizes a coordinated run.
type Config struct {
	N          int
	Seed       int64
	ConfigHash string
	// ShardSize is the index-range width per shard; <= 0 defaults to 1024.
	ShardSize int
	// Bench is passed through to workers (names the sample function on
	// their side).
	Bench string

	// SampleBudget / HangGrace / MaxFailFrac travel in every Request and
	// bound the samples inside workers (lifecycle semantics, identical to
	// a local run).
	SampleBudget lifecycle.Budget
	HangGrace    time.Duration
	MaxFailFrac  float64

	// ShardWall bounds one dispatch attempt's wall time; 0 = unlimited.
	ShardWall time.Duration
	// MaxAttempts caps transport attempts per shard before the shard falls
	// back to local execution (or the run fails); <= 0 defaults to 4.
	MaxAttempts int
	// BackoffBase/BackoffMax shape the exponential retry backoff:
	// attempt k waits base·2^(k-1) + jitter, capped at max. Defaults
	// 50ms / 2s. Jitter is deterministic in (seed, shard, attempt) so a
	// replayed failure script backs off identically.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// StragglerAfter launches one speculative duplicate attempt against a
	// shard still uncommitted that long after its dispatch; 0 disables
	// speculation.
	StragglerAfter time.Duration
	// DeadAfter retires a worker endpoint after that many consecutive
	// failed attempts; <= 0 defaults to 3. A fatal dispatch error (config
	// mismatch — see FatalError) retires the endpoint immediately: a worker
	// built for a different run can never serve any shard of this one.
	DeadAfter int

	// Metrics, when non-nil, receives the run's Stats (RecordStats).
	Metrics *Metrics

	// Trace, when non-nil, stitches the run into a distributed trace:
	// every dispatch attempt records a coordinator-side span under
	// TraceParent, each Request carries the parent span ID plus a freshly
	// reserved sample-ID block, and the committed envelopes' worker-side
	// spans and worst-sample records merge into the recorder in shard
	// order (deterministic regardless of commit order). TraceK <= 0
	// defaults to the recorder's K.
	Trace       *trace.Recorder
	TraceParent uint64
	TraceK      int
}

func (c *Config) withDefaults() Config {
	d := *c
	if d.ShardSize <= 0 {
		d.ShardSize = 1024
	}
	if d.MaxAttempts <= 0 {
		d.MaxAttempts = 4
	}
	if d.BackoffBase <= 0 {
		d.BackoffBase = 50 * time.Millisecond
	}
	if d.BackoffMax <= 0 {
		d.BackoffMax = 2 * time.Second
	}
	if d.DeadAfter <= 0 {
		d.DeadAfter = 3
	}
	return d
}

// StreamFn folds one committed envelope into caller-owned running state —
// the constant-memory merge hook. The coordinator calls it exactly once per
// shard (commit CAS guarantees it), serialized, in commit order; the
// envelope's Results are released right after the call, so the callback
// must not retain the envelope or any slice inside it. Fold into an
// order-independent accumulator (montecarlo.StreamSummary) to stay
// bit-identical to a single-process run: commit order is
// scheduling-dependent.
type StreamFn[T any] func(env *Envelope[T])

// RunOptions carries the crash-safety and memory-profile knobs that need
// the run's result type (Config stays non-generic).
type RunOptions[T any] struct {
	// Journal, when non-nil, is the durable dispatch journal: shards it
	// already holds are restored without dispatch (Stats.ResumeSkipped),
	// and every new commit is appended + fsynced before it counts. The
	// journal must have been created/opened for this exact Config.
	Journal *Journal[T]
	// Stream, when non-nil, switches the run to the streaming
	// constant-memory merge: each committed envelope is folded via Stream
	// and released instead of buffered, holding peak coordinator memory at
	// O(max shard × in-flight attempts) rather than O(N). Result.Out is
	// nil; Result.Report is still exact (per-shard failure records and
	// counts are retained — they are small and bounded by the failure
	// rate, not by N).
	Stream StreamFn[T]
}

// Result is a completed coordinated run.
type Result[T any] struct {
	// Out is the merged full-run result vector — nil in streaming mode,
	// where the values live only in the Stream callback's accumulator.
	Out    []T
	Report montecarlo.RunReport
	Shards int
	Stats  Stats
}

// ErrNoWorkers reports a run that lost every endpoint with shards still
// uncommitted and had no local executor to degrade to.
var ErrNoWorkers = errors.New("shard: all workers lost and no local executor")

// shardMeta is what the streaming merge keeps of a committed envelope after
// the values are folded and released: exactly the fields the final
// RunReport and trace merge need, none of them O(shard size).
type shardMeta struct {
	attempted   int
	failures    []montecarlo.RecordedFailure
	rescued     map[string]int64
	traceEvents []trace.Event
	worst       []trace.SampleRecord
}

// shardState tracks one shard through the dispatch/commit state machine.
// commit is the CAS word: 0 = pending, 1 = committed (first valid envelope
// wins; later valid envelopes are duplicates) — the same first-writer-wins
// contract the hang watchdog uses for sample commits.
type shardState[T any] struct {
	ord    int
	lo, hi int

	commit      atomic.Int32
	env         *Envelope[T] // buffered mode: owned by the committer, read after join
	meta        *shardMeta   // streaming mode: what survives the fold
	attempts    atomic.Int32 // next attempt ordinal to hand out
	failures    atomic.Int32 // failed/lost attempts so far
	inFlight    atomic.Int32
	specDone    atomic.Bool // one speculative duplicate max per shard
	localQueued atomic.Bool
	dispatchNS  atomic.Int64 // wall-clock ns of the newest dispatch start
}

type ticketKind int

const (
	ticketInitial ticketKind = iota
	ticketRetry
	ticketSpec
)

type ticket struct {
	shard   int
	attempt int
	kind    ticketKind
}

// coordinator is the mutable state of one Run.
type coordinator[T any] struct {
	cfg    Config
	opts   RunOptions[T]
	shards []*shardState[T]
	local  ExecFn[T]

	tickets   chan ticket
	localQ    chan ticket
	committed atomic.Int64
	live      atomic.Int64 // live worker endpoints
	done      chan struct{}
	failOnce  sync.Once
	failErr   error
	failedCh  chan struct{}

	// commitMu serializes the post-CAS ingest (journal append + streaming
	// fold): commits are per-shard rare, so one lock keeps both the
	// journal single-writer and the Stream callback free of concurrency.
	commitMu sync.Mutex

	statDispatched atomic.Int64
	statRetried    atomic.Int64
	statSpeculated atomic.Int64
	statDuplicates atomic.Int64
	statLost       atomic.Int64
	statWorkers    atomic.Int64
	statLocal      atomic.Int64
	statResumed    atomic.Int64
	statJournal    atomic.Int64

	// liveEnvs counts envelopes the coordinator currently retains;
	// peakLive is its high-water mark — the streaming-merge memory bound
	// the acceptance test pins (buffered mode honestly peaks at the shard
	// count).
	liveEnvs atomic.Int64
	peakLive atomic.Int64

	latMu sync.Mutex
	lats  []time.Duration
}

func (c *coordinator[T]) streaming() bool { return c.opts.Stream != nil }

func (c *coordinator[T]) noteLive(d int64) {
	v := c.liveEnvs.Add(d)
	for {
		p := c.peakLive.Load()
		if v <= p || c.peakLive.CompareAndSwap(p, v) {
			return
		}
	}
}

// Run executes an N-sample Monte Carlo run as index-range shards over the
// given worker endpoints, retrying, speculating, and degrading per cfg,
// and merges the committed envelopes bit-identically to a single-process
// run. local, when non-nil, is the coordinator's in-process executor: it
// serves shards whose transport attempts are exhausted and the whole run
// when every endpoint has been retired (graceful degradation). With no
// endpoints at all, every shard runs locally.
func Run[T any](ctx context.Context, cfg Config, endpoints []Endpoint[T], local ExecFn[T]) (Result[T], error) {
	return RunWithOptions(ctx, cfg, endpoints, local, RunOptions[T]{})
}

// RunWithOptions is Run with the crash-safety knobs: a durable dispatch
// journal (killed coordinator resumes re-dispatching only uncommitted
// ranges) and/or the streaming constant-memory merge.
func RunWithOptions[T any](ctx context.Context, cfg Config, endpoints []Endpoint[T], local ExecFn[T], opts RunOptions[T]) (Result[T], error) {
	cfg = cfg.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.N <= 0 {
		return Result[T]{}, nil
	}
	if opts.Journal != nil && !opts.Journal.matches(cfg) {
		return Result[T]{}, fmt.Errorf("shard: journal %s belongs to a different run configuration", opts.Journal.path)
	}
	nShards := (cfg.N + cfg.ShardSize - 1) / cfg.ShardSize
	c := &coordinator[T]{
		cfg:   cfg,
		opts:  opts,
		local: local,
		// Never closed; capacity covers every possible initial, retry, and
		// speculative ticket so enqueues never block.
		tickets:  make(chan ticket, nShards*(cfg.MaxAttempts+2)+16),
		localQ:   make(chan ticket, nShards+16),
		done:     make(chan struct{}),
		failedCh: make(chan struct{}),
	}
	for i := 0; i < nShards; i++ {
		lo, hi, _ := shardRange(cfg.N, cfg.ShardSize, i)
		c.shards = append(c.shards, &shardState[T]{ord: i, lo: lo, hi: hi})
	}

	// Restore the journal's committed prefix before anything dispatches:
	// each restored envelope takes its shard's commit CAS exactly as a live
	// one would, so the rest of the machinery simply never sees those
	// shards as pending. Replay streams one envelope at a time — resume is
	// as constant-memory as the streaming merge itself.
	if opts.Journal != nil {
		_, err := opts.Journal.Replay(func(env *Envelope[T]) error {
			c.tryCommit(c.shards[env.Shard], env, time.Time{}, true)
			return nil
		})
		if err != nil {
			return Result[T]{Shards: nShards}, fmt.Errorf("shard: journal replay: %w", err)
		}
	}

	dispatchCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	if len(endpoints) == 0 {
		// Degenerate deployment: no workers configured, run everything on
		// the local executor.
		for _, s := range c.shards {
			if s.commit.Load() != 0 {
				continue
			}
			s.localQueued.Store(true)
			c.localQ <- ticket{shard: s.ord, kind: ticketInitial}
		}
	} else {
		for _, s := range c.shards {
			if s.commit.Load() != 0 {
				continue
			}
			c.tickets <- ticket{shard: s.ord, kind: ticketInitial}
		}
		c.live.Store(int64(len(endpoints)))
		for _, ep := range endpoints {
			wg.Add(1)
			go func(ep Endpoint[T]) {
				defer wg.Done()
				c.workerLoop(dispatchCtx, ep)
			}(ep)
		}
	}
	if local != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.localLoop(dispatchCtx)
		}()
	}
	if cfg.StragglerAfter > 0 && len(endpoints) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.stragglerLoop(dispatchCtx)
		}()
	}

	var runErr error
	select {
	case <-c.done:
	case <-c.failedCh:
		runErr = c.failErr
	case <-ctx.Done():
		runErr = fmt.Errorf("shard: run cancelled: %w", ctx.Err())
	}
	// Stop everything and join every goroutine so stats and the committed
	// envelopes are final before the merge reads them.
	cancel()
	wg.Wait()

	stats := Stats{
		Dispatched:        c.statDispatched.Load(),
		Retried:           c.statRetried.Load(),
		Speculated:        c.statSpeculated.Load(),
		Committed:         c.committed.Load(),
		Duplicates:        c.statDuplicates.Load(),
		Lost:              c.statLost.Load(),
		WorkersLost:       c.statWorkers.Load(),
		LocalFallback:     c.statLocal.Load(),
		ResumeSkipped:     c.statResumed.Load(),
		JournalCommits:    c.statJournal.Load(),
		PeakLiveEnvelopes: c.peakLive.Load(),
		CommitLatency:     c.lats,
	}
	cfg.Metrics.RecordStats(stats)
	res := Result[T]{Shards: nShards, Stats: stats}
	if runErr != nil {
		return res, runErr
	}
	if c.streaming() {
		rep, err := c.assembleStreamed()
		if err != nil {
			return res, err
		}
		res.Report = rep
		return res, nil
	}
	envs := make([]*Envelope[T], 0, nShards)
	for _, s := range c.shards {
		if s.commit.Load() != 1 || s.env == nil {
			return res, fmt.Errorf("shard: shard %d [%d,%d) never committed", s.ord, s.lo, s.hi)
		}
		envs = append(envs, s.env)
		// Merge trace payloads committed-envelopes-only and in shard order:
		// the worst-K set is deterministic in the diagnostics, and the span
		// stream is deterministic up to timestamps.
		if cfg.Trace != nil {
			cfg.Trace.Append(s.env.TraceEvents...)
			cfg.Trace.AddWorst(s.env.Worst)
		}
	}
	out, rep, err := Merge(cfg.N, envs)
	if err != nil {
		return res, err
	}
	res.Out, res.Report = out, rep
	return res, nil
}

// assembleStreamed builds the final RunReport from the per-shard metas, in
// shard order — exactly the accumulation Merge performs, minus the result
// vector the Stream callback already consumed.
func (c *coordinator[T]) assembleStreamed() (montecarlo.RunReport, error) {
	rep := montecarlo.RunReport{}
	for _, s := range c.shards {
		if s.commit.Load() != 1 || s.meta == nil {
			return rep, fmt.Errorf("shard: shard %d [%d,%d) never committed", s.ord, s.lo, s.hi)
		}
		m := s.meta
		rep.Attempted += m.attempted
		rep.Failed += len(m.failures)
		rep.Succeeded += m.attempted - len(m.failures)
		for _, f := range m.failures {
			if f.Panic {
				rep.Panics++
			}
			rep.Failures = append(rep.Failures, montecarlo.SampleFailure{Idx: f.Idx, Err: f.Err()})
		}
		if len(m.rescued) > 0 {
			if rep.Rescued == nil {
				rep.Rescued = make(map[string]int64)
			}
			for k, v := range m.rescued {
				rep.Rescued[k] += v
			}
		}
		if c.cfg.Trace != nil {
			c.cfg.Trace.Append(m.traceEvents...)
			c.cfg.Trace.AddWorst(m.worst)
		}
	}
	return rep, nil
}

// tryCommit is the single commit path: win the shard's CAS, make the
// envelope durable (journal append + fsync) when a journal is attached,
// then either fold-and-release it (streaming) or retain it for the final
// merge (buffered). restored marks journal replay: no re-append, no
// latency sample, counted in ResumeSkipped. Returns false when another
// attempt already committed the shard (the caller counts a duplicate).
func (c *coordinator[T]) tryCommit(s *shardState[T], env *Envelope[T], start time.Time, restored bool) bool {
	if !s.commit.CompareAndSwap(0, 1) {
		return false
	}
	c.noteLive(1)
	c.commitMu.Lock()
	if !restored && c.opts.Journal != nil {
		if err := c.opts.Journal.Append(env); err != nil {
			// Durability is the whole point of the journal: a commit that
			// cannot be made durable fails the run rather than silently
			// continuing volatile.
			c.commitMu.Unlock()
			c.noteLive(-1)
			c.failOnce.Do(func() {
				c.failErr = fmt.Errorf("shard: journal append for shard %d: %w", s.ord, err)
				close(c.failedCh)
			})
			return true
		}
		c.statJournal.Add(1)
	}
	if c.streaming() {
		if c.opts.Stream != nil {
			c.opts.Stream(env)
		}
		s.meta = &shardMeta{
			attempted:   env.Attempted,
			failures:    env.Failures,
			rescued:     env.Rescued,
			traceEvents: env.TraceEvents,
			worst:       env.Worst,
		}
	} else {
		s.env = env
	}
	c.commitMu.Unlock()
	if c.streaming() {
		c.noteLive(-1) // Results released; only the O(1) meta survives
	}
	if restored {
		c.statResumed.Add(1)
	} else {
		c.latMu.Lock()
		c.lats = append(c.lats, time.Since(start))
		c.latMu.Unlock()
	}
	if c.committed.Add(1) == int64(len(c.shards)) {
		close(c.done)
	}
	return true
}

func (c *coordinator[T]) request(s *shardState[T], attempt int) Request {
	r := Request{
		ConfigHash:   c.cfg.ConfigHash,
		Seed:         c.cfg.Seed,
		N:            c.cfg.N,
		Shard:        s.ord,
		Lo:           s.lo,
		Hi:           s.hi,
		Attempt:      attempt,
		Bench:        c.cfg.Bench,
		SampleBudget: c.cfg.SampleBudget,
		HangGrace:    c.cfg.HangGrace,
		MaxFailFrac:  c.cfg.MaxFailFrac,
	}
	if c.cfg.Trace != nil {
		r.Trace = true
		r.TraceK = c.cfg.TraceK
		if r.TraceK <= 0 {
			r.TraceK = c.cfg.Trace.K()
		}
		r.TraceParent = c.cfg.TraceParent
		// A fresh ID block per attempt: two attempts at the same shard
		// (retry, speculation) can both produce complete span sets without
		// colliding; only the committed one is ever merged.
		r.TraceBase = c.cfg.Trace.AllocBase()
	}
	return r
}

// workerLoop is one endpoint's dispatch loop: one in-flight attempt at a
// time, retired after cfg.DeadAfter consecutive failures — or immediately
// on a fatal dispatch error, since a worker refusing this run's config will
// refuse every shard of it.
func (c *coordinator[T]) workerLoop(ctx context.Context, ep Endpoint[T]) {
	consecutive := 0
	for {
		select {
		case <-ctx.Done():
			return
		case t := <-c.tickets:
			s := c.shards[t.shard]
			if s.commit.Load() != 0 || s.localQueued.Load() {
				continue // already satisfied or handed to local
			}
			ok, fatal := c.attempt(ctx, ep.Transport, s, t)
			if ctx.Err() != nil {
				return // don't blame the worker for run shutdown
			}
			if ok {
				consecutive = 0
				continue
			}
			consecutive++
			if fatal || consecutive >= c.cfg.DeadAfter {
				c.statWorkers.Add(1)
				if c.live.Add(-1) == 0 {
					c.sweepToLocal()
				}
				return
			}
		}
	}
}

// attempt runs one dispatch attempt and routes its outcome. ok is false
// when the attempt counts against the worker (lost/error/invalid); fatal
// additionally marks a non-retryable refusal (FatalError) that should
// retire the endpoint at once.
func (c *coordinator[T]) attempt(ctx context.Context, tr Transport[T], s *shardState[T], t ticket) (ok, fatal bool) {
	attempt := int(s.attempts.Add(1)) - 1
	c.statDispatched.Add(1)
	switch t.kind {
	case ticketRetry:
		c.statRetried.Add(1)
	case ticketSpec:
		c.statSpeculated.Add(1)
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	start := time.Now()
	s.dispatchNS.Store(start.UnixNano())

	actx := ctx
	var acancel context.CancelFunc
	if c.cfg.ShardWall > 0 {
		actx, acancel = context.WithTimeout(ctx, c.cfg.ShardWall)
		defer acancel()
	}
	sp := c.cfg.Trace.Start(fmt.Sprintf("dispatch shard %d attempt %d", s.ord, attempt),
		trace.CatDispatch, c.cfg.TraceParent)
	envs, err := tr.Dispatch(actx, c.request(s, attempt))
	if ctx.Err() != nil {
		sp.Note("shutdown")
		sp.End()
		return true, false // run is shutting down; outcome no longer matters
	}
	committedHere := false
	var verr error
	if err == nil {
		for _, env := range envs {
			if env == nil {
				continue
			}
			if verr = env.Validate(c.cfg.ConfigHash, c.cfg.N, s.lo, s.hi); verr != nil {
				continue
			}
			if c.tryCommit(s, env, start, false) {
				committedHere = true
			} else {
				c.statDuplicates.Add(1)
			}
		}
	}
	if committedHere || s.commit.Load() != 0 {
		if committedHere {
			sp.Note("committed")
		} else {
			sp.Note("duplicate")
		}
		sp.End()
		return err == nil && verr == nil, false
	}
	// Attempt produced nothing usable for a still-pending shard: lost.
	sp.Note("lost")
	sp.End()
	c.statLost.Add(1)
	s.failures.Add(1)
	c.scheduleRetry(ctx, s)
	return false, IsFatal(err)
}

// scheduleRetry books the next attempt for a still-pending shard: an
// exponential-backoff transport retry while attempts remain and workers
// live, local fallback otherwise, run failure when neither exists.
func (c *coordinator[T]) scheduleRetry(ctx context.Context, s *shardState[T]) {
	if s.commit.Load() != 0 || s.localQueued.Load() {
		return
	}
	fails := int(s.failures.Load())
	if fails >= c.cfg.MaxAttempts || c.live.Load() == 0 {
		c.queueLocal(s)
		return
	}
	delay := c.backoff(s.ord, fails)
	timer := time.AfterFunc(delay, func() {
		if ctx.Err() != nil || s.commit.Load() != 0 || s.localQueued.Load() {
			return
		}
		if c.live.Load() == 0 {
			c.queueLocal(s)
			return
		}
		select {
		case c.tickets <- ticket{shard: s.ord, attempt: int(s.attempts.Load()), kind: ticketRetry}:
		default:
		}
	})
	// Kill pending timers at shutdown so Run's wg.Wait isn't the only
	// thing keeping them from firing into a dead coordinator (harmless but
	// noisy under -race with closed channels nearby).
	go func() {
		<-ctx.Done()
		timer.Stop()
	}()
}

// backoff returns base·2^(fails-1) + deterministic jitter, capped.
func (c *coordinator[T]) backoff(shard, fails int) time.Duration {
	d := c.cfg.BackoffBase << (fails - 1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	// Deterministic jitter in [0, BackoffBase): replaying the same fault
	// script yields the same timing, yet distinct (shard, attempt) pairs
	// decorrelate.
	j := splitmix64(uint64(c.cfg.Seed)*0x9e3779b97f4a7c15 + uint64(shard)<<20 + uint64(fails) + 1)
	jit := time.Duration(j % uint64(c.cfg.BackoffBase))
	if d+jit > c.cfg.BackoffMax {
		return c.cfg.BackoffMax
	}
	return d + jit
}

// splitmix64 is the same mixer montecarlo seeds sample RNGs with (kept
// local: montecarlo's is unexported).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// queueLocal routes a shard to the local executor exactly once; with no
// local executor the run fails (nothing left that could complete it).
func (c *coordinator[T]) queueLocal(s *shardState[T]) {
	if !s.localQueued.CompareAndSwap(false, true) {
		return
	}
	if c.local == nil {
		c.failOnce.Do(func() {
			c.failErr = fmt.Errorf("%w (shard %d [%d,%d) undeliverable after %d lost attempts)",
				ErrNoWorkers, s.ord, s.lo, s.hi, s.failures.Load())
			close(c.failedCh)
		})
		return
	}
	c.localQ <- ticket{shard: s.ord, kind: ticketRetry}
}

// sweepToLocal reroutes every uncommitted shard after the last worker
// dies — the graceful-degradation path.
func (c *coordinator[T]) sweepToLocal() {
	for _, s := range c.shards {
		if s.commit.Load() == 0 {
			c.queueLocal(s)
		}
	}
}

// localLoop serves the local-fallback queue with the coordinator's own
// executor (loopback semantics, no transport, no retry — a local failure
// fails the run, matching a plain single-process run).
func (c *coordinator[T]) localLoop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case t := <-c.localQ:
			s := c.shards[t.shard]
			if s.commit.Load() != 0 {
				continue
			}
			attempt := int(s.attempts.Add(1)) - 1
			c.statDispatched.Add(1)
			c.statLocal.Add(1)
			start := time.Now()
			sp := c.cfg.Trace.Start(fmt.Sprintf("dispatch shard %d attempt %d (local)", s.ord, attempt),
				trace.CatDispatch, c.cfg.TraceParent)
			env, err := c.local(ctx, c.request(s, attempt))
			if ctx.Err() != nil {
				sp.Note("shutdown")
				sp.End()
				return
			}
			if err == nil {
				err = env.Validate(c.cfg.ConfigHash, c.cfg.N, s.lo, s.hi)
			}
			if err != nil {
				sp.Note("lost")
				sp.End()
				c.failOnce.Do(func() {
					c.failErr = fmt.Errorf("shard: local fallback for shard %d failed: %w", s.ord, err)
					close(c.failedCh)
				})
				return
			}
			if c.tryCommit(s, env, start, false) {
				sp.Note("committed")
				sp.End()
			} else {
				sp.Note("duplicate")
				sp.End()
				c.statDuplicates.Add(1)
			}
		}
	}
}

// stragglerLoop watches in-flight shards and launches at most one
// speculative duplicate attempt per shard once it has been outstanding
// longer than StragglerAfter. First committed envelope wins the CAS; the
// laggard's becomes a counted duplicate — the run-level mirror of the
// sample-level hang watchdog.
func (c *coordinator[T]) stragglerLoop(ctx context.Context) {
	tick := c.cfg.StragglerAfter / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	tk := time.NewTicker(tick)
	defer tk.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tk.C:
			now := time.Now().UnixNano()
			for _, s := range c.shards {
				if s.commit.Load() != 0 || s.inFlight.Load() == 0 || s.specDone.Load() {
					continue
				}
				started := s.dispatchNS.Load()
				if started == 0 || time.Duration(now-started) < c.cfg.StragglerAfter {
					continue
				}
				if s.specDone.CompareAndSwap(false, true) {
					select {
					case c.tickets <- ticket{shard: s.ord, attempt: int(s.attempts.Load()), kind: ticketSpec}:
					default:
					}
				}
			}
		}
	}
}
