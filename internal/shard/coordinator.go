package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vstat/internal/lifecycle"
	"vstat/internal/montecarlo"
	"vstat/internal/obs/trace"
)

// Config parameterizes a coordinated run.
type Config struct {
	N          int
	Seed       int64
	ConfigHash string
	// ShardSize is the index-range width per shard; <= 0 defaults to 1024.
	ShardSize int
	// Bench is passed through to workers (names the sample function on
	// their side).
	Bench string

	// SampleBudget / HangGrace / MaxFailFrac travel in every Request and
	// bound the samples inside workers (lifecycle semantics, identical to
	// a local run).
	SampleBudget lifecycle.Budget
	HangGrace    time.Duration
	MaxFailFrac  float64

	// ShardWall bounds one dispatch attempt's wall time; 0 = unlimited.
	ShardWall time.Duration
	// MaxAttempts caps transport attempts per shard before the shard falls
	// back to local execution (or the run fails); <= 0 defaults to 4.
	MaxAttempts int
	// BackoffBase/BackoffMax shape the exponential retry backoff:
	// attempt k waits base·2^(k-1) + jitter, capped at max. Defaults
	// 50ms / 2s. Jitter is deterministic in (seed, shard, attempt) so a
	// replayed failure script backs off identically.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// StragglerAfter launches one speculative duplicate attempt against a
	// shard still uncommitted that long after its dispatch; 0 disables
	// speculation.
	StragglerAfter time.Duration
	// DeadAfter retires a worker endpoint after that many consecutive
	// failed attempts; <= 0 defaults to 3.
	DeadAfter int

	// Metrics, when non-nil, receives the run's Stats (RecordStats).
	Metrics *Metrics

	// Trace, when non-nil, stitches the run into a distributed trace:
	// every dispatch attempt records a coordinator-side span under
	// TraceParent, each Request carries the parent span ID plus a freshly
	// reserved sample-ID block, and the committed envelopes' worker-side
	// spans and worst-sample records merge into the recorder in shard
	// order (deterministic regardless of commit order). TraceK <= 0
	// defaults to the recorder's K.
	Trace       *trace.Recorder
	TraceParent uint64
	TraceK      int
}

func (c *Config) withDefaults() Config {
	d := *c
	if d.ShardSize <= 0 {
		d.ShardSize = 1024
	}
	if d.MaxAttempts <= 0 {
		d.MaxAttempts = 4
	}
	if d.BackoffBase <= 0 {
		d.BackoffBase = 50 * time.Millisecond
	}
	if d.BackoffMax <= 0 {
		d.BackoffMax = 2 * time.Second
	}
	if d.DeadAfter <= 0 {
		d.DeadAfter = 3
	}
	return d
}

// Result is a completed coordinated run.
type Result[T any] struct {
	Out    []T
	Report montecarlo.RunReport
	Shards int
	Stats  Stats
}

// ErrNoWorkers reports a run that lost every endpoint with shards still
// uncommitted and had no local executor to degrade to.
var ErrNoWorkers = errors.New("shard: all workers lost and no local executor")

// shardState tracks one shard through the dispatch/commit state machine.
// commit is the CAS word: 0 = pending, 1 = committed (first valid envelope
// wins; later valid envelopes are duplicates) — the same first-writer-wins
// contract the hang watchdog uses for sample commits.
type shardState[T any] struct {
	ord    int
	lo, hi int

	commit      atomic.Int32
	env         *Envelope[T] // owned by the committer, read after join
	attempts    atomic.Int32 // next attempt ordinal to hand out
	failures    atomic.Int32 // failed/lost attempts so far
	inFlight    atomic.Int32
	specDone    atomic.Bool // one speculative duplicate max per shard
	localQueued atomic.Bool
	dispatchNS  atomic.Int64 // wall-clock ns of the newest dispatch start
}

type ticketKind int

const (
	ticketInitial ticketKind = iota
	ticketRetry
	ticketSpec
)

type ticket struct {
	shard   int
	attempt int
	kind    ticketKind
}

// coordinator is the mutable state of one Run.
type coordinator[T any] struct {
	cfg    Config
	shards []*shardState[T]
	local  ExecFn[T]

	tickets   chan ticket
	localQ    chan ticket
	committed atomic.Int64
	live      atomic.Int64 // live worker endpoints
	done      chan struct{}
	failOnce  sync.Once
	failErr   error
	failedCh  chan struct{}

	statDispatched atomic.Int64
	statRetried    atomic.Int64
	statSpeculated atomic.Int64
	statDuplicates atomic.Int64
	statLost       atomic.Int64
	statWorkers    atomic.Int64
	statLocal      atomic.Int64

	latMu sync.Mutex
	lats  []time.Duration
}

// Run executes an N-sample Monte Carlo run as index-range shards over the
// given worker endpoints, retrying, speculating, and degrading per cfg,
// and merges the committed envelopes bit-identically to a single-process
// run. local, when non-nil, is the coordinator's in-process executor: it
// serves shards whose transport attempts are exhausted and the whole run
// when every endpoint has been retired (graceful degradation). With no
// endpoints at all, every shard runs locally.
func Run[T any](ctx context.Context, cfg Config, endpoints []Endpoint[T], local ExecFn[T]) (Result[T], error) {
	cfg = cfg.withDefaults()
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.N <= 0 {
		return Result[T]{}, nil
	}
	nShards := (cfg.N + cfg.ShardSize - 1) / cfg.ShardSize
	c := &coordinator[T]{
		cfg:   cfg,
		local: local,
		// Never closed; capacity covers every possible initial, retry, and
		// speculative ticket so enqueues never block.
		tickets:  make(chan ticket, nShards*(cfg.MaxAttempts+2)+16),
		localQ:   make(chan ticket, nShards+16),
		done:     make(chan struct{}),
		failedCh: make(chan struct{}),
	}
	for i := 0; i < nShards; i++ {
		lo := i * cfg.ShardSize
		hi := lo + cfg.ShardSize
		if hi > cfg.N {
			hi = cfg.N
		}
		c.shards = append(c.shards, &shardState[T]{ord: i, lo: lo, hi: hi})
	}

	dispatchCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var wg sync.WaitGroup
	if len(endpoints) == 0 {
		// Degenerate deployment: no workers configured, run everything on
		// the local executor.
		for _, s := range c.shards {
			s.localQueued.Store(true)
			c.localQ <- ticket{shard: s.ord, kind: ticketInitial}
		}
	} else {
		for _, s := range c.shards {
			c.tickets <- ticket{shard: s.ord, kind: ticketInitial}
		}
		c.live.Store(int64(len(endpoints)))
		for _, ep := range endpoints {
			wg.Add(1)
			go func(ep Endpoint[T]) {
				defer wg.Done()
				c.workerLoop(dispatchCtx, ep)
			}(ep)
		}
	}
	if local != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.localLoop(dispatchCtx)
		}()
	}
	if cfg.StragglerAfter > 0 && len(endpoints) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.stragglerLoop(dispatchCtx)
		}()
	}

	var runErr error
	select {
	case <-c.done:
	case <-c.failedCh:
		runErr = c.failErr
	case <-ctx.Done():
		runErr = fmt.Errorf("shard: run cancelled: %w", ctx.Err())
	}
	// Stop everything and join every goroutine so stats and the committed
	// envelopes are final before the merge reads them.
	cancel()
	wg.Wait()

	stats := Stats{
		Dispatched:    c.statDispatched.Load(),
		Retried:       c.statRetried.Load(),
		Speculated:    c.statSpeculated.Load(),
		Committed:     c.committed.Load(),
		Duplicates:    c.statDuplicates.Load(),
		Lost:          c.statLost.Load(),
		WorkersLost:   c.statWorkers.Load(),
		LocalFallback: c.statLocal.Load(),
		CommitLatency: c.lats,
	}
	cfg.Metrics.RecordStats(stats)
	res := Result[T]{Shards: nShards, Stats: stats}
	if runErr != nil {
		return res, runErr
	}
	envs := make([]*Envelope[T], 0, nShards)
	for _, s := range c.shards {
		if s.commit.Load() != 1 || s.env == nil {
			return res, fmt.Errorf("shard: shard %d [%d,%d) never committed", s.ord, s.lo, s.hi)
		}
		envs = append(envs, s.env)
		// Merge trace payloads committed-envelopes-only and in shard order:
		// the worst-K set is deterministic in the diagnostics, and the span
		// stream is deterministic up to timestamps.
		if cfg.Trace != nil {
			cfg.Trace.Append(s.env.TraceEvents...)
			cfg.Trace.AddWorst(s.env.Worst)
		}
	}
	out, rep, err := Merge(cfg.N, envs)
	if err != nil {
		return res, err
	}
	res.Out, res.Report = out, rep
	return res, nil
}

func (c *coordinator[T]) request(s *shardState[T], attempt int) Request {
	r := Request{
		ConfigHash:   c.cfg.ConfigHash,
		Seed:         c.cfg.Seed,
		N:            c.cfg.N,
		Shard:        s.ord,
		Lo:           s.lo,
		Hi:           s.hi,
		Attempt:      attempt,
		Bench:        c.cfg.Bench,
		SampleBudget: c.cfg.SampleBudget,
		HangGrace:    c.cfg.HangGrace,
		MaxFailFrac:  c.cfg.MaxFailFrac,
	}
	if c.cfg.Trace != nil {
		r.Trace = true
		r.TraceK = c.cfg.TraceK
		if r.TraceK <= 0 {
			r.TraceK = c.cfg.Trace.K()
		}
		r.TraceParent = c.cfg.TraceParent
		// A fresh ID block per attempt: two attempts at the same shard
		// (retry, speculation) can both produce complete span sets without
		// colliding; only the committed one is ever merged.
		r.TraceBase = c.cfg.Trace.AllocBase()
	}
	return r
}

// workerLoop is one endpoint's dispatch loop: one in-flight attempt at a
// time, retired after cfg.DeadAfter consecutive failures.
func (c *coordinator[T]) workerLoop(ctx context.Context, ep Endpoint[T]) {
	consecutive := 0
	for {
		select {
		case <-ctx.Done():
			return
		case t := <-c.tickets:
			s := c.shards[t.shard]
			if s.commit.Load() != 0 || s.localQueued.Load() {
				continue // already satisfied or handed to local
			}
			ok := c.attempt(ctx, ep.Transport, s, t)
			if ctx.Err() != nil {
				return // don't blame the worker for run shutdown
			}
			if ok {
				consecutive = 0
				continue
			}
			consecutive++
			if consecutive >= c.cfg.DeadAfter {
				c.statWorkers.Add(1)
				if c.live.Add(-1) == 0 {
					c.sweepToLocal()
				}
				return
			}
		}
	}
}

// attempt runs one dispatch attempt and routes its outcome. Returns false
// when the attempt counts against the worker (lost/error/invalid).
func (c *coordinator[T]) attempt(ctx context.Context, tr Transport[T], s *shardState[T], t ticket) bool {
	attempt := int(s.attempts.Add(1)) - 1
	c.statDispatched.Add(1)
	switch t.kind {
	case ticketRetry:
		c.statRetried.Add(1)
	case ticketSpec:
		c.statSpeculated.Add(1)
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	start := time.Now()
	s.dispatchNS.Store(start.UnixNano())

	actx := ctx
	var acancel context.CancelFunc
	if c.cfg.ShardWall > 0 {
		actx, acancel = context.WithTimeout(ctx, c.cfg.ShardWall)
		defer acancel()
	}
	sp := c.cfg.Trace.Start(fmt.Sprintf("dispatch shard %d attempt %d", s.ord, attempt),
		trace.CatDispatch, c.cfg.TraceParent)
	envs, err := tr.Dispatch(actx, c.request(s, attempt))
	if ctx.Err() != nil {
		sp.Note("shutdown")
		sp.End()
		return true // run is shutting down; outcome no longer matters
	}
	committedHere := false
	var verr error
	if err == nil {
		for _, env := range envs {
			if env == nil {
				continue
			}
			if verr = env.Validate(c.cfg.ConfigHash, c.cfg.N, s.lo, s.hi); verr != nil {
				continue
			}
			if s.commit.CompareAndSwap(0, 1) {
				s.env = env
				committedHere = true
				c.latMu.Lock()
				c.lats = append(c.lats, time.Since(start))
				c.latMu.Unlock()
				if c.committed.Add(1) == int64(len(c.shards)) {
					close(c.done)
				}
			} else {
				c.statDuplicates.Add(1)
			}
		}
	}
	if committedHere || s.commit.Load() != 0 {
		if committedHere {
			sp.Note("committed")
		} else {
			sp.Note("duplicate")
		}
		sp.End()
		return err == nil && verr == nil
	}
	// Attempt produced nothing usable for a still-pending shard: lost.
	sp.Note("lost")
	sp.End()
	c.statLost.Add(1)
	s.failures.Add(1)
	c.scheduleRetry(ctx, s)
	return false
}

// scheduleRetry books the next attempt for a still-pending shard: an
// exponential-backoff transport retry while attempts remain and workers
// live, local fallback otherwise, run failure when neither exists.
func (c *coordinator[T]) scheduleRetry(ctx context.Context, s *shardState[T]) {
	if s.commit.Load() != 0 || s.localQueued.Load() {
		return
	}
	fails := int(s.failures.Load())
	if fails >= c.cfg.MaxAttempts || c.live.Load() == 0 {
		c.queueLocal(s)
		return
	}
	delay := c.backoff(s.ord, fails)
	timer := time.AfterFunc(delay, func() {
		if ctx.Err() != nil || s.commit.Load() != 0 || s.localQueued.Load() {
			return
		}
		if c.live.Load() == 0 {
			c.queueLocal(s)
			return
		}
		select {
		case c.tickets <- ticket{shard: s.ord, attempt: int(s.attempts.Load()), kind: ticketRetry}:
		default:
		}
	})
	// Kill pending timers at shutdown so Run's wg.Wait isn't the only
	// thing keeping them from firing into a dead coordinator (harmless but
	// noisy under -race with closed channels nearby).
	go func() {
		<-ctx.Done()
		timer.Stop()
	}()
}

// backoff returns base·2^(fails-1) + deterministic jitter, capped.
func (c *coordinator[T]) backoff(shard, fails int) time.Duration {
	d := c.cfg.BackoffBase << (fails - 1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	// Deterministic jitter in [0, BackoffBase): replaying the same fault
	// script yields the same timing, yet distinct (shard, attempt) pairs
	// decorrelate.
	j := splitmix64(uint64(c.cfg.Seed)*0x9e3779b97f4a7c15 + uint64(shard)<<20 + uint64(fails) + 1)
	jit := time.Duration(j % uint64(c.cfg.BackoffBase))
	if d+jit > c.cfg.BackoffMax {
		return c.cfg.BackoffMax
	}
	return d + jit
}

// splitmix64 is the same mixer montecarlo seeds sample RNGs with (kept
// local: montecarlo's is unexported).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// queueLocal routes a shard to the local executor exactly once; with no
// local executor the run fails (nothing left that could complete it).
func (c *coordinator[T]) queueLocal(s *shardState[T]) {
	if !s.localQueued.CompareAndSwap(false, true) {
		return
	}
	if c.local == nil {
		c.failOnce.Do(func() {
			c.failErr = fmt.Errorf("%w (shard %d [%d,%d) undeliverable after %d lost attempts)",
				ErrNoWorkers, s.ord, s.lo, s.hi, s.failures.Load())
			close(c.failedCh)
		})
		return
	}
	c.localQ <- ticket{shard: s.ord, kind: ticketRetry}
}

// sweepToLocal reroutes every uncommitted shard after the last worker
// dies — the graceful-degradation path.
func (c *coordinator[T]) sweepToLocal() {
	for _, s := range c.shards {
		if s.commit.Load() == 0 {
			c.queueLocal(s)
		}
	}
}

// localLoop serves the local-fallback queue with the coordinator's own
// executor (loopback semantics, no transport, no retry — a local failure
// fails the run, matching a plain single-process run).
func (c *coordinator[T]) localLoop(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case t := <-c.localQ:
			s := c.shards[t.shard]
			if s.commit.Load() != 0 {
				continue
			}
			attempt := int(s.attempts.Add(1)) - 1
			c.statDispatched.Add(1)
			c.statLocal.Add(1)
			start := time.Now()
			sp := c.cfg.Trace.Start(fmt.Sprintf("dispatch shard %d attempt %d (local)", s.ord, attempt),
				trace.CatDispatch, c.cfg.TraceParent)
			env, err := c.local(ctx, c.request(s, attempt))
			if ctx.Err() != nil {
				sp.Note("shutdown")
				sp.End()
				return
			}
			if err == nil {
				err = env.Validate(c.cfg.ConfigHash, c.cfg.N, s.lo, s.hi)
			}
			if err != nil {
				sp.Note("lost")
				sp.End()
				c.failOnce.Do(func() {
					c.failErr = fmt.Errorf("shard: local fallback for shard %d failed: %w", s.ord, err)
					close(c.failedCh)
				})
				return
			}
			if s.commit.CompareAndSwap(0, 1) {
				sp.Note("committed")
				sp.End()
				s.env = env
				c.latMu.Lock()
				c.lats = append(c.lats, time.Since(start))
				c.latMu.Unlock()
				if c.committed.Add(1) == int64(len(c.shards)) {
					close(c.done)
				}
			} else {
				sp.Note("duplicate")
				sp.End()
				c.statDuplicates.Add(1)
			}
		}
	}
}

// stragglerLoop watches in-flight shards and launches at most one
// speculative duplicate attempt per shard once it has been outstanding
// longer than StragglerAfter. First committed envelope wins the CAS; the
// laggard's becomes a counted duplicate — the run-level mirror of the
// sample-level hang watchdog.
func (c *coordinator[T]) stragglerLoop(ctx context.Context) {
	tick := c.cfg.StragglerAfter / 4
	if tick <= 0 {
		tick = time.Millisecond
	}
	tk := time.NewTicker(tick)
	defer tk.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tk.C:
			now := time.Now().UnixNano()
			for _, s := range c.shards {
				if s.commit.Load() != 0 || s.inFlight.Load() == 0 || s.specDone.Load() {
					continue
				}
				started := s.dispatchNS.Load()
				if started == 0 || time.Duration(now-started) < c.cfg.StragglerAfter {
					continue
				}
				if s.specDone.CompareAndSwap(false, true) {
					select {
					case c.tickets <- ticket{shard: s.ord, attempt: int(s.attempts.Load()), kind: ticketSpec}:
					default:
					}
				}
			}
		}
	}
}
