package shard

import (
	"context"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"vstat/internal/montecarlo"
)

// summarize folds the single-process reference through the same
// order-independent accumulator the streaming merge uses.
func summarize(out []float64, rep montecarlo.RunReport) *montecarlo.StreamSummary {
	failed := make(map[int]bool, len(rep.Failures))
	for _, f := range rep.Failures {
		failed[f.Idx] = true
	}
	sum := &montecarlo.StreamSummary{}
	for i, v := range out {
		if !failed[i] {
			sum.Add(v)
		}
	}
	return sum
}

func assertSummariesBitEqual(t *testing.T, label string, got, want *montecarlo.StreamSummary) {
	t.Helper()
	if got.Count() != want.Count() {
		t.Fatalf("%s: %d good samples, single-process %d", label, got.Count(), want.Count())
	}
	if got.Sum() != want.Sum() || got.Mean() != want.Mean() || got.Std() != want.Std() {
		t.Fatalf("%s: streamed sum/mean/std %.17g/%.17g/%.17g, single-process %.17g/%.17g/%.17g",
			label, got.Sum(), got.Mean(), got.Std(), want.Sum(), want.Mean(), want.Std())
	}
	if got.Min() != want.Min() || got.Max() != want.Max() {
		t.Fatalf("%s: streamed min/max %.17g/%.17g, single-process %.17g/%.17g",
			label, got.Min(), got.Max(), want.Min(), want.Max())
	}
}

// TestStreamingMergeBitIdenticalUnderFaults: the streaming merge must
// report the same statistics, to the last bit, as a single-process pass —
// commits land in scheduling-dependent order, faults force retries and
// duplicates, and the fold releases every envelope, so this pins the
// exact-accumulation contract plus the per-shard meta path that rebuilds
// the RunReport without the envelopes.
func TestStreamingMergeBitIdenticalUnderFaults(t *testing.T) {
	const n = 10_000
	const seed = int64(20260809)
	want, wantRep := baseline(t, n, seed)
	wantSum := summarize(want, wantRep)

	for _, tc := range []struct {
		shardSize int
		workers   int
	}{
		{256, 3},
		{1000, 2},
		{4096, 2},
	} {
		label := fmt.Sprintf("stream shardSize=%d workers=%d", tc.shardSize, tc.workers)
		plan := &FaultPlan{Rules: faultMatrix()}
		cfg := Config{
			N: n, Seed: seed, ConfigHash: testHash,
			ShardSize:   tc.shardSize,
			MaxFailFrac: 1.0,
			MaxAttempts: 6,
			DeadAfter:   50,
			BackoffBase: time.Millisecond,
			BackoffMax:  20 * time.Millisecond,
		}
		var eps []Endpoint[float64]
		for w := 0; w < tc.workers; w++ {
			eps = append(eps, Endpoint[float64]{
				Name:      fmt.Sprintf("w%d", w),
				Transport: Wrap(plan, Loopback[float64]{Exec: testExec()}),
			})
		}
		sum := &montecarlo.StreamSummary{}
		res, err := RunWithOptions(context.Background(), cfg, eps, nil,
			RunOptions[float64]{Stream: func(env *Envelope[float64]) { AddGood(env, sum) }})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if res.Out != nil {
			t.Fatalf("%s: streaming run still buffered %d results", label, len(res.Out))
		}
		assertSummariesBitEqual(t, label, sum, wantSum)
		assertStatsInvariants(t, label, res)
		// The report must be exactly the buffered merge's: same counts,
		// same failure records in ascending global order.
		g, w := res.Report, wantRep
		if g.Attempted != w.Attempted || g.Succeeded != w.Succeeded || g.Failed != w.Failed {
			t.Fatalf("%s: report %s, single-process %s", label, g.String(), w.String())
		}
		if len(g.Failures) != len(w.Failures) {
			t.Fatalf("%s: %d failures, single-process %d", label, len(g.Failures), len(w.Failures))
		}
		for i := range w.Failures {
			if g.Failures[i].Idx != w.Failures[i].Idx ||
				g.Failures[i].Err.Error() != w.Failures[i].Err.Error() {
				t.Fatalf("%s: failure %d = (%d, %q), single-process (%d, %q)", label, i,
					g.Failures[i].Idx, g.Failures[i].Err.Error(),
					w.Failures[i].Idx, w.Failures[i].Err.Error())
			}
		}
	}
}

// fastStreamExec is a near-free sample function for the memory-bound test:
// large N without transient-solver cost.
func fastStreamExec() ExecFn[float64] {
	return NewExecutor[struct{}, float64](testHash, 1, testNewState,
		func(_ struct{}, idx int, rng *rand.Rand) (float64, error) {
			return float64(idx) + rng.Float64(), nil
		})
}

// TestStreamingMergeBoundedLiveEnvelopes is the O(max shard) acceptance
// test: a 1.2M-sample run over 1200 shards must never hold more than a
// worker-bounded handful of envelopes live — each committed envelope is
// folded and released before the merge, so peak coordinator memory scales
// with shard size and worker count, not with N. The buffered path honestly
// reports the O(N) peak it pays.
func TestStreamingMergeBoundedLiveEnvelopes(t *testing.T) {
	if testing.Short() {
		t.Skip("1.2M-sample memory-bound acceptance run; skipped under -short (race rungs)")
	}
	const n = 1_200_000
	const seed = int64(99)
	const workers = 4
	cfg := Config{N: n, Seed: seed, ConfigHash: testHash, ShardSize: 1000}
	var eps []Endpoint[float64]
	for w := 0; w < workers; w++ {
		eps = append(eps, Endpoint[float64]{
			Name:      fmt.Sprintf("w%d", w),
			Transport: Loopback[float64]{Exec: fastStreamExec()},
		})
	}
	sum := &montecarlo.StreamSummary{}
	res, err := RunWithOptions(context.Background(), cfg, eps, nil,
		RunOptions[float64]{Stream: func(env *Envelope[float64]) { AddGood(env, sum) }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 1200 {
		t.Fatalf("shards = %d, want 1200", res.Shards)
	}
	if sum.Count() != n {
		t.Fatalf("streamed %d samples of %d", sum.Count(), n)
	}
	// The bound: one envelope per in-flight worker commit plus slack for
	// the instant between noteLive(+1) and the post-fold release. 1200
	// shards through at most workers+2 live envelopes is the O(max shard)
	// claim.
	if res.Stats.PeakLiveEnvelopes > workers+2 {
		t.Fatalf("streaming merge held %d envelopes live (workers=%d): memory is not O(max shard)",
			res.Stats.PeakLiveEnvelopes, workers)
	}
	if res.Stats.PeakLiveEnvelopes < 1 {
		t.Fatalf("peak live envelopes %d: tracking broken", res.Stats.PeakLiveEnvelopes)
	}

	// Contrast: the buffered merge on a small run peaks at the shard
	// count, which is exactly what the streaming mode exists to avoid.
	bcfg := Config{N: 10_000, Seed: seed, ConfigHash: testHash, ShardSize: 1000}
	bres, err := Run(context.Background(), bcfg, []Endpoint[float64]{
		{Name: "w0", Transport: Loopback[float64]{Exec: fastStreamExec()}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if bres.Stats.PeakLiveEnvelopes != int64(bres.Shards) {
		t.Fatalf("buffered run peak %d, want %d (every envelope retained until merge)",
			bres.Stats.PeakLiveEnvelopes, bres.Shards)
	}
}

// TestStreamingWithJournalResume combines the two tentpole pieces: a
// journaled streaming run killed mid-campaign resumes constant-memory —
// restored envelopes are folded straight from the journal's replay stream
// and released, and the statistics still match the single-process pass
// bit for bit.
func TestStreamingWithJournalResume(t *testing.T) {
	const n = 50_000
	const seed = int64(7)
	cfg := Config{N: n, Seed: seed, ConfigHash: testHash, ShardSize: 1000}
	path := filepath.Join(t.TempDir(), "run.journal.json")

	// Reference summary from a clean streaming run (itself checked against
	// the single-process pass elsewhere; here it is the fixed point).
	wantSum := &montecarlo.StreamSummary{}
	if _, err := RunWithOptions(context.Background(), cfg,
		[]Endpoint[float64]{{Name: "w0", Transport: Loopback[float64]{Exec: fastStreamExec()}}}, nil,
		RunOptions[float64]{Stream: func(env *Envelope[float64]) { AddGood(env, wantSum) }}); err != nil {
		t.Fatal(err)
	}

	// Phase 1: journaled streaming run killed at ~half the shards.
	ctx, kill := context.WithCancel(context.Background())
	var remaining atomic.Int64
	remaining.Store(25)
	jnl, err := CreateJournal[float64](path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum1 := &montecarlo.StreamSummary{}
	_, _ = RunWithOptions(ctx, cfg, []Endpoint[float64]{{
		Name: "w0",
		Transport: killAfter[float64]{
			next:      Loopback[float64]{Exec: fastStreamExec()},
			remaining: &remaining,
			kill:      kill,
		},
	}}, nil, RunOptions[float64]{
		Journal: jnl,
		Stream:  func(env *Envelope[float64]) { AddGood(env, sum1) },
	})
	kill()
	committed := jnl.Commits()
	jnl.Close()
	if committed == 0 || committed >= 50 {
		t.Fatalf("kill landed badly: %d of 50 shards journaled", committed)
	}

	// Phase 2: resume with a fresh accumulator; replayed shards fold from
	// the journal, the rest are dispatched.
	jnl2, err := OpenJournal[float64](path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer jnl2.Close()
	sum2 := &montecarlo.StreamSummary{}
	res, err := RunWithOptions(context.Background(), cfg,
		[]Endpoint[float64]{{Name: "w0", Transport: Loopback[float64]{Exec: fastStreamExec()}}}, nil,
		RunOptions[float64]{
			Journal: jnl2,
			Stream:  func(env *Envelope[float64]) { AddGood(env, sum2) },
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.ResumeSkipped != committed {
		t.Fatalf("restored %d, journal held %d", res.Stats.ResumeSkipped, committed)
	}
	assertSummariesBitEqual(t, "stream+journal resume", sum2, wantSum)
	assertStatsInvariants(t, "stream+journal resume", res)
	if res.Stats.PeakLiveEnvelopes > 3 {
		t.Fatalf("resume held %d envelopes live: replay is not streaming", res.Stats.PeakLiveEnvelopes)
	}
}
