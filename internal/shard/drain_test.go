package shard

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// TestHTTPEndpointDrainingIsRetryable runs the coordinator against a
// server that answers /healthz but 503s its first shard requests with the
// draining header — the retry ladder must treat it as retryable (back off,
// re-dispatch, complete) and never retire the worker ahead of DeadAfter.
func TestHTTPEndpointDrainingIsRetryable(t *testing.T) {
	const n = 400
	const seed = int64(13)
	want, wantRep := baseline(t, n, seed)

	real := Handler(testExec())
	var refused atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// First two shard requests hit the worker mid-drain; after that it
		// has "restarted" and serves normally. Health stays green so the
		// coordinator keeps the endpoint.
		if r.URL.Path == "/shard" && refused.Add(1) <= 2 {
			w.Header().Set(headerDraining, "1")
			http.Error(w, ErrDraining.Error(), http.StatusServiceUnavailable)
			return
		}
		real.ServeHTTP(w, r)
	}))
	defer srv.Close()

	cfg := Config{
		N: n, Seed: seed, ConfigHash: testHash, ShardSize: 100, MaxFailFrac: 1.0,
		DeadAfter: 10, MaxAttempts: 6,
		BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond,
	}
	eps := []Endpoint[float64]{{Name: "w0", Transport: HTTPEndpoint[float64]{Base: srv.URL}}}
	res, err := Run(context.Background(), cfg, eps, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "draining-retry", res, want, wantRep)
	assertStatsInvariants(t, "draining-retry", res)
	if res.Stats.Lost != 2 || res.Stats.Retried != 2 {
		t.Fatalf("draining rejections: lost=%d retried=%d, want 2/2: %+v",
			res.Stats.Lost, res.Stats.Retried, res.Stats)
	}
	if res.Stats.WorkersLost != 0 {
		t.Fatalf("retryable draining retired the worker: %+v", res.Stats)
	}
}

// TestHTTPEndpointConfigMismatchIsFatal runs the coordinator against a
// healthy server built for a different run: the 409 + fatal header must
// retire the endpoint after a single attempt — retrying a config mismatch
// can never succeed — and the run must degrade to the local executor.
func TestHTTPEndpointConfigMismatchIsFatal(t *testing.T) {
	const n = 400
	const seed = int64(13)
	want, wantRep := baseline(t, n, seed)

	foreign := NewExecutor[struct{}, float64]("some-other-config", 1, testNewState, testFn)
	srv := httptest.NewServer(Handler(foreign))
	defer srv.Close()

	cfg := Config{
		N: n, Seed: seed, ConfigHash: testHash, ShardSize: 100, MaxFailFrac: 1.0,
		DeadAfter: 10, MaxAttempts: 6,
		BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond,
	}
	eps := []Endpoint[float64]{{Name: "w0", Transport: HTTPEndpoint[float64]{Base: srv.URL}}}
	res, err := Run(context.Background(), cfg, eps, testExec())
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "fatal-mismatch", res, want, wantRep)
	assertStatsInvariants(t, "fatal-mismatch", res)
	if res.Stats.WorkersLost != 1 {
		t.Fatalf("fatal mismatch did not retire the worker: %+v", res.Stats)
	}
	if res.Stats.Lost != 1 {
		t.Fatalf("worker drew %d attempts before retirement, want exactly 1 (DeadAfter=10 must not apply): %+v",
			res.Stats.Lost, res.Stats)
	}
	if res.Stats.LocalFallback != int64(res.Shards) {
		t.Fatalf("local fallback served %d of %d shards: %+v", res.Stats.LocalFallback, res.Shards, res.Stats)
	}
}

// TestHTTPEndpointErrorMapping pins the wire translation directly: a gated
// handler mid-drain yields errors.Is(err, ErrDraining) (retryable), a
// config-mismatch refusal yields IsFatal, and WaitHealthy refuses a
// draining worker.
func TestHTTPEndpointErrorMapping(t *testing.T) {
	gate := &Gate{}
	srv := httptest.NewServer(GatedHandler(testExec(), gate))
	defer srv.Close()
	ep := HTTPEndpoint[float64]{Base: srv.URL}
	req := Request{ConfigHash: testHash, Seed: 1, N: 100, Lo: 0, Hi: 100, MaxFailFrac: 1.0}

	if _, err := ep.Dispatch(context.Background(), req); err != nil {
		t.Fatalf("open gate refused a healthy request: %v", err)
	}
	bad := req
	bad.ConfigHash = "some-other-run"
	if _, err := ep.Dispatch(context.Background(), bad); !IsFatal(err) {
		t.Fatalf("config mismatch over HTTP not fatal: %v", err)
	} else if errors.Is(err, ErrDraining) {
		t.Fatalf("config mismatch misclassified as draining: %v", err)
	}

	gate.Drain()
	_, err := ep.Dispatch(context.Background(), req)
	if !errors.Is(err, ErrDraining) {
		t.Fatalf("drained worker's rejection not ErrDraining: %v", err)
	}
	if IsFatal(err) {
		t.Fatalf("draining misclassified as fatal: %v", err)
	}
	hctx, hcancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer hcancel()
	if err := WaitHealthy(hctx, srv.URL, nil); err == nil {
		t.Fatal("draining worker passed the health probe")
	}
}

// TestFaultDrainModeRetryable drives the worker-drain fault-matrix mode: a
// scripted ErrDraining at several (shard, attempt) points must behave
// exactly like any retryable loss — backed off, re-dispatched,
// bit-identical result, endpoint alive.
func TestFaultDrainModeRetryable(t *testing.T) {
	const n = 600
	const seed = int64(23)
	want, wantRep := baseline(t, n, seed)
	plan := &FaultPlan{Rules: []FaultRule{
		{Shard: 0, Attempt: 0, Kind: FaultDrain},
		{Shard: 2, Attempt: 0, Kind: FaultDrain},
		{Shard: 2, Attempt: 1, Kind: FaultDrain},
		{Shard: 5, Attempt: 0, Kind: FaultDrain},
	}}
	cfg := Config{
		N: n, Seed: seed, ConfigHash: testHash, ShardSize: 100, MaxFailFrac: 1.0,
		DeadAfter: 10, MaxAttempts: 6,
		BackoffBase: time.Millisecond, BackoffMax: 10 * time.Millisecond,
	}
	eps := []Endpoint[float64]{
		{Name: "w0", Transport: Wrap(plan, Loopback[float64]{Exec: testExec()})},
		{Name: "w1", Transport: Wrap(plan, Loopback[float64]{Exec: testExec()})},
	}
	res, err := Run(context.Background(), cfg, eps, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "fault-drain", res, want, wantRep)
	assertStatsInvariants(t, "fault-drain", res)
	if res.Stats.Lost != 4 || res.Stats.Retried != 4 {
		t.Fatalf("drain faults: lost=%d retried=%d, want 4/4: %+v", res.Stats.Lost, res.Stats.Retried, res.Stats)
	}
	if res.Stats.WorkersLost != 0 {
		t.Fatalf("retryable drains retired a worker: %+v", res.Stats)
	}
}

// TestGateDrainIdempotent pins the gate's tiny contract, nil-safety
// included (an ungated Handler never drains).
func TestGateDrainIdempotent(t *testing.T) {
	var nilGate *Gate
	if nilGate.Draining() {
		t.Fatal("nil gate reports draining")
	}
	g := &Gate{}
	if g.Draining() {
		t.Fatal("fresh gate reports draining")
	}
	g.Drain()
	g.Drain()
	if !g.Draining() {
		t.Fatal("drained gate reports open")
	}
}
