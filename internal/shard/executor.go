package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"vstat/internal/montecarlo"
	"vstat/internal/obs/trace"
)

// ErrConfigMismatch is the worker-side refusal of a request whose config
// hash does not match the run this worker was built for. It is always
// wrapped in a FatalError: no retry against the same worker can fix it.
var ErrConfigMismatch = errors.New("shard: request config mismatch")

// ExecFn executes one shard request to completion and returns its result
// envelope. It is the unit every transport carries: the loopback transport
// calls it in-process, the HTTP handler and the `vsshard work` stdin/stdout
// mode call it on the far side of a wire.
type ExecFn[T any] func(ctx context.Context, req Request) (*Envelope[T], error)

// NewExecutor builds the worker-side ExecFn for a sample function over
// pooled per-worker state — the same (newState, fn) pair a local
// montecarlo.MapPooledReportCtx run uses, so a shard's samples run on the
// identical hot path with zero extra allocations per sample (Offset only
// changes the index arithmetic). cfgHash is the worker's run identity; a
// request carrying a different hash is refused before any work runs, the
// wire analogue of a checkpoint rejecting a foreign config. engineWorkers
// is the in-process parallelism per shard (<= 0 lets the engine default to
// GOMAXPROCS).
func NewExecutor[S, T any](cfgHash string, engineWorkers int,
	newState func(worker int) (S, error),
	fn func(st S, idx int, rng *rand.Rand) (T, error)) ExecFn[T] {
	return func(ctx context.Context, req Request) (*Envelope[T], error) {
		if err := req.Validate(); err != nil {
			return nil, err
		}
		if req.ConfigHash != cfgHash {
			return nil, &FatalError{Err: fmt.Errorf("%w: request for config %.12s…, this worker is built for %.12s…",
				ErrConfigMismatch, req.ConfigHash, cfgHash)}
		}
		opts := montecarlo.RunOpts{
			Policy:    req.Policy(),
			Budget:    req.SampleBudget,
			HangGrace: req.HangGrace,
			Offset:    req.Lo,
		}
		// Worker-side trace: the shard span's ID is the attempt's reserved
		// block base (sample span IDs start at base + 1<<sampleSeqBits, so
		// the two never collide), its parent is the coordinator's span —
		// that explicit edge is what stitches a remote worker's sub-trace
		// into the coordinator's tree.
		var mcr *trace.MC
		var shardEv trace.Event
		if req.Trace {
			proc := fmt.Sprintf("shard-%d/a%d", req.Shard, req.Attempt)
			shardEv = trace.Event{
				Name: fmt.Sprintf("shard %d [%d,%d) attempt %d", req.Shard, req.Lo, req.Hi, req.Attempt),
				Cat:  trace.CatShard, ID: req.TraceBase, Parent: req.TraceParent,
				Start: time.Now().UnixNano(), Proc: proc, Sample: -1,
			}
			mcr = trace.NewStandaloneMC(req.Bench, proc, req.TraceBase, req.TraceBase, req.TraceK)
			opts.Trace = mcr
		}
		out, rep, err := montecarlo.MapPooledReportCtx(ctx, req.Hi-req.Lo, req.Seed,
			engineWorkers, opts, newState, fn)
		if err != nil {
			return nil, fmt.Errorf("shard %d [%d,%d): %w", req.Shard, req.Lo, req.Hi, err)
		}
		env := envelopeFromRun(cfgHash, req, out, rep)
		if req.Trace {
			env.Worst = mcr.Finish()
			shardEv.Dur = time.Now().UnixNano() - shardEv.Start
			env.TraceEvents = []trace.Event{shardEv}
		}
		return env, nil
	}
}

// envelopeFromRun packages a completed shard run. Failure records are
// re-classified through the same NewRecordedFailure the checkpoint uses,
// so a failure's message and panic/budget provenance survive the wire
// identically to a local run's typed error messages.
func envelopeFromRun[T any](cfgHash string, req Request, out []T, rep montecarlo.RunReport) *Envelope[T] {
	e := &Envelope[T]{
		Version:    EnvelopeVersion,
		ConfigHash: cfgHash,
		N:          req.N,
		Shard:      req.Shard,
		Lo:         req.Lo,
		Hi:         req.Hi,
		Results:    out,
		Attempted:  rep.Attempted,
	}
	for _, f := range rep.Failures {
		e.Failures = append(e.Failures, montecarlo.NewRecordedFailure(f.Idx, f.Err))
	}
	if len(rep.Rescued) > 0 {
		e.Rescued = make(map[string]int64, len(rep.Rescued))
		for k, v := range rep.Rescued {
			e.Rescued[k] = v
		}
	}
	return e
}
