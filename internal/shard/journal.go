package shard

// The durable dispatch journal makes the coordinator as expendable as its
// workers. Every committed shard envelope is appended as one CRC-guarded
// JSON record and fsynced before the commit is considered durable, so a
// coordinator killed mid-campaign can restart with the same journal,
// restore the committed prefix, and re-dispatch only the uncommitted
// ranges — merging bit-identically to an uninterrupted run (the envelope is
// the unit of determinism; where it ran and when it was replayed cannot
// change its bytes).
//
// File layout (newline-delimited JSON, append-only):
//
//	line 0:  header — journal version, config hash, N, shard size, seed
//	line 1+: {"crc": <IEEE CRC32 of env bytes>, "env": <Envelope JSON>}
//
// Recovery follows the checkpoint file's conventions (version / config-hash
// / range validation) plus torn-write handling an append-only log needs: a
// record that fails to parse or whose CRC disagrees marks the torn point —
// it and everything after it are dropped and the file is truncated back to
// the last durable record, so the affected shards are simply re-dispatched
// rather than poisoning the merge. A record that parses and checksums but
// fails envelope validation (foreign range, wrong hash) is skipped
// individually for the same reason.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// JournalVersion guards the on-disk journal schema.
const JournalVersion = 1

// journalHeader is line 0 of the file: the run identity every record must
// belong to. ShardSize is pinned because shard ordinals only map to index
// ranges under one fixed tiling.
type journalHeader struct {
	Version    int    `json:"version"`
	ConfigHash string `json:"config_hash"`
	N          int    `json:"n"`
	ShardSize  int    `json:"shard_size"`
	Seed       int64  `json:"seed"`
}

// journalRecord is one committed shard on disk. CRC is the IEEE CRC32 of
// the raw Env bytes, the torn-write detector.
type journalRecord struct {
	CRC uint32          `json:"crc"`
	Env json.RawMessage `json:"env"`
}

// Journal is the coordinator's durable commit log. Create one with
// CreateJournal (fresh campaign) or OpenJournal (resume); pass it to
// RunWithOptions, which replays restored shards and appends each new
// commit. Append is serialized internally; the coordinator additionally
// serializes folds, so a Journal is effectively single-writer.
type Journal[T any] struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	hdr      journalHeader
	replayed bool  // Replay ran (or the file is fresh): appends may begin
	resumeLo int64 // file offset of the first record (after the header)
	resumeHi int64 // file offset one past the last durable record
	commits  int64
	dropped  int // torn/invalid records discarded during open
}

func headerFor(cfg Config) journalHeader {
	d := cfg.withDefaults()
	return journalHeader{
		Version:    JournalVersion,
		ConfigHash: d.ConfigHash,
		N:          d.N,
		ShardSize:  d.ShardSize,
		Seed:       d.Seed,
	}
}

// CreateJournal starts a fresh journal at path for cfg's run, truncating
// any existing file (mirror of a non-resume checkpoint open). The header is
// written and fsynced immediately so even a zero-commit journal identifies
// its run.
func CreateJournal[T any](path string, cfg Config) (*Journal[T], error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create %s: %w", path, err)
	}
	j := &Journal[T]{f: f, path: path, hdr: headerFor(cfg), replayed: true}
	raw, err := json.Marshal(j.hdr)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: encode header: %w", err)
	}
	if _, err := f.Write(append(raw, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: write header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: sync header: %w", err)
	}
	off, _ := f.Seek(0, io.SeekEnd)
	j.resumeLo, j.resumeHi = off, off
	return j, nil
}

// OpenJournal opens an existing journal for resume. A missing file starts
// fresh (so -resume on a first run just runs everything, like the
// checkpoint). A present file must carry a matching header — version,
// config hash, N, shard size, and seed all pin the run identity; any
// disagreement is an error, never a silent overwrite. The record region is
// scanned once: the longest durable prefix of valid records is kept for
// Replay, and the file is truncated back over any torn or unparsable tail
// so future appends land on a clean boundary.
func OpenJournal[T any](path string, cfg Config) (*Journal[T], error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	j := &Journal[T]{f: f, path: path, hdr: headerFor(cfg)}
	br := bufio.NewReaderSize(f, 1<<16)
	line, err := br.ReadBytes('\n')
	if len(line) == 0 && errors.Is(err, io.EOF) {
		// Empty (or freshly created) file: write the header and start clean.
		f.Close()
		return CreateJournal[T](path, cfg)
	}
	var hdr journalHeader
	if err != nil || json.Unmarshal(line, &hdr) != nil {
		// A torn header means the previous coordinator died inside
		// CreateJournal before the sync: nothing after it can be durable,
		// so restart the journal from scratch.
		f.Close()
		return CreateJournal[T](path, cfg)
	}
	if hdr != j.hdr {
		f.Close()
		return nil, fmt.Errorf(
			"journal: %s was written by a different run (version %d hash %.12s… n=%d shard-size=%d seed=%d; want version %d hash %.12s… n=%d shard-size=%d seed=%d)",
			path, hdr.Version, hdr.ConfigHash, hdr.N, hdr.ShardSize, hdr.Seed,
			j.hdr.Version, j.hdr.ConfigHash, j.hdr.N, j.hdr.ShardSize, j.hdr.Seed)
	}
	j.resumeLo = int64(len(line))
	good := j.resumeLo
	for {
		rec, n, err := readRecord(br)
		if err != nil {
			if !errors.Is(err, io.EOF) {
				// Torn or corrupt tail: everything from here on is suspect.
				j.dropped++
			}
			break
		}
		_ = rec
		good += n
	}
	j.resumeHi = good
	// Truncate over the torn tail so the next append starts on a record
	// boundary; the dropped shards will simply be re-dispatched.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: truncate torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: sync after truncate: %w", err)
	}
	return j, nil
}

// readRecord reads one record line, returning it with the byte length it
// consumed. io.EOF reports a clean end; any other error marks a torn or
// corrupt record (partial line, invalid JSON, CRC mismatch).
func readRecord(br *bufio.Reader) (journalRecord, int64, error) {
	line, err := br.ReadBytes('\n')
	if errors.Is(err, io.EOF) {
		if len(line) == 0 {
			return journalRecord{}, 0, io.EOF
		}
		return journalRecord{}, 0, fmt.Errorf("journal: torn record at tail (%d bytes, no newline)", len(line))
	}
	if err != nil {
		return journalRecord{}, 0, err
	}
	var rec journalRecord
	if jerr := json.Unmarshal(line, &rec); jerr != nil {
		return journalRecord{}, 0, fmt.Errorf("journal: unparsable record: %w", jerr)
	}
	if crc32.ChecksumIEEE(rec.Env) != rec.CRC {
		return journalRecord{}, 0, fmt.Errorf("journal: record CRC mismatch (torn or corrupt write)")
	}
	return rec, int64(len(line)), nil
}

// matches reports whether the journal belongs to cfg's run.
func (j *Journal[T]) matches(cfg Config) bool { return j.hdr == headerFor(cfg) }

// Commits returns how many envelopes this Journal appended since open.
func (j *Journal[T]) Commits() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.commits
}

// Dropped returns how many torn/corrupt trailing records the open
// discarded (their shards are re-dispatched).
func (j *Journal[T]) Dropped() int { return j.dropped }

// Replay streams the durable records to fn one at a time — constant memory
// regardless of how many shards are already committed. Records that parse
// and checksum but fail envelope validation against the journal's own run
// identity are skipped (counted, re-dispatched later), never fatal.
// RunWithOptions calls this once before any Append; the file position is
// restored to the append boundary afterwards.
func (j *Journal[T]) Replay(fn func(*Envelope[T]) error) (restored int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.replayed {
		return 0, nil
	}
	j.replayed = true
	if _, err := j.f.Seek(j.resumeLo, io.SeekStart); err != nil {
		return 0, err
	}
	br := bufio.NewReaderSize(io.LimitReader(j.f, j.resumeHi-j.resumeLo), 1<<16)
	for {
		rec, _, rerr := readRecord(br)
		if rerr != nil {
			break // open already truncated past any torn tail
		}
		env := new(Envelope[T])
		if json.Unmarshal(rec.Env, env) != nil {
			j.dropped++
			continue
		}
		lo, hi, ok := shardRange(j.hdr.N, j.hdr.ShardSize, env.Shard)
		if !ok || env.Validate(j.hdr.ConfigHash, j.hdr.N, lo, hi) != nil {
			j.dropped++
			continue
		}
		if err := fn(env); err != nil {
			return restored, err
		}
		restored++
	}
	if _, err := j.f.Seek(j.resumeHi, io.SeekStart); err != nil {
		return restored, err
	}
	return restored, nil
}

// Append durably records one committed envelope: a single write of the
// framed record followed by fsync. A torn write (crash mid-record) is
// recovered by the next open's tail truncation.
func (j *Journal[T]) Append(env *Envelope[T]) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.replayed {
		return fmt.Errorf("journal: append before replay")
	}
	raw, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("journal: encode envelope: %w", err)
	}
	line, err := json.Marshal(journalRecord{CRC: crc32.ChecksumIEEE(raw), Env: raw})
	if err != nil {
		return fmt.Errorf("journal: encode record: %w", err)
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	j.commits++
	return nil
}

// Close releases the underlying file.
func (j *Journal[T]) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// shardRange maps a shard ordinal to its [lo, hi) index range under the
// fixed tiling of [0, n) into shardSize-wide shards; ok is false for an
// out-of-range ordinal.
func shardRange(n, shardSize, ord int) (lo, hi int, ok bool) {
	if shardSize <= 0 || ord < 0 {
		return 0, 0, false
	}
	nShards := (n + shardSize - 1) / shardSize
	if ord >= nShards {
		return 0, 0, false
	}
	lo = ord * shardSize
	hi = lo + shardSize
	if hi > n {
		hi = n
	}
	return lo, hi, true
}
