// Package shard distributes a Monte Carlo run across workers as index-range
// shards and merges the results bit-identically to a single-process run.
//
// The determinism contract it builds on is montecarlo's (seed, idx) sample
// independence: sample idx's PRNG and therefore its outcome depend only on
// the run seed and the global index, never on scheduling. A worker executes
// shard [Lo, Hi) with montecarlo.RunOpts.Offset = Lo, so the values and
// failure records it produces are exactly the slice a full run would
// produce for those indices. Merging is then pure concatenation plus
// envelope validation — no floating-point reduction whose order could vary.
//
// Robustness is the core of the design: per-shard wall budgets, bounded
// retry with exponential backoff + deterministic jitter, straggler
// detection with speculative re-dispatch (first committed result wins via
// CAS, mirroring the hang-watchdog contract), duplicate- and
// corrupt-envelope rejection (the envelope reuses the checkpoint schema's
// version/config-hash/N validation as the wire format), and graceful
// degradation to local execution when every worker is gone. A scripted
// fault-injection transport (FaultPlan) makes each of those paths
// deterministic to test.
package shard

import (
	"fmt"
	"sort"
	"time"

	"vstat/internal/lifecycle"
	"vstat/internal/montecarlo"
	"vstat/internal/obs/trace"
)

// EnvelopeVersion guards the wire schema, like checkpointVersion guards the
// checkpoint file.
const EnvelopeVersion = 1

// Request asks a worker to execute one shard: the contiguous global index
// range [Lo, Hi) of an N-sample run. ConfigHash pins the run identity
// (model parameters, bench, seed, …) the same way a checkpoint's hash
// does — a worker built for a different configuration must refuse the
// request rather than silently compute a different population.
type Request struct {
	ConfigHash string `json:"config_hash"`
	Seed       int64  `json:"seed"`
	N          int    `json:"n"`     // total run size, for validation
	Shard      int    `json:"shard"` // shard ordinal, for logging/faults
	Lo         int    `json:"lo"`
	Hi         int    `json:"hi"`
	// Attempt numbers re-dispatches of the same shard (0 = first try) so
	// transports and fault plans can distinguish them.
	Attempt int `json:"attempt"`
	// Bench names the worker-side sample function; the executor decides
	// what (if anything) it means.
	Bench string `json:"bench,omitempty"`

	// SampleBudget and HangGrace bound each sample inside the worker
	// exactly as in a local run (lifecycle.Budget semantics).
	SampleBudget lifecycle.Budget `json:"sample_budget,omitempty"`
	HangGrace    time.Duration    `json:"hang_grace,omitempty"`
	// MaxFailFrac > 0 selects SkipAndRecord with that cap; 0 means
	// fail-fast (the montecarlo default).
	MaxFailFrac float64 `json:"max_fail_frac,omitempty"`

	// Trace asks the worker to run its flight recorder for this attempt:
	// the worker opens a shard span with ID TraceBase parented to the
	// coordinator's TraceParent span, derives sample span IDs from the
	// TraceBase block (reserved coordinator-side, so blocks from
	// concurrent attempts never collide), keeps its worst-TraceK sample
	// records, and ships spans + records back in the envelope. This is
	// how one run's trace stitches across process boundaries.
	Trace       bool   `json:"trace,omitempty"`
	TraceK      int    `json:"trace_k,omitempty"`
	TraceParent uint64 `json:"trace_parent,omitempty"`
	TraceBase   uint64 `json:"trace_base,omitempty"`
}

// Policy translates the request's failure knob into a montecarlo.Policy.
func (r Request) Policy() montecarlo.Policy {
	if r.MaxFailFrac > 0 {
		return montecarlo.SkipUpTo(r.MaxFailFrac)
	}
	return montecarlo.Policy{OnFailure: montecarlo.FailFast}
}

// Validate rejects a malformed request before any work runs.
func (r Request) Validate() error {
	if r.N <= 0 || r.Lo < 0 || r.Hi <= r.Lo || r.Hi > r.N {
		return fmt.Errorf("shard: bad range [%d,%d) of n=%d", r.Lo, r.Hi, r.N)
	}
	return nil
}

// Envelope is one shard's result on the wire. It reuses the checkpoint
// file's schema shape — version, config hash, N, done bitmap, results,
// recorded failures, rescue totals — so the same validation rejects stale,
// foreign, truncated, or corrupt payloads. Failure indices are global
// (montecarlo.RunOpts.Offset), Results is local to [Lo, Hi).
type Envelope[T any] struct {
	Version    int                          `json:"version"`
	ConfigHash string                       `json:"config_hash"`
	N          int                          `json:"n"`
	Shard      int                          `json:"shard"`
	Lo         int                          `json:"lo"`
	Hi         int                          `json:"hi"`
	Results    []T                          `json:"results"`
	Failures   []montecarlo.RecordedFailure `json:"failures,omitempty"`
	Rescued    map[string]int64             `json:"rescued,omitempty"`
	// Attempted counts samples the worker started (Hi-Lo on a healthy
	// shard; carried so the merged RunReport is exact, not inferred).
	Attempted int `json:"attempted"`

	// TraceEvents (the worker-side shard span) and Worst (the worker's
	// worst-K sample records, spans included) come back only when the
	// request set Trace. The coordinator merges them from committed
	// envelopes exclusively, in shard order — duplicates from lost or
	// speculative attempts never reach the recorder.
	TraceEvents []trace.Event        `json:"trace_events,omitempty"`
	Worst       []trace.SampleRecord `json:"worst,omitempty"`
}

// Validate checks the envelope against the coordinator's expectation for
// shard [lo, hi) of an n-sample run under cfgHash. Any mismatch — wrong
// version, foreign config, wrong range, truncated results, out-of-range or
// unsorted failure indices — rejects the envelope; the coordinator treats a
// rejected envelope as a lost attempt and retries.
func (e *Envelope[T]) Validate(cfgHash string, n, lo, hi int) error {
	if e.Version != EnvelopeVersion {
		return fmt.Errorf("shard: envelope version %d, want %d", e.Version, EnvelopeVersion)
	}
	if e.ConfigHash != cfgHash {
		return fmt.Errorf("shard: envelope from a different run configuration (hash %.12s…, want %.12s…)",
			e.ConfigHash, cfgHash)
	}
	if e.N != n || e.Lo != lo || e.Hi != hi {
		return fmt.Errorf("shard: envelope covers [%d,%d) of n=%d, want [%d,%d) of n=%d",
			e.Lo, e.Hi, e.N, lo, hi, n)
	}
	if len(e.Results) != hi-lo {
		return fmt.Errorf("shard: envelope holds %d results for a %d-sample shard", len(e.Results), hi-lo)
	}
	if e.Attempted != hi-lo {
		return fmt.Errorf("shard: envelope attempted %d of %d samples (incomplete shard)", e.Attempted, hi-lo)
	}
	prev := lo - 1
	for _, f := range e.Failures {
		if f.Idx < lo || f.Idx >= hi {
			return fmt.Errorf("shard: failure index %d outside [%d,%d)", f.Idx, lo, hi)
		}
		if f.Idx <= prev {
			return fmt.Errorf("shard: failure indices not strictly ascending at %d", f.Idx)
		}
		prev = f.Idx
	}
	return nil
}

// Merge assembles validated shard envelopes into the full-run result vector
// and RunReport. The envelopes must exactly tile [0, n) — any gap or
// overlap is an error. Determinism argument: each result slot is copied
// from the unique shard owning its index, failures are concatenated in
// ascending global order, and rescue totals are integer sums — there is no
// order-dependent floating-point arithmetic anywhere in the merge, so the
// output is bit-identical to a single-process run regardless of shard size
// or completion order.
func Merge[T any](n int, envs []*Envelope[T]) ([]T, montecarlo.RunReport, error) {
	rep := montecarlo.RunReport{}
	sorted := append([]*Envelope[T](nil), envs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Lo < sorted[j].Lo })
	out := make([]T, n)
	next := 0
	for _, e := range sorted {
		if e.Lo != next {
			return nil, rep, fmt.Errorf("shard: merge gap/overlap at index %d (next envelope starts at %d)", next, e.Lo)
		}
		copy(out[e.Lo:e.Hi], e.Results)
		rep.Attempted += e.Attempted
		rep.Failed += len(e.Failures)
		rep.Succeeded += e.Attempted - len(e.Failures)
		for _, f := range e.Failures {
			if f.Panic {
				rep.Panics++
			}
			rep.Failures = append(rep.Failures, montecarlo.SampleFailure{Idx: f.Idx, Err: f.Err()})
		}
		if len(e.Rescued) > 0 {
			if rep.Rescued == nil {
				rep.Rescued = make(map[string]int64)
			}
			for k, v := range e.Rescued {
				rep.Rescued[k] += v
			}
		}
		next = e.Hi
	}
	if next != n {
		return nil, rep, fmt.Errorf("shard: merge covers [0,%d) of n=%d", next, n)
	}
	return out, rep, nil
}

// AddGood folds a committed scalar envelope's successful samples into a
// streaming summary, skipping failed indices — the standard StreamFn body
// for float64 runs (`vsshard run -stream` uses it). Failure indices are
// validated strictly ascending, so one forward scan pairs them with the
// result slots.
func AddGood(env *Envelope[float64], sum *montecarlo.StreamSummary) {
	fi := 0
	for i, v := range env.Results {
		idx := env.Lo + i
		for fi < len(env.Failures) && env.Failures[fi].Idx < idx {
			fi++
		}
		if fi < len(env.Failures) && env.Failures[fi].Idx == idx {
			continue
		}
		sum.Add(v)
	}
}
