package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"time"
)

// Transport delivers one shard request to a worker and returns the
// envelopes that came back. The slice return models at-least-once
// delivery honestly: a healthy worker yields exactly one envelope, a
// fault-injecting or real flaky transport may deliver the same result
// twice (retransmit racing the original) or none at all. (nil, nil) means
// the attempt was lost without a transport error; the coordinator treats
// both a lost attempt and a returned error as a retryable failure.
type Transport[T any] interface {
	Dispatch(ctx context.Context, req Request) ([]*Envelope[T], error)
}

// Loopback runs the executor in-process: the transport used by tests and
// by the coordinator's local-fallback path. One envelope, no wire.
type Loopback[T any] struct {
	Exec ExecFn[T]
}

// Dispatch implements Transport.
func (l Loopback[T]) Dispatch(ctx context.Context, req Request) ([]*Envelope[T], error) {
	env, err := l.Exec(ctx, req)
	if err != nil {
		return nil, err
	}
	return []*Envelope[T]{env}, nil
}

// JSONRoundTrip encodes a request, runs exec, and decodes the envelope
// through JSON — the exact serialization every remote transport uses — so
// tests can pin wire fidelity without sockets.
func JSONRoundTrip[T any](ctx context.Context, exec ExecFn[T], req Request) (*Envelope[T], error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var req2 Request
	if err := json.Unmarshal(raw, &req2); err != nil {
		return nil, err
	}
	env, err := exec(ctx, req2)
	if err != nil {
		return nil, err
	}
	raw, err = json.Marshal(env)
	if err != nil {
		return nil, err
	}
	out := new(Envelope[T])
	if err := json.Unmarshal(raw, out); err != nil {
		return nil, err
	}
	return out, nil
}

// HTTPEndpoint dispatches shard requests to a `vsshard serve` worker over
// POST {Base}/shard with JSON request/envelope bodies.
type HTTPEndpoint[T any] struct {
	Base   string // e.g. "http://127.0.0.1:8731"
	Client *http.Client
}

// Dispatch implements Transport.
func (h HTTPEndpoint[T]) Dispatch(ctx context.Context, req Request) ([]*Envelope[T], error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, h.Base+"/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard: worker %s: %s: %s", h.Base, resp.Status, bytes.TrimSpace(raw))
	}
	env := new(Envelope[T])
	if err := json.Unmarshal(raw, env); err != nil {
		return nil, fmt.Errorf("shard: worker %s sent undecodable envelope: %w", h.Base, err)
	}
	return []*Envelope[T]{env}, nil
}

// Handler serves an executor over HTTP: POST /shard runs a request, GET
// /healthz answers liveness probes. The `vsshard serve` mode mounts this.
func Handler[T any](exec ExecFn[T]) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/shard", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		env, err := exec(r.Context(), req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(env)
	})
	return mux
}

// ProcEndpoint spawns one worker subprocess per dispatch (`vsshard work`
// style): the request goes to stdin as one JSON document, the envelope
// comes back on stdout. A killed or crashing worker surfaces as a dispatch
// error the coordinator retries — the kill-a-worker demo in the README
// exercises exactly this path.
type ProcEndpoint[T any] struct {
	Argv []string // command + args; must speak the work protocol
}

// Dispatch implements Transport.
func (p ProcEndpoint[T]) Dispatch(ctx context.Context, req Request) ([]*Envelope[T], error) {
	if len(p.Argv) == 0 {
		return nil, fmt.Errorf("shard: empty worker argv")
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	cmd := exec.CommandContext(ctx, p.Argv[0], p.Argv[1:]...)
	cmd.Stdin = bytes.NewReader(body)
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("shard: worker process: %w (stderr: %s)", err, bytes.TrimSpace(errBuf.Bytes()))
	}
	env := new(Envelope[T])
	if err := json.Unmarshal(out.Bytes(), env); err != nil {
		return nil, fmt.Errorf("shard: worker process sent undecodable envelope: %w", err)
	}
	return []*Envelope[T]{env}, nil
}

// Endpoint names a transport for the coordinator's worker pool.
type Endpoint[T any] struct {
	Name      string
	Transport Transport[T]
}

// WaitHealthy polls an HTTP worker's /healthz until it answers or the
// context expires — `vsshard run -peers` uses it so freshly spawned
// servers are not counted dead before they finish binding.
func WaitHealthy(ctx context.Context, base string, client *http.Client) error {
	if client == nil {
		client = http.DefaultClient
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("shard: worker %s never became healthy: %w", base, ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}
