package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os/exec"
	"sync/atomic"
	"time"
)

// The dispatch error taxonomy the backoff ladder distinguishes:
//
//   - retryable (the default): transport hiccups, worker crashes, and the
//     typed ErrDraining a shutting-down worker answers with. The
//     coordinator retries through the usual backoff and the worker only
//     counts toward DeadAfter like any other failure.
//   - fatal (FatalError): the worker refused the request for a reason no
//     retry can fix — a config-hash mismatch means it is built for a
//     different run. The coordinator retires the endpoint immediately and
//     re-routes the shard elsewhere.

// ErrDraining is the typed retryable rejection a worker returns once its
// drain has begun (SIGTERM on `vsshard serve`): the in-flight shard is
// completed and flushed, new requests bounce with this error so the
// coordinator's existing retry ladder re-dispatches them to live workers.
var ErrDraining = errors.New("shard: worker draining")

// FatalError marks a dispatch refusal that retrying cannot fix.
type FatalError struct{ Err error }

func (e *FatalError) Error() string { return e.Err.Error() }
func (e *FatalError) Unwrap() error { return e.Err }

// IsFatal reports whether err carries a FatalError anywhere in its chain.
func IsFatal(err error) bool {
	var fe *FatalError
	return errors.As(err, &fe)
}

// HTTP headers carrying the error taxonomy across the wire: a status code
// alone is ambiguous (a proxy can 503 too), so the worker marks its typed
// rejections explicitly and HTTPEndpoint reconstructs the right Go error.
const (
	headerDraining = "X-Vstat-Draining"
	headerFatal    = "X-Vstat-Fatal"
)

// Gate is a worker's drain switch. Serve traffic while open; after Drain
// (SIGTERM) every new shard request and health probe is rejected with the
// typed retryable draining error while in-flight work runs to completion.
type Gate struct{ draining atomic.Bool }

// Drain flips the gate; idempotent.
func (g *Gate) Drain() { g.draining.Store(true) }

// Draining reports whether Drain was called. Nil-safe (an ungated handler
// never drains).
func (g *Gate) Draining() bool { return g != nil && g.draining.Load() }

// Transport delivers one shard request to a worker and returns the
// envelopes that came back. The slice return models at-least-once
// delivery honestly: a healthy worker yields exactly one envelope, a
// fault-injecting or real flaky transport may deliver the same result
// twice (retransmit racing the original) or none at all. (nil, nil) means
// the attempt was lost without a transport error; the coordinator treats
// both a lost attempt and a returned error as a retryable failure.
type Transport[T any] interface {
	Dispatch(ctx context.Context, req Request) ([]*Envelope[T], error)
}

// Loopback runs the executor in-process: the transport used by tests and
// by the coordinator's local-fallback path. One envelope, no wire.
type Loopback[T any] struct {
	Exec ExecFn[T]
}

// Dispatch implements Transport.
func (l Loopback[T]) Dispatch(ctx context.Context, req Request) ([]*Envelope[T], error) {
	env, err := l.Exec(ctx, req)
	if err != nil {
		return nil, err
	}
	return []*Envelope[T]{env}, nil
}

// JSONRoundTrip encodes a request, runs exec, and decodes the envelope
// through JSON — the exact serialization every remote transport uses — so
// tests can pin wire fidelity without sockets.
func JSONRoundTrip[T any](ctx context.Context, exec ExecFn[T], req Request) (*Envelope[T], error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var req2 Request
	if err := json.Unmarshal(raw, &req2); err != nil {
		return nil, err
	}
	env, err := exec(ctx, req2)
	if err != nil {
		return nil, err
	}
	raw, err = json.Marshal(env)
	if err != nil {
		return nil, err
	}
	out := new(Envelope[T])
	if err := json.Unmarshal(raw, out); err != nil {
		return nil, err
	}
	return out, nil
}

// HTTPEndpoint dispatches shard requests to a `vsshard serve` worker over
// POST {Base}/shard with JSON request/envelope bodies.
type HTTPEndpoint[T any] struct {
	Base   string // e.g. "http://127.0.0.1:8731"
	Client *http.Client
}

// Dispatch implements Transport.
func (h HTTPEndpoint[T]) Dispatch(ctx context.Context, req Request) ([]*Envelope[T], error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, h.Base+"/shard", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	client := h.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		msg := fmt.Errorf("shard: worker %s: %s: %s", h.Base, resp.Status, bytes.TrimSpace(raw))
		if resp.Header.Get(headerFatal) != "" {
			return nil, &FatalError{Err: msg}
		}
		if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get(headerDraining) != "" {
			return nil, fmt.Errorf("%w: %v", ErrDraining, msg)
		}
		return nil, msg
	}
	env := new(Envelope[T])
	if err := json.Unmarshal(raw, env); err != nil {
		return nil, fmt.Errorf("shard: worker %s sent undecodable envelope: %w", h.Base, err)
	}
	return []*Envelope[T]{env}, nil
}

// Handler serves an executor over HTTP: POST /shard runs a request, GET
// /healthz answers liveness probes. The `vsshard serve` mode mounts this
// via GatedHandler so SIGTERM can drain it.
func Handler[T any](exec ExecFn[T]) http.Handler {
	return GatedHandler(exec, nil)
}

// GatedHandler is Handler with a drain gate. Once gate.Drain() fires, both
// endpoints answer 503 with the draining header, which HTTPEndpoint maps
// back to the retryable ErrDraining — the coordinator backs off and
// re-dispatches to a worker that is still open. Executor errors map onto
// the taxonomy too: a FatalError (config mismatch) becomes 409 + the fatal
// header so the coordinator retires the endpoint instead of retrying a
// request that can never succeed there.
func GatedHandler[T any](exec ExecFn[T], gate *Gate) http.Handler {
	mux := http.NewServeMux()
	rejectDraining := func(w http.ResponseWriter) bool {
		if !gate.Draining() {
			return false
		}
		w.Header().Set(headerDraining, "1")
		http.Error(w, ErrDraining.Error(), http.StatusServiceUnavailable)
		return true
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if rejectDraining(w) {
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/shard", func(w http.ResponseWriter, r *http.Request) {
		if rejectDraining(w) {
			return
		}
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req Request
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		env, err := exec(r.Context(), req)
		if err != nil {
			if IsFatal(err) {
				w.Header().Set(headerFatal, "1")
				http.Error(w, err.Error(), http.StatusConflict)
				return
			}
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(env)
	})
	return mux
}

// ProcEndpoint spawns one worker subprocess per dispatch (`vsshard work`
// style): the request goes to stdin as one JSON document, the envelope
// comes back on stdout. A killed or crashing worker surfaces as a dispatch
// error the coordinator retries — the kill-a-worker demo in the README
// exercises exactly this path.
type ProcEndpoint[T any] struct {
	Argv []string // command + args; must speak the work protocol
}

// Dispatch implements Transport.
func (p ProcEndpoint[T]) Dispatch(ctx context.Context, req Request) ([]*Envelope[T], error) {
	if len(p.Argv) == 0 {
		return nil, fmt.Errorf("shard: empty worker argv")
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	cmd := exec.CommandContext(ctx, p.Argv[0], p.Argv[1:]...)
	cmd.Stdin = bytes.NewReader(body)
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("shard: worker process: %w (stderr: %s)", err, bytes.TrimSpace(errBuf.Bytes()))
	}
	env := new(Envelope[T])
	if err := json.Unmarshal(out.Bytes(), env); err != nil {
		return nil, fmt.Errorf("shard: worker process sent undecodable envelope: %w", err)
	}
	return []*Envelope[T]{env}, nil
}

// Endpoint names a transport for the coordinator's worker pool.
type Endpoint[T any] struct {
	Name      string
	Transport Transport[T]
}

// WaitHealthy polls an HTTP worker's /healthz until it answers or the
// context expires — `vsshard run -peers` uses it so freshly spawned
// servers are not counted dead before they finish binding.
func WaitHealthy(ctx context.Context, base string, client *http.Client) error {
	if client == nil {
		client = http.DefaultClient
	}
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("shard: worker %s never became healthy: %w", base, ctx.Err())
		case <-time.After(50 * time.Millisecond):
		}
	}
}
