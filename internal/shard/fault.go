package shard

import (
	"context"
	"fmt"
	"time"
)

// FaultKind scripts what happens to one (shard, attempt) dispatch.
type FaultKind int

const (
	// FaultDrop loses the attempt: the transport returns an error as if
	// the worker died mid-shard.
	FaultDrop FaultKind = iota
	// FaultDelay holds the result for Delay before delivering it —
	// the straggler script. The sleep respects the dispatch context, so a
	// speculative win can cancel the laggard.
	FaultDelay
	// FaultDuplicate delivers the same envelope twice, modelling a
	// retransmit racing the original. Exactly one copy may commit.
	FaultDuplicate
	// FaultCorrupt flips the envelope's config hash so validation must
	// reject it (a lost attempt, retried like a drop).
	FaultCorrupt
	// FaultVanish returns no envelopes and no error — a silently lost
	// result, distinguishable from FaultDrop's loud failure.
	FaultVanish
	// FaultDrain answers with the typed retryable ErrDraining a
	// shutting-down worker sends — the worker-drain matrix mode. The
	// coordinator must treat it exactly like any retryable loss: back off,
	// re-dispatch, never retire the endpoint ahead of DeadAfter.
	FaultDrain
	// FaultCoordKill simulates the coordinator dying at this (shard,
	// attempt) point: it invokes the plan's Kill hook (tests wire it to
	// cancel the run context or exit the process) and loses the attempt.
	// Combined with a journal, the restarted run must resume from the
	// committed prefix.
	FaultCoordKill
)

// FaultRule scripts one fault at one (Shard, Attempt) point.
type FaultRule struct {
	Shard   int
	Attempt int
	Kind    FaultKind
	Delay   time.Duration // FaultDelay only
}

// FaultPlan is a deterministic fault script: every rule fires at exactly
// its (shard, attempt) coordinate, so a test run replays the same failure
// sequence every time regardless of scheduling. Wrap any transport with
// Wrap to apply the plan.
type FaultPlan struct {
	Rules []FaultRule
	// Kill is the FaultCoordKill hook: called (once per matching rule)
	// before the attempt is lost. Tests set it to cancel the coordinator's
	// context mid-run — the in-process stand-in for kill -9.
	Kill func()
}

func (p *FaultPlan) find(shard, attempt int) (FaultRule, bool) {
	for _, r := range p.Rules {
		if r.Shard == shard && r.Attempt == attempt {
			return r, true
		}
	}
	return FaultRule{}, false
}

// Wrap returns next with the plan's faults injected.
func Wrap[T any](plan *FaultPlan, next Transport[T]) Transport[T] {
	return faultTransport[T]{plan: plan, next: next}
}

type faultTransport[T any] struct {
	plan *FaultPlan
	next Transport[T]
}

// Dispatch implements Transport.
func (f faultTransport[T]) Dispatch(ctx context.Context, req Request) ([]*Envelope[T], error) {
	rule, ok := f.plan.find(req.Shard, req.Attempt)
	if !ok {
		return f.next.Dispatch(ctx, req)
	}
	switch rule.Kind {
	case FaultDrop:
		return nil, fmt.Errorf("shard: injected worker kill (shard %d attempt %d)", req.Shard, req.Attempt)
	case FaultVanish:
		return nil, nil
	case FaultDrain:
		return nil, fmt.Errorf("%w (shard %d attempt %d)", ErrDraining, req.Shard, req.Attempt)
	case FaultCoordKill:
		if f.plan.Kill != nil {
			f.plan.Kill()
		}
		return nil, fmt.Errorf("shard: injected coordinator kill (shard %d attempt %d)", req.Shard, req.Attempt)
	case FaultDelay:
		envs, err := f.next.Dispatch(ctx, req)
		if err != nil {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(rule.Delay):
		}
		return envs, nil
	case FaultDuplicate:
		envs, err := f.next.Dispatch(ctx, req)
		if err != nil {
			return nil, err
		}
		return append(envs, envs...), nil
	case FaultCorrupt:
		envs, err := f.next.Dispatch(ctx, req)
		if err != nil {
			return nil, err
		}
		for _, e := range envs {
			e.ConfigHash = "corrupted-" + e.ConfigHash
		}
		return envs, nil
	default:
		return f.next.Dispatch(ctx, req)
	}
}
