package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"vstat/internal/montecarlo"
	"vstat/internal/obs"
)

// testFn is the synthetic sample function every test shares: a value that
// depends on both the global index and the per-sample RNG stream (so any
// wrong (seed, idx) pairing shows up as a bit difference), with scripted
// deterministic failures sprinkled through the index space.
func testFn(_ struct{}, idx int, rng *rand.Rand) (float64, error) {
	if idx%997 == 13 {
		return 0, fmt.Errorf("synthetic non-convergence at sample %d", idx)
	}
	return float64(idx) + rng.Float64(), nil
}

func testNewState(worker int) (struct{}, error) { return struct{}{}, nil }

const testHash = "test-config-hash"

func testExec() ExecFn[float64] {
	return NewExecutor[struct{}, float64](testHash, 2, testNewState, testFn)
}

// baseline runs the single-process reference for n samples.
func baseline(t *testing.T, n int, seed int64) ([]float64, montecarlo.RunReport) {
	t.Helper()
	out, rep, err := montecarlo.MapPooledReportCtx(context.Background(), n, seed, 4,
		montecarlo.RunOpts{Policy: montecarlo.SkipUpTo(1.0)}, testNewState, testFn)
	if err != nil {
		t.Fatal(err)
	}
	return out, rep
}

// assertBitIdentical compares a sharded run against the single-process
// reference: values, failure indices and messages, rescue totals, and the
// report's aggregate counts.
func assertBitIdentical(t *testing.T, label string, got Result[float64], want []float64, wantRep montecarlo.RunReport) {
	t.Helper()
	if len(got.Out) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got.Out), len(want))
	}
	for i := range want {
		if got.Out[i] != want[i] {
			t.Fatalf("%s: sample %d = %.17g, single-process %.17g", label, i, got.Out[i], want[i])
		}
	}
	g, w := got.Report, wantRep
	if g.Attempted != w.Attempted || g.Succeeded != w.Succeeded || g.Failed != w.Failed || g.Panics != w.Panics {
		t.Fatalf("%s: report %s, single-process %s", label, g.String(), w.String())
	}
	if len(g.Failures) != len(w.Failures) {
		t.Fatalf("%s: %d failures, single-process %d", label, len(g.Failures), len(w.Failures))
	}
	for i := range w.Failures {
		if g.Failures[i].Idx != w.Failures[i].Idx ||
			g.Failures[i].Err.Error() != w.Failures[i].Err.Error() {
			t.Fatalf("%s: failure %d = (%d, %q), single-process (%d, %q)", label, i,
				g.Failures[i].Idx, g.Failures[i].Err.Error(),
				w.Failures[i].Idx, w.Failures[i].Err.Error())
		}
	}
	if len(g.Rescued) != len(w.Rescued) {
		t.Fatalf("%s: rescued %v, single-process %v", label, g.Rescued, w.Rescued)
	}
	for k, v := range w.Rescued {
		if g.Rescued[k] != v {
			t.Fatalf("%s: rescued[%s] = %d, single-process %d", label, k, g.Rescued[k], v)
		}
	}
}

func assertStatsInvariants(t *testing.T, label string, r Result[float64]) {
	t.Helper()
	// Stats.Check is the same invariant bundle `vsshard run` enforces:
	// every shard committed, dispatch accounting balanced, one latency
	// sample per non-restored commit.
	if err := r.Stats.Check(r.Shards); err != nil {
		t.Fatalf("%s: %v (stats %+v)", label, err, r.Stats)
	}
}

// TestSharded10kBitIdenticalUnderFaults is the acceptance test: a
// 10k-sample run with scripted worker kills (drop), a double kill on one
// shard, a duplicated result, a corrupted envelope, and one injected
// straggler must produce results and RunReport bit-identical to the
// single-process run, across shard sizes and worker counts.
func TestSharded10kBitIdenticalUnderFaults(t *testing.T) {
	const n = 10_000
	const seed = int64(20260809)
	want, wantRep := baseline(t, n, seed)

	for _, tc := range []struct {
		shardSize int
		workers   int
	}{
		{256, 1},
		{1000, 3},
		{4096, 2},
		{10000, 2}, // single shard
	} {
		label := fmt.Sprintf("shardSize=%d workers=%d", tc.shardSize, tc.workers)
		plan := &FaultPlan{Rules: []FaultRule{
			{Shard: 0, Attempt: 0, Kind: FaultDrop},      // worker killed mid-shard
			{Shard: 1, Attempt: 0, Kind: FaultDrop},      // killed twice: backoff escalates
			{Shard: 1, Attempt: 1, Kind: FaultVanish},    // …then silently lost
			{Shard: 2, Attempt: 0, Kind: FaultDuplicate}, // retransmit race
			{Shard: 3, Attempt: 0, Kind: FaultCorrupt},   // flipped config hash
		}}
		cfg := Config{
			N: n, Seed: seed, ConfigHash: testHash,
			ShardSize:   tc.shardSize,
			MaxFailFrac: 1.0,
			MaxAttempts: 6,
			DeadAfter:   50, // faults here test retries, not worker death
			BackoffBase: time.Millisecond,
			BackoffMax:  20 * time.Millisecond,
		}
		if tc.workers > 1 {
			// One injected straggler: shard 4's first attempt delivers only
			// after a long delay; speculation must beat it on another worker.
			plan.Rules = append(plan.Rules,
				FaultRule{Shard: 4, Attempt: 0, Kind: FaultDelay, Delay: 30 * time.Second})
			cfg.StragglerAfter = 50 * time.Millisecond
		}
		var eps []Endpoint[float64]
		for w := 0; w < tc.workers; w++ {
			eps = append(eps, Endpoint[float64]{
				Name:      fmt.Sprintf("w%d", w),
				Transport: Wrap(plan, Loopback[float64]{Exec: testExec()}),
			})
		}
		res, err := Run(context.Background(), cfg, eps, nil)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		assertBitIdentical(t, label, res, want, wantRep)
		assertStatsInvariants(t, label, res)
		nShards := (n + tc.shardSize - 1) / tc.shardSize
		if res.Shards != nShards {
			t.Fatalf("%s: %d shards, want %d", label, res.Shards, nShards)
		}
		wantLost := int64(3) // two drops + one vanish
		if nShards >= 4 {
			wantLost++ // the corrupt envelope is also a lost attempt
		}
		if nShards >= 4 && res.Stats.Lost != wantLost {
			t.Fatalf("%s: lost %d attempts, want %d: %+v", label, res.Stats.Lost, wantLost, res.Stats)
		}
		if nShards >= 3 && res.Stats.Duplicates < 1 {
			t.Fatalf("%s: duplicate result was not detected: %+v", label, res.Stats)
		}
		if tc.workers > 1 && nShards >= 5 && res.Stats.Speculated < 1 {
			t.Fatalf("%s: straggler never drew a speculative attempt: %+v", label, res.Stats)
		}
	}
}

// TestShardedNoFaultsEveryShardSize sweeps odd shard sizes with a clean
// transport: exact tiling of [0, n) regardless of divisibility.
func TestShardedNoFaultsEveryShardSize(t *testing.T) {
	const n = 500
	const seed = int64(7)
	want, wantRep := baseline(t, n, seed)
	for _, size := range []int{1, 7, 499, 500, 512} {
		cfg := Config{N: n, Seed: seed, ConfigHash: testHash, ShardSize: size, MaxFailFrac: 1.0}
		eps := []Endpoint[float64]{{Name: "w0", Transport: Loopback[float64]{Exec: testExec()}}}
		res, err := Run(context.Background(), cfg, eps, nil)
		if err != nil {
			t.Fatalf("shardSize %d: %v", size, err)
		}
		assertBitIdentical(t, fmt.Sprintf("shardSize=%d", size), res, want, wantRep)
		assertStatsInvariants(t, fmt.Sprintf("shardSize=%d", size), res)
		if res.Stats.Retried != 0 || res.Stats.Lost != 0 {
			t.Fatalf("shardSize %d: clean run retried/lost: %+v", size, res.Stats)
		}
		if res.Stats.Dispatched != int64(res.Shards) {
			t.Fatalf("shardSize %d: clean run dispatched %d of %d shards", size, res.Stats.Dispatched, res.Shards)
		}
	}
}

// TestAllWorkersLostFallsBackToLocal kills every endpoint (every dispatch
// drops) and checks the run degrades to the local executor and still
// merges bit-identically.
func TestAllWorkersLostFallsBackToLocal(t *testing.T) {
	const n = 600
	const seed = int64(11)
	want, wantRep := baseline(t, n, seed)
	plan := &FaultPlan{}
	for sh := 0; sh < 6; sh++ {
		for a := 0; a < 12; a++ {
			plan.Rules = append(plan.Rules, FaultRule{Shard: sh, Attempt: a, Kind: FaultDrop})
		}
	}
	cfg := Config{
		N: n, Seed: seed, ConfigHash: testHash, ShardSize: 100, MaxFailFrac: 1.0,
		DeadAfter: 2, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond,
	}
	eps := []Endpoint[float64]{
		{Name: "w0", Transport: Wrap(plan, Loopback[float64]{Exec: testExec()})},
		{Name: "w1", Transport: Wrap(plan, Loopback[float64]{Exec: testExec()})},
	}
	res, err := Run(context.Background(), cfg, eps, testExec())
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "all-workers-lost", res, want, wantRep)
	assertStatsInvariants(t, "all-workers-lost", res)
	if res.Stats.WorkersLost != 2 {
		t.Fatalf("workers lost = %d, want 2: %+v", res.Stats.WorkersLost, res.Stats)
	}
	if res.Stats.LocalFallback != int64(res.Shards) {
		t.Fatalf("local fallback served %d of %d shards: %+v", res.Stats.LocalFallback, res.Shards, res.Stats)
	}
}

// TestAllWorkersLostNoLocalFails is the same deployment with no local
// executor: the run must fail with ErrNoWorkers, not hang.
func TestAllWorkersLostNoLocalFails(t *testing.T) {
	plan := &FaultPlan{}
	for sh := 0; sh < 2; sh++ {
		for a := 0; a < 12; a++ {
			plan.Rules = append(plan.Rules, FaultRule{Shard: sh, Attempt: a, Kind: FaultDrop})
		}
	}
	cfg := Config{
		N: 100, Seed: 1, ConfigHash: testHash, ShardSize: 50, MaxFailFrac: 1.0,
		DeadAfter: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	}
	eps := []Endpoint[float64]{{Name: "w0", Transport: Wrap(plan, Loopback[float64]{Exec: testExec()})}}
	done := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), cfg, eps, nil)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrNoWorkers) {
			t.Fatalf("run returned %v, want ErrNoWorkers", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("run hung instead of failing with ErrNoWorkers")
	}
}

// TestNoEndpointsRunsLocally covers the degenerate deployment: zero
// endpoints, everything on the local executor.
func TestNoEndpointsRunsLocally(t *testing.T) {
	const n = 300
	const seed = int64(3)
	want, wantRep := baseline(t, n, seed)
	cfg := Config{N: n, Seed: seed, ConfigHash: testHash, ShardSize: 64, MaxFailFrac: 1.0}
	res, err := Run(context.Background(), cfg, nil, testExec())
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "no-endpoints", res, want, wantRep)
	if res.Stats.LocalFallback != int64(res.Shards) {
		t.Fatalf("local fallback %d, want %d", res.Stats.LocalFallback, res.Shards)
	}
}

// TestDuplicateEnvelopesCommitOnce duplicates every shard's first result:
// exactly one copy may commit, the rest are counted duplicates.
func TestDuplicateEnvelopesCommitOnce(t *testing.T) {
	const n = 400
	const seed = int64(5)
	want, wantRep := baseline(t, n, seed)
	plan := &FaultPlan{}
	for sh := 0; sh < 4; sh++ {
		plan.Rules = append(plan.Rules, FaultRule{Shard: sh, Attempt: 0, Kind: FaultDuplicate})
	}
	cfg := Config{N: n, Seed: seed, ConfigHash: testHash, ShardSize: 100, MaxFailFrac: 1.0}
	eps := []Endpoint[float64]{{Name: "w0", Transport: Wrap(plan, Loopback[float64]{Exec: testExec()})}}
	res, err := Run(context.Background(), cfg, eps, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "duplicates", res, want, wantRep)
	if res.Stats.Duplicates != int64(res.Shards) {
		t.Fatalf("duplicates = %d, want %d", res.Stats.Duplicates, res.Shards)
	}
	if res.Stats.Retried != 0 {
		t.Fatalf("duplicates caused retries: %+v", res.Stats)
	}
}

// TestCorruptEnvelopeRejectedAndRetried corrupts every shard's first
// envelope: validation must reject it (lost) and the retry must heal.
func TestCorruptEnvelopeRejectedAndRetried(t *testing.T) {
	const n = 200
	const seed = int64(9)
	want, wantRep := baseline(t, n, seed)
	plan := &FaultPlan{Rules: []FaultRule{
		{Shard: 0, Attempt: 0, Kind: FaultCorrupt},
		{Shard: 1, Attempt: 0, Kind: FaultCorrupt},
	}}
	cfg := Config{
		N: n, Seed: seed, ConfigHash: testHash, ShardSize: 100, MaxFailFrac: 1.0,
		DeadAfter: 10, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond,
	}
	eps := []Endpoint[float64]{{Name: "w0", Transport: Wrap(plan, Loopback[float64]{Exec: testExec()})}}
	res, err := Run(context.Background(), cfg, eps, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertBitIdentical(t, "corrupt", res, want, wantRep)
	if res.Stats.Lost != 2 || res.Stats.Retried != 2 {
		t.Fatalf("corrupt envelopes: lost=%d retried=%d, want 2/2: %+v",
			res.Stats.Lost, res.Stats.Retried, res.Stats)
	}
}

// TestEnvelopeValidate table-tests the wire-format rejections.
func TestEnvelopeValidate(t *testing.T) {
	mk := func() *Envelope[float64] {
		return &Envelope[float64]{
			Version: EnvelopeVersion, ConfigHash: testHash, N: 100, Lo: 10, Hi: 20,
			Results: make([]float64, 10), Attempted: 10,
			Failures: []montecarlo.RecordedFailure{{Idx: 12, Msg: "x"}, {Idx: 17, Msg: "y"}},
		}
	}
	if err := mk().Validate(testHash, 100, 10, 20); err != nil {
		t.Fatalf("healthy envelope rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Envelope[float64])
		want string
	}{
		{"version", func(e *Envelope[float64]) { e.Version = 2 }, "version"},
		{"config", func(e *Envelope[float64]) { e.ConfigHash = "other" }, "different run configuration"},
		{"range", func(e *Envelope[float64]) { e.Lo = 11 }, "covers"},
		{"n", func(e *Envelope[float64]) { e.N = 99 }, "covers"},
		{"truncated", func(e *Envelope[float64]) { e.Results = e.Results[:9] }, "results"},
		{"incomplete", func(e *Envelope[float64]) { e.Attempted = 9 }, "incomplete"},
		{"failure-oob", func(e *Envelope[float64]) { e.Failures[1].Idx = 20 }, "outside"},
		{"failure-order", func(e *Envelope[float64]) { e.Failures[1].Idx = 12 }, "ascending"},
	}
	for _, tc := range cases {
		e := mk()
		tc.mut(e)
		err := e.Validate(testHash, 100, 10, 20)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestMergeRejectsGapAndOverlap pins the exact-tiling requirement.
func TestMergeRejectsGapAndOverlap(t *testing.T) {
	env := func(lo, hi int) *Envelope[float64] {
		return &Envelope[float64]{
			Version: EnvelopeVersion, ConfigHash: testHash, N: 30,
			Lo: lo, Hi: hi, Results: make([]float64, hi-lo), Attempted: hi - lo,
		}
	}
	if _, _, err := Merge(30, []*Envelope[float64]{env(0, 10), env(10, 20), env(20, 30)}); err != nil {
		t.Fatalf("exact tiling rejected: %v", err)
	}
	if _, _, err := Merge(30, []*Envelope[float64]{env(0, 10), env(20, 30)}); err == nil {
		t.Fatal("gap accepted")
	}
	if _, _, err := Merge(30, []*Envelope[float64]{env(0, 15), env(10, 30)}); err == nil {
		t.Fatal("overlap accepted")
	}
	if _, _, err := Merge(30, []*Envelope[float64]{env(0, 20)}); err == nil {
		t.Fatal("short cover accepted")
	}
}

// TestExecutorRejectsForeignConfig pins the worker-side hash gate.
func TestExecutorRejectsForeignConfig(t *testing.T) {
	exec := testExec()
	req := Request{ConfigHash: "some-other-run", Seed: 1, N: 10, Lo: 0, Hi: 10, MaxFailFrac: 1.0}
	if _, err := exec(context.Background(), req); err == nil ||
		!strings.Contains(err.Error(), "built for") {
		t.Fatalf("foreign config not rejected: %v", err)
	}
	if _, err := exec(context.Background(), Request{ConfigHash: testHash, N: 10, Lo: 5, Hi: 3}); err == nil {
		t.Fatal("malformed range not rejected")
	}
}

// TestJSONRoundTripBitFidelity runs a shard through the exact JSON
// serialization the remote transports use and checks float64 results
// survive the wire bit-for-bit (Go's shortest-float encoding round-trips).
func TestJSONRoundTripBitFidelity(t *testing.T) {
	exec := testExec()
	req := Request{ConfigHash: testHash, Seed: 77, N: 100, Lo: 0, Hi: 100, MaxFailFrac: 1.0}
	direct, err := exec(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	wired, err := JSONRoundTrip(context.Background(), exec, req)
	if err != nil {
		t.Fatal(err)
	}
	if err := wired.Validate(testHash, 100, 0, 100); err != nil {
		t.Fatal(err)
	}
	for i := range direct.Results {
		if direct.Results[i] != wired.Results[i] {
			t.Fatalf("sample %d: wire %.17g, direct %.17g", i, wired.Results[i], direct.Results[i])
		}
	}
	if len(wired.Failures) != len(direct.Failures) {
		t.Fatalf("wire failures %d, direct %d", len(wired.Failures), len(direct.Failures))
	}
}

// TestMetricsAccountForEveryShard runs a faulty campaign with a registry
// attached and checks the obs counters equal the coordinator's stats —
// every dispatched/retried/speculated shard is accounted for.
func TestMetricsAccountForEveryShard(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	plan := &FaultPlan{Rules: []FaultRule{
		{Shard: 0, Attempt: 0, Kind: FaultDrop},
		{Shard: 1, Attempt: 0, Kind: FaultCorrupt},
		{Shard: 2, Attempt: 0, Kind: FaultDuplicate},
	}}
	cfg := Config{
		N: 400, Seed: 2, ConfigHash: testHash, ShardSize: 100, MaxFailFrac: 1.0,
		DeadAfter: 10, BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond,
		Metrics: m,
	}
	eps := []Endpoint[float64]{{Name: "w0", Transport: Wrap(plan, Loopback[float64]{Exec: testExec()})}}
	res, err := Run(context.Background(), cfg, eps, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	wantCounters := map[string]int64{
		"shard_dispatched_total":        res.Stats.Dispatched,
		"shard_retried_total":           res.Stats.Retried,
		"shard_speculated_total":        res.Stats.Speculated,
		"shard_committed_total":         res.Stats.Committed,
		"shard_duplicate_results_total": res.Stats.Duplicates,
		"shard_results_lost_total":      res.Stats.Lost,
		"shard_workers_lost_total":      res.Stats.WorkersLost,
		"shard_local_fallback_total":    res.Stats.LocalFallback,
	}
	for name, want := range wantCounters {
		if counters[name] != want {
			t.Fatalf("%s = %d, want %d (stats %+v)", name, counters[name], want, res.Stats)
		}
	}
	var lat obs.HistSnap
	for _, h := range snap.Histograms {
		if h.Name == "shard_latency_ns" {
			lat = h
		}
	}
	if lat.Count != res.Stats.Committed {
		t.Fatalf("latency histogram holds %d observations, want %d", lat.Count, res.Stats.Committed)
	}
}

// TestBackoffDeterministicAndBounded pins the retry schedule: same
// (seed, shard, fails) → same delay, delays grow, and the cap holds.
func TestBackoffDeterministicAndBounded(t *testing.T) {
	c := &coordinator[float64]{cfg: Config{
		Seed: 42, N: 1000, BackoffBase: 50 * time.Millisecond, BackoffMax: 2 * time.Second,
	}}
	c2 := &coordinator[float64]{cfg: c.cfg}
	for shard := 0; shard < 4; shard++ {
		prevBase := time.Duration(0)
		for fails := 1; fails <= 10; fails++ {
			d := c.backoff(shard, fails)
			if d != c2.backoff(shard, fails) {
				t.Fatalf("backoff(%d,%d) not deterministic", shard, fails)
			}
			if d > c.cfg.BackoffMax {
				t.Fatalf("backoff(%d,%d) = %v exceeds cap %v", shard, fails, d, c.cfg.BackoffMax)
			}
			base := c.cfg.BackoffBase << (fails - 1)
			if base > c.cfg.BackoffMax {
				base = c.cfg.BackoffMax
			}
			if d < base && d != c.cfg.BackoffMax {
				t.Fatalf("backoff(%d,%d) = %v below its exponential floor %v", shard, fails, d, base)
			}
			if base > prevBase && fails > 1 && d < prevBase {
				t.Fatalf("backoff(%d,%d) = %v shrank below previous floor %v", shard, fails, d, prevBase)
			}
			prevBase = base
		}
	}
	if j1, j2 := c.backoff(0, 1), c.backoff(1, 1); j1 == j2 {
		// Distinct shards should (overwhelmingly) jitter apart; a collision
		// here means the jitter ignores the shard ordinal.
		if c.backoff(2, 1) == j1 && c.backoff(3, 1) == j1 {
			t.Fatal("jitter is constant across shards")
		}
	}
}

// TestOffsetAddsNoAllocations pins the zero-extra-allocations-per-sample
// claim for workers: an offset run allocates exactly what an offset-0 run
// does.
func TestOffsetAddsNoAllocations(t *testing.T) {
	run := func(off int) func() {
		return func() {
			_, _, err := montecarlo.MapPooledReportCtx(context.Background(), 64, 1, 1,
				montecarlo.RunOpts{Policy: montecarlo.SkipUpTo(1.0), Offset: off},
				testNewState, testFn)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	base := testing.AllocsPerRun(20, run(0))
	shifted := testing.AllocsPerRun(20, run(100_000))
	if shifted > base {
		t.Fatalf("Offset run allocates %.1f, offset-0 run %.1f", shifted, base)
	}
}
