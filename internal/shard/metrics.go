package shard

import (
	"time"

	"vstat/internal/obs"
)

// Metrics is the coordinator's obs instrumentation. All handles are
// nil-safe (a nil *Metrics records nothing), and registration must happen
// before the registry's first shard is created — same contract as the MC
// instrumentation in internal/experiments.
type Metrics struct {
	sh *obs.Shard

	dispatched CounterHandle
	retried    CounterHandle
	speculated CounterHandle
	committed  CounterHandle
	duplicates CounterHandle
	lost       CounterHandle
	workers    CounterHandle
	local      CounterHandle
	latency    obs.HistID
}

// CounterHandle pairs a registry ID with its owning metrics object.
type CounterHandle struct{ id obs.CounterID }

// NewMetrics registers the shard counters and per-shard latency histogram
// on reg. Returns nil for a nil registry.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	m := &Metrics{
		dispatched: CounterHandle{reg.Counter("shard_dispatched_total")},
		retried:    CounterHandle{reg.Counter("shard_retried_total")},
		speculated: CounterHandle{reg.Counter("shard_speculated_total")},
		committed:  CounterHandle{reg.Counter("shard_committed_total")},
		duplicates: CounterHandle{reg.Counter("shard_duplicate_results_total")},
		lost:       CounterHandle{reg.Counter("shard_results_lost_total")},
		workers:    CounterHandle{reg.Counter("shard_workers_lost_total")},
		local:      CounterHandle{reg.Counter("shard_local_fallback_total")},
		latency:    reg.Histogram("shard_latency_ns", obs.ExpBounds(1_000_000, 2, 24)),
	}
	reg.SetHelp("shard_dispatched_total", "Shard attempts handed to any transport, including local fallback.")
	reg.SetHelp("shard_retried_total", "Shard re-dispatches after a failed, lost, or rejected attempt.")
	reg.SetHelp("shard_speculated_total", "Speculative duplicate attempts launched against straggling shards.")
	reg.SetHelp("shard_committed_total", "Shards whose first valid envelope won the commit CAS.")
	reg.SetHelp("shard_duplicate_results_total", "Valid envelopes that lost the commit race.")
	reg.SetHelp("shard_results_lost_total", "Attempts that returned an error, nothing, or an invalid envelope.")
	reg.SetHelp("shard_workers_lost_total", "Worker endpoints retired after consecutive failures.")
	reg.SetHelp("shard_local_fallback_total", "Shard attempts executed on the coordinator's local executor.")
	reg.SetHelp("shard_latency_ns", "Dispatch-to-commit wall time per committed shard, in nanoseconds.")
	m.sh = reg.NewShard()
	return m
}

func (m *Metrics) add(h CounterHandle, d int64) {
	if m == nil {
		return
	}
	m.sh.Add(h.id, d)
}

// RecordStats flushes a completed run's Stats into the registry and
// observes each committed shard's latency.
func (m *Metrics) RecordStats(s Stats) {
	if m == nil {
		return
	}
	m.add(m.dispatched, s.Dispatched)
	m.add(m.retried, s.Retried)
	m.add(m.speculated, s.Speculated)
	m.add(m.committed, s.Committed)
	m.add(m.duplicates, s.Duplicates)
	m.add(m.lost, s.Lost)
	m.add(m.workers, s.WorkersLost)
	m.add(m.local, s.LocalFallback)
	for _, d := range s.CommitLatency {
		m.sh.Observe(m.latency, int64(d))
	}
}

// Stats is the coordinator's accounting of a run. The invariants tests
// pin: Committed == number of shards; Dispatched == initial transport
// attempts (at most one per shard) + Retried + Speculated +
// LocalFallback; every dispatched attempt that resolved before the run
// completed ends as exactly one of committed, duplicate, or lost
// (attempts still in flight at completion are cancelled and counted
// nowhere else).
type Stats struct {
	Dispatched    int64 // attempts handed to any transport (incl. local)
	Retried       int64 // re-dispatches after a failed/lost/rejected attempt
	Speculated    int64 // extra attempts launched against stragglers
	Committed     int64 // shards whose first valid envelope won the CAS
	Duplicates    int64 // valid envelopes that lost the commit race
	Lost          int64 // attempts that returned error, nothing, or an invalid envelope
	WorkersLost   int64 // endpoints retired after consecutive failures
	LocalFallback int64 // attempts run on the coordinator's local executor

	// CommitLatency holds each committed shard's dispatch→commit wall time
	// (unordered; feeds the shard_latency_ns histogram).
	CommitLatency []time.Duration
}
