package shard

import (
	"bufio"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"vstat/internal/obs"
)

// Metrics is the coordinator's obs instrumentation. All handles are
// nil-safe (a nil *Metrics records nothing), and registration must happen
// before the registry's first shard is created — same contract as the MC
// instrumentation in internal/experiments.
type Metrics struct {
	sh *obs.Shard

	dispatched CounterHandle
	retried    CounterHandle
	speculated CounterHandle
	committed  CounterHandle
	duplicates CounterHandle
	lost       CounterHandle
	workers    CounterHandle
	local      CounterHandle
	journal    CounterHandle
	resumed    CounterHandle
	peakRSS    obs.GaugeID
	peakLive   obs.GaugeID
	latency    obs.HistID
}

// CounterHandle pairs a registry ID with its owning metrics object.
type CounterHandle struct{ id obs.CounterID }

// NewMetrics registers the shard counters and per-shard latency histogram
// on reg. Returns nil for a nil registry.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	m := &Metrics{
		dispatched: CounterHandle{reg.Counter("shard_dispatched_total")},
		retried:    CounterHandle{reg.Counter("shard_retried_total")},
		speculated: CounterHandle{reg.Counter("shard_speculated_total")},
		committed:  CounterHandle{reg.Counter("shard_committed_total")},
		duplicates: CounterHandle{reg.Counter("shard_duplicate_results_total")},
		lost:       CounterHandle{reg.Counter("shard_results_lost_total")},
		workers:    CounterHandle{reg.Counter("shard_workers_lost_total")},
		local:      CounterHandle{reg.Counter("shard_local_fallback_total")},
		journal:    CounterHandle{reg.Counter("shard_journal_commits_total")},
		resumed:    CounterHandle{reg.Counter("shard_journal_resume_skipped_total")},
		peakRSS:    reg.Gauge("shard_coordinator_peak_rss_bytes"),
		peakLive:   reg.Gauge("shard_coordinator_peak_live_envelopes"),
		latency:    reg.Histogram("shard_latency_ns", obs.ExpBounds(1_000_000, 2, 24)),
	}
	reg.SetHelp("shard_dispatched_total", "Shard attempts handed to any transport, including local fallback.")
	reg.SetHelp("shard_retried_total", "Shard re-dispatches after a failed, lost, or rejected attempt.")
	reg.SetHelp("shard_speculated_total", "Speculative duplicate attempts launched against straggling shards.")
	reg.SetHelp("shard_committed_total", "Shards whose first valid envelope won the commit CAS.")
	reg.SetHelp("shard_duplicate_results_total", "Valid envelopes that lost the commit race.")
	reg.SetHelp("shard_results_lost_total", "Attempts that returned an error, nothing, or an invalid envelope.")
	reg.SetHelp("shard_workers_lost_total", "Worker endpoints retired after consecutive failures.")
	reg.SetHelp("shard_local_fallback_total", "Shard attempts executed on the coordinator's local executor.")
	reg.SetHelp("shard_journal_commits_total", "Shard commits made durable in the dispatch journal (fsynced appends).")
	reg.SetHelp("shard_journal_resume_skipped_total", "Shards restored from the journal on resume and never re-dispatched.")
	reg.SetHelp("shard_coordinator_peak_rss_bytes", "Coordinator process peak resident set size at stats-record time.")
	reg.SetHelp("shard_coordinator_peak_live_envelopes", "High-water mark of shard envelopes the coordinator held live at once.")
	reg.SetHelp("shard_latency_ns", "Dispatch-to-commit wall time per committed shard, in nanoseconds.")
	m.sh = reg.NewShard()
	return m
}

func (m *Metrics) add(h CounterHandle, d int64) {
	if m == nil {
		return
	}
	m.sh.Add(h.id, d)
}

// RecordStats flushes a completed run's Stats into the registry and
// observes each committed shard's latency.
func (m *Metrics) RecordStats(s Stats) {
	if m == nil {
		return
	}
	m.add(m.dispatched, s.Dispatched)
	m.add(m.retried, s.Retried)
	m.add(m.speculated, s.Speculated)
	m.add(m.committed, s.Committed)
	m.add(m.duplicates, s.Duplicates)
	m.add(m.lost, s.Lost)
	m.add(m.workers, s.WorkersLost)
	m.add(m.local, s.LocalFallback)
	m.add(m.journal, s.JournalCommits)
	m.add(m.resumed, s.ResumeSkipped)
	m.sh.Set(m.peakLive, s.PeakLiveEnvelopes)
	m.sh.Set(m.peakRSS, peakRSSBytes())
	for _, d := range s.CommitLatency {
		m.sh.Observe(m.latency, int64(d))
	}
}

// peakRSSBytes reads the process's peak resident set size. Linux keeps it
// in /proc/self/status as VmHWM; elsewhere (or if the parse fails) fall
// back to the Go runtime's view of memory obtained from the OS — an
// upper-ish proxy, but monotone and cheap, which is all a gauge needs.
func peakRSSBytes() int64 {
	if f, err := os.Open("/proc/self/status"); err == nil {
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					return kb * 1024
				}
			}
			break
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.Sys)
}

// Stats is the coordinator's accounting of a run. The invariants tests
// pin: Committed == number of shards; Dispatched == initial transport
// attempts (at most one per shard) + Retried + Speculated +
// LocalFallback; every dispatched attempt that resolved before the run
// completed ends as exactly one of committed, duplicate, or lost
// (attempts still in flight at completion are cancelled and counted
// nowhere else).
type Stats struct {
	Dispatched    int64 // attempts handed to any transport (incl. local)
	Retried       int64 // re-dispatches after a failed/lost/rejected attempt
	Speculated    int64 // extra attempts launched against stragglers
	Committed     int64 // shards whose first valid envelope won the CAS
	Duplicates    int64 // valid envelopes that lost the commit race
	Lost          int64 // attempts that returned error, nothing, or an invalid envelope
	WorkersLost   int64 // endpoints retired after consecutive failures
	LocalFallback int64 // attempts run on the coordinator's local executor

	// ResumeSkipped counts shards restored from the dispatch journal (they
	// commit without any dispatch attempt and leave no latency sample);
	// JournalCommits counts fsynced journal appends this run performed.
	ResumeSkipped  int64
	JournalCommits int64
	// PeakLiveEnvelopes is the high-water mark of envelopes held live at
	// once: the shard count in buffered mode, O(in-flight attempts) under
	// the streaming merge.
	PeakLiveEnvelopes int64

	// CommitLatency holds each committed shard's dispatch→commit wall time
	// (unordered; feeds the shard_latency_ns histogram).
	CommitLatency []time.Duration
}

// Check validates the accounting invariants of a completed run against the
// number of shards it was supposed to commit. A non-nil error means the
// coordinator lost track of work — callers treating the run as
// authoritative (vsshard run) should fail loudly rather than report
// silently wrong statistics.
func (s Stats) Check(shards int) error {
	if s.Committed != int64(shards) {
		return fmt.Errorf("shard: stats invariant violated: committed %d of %d shards", s.Committed, shards)
	}
	if s.ResumeSkipped < 0 || s.ResumeSkipped > s.Committed {
		return fmt.Errorf("shard: stats invariant violated: %d resume-skipped of %d committed", s.ResumeSkipped, s.Committed)
	}
	if got, want := int64(len(s.CommitLatency)), s.Committed-s.ResumeSkipped; got != want {
		return fmt.Errorf("shard: stats invariant violated: %d commit latencies for %d dispatched commits", got, want)
	}
	// Dispatched = initial attempts (≤ one per non-restored shard) +
	// retries + speculation + local fallback.
	initial := s.Dispatched - s.Retried - s.Speculated - s.LocalFallback
	if initial < 0 || initial > int64(shards)-s.ResumeSkipped {
		return fmt.Errorf("shard: stats invariant violated: %d initial dispatches for %d shards (%d restored): dispatched=%d retried=%d speculated=%d local=%d",
			initial, shards, s.ResumeSkipped, s.Dispatched, s.Retried, s.Speculated, s.LocalFallback)
	}
	return nil
}
