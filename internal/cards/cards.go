// Package cards persists model cards and extraction results as versioned
// JSON documents, so extracted statistical models can be shipped to and
// loaded by downstream tools (the moral equivalent of a PDK model-card
// hand-off).
package cards

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"vstat/internal/bsim"
	"vstat/internal/core"
	"vstat/internal/variation"
	"vstat/internal/vsmodel"
)

// FormatVersion is bumped on any incompatible schema change.
const FormatVersion = 1

// StatVSDoc is the on-disk form of a statistical VS model.
type StatVSDoc struct {
	Format  int    `json:"format"`
	Kind    string `json:"kind"` // "statvs"
	Comment string `json:"comment,omitempty"`

	NMOS vsmodel.Params `json:"nmos"`
	PMOS vsmodel.Params `json:"pmos"`

	// Alpha coefficients in paper units (V·nm, nm, nm, nm·cm²/Vs,
	// nm·µF/cm²) for human readability.
	AlphaNPaper [5]float64 `json:"alpha_nmos_paper_units"`
	AlphaPPaper [5]float64 `json:"alpha_pmos_paper_units"`
}

// WriteStatVS serializes a statistical VS model.
func WriteStatVS(w io.Writer, m *core.StatVS, comment string) error {
	n1, n2, n3, n4, n5 := m.AlphaN.PaperUnits()
	p1, p2, p3, p4, p5 := m.AlphaP.PaperUnits()
	doc := StatVSDoc{
		Format:      FormatVersion,
		Kind:        "statvs",
		Comment:     comment,
		NMOS:        m.NMOS,
		PMOS:        m.PMOS,
		AlphaNPaper: [5]float64{n1, n2, n3, n4, n5},
		AlphaPPaper: [5]float64{p1, p2, p3, p4, p5},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadStatVS deserializes a statistical VS model.
func ReadStatVS(r io.Reader) (*core.StatVS, error) {
	var doc StatVSDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("cards: %w", err)
	}
	if doc.Format != FormatVersion {
		return nil, fmt.Errorf("cards: unsupported format %d (want %d)", doc.Format, FormatVersion)
	}
	if doc.Kind != "statvs" {
		return nil, fmt.Errorf("cards: document kind %q is not a statvs card", doc.Kind)
	}
	m := &core.StatVS{
		NMOS:   doc.NMOS,
		PMOS:   doc.PMOS,
		AlphaN: variation.FromPaperUnits(doc.AlphaNPaper[0], doc.AlphaNPaper[1], doc.AlphaNPaper[2], doc.AlphaNPaper[3], doc.AlphaNPaper[4]),
		AlphaP: variation.FromPaperUnits(doc.AlphaPPaper[0], doc.AlphaPPaper[1], doc.AlphaPPaper[2], doc.AlphaPPaper[3], doc.AlphaPPaper[4]),
	}
	return m, nil
}

// SaveStatVS writes the model to a file.
func SaveStatVS(path string, m *core.StatVS, comment string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteStatVS(f, m, comment)
}

// LoadStatVS reads a model from a file.
func LoadStatVS(path string) (*core.StatVS, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadStatVS(f)
}

// GoldenDoc is the on-disk form of a golden (BSIM-like) statistical model,
// used to version the reference kit the extraction ran against.
type GoldenDoc struct {
	Format  int    `json:"format"`
	Kind    string `json:"kind"` // "golden"
	Comment string `json:"comment,omitempty"`

	NMOS bsim.Params `json:"nmos"`
	PMOS bsim.Params `json:"pmos"`

	AlphaNPaper [5]float64 `json:"alpha_nmos_paper_units"`
	AlphaPPaper [5]float64 `json:"alpha_pmos_paper_units"`
}

// WriteGolden serializes a golden statistical model.
func WriteGolden(w io.Writer, m *core.StatGolden, comment string) error {
	n1, n2, n3, n4, n5 := m.AlphaN.PaperUnits()
	p1, p2, p3, p4, p5 := m.AlphaP.PaperUnits()
	doc := GoldenDoc{
		Format:      FormatVersion,
		Kind:        "golden",
		Comment:     comment,
		NMOS:        m.NMOS,
		PMOS:        m.PMOS,
		AlphaNPaper: [5]float64{n1, n2, n3, n4, n5},
		AlphaPPaper: [5]float64{p1, p2, p3, p4, p5},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadGolden deserializes a golden statistical model.
func ReadGolden(r io.Reader) (*core.StatGolden, error) {
	var doc GoldenDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("cards: %w", err)
	}
	if doc.Format != FormatVersion {
		return nil, fmt.Errorf("cards: unsupported format %d (want %d)", doc.Format, FormatVersion)
	}
	if doc.Kind != "golden" {
		return nil, fmt.Errorf("cards: document kind %q is not a golden card", doc.Kind)
	}
	return &core.StatGolden{
		NMOS:   doc.NMOS,
		PMOS:   doc.PMOS,
		AlphaN: variation.FromPaperUnits(doc.AlphaNPaper[0], doc.AlphaNPaper[1], doc.AlphaNPaper[2], doc.AlphaNPaper[3], doc.AlphaNPaper[4]),
		AlphaP: variation.FromPaperUnits(doc.AlphaPPaper[0], doc.AlphaPPaper[1], doc.AlphaPPaper[2], doc.AlphaPPaper[3], doc.AlphaPPaper[4]),
	}, nil
}
