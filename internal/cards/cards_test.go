package cards

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"vstat/internal/core"
	"vstat/internal/device"
	"vstat/internal/variation"
)

func TestStatVSRoundTrip(t *testing.T) {
	m := core.DefaultStatVS()
	m.AlphaN = variation.FromPaperUnits(2.3, 3.71, 3.71, 944, 0.29)
	m.AlphaP = variation.FromPaperUnits(2.86, 3.66, 3.66, 781, 0.81)
	m.NMOS.VT0 = 0.412 // perturb so the round trip is non-trivial

	var buf bytes.Buffer
	if err := WriteStatVS(&buf, m, "unit test"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStatVS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NMOS.VT0 != m.NMOS.VT0 || got.PMOS.Vxo != m.PMOS.Vxo {
		t.Fatal("card fields lost")
	}
	g1, _, _, g4, _ := got.AlphaN.PaperUnits()
	if math.Abs(g1-2.3) > 1e-9 || math.Abs(g4-944) > 1e-6 {
		t.Fatalf("alpha round trip: %g %g", g1, g4)
	}
	// The loaded model must behave identically.
	a := m.Nominal()(gotKind(), 600e-9, 40e-9).Eval(0.9, 0.9, 0, 0).Id
	b := got.Nominal()(gotKind(), 600e-9, 40e-9).Eval(0.9, 0.9, 0, 0).Id
	if a != b {
		t.Fatalf("loaded model differs: %g vs %g", a, b)
	}
}

func TestStatVSFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.json")
	m := core.DefaultStatVS()
	if err := SaveStatVS(path, m, ""); err != nil {
		t.Fatal(err)
	}
	got, err := LoadStatVS(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NMOS.Cinv != m.NMOS.Cinv {
		t.Fatal("file round trip lost data")
	}
	if _, err := LoadStatVS(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	g := core.DefaultStatGolden()
	var buf bytes.Buffer
	if err := WriteGolden(&buf, g, "ref kit"); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGolden(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NMOS.Vth0 != g.NMOS.Vth0 || got.AlphaN != g.AlphaN {
		t.Fatal("golden round trip lost data")
	}
}

func TestKindAndVersionGuards(t *testing.T) {
	// Wrong kind.
	var buf bytes.Buffer
	if err := WriteGolden(&buf, core.DefaultStatGolden(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadStatVS(&buf); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("kind guard: %v", err)
	}
	// Wrong version.
	bad := strings.NewReader(`{"format": 99, "kind": "statvs"}`)
	if _, err := ReadStatVS(bad); err == nil || !strings.Contains(err.Error(), "format") {
		t.Fatalf("format guard: %v", err)
	}
	// Garbage.
	if _, err := ReadStatVS(strings.NewReader("{nope")); err == nil {
		t.Fatal("garbage guard")
	}
	if _, err := ReadGolden(strings.NewReader(`{"format":1,"kind":"statvs"}`)); err == nil {
		t.Fatal("golden kind guard")
	}
	if _, err := ReadGolden(strings.NewReader(`{"format":2,"kind":"golden"}`)); err == nil {
		t.Fatal("golden format guard")
	}
	if _, err := ReadGolden(strings.NewReader("{")); err == nil {
		t.Fatal("golden garbage guard")
	}
}

func gotKind() device.Kind { return device.NMOS }

func TestShippedModelCardLoads(t *testing.T) {
	m, err := LoadStatVS("../../models/statvs-40nm.json")
	if err != nil {
		t.Skipf("shipped card not present: %v", err)
	}
	a1, _, _, a4, _ := m.AlphaN.PaperUnits()
	if a1 < 1 || a1 > 6 || a4 <= 0 {
		t.Fatalf("shipped card coefficients implausible: α1=%g α4=%g", a1, a4)
	}
	// The card must produce a working statistical device.
	d := m.SampleDevice(gotRNG(), device.NMOS, 600e-9, 40e-9)
	if id := d.Eval(0.9, 0.9, 0, 0).Id; id < 100e-6 || id > 900e-6 {
		t.Fatalf("shipped card Idsat %g implausible", id)
	}
}

func gotRNG() *rand.Rand { return rand.New(rand.NewSource(1)) }
