package bsim

import (
	"math"
	"math/rand"
	"testing"

	"vstat/internal/device"
	"vstat/internal/vsmodel"
)

const (
	wTest = 1e-6
	vdd   = 0.9
)

func TestGoldenOperatingWindow(t *testing.T) {
	n := NMOS40(wTest)
	ion := n.Eval(vdd, vdd, 0, 0).Id
	ioff := n.Eval(vdd, 0, 0, 0).Id
	if ion < 550e-6 || ion > 950e-6 {
		t.Fatalf("golden NMOS Ion = %g µA/µm outside window", ion*1e6)
	}
	if ioff < 5e-9 || ioff > 150e-9 {
		t.Fatalf("golden NMOS Ioff = %g nA/µm outside window", ioff*1e9)
	}
	p := PMOS40(wTest)
	ionP := -p.Eval(0, 0, vdd, vdd).Id
	if r := ionP / ion; r < 0.4 || r > 0.85 {
		t.Fatalf("golden P/N ratio %g", r)
	}
}

func TestGoldenZeroVds(t *testing.T) {
	n := NMOS40(wTest)
	if id := n.Eval(0, vdd, 0, 0).Id; id != 0 {
		t.Fatalf("Id(Vds=0) = %g", id)
	}
}

func TestGoldenMonotone(t *testing.T) {
	n := NMOS40(wTest)
	prev := -1.0
	for vg := 0.0; vg <= 0.9; vg += 0.01 {
		id := n.Eval(vdd, vg, 0, 0).Id
		if id < prev {
			t.Fatalf("not monotone in Vgs at %g", vg)
		}
		prev = id
	}
	prev = -1
	for vd := 0.0; vd <= 0.9; vd += 0.005 {
		id := n.Eval(vd, vdd, 0, 0).Id
		if id < prev {
			t.Fatalf("not monotone in Vds at %g: %g < %g", vd, id, prev)
		}
		prev = id
	}
}

func TestGoldenSubthresholdSwing(t *testing.T) {
	n := NMOS40(wTest)
	i1 := n.Eval(vdd, 0.05, 0, 0).Id
	i2 := n.Eval(vdd, 0.15, 0, 0).Id
	ss := 0.1 / math.Log10(i2/i1) * 1e3
	if ss < 70 || ss > 120 {
		t.Fatalf("golden SS = %g mV/dec unphysical", ss)
	}
}

func TestGoldenDIBL(t *testing.T) {
	n := NMOS40(wTest)
	if n.Eval(vdd, 0, 0, 0).Id <= n.Eval(0.1, 0, 0, 0).Id {
		t.Fatal("golden DIBL missing")
	}
	if n.Eta(30*vsmodel.Nm) <= n.Eta(40*vsmodel.Nm) {
		t.Fatal("golden DIBL must grow toward short channels")
	}
}

func TestGoldenSwapAndMirror(t *testing.T) {
	n := NMOS40(wTest)
	a := n.Eval(0.9, 0.6, 0, 0).Id
	b := n.Eval(0, 0.6, 0.9, 0).Id
	if math.Abs(a+b) > 1e-12*(1+math.Abs(a)) {
		t.Fatalf("swap antisymmetry: %g vs %g", a, b)
	}
	p := n
	p.TypeK = device.PMOS
	ep := p.Eval(-0.9, -0.6, 0, 0).Id
	if math.Abs(a+ep) > 1e-12*(1+math.Abs(a)) {
		t.Fatalf("polarity mirror: %g vs %g", a, ep)
	}
}

func TestGoldenChargeNeutralityAndFiniteness(t *testing.T) {
	n := NMOS40(wTest)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		vd, vg, vs := rng.Float64()*1.1, rng.Float64()*1.1, rng.Float64()*1.1
		e := n.Eval(vd, vg, vs, 0)
		if math.Abs(e.Q.Sum()) > 1e-22 {
			t.Fatalf("charge sum %g", e.Q.Sum())
		}
		if math.IsNaN(e.Id) || math.IsNaN(e.Q.Qg) {
			t.Fatalf("NaN at (%g,%g,%g)", vd, vg, vs)
		}
	}
}

func TestGoldenBodyEffect(t *testing.T) {
	n := NMOS40(wTest)
	if n.Eval(vdd, 0.4, 0, -0.5).Id >= n.Eval(vdd, 0.4, 0, 0).Id {
		t.Fatal("reverse body bias must cut current")
	}
}

func TestGoldenWithDeltas(t *testing.T) {
	n := NMOS40(wTest)
	d := n.WithDeltas(device.Deltas{DVT0: 0.03}).(*Params)
	if d.Vth0 != n.Vth0+0.03 {
		t.Fatal("DVT0 mapping")
	}
	if d.Eval(vdd, 0, 0, 0).Id >= n.Eval(vdd, 0, 0, 0).Id {
		t.Fatal("higher Vth0 must cut Ioff")
	}
	dl := n.WithDeltas(device.Deltas{DL: 2 * vsmodel.Nm}).(*Params)
	if dl.Leff() != n.Leff()+2*vsmodel.Nm {
		t.Fatal("DL mapping")
	}
	dm := n.WithDeltas(device.Deltas{DMu: 0.1 * n.U0}).(*Params)
	if dm.Eval(vdd, vdd, 0, 0).Id <= n.Eval(vdd, vdd, 0, 0).Id {
		t.Fatal("higher mobility must raise Ion")
	}
	dc := n.WithDeltas(device.Deltas{DCinv: 0.05 * n.Cox}).(*Params)
	if device.Cgg(dc, 0, vdd, 0, 0) <= device.Cgg(&n, 0, vdd, 0, 0) {
		t.Fatal("higher Cox must raise Cgg")
	}
	// Nominal card untouched.
	if n.Vth0 != 0.36 {
		t.Fatal("WithDeltas mutated nominal")
	}
}

func TestGoldenVsVSModelShapeAgreement(t *testing.T) {
	// The two models are different equations but must describe the same
	// kind of transistor: currents within a factor 2 across the sweep above
	// threshold.
	nv := vsmodel.NMOS40(wTest)
	nb := NMOS40(wTest)
	for vg := 0.4; vg <= 0.9; vg += 0.1 {
		iv := nv.Eval(vdd, vg, 0, 0).Id
		ib := nb.Eval(vdd, vg, 0, 0).Id
		if r := iv / ib; r < 0.5 || r > 2 {
			t.Fatalf("models diverge at Vg=%g: VS=%g golden=%g", vg, iv, ib)
		}
	}
}

func TestGoldenAccessors(t *testing.T) {
	n := NMOS40(wTest)
	if n.Kind() != device.NMOS || n.Width() != wTest || n.Length() != 40*vsmodel.Nm {
		t.Fatal("accessors")
	}
	if n.Leff() != 35*vsmodel.Nm || n.Weff() != wTest {
		t.Fatal("effective geometry")
	}
	g := n.WithGeometry(3e-6, 50*vsmodel.Nm)
	if g.W != 3e-6 || g.L != 50*vsmodel.Nm || g.Vth0 != n.Vth0 {
		t.Fatal("WithGeometry")
	}
	if Card(device.PMOS, wTest).TypeK != device.PMOS {
		t.Fatal("Card polarity")
	}
}
