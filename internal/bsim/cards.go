package bsim

import (
	"vstat/internal/device"
	"vstat/internal/vsmodel"
)

// Golden 40-nm-class cards. These play the role of the industrial design
// kit: all "measured" device statistics in the reproduction are Monte Carlo
// runs of this model with the truth mismatch coefficients defined in
// internal/variation.

// NMOS40 returns the golden NMOS card at drawn width w (meters).
func NMOS40(w float64) Params {
	return Params{
		TypeK: device.NMOS,
		W:     w,
		L:     40 * vsmodel.Nm,
		DLint: 5 * vsmodel.Nm,
		DWint: 0,

		Vth0:   0.36,
		GammaB: 0.25,
		PhiS:   0.9,

		Eta0:    0.11,
		LEta:    20 * vsmodel.Nm,
		DVTRoll: 0.18,
		LRoll:   22 * vsmodel.Nm,
		LRef:    35 * vsmodel.Nm,

		U0:     330 * vsmodel.Cm2PerVs,
		Theta:  1.3,
		Theta2: 0.25,
		Vsat:   1.15e5,
		LvSat:  70 * vsmodel.Nm,
		NFac:   1.38,
		Lambda: 0.25,
		Rdsw:   95e-6,

		Cox: 1.72 * vsmodel.MuFPerCm2,
		Cov: 0.16e-9,

		PhiT: vsmodel.PhiT300,
	}
}

// PMOS40 returns the golden PMOS card at drawn width w (meters), in
// n-equivalent parameter space.
func PMOS40(w float64) Params {
	return Params{
		TypeK: device.PMOS,
		W:     w,
		L:     40 * vsmodel.Nm,
		DLint: 5 * vsmodel.Nm,
		DWint: 0,

		Vth0:   0.36,
		GammaB: 0.25,
		PhiS:   0.9,

		Eta0:    0.12,
		LEta:    20 * vsmodel.Nm,
		DVTRoll: 0.17,
		LRoll:   22 * vsmodel.Nm,
		LRef:    35 * vsmodel.Nm,

		U0:     105 * vsmodel.Cm2PerVs,
		Theta:  1.1,
		Theta2: 0.2,
		Vsat:   0.9e5,
		LvSat:  70 * vsmodel.Nm,
		NFac:   1.42,
		Lambda: 0.28,
		Rdsw:   120e-6,

		Cox: 1.7 * vsmodel.MuFPerCm2,
		Cov: 0.16e-9,

		PhiT: vsmodel.PhiT300,
	}
}

// Card returns the golden card for the given polarity and drawn width.
func Card(k device.Kind, w float64) Params {
	if k == device.PMOS {
		return PMOS40(w)
	}
	return NMOS40(w)
}
