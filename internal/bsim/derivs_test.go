package bsim

import (
	"math"
	"math/rand"
	"testing"

	"vstat/internal/device"
)

func TestGoldenNativeDerivsMatchFD(t *testing.T) {
	n := NMOS40(600e-9)
	p := PMOS40(600e-9)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 400; trial++ {
		var d device.Device
		if trial%2 == 0 {
			d = &n
		} else {
			d = &p
		}
		vd := rng.Float64()*1.8 - 0.45
		vg := rng.Float64() * 0.9
		vs := rng.Float64() * 0.9

		nat := d.(device.NativeDerivs).EvalDerivs4(vd, vg, vs, 0)
		fd := device.EvalDerivsFD(d, vd, vg, vs, 0)

		if math.Abs(nat.Id-fd.Id) > 1e-12*(1+math.Abs(fd.Id)) {
			t.Fatalf("trial %d: Id %g vs %g", trial, nat.Id, fd.Id)
		}
		if math.Abs(nat.Q.Qg-fd.Q.Qg) > 1e-12*(1+math.Abs(fd.Q.Qg)) {
			t.Fatalf("trial %d: Qg %g vs %g", trial, nat.Q.Qg, fd.Q.Qg)
		}
		gScale := 0.0
		for _, v := range fd.GId {
			gScale += math.Abs(v)
		}
		for j := 0; j < 4; j++ {
			// FD truncation dominates the tolerance; the AD side is exact.
			if math.Abs(nat.GId[j]-fd.GId[j]) > 0.03*gScale+1e-12 {
				t.Fatalf("trial %d (vd=%.3f vg=%.3f vs=%.3f): GId[%d] AD %g vs FD %g",
					trial, vd, vg, vs, j, nat.GId[j], fd.GId[j])
			}
		}
		for k := 0; k < 4; k++ {
			cScale := 0.0
			for _, v := range fd.CQ[k] {
				cScale += math.Abs(v)
			}
			for j := 0; j < 4; j++ {
				if math.Abs(nat.CQ[k][j]-fd.CQ[k][j]) > 0.03*cScale+1e-22 {
					t.Fatalf("trial %d: CQ[%d][%d] AD %g vs FD %g",
						trial, k, j, nat.CQ[k][j], fd.CQ[k][j])
				}
			}
		}
	}
}

func TestGoldenNativeDerivsInvariances(t *testing.T) {
	n := NMOS40(600e-9)
	d := n.EvalDerivs4(0.7, 0.8, 0.1, 0)
	sum := d.GId[0] + d.GId[1] + d.GId[2] + d.GId[3]
	scale := math.Abs(d.GId[0]) + math.Abs(d.GId[1]) + math.Abs(d.GId[2]) + math.Abs(d.GId[3])
	if math.Abs(sum) > 1e-12*scale {
		t.Fatalf("GId row sum %g", sum)
	}
	for k := 0; k < 4; k++ {
		s := d.CQ[k][0] + d.CQ[k][1] + d.CQ[k][2] + d.CQ[k][3]
		if math.Abs(s) > 1e-22 {
			t.Fatalf("CQ row %d sum %g", k, s)
		}
	}
	for j := 0; j < 4; j++ {
		s := d.CQ[0][j] + d.CQ[1][j] + d.CQ[2][j] + d.CQ[3][j]
		if math.Abs(s) > 1e-22 {
			t.Fatalf("CQ column %d sum %g", j, s)
		}
	}
}

func TestDualArithmetic(t *testing.T) {
	a := indep(3, 0)
	b := indep(2, 1)
	// f = (a·b + a)/b − sqrt(a) = a + a/b − √a → 4.5 − √3;
	// df/da = 1 + 1/b − 1/(2√3) = 1.5 − 1/(2√3).
	f := a.mul(b).add(a).div(b).sub(a.sqrt())
	wantV := 4.5 - math.Sqrt(3)
	if math.Abs(f.v-wantV) > 1e-14 {
		t.Fatalf("value %g want %g", f.v, wantV)
	}
	wantDa := 1.5 - 1/(2*math.Sqrt(3))
	if math.Abs(f.d[0]-wantDa) > 1e-14 {
		t.Fatalf("df/da %g want %g", f.d[0], wantDa)
	}
	// df/db = −a/b² (from (a·b+a)/b = a + a/b).
	if math.Abs(f.d[1]+3.0/4) > 1e-14 {
		t.Fatalf("df/db %g want %g", f.d[1], -0.75)
	}
	// softplus derivative is the logistic.
	s := indep(0.3, 2).softplus()
	if math.Abs(s.d[2]-1/(1+math.Exp(-0.3))) > 1e-14 {
		t.Fatalf("softplus deriv %g", s.d[2])
	}
	if indep(5, 0).freeze().d[0] != 0 {
		t.Fatal("freeze")
	}
}
