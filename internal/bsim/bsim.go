// Package bsim implements the "golden" reference compact model standing in
// for the proprietary 40-nm BSIM4 industrial design kit the paper validates
// against. It is a BSIM-style drift–diffusion / velocity-saturation model:
// single-piece Vgsteff smoothing, vertical-field mobility degradation,
// velocity saturation with a smooth Vdseff, channel-length modulation,
// source/drain resistance degeneration, DIBL and Vth roll-off with their own
// length dependencies, and a Ward–Dutton-style charge model.
//
// Its equation structure and native parameter set (Vth0, ΔL, ΔW, U0, Cox)
// deliberately differ from the Virtual Source model's, so the backward
// propagation of variance in this repository is a genuine cross-model-space
// extraction, as in the paper where silicon/BSIM statistics are mapped onto
// VS parameters.
package bsim

import (
	"math"

	"vstat/internal/device"
)

// Params is a golden-model card bound to a geometry. SI units throughout.
type Params struct {
	TypeK device.Kind

	W, L  float64 // drawn geometry, m
	DLint float64 // Leff = L − DLint, m
	DWint float64 // Weff = W − DWint, m

	Vth0   float64 // long-channel zero-bias threshold, V
	GammaB float64 // body factor, √V
	PhiS   float64 // surface potential, V

	Eta0    float64 // DIBL coefficient at LRef, V/V
	LEta    float64 // DIBL length scale, m
	DVTRoll float64 // Vth roll-off magnitude, V
	LRoll   float64 // roll-off length scale, m
	LRef    float64 // reference length, m

	U0     float64 // low-field mobility, m²/(V·s)
	Theta  float64 // first-order mobility degradation, 1/V
	Theta2 float64 // second-order mobility degradation, 1/V²
	Vsat   float64 // saturation velocity at LRef, m/s
	LvSat  float64 // length scale of the effective-velocity roll-up, m
	//             (velocity overshoot toward short channels, as industrial
	//             kits capture through L-dependent vsat binning)
	NFac   float64 // subthreshold swing factor
	Lambda float64 // channel-length modulation, 1/V
	Rdsw   float64 // lumped S/D resistance, Ω·m (divide by Weff)

	Cox float64 // gate oxide capacitance, F/m²
	Cov float64 // overlap capacitance per edge, F/m

	PhiT float64 // thermal voltage, V
}

// Kind returns the channel polarity.
func (p *Params) Kind() device.Kind { return p.TypeK }

// Width returns the drawn width in meters.
func (p *Params) Width() float64 { return p.W }

// Length returns the drawn gate length in meters.
func (p *Params) Length() float64 { return p.L }

// Leff returns the effective channel length.
func (p *Params) Leff() float64 { return p.L - p.DLint }

// Weff returns the effective channel width.
func (p *Params) Weff() float64 { return p.W - p.DWint }

// Eta returns the DIBL coefficient at the given effective length.
func (p *Params) Eta(leff float64) float64 {
	return p.Eta0 * math.Exp((p.LRef-leff)/p.LEta)
}

// WithDeltas implements device.Varier. The statistical deltas perturb the
// golden model's native parameters: DVT0→Vth0, DL→Leff, DW→Weff, DMu→U0,
// DCinv→Cox.
func (p *Params) WithDeltas(d device.Deltas) device.Device {
	q := *p
	q.Vth0 += d.DVT0
	q.DLint -= d.DL
	q.DWint -= d.DW
	q.U0 += d.DMu
	q.Cox += d.DCinv
	return &q
}

// WithGeometry returns a copy of the card re-targeted to a new drawn W/L.
func (p Params) WithGeometry(w, l float64) Params {
	p.W = w
	p.L = l
	return p
}

// Eval implements device.Device.
func (p *Params) Eval(vd, vg, vs, vb float64) device.Eval {
	pol := p.TypeK.Polarity()
	nvd, nvg, nvs, nvb := pol*vd, pol*vg, pol*vs, pol*vb
	swap := false
	if nvd < nvs {
		nvd, nvs = nvs, nvd
		swap = true
	}
	vgs := nvg - nvs
	vds := nvd - nvs
	vbs := nvb - nvs

	id, q := p.evalN(vgs, vds, vbs, nvg-nvd)
	if swap {
		id = -id
		q = q.SwapDS()
	}
	if pol < 0 {
		id = -id
		q = q.Neg()
	}
	return device.Eval{Id: id, Q: q}
}

// evalN computes current and charges for the n-equivalent orientation with
// vds >= 0. vgd is needed for the drain overlap charge.
func (p *Params) evalN(vgs, vds, vbs, vgd float64) (float64, device.Charges) {
	leff := p.Leff()
	weff := p.Weff()
	if leff <= 1e-9 || weff <= 0 {
		return 0, device.Charges{}
	}
	vt := p.PhiT

	// Threshold with body effect, roll-off and DIBL.
	vbsEff := vbs
	if max := p.PhiS - 0.05; vbsEff > max {
		vbsEff = max
	}
	vth := p.Vth0 - p.DVTRoll*math.Exp(-leff/p.LRoll) - p.Eta(leff)*vds
	if p.GammaB != 0 {
		vth += p.GammaB * (math.Sqrt(p.PhiS-vbsEff) - math.Sqrt(p.PhiS))
	}

	// Single-piece effective overdrive.
	nvt := p.NFac * vt
	vgst := vgs - vth
	vgsteff := nvt * softplus(vgst/nvt)
	if vgsteff < 1e-12 {
		vgsteff = 1e-12
	}

	// Mobility degradation and velocity saturation.
	mueff := p.U0 / (1 + p.Theta*vgsteff + p.Theta2*vgsteff*vgsteff)
	vsat := p.Vsat
	if p.LvSat > 0 {
		vsat *= math.Exp((p.LRef - leff) / p.LvSat)
	}
	esatL := 2 * vsat / mueff * leff
	// The 2·n·vt term keeps Vdsat at the diffusion floor in subthreshold,
	// preserving the exponential swing (as in BSIM's Vgst2vb term).
	vgst2 := vgsteff + 2*nvt
	vdsat := vgst2 * esatL / (vgst2 + esatL)

	// Smooth minimum of Vds and Vdsat.
	const dv = 0.01
	t := vdsat - vds - dv
	vdseff := vdsat - 0.5*(t+math.Sqrt(t*t+4*dv*vdsat))
	if vdseff < 0 {
		vdseff = 0
	}
	if vdseff > vds {
		vdseff = vds
	}

	// Core current: gLin = Ids0/Vdseff kept explicit to avoid 0/0 at Vds=0.
	vbulk := vgsteff + 2*nvt
	beta := mueff * p.Cox * weff / leff
	gLin := beta * vgsteff * (1 - vdseff/(2*vbulk)) / (1 + vdseff/esatL)
	ids0 := gLin * vdseff
	clm := 1 + p.Lambda*(vds-vdseff)
	rds := p.Rdsw / weff
	id := ids0 * clm / (1 + rds*gLin)

	// Charges: virtual-source-free Ward–Dutton-like scheme driven by the
	// golden model's own Vgsteff and saturation measure.
	sat := 0.0
	if vdsat > 0 {
		sat = vdseff / vdsat
		if sat > 1 {
			sat = 1
		}
	}
	qInv := weff * leff * p.Cox * vgsteff * (1 - sat/3)
	qdFrac := 0.5 - sat/10
	qsFrac := 0.5 + sat/10
	covW := p.Cov * weff
	qovS := covW * vgs
	qovD := covW * vgd
	q := device.Charges{
		Qg: qInv + qovS + qovD,
		Qd: -qdFrac*qInv - qovD,
		Qs: -qsFrac*qInv - qovS,
		Qb: 0,
	}
	return id, q
}

func softplus(x float64) float64 {
	if x > 40 {
		return x
	}
	if x < -40 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}
