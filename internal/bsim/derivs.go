package bsim

import (
	"math"

	"vstat/internal/device"
)

// EvalDerivs4 implements device.NativeDerivs for the golden model: the
// closed-form equations of evalN are re-evaluated over forward-mode dual
// numbers, producing exact current and charge derivatives in a single pass.
func (p *Params) EvalDerivs4(vd, vg, vs, vb float64) device.Derivs {
	pol := p.TypeK.Polarity()
	nvd, nvg, nvs, nvb := pol*vd, pol*vg, pol*vs, pol*vb
	swap := false
	if nvd < nvs {
		nvd, nvs = nvs, nvd
		swap = true
	}
	id, q, gid3, cq3 := p.evalND(nvg-nvs, nvd-nvs, nvb-nvs)

	// Map (vgs, vds, vbs)-space gradients onto terminals D, G, S, B:
	// ∂vgs = (0,1,-1,0), ∂vds = (1,0,-1,0), ∂vbs = (0,0,-1,1).
	toTerm := func(g [3]float64) [4]float64 {
		return [4]float64{
			g[1],
			g[0],
			-g[0] - g[1] - g[2],
			g[2],
		}
	}
	var der device.Derivs
	der.Id = id
	der.Q = q
	der.GId = toTerm(gid3)
	for k := 0; k < 4; k++ {
		der.CQ[k] = toTerm(cq3[k])
	}
	if swap {
		der = swapDerivsB(der)
	}
	if pol < 0 {
		der.Id = -der.Id
		der.Q = der.Q.Neg()
	}
	return der
}

// swapDerivsB mirrors vsmodel's swap of drain/source roles.
func swapDerivsB(d device.Derivs) device.Derivs {
	var out device.Derivs
	out.Id = -d.Id
	out.Q = d.Q.SwapDS()
	perm := [4]int{2, 1, 0, 3}
	for t := 0; t < 4; t++ {
		out.GId[t] = -d.GId[perm[t]]
		for k := 0; k < 4; k++ {
			out.CQ[k][t] = d.CQ[perm[k]][perm[t]]
		}
	}
	return out
}

// evalND is evalN over duals: it returns the current/charge values plus
// their gradients with respect to (vgs, vds, vbs). vgd = vgs − vds is
// derived internally, so no fourth independent is needed.
func (p *Params) evalND(vgsV, vdsV, vbsV float64) (idV float64, qV device.Charges, gid [3]float64, cq [4][3]float64) {
	leff := p.Leff()
	weff := p.Weff()
	if leff <= 1e-9 || weff <= 0 {
		return 0, device.Charges{}, gid, cq
	}
	vt := p.PhiT
	vgs := indep(vgsV, 0)
	vds := indep(vdsV, 1)
	vbs := indep(vbsV, 2)
	vgd := vgs.sub(vds) // source-referred identity: vg−vd = vgs−vds

	// Threshold.
	vbsEff := vbs
	if max := p.PhiS - 0.05; vbsEff.v > max {
		vbsEff = con(max)
	}
	vth := con(p.Vth0 - p.DVTRoll*math.Exp(-leff/p.LRoll)).
		sub(vds.scale(p.Eta(leff)))
	if p.GammaB != 0 {
		vth = vth.add(con(p.PhiS).sub(vbsEff).sqrt().sub(con(math.Sqrt(p.PhiS))).scale(p.GammaB))
	}

	nvt := p.NFac * vt
	vgst := vgs.sub(vth)
	vgsteff := vgst.scale(1 / nvt).softplus().scale(nvt)
	if vgsteff.v < 1e-12 {
		vgsteff = con(1e-12)
	}

	// Mobility and velocity saturation.
	den := vgsteff.scale(p.Theta).add(vgsteff.mul(vgsteff).scale(p.Theta2)).addConst(1)
	mueff := con(p.U0).div(den)
	vsat := p.Vsat
	if p.LvSat > 0 {
		vsat *= math.Exp((p.LRef - leff) / p.LvSat)
	}
	esatL := con(2 * vsat * leff).div(mueff)
	vgst2 := vgsteff.addConst(2 * nvt)
	vdsat := vgst2.mul(esatL).div(vgst2.add(esatL))

	// Smooth Vdseff.
	const dv = 0.01
	t := vdsat.sub(vds).addConst(-dv)
	s := t.mul(t).add(vdsat.scale(4 * dv)).sqrt()
	vdseff := vdsat.sub(t.add(s).scale(0.5))
	if vdseff.v < 0 {
		vdseff = con(0)
	}
	if vdseff.v > vds.v {
		vdseff = vds
	}

	// Core current.
	vbulk := vgst2 // vgsteff + 2nvt
	beta := mueff.scale(p.Cox * weff / leff)
	one := con(1)
	gLin := beta.mul(vgsteff).mul(one.sub(vdseff.div(vbulk.scale(2)))).
		div(one.add(vdseff.div(esatL)))
	ids0 := gLin.mul(vdseff)
	clm := vds.sub(vdseff).scale(p.Lambda).addConst(1)
	rds := p.Rdsw / weff
	id := ids0.mul(clm).div(gLin.scale(rds).addConst(1))

	// Charges.
	sat := con(0)
	if vdsat.v > 0 {
		sat = vdseff.div(vdsat)
		if sat.v > 1 {
			sat = con(1)
		}
	}
	qInv := vgsteff.mul(one.sub(sat.scale(1.0 / 3))).scale(weff * leff * p.Cox)
	qdFrac := one.sub(sat.scale(0.2)).scale(0.5) // 0.5 − sat/10
	qsFrac := one.add(sat.scale(0.2)).scale(0.5)
	covW := p.Cov * weff
	qovS := vgs.scale(covW)
	qovD := vgd.scale(covW)

	qg := qInv.add(qovS).add(qovD)
	qd := qdFrac.mul(qInv).scale(-1).sub(qovD)
	qs := qsFrac.mul(qInv).scale(-1).sub(qovS)

	idV = id.v
	qV = device.Charges{Qd: qd.v, Qg: qg.v, Qs: qs.v, Qb: 0}
	gid = id.d
	cq[0] = qd.d
	cq[1] = qg.d
	cq[2] = qs.d
	// Qb row stays zero.
	return idV, qV, gid, cq
}
