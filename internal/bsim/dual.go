package bsim

import "math"

// dual is a forward-mode AD scalar carrying derivatives with respect to the
// three source-referred independents (vgs, vds, vbs). Rewriting the golden
// model's closed-form equations over duals yields exact terminal
// derivatives in one pass — the golden counterpart of the VS model's
// implicit-function-theorem fast path.
type dual struct {
	v float64
	d [3]float64
}

func con(v float64) dual { return dual{v: v} }

func indep(v float64, which int) dual {
	var d dual
	d.v = v
	d.d[which] = 1
	return d
}

func (a dual) add(b dual) dual {
	return dual{v: a.v + b.v, d: [3]float64{a.d[0] + b.d[0], a.d[1] + b.d[1], a.d[2] + b.d[2]}}
}

func (a dual) sub(b dual) dual {
	return dual{v: a.v - b.v, d: [3]float64{a.d[0] - b.d[0], a.d[1] - b.d[1], a.d[2] - b.d[2]}}
}

func (a dual) mul(b dual) dual {
	return dual{v: a.v * b.v, d: [3]float64{
		a.d[0]*b.v + a.v*b.d[0],
		a.d[1]*b.v + a.v*b.d[1],
		a.d[2]*b.v + a.v*b.d[2],
	}}
}

func (a dual) div(b dual) dual {
	inv := 1 / b.v
	q := a.v * inv
	return dual{v: q, d: [3]float64{
		(a.d[0] - q*b.d[0]) * inv,
		(a.d[1] - q*b.d[1]) * inv,
		(a.d[2] - q*b.d[2]) * inv,
	}}
}

func (a dual) scale(k float64) dual {
	return dual{v: a.v * k, d: [3]float64{a.d[0] * k, a.d[1] * k, a.d[2] * k}}
}

func (a dual) addConst(k float64) dual { return dual{v: a.v + k, d: a.d} }

func (a dual) sqrt() dual {
	s := math.Sqrt(a.v)
	g := 0.0
	if s > 0 {
		g = 0.5 / s
	}
	return dual{v: s, d: [3]float64{a.d[0] * g, a.d[1] * g, a.d[2] * g}}
}

// softplusD is nvt-scaled softplus with its logistic derivative.
func (a dual) softplus() dual {
	var v, g float64
	switch {
	case a.v > 40:
		v, g = a.v, 1
	case a.v < -40:
		v, g = math.Exp(a.v), math.Exp(a.v)
	default:
		e := math.Exp(a.v)
		v = math.Log1p(e)
		g = e / (1 + e)
	}
	return dual{v: v, d: [3]float64{a.d[0] * g, a.d[1] * g, a.d[2] * g}}
}

// freeze drops the derivative (used at hard clamps).
func (a dual) freeze() dual { return dual{v: a.v} }
