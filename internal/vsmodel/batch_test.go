package vsmodel

import (
	"math/rand"
	"testing"

	"vstat/internal/device"
)

// randomInstance draws a Pelgrom-style perturbed VS instance.
func randomInstance(rng *rand.Rand, pmos bool) device.Device {
	var base Params
	if pmos {
		base = PMOS40(600e-9)
	} else {
		base = NMOS40(600e-9)
	}
	d := device.Deltas{
		DVT0:  rng.NormFloat64() * 0.03,
		DL:    rng.NormFloat64() * 2e-9,
		DW:    rng.NormFloat64() * 10e-9,
		DMu:   rng.NormFloat64() * 0.002,
		DCinv: rng.NormFloat64() * 0.0005,
	}
	return base.WithDeltas(d)
}

// The batched VS kernel must reproduce the scalar Eval / EvalDerivs4 paths
// bit-for-bit on every lane, across lane widths, random Pelgrom draws,
// polarities, swapped orientations, and mixed per-lane eval modes.
func TestBatchKernelBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, k := range []int{1, 3, 8, 16} {
		pb := NewParamsBatch(k)
		out := device.NewDerivsBatch(k)
		devs := make([]device.Device, k)
		vd := make([]float64, k)
		vg := make([]float64, k)
		vs := make([]float64, k)
		vb := make([]float64, k)
		mode := make([]device.EvalMode, k)

		for round := 0; round < 50; round++ {
			for l := 0; l < k; l++ {
				devs[l] = randomInstance(rng, rng.Intn(2) == 1)
				if !pb.SetLane(l, devs[l]) {
					t.Fatalf("SetLane rejected a *Params instance")
				}
				vd[l] = rng.Float64()*1.8 - 0.45
				vg[l] = rng.Float64() * 0.9
				vs[l] = rng.Float64() * 0.9
				vb[l] = rng.Float64()*0.2 - 0.1
				mode[l] = device.EvalMode(rng.Intn(3)) // skip/values/full mix
				// Poison skipped lanes' outputs to verify they stay untouched.
				if mode[l] == device.EvalSkip {
					out.Id[l] = 1e99
				}
			}
			pb.EvalDerivsBatch(vd, vg, vs, vb, mode, out)
			for l := 0; l < k; l++ {
				switch mode[l] {
				case device.EvalSkip:
					if out.Id[l] != 1e99 {
						t.Fatalf("k=%d round=%d lane=%d: skip lane was written", k, round, l)
					}
				case device.EvalValues:
					ref := devs[l].Eval(vd[l], vg[l], vs[l], vb[l])
					if out.Id[l] != ref.Id {
						t.Fatalf("k=%d round=%d lane=%d: Id %x != scalar %x", k, round, l, out.Id[l], ref.Id)
					}
					got := device.Charges{Qd: out.Q[0][l], Qg: out.Q[1][l], Qs: out.Q[2][l], Qb: out.Q[3][l]}
					if got != ref.Q {
						t.Fatalf("k=%d round=%d lane=%d: Q %+v != scalar %+v", k, round, l, got, ref.Q)
					}
				case device.EvalFull:
					ref := device.EvalDerivs(devs[l], vd[l], vg[l], vs[l], vb[l])
					if got := out.Lane(l); got != ref {
						t.Fatalf("k=%d round=%d lane=%d: derivs diverge from scalar\n got %+v\n ref %+v",
							k, round, l, got, ref)
					}
				}
			}
		}
	}
}

// The fallback scalar-loop batch must agree with the native kernel (both
// reduce to the scalar paths).
func TestFallbackBatchMatchesScalar(t *testing.T) {
	const k = 5
	rng := rand.New(rand.NewSource(7))
	fb := device.NewFallbackBatch(k)
	out := device.NewDerivsBatch(k)
	devs := make([]device.Device, k)
	vd := make([]float64, k)
	vg := make([]float64, k)
	vs := make([]float64, k)
	vb := make([]float64, k)
	mode := make([]device.EvalMode, k)
	for l := 0; l < k; l++ {
		devs[l] = randomInstance(rng, l%2 == 1)
		fb.SetLane(l, devs[l])
		vd[l] = rng.Float64() * 0.9
		vg[l] = rng.Float64() * 0.9
		mode[l] = device.EvalFull
	}
	fb.EvalDerivsBatch(vd, vg, vs, vb, mode, out)
	for l := 0; l < k; l++ {
		if got, ref := out.Lane(l), device.EvalDerivs(devs[l], vd[l], vg[l], vs[l], vb[l]); got != ref {
			t.Fatalf("lane %d: fallback %+v != scalar %+v", l, got, ref)
		}
	}
}

// The batched kernel must not allocate per call.
func TestBatchKernelZeroAlloc(t *testing.T) {
	const k = 8
	rng := rand.New(rand.NewSource(3))
	pb := NewParamsBatch(k)
	out := device.NewDerivsBatch(k)
	vd := make([]float64, k)
	vg := make([]float64, k)
	vs := make([]float64, k)
	vb := make([]float64, k)
	mode := make([]device.EvalMode, k)
	for l := 0; l < k; l++ {
		pb.SetLane(l, randomInstance(rng, false))
		vd[l] = 0.9
		vg[l] = 0.7
		mode[l] = device.EvalFull
	}
	allocs := testing.AllocsPerRun(100, func() {
		pb.EvalDerivsBatch(vd, vg, vs, vb, mode, out)
	})
	if allocs != 0 {
		t.Fatalf("EvalDerivsBatch allocates %.1f per call, want 0", allocs)
	}
}
