package vsmodel

import "vstat/internal/device"

// EvalDerivs4 implements the fast native-derivative path used by the
// circuit simulator: instead of re-solving the series-resistance implicit
// equation once per perturbed terminal (4 full solves), it solves once and
// derives all terminal sensitivities by the implicit function theorem.
//
// With F the core current at the internal bias u = (vgsi, vdsi, vbsi) and
// the solved current I satisfying I = F(u(I, v)), the terminal derivative
// follows from
//
//	dI·D = Fg·dvgs + Fd·dvds + Fb·dvbs,
//	D = 1 + Fg·rs + Fd·(rs+rd) + Fb·rs,
//
// and the charge derivatives chain through the internal-voltage shifts the
// current feedback induces. Only three cheap core evaluations (finite
// differences of F, qixo, fsat at the internal point) are needed on top of
// the solve.
func (p *Params) EvalDerivs4(vd, vg, vs, vb float64) device.Derivs {
	pol := p.TypeK.Polarity()
	nvd, nvg, nvs, nvb := pol*vd, pol*vg, pol*vs, pol*vb
	swap := false
	if nvd < nvs {
		nvd, nvs = nvs, nvd
		swap = true
	}
	vgs := nvg - nvs
	vds := nvd - nvs
	vbs := nvb - nvs
	vgd := nvg - nvd

	w := p.Weff()
	leff := p.Leff()
	if w <= 0 {
		return device.Derivs{}
	}
	rs := p.Rs0 / w
	rd := p.Rd0 / w
	delta := p.Delta(leff)
	vdsats := p.Vxo * leff / p.Mu

	// Solve once for the operating state.
	id, qixo, fsat, _ := p.solveSeries(vgs, vds, vbs)
	vgsi := vgs - id*rs
	vdsi := vds - id*(rs+rd)
	if vdsi < 0 {
		vdsi = 0
	}
	vbsi := vbs - id*rs

	// Core partials at the internal bias by forward differences: a clean
	// base evaluation plus one per internal voltage.
	const h = device.FDStep
	f0, q0, s0 := p.coreBiasPre(vgsi, vdsi, vbsi, delta, vdsats)
	fg, qg, sg := p.coreBiasPre(vgsi+h, vdsi, vbsi, delta, vdsats)
	fd, qd, sd := p.coreBiasPre(vgsi, vdsi+h, vbsi, delta, vdsats)
	fb, qb, sb := p.coreBiasPre(vgsi, vdsi, vbsi+h, delta, vdsats)
	Fg := w * (fg - f0) / h
	Fd := w * (fd - f0) / h
	Fb := w * (fb - f0) / h
	qixoG := (qg - q0) / h
	qixoD := (qd - q0) / h
	qixoB := (qb - q0) / h
	fsatG := (sg - s0) / h
	fsatD := (sd - s0) / h
	fsatB := (sb - s0) / h

	den := 1 + Fg*rs + Fd*(rs+rd) + Fb*rs
	// ∂I/∂(vgs, vds, vbs).
	iG := Fg / den
	iD := Fd / den
	iB := Fb / den

	// Internal-voltage sensitivities to the source-referred externals:
	// dvgsi/dx = [x==vgs] − rs·∂I/∂x, etc.
	dI := [3]float64{iG, iD, iB} // x order: vgs, vds, vbs
	var dvgsi, dvdsi, dvbsi [3]float64
	for x := 0; x < 3; x++ {
		dvgsi[x] = -rs * dI[x]
		dvdsi[x] = -(rs + rd) * dI[x]
		dvbsi[x] = -rs * dI[x]
	}
	dvgsi[0]++
	dvdsi[1]++
	dvbsi[2]++

	// Chain core quantities to source-referred externals.
	var dQixo, dFsat [3]float64
	for x := 0; x < 3; x++ {
		dQixo[x] = qixoG*dvgsi[x] + qixoD*dvdsi[x] + qixoB*dvbsi[x]
		dFsat[x] = fsatG*dvgsi[x] + fsatD*dvdsi[x] + fsatB*dvbsi[x]
	}

	// Terminal mapping (n-equivalent, unswapped): rows of
	// ∂(vgs, vds, vbs, vgd)/∂(vd, vg, vs, vb).
	dvgsT := [4]float64{0, 1, -1, 0}
	dvdsT := [4]float64{1, 0, -1, 0}
	dvbsT := [4]float64{0, 0, -1, 1}
	dvgdT := [4]float64{-1, 1, 0, 0}

	// Charge assembly pieces.
	wl := w * leff
	qInv := wl * qixo * (1 - fsat/3)
	qdFrac := 0.5 - fsat/10
	qsFrac := 0.5 + fsat/10
	covW := p.Cof * w

	var der device.Derivs
	// Values (n-equivalent, unswapped).
	der.Id = id
	der.Q = device.Charges{
		Qg: qInv + covW*vgs + covW*vgd,
		Qd: -qdFrac*qInv - covW*vgd,
		Qs: -qsFrac*qInv - covW*vgs,
		Qb: 0,
	}

	for t := 0; t < 4; t++ { // terminal order D, G, S, B
		// ∂I/∂terminal.
		gi := iG*dvgsT[t] + iD*dvdsT[t] + iB*dvbsT[t]
		der.GId[t] = gi
		// ∂qInv/∂terminal and ∂fsat/∂terminal.
		dq := dQixo[0]*dvgsT[t] + dQixo[1]*dvdsT[t] + dQixo[2]*dvbsT[t]
		df := dFsat[0]*dvgsT[t] + dFsat[1]*dvdsT[t] + dFsat[2]*dvbsT[t]
		dqInv := wl * (dq*(1-fsat/3) - qixo*df/3)
		// Rows: Qd, Qg, Qs, Qb.
		der.CQ[1][t] = dqInv + covW*(dvgsT[t]+dvgdT[t])
		der.CQ[0][t] = -qdFrac*dqInv + qInv*df/10 - covW*dvgdT[t]
		der.CQ[2][t] = -qsFrac*dqInv - qInv*df/10 - covW*dvgsT[t]
		der.CQ[3][t] = 0
	}

	if swap {
		der = swapDerivs(der)
	}
	if pol < 0 {
		der.Id = -der.Id
		der.Q = der.Q.Neg()
		// Derivatives are invariant under simultaneous sign flips of
		// currents/charges and voltages.
	}
	return der
}

// swapDerivs exchanges the drain and source roles of a derivative bundle:
// the current negates, charges swap, and both rows and columns of the
// capacitance matrix permute.
func swapDerivs(d device.Derivs) device.Derivs {
	var out device.Derivs
	out.Id = -d.Id
	out.Q = d.Q.SwapDS()
	perm := [4]int{2, 1, 0, 3}
	for t := 0; t < 4; t++ {
		out.GId[t] = -d.GId[perm[t]]
		for k := 0; k < 4; k++ {
			out.CQ[k][t] = d.CQ[perm[k]][perm[t]]
		}
	}
	return out
}
