package vsmodel

import "vstat/internal/device"

// EvalDerivs4 implements the fast native-derivative path used by the
// circuit simulator: instead of re-solving the series-resistance implicit
// equation once per perturbed terminal (4 full solves), it solves once and
// derives all terminal sensitivities by the implicit function theorem.
//
// With F the core current at the internal bias u = (vgsi, vdsi, vbsi) and
// the solved current I satisfying I = F(u(I, v)), the terminal derivative
// follows from
//
//	dI·D = Fg·dvgs + Fd·dvds + Fb·dvbs,
//	D = 1 + Fg·rs + Fd·(rs+rd) + Fb·rs,
//
// and the charge derivatives chain through the internal-voltage shifts the
// current feedback induces. The core partials come out of the converged
// series solve analytically, so a full derivative bundle costs no core
// evaluations beyond the solve itself.
func (p *Params) EvalDerivs4(vd, vg, vs, vb float64) device.Derivs {
	pol := p.TypeK.Polarity()
	nvd, nvg, nvs, nvb := pol*vd, pol*vg, pol*vs, pol*vb
	swap := false
	if nvd < nvs {
		nvd, nvs = nvs, nvd
		swap = true
	}
	vgs := nvg - nvs
	vds := nvd - nvs
	vbs := nvb - nvs
	vgd := nvg - nvd

	w := p.Weff()
	leff := p.Leff()
	if w <= 0 {
		return device.Derivs{}
	}
	rs := p.Rs0 / w
	rd := p.Rd0 / w

	// Solve once for the operating state; the converged evaluation carries
	// the analytic core partials at the internal bias.
	st := p.solveSeriesD(vgs, vds, vbs)
	id, qixo, fsat := st.id, st.co.q, st.co.s
	Fg := w * st.co.fG
	Fd := w * st.co.fD
	Fb := w * st.co.fB
	qixoG, qixoD, qixoB := st.co.qG, st.co.qD, st.co.qB
	fsatG, fsatD, fsatB := st.co.sG, st.co.sD, st.co.sB

	den := 1 + Fg*rs + Fd*(rs+rd) + Fb*rs
	// ∂I/∂(vgs, vds, vbs).
	iG := Fg / den
	iD := Fd / den
	iB := Fb / den

	// Internal-voltage sensitivities to the source-referred externals:
	// dvgsi/dx = [x==vgs] − rs·∂I/∂x, etc.
	dI := [3]float64{iG, iD, iB} // x order: vgs, vds, vbs
	var dvgsi, dvdsi, dvbsi [3]float64
	for x := 0; x < 3; x++ {
		dvgsi[x] = -rs * dI[x]
		dvdsi[x] = -(rs + rd) * dI[x]
		dvbsi[x] = -rs * dI[x]
	}
	dvgsi[0]++
	dvdsi[1]++
	dvbsi[2]++

	// Chain core quantities to source-referred externals.
	var dQixo, dFsat [3]float64
	for x := 0; x < 3; x++ {
		dQixo[x] = qixoG*dvgsi[x] + qixoD*dvdsi[x] + qixoB*dvbsi[x]
		dFsat[x] = fsatG*dvgsi[x] + fsatD*dvdsi[x] + fsatB*dvbsi[x]
	}

	// Terminal mapping (n-equivalent, unswapped): rows of
	// ∂(vgs, vds, vbs, vgd)/∂(vd, vg, vs, vb).
	dvgsT := [4]float64{0, 1, -1, 0}
	dvdsT := [4]float64{1, 0, -1, 0}
	dvbsT := [4]float64{0, 0, -1, 1}
	dvgdT := [4]float64{-1, 1, 0, 0}

	// Charge assembly pieces.
	wl := w * leff
	qInv := wl * qixo * (1 - fsat/3)
	qdFrac := 0.5 - fsat/10
	qsFrac := 0.5 + fsat/10
	covW := p.Cof * w

	var der device.Derivs
	// Values (n-equivalent, unswapped).
	der.Id = id
	der.Q = device.Charges{
		Qg: qInv + covW*vgs + covW*vgd,
		Qd: -qdFrac*qInv - covW*vgd,
		Qs: -qsFrac*qInv - covW*vgs,
		Qb: 0,
	}

	for t := 0; t < 4; t++ { // terminal order D, G, S, B
		// ∂I/∂terminal.
		gi := iG*dvgsT[t] + iD*dvdsT[t] + iB*dvbsT[t]
		der.GId[t] = gi
		// ∂qInv/∂terminal and ∂fsat/∂terminal.
		dq := dQixo[0]*dvgsT[t] + dQixo[1]*dvdsT[t] + dQixo[2]*dvbsT[t]
		df := dFsat[0]*dvgsT[t] + dFsat[1]*dvdsT[t] + dFsat[2]*dvbsT[t]
		dqInv := wl * (dq*(1-fsat/3) - qixo*df/3)
		// Rows: Qd, Qg, Qs, Qb.
		der.CQ[1][t] = dqInv + covW*(dvgsT[t]+dvgdT[t])
		der.CQ[0][t] = -qdFrac*dqInv + qInv*df/10 - covW*dvgdT[t]
		der.CQ[2][t] = -qsFrac*dqInv - qInv*df/10 - covW*dvgsT[t]
		der.CQ[3][t] = 0
	}

	if swap {
		der = swapDerivs(der)
	}
	if pol < 0 {
		der.Id = -der.Id
		der.Q = der.Q.Neg()
		// Derivatives are invariant under simultaneous sign flips of
		// currents/charges and voltages.
	}
	return der
}

// swapDerivs exchanges the drain and source roles of a derivative bundle:
// the current negates, charges swap, and both rows and columns of the
// capacitance matrix permute.
func swapDerivs(d device.Derivs) device.Derivs {
	var out device.Derivs
	out.Id = -d.Id
	out.Q = d.Q.SwapDS()
	perm := [4]int{2, 1, 0, 3}
	for t := 0; t < 4; t++ {
		out.GId[t] = -d.GId[perm[t]]
		for k := 0; k < 4; k++ {
			out.CQ[k][t] = d.CQ[perm[k]][perm[t]]
		}
	}
	return out
}
