package vsmodel

// tape.go — the compiled VS-model op tape.
//
// The scalar model (vsmodel.go, derivs.go) is flattened into a precompiled
// straight-line op tape: a flat []tapeOp program over a float64 register
// file, built once per branch shape and replayed per evaluation. Constants
// and sample-invariants (δ(Leff), vxo·Leff/µ, Rs0/W, α·φt, √PhiB, …) become
// bind slots folded at SetLane/bind time by exactly the expressions the
// scalar path uses; common subexpressions are shared between value and
// derivative slots by value numbering; and every data-dependent branch of
// the scalar path that the driver does not own (the vbs clamp, the
// logistic/softplus overflow guards, the vdsi clamp, the Fsat x>0 one-sided
// limit) becomes a select op whose taken value is bit-identical to the
// scalar branch result. The only branches left in the driver are the ones
// the scalar entry points keep outside the arithmetic: polarity/swap
// mapping, the w≤0 and rs=rd=0 short-circuits, and the bracketed-Newton
// series-solve loop itself (which replays the solve segment per trial
// current, exactly like solveSeriesD's eval closure).
//
// Bit-identity rules (the exact backend's contract): bind-time folding only
// folds subtrees whose scalar counterpart computes the same expression with
// the same associativity; CSE only merges ops with identical (code,
// operands); no algebraic simplification is ever applied (x·0 and x+0 are
// emitted literally — sign-of-zero and NaN propagation must match the
// scalar path); and branch→select conversion requires the untaken side's
// value to be discarded, never blended. Under those rules a tape replay
// with libm transcendentals reproduces Eval/EvalDerivs4 bit for bit, which
// is what preserves every existing determinism contract including lockstep
// lane eviction. The fastmath backend replays the same program with the
// polynomial kernels of fastmath.go and carries its own self-reproducibility
// contract instead (see DESIGN.md §14).
//
// The program has three segments sharing one register file and one bind
// table: the series-solve evaluation (solveSeriesD's eval closure, inputs
// vgs/vds/vbs plus the trial current, outputs f, dF/dI and the 12-slot
// coreOut), the values tail (Eval's charge assembly) and the derivative
// tail (the EvalDerivs4 IFT bundle). Tails read the committed coreOut
// through dedicated input registers the driver fills from the converged
// per-lane state — never from the solve segment's scratch, which may hold a
// later in-flight iteration of another lane's round.

import (
	"math"
	"sync"
)

// opcode enumerates the tape's operation set. Arithmetic matches Go's
// float64 semantics exactly; the two selects are ternary moves keyed on a
// comparison (false for NaN operands, mirroring Go's > and <).
type opcode uint8

const (
	opAdd   opcode = iota // dst = a + b
	opSub                 // dst = a - b
	opMul                 // dst = a * b
	opDiv                 // dst = a / b
	opNeg                 // dst = -a
	opSqrt                // dst = sqrt(a)
	opExp                 // dst = exp(a)
	opLog                 // dst = log(a)
	opLog1p               // dst = log1p(a)
	opSelGT               // dst = a > b ? c : d
	opSelLT               // dst = a < b ? c : d
)

// tapeOp is one straight-line operation. Register indices address the
// program's register file (SoA slab in batch replay: register r, lane l is
// slab[r·K+l]).
type tapeOp struct {
	code      opcode
	dst, a, b uint16
	c, d      uint16 // select operands (taken / untaken)
}

// bindSlot fills one constant register at bind time from a parameter card.
type bindSlot struct {
	reg uint16
	f   func(p *Params) float64
}

// coreRefs indexes the 12 coreOut slots in tape register order:
// f, q, s, fG, fD, fB, qG, qD, qB, sG, sD, sB.
const nCoreSlots = 12

// tapeProgram is one immutable compiled program, shared by every device
// instance of the same branch shape (GammaB = 0 or not; nothing else in the
// card changes the op structure, and statistical deltas never perturb
// GammaB). Instances differ only in their bind-slot values.
type tapeProgram struct {
	nRegs int
	binds []bindSlot

	solve  []tapeOp // series-solve evaluation segment
	values []tapeOp // Eval charge-assembly tail
	derivs []tapeOp // EvalDerivs4 chain-rule tail

	// Solve segment registers.
	rVgs, rVds, rVbs uint16 // inputs: source-referred externals
	rVgd             uint16 // input: Vg−Vd (tails' overlap charges)
	rI               uint16 // input: trial current
	outF, outDF      uint16 // outputs: W·f and analytic dF/dI
	outCo            [nCoreSlots]uint16

	// Tail input registers (driver fills from the committed coreOut).
	rCo [nCoreSlots]uint16

	// Values tail outputs (n-equivalent, unswapped).
	outQg, outQd, outQs uint16

	// Derivative tail outputs (n-equivalent, unswapped): charges, GId rows
	// and the Qd/Qg/Qs capacitance rows (the Qb row is identically zero).
	dQg, dQd, dQs uint16
	dGId          [4]uint16
	dCQ0          [4]uint16 // CQ[0][t] (Qd row)
	dCQ1          [4]uint16 // CQ[1][t] (Qg row)
	dCQ2          [4]uint16 // CQ[2][t] (Qs row)
}

// ref is a register handle inside the builder.
type ref uint16

// cseKey identifies an op for value numbering. Operand order is preserved
// (no commutative canonicalization: a+b and b+a may differ in NaN payload).
type cseKey struct {
	code       opcode
	a, b, c, d ref
}

// tapeBuilder emits a program. Emission order follows the scalar statement
// order, so replay evaluates the identical op sequence; CSE only short-cuts
// re-emission of an op whose result register already holds the value.
type tapeBuilder struct {
	nRegs uint16
	binds []bindSlot
	ops   []tapeOp
	cse   map[cseKey]ref
	lits  map[float64]ref
	unis  map[string]ref
}

func newTapeBuilder() *tapeBuilder {
	return &tapeBuilder{
		cse:  make(map[cseKey]ref),
		lits: make(map[float64]ref),
		unis: make(map[string]ref),
	}
}

func (b *tapeBuilder) newReg() ref {
	r := ref(b.nRegs)
	b.nRegs++
	if b.nRegs == 0 {
		panic("vsmodel: tape register file overflow")
	}
	return r
}

// input allocates a register written by the driver, not by any op.
func (b *tapeBuilder) input() ref { return b.newReg() }

// lit returns a register bound to a literal constant (per-lane in the slab,
// filled at bind time like every other const).
func (b *tapeBuilder) lit(v float64) ref {
	if r, ok := b.lits[v]; ok {
		return r
	}
	r := b.newReg()
	b.lits[v] = r
	b.binds = append(b.binds, bindSlot{reg: uint16(r), f: func(*Params) float64 { return v }})
	return r
}

// uni returns a register bound to a sample-invariant derived from the card.
// The closure must compute the value by exactly the expression the scalar
// path uses. name dedups slots across segments.
func (b *tapeBuilder) uni(name string, f func(p *Params) float64) ref {
	if r, ok := b.unis[name]; ok {
		return r
	}
	r := b.newReg()
	b.unis[name] = r
	b.binds = append(b.binds, bindSlot{reg: uint16(r), f: f})
	return r
}

// resetCSE starts a new segment: register contents from a previous segment
// replay are not guaranteed live (the driver only restores the named tail
// inputs), so value numbering must not reach across segments. Const and
// input registers stay valid — only op results are dropped.
func (b *tapeBuilder) resetCSE() { b.cse = make(map[cseKey]ref) }

// takeOps returns and clears the current segment's op list.
func (b *tapeBuilder) takeOps() []tapeOp {
	ops := b.ops
	b.ops = nil
	return ops
}

func (b *tapeBuilder) emit(code opcode, a, b2, c, d ref) ref {
	k := cseKey{code, a, b2, c, d}
	if r, ok := b.cse[k]; ok {
		return r
	}
	r := b.newReg()
	b.ops = append(b.ops, tapeOp{code: code, dst: uint16(r), a: uint16(a), b: uint16(b2), c: uint16(c), d: uint16(d)})
	b.cse[k] = r
	return r
}

func (b *tapeBuilder) add(x, y ref) ref         { return b.emit(opAdd, x, y, 0, 0) }
func (b *tapeBuilder) sub(x, y ref) ref         { return b.emit(opSub, x, y, 0, 0) }
func (b *tapeBuilder) mul(x, y ref) ref         { return b.emit(opMul, x, y, 0, 0) }
func (b *tapeBuilder) div(x, y ref) ref         { return b.emit(opDiv, x, y, 0, 0) }
func (b *tapeBuilder) neg(x ref) ref            { return b.emit(opNeg, x, 0, 0, 0) }
func (b *tapeBuilder) sqrt(x ref) ref           { return b.emit(opSqrt, x, 0, 0, 0) }
func (b *tapeBuilder) exp(x ref) ref            { return b.emit(opExp, x, 0, 0, 0) }
func (b *tapeBuilder) log(x ref) ref            { return b.emit(opLog, x, 0, 0, 0) }
func (b *tapeBuilder) log1p(x ref) ref          { return b.emit(opLog1p, x, 0, 0, 0) }
func (b *tapeBuilder) selGT(x, y, t, f ref) ref { return b.emit(opSelGT, x, y, t, f) }
func (b *tapeBuilder) selLT(x, y, t, f ref) ref { return b.emit(opSelLT, x, y, t, f) }

// coreRefsOut bundles the 12 coreOut registers a core emission produced, in
// tape slot order f, q, s, fG, fD, fB, qG, qD, qB, sG, sD, sB.
type coreRefsOut struct {
	f, q, s    ref
	fG, fD, fB ref
	qG, qD, qB ref
	sG, sD, sB ref
}

func (c coreRefsOut) slots() [nCoreSlots]ref {
	return [nCoreSlots]ref{c.f, c.q, c.s, c.fG, c.fD, c.fB, c.qG, c.qD, c.qB, c.sG, c.sD, c.sB}
}

// emitCore emits coreBiasPreD as straight-line ops: identical statement
// order, with the scalar branches converted to selects (vbs clamp, the
// logistic/softplus ±40 guards, the Fsat x>0 one-sided limit) and the
// GammaB≠0 branch resolved at program-build time (hasBody — deltas never
// perturb GammaB, so the shape is per-card, not per-sample).
func emitCore(b *tapeBuilder, vgsi, vdsi, vbsi ref, hasBody bool) coreRefsOut {
	l0 := b.lit(0)
	l1 := b.lit(1)
	l40 := b.lit(40)
	lm40 := b.lit(-40)

	cPhit := b.uni("phit", func(p *Params) float64 { return p.PhiT })
	cVT0 := b.uni("vt0", func(p *Params) float64 { return p.VT0 })
	cDelta := b.uni("delta", func(p *Params) float64 { return p.Delta(p.Leff()) })
	cNegDelta := b.uni("negDelta", func(p *Params) float64 { return -p.Delta(p.Leff()) })
	cPhiBClamp := b.uni("phiBClamp", func(p *Params) float64 { return p.PhiB - 0.05 })
	cNd := b.uni("nd", func(p *Params) float64 { return p.Nd })
	cN0 := b.uni("n0", func(p *Params) float64 { return p.N0 })
	cAphit := b.uni("aphit", func(p *Params) float64 { return p.Alpha * p.PhiT })
	cHalfAphit := b.uni("halfAphit", func(p *Params) float64 { return (p.Alpha * p.PhiT) / 2 })
	cNegInvAphit := b.uni("negInvAphit", func(p *Params) float64 { return -1 / (p.Alpha * p.PhiT) })
	cVtDOverAphit := b.uni("vtDOverAphit", func(p *Params) float64 {
		return -p.Delta(p.Leff()) / (p.Alpha * p.PhiT)
	})
	cCinv := b.uni("cinv", func(p *Params) float64 { return p.Cinv })
	cCinvNphitD := b.uni("cinvNphitD", func(p *Params) float64 { return p.Cinv * (p.Nd * p.PhiT) })
	cNphitD := b.uni("nphitD", func(p *Params) float64 { return p.Nd * p.PhiT })
	cVdsats := b.uni("vdsats", func(p *Params) float64 { return p.Vxo * p.Leff() / p.Mu })
	cVdsatP := b.uni("vdsatP", func(p *Params) float64 { return p.PhiT - p.Vxo*p.Leff()/p.Mu })
	cBeta := b.uni("beta", func(p *Params) float64 { return p.Beta })
	cVxo := b.uni("vxo", func(p *Params) float64 { return p.Vxo })

	// Body-corrected, DIBL-corrected threshold.
	// vbsEff = min(vbsi, PhiB−0.05): select keyed exactly like the scalar
	// clamp (NaN takes the untaken side, matching `if vbsEff > max`).
	vbsEff := b.selGT(vbsi, cPhiBClamp, cPhiBClamp, vbsi)
	vt := b.sub(cVT0, b.mul(cDelta, vdsi))
	vtD := cNegDelta
	vtB := ref(l0)
	if hasBody {
		cPhiB := b.uni("phiB", func(p *Params) float64 { return p.PhiB })
		cSqrtPhiB := b.uni("sqrtPhiB", func(p *Params) float64 { return math.Sqrt(p.PhiB) })
		cNegGammaB := b.uni("negGammaB", func(p *Params) float64 { return -p.GammaB })
		cGammaB := b.uni("gammaB", func(p *Params) float64 { return p.GammaB })
		l2 := b.lit(2)
		sq := b.sqrt(b.sub(cPhiB, vbsEff))
		vt = b.add(vt, b.mul(cGammaB, b.sub(sq, cSqrtPhiB)))
		// vtB = clamped ? 0 : −GammaB/(2·sq); the clamp predicate is the
		// same vbsi > PhiB−0.05 comparison as vbsEff's.
		vtB = b.selGT(vbsi, cPhiBClamp, l0, b.div(cNegGammaB, b.mul(l2, sq)))
	}

	n := b.add(cN0, b.mul(cNd, vdsi))
	nphit := b.mul(n, cPhit)

	// Inversion transition function FF (logisticD with the ±40 guards as
	// selects; the straight-line 1/(1+e^{−u}) is only bit-exact inside the
	// guard window, so both clamps select their literal branch values).
	u := b.div(b.sub(b.sub(vt, cHalfAphit), vgsi), cAphit)
	e := b.exp(b.neg(u))
	sRaw := b.div(l1, b.add(l1, e))
	dRaw := b.mul(sRaw, b.sub(l1, sRaw))
	ff := b.selGT(u, l40, l1, b.selLT(u, lm40, l0, sRaw))
	ffp := b.selGT(u, l40, l0, b.selLT(u, lm40, l0, dRaw))
	ffG := b.mul(ffp, cNegInvAphit)
	ffD := b.mul(ffp, cVtDOverAphit)
	ffB := b.mul(ffp, b.div(vtB, cAphit))

	// Virtual-source charge density.
	num := b.sub(vgsi, b.sub(vt, b.mul(cAphit, ff)))
	numG := b.add(l1, b.mul(cAphit, ffG))
	numD := b.sub(b.mul(cAphit, ffD), vtD)
	numB := b.sub(b.mul(cAphit, ffB), vtB)
	arg := b.div(num, nphit)
	// softplusD with the ±40 guards as selects; e^{arg} is shared by every
	// branch that needs it, exactly like the scalar single exponential.
	eArg := b.exp(arg)
	sp := b.selGT(arg, l40, arg, b.selLT(arg, lm40, eArg, b.log1p(eArg)))
	spp := b.selGT(arg, l40, l1, b.selLT(arg, lm40, eArg, b.div(eArg, b.add(l1, eArg))))
	q := b.mul(b.mul(cCinv, nphit), sp)
	cspp := b.mul(b.mul(cCinv, nphit), spp)
	qG := b.mul(cspp, b.div(numG, nphit))
	qD := b.add(b.mul(cCinvNphitD, sp), b.mul(cspp, b.div(b.sub(numD, b.mul(arg, cNphitD)), nphit)))
	qB := b.mul(cspp, b.div(numB, nphit))

	// Saturation function Fsat with the x>0 one-sided limit as selects.
	vdsat := b.add(b.mul(cVdsats, b.sub(l1, ff)), b.mul(cPhit, ff))
	x := b.div(vdsi, vdsat)
	t := b.exp(b.mul(cBeta, b.log(x)))
	sSat := b.mul(x, b.exp(b.div(b.neg(b.log1p(t)), cBeta)))
	dfdx := b.div(sSat, b.mul(x, b.add(l1, t)))
	xvp := b.mul(x, cVdsatP)
	sGr := b.mul(dfdx, b.div(b.neg(b.mul(xvp, ffG)), vdsat))
	sDr := b.mul(dfdx, b.div(b.sub(l1, b.mul(xvp, ffD)), vdsat))
	sBr := b.mul(dfdx, b.div(b.neg(b.mul(xvp, ffB)), vdsat))
	s := b.selGT(x, l0, sSat, l0)
	sG := b.selGT(x, l0, sGr, l0)
	sD := b.selGT(x, l0, sDr, b.div(l1, vdsat))
	sB := b.selGT(x, l0, sBr, l0)

	f := b.mul(b.mul(s, q), cVxo)
	fG := b.mul(b.add(b.mul(sG, q), b.mul(s, qG)), cVxo)
	fD := b.mul(b.add(b.mul(sD, q), b.mul(s, qD)), cVxo)
	fB := b.mul(b.add(b.mul(sB, q), b.mul(s, qB)), cVxo)

	return coreRefsOut{f: f, q: q, s: s, fG: fG, fD: fD, fB: fB,
		qG: qG, qD: qD, qB: qB, sG: sG, sD: sD, sB: sB}
}

// buildTapeProgram compiles the three segments for one branch shape.
func buildTapeProgram(hasBody bool) *tapeProgram {
	b := newTapeBuilder()
	pr := &tapeProgram{}

	// Shared inputs.
	rVgs, rVds, rVbs, rI := b.input(), b.input(), b.input(), b.input()
	rVgd := b.input()
	var rCo [nCoreSlots]ref
	for i := range rCo {
		rCo[i] = b.input()
	}
	pr.rVgs, pr.rVds, pr.rVbs, pr.rI = uint16(rVgs), uint16(rVds), uint16(rVbs), uint16(rI)
	pr.rVgd = uint16(rVgd)
	for i, r := range rCo {
		pr.rCo[i] = uint16(r)
	}

	// Access-resistance invariants (solveSeriesD hoists these before its
	// eval closure; the w≤0 guard matches ParamsBatch.SetLane — such lanes
	// never replay the solve or derivative segments anyway).
	cRs := b.uni("rs", func(p *Params) float64 {
		if w := p.Weff(); w > 0 {
			return p.Rs0 / w
		}
		return 0
	})
	cRsRd := b.uni("rsrd", func(p *Params) float64 {
		if w := p.Weff(); w > 0 {
			return p.Rs0/w + p.Rd0/w
		}
		return 0
	})
	cNegRs := b.uni("negRs", func(p *Params) float64 {
		if w := p.Weff(); w > 0 {
			return -(p.Rs0 / w)
		}
		return 0
	})
	cNegRsRd := b.uni("negRsRd", func(p *Params) float64 {
		if w := p.Weff(); w > 0 {
			return -(p.Rs0/w + p.Rd0/w)
		}
		return 0
	})
	cW := b.uni("w", func(p *Params) float64 { return p.Weff() })

	// ---- Segment 1: series-solve evaluation (solveSeriesD's eval closure).
	l0 := b.lit(0)
	vgsi := b.sub(rVgs, b.mul(rI, cRs))
	vRaw := b.sub(rVds, b.mul(rI, cRsRd))
	vdsi := b.selLT(vRaw, l0, l0, vRaw)
	dvd := b.selLT(vRaw, l0, l0, cNegRsRd)
	vbsi := b.sub(rVbs, b.mul(rI, cRs))
	co := emitCore(b, vgsi, vdsi, vbsi, hasBody)
	f := b.mul(cW, co.f)
	df := b.mul(cW, b.add(b.add(b.mul(co.fG, cNegRs), b.mul(co.fD, dvd)), b.mul(co.fB, cNegRs)))
	pr.outF, pr.outDF = uint16(f), uint16(df)
	for i, r := range co.slots() {
		pr.outCo[i] = uint16(r)
	}
	pr.solve = b.takeOps()

	// ---- Segment 2: values tail (Eval's charge assembly). Inputs: the
	// committed q (=qixo) and s (=fsat) slots plus vgs/vgd.
	b.resetCSE()
	l1 := b.lit(1)
	l3 := b.lit(3)
	l10 := b.lit(10)
	lHalf := b.lit(0.5)
	cWl := b.uni("wl", func(p *Params) float64 { return p.Weff() * p.Leff() })
	cCovW := b.uni("covW", func(p *Params) float64 { return p.Cof * p.Weff() })
	qixo, fsat := rCo[1], rCo[2]
	qInv := b.mul(b.mul(cWl, qixo), b.sub(l1, b.div(fsat, l3)))
	qdFrac := b.sub(lHalf, b.div(fsat, l10))
	qsFrac := b.add(lHalf, b.div(fsat, l10))
	qovS := b.mul(cCovW, rVgs)
	qovD := b.mul(cCovW, rVgd)
	pr.outQg = uint16(b.add(b.add(qInv, qovS), qovD))
	pr.outQd = uint16(b.sub(b.mul(b.neg(qdFrac), qInv), qovD))
	pr.outQs = uint16(b.sub(b.mul(b.neg(qsFrac), qInv), qovS))
	pr.values = b.takeOps()

	// ---- Segment 3: derivative tail (EvalDerivs4 after the solve).
	b.resetCSE()
	coFG, coFD, coFB := rCo[3], rCo[4], rCo[5]
	coQG, coQD, coQB := rCo[6], rCo[7], rCo[8]
	coSG, coSD, coSB := rCo[9], rCo[10], rCo[11]
	Fg := b.mul(cW, coFG)
	Fd := b.mul(cW, coFD)
	Fb := b.mul(cW, coFB)
	den := b.add(b.add(b.add(l1, b.mul(Fg, cRs)), b.mul(Fd, cRsRd)), b.mul(Fb, cRs))
	iG := b.div(Fg, den)
	iD := b.div(Fd, den)
	iB := b.div(Fb, den)
	dI := [3]ref{iG, iD, iB}
	var dvgsi, dvdsi, dvbsi [3]ref
	for x := 0; x < 3; x++ {
		dvgsi[x] = b.mul(cNegRs, dI[x])
		dvdsi[x] = b.mul(cNegRsRd, dI[x])
		dvbsi[x] = b.mul(cNegRs, dI[x])
	}
	dvgsi[0] = b.add(dvgsi[0], l1)
	dvdsi[1] = b.add(dvdsi[1], l1)
	dvbsi[2] = b.add(dvbsi[2], l1)
	var dQixo, dFsat [3]ref
	for x := 0; x < 3; x++ {
		dQixo[x] = b.add(b.add(b.mul(coQG, dvgsi[x]), b.mul(coQD, dvdsi[x])), b.mul(coQB, dvbsi[x]))
		dFsat[x] = b.add(b.add(b.mul(coSG, dvgsi[x]), b.mul(coSD, dvdsi[x])), b.mul(coSB, dvbsi[x]))
	}
	// Terminal mapping rows (D, G, S, B), emitted literally — the scalar
	// tail multiplies by these ±1/0 selectors too, so even the x·0 products
	// match bit for bit.
	dvgsT := [4]float64{0, 1, -1, 0}
	dvdsT := [4]float64{1, 0, -1, 0}
	dvbsT := [4]float64{0, 0, -1, 1}
	dvgdT := [4]float64{-1, 1, 0, 0}
	qInv2 := b.mul(b.mul(cWl, qixo), b.sub(l1, b.div(fsat, l3)))
	qdFrac2 := b.sub(lHalf, b.div(fsat, l10))
	qsFrac2 := b.add(lHalf, b.div(fsat, l10))
	pr.dQg = uint16(b.add(b.add(qInv2, b.mul(cCovW, rVgs)), b.mul(cCovW, rVgd)))
	pr.dQd = uint16(b.sub(b.mul(b.neg(qdFrac2), qInv2), b.mul(cCovW, rVgd)))
	pr.dQs = uint16(b.sub(b.mul(b.neg(qsFrac2), qInv2), b.mul(cCovW, rVgs)))
	for t := 0; t < 4; t++ {
		lgs, lds, lbs, lgd := b.lit(dvgsT[t]), b.lit(dvdsT[t]), b.lit(dvbsT[t]), b.lit(dvgdT[t])
		gi := b.add(b.add(b.mul(iG, lgs), b.mul(iD, lds)), b.mul(iB, lbs))
		pr.dGId[t] = uint16(gi)
		dq := b.add(b.add(b.mul(dQixo[0], lgs), b.mul(dQixo[1], lds)), b.mul(dQixo[2], lbs))
		df := b.add(b.add(b.mul(dFsat[0], lgs), b.mul(dFsat[1], lds)), b.mul(dFsat[2], lbs))
		dqInv := b.mul(cWl, b.sub(b.mul(dq, b.sub(l1, b.div(fsat, l3))), b.div(b.mul(qixo, df), l3)))
		pr.dCQ1[t] = uint16(b.add(dqInv, b.mul(cCovW, b.add(lgs, lgd))))
		pr.dCQ0[t] = uint16(b.sub(b.add(b.mul(b.neg(qdFrac2), dqInv), b.div(b.mul(qInv2, df), l10)), b.mul(cCovW, lgd)))
		pr.dCQ2[t] = uint16(b.sub(b.sub(b.mul(b.neg(qsFrac2), dqInv), b.div(b.mul(qInv2, df), l10)), b.mul(cCovW, lgs)))
	}
	pr.derivs = b.takeOps()

	pr.nRegs = int(b.nRegs)
	pr.binds = b.binds
	return pr
}

// The two program variants, built lazily and shared process-wide.
var (
	tapeProgs [2]*tapeProgram
	tapeOnce  [2]sync.Once
)

func tapeProgramFor(hasBody bool) *tapeProgram {
	i := 0
	if hasBody {
		i = 1
	}
	tapeOnce[i].Do(func() { tapeProgs[i] = buildTapeProgram(hasBody) })
	return tapeProgs[i]
}

// replayTape1 replays one segment over a K=1 register file. The exact
// backend calls libm (bit-identical to the scalar path by construction);
// the fast backend substitutes the polynomial kernels of fastmath.go.
func replayTape1(ops []tapeOp, r []float64, fast bool) {
	for i := range ops {
		op := &ops[i]
		switch op.code {
		case opAdd:
			r[op.dst] = r[op.a] + r[op.b]
		case opSub:
			r[op.dst] = r[op.a] - r[op.b]
		case opMul:
			r[op.dst] = r[op.a] * r[op.b]
		case opDiv:
			r[op.dst] = r[op.a] / r[op.b]
		case opNeg:
			r[op.dst] = -r[op.a]
		case opSqrt:
			r[op.dst] = math.Sqrt(r[op.a])
		case opExp:
			if fast {
				r[op.dst] = fastExp(r[op.a])
			} else {
				r[op.dst] = math.Exp(r[op.a])
			}
		case opLog:
			if fast {
				r[op.dst] = fastLog(r[op.a])
			} else {
				r[op.dst] = math.Log(r[op.a])
			}
		case opLog1p:
			if fast {
				r[op.dst] = fastLog1p(r[op.a])
			} else {
				r[op.dst] = math.Log1p(r[op.a])
			}
		case opSelGT:
			if r[op.a] > r[op.b] {
				r[op.dst] = r[op.c]
			} else {
				r[op.dst] = r[op.d]
			}
		case opSelLT:
			if r[op.a] < r[op.b] {
				r[op.dst] = r[op.c]
			} else {
				r[op.dst] = r[op.d]
			}
		}
	}
}

// replayTapeK replays one segment over a K-lane SoA slab, op-outer and
// lane-inner so the independent per-lane latency chains (divisions,
// transcendentals) overlap. act masks lanes; nil (or an all-true mask)
// means all lanes live, which selects tighter unmasked inner loops whose
// bounds checks the compiler can hoist. Lanes never mix: lane l only ever
// reads and writes slab[_·k+l].
func replayTapeK(ops []tapeOp, slab []float64, k int, act []bool, fast bool) {
	if act != nil {
		all := true
		for _, a := range act {
			if !a {
				all = false
				break
			}
		}
		if all {
			act = nil
		}
	}
	for i := range ops {
		op := &ops[i]
		d := int(op.dst) * k
		a := int(op.a) * k
		b := int(op.b) * k
		dv := slab[d : d+k : d+k]
		av := slab[a : a+k : a+k]
		bv := slab[b : b+k : b+k]
		switch op.code {
		case opAdd:
			if act == nil {
				for l := range dv {
					dv[l] = av[l] + bv[l]
				}
			} else {
				for l := range dv {
					if act[l] {
						dv[l] = av[l] + bv[l]
					}
				}
			}
		case opSub:
			if act == nil {
				for l := range dv {
					dv[l] = av[l] - bv[l]
				}
			} else {
				for l := range dv {
					if act[l] {
						dv[l] = av[l] - bv[l]
					}
				}
			}
		case opMul:
			if act == nil {
				for l := range dv {
					dv[l] = av[l] * bv[l]
				}
			} else {
				for l := range dv {
					if act[l] {
						dv[l] = av[l] * bv[l]
					}
				}
			}
		case opDiv:
			if act == nil {
				for l := range dv {
					dv[l] = av[l] / bv[l]
				}
			} else {
				for l := range dv {
					if act[l] {
						dv[l] = av[l] / bv[l]
					}
				}
			}
		case opNeg:
			if act == nil {
				for l := range dv {
					dv[l] = -av[l]
				}
			} else {
				for l := range dv {
					if act[l] {
						dv[l] = -av[l]
					}
				}
			}
		case opSqrt:
			if act == nil {
				for l := range dv {
					dv[l] = math.Sqrt(av[l])
				}
			} else {
				for l := range dv {
					if act[l] {
						dv[l] = math.Sqrt(av[l])
					}
				}
			}
		case opExp:
			if fast {
				vExpFast(dv, av, act)
			} else if act == nil {
				for l := range dv {
					dv[l] = math.Exp(av[l])
				}
			} else {
				for l := range dv {
					if act[l] {
						dv[l] = math.Exp(av[l])
					}
				}
			}
		case opLog:
			if fast {
				vLogFast(dv, av, act)
			} else if act == nil {
				for l := range dv {
					dv[l] = math.Log(av[l])
				}
			} else {
				for l := range dv {
					if act[l] {
						dv[l] = math.Log(av[l])
					}
				}
			}
		case opLog1p:
			if fast {
				vLog1pFast(dv, av, act)
			} else if act == nil {
				for l := range dv {
					dv[l] = math.Log1p(av[l])
				}
			} else {
				for l := range dv {
					if act[l] {
						dv[l] = math.Log1p(av[l])
					}
				}
			}
		case opSelGT:
			c := int(op.c) * k
			e := int(op.d) * k
			cv := slab[c : c+k : c+k]
			ev := slab[e : e+k : e+k]
			if act == nil {
				for l := range dv {
					if av[l] > bv[l] {
						dv[l] = cv[l]
					} else {
						dv[l] = ev[l]
					}
				}
			} else {
				for l := range dv {
					if !act[l] {
						continue
					}
					if av[l] > bv[l] {
						dv[l] = cv[l]
					} else {
						dv[l] = ev[l]
					}
				}
			}
		case opSelLT:
			c := int(op.c) * k
			e := int(op.d) * k
			cv := slab[c : c+k : c+k]
			ev := slab[e : e+k : e+k]
			if act == nil {
				for l := range dv {
					if av[l] < bv[l] {
						dv[l] = cv[l]
					} else {
						dv[l] = ev[l]
					}
				}
			} else {
				for l := range dv {
					if !act[l] {
						continue
					}
					if av[l] < bv[l] {
						dv[l] = cv[l]
					} else {
						dv[l] = ev[l]
					}
				}
			}
		}
	}
}
