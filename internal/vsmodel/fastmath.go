package vsmodel

// fastmath.go — the opt-in fastmath transcendental kernels backing the
// tape-fast lane (VSTAT_MODEL_KERNEL=tape-fast, vsbench -kernel tape-fast).
//
// These are branch-light minimax polynomial kernels in the Cephes lineage
// (Moshier's exp.c/log.c rational approximations), chosen over Go's
// math.Exp/math.Log not for a smaller polynomial — Go's FDLIBM-derived
// routines are already near-minimal — but for a shape the compiler can keep
// in registers across a lane loop: no error-sequence re-expansion, ldexp as
// an exponent-field bit insert instead of a function call, and a single
// straight rational evaluation per call, so consecutive lanes' divisions
// and polynomial chains overlap in the out-of-order window.
//
// Accuracy contract: these are NOT correctly rounded and NOT bit-identical
// to the math package. Measured worst-case error over the tape's operating
// ranges is pinned by TestFastMathULP (fastmath_test.go) and documented in
// DESIGN.md §14: a few ulp for exp and log, slightly wider for log1p.
// Special values match libm semantics exactly: NaN→NaN, exp(±Inf)=+Inf/0,
// exp overflow→+Inf, exp underflow→0, log(0)=−Inf, log(x<0)=NaN,
// log(+Inf)=+Inf, log1p(−1)=−Inf, log1p(x<−1)=NaN.
//
// Determinism contract: the kernels are pure float64 arithmetic — no
// tables, no FMA intrinsics, no platform-dependent paths — so tape-fast
// results are bit-identical to themselves at any worker count, lane width,
// shard size or transport, on any platform with IEEE-754 binary64. An
// assembly build (see fastvec.go) must reproduce these scalar kernels bit
// for bit to keep that contract.

import "math"

// Cephes expCoeff/expQuot: exp(x) = 2^n · (1 + 2p/(q−p)) with x reduced to
// r = x − n·ln2 split against the two-part constant C1+C2.
const (
	expLog2E = 1.4426950408889634073599 // 1/ln 2
	expC1    = 6.93359375e-1            // high part of ln 2
	expC2    = -2.12194440054690582767669e-4

	// exp(x) overflows above this and underflows to zero below the second.
	expMax = 709.78271289338399684324569237317
	expMin = -745.13321910194122585551387960163
)

// fastExp returns e^x with a few-ulp error bound and libm special-value
// semantics. Pure float64 arithmetic; no tables.
func fastExp(x float64) float64 {
	if x != x { // NaN
		return x
	}
	if x > expMax {
		return math.Inf(1)
	}
	if x < expMin {
		return 0
	}

	// n = round(x/ln2); r = x − n·ln2 in two parts to keep |r| ≤ ln2/2
	// without cancellation.
	nf := math.Floor(expLog2E*x + 0.5)
	n := int(nf)
	r := x - nf*expC1
	r -= nf * expC2

	// Rational minimax on [−ln2/2, ln2/2]: e^r = 1 + 2r·P(r²)/(Q(r²) − r·P(r²)).
	z := r * r
	p := r * ((1.26177193074810590878e-4*z+3.02994407707441961300e-2)*z +
		9.99999999999999999910e-1)
	q := (((3.00198505138664455042e-6*z+2.52448340349684104192e-3)*z+
		2.27265548208155028766e-1)*z + 2.00000000000000000005e0)
	e := p / (q - p)
	y := 1 + 2*e

	// Scale by 2^n: an exponent-field insert when the result stays normal,
	// math.Ldexp on the subnormal/huge fringe.
	if n > -1023 && n < 1024 {
		return y * math.Float64frombits(uint64(1023+n)<<52)
	}
	return math.Ldexp(y, n)
}

const (
	logSqrtH = 0.70710678118654752440 // √2/2
	logC1    = 6.93359375e-1          // high part of ln 2 (matches expC1)
	logC2    = 2.121944400546905827679e-4
)

// fastLog returns ln(x) with a few-ulp error bound and libm special-value
// semantics. Pure float64 arithmetic; no tables.
func fastLog(x float64) float64 {
	if x != x { // NaN
		return x
	}
	if x == 0 {
		return math.Inf(-1)
	}
	if x < 0 {
		return math.NaN()
	}
	if math.IsInf(x, 1) {
		return x
	}

	// Frexp via the exponent field, prescaling subnormals by 2^54.
	bits := math.Float64bits(x)
	var e int
	if bits>>52 == 0 { // subnormal
		x *= 1 << 54
		bits = math.Float64bits(x)
		e = -54
	}
	e += int(bits>>52) - 1022
	// Mantissa in [1/2, 1).
	x = math.Float64frombits(bits&0x800fffffffffffff | 0x3fe0000000000000)

	// Normalize to x ∈ (√2/2, √2] around 1.
	if x < logSqrtH {
		e--
		x = 2*x - 1
	} else {
		x = x - 1
	}

	// ln(1+x) ≈ x − x²/2 + x·x²·P(x)/Q(x), Cephes log.c minimax.
	z := x * x
	pn := (((((1.01875663804580931796e-4*x+4.97494994976747001425e-1)*x+
		4.70579119878881725854e0)*x+1.44989225341610930846e1)*x+
		1.79368678507819816313e1)*x + 7.70838733755885391666e0)
	qd := ((((x+1.12873587189167450590e1)*x+4.52279145837532221105e1)*x+
		8.29875266912776603211e1)*x+7.11544750618563894466e1)*x +
		2.31251620126765340583e1
	y := x * (z * (pn / qd))

	// Reassemble with the two-part ln 2: ln2 = logC1 − logC2.
	ef := float64(e)
	y -= ef * logC2
	y -= 0.5 * z
	r := x + y
	r += ef * logC1
	return r
}

// fastLog1p returns ln(1+t) with libm special-value semantics, using the
// classic u = 1+t correction ln(1+t) = ln(u)·t/(u−1) to recover the
// low-order bits the rounding of 1+t discards.
func fastLog1p(t float64) float64 {
	if t != t { // NaN
		return t
	}
	if t < -1 {
		return math.NaN()
	}
	if t == -1 {
		return math.Inf(-1)
	}
	u := 1 + t
	if u == 1 {
		return t // |t| below half-ulp of 1: ln(1+t) = t to double precision
	}
	if math.IsInf(t, 1) {
		return t
	}
	return fastLog(u) * (t / (u - 1))
}
