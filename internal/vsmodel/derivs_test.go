package vsmodel

import (
	"math"
	"math/rand"
	"testing"

	"vstat/internal/device"
)

// The native implicit-function-theorem derivatives must match brute-force
// finite differences of Eval across the whole operating space, for both
// polarities and both source/drain orientations.
func TestNativeDerivsMatchFD(t *testing.T) {
	n := NMOS40(600e-9)
	p := PMOS40(600e-9)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 400; trial++ {
		var d device.Device
		if trial%2 == 0 {
			d = &n
		} else {
			d = &p
		}
		vd := rng.Float64()*1.8 - 0.45 // includes swapped-orientation region
		vg := rng.Float64() * 0.9
		vs := rng.Float64() * 0.9
		vb := 0.0

		nat := d.(device.NativeDerivs).EvalDerivs4(vd, vg, vs, vb)
		fd := device.EvalDerivsFD(d, vd, vg, vs, vb)

		// Values must agree exactly (same solve).
		if math.Abs(nat.Id-fd.Id) > 1e-9*(1+math.Abs(fd.Id)) {
			t.Fatalf("trial %d: Id %g vs %g", trial, nat.Id, fd.Id)
		}
		if math.Abs(nat.Q.Qg-fd.Q.Qg) > 1e-9*(1+math.Abs(fd.Q.Qg)) {
			t.Fatalf("trial %d: Qg %g vs %g", trial, nat.Q.Qg, fd.Q.Qg)
		}
		// Conductances: the central-difference FD reference carries O(h²)
		// truncation while the native path's internal forward differences
		// carry O(h); compare at 3 % of the row scale.
		gScale := 0.0
		for _, v := range fd.GId {
			gScale += math.Abs(v)
		}
		for j := 0; j < 4; j++ {
			if math.Abs(nat.GId[j]-fd.GId[j]) > 0.03*gScale+1e-12 {
				t.Fatalf("trial %d (vd=%.3f vg=%.3f vs=%.3f): GId[%d] native %g vs FD %g",
					trial, vd, vg, vs, j, nat.GId[j], fd.GId[j])
			}
		}
		for k := 0; k < 4; k++ {
			cScale := 0.0
			for _, v := range fd.CQ[k] {
				cScale += math.Abs(v)
			}
			for j := 0; j < 4; j++ {
				if math.Abs(nat.CQ[k][j]-fd.CQ[k][j]) > 0.03*cScale+1e-22 {
					t.Fatalf("trial %d: CQ[%d][%d] native %g vs FD %g",
						trial, k, j, nat.CQ[k][j], fd.CQ[k][j])
				}
			}
		}
	}
}

// At Vds = 0 the saturation function sits exactly on its x = 0 branch; the
// native bundle must report the one-sided linear conductance gds = q·vxo/vdsat
// there, not zero. A zero gds leaves the output node of a turned-on device
// with a near-singular Jacobian row and makes the circuit Newton limit-cycle
// (this is the bias every DC solve starts from: all node voltages equal).
func TestNativeDerivsVdsZeroConductance(t *testing.T) {
	n := NMOS40(150e-9)
	for _, vg := range []float64{0.4, 0.9} {
		nat := n.EvalDerivs4(0.0, vg, 0.0, 0.0)
		if nat.GId[0] <= 0 {
			t.Fatalf("vg=%g: gds at Vds=0 is %g, want > 0", vg, nat.GId[0])
		}
		fd := device.EvalDerivsFD(&n, 0.0, vg, 0.0, 0.0)
		if math.Abs(nat.GId[0]-fd.GId[0]) > 0.03*math.Abs(fd.GId[0])+1e-12 {
			t.Fatalf("vg=%g: gds native %g vs FD %g", vg, nat.GId[0], fd.GId[0])
		}
	}
}

func TestNativeDerivsInvariances(t *testing.T) {
	n := NMOS40(600e-9)
	d := n.EvalDerivs4(0.7, 0.8, 0.1, 0)
	// Translation invariance: each derivative row sums to ~0.
	sum := d.GId[0] + d.GId[1] + d.GId[2] + d.GId[3]
	scale := math.Abs(d.GId[0]) + math.Abs(d.GId[1]) + math.Abs(d.GId[2]) + math.Abs(d.GId[3])
	if math.Abs(sum) > 1e-9*scale {
		t.Fatalf("GId row sum %g", sum)
	}
	for k := 0; k < 4; k++ {
		s := d.CQ[k][0] + d.CQ[k][1] + d.CQ[k][2] + d.CQ[k][3]
		if math.Abs(s) > 1e-20 {
			t.Fatalf("CQ row %d sum %g", k, s)
		}
	}
	// Charge neutrality columns: ΣQ rows = 0 per column.
	for j := 0; j < 4; j++ {
		s := d.CQ[0][j] + d.CQ[1][j] + d.CQ[2][j] + d.CQ[3][j]
		if math.Abs(s) > 1e-20 {
			t.Fatalf("CQ column %d sum %g", j, s)
		}
	}
}

// The Gm/Gds/Cgg characterization helpers must route through EvalDerivs —
// i.e. use the native derivative bundle on models that provide one — and
// the native values must stay within FD agreement of the central stencil.
func TestHelpersUseNativeDerivs(t *testing.T) {
	n := NMOS40(600e-9)
	for _, bias := range [][4]float64{
		{0.9, 0.9, 0, 0},  // strong inversion, saturation
		{0.05, 0.9, 0, 0}, // linear region
		{0.9, 0.3, 0, 0},  // near threshold
	} {
		vd, vg, vs, vb := bias[0], bias[1], bias[2], bias[3]
		nat := n.EvalDerivs4(vd, vg, vs, vb)
		if gm := device.Gm(&n, vd, vg, vs, vb); gm != nat.GId[1] {
			t.Fatalf("Gm %g != native GId[G] %g", gm, nat.GId[1])
		}
		if gds := device.Gds(&n, vd, vg, vs, vb); gds != nat.GId[0] {
			t.Fatalf("Gds %g != native GId[D] %g", gds, nat.GId[0])
		}
		if cgg := device.Cgg(&n, vd, vg, vs, vb); cgg != nat.CQ[1][1] {
			t.Fatalf("Cgg %g != native CQ[G][G] %g", cgg, nat.CQ[1][1])
		}
		// And the native values the helpers now return must agree with the
		// central-difference stencil they used to compute directly.
		fd := device.EvalDerivsFD(&n, vd, vg, vs, vb)
		if math.Abs(nat.GId[1]-fd.GId[1]) > 0.03*math.Abs(fd.GId[1])+1e-12 {
			t.Fatalf("native Gm %g vs central FD %g", nat.GId[1], fd.GId[1])
		}
		if math.Abs(nat.CQ[1][1]-fd.CQ[1][1]) > 0.03*math.Abs(fd.CQ[1][1])+1e-22 {
			t.Fatalf("native Cgg %g vs central FD %g", nat.CQ[1][1], fd.CQ[1][1])
		}
	}
}

func TestEvalDerivsPrefersNative(t *testing.T) {
	// device.EvalDerivs on a VS card must route to the native path: verify
	// by cost proxy — the native result equals EvalDerivs4 bit-for-bit.
	n := NMOS40(600e-9)
	a := device.EvalDerivs(&n, 0.6, 0.7, 0, 0)
	b := n.EvalDerivs4(0.6, 0.7, 0, 0)
	if a != b {
		t.Fatal("EvalDerivs did not use the native path")
	}
}
