package vsmodel

import (
	"math"
	"math/rand"
	"testing"

	"vstat/internal/device"
)

// The native implicit-function-theorem derivatives must match brute-force
// finite differences of Eval across the whole operating space, for both
// polarities and both source/drain orientations.
func TestNativeDerivsMatchFD(t *testing.T) {
	n := NMOS40(600e-9)
	p := PMOS40(600e-9)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 400; trial++ {
		var d device.Device
		if trial%2 == 0 {
			d = &n
		} else {
			d = &p
		}
		vd := rng.Float64()*1.8 - 0.45 // includes swapped-orientation region
		vg := rng.Float64() * 0.9
		vs := rng.Float64() * 0.9
		vb := 0.0

		nat := d.(device.NativeDerivs).EvalDerivs4(vd, vg, vs, vb)
		fd := device.EvalDerivsFD(d, vd, vg, vs, vb)

		// Values must agree exactly (same solve).
		if math.Abs(nat.Id-fd.Id) > 1e-9*(1+math.Abs(fd.Id)) {
			t.Fatalf("trial %d: Id %g vs %g", trial, nat.Id, fd.Id)
		}
		if math.Abs(nat.Q.Qg-fd.Q.Qg) > 1e-9*(1+math.Abs(fd.Q.Qg)) {
			t.Fatalf("trial %d: Qg %g vs %g", trial, nat.Q.Qg, fd.Q.Qg)
		}
		// Conductances: FD carries O(h) truncation; compare at 3 % of the
		// row scale.
		gScale := 0.0
		for _, v := range fd.GId {
			gScale += math.Abs(v)
		}
		for j := 0; j < 4; j++ {
			if math.Abs(nat.GId[j]-fd.GId[j]) > 0.03*gScale+1e-12 {
				t.Fatalf("trial %d (vd=%.3f vg=%.3f vs=%.3f): GId[%d] native %g vs FD %g",
					trial, vd, vg, vs, j, nat.GId[j], fd.GId[j])
			}
		}
		for k := 0; k < 4; k++ {
			cScale := 0.0
			for _, v := range fd.CQ[k] {
				cScale += math.Abs(v)
			}
			for j := 0; j < 4; j++ {
				if math.Abs(nat.CQ[k][j]-fd.CQ[k][j]) > 0.03*cScale+1e-22 {
					t.Fatalf("trial %d: CQ[%d][%d] native %g vs FD %g",
						trial, k, j, nat.CQ[k][j], fd.CQ[k][j])
				}
			}
		}
	}
}

func TestNativeDerivsInvariances(t *testing.T) {
	n := NMOS40(600e-9)
	d := n.EvalDerivs4(0.7, 0.8, 0.1, 0)
	// Translation invariance: each derivative row sums to ~0.
	sum := d.GId[0] + d.GId[1] + d.GId[2] + d.GId[3]
	scale := math.Abs(d.GId[0]) + math.Abs(d.GId[1]) + math.Abs(d.GId[2]) + math.Abs(d.GId[3])
	if math.Abs(sum) > 1e-9*scale {
		t.Fatalf("GId row sum %g", sum)
	}
	for k := 0; k < 4; k++ {
		s := d.CQ[k][0] + d.CQ[k][1] + d.CQ[k][2] + d.CQ[k][3]
		if math.Abs(s) > 1e-20 {
			t.Fatalf("CQ row %d sum %g", k, s)
		}
	}
	// Charge neutrality columns: ΣQ rows = 0 per column.
	for j := 0; j < 4; j++ {
		s := d.CQ[0][j] + d.CQ[1][j] + d.CQ[2][j] + d.CQ[3][j]
		if math.Abs(s) > 1e-20 {
			t.Fatalf("CQ column %d sum %g", j, s)
		}
	}
}

func TestEvalDerivsPrefersNative(t *testing.T) {
	// device.EvalDerivs on a VS card must route to the native path: verify
	// by cost proxy — the native result equals EvalDerivs4 bit-for-bit.
	n := NMOS40(600e-9)
	a := device.EvalDerivs(&n, 0.6, 0.7, 0, 0)
	b := n.EvalDerivs4(0.6, 0.7, 0, 0)
	if a != b {
		t.Fatal("EvalDerivs did not use the native path")
	}
}
