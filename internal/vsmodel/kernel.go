package vsmodel

// kernel.go — the model-kernel knob: which evaluation backend a VS
// parameter card is wrapped in when it enters the simulator.
//
//   - direct:    the scalar Params methods plus the ParamsBatch SoA kernel
//                (the historical default).
//   - tape:      the compiled op tape replayed with libm — bit-identical to
//                direct, op-tape execution (tape.go).
//   - tape-fast: the op tape replayed with the fastmath polynomial kernels —
//                a few ulp off libm, bit-identical to itself at any worker
//                count, lane width, shard size or transport (fastmath.go).
//
// KernelAuto (the zero value) defers to the process-wide
// VSTAT_MODEL_KERNEL environment override, read once, and falls back to
// direct — mirroring the spice package's VSTAT_LINEAR_CORE idiom.

import (
	"fmt"
	"os"

	"vstat/internal/device"
)

// Kernel selects the VS model evaluation backend.
type Kernel int

const (
	// KernelAuto (the zero value) defers to the VSTAT_MODEL_KERNEL
	// environment override ("direct", "tape" or "tape-fast"), falling back
	// to KernelDirect.
	KernelAuto Kernel = iota
	KernelDirect
	KernelTape
	KernelTapeFast
)

// String returns the benchmark-facing name of the kernel.
func (k Kernel) String() string {
	switch k {
	case KernelDirect:
		return "direct"
	case KernelTape:
		return "tape"
	case KernelTapeFast:
		return "tape-fast"
	default:
		return "auto"
	}
}

// ParseKernel parses a kernel name; the empty string is KernelAuto.
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", "auto":
		return KernelAuto, nil
	case "direct":
		return KernelDirect, nil
	case "tape":
		return KernelTape, nil
	case "tape-fast":
		return KernelTapeFast, nil
	}
	return KernelAuto, fmt.Errorf("vsmodel: unknown model kernel %q (want direct, tape or tape-fast)", s)
}

// envKernel is the process-wide VSTAT_MODEL_KERNEL override, read once.
var envKernel = func() Kernel {
	k, err := ParseKernel(os.Getenv("VSTAT_MODEL_KERNEL"))
	if err != nil {
		return KernelAuto
	}
	return k
}()

// Resolve maps KernelAuto through the environment override to a concrete
// backend choice.
func (k Kernel) Resolve() Kernel {
	if k == KernelAuto {
		k = envKernel
	}
	if k == KernelAuto {
		k = KernelDirect
	}
	return k
}

// ForKernel wraps a parameter card in the chosen evaluation backend. The
// returned device implements NativeDerivs, Varier and BatchBuilder for
// every kernel, so statistical draws and lockstep batching stay on the
// chosen backend.
func ForKernel(p Params, k Kernel) device.Device {
	switch k.Resolve() {
	case KernelTape:
		return NewTapeDevice(p, false)
	case KernelTapeFast:
		return NewTapeDevice(p, true)
	default:
		q := p
		return &q
	}
}
