//go:build !vstatasm

package vsmodel

// fastvec.go — the portable lane-slab transcendental kernels the fastmath
// tape replay dispatches to, one call per opExp/opLog/opLog1p over the
// whole K-lane register row. The !vstatasm build (the default, and the only
// one shipped today) loops the scalar fastmath kernels; a future
// vstatasm-tagged file may replace these three functions with vectorized
// assembly, but ONLY if that assembly reproduces fastExp/fastLog/fastLog1p
// bit for bit — the tape-fast determinism contract (same bits at any worker
// count, lane width, shard size or transport) extends across build
// configurations of the same binary-visible results, and eviction
// correctness relies on the K=1 replay and the slab replay agreeing
// exactly.
//
// act masks lanes (nil = all live); masked lanes' outputs are left
// untouched, mirroring replayTapeK's arithmetic ops.

func vExpFast(dst, src []float64, act []bool) {
	for l := range dst {
		if act != nil && !act[l] {
			continue
		}
		dst[l] = fastExp(src[l])
	}
}

func vLogFast(dst, src []float64, act []bool) {
	for l := range dst {
		if act != nil && !act[l] {
			continue
		}
		dst[l] = fastLog(src[l])
	}
}

func vLog1pFast(dst, src []float64, act []bool) {
	for l := range dst {
		if act != nil && !act[l] {
			continue
		}
		dst[l] = fastLog1p(src[l])
	}
}
