package vsmodel

import (
	"math"

	"math/rand"
	"testing"
	"testing/quick"
	"vstat/internal/device"
)

// Property: the series-resistance solution satisfies its own implicit
// equation — re-evaluating the core at the degraded internal bias must give
// back the solved current.
func TestSeriesSolveSelfConsistency(t *testing.T) {
	n := NMOS40(600e-9)
	f := func(a, b uint8) bool {
		vgs := float64(a) / 255 * 0.9
		vds := float64(b) / 255 * 0.9
		id, _, _, _ := n.solveSeries(vgs, vds, 0)
		w := n.Weff()
		rs := n.Rs0 / w
		rd := n.Rd0 / w
		vgsi := vgs - id*rs
		vdsi := vds - id*(rs+rd)
		if vdsi < 0 {
			vdsi = 0
		}
		perW, _, _ := n.coreBias(vgsi, vdsi, -id*rs)
		back := w * perW
		return math.Abs(back-id) <= 1e-12+1e-6*math.Abs(id)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// The solved current must never exceed the undegraded core current, and the
// degradation must deepen with larger access resistance.
func TestSeriesDegradationMonotoneInRs(t *testing.T) {
	base := NMOS40(600e-9)
	prev := math.Inf(1)
	for _, rs := range []float64{0, 50e-6, 100e-6, 200e-6} {
		n := base
		n.Rs0, n.Rd0 = rs, rs
		id := n.Eval(0.9, 0.9, 0, 0).Id
		if id > prev {
			t.Fatalf("Id should fall with Rs: %g after %g (Rs=%g)", id, prev, rs)
		}
		prev = id
	}
}

// Smoothness of the solved current: the series solver's tolerance must not
// introduce kinks visible to the simulator's finite differences.
func TestSeriesSolveSmoothness(t *testing.T) {
	n := NMOS40(600e-9)
	h := 1e-4
	for vg := 0.2; vg < 0.9; vg += 0.007 {
		i0 := n.Eval(0.9, vg-h, 0, 0).Id
		i1 := n.Eval(0.9, vg, 0, 0).Id
		i2 := n.Eval(0.9, vg+h, 0, 0).Id
		// Relative jump of the forward difference between adjacent steps.
		d1 := i1 - i0
		d2 := i2 - i1
		if math.Abs(d2-d1) > 0.05*math.Abs(d1)+1e-12 {
			t.Fatalf("gm kink at Vg=%g: %g vs %g", vg, d1, d2)
		}
	}
}

func TestFsatBounds(t *testing.T) {
	n := NMOS40(600e-9)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		vgs := rng.Float64() * 0.9
		vds := rng.Float64() * 0.9
		_, _, fsat, _ := n.solveSeries(vgs, vds, 0)
		if fsat < 0 || fsat >= 1 {
			t.Fatalf("Fsat = %g out of [0,1) at (%g,%g)", fsat, vgs, vds)
		}
	}
	if _, _, fsat, _ := n.solveSeries(0.9, 0, 0); fsat != 0 {
		t.Fatalf("Fsat(Vds=0) = %g", fsat)
	}
}

func TestAppliedDeltasRecorded(t *testing.T) {
	n := NMOS40(600e-9)
	d := n.ApplyDeltas(deltaVT(0.01))
	if d.Applied.DVT0 != 0.01 {
		t.Fatalf("Applied not recorded: %+v", d.Applied)
	}
}

func TestZeroWidthDegenerate(t *testing.T) {
	n := NMOS40(600e-9)
	n.DWg = n.W // Weff = 0
	e := n.Eval(0.9, 0.9, 0, 0)
	if e.Id != 0 {
		t.Fatalf("zero-width device conducts: %g", e.Id)
	}
}

// Cross-check the secant series solve against brute-force scanning of the
// implicit equation.
func TestSeriesSolveMatchesBruteForce(t *testing.T) {
	n := NMOS40(600e-9)
	for _, bias := range [][2]float64{{0.9, 0.9}, {0.9, 0.05}, {0.6, 0.45}, {0.3, 0.9}} {
		vgs, vds := bias[0], bias[1]
		id, _, _, _ := n.solveSeries(vgs, vds, 0)
		w := n.Weff()
		rs := n.Rs0 / w
		rd := n.Rd0 / w
		g := func(i float64) float64 {
			vgsi := vgs - i*rs
			vdsi := vds - i*(rs+rd)
			if vdsi < 0 {
				vdsi = 0
			}
			perW, _, _ := n.coreBias(vgsi, vdsi, -i*rs)
			return i - w*perW
		}
		// Bisection to high precision.
		lo, hi := 0.0, -g(0)
		for k := 0; k < 200; k++ {
			mid := 0.5 * (lo + hi)
			if g(mid) > 0 {
				hi = mid
			} else {
				lo = mid
			}
		}
		ref := 0.5 * (lo + hi)
		if math.Abs(id-ref) > 1e-12+1e-6*ref {
			t.Fatalf("bias %v: secant %g vs bisect %g", bias, id, ref)
		}
	}
}

func deltaVT(v float64) device.Deltas {
	return device.Deltas{DVT0: v}
}
