package vsmodel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"vstat/internal/device"
)

const (
	wTest = 1e-6 // 1 µm
	vdd   = 0.9
)

func TestZeroVdsZeroCurrent(t *testing.T) {
	n := NMOS40(wTest)
	for _, vg := range []float64{0, 0.3, 0.6, 0.9} {
		if id := n.Eval(0, vg, 0, 0).Id; id != 0 {
			t.Fatalf("Id(Vds=0, Vg=%g) = %g, want 0", vg, id)
		}
	}
}

func TestNominalOperatingWindow(t *testing.T) {
	n := NMOS40(wTest)
	ion := n.Eval(vdd, vdd, 0, 0).Id
	ioff := n.Eval(vdd, 0, 0, 0).Id
	if ion < 500e-6 || ion > 1100e-6 {
		t.Fatalf("NMOS Ion = %g µA/µm outside 40-nm window", ion*1e6)
	}
	if ioff < 5e-9 || ioff > 400e-9 {
		t.Fatalf("NMOS Ioff = %g nA/µm outside window", ioff*1e9)
	}
	p := PMOS40(wTest)
	ionP := -p.Eval(0, 0, vdd, vdd).Id // source at Vdd, drain pulled low
	if ionP < 250e-6 || ionP > 800e-6 {
		t.Fatalf("PMOS Ion = %g µA/µm outside window", ionP*1e6)
	}
	if r := ionP / ion; r < 0.4 || r > 0.9 {
		t.Fatalf("P/N drive ratio %g unrealistic", r)
	}
}

func TestMonotoneInVgsAndVds(t *testing.T) {
	n := NMOS40(wTest)
	prev := -1.0
	for vg := 0.0; vg <= 0.9; vg += 0.01 {
		id := n.Eval(vdd, vg, 0, 0).Id
		if id < prev {
			t.Fatalf("Id not monotone in Vgs at %g", vg)
		}
		prev = id
	}
	prev = -1
	for vd := 0.0; vd <= 0.9; vd += 0.01 {
		id := n.Eval(vd, vdd, 0, 0).Id
		if id < prev {
			t.Fatalf("Id not monotone in Vds at %g", vd)
		}
		prev = id
	}
}

func TestSourceDrainSwapAntisymmetry(t *testing.T) {
	n := NMOS40(wTest)
	for _, v := range [][2]float64{{0.9, 0}, {0.3, 0.5}, {0.05, 0.9}} {
		a := n.Eval(v[0], 0.7, v[1], 0).Id
		b := n.Eval(v[1], 0.7, v[0], 0).Id
		if math.Abs(a+b) > 1e-12*(1+math.Abs(a)) {
			t.Fatalf("swap antisymmetry broken: %g vs %g", a, b)
		}
	}
}

func TestPMOSMirrorsNMOS(t *testing.T) {
	// A PMOS with an NMOS-identical card must be the exact mirror.
	n := NMOS40(wTest)
	p := n
	p.TypeK = device.PMOS
	for _, bias := range [][4]float64{{0.9, 0.9, 0, 0}, {0.2, 0.6, 0, 0}, {0.9, 0.4, 0.3, 0}} {
		en := n.Eval(bias[0], bias[1], bias[2], bias[3])
		ep := p.Eval(-bias[0], -bias[1], -bias[2], -bias[3])
		if math.Abs(en.Id+ep.Id) > 1e-15+1e-12*math.Abs(en.Id) {
			t.Fatalf("PMOS mirror current broken: %g vs %g", en.Id, ep.Id)
		}
		if math.Abs(en.Q.Qg+ep.Q.Qg) > 1e-25+1e-12*math.Abs(en.Q.Qg) {
			t.Fatalf("PMOS mirror charge broken: %g vs %g", en.Q.Qg, ep.Q.Qg)
		}
	}
}

func TestChargeNeutrality(t *testing.T) {
	n := NMOS40(wTest)
	p := PMOS40(wTest)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		vd, vg, vs, vb := rng.Float64(), rng.Float64(), rng.Float64(), 0.0
		for _, d := range []device.Device{&n, &p} {
			q := d.Eval(vd, vg, vs, vb).Q
			if math.Abs(q.Sum()) > 1e-22 {
				t.Fatalf("charge not neutral: sum=%g at (%g,%g,%g)", q.Sum(), vd, vg, vs)
			}
		}
	}
}

func TestGmSmoothAcrossInversion(t *testing.T) {
	// gm must be continuous through the weak/strong inversion transition:
	// second differences of Id over a fine Vg grid stay bounded relative to
	// the local gm scale.
	n := NMOS40(wTest)
	h := 1e-3
	for vg := 0.1; vg <= 0.8; vg += h {
		i0 := n.Eval(vdd, vg-h, 0, 0).Id
		i1 := n.Eval(vdd, vg, 0, 0).Id
		i2 := n.Eval(vdd, vg+h, 0, 0).Id
		d2 := (i2 - 2*i1 + i0) / (h * h)
		// d²I/dV² bounded by a loose physical scale: Cinv·vxo·W/φt-ish.
		bound := 10 * n.Cinv * n.Vxo * n.W / n.PhiT
		if math.Abs(d2) > bound {
			t.Fatalf("Id curvature %g too large at Vg=%g (bound %g)", d2, vg, bound)
		}
	}
}

func TestDIBLShiftsSubthresholdCurrent(t *testing.T) {
	n := NMOS40(wTest)
	iLo := n.Eval(0.1, 0, 0, 0).Id
	iHi := n.Eval(vdd, 0, 0, 0).Id
	if iHi <= iLo {
		t.Fatal("DIBL should raise subthreshold current at high Vds")
	}
	// Ratio ≈ exp(δ·ΔVds/(n·φt)) within a factor ~2 (Fsat and n(Vds) also move).
	delta := n.Delta(n.Leff())
	want := math.Exp(delta * (vdd - 0.1) / (n.N0 * n.PhiT))
	got := iHi / iLo
	if got < want/2.5 || got > want*2.5 {
		t.Fatalf("DIBL ratio %g far from theory %g", got, want)
	}
}

func TestSubthresholdSwing(t *testing.T) {
	n := NMOS40(wTest)
	i1 := n.Eval(vdd, 0.00, 0, 0).Id
	i2 := n.Eval(vdd, 0.10, 0, 0).Id
	ss := 0.1 / math.Log10(i2/i1) * 1e3 // mV/dec
	want := n.N0 * n.PhiT * math.Ln10 * 1e3
	if math.Abs(ss-want) > 12 {
		t.Fatalf("SS = %g mV/dec, want ≈ %g", ss, want)
	}
}

func TestBodyEffectRaisesVT(t *testing.T) {
	n := NMOS40(wTest)
	// Reverse body bias (Vb < Vs) must decrease current.
	i0 := n.Eval(vdd, 0.4, 0, 0).Id
	iRev := n.Eval(vdd, 0.4, 0, -0.5).Id
	if iRev >= i0 {
		t.Fatalf("reverse body bias did not reduce current: %g vs %g", iRev, i0)
	}
}

func TestSeriesResistanceReducesIon(t *testing.T) {
	n := NMOS40(wTest)
	nr := n
	nr.Rs0, nr.Rd0 = 0, 0
	withR := n.Eval(vdd, vdd, 0, 0).Id
	noR := nr.Eval(vdd, vdd, 0, 0).Id
	if withR >= noR {
		t.Fatal("series resistance should reduce Ion")
	}
	if withR < 0.6*noR {
		t.Fatalf("series degradation implausibly strong: %g vs %g", withR, noR)
	}
}

func TestDeltaLengthDependence(t *testing.T) {
	n := NMOS40(wTest)
	if n.Delta(30*Nm) <= n.Delta(40*Nm) {
		t.Fatal("DIBL must increase toward short channels")
	}
	if math.Abs(n.Delta(n.LRef)-n.Delta0) > 1e-15 {
		t.Fatal("Delta(LRef) must equal Delta0")
	}
}

func TestBallisticEfficiencyAndCoupling(t *testing.T) {
	n := NMOS40(wTest)
	b := n.BallisticEfficiency()
	if b <= 0 || b >= 1 {
		t.Fatalf("B = %g outside (0,1)", b)
	}
	want := n.LambdaMFP / (n.LambdaMFP + 2*n.LCrit)
	if math.Abs(b-want) > 1e-15 {
		t.Fatalf("B formula mismatch")
	}
	a := n.MuVeloCoupling()
	wantA := n.AlphaVel + (1-b)*(1-n.AlphaVel+n.GammaVel)
	if math.Abs(a-wantA) > 1e-15 {
		t.Fatalf("coupling formula mismatch")
	}
}

func TestApplyDeltasDirections(t *testing.T) {
	n := NMOS40(wTest)
	ioff := func(d device.Device) float64 { return d.Eval(vdd, 0, 0, 0).Id }
	ion := func(d device.Device) float64 { return d.Eval(vdd, vdd, 0, 0).Id }

	up := n.ApplyDeltas(device.Deltas{DVT0: 0.02})
	if ioff(&up) >= ioff(&n) {
		t.Fatal("raising VT0 must cut Ioff")
	}
	longer := n.ApplyDeltas(device.Deltas{DL: 2 * Nm})
	if longer.Leff() <= n.Leff() {
		t.Fatal("DL>0 must lengthen channel")
	}
	// Longer channel → smaller δ → smaller vxo (paper Eq. 5).
	if longer.Vxo >= n.Vxo {
		t.Fatalf("vxo should fall with longer channel: %g vs %g", longer.Vxo, n.Vxo)
	}
	faster := n.ApplyDeltas(device.Deltas{DMu: 0.1 * n.Mu})
	if faster.Vxo <= n.Vxo {
		t.Fatal("vxo should rise with mobility")
	}
	// Coupling magnitude: Δvxo/vxo = A_µ·Δµ/µ.
	rel := faster.Vxo/n.Vxo - 1
	if math.Abs(rel-0.1*n.MuVeloCoupling()) > 1e-12 {
		t.Fatalf("vxo-µ coupling %g want %g", rel, 0.1*n.MuVeloCoupling())
	}
	wider := n.ApplyDeltas(device.Deltas{DW: 50 * Nm})
	if ion(&wider) <= ion(&n) {
		t.Fatal("wider device must drive more current")
	}
	same := n.ApplyDeltas(device.Deltas{})
	if same.VT0 != n.VT0 || same.Vxo != n.Vxo || ion(&same) != ion(&n) {
		t.Fatal("zero deltas must be identity")
	}
}

func TestWithDeltasIndependentInstance(t *testing.T) {
	n := NMOS40(wTest)
	d := n.WithDeltas(device.Deltas{DVT0: 0.05})
	if d.Eval(vdd, vdd, 0, 0).Id == n.Eval(vdd, vdd, 0, 0).Id {
		t.Fatal("WithDeltas returned an unperturbed instance")
	}
	// Original untouched.
	if n.VT0 != 0.445 {
		t.Fatalf("WithDeltas mutated the nominal card: VT0=%g", n.VT0)
	}
}

func TestEvalPropertyRandomBias(t *testing.T) {
	n := NMOS40(wTest)
	f := func(a, b, c uint8) bool {
		vd := float64(a) / 255 * 1.1
		vg := float64(b) / 255 * 1.1
		vs := float64(c) / 255 * 1.1
		e := n.Eval(vd, vg, vs, 0)
		if math.IsNaN(e.Id) || math.IsInf(e.Id, 0) {
			return false
		}
		// Current sign must follow Vds sign.
		if vd > vs && e.Id < 0 {
			return false
		}
		if vd < vs && e.Id > 0 {
			return false
		}
		for _, q := range []float64{e.Q.Qd, e.Q.Qg, e.Q.Qs, e.Q.Qb} {
			if math.IsNaN(q) || math.IsInf(q, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestCggStrongInversionMagnitude(t *testing.T) {
	n := NMOS40(wTest)
	cgg := device.Cgg(&n, 0, vdd, 0, 0)
	intrinsic := n.Weff() * n.Leff() * n.Cinv
	overlap := 2 * n.Cof * n.Weff()
	want := intrinsic + overlap
	if math.Abs(cgg-want)/want > 0.15 {
		t.Fatalf("Cgg = %g F, want ≈ %g", cgg, want)
	}
}

func TestWithGeometry(t *testing.T) {
	n := NMOS40(wTest)
	g := n.WithGeometry(2e-6, 60*Nm)
	if g.W != 2e-6 || g.Lgdr != 60*Nm {
		t.Fatal("WithGeometry did not retarget")
	}
	if g.VT0 != n.VT0 {
		t.Fatal("WithGeometry must preserve the card")
	}
	if g.Eval(vdd, vdd, 0, 0).Id <= n.Eval(vdd, vdd, 0, 0).Id {
		t.Fatal("double width should out-drive despite longer channel here")
	}
}

func TestAccessors(t *testing.T) {
	n := NMOS40(wTest)
	if n.Kind() != device.NMOS || n.Width() != wTest || n.Length() != 40*Nm {
		t.Fatal("accessors wrong")
	}
	if n.Leff() != 35*Nm {
		t.Fatalf("Leff = %g", n.Leff())
	}
	p := PMOS40(wTest)
	if p.Kind() != device.PMOS {
		t.Fatal("PMOS kind")
	}
}
