package vsmodel

// tape_batch.go — the K-lane SoA driver around the compiled op tape,
// mirroring ParamsBatch lane for lane: the same pre-step (polarity map, D/S
// swap, source-referred externals, w≤0 short-circuits), the same lockstep
// bracket-Newton series solve (each Newton round is ONE masked replay of
// the solve segment across all still-pending lanes, so the per-lane
// division and transcendental latency chains overlap), and the same
// values/derivative tails, replayed masked over the lanes that need them.
//
// Per-lane bit identity: a lane's op sequence is exactly the K=1
// TapeDevice's (single replay implementation, op-outer/lane-inner, lanes
// never mix), so an exact-mode lane matches the scalar (*Params) path bit
// for bit and a fast-mode lane matches the K=1 fast TapeDevice — which is
// what keeps lockstep eviction exact under either backend.
//
// Committed solve state: lanes converge at different Newton rounds, and a
// later round overwrites the solve segment's output registers for every
// still-pending lane. Each round therefore commits the outCo slots of the
// lanes it evaluated into cCo ("last evaluation wins", the scalar
// seriesState semantics); the tails replay from cCo through the program's
// dedicated input registers.

import (
	"math"

	"vstat/internal/device"
)

// TapeBatch is the tape-backed device.BatchDevice.
type TapeBatch struct {
	k    int
	prog *tapeProgram
	fast bool

	// Register slab: register r, lane l at slab[r·k+l]. Constant and input
	// rows persist across replays; op rows are scratch.
	slab []float64

	// Per-lane driver state hoisted at SetLane.
	pol    []float64
	wPos   []bool
	rs, rd []float64

	// Per-call scratch: pre-step.
	full, vals []bool
	swap       []bool
	vgs, vds   []float64
	vbs, vgd   []float64

	// Series-solve state (the scalar driver loop, vectorized).
	sDone  []bool
	sA, sB []float64
	sX     []float64
	sTol   []float64
	curID  []float64

	// Committed core evaluation per lane, SoA: slot i, lane l at cCo[i·k+l].
	cCo []float64

	// Replay mask scratch.
	act []bool
}

// NewTapeBatch allocates a K-lane tape batch for one compiled program at
// one fastness, with all scratch preallocated so EvalDerivsBatch never
// allocates.
func NewTapeBatch(k int, prog *tapeProgram, fast bool) *TapeBatch {
	tb := &TapeBatch{k: k, prog: prog, fast: fast}
	tb.slab = make([]float64, prog.nRegs*k)
	tb.cCo = make([]float64, nCoreSlots*k)
	fs := []*[]float64{&tb.pol, &tb.rs, &tb.rd, &tb.vgs, &tb.vds, &tb.vbs, &tb.vgd,
		&tb.sA, &tb.sB, &tb.sX, &tb.sTol, &tb.curID}
	for _, f := range fs {
		*f = make([]float64, k)
	}
	bs := []*[]bool{&tb.wPos, &tb.full, &tb.vals, &tb.swap, &tb.sDone, &tb.act}
	for _, f := range bs {
		*f = make([]bool, k)
	}
	return tb
}

// Lanes returns the lane capacity.
func (tb *TapeBatch) Lanes() int { return tb.k }

// SetLane binds lane l to a TapeDevice of the same program and fastness,
// copying its already-bound constant registers into the lane's slab column.
// Any other device (including a TapeDevice of the other branch shape or
// backend) reports false, sending the caller to the scalar-loop fallback —
// which still evaluates through that device's own tape.
func (tb *TapeBatch) SetLane(l int, d device.Device) bool {
	td, ok := d.(*TapeDevice)
	if !ok || td.prog != tb.prog || td.fast != tb.fast {
		return false
	}
	k := tb.k
	for _, s := range tb.prog.binds {
		tb.slab[int(s.reg)*k+l] = td.regs[s.reg]
	}
	tb.pol[l] = td.pol
	tb.wPos[l] = td.wPos
	tb.rs[l] = td.rs
	tb.rd[l] = td.rd
	return true
}

// setInput writes one lane of an input register row.
func (tb *TapeBatch) setInput(reg uint16, l int, v float64) {
	tb.slab[int(reg)*tb.k+l] = v
}

// commitLane copies lane l's outCo slots into its committed cCo column.
func (tb *TapeBatch) commitLane(l int) {
	k := tb.k
	for i := 0; i < nCoreSlots; i++ {
		tb.cCo[i*k+l] = tb.slab[int(tb.prog.outCo[i])*k+l]
	}
}

// restoreCo copies the committed cCo columns of the masked lanes back into
// the tail input registers before a tail replay.
func (tb *TapeBatch) restoreCo(mask []bool) {
	k := tb.k
	for i := 0; i < nCoreSlots; i++ {
		dst := tb.slab[int(tb.prog.rCo[i])*k:]
		src := tb.cCo[i*k:]
		for l := 0; l < k; l++ {
			if !mask[l] {
				continue
			}
			dst[l] = src[l]
		}
	}
}

// solveBatch runs the bracket-Newton series solve for every live lane in
// lockstep, one masked solve-segment replay per Newton round. The per-lane
// driver arithmetic is solveSeriesD's, statement for statement.
func (tb *TapeBatch) solveBatch() {
	k := tb.k
	pr := tb.prog
	need := 0
	for l := 0; l < k; l++ {
		tb.sDone[l] = true
		tb.act[l] = false
		if !tb.full[l] && !tb.vals[l] {
			continue
		}
		if !tb.wPos[l] {
			// solveSeriesD: w ≤ 0 returns a zero state (charges still
			// assemble overlap terms for the values path).
			tb.curID[l] = 0
			for i := 0; i < nCoreSlots; i++ {
				tb.cCo[i*k+l] = 0
			}
			continue
		}
		tb.setInput(pr.rVgs, l, tb.vgs[l])
		tb.setInput(pr.rVds, l, tb.vds[l])
		tb.setInput(pr.rVbs, l, tb.vbs[l])
		tb.setInput(pr.rI, l, 0)
		tb.act[l] = true
		need++
	}
	if need == 0 {
		return
	}

	// Initial evaluation at I = 0 for every live lane.
	replayTapeK(pr.solve, tb.slab, k, tb.act, tb.fast)
	fRow := tb.slab[int(pr.outF)*k:]
	dfRow := tb.slab[int(pr.outDF)*k:]
	pending := 0
	for l := 0; l < k; l++ {
		if !tb.act[l] {
			continue
		}
		tb.commitLane(l)
		f0, df0 := fRow[l], dfRow[l]
		tb.curID[l] = f0
		tb.act[l] = false
		if tb.rs[l] == 0 && tb.rd[l] == 0 {
			continue
		}
		tol := 1e-13 + 1e-9*f0
		if f0 <= tol {
			continue
		}
		tb.sTol[l] = tol
		a, b := 0.0, f0
		tb.sA[l], tb.sB[l] = a, b
		// Newton step from I=0: g(0) = −F(0), g'(0) = 1 − F'(0).
		x := f0 / (1 - df0)
		if !(x > a && x < b) {
			x = 0.5 * (a + b)
		}
		tb.sX[l] = x
		tb.sDone[l] = false
		tb.act[l] = true
		tb.setInput(pr.rI, l, x)
		pending++
	}

	for it := 0; it < 60 && pending > 0; it++ {
		replayTapeK(pr.solve, tb.slab, k, tb.act, tb.fast)
		for l := 0; l < k; l++ {
			if !tb.act[l] {
				continue
			}
			tb.commitLane(l)
			a, b := tb.sA[l], tb.sB[l]
			x := tb.sX[l]
			fx, dfx := fRow[l], dfRow[l]
			gx := x - fx
			tb.curID[l] = fx
			if math.Abs(gx) <= tb.sTol[l] || b-a <= 1e-15*(1+b) {
				// Converged: the scalar path returns the root estimate x,
				// not F(x); only 60-round exhaustion keeps F(x).
				tb.curID[l] = x
				tb.sDone[l] = true
				tb.act[l] = false
				pending--
				continue
			}
			if gx > 0 {
				tb.sB[l] = x
				b = x
			} else {
				tb.sA[l] = x
				a = x
			}
			xn := x - gx/(1-dfx)
			if !(xn > a && xn < b) {
				xn = 0.5 * (a + b)
			}
			tb.sX[l] = xn
			tb.setInput(pr.rI, l, xn)
		}
	}
	for l := 0; l < k; l++ {
		tb.act[l] = false
	}
}

// EvalDerivsBatch implements device.BatchDevice over the tape.
func (tb *TapeBatch) EvalDerivsBatch(vd, vg, vs, vb []float64, mode []device.EvalMode, out *device.DerivsBatch) {
	k := tb.k
	pr := tb.prog

	// Pre-step: polarity map, D/S swap and source-referred externals, as in
	// Eval / EvalDerivs4. Input register rows are written here so both the
	// solve segment and the tails see them.
	for l := 0; l < k; l++ {
		tb.full[l] = mode[l] == device.EvalFull
		tb.vals[l] = mode[l] == device.EvalValues
		if !tb.full[l] && !tb.vals[l] {
			continue
		}
		if tb.full[l] && !tb.wPos[l] {
			// EvalDerivs4 short-circuits w ≤ 0 to a zero bundle before any
			// voltage mapping.
			out.SetLaneDerivs(l, device.Derivs{})
			tb.full[l] = false
			continue
		}
		pol := tb.pol[l]
		nvd, nvg, nvs, nvb := pol*vd[l], pol*vg[l], pol*vs[l], pol*vb[l]
		swap := false
		if nvd < nvs {
			nvd, nvs = nvs, nvd
			swap = true
		}
		tb.swap[l] = swap
		tb.vgs[l] = nvg - nvs
		tb.vds[l] = nvd - nvs
		tb.vbs[l] = nvb - nvs
		tb.vgd[l] = nvg - nvd
		tb.setInput(pr.rVgs, l, tb.vgs[l])
		tb.setInput(pr.rVgd, l, tb.vgd[l])
	}

	// Lockstep series solve; each lane's committed cCo column holds its
	// converged core evaluation afterwards.
	tb.solveBatch()

	// Values tail (Eval's charge assembly), one masked replay.
	anyVals := false
	for l := 0; l < k; l++ {
		tb.act[l] = tb.vals[l]
		anyVals = anyVals || tb.vals[l]
	}
	if anyVals {
		tb.restoreCo(tb.act)
		replayTapeK(pr.values, tb.slab, k, tb.act, tb.fast)
		qgRow := tb.slab[int(pr.outQg)*k:]
		qdRow := tb.slab[int(pr.outQd)*k:]
		qsRow := tb.slab[int(pr.outQs)*k:]
		for l := 0; l < k; l++ {
			if !tb.vals[l] {
				continue
			}
			id := tb.curID[l]
			q := device.Charges{Qg: qgRow[l], Qd: qdRow[l], Qs: qsRow[l], Qb: 0}
			if tb.swap[l] {
				id = -id
				q = q.SwapDS()
			}
			if tb.pol[l] < 0 {
				id = -id
				q = q.Neg()
			}
			out.Id[l] = id
			out.Q[0][l], out.Q[1][l], out.Q[2][l], out.Q[3][l] = q.Qd, q.Qg, q.Qs, q.Qb
		}
	}

	// Derivative tail (the EvalDerivs4 IFT bundle), one masked replay.
	anyFull := false
	for l := 0; l < k; l++ {
		tb.act[l] = tb.full[l]
		anyFull = anyFull || tb.full[l]
	}
	if !anyFull {
		return
	}
	tb.restoreCo(tb.act)
	replayTapeK(pr.derivs, tb.slab, k, tb.act, tb.fast)
	for l := 0; l < k; l++ {
		if !tb.full[l] {
			continue
		}
		var der device.Derivs
		der.Id = tb.curID[l]
		der.Q = device.Charges{
			Qg: tb.slab[int(pr.dQg)*k+l],
			Qd: tb.slab[int(pr.dQd)*k+l],
			Qs: tb.slab[int(pr.dQs)*k+l],
			Qb: 0,
		}
		for t := 0; t < 4; t++ {
			der.GId[t] = tb.slab[int(pr.dGId[t])*k+l]
			der.CQ[0][t] = tb.slab[int(pr.dCQ0[t])*k+l]
			der.CQ[1][t] = tb.slab[int(pr.dCQ1[t])*k+l]
			der.CQ[2][t] = tb.slab[int(pr.dCQ2[t])*k+l]
			der.CQ[3][t] = 0
		}
		if tb.swap[l] {
			der = swapDerivs(der)
		}
		if tb.pol[l] < 0 {
			der.Id = -der.Id
			der.Q = der.Q.Neg()
		}
		out.SetLaneDerivs(l, der)
	}
	for l := 0; l < k; l++ {
		tb.act[l] = false
	}
}
