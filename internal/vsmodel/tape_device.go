package vsmodel

// tape_device.go — the K=1 driver around the compiled op tape: a
// device.Device/NativeDerivs implementation that replays the program of
// tape.go instead of calling coreBiasPreD. The driver keeps exactly the
// branches the scalar entry points keep outside the core arithmetic —
// polarity mapping, the D/S swap, the w≤0 and rs=rd=0 short-circuits, and
// the bracket-safeguarded Newton loop of solveSeriesD — and replays the
// solve segment once per trial current, so the evaluation sequence is
// statement for statement the scalar path's with the core body interpreted
// from the tape.
//
// With fast=false the replay calls libm and every output is bit-identical
// to (*Params).Eval / EvalDerivs4; with fast=true the replay substitutes
// the fastmath kernels, trading a few ulp for throughput while staying
// bit-identical to itself (and to the batched tape-fast replay — both run
// the identical op sequence, which is what keeps lockstep lane eviction
// exact under the fast kernel too).

import (
	"math"

	"vstat/internal/device"
)

// TapeDevice is a VS instance evaluated through the compiled op tape.
type TapeDevice struct {
	card Params
	prog *tapeProgram
	fast bool

	// K=1 register file, bound to card at construction.
	regs []float64

	// Driver-side hoisted invariants (the scalar entry-point branches).
	pol  float64
	wPos bool
	rs   float64
	rd   float64
}

// NewTapeDevice compiles (or fetches the cached program for) the card's
// branch shape and binds a K=1 register file to it.
func NewTapeDevice(p Params, fast bool) *TapeDevice {
	td := &TapeDevice{
		card: p,
		prog: tapeProgramFor(p.GammaB != 0),
		fast: fast,
	}
	td.regs = make([]float64, td.prog.nRegs)
	td.bind()
	return td
}

// bind folds the card into the program's constant slots and the driver's
// hoisted fields. Cheap (a few dozen closure calls), so statistical draws
// re-bind instead of recompiling.
func (td *TapeDevice) bind() {
	p := &td.card
	for _, s := range td.prog.binds {
		td.regs[s.reg] = s.f(p)
	}
	td.pol = p.TypeK.Polarity()
	w := p.Weff()
	td.wPos = w > 0
	if td.wPos {
		td.rs = p.Rs0 / w
		td.rd = p.Rd0 / w
	} else {
		td.rs, td.rd = 0, 0
	}
}

// Card returns the bound parameter card.
func (td *TapeDevice) Card() Params { return td.card }

// Fast reports whether this instance replays with the fastmath kernels.
func (td *TapeDevice) Fast() bool { return td.fast }

// Kind implements device.Device.
func (td *TapeDevice) Kind() device.Kind { return td.card.TypeK }

// Width implements device.Device.
func (td *TapeDevice) Width() float64 { return td.card.W }

// Length implements device.Device.
func (td *TapeDevice) Length() float64 { return td.card.Lgdr }

// WithDeltas implements device.Varier: the statistical instance shares the
// compiled program (deltas never perturb GammaB, so the branch shape is
// stable) and re-binds its own register file.
func (td *TapeDevice) WithDeltas(d device.Deltas) device.Device {
	return NewTapeDevice(td.card.ApplyDeltas(d), td.fast)
}

// NewBatch implements device.BatchBuilder: lanes bind to the same program
// at the same fastness (SetLane rejects mismatches so the caller falls back
// to the scalar loop, which still runs this tape).
func (td *TapeDevice) NewBatch(k int) device.BatchDevice {
	return NewTapeBatch(k, td.prog, td.fast)
}

// solveTape is solveSeriesD's driver: the bracket-safeguarded Newton loop
// on g(I) = I − F(I), with F evaluated by replaying the solve segment. On
// return the outCo registers hold the last core evaluation ("last
// evaluation wins", the scalar seriesState semantics) and the result is the
// converged drain current. The caller guarantees wPos.
func (td *TapeDevice) solveTape(vgs, vds, vbs float64) float64 {
	r := td.regs
	pr := td.prog
	r[pr.rVgs], r[pr.rVds], r[pr.rVbs] = vgs, vds, vbs
	r[pr.rI] = 0
	replayTape1(pr.solve, r, td.fast)
	f0, df0 := r[pr.outF], r[pr.outDF]
	id := f0
	if td.rs == 0 && td.rd == 0 {
		return id
	}
	tol := 1e-13 + 1e-9*f0
	if f0 <= tol {
		return id
	}
	a, b := 0.0, f0
	x := f0 / (1 - df0)
	if !(x > a && x < b) {
		x = 0.5 * (a + b)
	}
	for it := 0; it < 60; it++ {
		r[pr.rI] = x
		replayTape1(pr.solve, r, td.fast)
		fx, dfx := r[pr.outF], r[pr.outDF]
		gx := x - fx
		id = fx
		if math.Abs(gx) <= tol || b-a <= 1e-15*(1+b) {
			// Converged: the scalar path returns the root estimate x, not
			// F(x); only 60-round exhaustion keeps F(x).
			return x
		}
		if gx > 0 {
			b = x
		} else {
			a = x
		}
		xn := x - gx/(1-dfx)
		if !(xn > a && xn < b) {
			xn = 0.5 * (a + b)
		}
		x = xn
	}
	return id
}

// commitCo copies the solve segment's final core evaluation into the tail
// input registers. At K=1 the outCo slots already hold the winning
// evaluation, so the commit is a plain copy.
func (td *TapeDevice) commitCo() {
	for i := 0; i < nCoreSlots; i++ {
		td.regs[td.prog.rCo[i]] = td.regs[td.prog.outCo[i]]
	}
}

// zeroCo clears the tail input registers (the w≤0 path, where solveSeriesD
// returns a zero-value state without evaluating the core).
func (td *TapeDevice) zeroCo() {
	for i := 0; i < nCoreSlots; i++ {
		td.regs[td.prog.rCo[i]] = 0
	}
}

// Eval implements device.Device by replaying the solve segment under the
// driver loop and the values tail for the charge assembly.
func (td *TapeDevice) Eval(vd, vg, vs, vb float64) device.Eval {
	pol := td.pol
	nvd, nvg, nvs, nvb := pol*vd, pol*vg, pol*vs, pol*vb
	swap := false
	if nvd < nvs {
		nvd, nvs = nvs, nvd
		swap = true
	}
	vgs := nvg - nvs
	vds := nvd - nvs
	vbs := nvb - nvs

	var id float64
	if td.wPos {
		id = td.solveTape(vgs, vds, vbs)
		td.commitCo()
	} else {
		// solveSeriesD short-circuits w ≤ 0 to a zero state; the charge
		// tail still assembles the (degenerate-geometry) overlap terms.
		id = 0
		td.zeroCo()
	}

	r := td.regs
	pr := td.prog
	r[pr.rVgs] = vgs
	r[pr.rVgd] = nvg - nvd
	replayTape1(pr.values, r, td.fast)
	q := device.Charges{
		Qg: r[pr.outQg],
		Qd: r[pr.outQd],
		Qs: r[pr.outQs],
		Qb: 0,
	}

	if swap {
		id = -id
		q = q.SwapDS()
	}
	if pol < 0 {
		id = -id
		q = q.Neg()
	}
	return device.Eval{Id: id, Q: q}
}

// EvalDerivs4 implements device.NativeDerivs by replaying the solve segment
// under the driver loop and the derivative tail for the IFT bundle.
func (td *TapeDevice) EvalDerivs4(vd, vg, vs, vb float64) device.Derivs {
	pol := td.pol
	nvd, nvg, nvs, nvb := pol*vd, pol*vg, pol*vs, pol*vb
	swap := false
	if nvd < nvs {
		nvd, nvs = nvs, nvd
		swap = true
	}
	vgs := nvg - nvs
	vds := nvd - nvs
	vbs := nvb - nvs
	vgd := nvg - nvd

	if !td.wPos {
		return device.Derivs{}
	}

	id := td.solveTape(vgs, vds, vbs)
	td.commitCo()

	r := td.regs
	pr := td.prog
	r[pr.rVgs] = vgs
	r[pr.rVgd] = vgd
	replayTape1(pr.derivs, r, td.fast)

	var der device.Derivs
	der.Id = id
	der.Q = device.Charges{
		Qg: r[pr.dQg],
		Qd: r[pr.dQd],
		Qs: r[pr.dQs],
		Qb: 0,
	}
	for t := 0; t < 4; t++ {
		der.GId[t] = r[pr.dGId[t]]
		der.CQ[0][t] = r[pr.dCQ0[t]]
		der.CQ[1][t] = r[pr.dCQ1[t]]
		der.CQ[2][t] = r[pr.dCQ2[t]]
		der.CQ[3][t] = 0
	}

	if swap {
		der = swapDerivs(der)
	}
	if pol < 0 {
		der.Id = -der.Id
		der.Q = der.Q.Neg()
	}
	return der
}
