// Package vsmodel implements the MIT Virtual Source (VS) ultra-compact,
// charge-based MOSFET model of Khakifirooz, Nayfeh and Antoniadis (IEEE TED
// 2009) with the charge partitioning of Wei et al. (IEEE TED 2012) — the
// nominal device model that the DATE 2013 paper "Statistical Modeling with
// the Virtual Source MOSFET Model" extends statistically.
//
// The model computes the drain current as the product of the areal inversion
// charge density at the virtual source, Qixo, and the virtual-source
// injection velocity vxo, blended across operating regions by the empirical
// saturation function Fsat:
//
//	Id = W · Fsat(Vds/Vdsat) · Qixo · vxo                     (paper Eq. 2-3)
//	VT = VT0 − δ(Leff)·Vds (+ body effect)                     (paper Eq. 4)
//
// The statistical hooks required by the paper live here too:
//
//   - DIBL is an explicit function of effective channel length, δ(Leff), so
//     length mismatch modulates both threshold and injection velocity;
//   - ApplyDeltas maps the five independent statistical parameters of paper
//     Table I (ΔVT0, ΔLeff, ΔWeff, Δµ, ΔCinv) onto a perturbed parameter
//     card, propagating Δµ and Δδ(Leff) into Δvxo through paper Eq. (5).
package vsmodel

import (
	"math"

	"vstat/internal/device"
)

// Physical constants / unit conversions.
const (
	// PhiT300 is the thermal voltage kT/q at 300 K, volts.
	PhiT300 = 0.02585

	// CmPerS converts cm/s to m/s.
	CmPerS = 1e-2
	// Cm2PerVs converts cm²/(V·s) to m²/(V·s).
	Cm2PerVs = 1e-4
	// MuFPerCm2 converts µF/cm² to F/m².
	MuFPerCm2 = 1e-2
	// Nm converts nm to m.
	Nm = 1e-9
)

// Params is a Virtual Source model card bound to a geometry. All fields are
// SI. The struct has value semantics: statistical instances are cheap
// perturbed copies.
type Params struct {
	TypeK device.Kind

	// Geometry.
	W    float64 // drawn width, m
	Lgdr float64 // drawn gate length, m
	DLg  float64 // length offset: Leff = Lgdr − DLg, m
	DWg  float64 // width offset: Weff = W − DWg, m

	// DC parameters (the paper's 11-parameter DC set).
	Cinv   float64 // effective gate-to-channel capacitance, F/m²
	VT0    float64 // threshold voltage at Vds=0, nominal Leff, V
	Delta0 float64 // DIBL coefficient at Leff = LRef, V/V
	LDelta float64 // exponential length scale of δ(Leff), m
	LRef   float64 // reference channel length for δ and vxo, m
	N0     float64 // subthreshold ideality factor
	Nd     float64 // punch-through factor: n = N0 + Nd·Vds
	Vxo    float64 // virtual-source injection velocity, m/s
	Mu     float64 // low-field effective mobility, m²/(V·s)
	Rs0    float64 // source access resistance, Ω·m (divide by W)
	Rd0    float64 // drain access resistance, Ω·m
	Beta   float64 // Fsat transition exponent (≈1.8 NMOS, 1.6 PMOS)
	Alpha  float64 // weak/strong inversion transition parameter (≈3.5)
	PhiT   float64 // thermal voltage, V

	// Body effect.
	GammaB float64 // body factor, √V
	PhiB   float64 // surface potential parameter, V

	// Charge / capacitance parameters.
	Cof float64 // gate overlap + outer-fringe capacitance per edge, F/m

	// Statistical velocity coupling, paper Eq. (5)-(6).
	AlphaVel  float64 // power-law index α ≈ 0.5
	GammaVel  float64 // power-law index γ ≈ 0.45
	LambdaMFP float64 // carrier mean free path λ, m
	LCrit     float64 // backscattering critical length ℓ at nominal Leff, m
	SDelta    float64 // ∂vxo/(vxo·∂δ) ≈ 2

	// Deltas actually applied to this instance (kept for inspection).
	Applied device.Deltas
}

// Kind returns the channel polarity.
func (p *Params) Kind() device.Kind { return p.TypeK }

// Width returns the drawn width in meters.
func (p *Params) Width() float64 { return p.W }

// Length returns the drawn gate length in meters.
func (p *Params) Length() float64 { return p.Lgdr }

// Leff returns the effective channel length.
func (p *Params) Leff() float64 { return p.Lgdr - p.DLg }

// Weff returns the effective channel width.
func (p *Params) Weff() float64 { return p.W - p.DWg }

// Delta returns the DIBL coefficient δ(Leff) for the given effective length:
// an exponential roll-up toward short channels,
//
//	δ(L) = Delta0 · exp((LRef − L)/LDelta).
func (p *Params) Delta(leff float64) float64 {
	return p.Delta0 * math.Exp((p.LRef-leff)/p.LDelta)
}

// BallisticEfficiency returns B = λ/(λ+2ℓ), paper Eq. (6).
func (p *Params) BallisticEfficiency() float64 {
	return p.LambdaMFP / (p.LambdaMFP + 2*p.LCrit)
}

// MuVeloCoupling returns the mobility-to-velocity sensitivity factor of
// paper Eq. (5): α + (1−B)(1−α+γ).
func (p *Params) MuVeloCoupling() float64 {
	b := p.BallisticEfficiency()
	return p.AlphaVel + (1-b)*(1-p.AlphaVel+p.GammaVel)
}

// ApplyDeltas returns a perturbed copy of the card implementing the paper's
// statistical parameter mapping: the five independent Gaussian deltas of
// Table I perturb their own parameters directly, and the dependent physical
// responses follow — δ re-evaluates at the new Leff, and vxo shifts per
// Eq. (5) with both the mobility and the Δδ(Leff) contributions.
func (p Params) ApplyDeltas(d device.Deltas) Params {
	leffOld := p.Leff()
	deltaOld := p.Delta(leffOld)

	// Independent statistical parameters (Table I).
	p.VT0 += d.DVT0
	p.DLg -= d.DL // Leff = Lgdr − DLg, so ΔLeff = −ΔDLg
	p.DWg -= d.DW
	p.Cinv += d.DCinv
	muOld := p.Mu
	p.Mu += d.DMu

	// Dependent response: Δvxo/vxo = A_µ·Δµ/µ + S_δ·Δδ (paper Eq. 5).
	deltaNew := p.Delta(p.Leff())
	rel := p.MuVeloCoupling()*(d.DMu/muOld) + p.SDelta*(deltaNew-deltaOld)
	p.Vxo *= 1 + rel

	p.Applied = d
	return p
}

// WithDeltas implements device.Varier, returning an independent statistical
// instance.
func (p *Params) WithDeltas(d device.Deltas) device.Device {
	q := p.ApplyDeltas(d)
	return &q
}

// WithGeometry returns a copy of the card re-targeted to a new drawn W/L.
func (p Params) WithGeometry(w, l float64) Params {
	p.W = w
	p.Lgdr = l
	return p
}

// coreBias computes the intrinsic (post-series-resistance) drain current per
// unit width for an n-equivalent device with source-referred internal
// voltages vgsi, vdsi (vdsi ≥ 0) and body vbsi. It also returns the virtual
// source charge density and the saturation function value for the charge
// model.
func (p *Params) coreBias(vgsi, vdsi, vbsi float64) (idPerW, qixo, fsat float64) {
	leff := p.Leff()
	return p.coreBiasPre(vgsi, vdsi, vbsi, p.Delta(leff), p.Vxo*leff/p.Mu)
}

// coreBiasPre is coreBias with the bias-independent quantities δ(Leff) and
// the strong-inversion saturation voltage precomputed. The values come from
// the derivative-carrying kernel, whose value arithmetic is identical.
func (p *Params) coreBiasPre(vgsi, vdsi, vbsi, delta, vdsats float64) (idPerW, qixo, fsat float64) {
	var co coreOut
	p.coreBiasPreD(vgsi, vdsi, vbsi, delta, vdsats, &co)
	return co.f, co.q, co.s
}

// coreOut bundles one core evaluation with its analytic partial derivatives
// with respect to the internal voltages (vgsi, vdsi, vbsi): f is the drain
// current per unit width, q the virtual-source charge density, s the
// saturation function, and the G/D/B suffixes are ∂/∂vgsi, ∂/∂vdsi, ∂/∂vbsi.
type coreOut struct {
	f, q, s    float64
	fG, fD, fB float64
	qG, qD, qB float64
	sG, sD, sB float64
}

// coreBiasPreD evaluates the core current, charge density and saturation
// function together with their closed-form partials. The derivatives reuse
// the transcendentals of the value computation (the logistic and softplus
// derivatives fall out of the already-computed exponentials, and dFsat/dx =
// Fsat/(x(1+x^β))), so a derivative-carrying evaluation costs the same
// exp/log budget as a plain one — which is what lets the series solver run
// Newton instead of secant and the simulator skip finite differences
// entirely. The value arithmetic is statement-identical to the historical
// coreBiasPre, and the batched SoA kernel (batch.go) replicates this body
// statement for statement: keep the three in sync. The result is written
// into the caller's coreOut in place (the 96-byte struct would otherwise be
// copied twice per solver iteration).
func (p *Params) coreBiasPreD(vgsi, vdsi, vbsi, delta, vdsats float64, co *coreOut) {
	phit := p.PhiT

	// Body-corrected, DIBL-corrected threshold.
	vbsEff := vbsi
	clamped := false
	if max := p.PhiB - 0.05; vbsEff > max {
		vbsEff = max // clamp to keep sqrt real; deep forward body bias is outside model validity
		clamped = true
	}
	vt := p.VT0 - delta*vdsi
	vtD := -delta // ∂vt/∂vdsi (DIBL)
	vtB := 0.0    // ∂vt/∂vbsi (body effect)
	if p.GammaB != 0 {
		sq := math.Sqrt(p.PhiB - vbsEff)
		vt += p.GammaB * (sq - math.Sqrt(p.PhiB))
		if !clamped {
			vtB = -p.GammaB / (2 * sq)
		}
	}

	n := p.N0 + p.Nd*vdsi
	nphit := n * phit
	nphitD := p.Nd * phit // ∂nphit/∂vdsi (punch-through)
	aphit := p.Alpha * phit

	// Inversion transition function FF: →1 in weak inversion, →0 in strong.
	ff, ffp := logisticD((vt - aphit/2 - vgsi) / aphit)
	ffG := ffp * (-1 / aphit)
	ffD := ffp * (vtD / aphit)
	ffB := ffp * (vtB / aphit)

	// Virtual-source charge density (paper's charge expression).
	num := vgsi - (vt - p.Alpha*phit*ff)
	numG := 1 + aphit*ffG
	numD := aphit*ffD - vtD
	numB := aphit*ffB - vtB
	arg := num / nphit
	sp, spp := softplusD(arg)
	co.q = p.Cinv * nphit * sp
	cspp := p.Cinv * nphit * spp
	co.qG = cspp * (numG / nphit)
	co.qD = p.Cinv*nphitD*sp + cspp*((numD-arg*nphitD)/nphit)
	co.qB = cspp * (numB / nphit)

	// Saturation voltage blends the strong-inversion value vxo·Leff/µ with
	// the thermal value φt in weak inversion.
	vdsat := vdsats*(1-ff) + phit*ff
	vdsatP := phit - vdsats // d vdsat / d ff

	// Saturation function Fsat (paper Eq. 3), written with explicit
	// exp/log so the two pow calls collapse to one exp+log pair each.
	x := vdsi / vdsat
	if x > 0 {
		t := math.Exp(p.Beta * math.Log(x))
		co.s = x * math.Exp(-math.Log1p(t)/p.Beta)
		dfdx := co.s / (x * (1 + t))
		co.sG = dfdx * (-(x * vdsatP * ffG) / vdsat)
		co.sD = dfdx * ((1 - x*vdsatP*ffD) / vdsat)
		co.sB = dfdx * (-(x * vdsatP * ffB) / vdsat)
	} else {
		// x = 0 happens at vdsi = 0 (e.g. equal node voltages at DC init, or
		// a device pulled fully linear). Fsat(x) = x·(1+x^β)^(−1/β) has the
		// one-sided slope dFsat/dx → 1 there, so the vdsi-derivative must
		// carry the 1/vdsat limit: zeroing it would report gds = 0 for a
		// turned-on device at Vds = 0 and leave its output node's Jacobian
		// row near-singular (Newton then limit-cycles off the solution).
		co.s, co.sG, co.sB = 0, 0, 0
		co.sD = 1 / vdsat
	}

	co.f = co.s * co.q * p.Vxo
	co.fG = (co.sG*co.q + co.s*co.qG) * p.Vxo
	co.fD = (co.sD*co.q + co.s*co.qD) * p.Vxo
	co.fB = (co.sB*co.q + co.s*co.qB) * p.Vxo
}

// seriesState is a converged series-resistance solve: the drain current (A),
// the internal drain-source voltage, and the core evaluation — values plus
// analytic partials with respect to the internal voltages — at that point.
type seriesState struct {
	id   float64
	vdsi float64
	co   coreOut
}

// solveSeries solves the series-resistance feedback self-consistently for an
// n-equivalent device with external source-referred voltages (vds ≥ 0):
// the internal voltages are vgsi = vgs − Id·Rs and vdsi = vds − Id·(Rs+Rd).
// It returns the converged drain current (A), charge density and saturation
// measure at the internal bias.
func (p *Params) solveSeries(vgs, vds, vbs float64) (id, qixo, fsat, vdsi float64) {
	st := p.solveSeriesD(vgs, vds, vbs)
	return st.id, st.co.q, st.co.s, st.vdsi
}

// solveSeriesD is the derivative-carrying series solve. The root of
// g(I) = I − F(I), with F the core current at the degraded internal bias, is
// found by Newton iteration on the analytic slope g' = 1 − dF/dI,
// safeguarded by the bracket [0, F(0)]: F is monotone decreasing in I, so
// g(0) = −F(0) < 0 and g(F(0)) ≥ 0 hold without evaluating the upper
// endpoint, dF/dI ≤ 0 keeps g' ≥ 1 (no division hazards), and any Newton
// step that leaves the bracket falls back to bisection. Unlike plain
// fixed-point iteration the solve stays convergent in the deep linear region
// where gds·(Rs+Rd) exceeds unity. The tolerance is relative (~1e-9 of the
// drive current), far tighter than the simulator's Newton residual
// tolerance, yet the quadratic convergence typically lands it in two
// iterations — three core evaluations against the historical secant's six.
// The batched SoA kernel (batch.go) replicates this iteration statement for
// statement: keep the two in sync.
func (p *Params) solveSeriesD(vgs, vds, vbs float64) seriesState {
	w := p.Weff()
	if w <= 0 {
		return seriesState{vdsi: vds}
	}
	rs := p.Rs0 / w
	rd := p.Rd0 / w
	leff := p.Leff()
	delta := p.Delta(leff)
	vdsats := p.Vxo * leff / p.Mu

	// eval writes the core evaluation straight into st.co ("last evaluation
	// wins", matching the batched kernel's in-place lane slot).
	var st seriesState
	eval := func(i float64) (f, df, vdsiOut float64) {
		vgsi := vgs - i*rs
		vdsiOut = vds - i*(rs+rd)
		dvd := -(rs + rd) // d vdsi / dI, zero once the clamp engages
		if vdsiOut < 0 {
			vdsiOut = 0
			dvd = 0
		}
		vbsi := vbs - i*rs
		p.coreBiasPreD(vgsi, vdsiOut, vbsi, delta, vdsats, &st.co)
		f = w * st.co.f
		df = w * (st.co.fG*(-rs) + st.co.fD*dvd + st.co.fB*(-rs))
		return f, df, vdsiOut
	}

	f0, df0, v0 := eval(0)
	st.id, st.vdsi = f0, v0
	if rs == 0 && rd == 0 {
		return st
	}
	tol := 1e-13 + 1e-9*f0
	if f0 <= tol {
		return st
	}

	a, b := 0.0, f0
	x := f0 / (1 - df0) // Newton step from I=0: g(0) = −F(0), g'(0) = 1 − F'(0)
	if !(x > a && x < b) {
		x = 0.5 * (a + b)
	}
	for it := 0; it < 60; it++ {
		fx, dfx, vx := eval(x)
		gx := x - fx
		st.id, st.vdsi = fx, vx
		if math.Abs(gx) <= tol || b-a <= 1e-15*(1+b) {
			st.id = x
			return st
		}
		if gx > 0 {
			b = x
		} else {
			a = x
		}
		xn := x - gx/(1-dfx)
		if !(xn > a && xn < b) {
			xn = 0.5 * (a + b)
		}
		x = xn
	}
	return st
}

// Eval implements device.Device. It maps PMOS onto the equivalent n-channel
// problem, swaps source and drain for negative Vds (the VS model is written
// source-referenced with Vds ≥ 0), and assembles terminal charges.
func (p *Params) Eval(vd, vg, vs, vb float64) device.Eval {
	pol := p.TypeK.Polarity()
	// n-equivalent absolute voltages.
	nvd, nvg, nvs, nvb := pol*vd, pol*vg, pol*vs, pol*vb

	swap := false
	if nvd < nvs {
		nvd, nvs = nvs, nvd
		swap = true
	}
	vgs := nvg - nvs
	vds := nvd - nvs
	vbs := nvb - nvs

	id, qixo, fsat, _ := p.solveSeries(vgs, vds, vbs)
	q := p.charges(vgs, nvg-nvd, qixo, fsat)

	if swap {
		id = -id
		q = q.SwapDS()
	}
	if pol < 0 {
		id = -id
		q = q.Neg()
	}
	return device.Eval{Id: id, Q: q}
}

// charges assembles the terminal charges for the n-equivalent, unswapped
// orientation. vgd = Vg−Vd is needed for the drain overlap charge.
//
// The intrinsic channel charge uses the virtual-source density Qixo with the
// average-along-the-channel factor (1 − Fsat/3), which interpolates between
// the uniform-channel limit at Vds=0 and the 2/3 saturation limit, and a
// Ward–Dutton-like partition sliding from 50/50 at Vds=0 to the classic
// 40/60 drain/source split in saturation (exact at both endpoints for a
// square-law device).
func (p *Params) charges(vgs, vgd, qixo, fsat float64) device.Charges {
	w := p.Weff()
	leff := p.Leff()
	qInv := w * leff * qixo * (1 - fsat/3)
	qdFrac := 0.5 - fsat/10 // 0.5 → 0.4
	qsFrac := 0.5 + fsat/10 // 0.5 → 0.6

	// Overlap/fringe charges, one per edge.
	covW := p.Cof * w
	qovS := covW * vgs
	qovD := covW * vgd

	return device.Charges{
		Qg: qInv + qovS + qovD,
		Qd: -qdFrac*qInv - qovD,
		Qs: -qsFrac*qInv - qovS,
		Qb: 0,
	}
}

// logistic returns 1/(1+e^{-x}) with guard against overflow.
func logistic(x float64) float64 {
	if x > 40 {
		return 1
	}
	if x < -40 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

// softplus returns ln(1+e^{x}) with guards against overflow/underflow.
func softplus(x float64) float64 {
	if x > 40 {
		return x
	}
	if x < -40 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}

// logisticD returns the logistic value (bit-identical to logistic) together
// with its derivative s·(1−s), reusing the single exponential.
func logisticD(x float64) (s, d float64) {
	if x > 40 {
		return 1, 0
	}
	if x < -40 {
		return 0, 0
	}
	s = 1 / (1 + math.Exp(-x))
	return s, s * (1 - s)
}

// softplusD returns the softplus value (bit-identical to softplus) together
// with its derivative e^x/(1+e^x), reusing the single exponential.
func softplusD(x float64) (sp, d float64) {
	if x > 40 {
		return x, 1
	}
	if x < -40 {
		e := math.Exp(x)
		return e, e
	}
	e := math.Exp(x)
	return math.Log1p(e), e / (1 + e)
}
