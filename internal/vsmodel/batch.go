package vsmodel

import (
	"math"

	"vstat/internal/device"
)

// ParamsBatch is the SoA batch kernel for the VS model: K statistical
// instances of one circuit device position evaluated in lockstep. Per-lane
// parameters (the Pelgrom-varied set plus everything coreBiasPreD reads) are
// laid out as structure-of-arrays, and every sample-invariant subexpression
// of the scalar path — δ(Leff), the strong-inversion saturation voltage
// vxo·Leff/µ, the access resistances Rs0/W and Rd0/W, W·Leff, Cof·W,
// α·φt and √PhiB — is hoisted once per lane at bind time instead of being
// recomputed inside every solver iteration.
//
// Bit-identity contract: every hoisted value is computed by exactly the
// expression (same operations, same associativity) the scalar path uses, and
// the per-lane evaluation sequence — the Newton series solve with its
// analytic slope, the derivative-carrying core evaluations, charge/derivative
// assembly, D/S swap and polarity mapping — replicates Eval / EvalDerivs4
// statement for statement. Lanes interleave only at evaluation-phase
// boundaries; no arithmetic ever mixes lanes. A lane's outputs are therefore
// bit-identical to the scalar path for the same instance and voltages, which
// is what lets the lockstep simulator evict a lane to the scalar engine at
// any point without perturbing results.
type ParamsBatch struct {
	k int

	// Per-lane parameters and hoisted invariants (SoA).
	pol      []float64
	wPos     []bool
	w        []float64
	rs, rd   []float64
	delta    []float64 // δ(Leff)
	vdsats   []float64 // Vxo·Leff/µ
	wl       []float64 // W·Leff
	covW     []float64 // Cof·W
	vt0      []float64
	gammaB   []float64
	phiB     []float64
	sqrtPhiB []float64 // √PhiB
	n0, nd   []float64
	phit     []float64
	alpha    []float64
	aphit    []float64 // α·φt
	cinv     []float64
	beta     []float64
	vxo      []float64

	// Per-call scratch: pre-step.
	full, vals []bool // lane wants full derivs / values only
	swap       []bool
	vgs, vds   []float64
	vbs, vgd   []float64

	// Series-solve state: bracket, current Newton trial, tolerance, and the
	// converged per-lane result — the root current plus the last core
	// evaluation with its analytic partials (the scalar seriesState).
	sDone  []bool
	sA, sB []float64
	sX     []float64
	sTol   []float64
	curID  []float64
	cCo    []coreOut
}

// NewBatch implements device.BatchBuilder: the prototype's parameter card
// supplies the kernel, each lane is bound later via SetLane.
func (p *Params) NewBatch(k int) device.BatchDevice { return NewParamsBatch(k) }

// NewParamsBatch allocates a K-lane VS batch kernel with all scratch
// preallocated, so EvalDerivsBatch never allocates.
func NewParamsBatch(k int) *ParamsBatch {
	pb := &ParamsBatch{k: k}
	fs := [][]*[]float64{
		{&pb.pol, &pb.w, &pb.rs, &pb.rd, &pb.delta, &pb.vdsats, &pb.wl, &pb.covW},
		{&pb.vt0, &pb.gammaB, &pb.phiB, &pb.sqrtPhiB, &pb.n0, &pb.nd, &pb.phit},
		{&pb.alpha, &pb.aphit, &pb.cinv, &pb.beta, &pb.vxo},
		{&pb.vgs, &pb.vds, &pb.vbs, &pb.vgd},
		{&pb.sA, &pb.sB, &pb.sX, &pb.sTol, &pb.curID},
	}
	for _, group := range fs {
		for _, f := range group {
			*f = make([]float64, k)
		}
	}
	pb.wPos = make([]bool, k)
	pb.full = make([]bool, k)
	pb.vals = make([]bool, k)
	pb.swap = make([]bool, k)
	pb.sDone = make([]bool, k)
	pb.cCo = make([]coreOut, k)
	return pb
}

// Lanes returns the lane capacity.
func (pb *ParamsBatch) Lanes() int { return pb.k }

// SetLane binds lane l to a VS instance, hoisting its sample-invariant
// subexpressions. Non-VS devices report false so the caller can fall back
// to a scalar-loop batch.
func (pb *ParamsBatch) SetLane(l int, d device.Device) bool {
	p, ok := d.(*Params)
	if !ok {
		return false
	}
	w := p.Weff()
	leff := p.Leff()
	pb.pol[l] = p.TypeK.Polarity()
	pb.wPos[l] = w > 0
	pb.w[l] = w
	if w > 0 {
		pb.rs[l] = p.Rs0 / w
		pb.rd[l] = p.Rd0 / w
	} else {
		pb.rs[l], pb.rd[l] = 0, 0
	}
	pb.delta[l] = p.Delta(leff)
	pb.vdsats[l] = p.Vxo * leff / p.Mu
	pb.wl[l] = w * leff
	pb.covW[l] = p.Cof * w
	pb.vt0[l] = p.VT0
	pb.gammaB[l] = p.GammaB
	pb.phiB[l] = p.PhiB
	pb.sqrtPhiB[l] = math.Sqrt(p.PhiB)
	pb.n0[l] = p.N0
	pb.nd[l] = p.Nd
	pb.phit[l] = p.PhiT
	pb.alpha[l] = p.Alpha
	pb.aphit[l] = p.Alpha * p.PhiT
	pb.cinv[l] = p.Cinv
	pb.beta[l] = p.Beta
	pb.vxo[l] = p.Vxo
	return true
}

// coreD replicates coreBiasPreD for lane l, reading the SoA parameter
// arrays and writing into the caller's coreOut (in place: the 96-byte
// struct would otherwise be copied twice per solver iteration). Every
// arithmetic expression matches the scalar body exactly; α·φt and √PhiB are
// read from the hoisted lanes, which hold the identical products.
func (pb *ParamsBatch) coreD(l int, vgsi, vdsi, vbsi float64, co *coreOut) {
	phit := pb.phit[l]

	vbsEff := vbsi
	clamped := false
	if max := pb.phiB[l] - 0.05; vbsEff > max {
		vbsEff = max
		clamped = true
	}
	vt := pb.vt0[l] - pb.delta[l]*vdsi
	vtD := -pb.delta[l]
	vtB := 0.0
	if pb.gammaB[l] != 0 {
		sq := math.Sqrt(pb.phiB[l] - vbsEff)
		vt += pb.gammaB[l] * (sq - pb.sqrtPhiB[l])
		if !clamped {
			vtB = -pb.gammaB[l] / (2 * sq)
		}
	}

	n := pb.n0[l] + pb.nd[l]*vdsi
	nphit := n * phit
	nphitD := pb.nd[l] * phit
	aphit := pb.aphit[l]

	ff, ffp := logisticD((vt - aphit/2 - vgsi) / aphit)
	ffG := ffp * (-1 / aphit)
	ffD := ffp * (vtD / aphit)
	ffB := ffp * (vtB / aphit)

	num := vgsi - (vt - aphit*ff)
	numG := 1 + aphit*ffG
	numD := aphit*ffD - vtD
	numB := aphit*ffB - vtB
	arg := num / nphit
	sp, spp := softplusD(arg)
	co.q = pb.cinv[l] * nphit * sp
	cspp := pb.cinv[l] * nphit * spp
	co.qG = cspp * (numG / nphit)
	co.qD = pb.cinv[l]*nphitD*sp + cspp*((numD-arg*nphitD)/nphit)
	co.qB = cspp * (numB / nphit)

	vdsat := pb.vdsats[l]*(1-ff) + phit*ff
	vdsatP := phit - pb.vdsats[l]

	x := vdsi / vdsat
	if x > 0 {
		t := math.Exp(pb.beta[l] * math.Log(x))
		co.s = x * math.Exp(-math.Log1p(t)/pb.beta[l])
		dfdx := co.s / (x * (1 + t))
		co.sG = dfdx * (-(x * vdsatP * ffG) / vdsat)
		co.sD = dfdx * ((1 - x*vdsatP*ffD) / vdsat)
		co.sB = dfdx * (-(x * vdsatP * ffB) / vdsat)
	} else {
		// One-sided limit at vdsi = 0, mirroring coreBiasPreD: dFsat/dx → 1,
		// so the vdsi slope keeps its 1/vdsat limit instead of collapsing to
		// zero (a turned-on device at Vds = 0 must still report its linear
		// conductance or the node's Jacobian row goes near-singular).
		co.s, co.sG, co.sB = 0, 0, 0
		co.sD = 1 / vdsat
	}

	co.f = co.s * co.q * pb.vxo[l]
	co.fG = (co.sG*co.q + co.s*co.qG) * pb.vxo[l]
	co.fD = (co.sD*co.q + co.s*co.qD) * pb.vxo[l]
	co.fB = (co.sB*co.q + co.s*co.qB) * pb.vxo[l]
}

// solveEvalD replicates solveSeriesD's inner eval closure for lane l at
// trial current i: the derivative-carrying core evaluation at the degraded
// internal bias — written straight into the lane's converged-state slot
// cCo[l], exactly the "last evaluation wins" semantics of the scalar
// seriesState — plus the drain current and its analytic dF/dI.
func (pb *ParamsBatch) solveEvalD(l int, i float64) (f, df float64) {
	vgsi := pb.vgs[l] - i*pb.rs[l]
	vdsiOut := pb.vds[l] - i*(pb.rs[l]+pb.rd[l])
	dvd := -(pb.rs[l] + pb.rd[l])
	if vdsiOut < 0 {
		vdsiOut = 0
		dvd = 0
	}
	vbsi := pb.vbs[l] - i*pb.rs[l]
	co := &pb.cCo[l]
	pb.coreD(l, vgsi, vdsiOut, vbsi, co)
	f = pb.w[l] * co.f
	df = pb.w[l] * (co.fG*(-pb.rs[l]) + co.fD*dvd + co.fB*(-pb.rs[l]))
	return f, df
}

// solveBatch runs the bracket-safeguarded Newton series solve for every
// active lane in lockstep: each phase (initial evaluation, Newton round)
// loops over lanes so the independent exp/log latency chains overlap, while
// each lane's own evaluation sequence stays identical to the scalar
// solveSeriesD.
func (pb *ParamsBatch) solveBatch() {
	pending := 0
	for l := 0; l < pb.k; l++ {
		pb.sDone[l] = true
		if !pb.full[l] && !pb.vals[l] {
			continue
		}
		if !pb.wPos[l] {
			// solveSeriesD: w <= 0 returns zeros (charges still assemble
			// overlap terms for the values path).
			pb.curID[l], pb.cCo[l] = 0, coreOut{}
			continue
		}
		f0, df0 := pb.solveEvalD(l, 0)
		pb.curID[l] = f0
		if pb.rs[l] == 0 && pb.rd[l] == 0 {
			continue
		}
		tol := 1e-13 + 1e-9*f0
		if f0 <= tol {
			continue
		}
		pb.sTol[l] = tol
		a, b := 0.0, f0
		pb.sA[l], pb.sB[l] = a, b
		// Newton step from I=0: g(0) = −F(0), g'(0) = 1 − F'(0).
		x := f0 / (1 - df0)
		if !(x > a && x < b) {
			x = 0.5 * (a + b)
		}
		pb.sX[l] = x
		pb.sDone[l] = false
		pending++
	}
	if pending == 0 {
		return
	}

	for it := 0; it < 60 && pending > 0; it++ {
		for l := 0; l < pb.k; l++ {
			if pb.sDone[l] {
				continue
			}
			a, b := pb.sA[l], pb.sB[l]
			x := pb.sX[l]
			fx, dfx := pb.solveEvalD(l, x)
			gx := x - fx
			pb.curID[l] = fx
			if math.Abs(gx) <= pb.sTol[l] || b-a <= 1e-15*(1+b) {
				// On convergence the scalar path returns the root estimate
				// x, not F(x); only 60-round exhaustion keeps F(x).
				pb.curID[l] = x
				pb.sDone[l] = true
				pending--
				continue
			}
			if gx > 0 {
				b = x
				pb.sB[l] = x
			} else {
				a = x
				pb.sA[l] = x
			}
			xn := x - gx/(1-dfx)
			if !(xn > a && xn < b) {
				xn = 0.5 * (a + b)
			}
			pb.sX[l] = xn
		}
	}
}

// EvalDerivsBatch implements device.BatchDevice for the VS model.
func (pb *ParamsBatch) EvalDerivsBatch(vd, vg, vs, vb []float64, mode []device.EvalMode, out *device.DerivsBatch) {
	// Pre-step: polarity map, D/S swap and source-referred externals, as in
	// Eval / EvalDerivs4.
	for l := 0; l < pb.k; l++ {
		pb.full[l] = mode[l] == device.EvalFull
		pb.vals[l] = mode[l] == device.EvalValues
		if !pb.full[l] && !pb.vals[l] {
			continue
		}
		if pb.full[l] && !pb.wPos[l] {
			// EvalDerivs4 short-circuits w <= 0 to a zero bundle before
			// any voltage mapping.
			out.SetLaneDerivs(l, device.Derivs{})
			pb.full[l] = false
			continue
		}
		pol := pb.pol[l]
		nvd, nvg, nvs, nvb := pol*vd[l], pol*vg[l], pol*vs[l], pol*vb[l]
		swap := false
		if nvd < nvs {
			nvd, nvs = nvs, nvd
			swap = true
		}
		pb.swap[l] = swap
		pb.vgs[l] = nvg - nvs
		pb.vds[l] = nvd - nvs
		pb.vbs[l] = nvb - nvs
		pb.vgd[l] = nvg - nvd
	}

	// Lockstep series solve for every live lane; the converged evaluations
	// carry the analytic core partials.
	pb.solveBatch()

	// Values-only lanes: assemble terminal charges (Eval tail).
	for l := 0; l < pb.k; l++ {
		if !pb.vals[l] {
			continue
		}
		id := pb.curID[l]
		qixo, fsat := pb.cCo[l].q, pb.cCo[l].s
		// charges(vgs, vgd, qixo, fsat) with W·Leff and Cof·W hoisted.
		qInv := pb.wl[l] * qixo * (1 - fsat/3)
		qdFrac := 0.5 - fsat/10
		qsFrac := 0.5 + fsat/10
		covW := pb.covW[l]
		qovS := covW * pb.vgs[l]
		qovD := covW * pb.vgd[l]
		q := device.Charges{
			Qg: qInv + qovS + qovD,
			Qd: -qdFrac*qInv - qovD,
			Qs: -qsFrac*qInv - qovS,
			Qb: 0,
		}
		if pb.swap[l] {
			id = -id
			q = q.SwapDS()
		}
		if pb.pol[l] < 0 {
			id = -id
			q = q.Neg()
		}
		out.Id[l] = id
		out.Q[0][l], out.Q[1][l], out.Q[2][l], out.Q[3][l] = q.Qd, q.Qg, q.Qs, q.Qb
	}

	// Full lanes: per-lane chain rule and assembly — the scalar EvalDerivs4
	// tail, fed by the solve's converged analytic partials (no extra core
	// evaluations).
	for l := 0; l < pb.k; l++ {
		if !pb.full[l] {
			continue
		}
		w := pb.w[l]
		rs, rd := pb.rs[l], pb.rd[l]
		id := pb.curID[l]
		co := &pb.cCo[l]
		qixo, fsat := co.q, co.s
		vgs, vgd := pb.vgs[l], pb.vgd[l]

		Fg := w * co.fG
		Fd := w * co.fD
		Fb := w * co.fB
		qixoG, qixoD, qixoB := co.qG, co.qD, co.qB
		fsatG, fsatD, fsatB := co.sG, co.sD, co.sB

		den := 1 + Fg*rs + Fd*(rs+rd) + Fb*rs
		iG := Fg / den
		iD := Fd / den
		iB := Fb / den

		dI := [3]float64{iG, iD, iB}
		var dvgsi, dvdsi, dvbsi [3]float64
		for x := 0; x < 3; x++ {
			dvgsi[x] = -rs * dI[x]
			dvdsi[x] = -(rs + rd) * dI[x]
			dvbsi[x] = -rs * dI[x]
		}
		dvgsi[0]++
		dvdsi[1]++
		dvbsi[2]++

		var dQixo, dFsat [3]float64
		for x := 0; x < 3; x++ {
			dQixo[x] = qixoG*dvgsi[x] + qixoD*dvdsi[x] + qixoB*dvbsi[x]
			dFsat[x] = fsatG*dvgsi[x] + fsatD*dvdsi[x] + fsatB*dvbsi[x]
		}

		dvgsT := [4]float64{0, 1, -1, 0}
		dvdsT := [4]float64{1, 0, -1, 0}
		dvbsT := [4]float64{0, 0, -1, 1}
		dvgdT := [4]float64{-1, 1, 0, 0}

		wl := pb.wl[l]
		qInv := wl * qixo * (1 - fsat/3)
		qdFrac := 0.5 - fsat/10
		qsFrac := 0.5 + fsat/10
		covW := pb.covW[l]

		var der device.Derivs
		der.Id = id
		der.Q = device.Charges{
			Qg: qInv + covW*vgs + covW*vgd,
			Qd: -qdFrac*qInv - covW*vgd,
			Qs: -qsFrac*qInv - covW*vgs,
			Qb: 0,
		}

		for t := 0; t < 4; t++ {
			gi := iG*dvgsT[t] + iD*dvdsT[t] + iB*dvbsT[t]
			der.GId[t] = gi
			dq := dQixo[0]*dvgsT[t] + dQixo[1]*dvdsT[t] + dQixo[2]*dvbsT[t]
			df := dFsat[0]*dvgsT[t] + dFsat[1]*dvdsT[t] + dFsat[2]*dvbsT[t]
			dqInv := wl * (dq*(1-fsat/3) - qixo*df/3)
			der.CQ[1][t] = dqInv + covW*(dvgsT[t]+dvgdT[t])
			der.CQ[0][t] = -qdFrac*dqInv + qInv*df/10 - covW*dvgdT[t]
			der.CQ[2][t] = -qsFrac*dqInv - qInv*df/10 - covW*dvgsT[t]
			der.CQ[3][t] = 0
		}

		if pb.swap[l] {
			der = swapDerivs(der)
		}
		if pb.pol[l] < 0 {
			der.Id = -der.Id
			der.Q = der.Q.Neg()
		}
		out.SetLaneDerivs(l, der)
	}
}
