package vsmodel

import "vstat/internal/device"

// Default 40-nm-class parameter cards. The values are representative of the
// bulk CMOS node the paper targets (Vdd = 0.9 V, L = 40 nm): NMOS drive
// current in the 700–800 µA/µm range with Ioff of tens of nA/µm, PMOS at
// roughly 60 % of the NMOS drive. They serve as the starting point for the
// Fig. 1 extraction against the golden model; the extraction refines VT0,
// Cinv, vxo, µ, δ and Rs.

// NMOS40 returns the nominal 40-nm NMOS card at drawn width w (meters).
func NMOS40(w float64) Params {
	return Params{
		TypeK: device.NMOS,
		W:     w,
		Lgdr:  40 * Nm,
		DLg:   5 * Nm,
		DWg:   0,

		Cinv:   1.55 * MuFPerCm2,
		VT0:    0.445,
		Delta0: 0.125,
		LDelta: 16 * Nm,
		LRef:   35 * Nm,
		N0:     1.35,
		Nd:     0.08,
		Vxo:    1.15e7 * CmPerS,
		Mu:     250 * Cm2PerVs,
		Rs0:    90e-6,
		Rd0:    90e-6,
		Beta:   1.8,
		Alpha:  3.5,
		PhiT:   PhiT300,

		GammaB: 0.2,
		PhiB:   0.9,

		Cof: 0.15e-9, // 0.15 fF/µm per edge

		AlphaVel:  0.5,
		GammaVel:  0.45,
		LambdaMFP: 11 * Nm,
		LCrit:     10 * Nm,
		SDelta:    2.0,
	}
}

// PMOS40 returns the nominal 40-nm PMOS card at drawn width w (meters).
// Parameters are expressed in the n-equivalent space (positive VT0); the
// evaluator maps polarities.
func PMOS40(w float64) Params {
	return Params{
		TypeK: device.PMOS,
		W:     w,
		Lgdr:  40 * Nm,
		DLg:   5 * Nm,
		DWg:   0,

		Cinv:   1.48 * MuFPerCm2,
		VT0:    0.425,
		Delta0: 0.14,
		LDelta: 16 * Nm,
		LRef:   35 * Nm,
		N0:     1.4,
		Nd:     0.08,
		Vxo:    0.72e7 * CmPerS,
		Mu:     140 * Cm2PerVs,
		Rs0:    110e-6,
		Rd0:    110e-6,
		Beta:   1.6,
		Alpha:  3.5,
		PhiT:   PhiT300,

		GammaB: 0.2,
		PhiB:   0.9,

		Cof: 0.15e-9,

		AlphaVel:  0.5,
		GammaVel:  0.45,
		LambdaMFP: 9 * Nm,
		LCrit:     10 * Nm,
		SDelta:    2.0,
	}
}

// Card returns the nominal card for the given polarity and drawn width.
func Card(k device.Kind, w float64) Params {
	if k == device.PMOS {
		return PMOS40(w)
	}
	return NMOS40(w)
}
