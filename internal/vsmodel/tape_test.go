package vsmodel

import (
	"math"
	"math/rand"
	"testing"

	"vstat/internal/device"
)

// tapeInstance draws a perturbed VS instance wrapped in the exact tape
// backend, alongside its scalar twin.
func tapeInstance(rng *rand.Rand, pmos, fast bool) (*TapeDevice, *Params) {
	var base Params
	if pmos {
		base = PMOS40(600e-9)
	} else {
		base = NMOS40(600e-9)
	}
	d := device.Deltas{
		DVT0:  rng.NormFloat64() * 0.03,
		DL:    rng.NormFloat64() * 2e-9,
		DW:    rng.NormFloat64() * 10e-9,
		DMu:   rng.NormFloat64() * 0.002,
		DCinv: rng.NormFloat64() * 0.0005,
	}
	p := base.ApplyDeltas(d)
	return NewTapeDevice(p, fast), &p
}

// The exact tape backend must reproduce the scalar Eval / EvalDerivs4 paths
// bit for bit: randomized bias sweep across polarities, plus the edge biases
// that exercise every branch the tape converts to selects or driver logic —
// Vds = 0 (the Fsat one-sided limit), D/S swap, the vbs clamp region, deep
// subthreshold (logistic/softplus clamps), zero access resistance, w ≤ 0,
// and GammaB = 0 (the other compiled program variant).
func TestTapeExactBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(20130318))
	check := func(td *TapeDevice, p *Params, vd, vg, vs, vb float64, tag string) {
		t.Helper()
		re := p.Eval(vd, vg, vs, vb)
		ge := td.Eval(vd, vg, vs, vb)
		if ge != re {
			t.Fatalf("%s: Eval(%g,%g,%g,%g)\n tape %+v\n ref  %+v", tag, vd, vg, vs, vb, ge, re)
		}
		rd := p.EvalDerivs4(vd, vg, vs, vb)
		gd := td.EvalDerivs4(vd, vg, vs, vb)
		if gd != rd {
			t.Fatalf("%s: EvalDerivs4(%g,%g,%g,%g)\n tape %+v\n ref  %+v", tag, vd, vg, vs, vb, gd, rd)
		}
	}

	for round := 0; round < 400; round++ {
		td, p := tapeInstance(rng, rng.Intn(2) == 1, false)
		vd := rng.Float64()*1.8 - 0.45
		vg := rng.Float64()*1.4 - 0.3
		vs := rng.Float64() * 0.9
		vb := rng.Float64()*0.4 - 0.2
		check(td, p, vd, vg, vs, vb, "sweep")
		check(td, p, vs, vg, vs, vb, "vds0")     // Vds = 0 exactly
		check(td, p, vs-0.3, vg, vs, vb, "swap") // forced D/S swap
		check(td, p, vd, vg, vs, 1.2, "vbsclamp")
		check(td, p, vd, -1.5, vs, vb, "subthreshold")
	}

	// Zero access resistance (the rs=rd=0 early return skips the bracket
	// loop entirely).
	{
		base := NMOS40(600e-9)
		base.Rs0, base.Rd0 = 0, 0
		td := NewTapeDevice(base, false)
		check(td, &base, 0.9, 0.7, 0, 0, "rs0rd0")
	}

	// Degenerate geometry: w ≤ 0 short-circuits the solve but still
	// assembles (degenerate) overlap charges in Eval.
	{
		base := NMOS40(600e-9)
		base.DWg = base.W + 1e-9
		td := NewTapeDevice(base, false)
		check(td, &base, 0.9, 0.7, 0, 0, "wneg")
	}

	// GammaB = 0 selects the body-less program variant.
	{
		base := PMOS40(400e-9)
		base.GammaB = 0
		td := NewTapeDevice(base, false)
		for i := 0; i < 50; i++ {
			vd := rng.Float64()*1.8 - 0.9
			vg := rng.Float64()*1.8 - 0.9
			check(td, &base, vd, vg, 0, 0, "nobody")
		}
	}
}

// The batched tape replay must reproduce the K=1 tape device bit for bit on
// every lane for both backends — and therefore, in exact mode, the scalar
// path too. This is the contract that keeps lockstep lane eviction exact.
func TestTapeBatchBitIdentity(t *testing.T) {
	for _, fast := range []bool{false, true} {
		rng := rand.New(rand.NewSource(99))
		for _, k := range []int{1, 3, 8} {
			proto, _ := tapeInstance(rng, false, fast)
			tb := proto.NewBatch(k)
			out := device.NewDerivsBatch(k)
			devs := make([]*TapeDevice, k)
			vd := make([]float64, k)
			vg := make([]float64, k)
			vs := make([]float64, k)
			vb := make([]float64, k)
			mode := make([]device.EvalMode, k)

			for round := 0; round < 40; round++ {
				for l := 0; l < k; l++ {
					devs[l], _ = tapeInstance(rng, rng.Intn(2) == 1, fast)
					if !tb.SetLane(l, devs[l]) {
						// Mixed branch shapes (GammaB) or backends fall back;
						// the fixture cards all carry body effect, so a
						// rejection here is a bug.
						t.Fatalf("fast=%v k=%d: SetLane rejected a matching TapeDevice", fast, k)
					}
					vd[l] = rng.Float64()*1.8 - 0.45
					vg[l] = rng.Float64() * 0.9
					vs[l] = rng.Float64() * 0.9
					vb[l] = rng.Float64()*0.2 - 0.1
					mode[l] = device.EvalMode(rng.Intn(3))
				}
				tb.EvalDerivsBatch(vd, vg, vs, vb, mode, out)
				for l := 0; l < k; l++ {
					switch mode[l] {
					case device.EvalValues:
						ref := devs[l].Eval(vd[l], vg[l], vs[l], vb[l])
						got := device.Eval{Id: out.Id[l],
							Q: device.Charges{Qd: out.Q[0][l], Qg: out.Q[1][l], Qs: out.Q[2][l], Qb: out.Q[3][l]}}
						if got != ref {
							t.Fatalf("fast=%v k=%d lane=%d: values %+v != K=1 %+v", fast, k, l, got, ref)
						}
					case device.EvalFull:
						ref := devs[l].EvalDerivs4(vd[l], vg[l], vs[l], vb[l])
						if got := out.Lane(l); got != ref {
							t.Fatalf("fast=%v k=%d lane=%d: derivs diverge from K=1\n got %+v\n ref %+v",
								fast, k, l, got, ref)
						}
					}
				}
			}
		}
	}
}

// SetLane must reject lanes that cannot share the batch's compiled program
// or backend, sending the caller to the scalar-loop fallback.
func TestTapeBatchLaneRejection(t *testing.T) {
	base := NMOS40(600e-9)
	exact := NewTapeDevice(base, false)
	fast := NewTapeDevice(base, true)
	noBody := base
	noBody.GammaB = 0
	other := NewTapeDevice(noBody, false)

	tb := exact.NewBatch(2)
	if !tb.SetLane(0, NewTapeDevice(base, false)) {
		t.Fatal("SetLane rejected a matching exact TapeDevice")
	}
	if tb.SetLane(0, fast) {
		t.Fatal("SetLane accepted a fast lane into an exact batch")
	}
	if tb.SetLane(0, other) {
		t.Fatal("SetLane accepted a lane of the other program variant")
	}
	if tb.SetLane(0, &base) {
		t.Fatal("SetLane accepted a bare *Params")
	}
}

// Tape evaluation must not allocate per call on either driver.
func TestTapeZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	td, _ := tapeInstance(rng, false, false)
	if a := testing.AllocsPerRun(100, func() {
		td.EvalDerivs4(0.9, 0.7, 0, 0)
		td.Eval(0.9, 0.7, 0, 0)
	}); a != 0 {
		t.Fatalf("TapeDevice eval allocates %.1f per call, want 0", a)
	}

	const k = 8
	tb := td.NewBatch(k).(*TapeBatch)
	out := device.NewDerivsBatch(k)
	vd := make([]float64, k)
	vg := make([]float64, k)
	vs := make([]float64, k)
	vb := make([]float64, k)
	mode := make([]device.EvalMode, k)
	for l := 0; l < k; l++ {
		d, _ := tapeInstance(rng, false, false)
		tb.SetLane(l, d)
		vd[l] = 0.9
		vg[l] = 0.7
		mode[l] = device.EvalFull
	}
	if a := testing.AllocsPerRun(100, func() {
		tb.EvalDerivsBatch(vd, vg, vs, vb, mode, out)
	}); a != 0 {
		t.Fatalf("TapeBatch EvalDerivsBatch allocates %.1f per call, want 0", a)
	}
}

// ulpDiff returns the distance in units-in-the-last-place between two
// finite float64 values (0 when bit-equal).
func ulpDiff(a, b float64) uint64 {
	ab, bb := math.Float64bits(a), math.Float64bits(b)
	// Map to a monotone integer line (two's-complement-style fold of the
	// sign-magnitude float ordering).
	if ab>>63 != 0 {
		ab = ^ab
	} else {
		ab |= 1 << 63
	}
	if bb>>63 != 0 {
		bb = ^bb
	} else {
		bb |= 1 << 63
	}
	if ab > bb {
		return ab - bb
	}
	return bb - ab
}

// The fastmath kernels must stay within their documented ULP budgets of
// libm over the tape's operating ranges, and must match libm's special
// values exactly. The budgets here are the pinned public contract quoted in
// DESIGN.md §14; tightening the kernels is fine, loosening is not.
func TestFastMathULP(t *testing.T) {
	const (
		expBudget   = 4
		logBudget   = 4
		log1pBudget = 8
	)
	rng := rand.New(rand.NewSource(1))

	var worstExp, worstLog, worstL1p uint64
	for i := 0; i < 200000; i++ {
		// exp over the reduction-sensitive core range plus the far tails.
		x := rng.Float64()*100 - 50
		if d := ulpDiff(fastExp(x), math.Exp(x)); d > worstExp {
			worstExp = d
		}
		xw := rng.Float64()*1400 - 700
		if d := ulpDiff(fastExp(xw), math.Exp(xw)); d > worstExp {
			worstExp = d
		}
		// log over magnitudes the model produces (Fsat's x spans tiny
		// vdsi/vdsat ratios through O(10)).
		y := math.Exp(rng.Float64()*60 - 30)
		if d := ulpDiff(fastLog(y), math.Log(y)); d > worstLog {
			worstLog = d
		}
		// log1p over the softplus/Fsat argument range, both signs.
		z := math.Exp(rng.Float64()*80-40) * float64(1-2*rng.Intn(2))
		if z < -1 {
			z = -0.999999
		}
		if d := ulpDiff(fastLog1p(z), math.Log1p(z)); d > worstL1p {
			worstL1p = d
		}
	}
	t.Logf("worst-case ulp: exp=%d log=%d log1p=%d", worstExp, worstLog, worstL1p)
	if worstExp > expBudget {
		t.Errorf("fastExp worst-case %d ulp exceeds budget %d", worstExp, expBudget)
	}
	if worstLog > logBudget {
		t.Errorf("fastLog worst-case %d ulp exceeds budget %d", worstLog, logBudget)
	}
	if worstL1p > log1pBudget {
		t.Errorf("fastLog1p worst-case %d ulp exceeds budget %d", worstL1p, log1pBudget)
	}

	// Special values must match libm exactly.
	inf := math.Inf(1)
	specials := []struct {
		name     string
		got, ref float64
	}{
		{"exp(NaN)", fastExp(math.NaN()), math.Exp(math.NaN())},
		{"exp(+Inf)", fastExp(inf), math.Exp(inf)},
		{"exp(-Inf)", fastExp(-inf), math.Exp(-inf)},
		{"exp(800)", fastExp(800), math.Exp(800)},
		{"exp(-800)", fastExp(-800), math.Exp(-800)},
		{"exp(0)", fastExp(0), 1},
		{"log(NaN)", fastLog(math.NaN()), math.Log(math.NaN())},
		{"log(+Inf)", fastLog(inf), math.Log(inf)},
		{"log(0)", fastLog(0), math.Log(0)},
		{"log(-1)", fastLog(-1), math.Log(-1)},
		{"log(1)", fastLog(1), 0},
		{"log1p(NaN)", fastLog1p(math.NaN()), math.Log1p(math.NaN())},
		{"log1p(+Inf)", fastLog1p(inf), math.Log1p(inf)},
		{"log1p(-1)", fastLog1p(-1), math.Log1p(-1)},
		{"log1p(-2)", fastLog1p(-2), math.Log1p(-2)},
		{"log1p(0)", fastLog1p(0), 0},
	}
	for _, s := range specials {
		same := math.Float64bits(s.got) == math.Float64bits(s.ref) ||
			(math.IsNaN(s.got) && math.IsNaN(s.ref))
		if !same {
			t.Errorf("%s = %g, libm %g", s.name, s.got, s.ref)
		}
	}

	// Subnormal inputs to log must prescale, not collapse. The reference is
	// reconstructed from the normalized value rather than math.Log: Go's
	// amd64 math.Log assembly returns ln(2^-1023) for any subnormal input,
	// so it cannot anchor this check. (Subnormal arguments sit outside the
	// model's operating range either way — the tape only takes log of
	// vdsi/vdsat ratios.)
	tiny := math.Float64frombits(1 << 10) // 2^-1064
	ref := math.Log(tiny*0x1p54) - 54*math.Ln2
	if got := fastLog(tiny); math.Abs(got-ref) > 1e-10 {
		t.Errorf("fastLog(subnormal) = %v, want %v", got, ref)
	}
}

// ForKernel and the kernel knob round-trip.
func TestKernelSelection(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want Kernel
		ok   bool
	}{
		{"", KernelAuto, true},
		{"auto", KernelAuto, true},
		{"direct", KernelDirect, true},
		{"tape", KernelTape, true},
		{"tape-fast", KernelTapeFast, true},
		{"nope", KernelAuto, false},
	} {
		k, err := ParseKernel(tc.s)
		if (err == nil) != tc.ok || k != tc.want {
			t.Errorf("ParseKernel(%q) = %v, %v; want %v, ok=%v", tc.s, k, err, tc.want, tc.ok)
		}
	}

	p := NMOS40(600e-9)
	if _, ok := ForKernel(p, KernelDirect).(*Params); !ok {
		t.Error("KernelDirect should yield *Params")
	}
	if td, ok := ForKernel(p, KernelTape).(*TapeDevice); !ok || td.Fast() {
		t.Error("KernelTape should yield an exact TapeDevice")
	}
	if td, ok := ForKernel(p, KernelTapeFast).(*TapeDevice); !ok || !td.Fast() {
		t.Error("KernelTapeFast should yield a fast TapeDevice")
	}

	// The tape backends keep the statistical seam: WithDeltas must stay on
	// the same backend and share the compiled program.
	td := ForKernel(p, KernelTape).(*TapeDevice)
	vd := td.WithDeltas(device.Deltas{DVT0: 0.01}).(*TapeDevice)
	if vd.prog != td.prog || vd.fast != td.fast {
		t.Error("WithDeltas changed program or backend")
	}
}
