package experiments

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/measure"
	"vstat/internal/montecarlo"
	"vstat/internal/obs"
	"vstat/internal/spice"
)

// batchPhaseState pairs one worker's K-lane bench with its recording
// handle, mirroring vsbench's batched instrumentation wiring.
type batchPhaseState struct {
	b  *circuits.PooledGateBatch
	so *SampleObs
}

// TestBatchedPhaseSelfTimesCoverWall is the batched-engine phase-accounting
// acceptance: under the K-lane lockstep engine — with the Newton budget
// starved so lanes are evicted to the scalar path mid-run — the
// device-eval-batch self-time plus its sibling phases must sum to the run's
// wall time within 10% at workers=1. Eviction re-runs route through the
// scalar phase set, so the disjoint-phases invariant has to hold across the
// lockstep/scalar boundary, not just on the happy path.
func TestBatchedPhaseSelfTimesCoverWall(t *testing.T) {
	if testing.Short() {
		t.Skip("instrumented batched MC in -short")
	}
	enableObs(t)
	reg := obs.NewRegistry()
	mi := NewMCInstr(reg)
	const n, k, maxNewton = 240, 4, 2
	const seed = int64(20130318)
	m := core.DefaultStatVS()
	var bm sync.Mutex
	var benches []*circuits.PooledGateBatch

	start := time.Now()
	_, _, err := montecarlo.MapPooledBatchReportCtx(context.Background(), n, seed, 1, k,
		montecarlo.RunOpts{Policy: montecarlo.SkipUpTo(1.0)},
		func(int) (batchPhaseState, error) {
			b, berr := circuits.NewPooledGateBatch(k, func() (*circuits.PooledGate, error) {
				return circuits.NewPooledInverterFO(3, poolTestVdd, poolTestSizing(), m.Nominal(), false)
			})
			if berr != nil {
				return batchPhaseState{}, berr
			}
			for _, p := range b.Lanes {
				p.Ckt.MaxNewton = maxNewton // starve Newton: forces lockstep evictions
			}
			so := mi.NewWorker()
			b.SetObs(so.Scope())
			bm.Lock()
			benches = append(benches, b)
			bm.Unlock()
			return batchPhaseState{b: b, so: so}, nil
		},
		func(st batchPhaseState, idxs []int, rngs []*rand.Rand, vals []float64, errs []error) {
			b, so := st.b, st.so
			sc := so.Scope()
			sc.Enter(obs.PhaseRestamp)
			for j, idx := range idxs {
				b.SetLaneSample(j, idx)
				b.Restat(j, so.Factory(m.Statistical(rngs[j])))
			}
			sc.Exit()
			outs := b.TransientBatch(len(idxs), gateTranStop, gateTranStep)
			sc.Enter(obs.PhaseMeasure)
			for j := range idxs {
				if outs[j].Err != nil {
					errs[j] = outs[j].Err
					continue
				}
				p := b.Lanes[j]
				vals[j], errs[j] = measure.PairDelay(&p.Res, p.In, p.Out, poolTestVdd)
			}
			sc.Exit()
			var sum spice.SolverStats
			for _, p := range b.Lanes {
				sum = sum.Add(p.Ckt.Stats())
			}
			so.EndBatch(len(idxs), sum)
		})
	wall := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}

	var evicted int64
	for _, b := range benches {
		evicted += b.Evictions()
	}
	if evicted == 0 {
		t.Fatal("starved run evicted no lanes; the test no longer exercises mid-run eviction")
	}

	snap := reg.Snapshot()
	if be := snap.FindCounter("mc_phase_device-eval-batch_ns_total"); be <= 0 {
		t.Fatal("device-eval-batch phase recorded no self-time under the batched engine")
	}
	// Eviction re-runs land in the scalar phases; both engines' phases must
	// show up in the same disjoint accounting.
	for _, phase := range []string{"assemble-J", "tri-solve"} {
		if v := snap.FindCounter("mc_phase_" + phase + "_ns_total"); v <= 0 {
			t.Fatalf("phase %s recorded no self-time (scalar eviction path uninstrumented?)", phase)
		}
	}
	sum := time.Duration(phaseTotalNS(snap))
	lo := wall - wall/10
	hi := wall + wall/10
	if sum < lo || sum > hi {
		t.Fatalf("phase self-times sum to %v, outside 10%% of wall %v (evicted %d lanes)", sum, wall, evicted)
	}
}
