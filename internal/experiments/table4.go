package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"time"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/measure"
	"vstat/internal/spice"
)

// Table4Row is one benchmark row of paper Table IV.
type Table4Row struct {
	Cell                 string
	Samples              int
	VSTime, GoldenTime   time.Duration
	VSBytes, GoldenBytes uint64 // total heap allocated during the run
	Speedup              float64
	MemRatio             float64
}

// Table4Result is paper Table IV: Monte Carlo runtime and memory of the VS
// model versus the golden model on the same engine. The paper compares
// Verilog-A VS against hand-optimized BSIM4 C code and still sees 4.2×; our
// two models share one implementation language and engine, so the measured
// ratio isolates the pure model-evaluation cost.
type Table4Result struct {
	Rows []Table4Row
}

// table4Counts are the paper's sample counts per row.
var table4Counts = map[string]int{"NAND2": 2000, "DFF": 250, "SRAM": 2000}

// Table4 times the three Monte Carlo workloads for both models,
// single-threaded (Workers=1) so the comparison is a clean per-eval ratio.
func (s *Suite) Table4() (Table4Result, error) {
	var res Table4Result
	type workload struct {
		name string
		run  func(m core.StatModel, n int, seed int64) error
	}
	workloads := []workload{
		{"NAND2", s.table4NAND2},
		{"DFF", s.table4DFF},
		{"SRAM", s.table4SRAM},
	}
	for wi, w := range workloads {
		n := s.Cfg.samples(table4Counts[w.name])
		row := Table4Row{Cell: w.name, Samples: n}
		var err error
		row.VSTime, row.VSBytes, err = timed(func() error {
			return w.run(s.VS, n, s.Cfg.Seed+int64(400+wi))
		})
		if err != nil {
			return res, fmt.Errorf("table4 %s VS: %w", w.name, err)
		}
		row.GoldenTime, row.GoldenBytes, err = timed(func() error {
			return w.run(s.Golden, n, s.Cfg.Seed+int64(400+wi))
		})
		if err != nil {
			return res, fmt.Errorf("table4 %s golden: %w", w.name, err)
		}
		row.Speedup = float64(row.GoldenTime) / float64(row.VSTime)
		if row.VSBytes > 0 {
			row.MemRatio = float64(row.GoldenBytes) / float64(row.VSBytes)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// timed runs fn and reports wall time and heap bytes allocated.
func timed(fn func() error) (time.Duration, uint64, error) {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	err := fn()
	dt := time.Since(t0)
	runtime.ReadMemStats(&m1)
	return dt, m1.TotalAlloc - m0.TotalAlloc, err
}

func (s *Suite) table4NAND2(m core.StatModel, n int, seed int64) error {
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	for i := 0; i < n; i++ {
		rng := table4RNG(seed, i)
		b := circuits.NAND2FO(3, s.Cfg.Vdd, sz, m.Statistical(rng))
		tr, err := b.Ckt.Transient(spice.TranOpts{Stop: gateTranStop, Step: gateTranStep})
		if err != nil {
			return err
		}
		if _, err := measure.PairDelay(tr, b.In, b.Out, s.Cfg.Vdd); err != nil {
			return err
		}
	}
	return nil
}

func (s *Suite) table4DFF(m core.StatModel, n int, seed int64) error {
	opts := measure.DefaultSetupOpts()
	for i := 0; i < n; i++ {
		rng := table4RNG(seed, i)
		ff := circuits.NewDFF(s.Cfg.Vdd, circuits.DefaultDFFSizing(), m.Statistical(rng))
		if _, err := measure.SetupTime(ff, opts); err != nil {
			return err
		}
	}
	return nil
}

func (s *Suite) table4SRAM(m core.StatModel, n int, seed int64) error {
	for i := 0; i < n; i++ {
		rng := table4RNG(seed, i)
		cell := circuits.NewSRAMCell(s.Cfg.Vdd, circuits.DefaultSRAMSizing(), m.Statistical(rng))
		l, r, err := cell.Butterfly(false, butterflyPoints)
		if err != nil {
			return err
		}
		if _, err := measure.SNM(l, r); err != nil {
			return err
		}
	}
	return nil
}

func table4RNG(seed int64, idx int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1000003 + int64(idx)))
}

// String renders the runtime/memory table.
func (r Table4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV: Monte Carlo runtime and allocation, VS vs golden (same engine)\n")
	fmt.Fprintf(&b, "%-8s %8s %12s %12s %9s %12s %12s %9s\n",
		"cell", "samples", "VS time", "golden time", "speedup", "VS alloc", "golden alloc", "memratio")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %8d %12s %12s %8.2fx %9.1f MB %9.1f MB %8.2fx\n",
			row.Cell, row.Samples,
			row.VSTime.Round(time.Millisecond), row.GoldenTime.Round(time.Millisecond),
			row.Speedup,
			float64(row.VSBytes)/1e6, float64(row.GoldenBytes)/1e6, row.MemRatio)
	}
	fmt.Fprintf(&b, "  (paper: 4.2x speedup, 8.7x memory for Verilog-A VS vs BSIM4 C code)\n")
	return b.String()
}
