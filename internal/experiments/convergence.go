package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"vstat/internal/bpv"
	"vstat/internal/device"
	"vstat/internal/montecarlo"
	"vstat/internal/stats"
)

// ExtNConvRow is one sample-count point of the extraction-convergence study.
type ExtNConvRow struct {
	N          int
	Alpha1Mean float64 // mean extracted α1 over repeats, paper units
	Alpha1RSD  float64 // relative std dev of α1 across repeats
	Alpha2RSD  float64
}

// ExtNConvResult justifies the paper's "sample sizes are more than 1000"
// remark: the repeat-to-repeat scatter of the extracted coefficients
// shrinks like 1/√N and crosses the few-percent level around N≈1000.
type ExtNConvResult struct {
	Repeats int
	Rows    []ExtNConvRow
}

// ExtNConv re-runs the NMOS BPV extraction at several Monte Carlo sample
// counts, several independent repeats each, and reports coefficient
// stability. Device-level only, so it is cheap even at N=3000.
func (s *Suite) ExtNConv() (ExtNConvResult, error) {
	const repeats = 8
	res := ExtNConvResult{Repeats: repeats}
	tg := bpv.Targets{Vdd: s.Cfg.Vdd}
	for _, n := range []int{100, 300, 1000, 3000} {
		var a1s, a2s []float64
		for rep := 0; rep < repeats; rep++ {
			var data []bpv.GeometryVariance
			for gi, g := range ExtractionGeometries {
				seed := s.Cfg.Seed + int64(1e6*rep) + int64(31*gi) + int64(n)
				samples, err := montecarlo.Map(n, seed, s.Cfg.Workers,
					func(idx int, rng *rand.Rand) ([]float64, error) {
						return tg.EvalVec(s.Golden.SampleDevice(rng, device.NMOS, g[0], g[1])), nil
					})
				if err != nil {
					return res, err
				}
				data = append(data, bpv.GeometryVariance{
					W: g[0], L: g[1],
					SigmaIdsat:   stats.StdDev(montecarlo.Column(samples, 0)),
					SigmaLogIoff: stats.StdDev(montecarlo.Column(samples, 1)),
					SigmaCgg:     stats.StdDev(montecarlo.Column(samples, 2)),
				})
			}
			al, err := s.ExtractionN.SolveJoint(data)
			if err != nil {
				return res, err
			}
			a1, a2, _, _, _ := al.PaperUnits()
			a1s = append(a1s, a1)
			a2s = append(a2s, a2)
		}
		res.Rows = append(res.Rows, ExtNConvRow{
			N:          n,
			Alpha1Mean: stats.Mean(a1s),
			Alpha1RSD:  stats.StdDev(a1s) / stats.Mean(a1s),
			Alpha2RSD:  stats.StdDev(a2s) / stats.Mean(a2s),
		})
	}
	return res, nil
}

// String renders the convergence table.
func (r ExtNConvResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: BPV coefficient stability vs MC sample count (%d repeats)\n", r.Repeats)
	fmt.Fprintf(&b, "%8s %14s %14s %14s\n", "N", "mean α1", "RSD(α1) %", "RSD(α2) %")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d %14.3f %14.2f %14.2f\n",
			row.N, row.Alpha1Mean, 100*row.Alpha1RSD, 100*row.Alpha2RSD)
	}
	fmt.Fprintf(&b, "  (the paper uses N > 1000; the scatter shrinks ~1/√N)\n")
	return b.String()
}

// ExtInterdieResult exercises paper Eq. (1) on measured data: a synthetic
// total population combining a shared inter-die shift with independent
// within-die mismatch, decomposed back by the quadrature identity.
type ExtInterdieResult struct {
	NDies, NDevPerDie int
	TrueInterSigma    float64 // planted global σ(Idsat) contribution
	MeasuredTotal     float64
	MeasuredWithin    float64
	RecoveredInter    float64
	RecoveredErrPct   float64
}

// ExtInterdie Monte Carlos dies: each die draws one global ΔVT0 shift
// applied to every device, plus per-device local mismatch; Eq. (1) recovers
// the global component from total and within-die σ of Idsat.
func (s *Suite) ExtInterdie() (ExtInterdieResult, error) {
	const (
		nDies   = 60
		nPerDie = 40
	)
	res := ExtInterdieResult{NDies: nDies, NDevPerDie: nPerDie}
	tg := bpv.Targets{Vdd: s.Cfg.Vdd}
	w, l := 600e-9, 40e-9
	globalSigmaVT := 0.010 // 10 mV die-to-die threshold shift

	rng := rand.New(rand.NewSource(s.Cfg.Seed + 5150))
	var all []float64
	var withinVars []float64
	var perDie []float64
	for d := 0; d < nDies; d++ {
		dvtGlobal := rng.NormFloat64() * globalSigmaVT
		perDie = perDie[:0]
		for i := 0; i < nPerDie; i++ {
			deltas := s.Golden.Alphas(device.NMOS).Sample(rng, w, l)
			deltas.DVT0 += dvtGlobal
			card := s.Golden.Card(device.NMOS, w, l)
			idsat, _, _ := tg.Eval(card.WithDeltas(deltas))
			perDie = append(perDie, idsat)
			all = append(all, idsat)
		}
		withinVars = append(withinVars, stats.Variance(perDie))
	}
	res.MeasuredTotal = stats.StdDev(all)
	res.MeasuredWithin = mathSqrt(stats.Mean(withinVars))
	inter, err := interDie(res.MeasuredTotal, res.MeasuredWithin)
	if err != nil {
		return res, err
	}
	res.RecoveredInter = inter

	// Planted truth: global ΔVT0 maps through the golden ∂Idsat/∂VT0.
	h := 1e-3
	base := s.Golden.Card(device.NMOS, w, l)
	iu, _, _ := tg.Eval(base.WithDeltas(device.Deltas{DVT0: h}))
	idn, _, _ := tg.Eval(base.WithDeltas(device.Deltas{DVT0: -h}))
	res.TrueInterSigma = mathAbs((iu-idn)/(2*h)) * globalSigmaVT
	res.RecoveredErrPct = 100 * (res.RecoveredInter - res.TrueInterSigma) / res.TrueInterSigma
	return res, nil
}

// String renders the decomposition check.
func (r ExtInterdieResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: Eq. (1) inter-die recovery (%d dies × %d devices)\n", r.NDies, r.NDevPerDie)
	fmt.Fprintf(&b, "  measured: σ_total %.3g A, σ_within %.3g A\n", r.MeasuredTotal, r.MeasuredWithin)
	fmt.Fprintf(&b, "  recovered σ_inter %.3g A vs planted %.3g A (%.1f %% error)\n",
		r.RecoveredInter, r.TrueInterSigma, r.RecoveredErrPct)
	return b.String()
}
