package experiments

import (
	"context"
	"fmt"
	"math/cmplx"
	"math/rand"
	"strings"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/lifecycle"
	"vstat/internal/montecarlo"
	"vstat/internal/spice"
)

// ExtSRAMACResult is the small-signal SRAM Monte Carlo: per-sample AC gain
// from the bitline into the cell's internal node at a mid-band frequency —
// a read-disturb susceptibility proxy and the "SRAM AC" workload class of
// paper Table IV.
type ExtSRAMACResult struct {
	N          int
	Freq       float64
	Golden, VS DelayDist // |v(qb)/v(bl)| populations (container reuse)
}

// sramACBench is the pooled small-signal testbench: netlist built once per
// worker, device cards re-stamped per sample.
type sramACBench struct {
	c     *spice.Circuit
	rec   circuits.Recorder
	blSrc int
	qb    int
}

// newSRAMACBench nets the READ-biased cell once with nominal devices.
func newSRAMACBench(vdd float64, nominal circuits.Factory) *sramACBench {
	b := &sramACBench{}
	f := b.rec.Wrap(nominal)
	b.c, b.blSrc, b.qb = sramACNetlist(vdd, f)
	return b
}

// ArmSample forwards the per-sample lifecycle context and budget to the
// bench circuit (montecarlo.SampleArmer).
func (b *sramACBench) ArmSample(ctx context.Context, bud lifecycle.Budget) {
	b.c.ArmSample(ctx, bud)
}

// sample re-stamps the bench and measures the coupling magnitude.
func (b *sramACBench) sample(m core.StatModel, rng *rand.Rand, freq float64) (float64, error) {
	b.rec.Restamp(b.c, m.Statistical(rng))
	res, err := b.c.AC(b.blSrc, []float64{freq})
	if err != nil {
		return 0, err
	}
	return cmplx.Abs(res.V(b.qb, 0)), nil
}

// sramACNetlist nets one cell biased in READ condition with q held high,
// returning the circuit, the bitline source index, and the observed node.
// Factory draws happen in AddMOS order (PUL, PDL, PUR, PDR, PGL, PGR).
func sramACNetlist(vdd float64, f circuits.Factory) (c *spice.Circuit, blSrc, qbNode int) {
	sz := circuits.DefaultSRAMSizing()
	c = spice.New()
	vddN := c.Node("vdd")
	q := c.Node("q")
	qb := c.Node("qb")
	wl := c.Node("wl")
	bl := c.Node("bl")
	br := c.Node("br")
	c.AddV("VDD", vddN, spice.Gnd, spice.DC(vdd))
	c.AddV("VWL", wl, spice.Gnd, spice.DC(vdd))
	blSrc = c.AddV("VBL", bl, spice.Gnd, spice.DC(vdd))
	c.AddV("VBR", br, spice.Gnd, spice.DC(vdd))
	c.AddMOS("PUL", q, qb, vddN, vddN, f(pmosKind(), sz.WPU, sz.L))
	c.AddMOS("PDL", q, qb, spice.Gnd, spice.Gnd, f(nmosKind(), sz.WPD, sz.L))
	c.AddMOS("PUR", qb, q, vddN, vddN, f(pmosKind(), sz.WPU, sz.L))
	c.AddMOS("PDR", qb, q, spice.Gnd, spice.Gnd, f(nmosKind(), sz.WPD, sz.L))
	c.AddMOS("PGL", bl, wl, q, spice.Gnd, f(nmosKind(), sz.WPG, sz.L))
	c.AddMOS("PGR", br, wl, qb, spice.Gnd, f(nmosKind(), sz.WPG, sz.L))
	// Weak helper resistor picks the q=1 stable state for the OP.
	c.AddR("RINIT", vddN, q, 1e7)
	return c, blSrc, qb
}

// ExtSRAMAC Monte Carlos the AC coupling with both models.
func (s *Suite) ExtSRAMAC() (ExtSRAMACResult, error) {
	n := s.Cfg.samples(500)
	const freq = 1e9 // mid-band: above leakage corner, below cell poles
	res := ExtSRAMACResult{N: n, Freq: freq}
	run := func(m core.StatModel, name string, seed int64) ([]float64, error) {
		out, rep, err := runPooledMC[*sramACBench, float64](s.Cfg, name, n, seed,
			func(int) (*sramACBench, error) { return newSRAMACBench(s.Cfg.Vdd, m.Nominal()), nil },
			func(b *sramACBench, idx int, rng *rand.Rand) (float64, error) {
				return b.sample(m, rng, freq)
			})
		if err != nil {
			return nil, err
		}
		return montecarlo.Compact(out, rep), nil
	}
	g, err := run(s.Golden, "ext-sramac-golden", s.Cfg.Seed+951)
	if err != nil {
		return res, fmt.Errorf("sram ac golden: %w", err)
	}
	v, err := run(s.VS, "ext-sramac-vs", s.Cfg.Seed+952)
	if err != nil {
		return res, fmt.Errorf("sram ac vs: %w", err)
	}
	res.Golden = newDelayDist(g)
	res.VS = newDelayDist(v)
	return res, nil
}

// String renders the AC coupling summary.
func (r ExtSRAMACResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: SRAM bitline->cell AC coupling at %.0g Hz, N=%d per model\n", r.Freq, r.N)
	fmt.Fprintf(&b, "  golden: mean |v(qb)/v(bl)| %.4f  sd %.4f\n", r.Golden.Mean, r.Golden.SD)
	fmt.Fprintf(&b, "  VS    : mean |v(qb)/v(bl)| %.4f  sd %.4f\n", r.VS.Mean, r.VS.SD)
	return b.String()
}
