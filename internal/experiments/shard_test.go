package experiments

import (
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/montecarlo"
	"vstat/internal/obs"
	"vstat/internal/shard"
)

// TestShardedRunMatchesLocal routes a real INV FO3 delay MC through the
// shard coordinator (Config.ShardSize) and checks the merged results are
// bit-identical to the plain pooled run — values, failure count, report —
// and that the shard counters land in the obs registry.
func TestShardedRunMatchesLocal(t *testing.T) {
	m := core.DefaultStatVS()
	const n = 24
	const seed = int64(777)

	ref, refRep, err := runPooledMC[*circuits.PooledGate, float64](
		Config{Workers: 2, Policy: montecarlo.SkipUpTo(1.0)},
		"shard-ref", n, seed, invBench(m), invDelay(m))
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	sm := shard.NewMetrics(reg)
	cfg := Config{
		Workers:        2,
		Policy:         montecarlo.SkipUpTo(1.0),
		ShardSize:      7, // deliberately not a divisor of 24
		ShardEndpoints: 2,
		shardMetrics:   sm,
	}
	got, gotRep, err := runPooledMC[*circuits.PooledGate, float64](
		cfg, "shard-run", n, seed, invBench(m), invDelay(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("sharded run produced %d samples, local %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("sample %d: sharded %.17g, local %.17g", i, got[i], ref[i])
		}
	}
	if gotRep.Attempted != refRep.Attempted || gotRep.Failed != refRep.Failed {
		t.Fatalf("sharded report %s, local %s", gotRep.String(), refRep.String())
	}
	for k, v := range refRep.Rescued {
		if gotRep.Rescued[k] != v {
			t.Fatalf("rescued[%s] = %d sharded, %d local", k, gotRep.Rescued[k], v)
		}
	}
	var dispatched, committed int64
	for _, c := range reg.Snapshot().Counters {
		switch c.Name {
		case "shard_dispatched_total":
			dispatched = c.Value
		case "shard_committed_total":
			committed = c.Value
		}
	}
	wantShards := int64((n + cfg.ShardSize - 1) / cfg.ShardSize)
	if committed != wantShards || dispatched < wantShards {
		t.Fatalf("shard counters: dispatched=%d committed=%d, want %d shards", dispatched, committed, wantShards)
	}
}

// TestShardedRunJournalResume pins the suite-level dispatch journal: a
// journaled sharded run followed by a Resume run with the same
// ShardJournalDir must restore every shard — zero sample re-executed —
// and still hand back bit-identical results and report.
func TestShardedRunJournalResume(t *testing.T) {
	m := core.DefaultStatVS()
	const n = 24
	const seed = int64(777)
	dir := t.TempDir()
	cfg := Config{
		Workers:         2,
		Policy:          montecarlo.SkipUpTo(1.0),
		ShardSize:       7,
		ShardEndpoints:  2,
		ShardJournalDir: dir,
	}
	ref, refRep, err := runPooledMC[*circuits.PooledGate, float64](
		cfg, "journal-run", n, seed, invBench(m), invDelay(m))
	if err != nil {
		t.Fatal(err)
	}

	cfg.Resume = true
	var reran atomic.Int64
	base := invDelay(m)
	got, gotRep, err := runPooledMC[*circuits.PooledGate, float64](
		cfg, "journal-run", n, seed, invBench(m),
		func(b *circuits.PooledGate, idx int, rng *rand.Rand) (float64, error) {
			reran.Add(1)
			return base(b, idx, rng)
		})
	if err != nil {
		t.Fatal(err)
	}
	if reran.Load() != 0 {
		t.Fatalf("resume re-executed %d samples, want 0 (all shards journaled)", reran.Load())
	}
	if len(got) != len(ref) {
		t.Fatalf("resumed run produced %d samples, original %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("sample %d: resumed %.17g, original %.17g", i, got[i], ref[i])
		}
	}
	if gotRep.Attempted != refRep.Attempted || gotRep.Failed != refRep.Failed {
		t.Fatalf("resumed report %s, original %s", gotRep.String(), refRep.String())
	}
}

// TestShardedRunRejectsCheckpoint pins the ShardSize/CheckpointDir
// exclusivity: shards are the retry unit, a run-level checkpoint would
// double-apply completions.
func TestShardedRunRejectsCheckpoint(t *testing.T) {
	m := core.DefaultStatVS()
	cfg := Config{ShardSize: 8, CheckpointDir: t.TempDir()}
	_, _, err := runPooledMC[*circuits.PooledGate, float64](
		cfg, "shard-ckpt", 16, 1, invBench(m), invDelay(m))
	if err == nil || !strings.Contains(err.Error(), "cannot also checkpoint") {
		t.Fatalf("sharded+checkpointed run not rejected: %v", err)
	}
}
