package experiments

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/device"
	"vstat/internal/lifecycle"
	"vstat/internal/measure"
	"vstat/internal/montecarlo"
)

// invBench builds the worker bench the lifecycle integration tests share.
func invBench(m core.StatModel) func(int) (*circuits.PooledGate, error) {
	return func(int) (*circuits.PooledGate, error) {
		return circuits.NewPooledInverterFO(3, poolTestVdd, poolTestSizing(), m.Nominal(), false)
	}
}

// invDelay is the plain per-sample INV FO3 delay measurement.
func invDelay(m core.StatModel) func(*circuits.PooledGate, int, *rand.Rand) (float64, error) {
	return func(b *circuits.PooledGate, idx int, rng *rand.Rand) (float64, error) {
		b.Restat(m.Statistical(rng))
		res, err := b.Transient(gateTranStop, gateTranStep)
		if err != nil {
			return 0, err
		}
		return measure.PairDelay(res, b.In, b.Out, poolTestVdd)
	}
}

// TestRunPooledMCKillAndResume drives the whole Config-level lifecycle stack
// on real solves: a checkpointed campaign is cancelled mid-run, then resumed
// from disk at a different worker count; the final results must be
// bit-identical to an uninterrupted run. A third, non-Resume run on the same
// checkpoint directory must start fresh (the stale file is replaced, every
// sample re-runs).
func TestRunPooledMCKillAndResume(t *testing.T) {
	m := core.DefaultStatVS()
	const n = 24
	const seed = int64(5150)
	dir := t.TempDir()

	ref, refRep, err := runPooledMC[*circuits.PooledGate, float64](
		Config{Workers: 2}, "resume-mc", n, seed, invBench(m), invDelay(m))
	if err != nil {
		t.Fatal(err)
	}
	if refRep.Failed != 0 {
		t.Fatalf("reference run not clean: %s", refRep.String())
	}

	// Phase 1: kill after 10 completed samples.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var done atomic.Int64
	base := invDelay(m)
	_, _, err = runPooledMC[*circuits.PooledGate, float64](
		Config{Workers: 2, CheckpointDir: dir, Ctx: ctx}, "resume-mc", n, seed,
		invBench(m),
		func(b *circuits.PooledGate, idx int, rng *rand.Rand) (float64, error) {
			d, derr := base(b, idx, rng)
			if done.Add(1) == 10 {
				cancel()
			}
			return d, derr
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("killed run returned %v, want a context.Canceled chain", err)
	}

	// Phase 2: resume from the flushed checkpoint with more workers; only
	// the missing samples may run.
	var rerun atomic.Int64
	out, rep, err := runPooledMC[*circuits.PooledGate, float64](
		Config{Workers: 3, CheckpointDir: dir, Resume: true}, "resume-mc", n, seed,
		invBench(m),
		func(b *circuits.PooledGate, idx int, rng *rand.Rand) (float64, error) {
			rerun.Add(1)
			return base(b, idx, rng)
		})
	if err != nil {
		t.Fatal(err)
	}
	if int(rerun.Load()) >= n {
		t.Fatalf("resume re-ran all %d samples — checkpoint not honoured", n)
	}
	if rep.Attempted != n || rep.Succeeded != n {
		t.Fatalf("resumed report %s, want %d/%d", rep.String(), n, n)
	}
	for i := range ref {
		if out[i] != ref[i] {
			t.Fatalf("sample %d = %.17g after kill+resume, uninterrupted %.17g", i, out[i], ref[i])
		}
	}

	// Phase 3: same directory without Resume — a deliberate fresh start.
	var fresh atomic.Int64
	_, _, err = runPooledMC[*circuits.PooledGate, float64](
		Config{Workers: 2, CheckpointDir: dir}, "resume-mc", n, seed,
		invBench(m),
		func(b *circuits.PooledGate, idx int, rng *rand.Rand) (float64, error) {
			fresh.Add(1)
			return base(b, idx, rng)
		})
	if err != nil {
		t.Fatal(err)
	}
	if int(fresh.Load()) != n {
		t.Fatalf("non-Resume run on an existing checkpoint ran %d samples, want all %d",
			fresh.Load(), n)
	}
}

// TestHangSampleReclassifiedWithoutStallingSiblings is the FaultHang
// acceptance run: one sample's devices wedge inside Eval (no iteration
// boundary is ever reached), so only the hang watchdog can catch it. The
// sample must come back as a typed per-sample OverHang failure within the
// configured budget, and every sibling must complete bit-identically to a
// clean run.
func TestHangSampleReclassifiedWithoutStallingSiblings(t *testing.T) {
	m := core.DefaultStatVS()
	const n = 12
	const seed = int64(777)
	const hungIdx = 3

	clean, _, err := runPooledMC[*circuits.PooledGate, float64](
		Config{Workers: 2}, "hang-mc", n, seed, invBench(m), invDelay(m))
	if err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	defer close(release) // let the abandoned goroutine exit at test end
	base := invDelay(m)
	start := time.Now()
	out, rep, err := runPooledMC[*circuits.PooledGate, float64](
		Config{
			Workers:      2,
			Policy:       montecarlo.SkipUpTo(0.25),
			SampleBudget: lifecycle.Budget{Wall: 500 * time.Millisecond},
			HangGrace:    250 * time.Millisecond,
		}, "hang-mc", n, seed,
		invBench(m),
		func(b *circuits.PooledGate, idx int, rng *rand.Rand) (float64, error) {
			if idx != hungIdx {
				return base(b, idx, rng)
			}
			stat := m.Statistical(rng)
			b.Restat(func(k device.Kind, w, l float64) device.Device {
				return &device.FaultCard{Inner: stat(k, w, l), Mode: device.FaultHang, Release: release}
			})
			res, rerr := b.Transient(gateTranStop, gateTranStep)
			if rerr != nil {
				return 0, rerr
			}
			return measure.PairDelay(res, b.In, b.Out, poolTestVdd)
		})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hung sample aborted the run: %v", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("run with one hung sample took %v — watchdog did not fire", elapsed)
	}
	if rep.Failed != 1 || len(rep.Failures) != 1 || rep.Failures[0].Idx != hungIdx {
		t.Fatalf("report %s", rep.String())
	}
	var be *lifecycle.BudgetError
	if !errors.As(rep.Failures[0].Err, &be) || be.Kind != lifecycle.OverHang {
		t.Fatalf("hung sample failed with %v, want an OverHang budget error", rep.Failures[0].Err)
	}
	if rep.Succeeded != n-1 {
		t.Fatalf("siblings did not all complete: %s", rep.String())
	}
	for i := range clean {
		if i == hungIdx {
			continue
		}
		if out[i] != clean[i] {
			t.Fatalf("sample %d = %.17g, clean run %.17g — hang not isolated", i, out[i], clean[i])
		}
	}
}
