package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/device"
	"vstat/internal/measure"
	"vstat/internal/montecarlo"
	"vstat/internal/obs"
	"vstat/internal/spice"
	"vstat/internal/ssta"
	"vstat/internal/stats"
)

// Extension experiments beyond the paper's figures: they exercise the
// capabilities the paper claims for the statistical VS model (parametric
// yield from Fig. 6, SSTA difficulty from Fig. 7, setup AND hold from
// Fig. 8's discussion, and classic corner-model derivation).

// ExtSSTAVddRow is one supply point of the SSTA extension.
type ExtSSTAVddRow struct {
	Vdd        float64
	Paths      int     // parallel reconvergent paths
	Depth      int     // stages per path
	GaussMu    float64 // Gaussian SSTA arrival mean at the sink
	GaussSigma float64
	GaussQ999  float64 // µ + 3.09σ
	MCQ999     float64 // bootstrap MC 99.9% quantile
	TailErrPct float64 // (MC − Gauss)/MC ×100
}

// ExtSSTAResult quantifies how Gaussian SSTA degrades as gate delays turn
// non-Gaussian at low Vdd — the concrete version of the paper's Fig. 7
// remark that SSTA "becomes more difficult".
type ExtSSTAResult struct {
	Rows []ExtSSTAVddRow
}

// ExtSSTA consumes the Fig. 7 per-gate delay populations and propagates a
// MAX-dominated balanced tree (16 reconvergent 5-stage paths) both ways.
// A plain chain would let the central limit theorem wash the per-gate skew
// out; the MAX over parallel paths is where non-Gaussian tails bite SSTA.
func (s *Suite) ExtSSTA(f7 Fig7Result) (ExtSSTAResult, error) {
	const depth = 4 // 2^4 = 16 parallel paths, 5 edges per path
	var out ExtSSTAResult
	for _, col := range f7.Vdds {
		e := ssta.NewEmpirical(col.VS.Samples)
		g, sink := ssta.Balanced(depth, e)
		arr, err := g.PropagateGaussian()
		if err != nil {
			return out, err
		}
		mc, err := g.PropagateMC([]ssta.NodeID{sink}, 20000, s.Cfg.Seed+int64(col.Vdd*1e4))
		if err != nil {
			return out, err
		}
		a := arr[sink]
		q999 := stats.Quantile(mc[sink], 0.999)
		gq := a.Mu + 3.090*a.Sigma
		out.Rows = append(out.Rows, ExtSSTAVddRow{
			Vdd: col.Vdd, Paths: 1 << depth, Depth: depth + 1,
			GaussMu: a.Mu, GaussSigma: a.Sigma,
			GaussQ999: gq, MCQ999: q999,
			TailErrPct: 100 * (q999 - gq) / q999,
		})
	}
	return out, nil
}

// String renders the SSTA comparison.
func (r ExtSSTAResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: Gaussian SSTA vs Monte Carlo, %d reconvergent %d-stage NAND2 paths\n",
		r.Rows[0].Paths, r.Rows[0].Depth)
	fmt.Fprintf(&b, "%8s %12s %10s %14s %14s %12s\n",
		"Vdd (V)", "mean (ps)", "sd (ps)", "Gauss q99.9", "MC q99.9", "tail err %")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8.2f %12.2f %10.2f %11.2f ps %11.2f ps %12.2f\n",
			row.Vdd, row.GaussMu*1e12, row.GaussSigma*1e12,
			row.GaussQ999*1e12, row.MCQ999*1e12, row.TailErrPct)
	}
	fmt.Fprintf(&b, "  (Clark-based Gaussian SSTA misses the MAX-amplified tails of the skewed\n   low-Vdd delays: the concrete form of paper Fig. 7's SSTA warning)\n")
	return b.String()
}

// ExtCornersResult compares derived ±3σ corner delays against Monte Carlo
// quantiles for the INV FO3 bench.
type ExtCornersResult struct {
	N                     int
	TT, FF, SS            float64 // corner delays
	MCQ001, MCMed, MCQ999 float64
	CoveragePct           float64 // fraction of MC inside [FF, SS] corner delays
	Health                Health
}

// ExtCorners runs the corner ablation.
func (s *Suite) ExtCorners() (ExtCornersResult, error) {
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	res := ExtCornersResult{N: s.Cfg.samples(1000)}

	cornerDelay := func(c core.Corner) (float64, error) {
		b := circuits.InverterFO(3, s.Cfg.Vdd, sz, s.VS.CornerFactory(c, 3))
		tr, err := b.Ckt.Transient(spice.TranOpts{Stop: gateTranStop, Step: gateTranStep})
		if err != nil {
			return 0, err
		}
		return measure.PairDelay(tr, b.In, b.Out, s.Cfg.Vdd)
	}
	var err error
	if res.TT, err = cornerDelay(core.TT); err != nil {
		return res, err
	}
	if res.FF, err = cornerDelay(core.FF); err != nil {
		return res, err
	}
	if res.SS, err = cornerDelay(core.SS); err != nil {
		return res, err
	}

	delays, rep, err := pooledDelayMC(s.Cfg, "ext-corners-mc", res.N, s.Cfg.Seed+777,
		s.VS, s.Cfg.Vdd, pooledInvFO3(s.Cfg.Vdd, sz), s.instr)
	res.Health.Merge(rep)
	if err != nil {
		return res, err
	}
	res.MCQ001 = stats.Quantile(delays, 0.001)
	res.MCMed = stats.Median(delays)
	res.MCQ999 = stats.Quantile(delays, 0.999)
	in := 0
	for _, d := range delays {
		if d >= res.FF && d <= res.SS {
			in++
		}
	}
	res.CoveragePct = 100 * float64(in) / float64(len(delays))
	return res, nil
}

// String renders the corner comparison.
func (r ExtCornersResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: derived 3σ corners vs Monte Carlo, INV FO3 delay (N=%d)\n", r.N)
	fmt.Fprintf(&b, "  corners: FF %.2f ps  TT %.2f ps  SS %.2f ps\n", r.FF*1e12, r.TT*1e12, r.SS*1e12)
	fmt.Fprintf(&b, "  MC: q0.1%% %.2f ps  median %.2f ps  q99.9%% %.2f ps\n",
		r.MCQ001*1e12, r.MCMed*1e12, r.MCQ999*1e12)
	fmt.Fprintf(&b, "  MC fraction inside [FF, SS]: %.2f %%\n", r.CoveragePct)
	b.WriteString(healthLine(r.Health))
	return b.String()
}

// ExtYieldResult analyzes the Fig. 6 population: lognormal leakage fit and
// parametric yield under frequency/leakage limits.
type ExtYieldResult struct {
	N           int
	LeakFit     stats.LognormalFit
	LeakKS      float64 // KS distance of leakage to the lognormal fit
	Spread999   float64 // q99.9/q0.1 of the fit
	FreqLimit   float64
	LeakLimit   float64
	YieldVS     float64
	YieldGolden float64
}

// ExtYield fits the VS leakage population and evaluates yield at limits set
// from the golden population (min frequency = golden 5th percentile, max
// leakage = golden 95th percentile), so the two models' yields are directly
// comparable.
func (s *Suite) ExtYield(f6 Fig6Result) ExtYieldResult {
	leakV := make([]float64, len(f6.VS))
	freqV := make([]float64, len(f6.VS))
	for i, p := range f6.VS {
		leakV[i], freqV[i] = p.Leakage, p.Freq
	}
	leakG := make([]float64, len(f6.Golden))
	freqG := make([]float64, len(f6.Golden))
	for i, p := range f6.Golden {
		leakG[i], freqG[i] = p.Leakage, p.Freq
	}
	fit := stats.FitLognormal(leakV)
	res := ExtYieldResult{
		N:         len(f6.VS),
		LeakFit:   fit,
		LeakKS:    stats.KSDistance(leakV, fit.CDF),
		Spread999: fit.SpreadRatio(0.999),
		FreqLimit: stats.Quantile(freqG, 0.05),
		LeakLimit: stats.Quantile(leakG, 0.95),
	}
	res.YieldVS = stats.YieldEstimate(freqV, leakV, res.FreqLimit, res.LeakLimit)
	res.YieldGolden = stats.YieldEstimate(freqG, leakG, res.FreqLimit, res.LeakLimit)
	return res
}

// String renders the yield analysis.
func (r ExtYieldResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: parametric yield from the Fig. 6 population (N=%d)\n", r.N)
	fmt.Fprintf(&b, "  VS leakage lognormal fit: median %.3g A, σ(ln) %.3f, KS %.3f, q99.9/q0.1 spread %.1fx\n",
		r.LeakFit.Median(), r.LeakFit.Sigma, r.LeakKS, r.Spread999)
	fmt.Fprintf(&b, "  limits: freq ≥ %.3g Hz, leakage ≤ %.3g A (golden 5%%/95%% points)\n",
		r.FreqLimit, r.LeakLimit)
	fmt.Fprintf(&b, "  yield: VS %.1f %%, golden %.1f %%\n", 100*r.YieldVS, 100*r.YieldGolden)
	return b.String()
}

// Fig8HoldResult extends Fig. 8 with the hold-time distribution the paper's
// setup/hold discussion covers.
type Fig8HoldResult struct {
	N          int
	Golden, VS DelayDist
	Health     Health
}

// Fig8Hold Monte Carlos the register hold time with both models.
func (s *Suite) Fig8Hold() (Fig8HoldResult, error) {
	n := s.Cfg.samples(250)
	opts := measure.DefaultSetupOpts()
	res := Fig8HoldResult{N: n}
	run := func(m core.StatModel, name string, seed int64) ([]float64, error) {
		out, rep, err := runPooledMC[obsState[*circuits.PooledDFF], float64](s.Cfg, name, n, seed,
			newObsState(s.instr, func() (*circuits.PooledDFF, error) {
				return circuits.NewPooledDFF(s.Cfg.Vdd, circuits.DefaultDFFSizing(), m.Nominal(), s.Cfg.FastMC), nil
			}),
			func(st obsState[*circuits.PooledDFF], idx int, rng *rand.Rand) (float64, error) {
				ff, so := st.B, st.So
				sc := so.Scope()
				ff.Ckt.SetObsSample(idx)
				sc.Enter(obs.PhaseRestamp)
				ff.Restat(so.Factory(m.Statistical(rng)))
				sc.Exit()
				o := opts
				o.Res, o.Fast = &ff.Res, ff.Fast
				sc.Enter(obs.PhaseMeasure)
				th, err := measure.HoldTime(ff.DFF, o)
				sc.Exit()
				so.End(ff.Ckt.Stats())
				return th, err
			})
		res.Health.Merge(rep)
		if err != nil {
			return nil, err
		}
		return montecarlo.Compact(out, rep), nil
	}
	g, err := run(s.Golden, "fig8hold-golden", s.Cfg.Seed+83)
	if err != nil {
		return res, fmt.Errorf("fig8 hold golden: %w", err)
	}
	v, err := run(s.VS, "fig8hold-vs", s.Cfg.Seed+84)
	if err != nil {
		return res, fmt.Errorf("fig8 hold vs: %w", err)
	}
	res.Golden = newDelayDist(g)
	res.VS = newDelayDist(v)
	return res, nil
}

// String renders the hold-time summary.
func (r Fig8HoldResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8 extension: DFF hold time, N=%d per model\n", r.N)
	fmt.Fprintf(&b, "  golden: mean %.2f ps  sd %.2f ps\n", r.Golden.Mean*1e12, r.Golden.SD*1e12)
	fmt.Fprintf(&b, "  VS    : mean %.2f ps  sd %.2f ps\n", r.VS.Mean*1e12, r.VS.SD*1e12)
	b.WriteString(healthLine(r.Health))
	return b.String()
}

// ExtRingResult Monte Carlos a 5-stage ring oscillator frequency — a
// compact silicon-style frequency monitor for the statistical model.
type ExtRingResult struct {
	N          int
	Golden, VS DelayDist // frequencies, Hz (container reuse)
	Health     Health
	_          [0]device.Kind
}

// ExtRing runs the ring-oscillator frequency MC.
func (s *Suite) ExtRing() (ExtRingResult, error) {
	n := s.Cfg.samples(500)
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	res := ExtRingResult{N: n}
	run := func(m core.StatModel, name string, seed int64) ([]float64, error) {
		out, rep, err := runPooledMC[obsState[*circuits.PooledRing], float64](s.Cfg, name, n, seed,
			newObsState(s.instr, func() (*circuits.PooledRing, error) {
				return circuits.NewPooledRing(5, s.Cfg.Vdd, sz, m.Nominal(), s.Cfg.FastMC), nil
			}),
			func(st obsState[*circuits.PooledRing], idx int, rng *rand.Rand) (float64, error) {
				ro, so := st.B, st.So
				sc := so.Scope()
				ro.Ckt.SetObsSample(idx)
				sc.Enter(obs.PhaseRestamp)
				ro.Restat(so.Factory(m.Statistical(rng)))
				sc.Exit()
				// Frequency's transient records itself as solver time inside
				// the measure span; the residual is the frequency extraction.
				sc.Enter(obs.PhaseMeasure)
				f, err := ro.Frequency(1.2e-9, 1.5e-12)
				sc.Exit()
				so.End(ro.Ckt.Stats())
				return f, err
			})
		res.Health.Merge(rep)
		if err != nil {
			return nil, err
		}
		return montecarlo.Compact(out, rep), nil
	}
	g, err := run(s.Golden, "ext-ring-golden", s.Cfg.Seed+901)
	if err != nil {
		return res, fmt.Errorf("ring golden: %w", err)
	}
	v, err := run(s.VS, "ext-ring-vs", s.Cfg.Seed+902)
	if err != nil {
		return res, fmt.Errorf("ring vs: %w", err)
	}
	res.Golden = newDelayDist(g)
	res.VS = newDelayDist(v)
	return res, nil
}

// String renders the ring summary.
func (r ExtRingResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: 5-stage ring oscillator frequency, N=%d per model\n", r.N)
	fmt.Fprintf(&b, "  golden: mean %.3f GHz  sd %.3f GHz\n", r.Golden.Mean/1e9, r.Golden.SD/1e9)
	fmt.Fprintf(&b, "  VS    : mean %.3f GHz  sd %.3f GHz\n", r.VS.Mean/1e9, r.VS.SD/1e9)
	b.WriteString(healthLine(r.Health))
	return b.String()
}
