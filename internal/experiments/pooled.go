package experiments

import (
	"math/rand"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/measure"
	"vstat/internal/montecarlo"
	"vstat/internal/obs"
)

// This file hosts the pooled Monte Carlo plumbing shared by the circuit
// experiments: each worker builds one bench template (netlist, node map,
// solver scratch) from the model's nominal factory, and every sample
// re-stamps the template's device cards from the statistical factory before
// running the measurement. Device draws replay in build order, so the
// per-sample RNG stream — and with it every sampled metric — stays
// bit-identical to the old rebuild-per-sample code for any worker count.

// gateBuilder constructs one pooled gate bench template.
type gateBuilder func(nominal circuits.Factory, fast bool) (*circuits.PooledGate, error)

// pooledInvFO3 returns the INV FO3 builder at the given supply and sizing.
func pooledInvFO3(vdd float64, sz circuits.Sizing) gateBuilder {
	return func(f circuits.Factory, fast bool) (*circuits.PooledGate, error) {
		return circuits.NewPooledInverterFO(3, vdd, sz, f, fast)
	}
}

// pooledNand2FO3 returns the NAND2 FO3 builder at the given supply and
// sizing.
func pooledNand2FO3(vdd float64, sz circuits.Sizing) gateBuilder {
	return func(f circuits.Factory, fast bool) (*circuits.PooledGate, error) {
		return circuits.NewPooledNAND2FO(3, vdd, sz, f, fast)
	}
}

// pooledDelayMC runs an n-sample pair-delay Monte Carlo over per-worker
// pooled benches under cfg's failure policy and lifecycle options
// (context, per-sample budget, hang watchdog, checkpoint named name). The
// returned slice holds only the successful samples (failed ones are
// compacted away and recorded in the report). A live mi attaches
// per-worker phase timing, Newton-work histograms and rescue counters; nil
// runs uninstrumented.
func pooledDelayMC(cfg Config, name string, n int, seed int64,
	m core.StatModel, vdd float64, build gateBuilder, mi *MCInstr) ([]float64, montecarlo.RunReport, error) {
	fast := cfg.FastMC
	out, rep, err := runPooledMC[obsState[*circuits.PooledGate], float64](cfg, name, n, seed,
		newObsState(mi, func() (*circuits.PooledGate, error) { return build(m.Nominal(), fast) }),
		func(st obsState[*circuits.PooledGate], idx int, rng *rand.Rand) (float64, error) {
			b, so := st.B, st.So
			sc := so.Scope()
			b.Ckt.SetObsSample(idx)
			sc.Enter(obs.PhaseRestamp)
			b.Restat(so.Factory(m.Statistical(rng)))
			sc.Exit()
			res, err := b.Transient(gateTranStop, gateTranStep)
			if err != nil {
				so.End(b.Ckt.Stats())
				return 0, err
			}
			sc.Enter(obs.PhaseMeasure)
			d, derr := measure.PairDelay(res, b.In, b.Out, vdd)
			sc.Exit()
			so.End(b.Ckt.Stats())
			return d, derr
		})
	if err != nil {
		return nil, rep, err
	}
	return montecarlo.Compact(out, rep), rep, nil
}
