package experiments

import (
	"math/rand"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/measure"
	"vstat/internal/montecarlo"
)

// This file hosts the pooled Monte Carlo plumbing shared by the circuit
// experiments: each worker builds one bench template (netlist, node map,
// solver scratch) from the model's nominal factory, and every sample
// re-stamps the template's device cards from the statistical factory before
// running the measurement. Device draws replay in build order, so the
// per-sample RNG stream — and with it every sampled metric — stays
// bit-identical to the old rebuild-per-sample code for any worker count.

// gateBuilder constructs one pooled gate bench template.
type gateBuilder func(nominal circuits.Factory, fast bool) (*circuits.PooledGate, error)

// pooledInvFO3 returns the INV FO3 builder at the given supply and sizing.
func pooledInvFO3(vdd float64, sz circuits.Sizing) gateBuilder {
	return func(f circuits.Factory, fast bool) (*circuits.PooledGate, error) {
		return circuits.NewPooledInverterFO(3, vdd, sz, f, fast)
	}
}

// pooledNand2FO3 returns the NAND2 FO3 builder at the given supply and
// sizing.
func pooledNand2FO3(vdd float64, sz circuits.Sizing) gateBuilder {
	return func(f circuits.Factory, fast bool) (*circuits.PooledGate, error) {
		return circuits.NewPooledNAND2FO(3, vdd, sz, f, fast)
	}
}

// pooledDelayMC runs an n-sample pair-delay Monte Carlo over per-worker
// pooled benches under the configured failure policy. The returned slice
// holds only the successful samples (failed ones are compacted away and
// recorded in the report).
func pooledDelayMC(n int, seed int64, workers int, pol montecarlo.Policy,
	m core.StatModel, fast bool, vdd float64, build gateBuilder) ([]float64, montecarlo.RunReport, error) {
	out, rep, err := montecarlo.MapPooledReport(n, seed, workers, pol,
		func(int) (*circuits.PooledGate, error) { return build(m.Nominal(), fast) },
		func(b *circuits.PooledGate, idx int, rng *rand.Rand) (float64, error) {
			b.Restat(m.Statistical(rng))
			res, err := b.Transient(gateTranStop, gateTranStep)
			if err != nil {
				return 0, err
			}
			return measure.PairDelay(res, b.In, b.Out, vdd)
		})
	if err != nil {
		return nil, rep, err
	}
	return montecarlo.Compact(out, rep), rep, nil
}
