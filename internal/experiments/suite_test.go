package experiments

import (
	"math"
	"sync"
	"testing"
)

// testSuite builds one shared small-scale suite for all experiment tests
// (the extraction pipeline is the expensive common prefix).
var (
	suiteOnce sync.Once
	suiteVal  *Suite
	suiteErr  error
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.Scale = 0.05 // tiny MC for tests; full counts exercised by cmd/vsrepro
		cfg.Seed = 7
		suiteVal, suiteErr = NewSuite(cfg)
	})
	if suiteErr != nil {
		t.Fatalf("suite: %v", suiteErr)
	}
	return suiteVal
}

func TestSuitePipelineExtractsSaneAlphas(t *testing.T) {
	s := testSuite(t)
	for _, al := range []struct {
		name       string
		a1, a2, a4 float64
	}{
		{"NMOS", alphasPaper(s, true)[0], alphasPaper(s, true)[1], alphasPaper(s, true)[3]},
		{"PMOS", alphasPaper(s, false)[0], alphasPaper(s, false)[1], alphasPaper(s, false)[3]},
	} {
		// α1 (AVT) for a 40-nm process: 1–6 mV·µm.
		if al.a1 < 1 || al.a1 > 6 {
			t.Fatalf("%s α1=%g V·nm out of physical band", al.name, al.a1)
		}
		// α2 (LER): 1–10 nm.
		if al.a2 < 0.5 || al.a2 > 12 {
			t.Fatalf("%s α2=%g nm out of band", al.name, al.a2)
		}
		if al.a4 <= 0 {
			t.Fatalf("%s α4=%g must be positive", al.name, al.a4)
		}
	}
	// Fit quality carried through the suite.
	if s.FitRepN.RMSRelId > 0.12 || s.FitRepP.RMSRelId > 0.12 {
		t.Fatalf("nominal fits degraded: N=%g P=%g", s.FitRepN.RMSRelId, s.FitRepP.RMSRelId)
	}
}

func alphasPaper(s *Suite, nmos bool) [5]float64 {
	al := s.VS.AlphaN
	if !nmos {
		al = s.VS.AlphaP
	}
	a1, a2, a3, a4, a5 := al.PaperUnits()
	return [5]float64{a1, a2, a3, a4, a5}
}

func TestTable2Renders(t *testing.T) {
	s := testSuite(t)
	out := s.Table2().String()
	if len(out) < 100 {
		t.Fatalf("table2 output too short:\n%s", out)
	}
	if s.Table1().String() == "" {
		t.Fatal("table1 empty")
	}
}

func TestFig1Quality(t *testing.T) {
	s := testSuite(t)
	r := s.Fig1()
	if r.Report.MaxRelIdSat > 0.08 {
		t.Fatalf("Fig1 saturation error %g", r.Report.MaxRelIdSat)
	}
	if len(r.Series.VgGrid) == 0 || r.String() == "" {
		t.Fatal("Fig1 series empty")
	}
}

func TestFig2IndividualVsJoint(t *testing.T) {
	s := testSuite(t)
	r, err := s.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 4 {
		t.Fatalf("Fig2 rows %d", len(r.Rows))
	}
	// The paper reports <10%; cross-model extraction with tiny MC is
	// noisier — assert the solves agree within 35%.
	if m := r.MaxAbsDiff(); math.IsNaN(m) || m > 35 {
		t.Fatalf("Fig2 max diff %g%%", m)
	}
	_ = r.String()
}

func TestFig3Decomposition(t *testing.T) {
	s := testSuite(t)
	r, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		// Total must dominate each component and roughly match golden MC.
		for _, c := range []float64{row.VT0Pct, row.LWPct, row.MuPct, row.CinvPct} {
			if c > row.TotalPct+1e-9 {
				t.Fatalf("component %g exceeds total %g", c, row.TotalPct)
			}
		}
		if row.TotalPct < 0.3*row.GoldenPct || row.TotalPct > 2.5*row.GoldenPct {
			t.Fatalf("W=%g: propagated %g%% vs golden %g%%", row.W, row.TotalPct, row.GoldenPct)
		}
	}
	// Pelgrom: relative spread shrinks with width.
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if first.W < last.W && first.TotalPct <= last.TotalPct {
		t.Fatalf("σ/µ should fall with width: %g%% at %g vs %g%% at %g",
			first.TotalPct, first.W, last.TotalPct, last.W)
	}
	_ = r.String()
}

func TestTable3VSMatchesGolden(t *testing.T) {
	s := testSuite(t)
	r, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 6 {
		t.Fatalf("cells %d", len(r.Cells))
	}
	for _, c := range r.Cells {
		// Headline claim: VS σ tracks golden σ. Small-N MC carries ~15%
		// noise on σ estimates; require factor-of-1.6 agreement here (the
		// full-scale run in EXPERIMENTS.md documents the tight match).
		if c.VSIdsat < c.GoldenIdsat/1.6 || c.VSIdsat > c.GoldenIdsat*1.6 {
			t.Fatalf("%s %v: σIdsat VS %g vs golden %g", c.Name, c.Kind, c.VSIdsat, c.GoldenIdsat)
		}
		if c.VSLogOff < c.GoldenLogOff/2 || c.VSLogOff > c.GoldenLogOff*2 {
			t.Fatalf("%s %v: σlogIoff VS %g vs golden %g", c.Name, c.Kind, c.VSLogOff, c.GoldenLogOff)
		}
	}
	// Pelgrom ordering: wide < medium < short in σ/µ; absolute σ grows
	// with √W: wide σ > short σ.
	if !(r.Cells[0].GoldenIdsat > r.Cells[4].GoldenIdsat) {
		t.Fatalf("absolute σIdsat should grow with width: %+v", r.Cells)
	}
	_ = r.String()
}

func TestEq1Demo(t *testing.T) {
	s := testSuite(t)
	r, err := s.Eq1Demo()
	if err != nil {
		t.Fatal(err)
	}
	// Consistency: total² = within² + inter².
	lhs := r.TotalSigma * r.TotalSigma
	rhs := r.WithinSigma*r.WithinSigma + r.InterSigma*r.InterSigma
	if math.Abs(lhs-rhs) > 1e-12*lhs {
		t.Fatalf("Eq1 inconsistent: %g vs %g", lhs, rhs)
	}
	_ = r.String()
}
