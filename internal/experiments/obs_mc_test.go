package experiments

import (
	"errors"
	"maps"
	"math/rand"
	"testing"
	"time"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/device"
	"vstat/internal/lifecycle"
	"vstat/internal/montecarlo"
	"vstat/internal/obs"
)

// enableObs flips the global observability switch for one test.
func enableObs(t *testing.T) {
	t.Helper()
	obs.SetEnabled(true)
	t.Cleanup(func() { obs.SetEnabled(false) })
}

// phaseTotalNS sums the per-phase wall-time counters of a snapshot.
func phaseTotalNS(snap obs.Snapshot) int64 {
	var sum int64
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		sum += snap.FindCounter("mc_phase_" + p.String() + "_ns_total")
	}
	return sum
}

// TestMCObservabilityAcceptance is the tentpole acceptance run: a
// 1000-sample INV FO3 delay Monte Carlo with instrumentation attached. The
// per-phase self-times must sum to the run's wall time within 10% at
// workers=1 (the phases are disjoint and cover everything but the template
// build), every phase histogram must hold exactly one observation per
// sample, and the sampled delays must be bit-identical to an
// uninstrumented run.
func TestMCObservabilityAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-sample instrumented MC in -short")
	}
	enableObs(t)
	m := core.DefaultStatVS()
	const n = 1000
	const seed = int64(20130318)
	build := pooledInvFO3(poolTestVdd, poolTestSizing())

	plain, _, err := pooledDelayMC(Config{Workers: 4}, "obs-plain", n, seed, m, poolTestVdd, build, nil)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		reg := obs.NewRegistry()
		mi := NewMCInstr(reg)
		start := time.Now()
		got, rep, err := pooledDelayMC(Config{Workers: workers}, "obs-instr", n, seed, m, poolTestVdd, build, mi)
		wall := time.Since(start)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range plain {
			if got[i] != plain[i] {
				t.Fatalf("workers=%d: instrumentation changed sample %d: %.17g vs %.17g",
					workers, i, got[i], plain[i])
			}
		}
		snap := reg.Snapshot()
		if c := snap.FindCounter("mc_samples_total"); c != n {
			t.Fatalf("workers=%d: mc_samples_total = %d, want %d", workers, c, n)
		}
		for p := obs.Phase(0); p < obs.NumPhases; p++ {
			h := snap.Find("mc_phase_" + p.String() + "_ns")
			if h.Count != n {
				t.Fatalf("workers=%d: phase %s histogram holds %d observations, want %d",
					workers, p, h.Count, n)
			}
		}
		if !maps.Equal(RescuedCounters(snap), rep.Rescued) {
			t.Fatalf("workers=%d: registry rescues %v != report %v",
				workers, RescuedCounters(snap), rep.Rescued)
		}
		if workers == 1 {
			sum := time.Duration(phaseTotalNS(snap))
			lo := wall - wall/10
			hi := wall + wall/10
			if sum < lo || sum > hi {
				t.Fatalf("phase self-times sum to %v, outside 10%% of wall %v", sum, wall)
			}
		}
	}
}

// gminFaultFactory wraps the FIRST drawn device in a FaultCard whose fault
// window closes after `until` evaluations: plain Newton exhausts inside the
// window, and a later rescue rung runs past it and recovers the operating
// point. until<=0 keeps the window open forever.
func gminFaultFactory(stat circuits.Factory, until int64, card **device.FaultCard) circuits.Factory {
	done := false
	return func(k device.Kind, w, l float64) device.Device {
		d := stat(k, w, l)
		if done {
			return d
		}
		done = true
		*card = &device.FaultCard{Inner: d, Mode: device.FaultNoConverge, Until: until}
		return *card
	}
}

// TestMCRescueCountersMatchReportExactly is the rescue-attribution
// acceptance: with a fault-injected sample that plain Newton cannot solve
// but the gmin rung can, the registry's per-stage rescue counters must
// equal RunReport.Rescued exactly — for any worker count, and with at
// least one genuinely rescued stage so the equality is not vacuous.
func TestMCRescueCountersMatchReportExactly(t *testing.T) {
	enableObs(t)
	m := core.DefaultStatVS()
	const n = 300
	const seed = int64(2013)
	const faultIdx = 137
	const maxNewton = 20
	sz := poolTestSizing()

	// Calibrate the fault window: find an Until that makes plain Newton
	// exhaust inside the window while a later ladder rung runs past it and
	// rescues. OP always restarts from the zero state, so a window that
	// rescues on a fresh bench rescues identically inside the pooled run
	// (the sample's device draws are replayed from the same RNG stream).
	calibrate := func() int64 {
		for _, until := range []int64{
			int64(maxNewton) + 1, int64(maxNewton) + 5, 2 * int64(maxNewton),
			2*int64(maxNewton) + 10, 3 * int64(maxNewton), 4 * int64(maxNewton),
			6 * int64(maxNewton), 10 * int64(maxNewton),
		} {
			b, err := circuits.NewPooledInverterFO(3, poolTestVdd, sz, m.Nominal(), false)
			if err != nil {
				t.Fatal(err)
			}
			b.Ckt.MaxNewton = maxNewton
			var card *device.FaultCard
			b.Restat(gminFaultFactory(m.Statistical(montecarlo.SampleRNG(seed, faultIdx)), until, &card))
			if _, err := b.Ckt.OP(); err != nil {
				continue
			}
			st := b.Ckt.Stats()
			if st.DCGminRescues+st.DCSourceRescues+st.DCPseudoRescues > 0 {
				return until
			}
			// Converged without rescue work: the window closed inside the
			// plain stage, so it cannot grow a rescue — keep widening.
		}
		t.Fatal("no fault window produced a rescued operating point")
		return 0
	}
	until := calibrate()

	newBench := func() (*circuits.PooledGate, error) {
		return circuits.NewPooledInverterFO(3, poolTestVdd, sz, m.Nominal(), false)
	}

	var firstRescued map[string]int64
	for _, workers := range []int{1, 4} {
		reg := obs.NewRegistry()
		mi := NewMCInstr(reg)
		_, rep, err := montecarlo.MapPooledReport(n, seed, workers, montecarlo.SkipUpTo(0.05),
			newObsState(mi, newBench),
			func(st obsState[*circuits.PooledGate], idx int, rng *rand.Rand) (float64, error) {
				b, so := st.B, st.So
				b.Ckt.SetObsSample(idx)
				stat := m.Statistical(rng)
				if idx == faultIdx {
					saved := b.Ckt.MaxNewton
					b.Ckt.MaxNewton = maxNewton
					defer func() { b.Ckt.MaxNewton = saved }()
					var card *device.FaultCard
					stat = gminFaultFactory(stat, until, &card)
				}
				b.Restat(so.Factory(stat))
				op, err := b.Ckt.OP()
				if err != nil {
					so.End(b.Ckt.Stats())
					return 0, err
				}
				v := op.V(b.Out)
				so.End(b.Ckt.Stats())
				return v, nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var rescued int64
		for _, v := range rep.Rescued {
			rescued += v
		}
		if rescued < 1 {
			t.Fatalf("workers=%d: injected fault was not rescued: %s", workers, rep.String())
		}
		got := RescuedCounters(reg.Snapshot())
		if !maps.Equal(got, rep.Rescued) {
			t.Fatalf("workers=%d: registry rescues %v != report %v", workers, got, rep.Rescued)
		}
		if firstRescued == nil {
			firstRescued = rep.Rescued
		} else if !maps.Equal(firstRescued, rep.Rescued) {
			t.Fatalf("rescue counts vary with worker count: %v vs %v", firstRescued, rep.Rescued)
		}
	}
}

// TestRecordRunLifecycle checks that a run report's budget overruns and
// drained in-flight samples land in the lifecycle counters, and that a
// clean report allocates no shard at all.
func TestRecordRunLifecycle(t *testing.T) {
	enableObs(t)
	reg := obs.NewRegistry()
	mi := NewMCInstr(reg)

	// Clean report: no counters, no shard.
	mi.RecordRunLifecycle(montecarlo.RunReport{Succeeded: 5})
	snap := reg.Snapshot()
	if v := snap.FindCounter("mc_samples_budget_total"); v != 0 {
		t.Fatalf("clean run: budget counter = %d, want 0", v)
	}

	rep := montecarlo.RunReport{
		Interrupted: 2,
		Failures: []montecarlo.SampleFailure{
			{Idx: 1, Err: &lifecycle.BudgetError{Kind: lifecycle.OverWall}},
			{Idx: 3, Err: errors.New("plain failure")},
			{Idx: 7, Err: &lifecycle.BudgetError{Kind: lifecycle.OverHang}},
		},
	}
	mi.RecordRunLifecycle(rep)
	snap = reg.Snapshot()
	if v := snap.FindCounter("mc_samples_budget_total"); v != 2 {
		t.Fatalf("budget counter = %d, want 2", v)
	}
	if v := snap.FindCounter("mc_samples_cancelled_total"); v != 2 {
		t.Fatalf("cancelled counter = %d, want 2", v)
	}

	// A nil handle is a no-op, not a panic.
	var nilMI *MCInstr
	nilMI.RecordRunLifecycle(rep)
}
