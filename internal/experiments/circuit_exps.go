package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/measure"
	"vstat/internal/montecarlo"
	"vstat/internal/obs"
	"vstat/internal/spice"
	"vstat/internal/stats"
)

// gateTranStop is the transient window covering both edges of the input
// pulse for the gate benches.
const gateTranStop = 560e-12

// gateTranStep is the fixed transient step for delay Monte Carlo.
const gateTranStep = 1.5e-12

// invDelaySample builds a fresh mismatched INV FO3 bench and measures its
// pair delay.
func invDelaySample(m core.StatModel, rng *rand.Rand, vdd float64, sz circuits.Sizing) (float64, error) {
	b := circuits.InverterFO(3, vdd, sz, m.Statistical(rng))
	res, err := b.Ckt.Transient(spice.TranOpts{Stop: gateTranStop, Step: gateTranStep})
	if err != nil {
		return 0, err
	}
	return measure.PairDelay(res, b.In, b.Out, vdd)
}

// nandDelaySample measures one NAND2 FO3 pair delay.
func nandDelaySample(m core.StatModel, rng *rand.Rand, vdd float64, sz circuits.Sizing) (float64, error) {
	b := circuits.NAND2FO(3, vdd, sz, m.Statistical(rng))
	res, err := b.Ckt.Transient(spice.TranOpts{Stop: gateTranStop, Step: gateTranStep})
	if err != nil {
		return 0, err
	}
	return measure.PairDelay(res, b.In, b.Out, vdd)
}

// DelayDist summarizes one delay population and its density estimate.
type DelayDist struct {
	Samples  []float64
	Mean, SD float64
	KDEx     []float64
	KDEy     []float64
}

func newDelayDist(samples []float64) DelayDist {
	k := stats.NewKDE(samples)
	x, y := k.Curve(120)
	return DelayDist{
		Samples: samples,
		Mean:    stats.Mean(samples),
		SD:      stats.StdDev(samples),
		KDEx:    x,
		KDEy:    y,
	}
}

// Fig5Size is one sizing column of paper Fig. 5.
type Fig5Size struct {
	Label      string
	Sz         circuits.Sizing
	Golden, VS DelayDist
}

// Fig5Result is paper Fig. 5: INV FO3 delay PDFs for three sizes, both
// models, at Vdd = 0.9 V.
type Fig5Result struct {
	N     int
	Sizes []Fig5Size

	// Health aggregates the Monte Carlo run reports of all six populations.
	Health Health
}

// Fig5Sizings are the paper's 1×/2×/4× inverter sizes (P/N widths).
var Fig5Sizings = []struct {
	Label string
	Sz    circuits.Sizing
}{
	{"P/N 300/150", circuits.Sizing{WP: 300e-9, WN: 150e-9, L: 40e-9}},
	{"P/N 600/300", circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}},
	{"P/N 1200/600", circuits.Sizing{WP: 1200e-9, WN: 600e-9, L: 40e-9}},
}

// Fig5 runs the INV FO3 delay Monte Carlo.
func (s *Suite) Fig5() (Fig5Result, error) {
	n := s.Cfg.samples(2500)
	res := Fig5Result{N: n}
	for si, cfgSz := range Fig5Sizings {
		seed := s.Cfg.Seed + int64(1000*si)
		build := pooledInvFO3(s.Cfg.Vdd, cfgSz.Sz)
		g, gRep, err := pooledDelayMC(s.Cfg, fmt.Sprintf("fig5-golden-%d", si), n, seed, s.Golden, s.Cfg.Vdd, build, s.instr)
		res.Health.Merge(gRep)
		if err != nil {
			return res, fmt.Errorf("fig5 golden %s: %w", cfgSz.Label, err)
		}
		v, vRep, err := pooledDelayMC(s.Cfg, fmt.Sprintf("fig5-vs-%d", si), n, seed+500009, s.VS, s.Cfg.Vdd, build, s.instr)
		res.Health.Merge(vRep)
		if err != nil {
			return res, fmt.Errorf("fig5 vs %s: %w", cfgSz.Label, err)
		}
		res.Sizes = append(res.Sizes, Fig5Size{
			Label: cfgSz.Label, Sz: cfgSz.Sz,
			Golden: newDelayDist(g), VS: newDelayDist(v),
		})
	}
	return res, nil
}

// String renders the Fig. 5 comparison.
func (r Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 5: INV FO3 delay distributions, Vdd=0.9 V, N=%d per model\n", r.N)
	fmt.Fprintf(&b, "%-14s %14s %12s %14s %12s %12s\n",
		"size", "golden mean", "golden sd", "VS mean", "VS sd", "mean diff %")
	for _, sz := range r.Sizes {
		fmt.Fprintf(&b, "%-14s %11.2f ps %9.2f ps %11.2f ps %9.2f ps %12.2f\n",
			sz.Label, sz.Golden.Mean*1e12, sz.Golden.SD*1e12,
			sz.VS.Mean*1e12, sz.VS.SD*1e12,
			100*(sz.VS.Mean-sz.Golden.Mean)/sz.Golden.Mean)
	}
	b.WriteString(healthLine(r.Health))
	return b.String()
}

// Fig6Point is one Monte Carlo sample of the leakage–frequency scatter.
type Fig6Point struct {
	Leakage, Freq float64
}

// Fig6Result is paper Fig. 6: total leakage vs frequency (1/delay) scatter
// for the INV FO3 bench, plus the spread statistics the paper quotes
// (leakage spread ~37×, frequency spread ~45–50 % of mean).
type Fig6Result struct {
	N                                    int
	Golden, VS                           []Fig6Point
	GoldenLeakSpread, VSLeakSpread       float64 // max/min leakage
	GoldenFreqSpreadPct, VSFreqSpreadPct float64 // (max−min)/mean, %
	Health                               Health
}

// Fig6 runs the leakage-frequency Monte Carlo.
func (s *Suite) Fig6() (Fig6Result, error) {
	n := s.Cfg.samples(5000)
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	res := Fig6Result{N: n}

	run := func(m core.StatModel, name string, seed int64) ([]Fig6Point, error) {
		out, rep, err := runPooledMC[obsState[*circuits.PooledGate], Fig6Point](s.Cfg, name, n, seed,
			newObsState(s.instr, func() (*circuits.PooledGate, error) {
				return circuits.NewPooledInverterFO(3, s.Cfg.Vdd, sz, m.Nominal(), s.Cfg.FastMC)
			}),
			func(st obsState[*circuits.PooledGate], idx int, rng *rand.Rand) (Fig6Point, error) {
				b, so := st.B, st.So
				sc := so.Scope()
				b.Ckt.SetObsSample(idx)
				sc.Enter(obs.PhaseRestamp)
				b.Restat(so.Factory(m.Statistical(rng)))
				// The previous sample's leakage measurement left the input
				// source at DC 0; reinstall the bench pulse.
				b.Ckt.SetVSource(b.VinSrc, circuits.DefaultPulse(s.Cfg.Vdd))
				sc.Exit()
				tr, err := b.Transient(gateTranStop, gateTranStep)
				if err != nil {
					so.End(b.Ckt.Stats())
					return Fig6Point{}, err
				}
				sc.Enter(obs.PhaseMeasure)
				d, err := measure.PairDelay(tr, b.In, b.Out, s.Cfg.Vdd)
				sc.Exit()
				if err != nil {
					so.End(b.Ckt.Stats())
					return Fig6Point{}, err
				}
				// Static leakage with the input low.
				b.Ckt.SetVSource(b.VinSrc, spice.DC(0))
				op, err := b.Ckt.OP()
				if err != nil {
					so.End(b.Ckt.Stats())
					return Fig6Point{}, err
				}
				sc.Enter(obs.PhaseMeasure)
				leak := measure.Leakage(op, b.VddSrc)
				sc.Exit()
				so.End(b.Ckt.Stats())
				return Fig6Point{Leakage: leak, Freq: 1 / d}, nil
			})
		res.Health.Merge(rep)
		if err != nil {
			return nil, err
		}
		return montecarlo.Compact(out, rep), nil
	}
	var err error
	res.Golden, err = run(s.Golden, "fig6-golden", s.Cfg.Seed+61)
	if err != nil {
		return res, fmt.Errorf("fig6 golden: %w", err)
	}
	res.VS, err = run(s.VS, "fig6-vs", s.Cfg.Seed+62)
	if err != nil {
		return res, fmt.Errorf("fig6 vs: %w", err)
	}
	spread := func(pts []Fig6Point) (leakX, freqPct float64) {
		minL, maxL := pts[0].Leakage, pts[0].Leakage
		minF, maxF := pts[0].Freq, pts[0].Freq
		var sumF float64
		for _, p := range pts {
			if p.Leakage < minL {
				minL = p.Leakage
			}
			if p.Leakage > maxL {
				maxL = p.Leakage
			}
			if p.Freq < minF {
				minF = p.Freq
			}
			if p.Freq > maxF {
				maxF = p.Freq
			}
			sumF += p.Freq
		}
		return maxL / minL, 100 * (maxF - minF) / (sumF / float64(len(pts)))
	}
	res.GoldenLeakSpread, res.GoldenFreqSpreadPct = spread(res.Golden)
	res.VSLeakSpread, res.VSFreqSpreadPct = spread(res.VS)
	return res, nil
}

// String renders the Fig. 6 spread summary.
func (r Fig6Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6: leakage vs frequency, INV FO3, N=%d per model\n", r.N)
	fmt.Fprintf(&b, "  golden: leakage spread %.1fx, frequency spread %.1f %% of mean\n",
		r.GoldenLeakSpread, r.GoldenFreqSpreadPct)
	fmt.Fprintf(&b, "  VS    : leakage spread %.1fx, frequency spread %.1f %% of mean\n",
		r.VSLeakSpread, r.VSFreqSpreadPct)
	fmt.Fprintf(&b, "  (paper: 37x leakage spread; 45%% / 50%% frequency spread)\n")
	b.WriteString(healthLine(r.Health))
	return b.String()
}

// Fig7Vdd is one supply-voltage column of paper Fig. 7.
type Fig7Vdd struct {
	Vdd        float64
	Golden, VS DelayDist
	// QQ nonlinearity metrics (0 ≈ Gaussian; grows with curvature).
	GoldenQQNL, VSQQNL float64
	// QQ series of the VS population for plotting.
	VSQQ []stats.QQPoint
	// Normality test statistics.
	GoldenAD, VSAD float64
}

// Fig7Result is paper Fig. 7: NAND2 FO3 delay PDFs and QQ plots at
// Vdd ∈ {0.9, 0.7, 0.55} V, showing the non-Gaussian onset at low voltage.
type Fig7Result struct {
	N      int
	Vdds   []Fig7Vdd
	Health Health
}

// Fig7Supplies are the paper's supply points.
var Fig7Supplies = []float64{0.9, 0.7, 0.55}

// Fig7 runs the NAND2 Monte Carlo across supplies.
func (s *Suite) Fig7() (Fig7Result, error) {
	n := s.Cfg.samples(2500)
	sz := circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
	res := Fig7Result{N: n}
	for vi, vdd := range Fig7Supplies {
		seed := s.Cfg.Seed + int64(7000+100*vi)
		build := pooledNand2FO3(vdd, sz)
		g, gRep, err := pooledDelayMC(s.Cfg, fmt.Sprintf("fig7-golden-%d", vi), n, seed, s.Golden, vdd, build, s.instr)
		res.Health.Merge(gRep)
		if err != nil {
			return res, fmt.Errorf("fig7 golden %g V: %w", vdd, err)
		}
		v, vRep, err := pooledDelayMC(s.Cfg, fmt.Sprintf("fig7-vs-%d", vi), n, seed+500009, s.VS, vdd, build, s.instr)
		res.Health.Merge(vRep)
		if err != nil {
			return res, fmt.Errorf("fig7 vs %g V: %w", vdd, err)
		}
		col := Fig7Vdd{
			Vdd:        vdd,
			Golden:     newDelayDist(g),
			VS:         newDelayDist(v),
			GoldenQQNL: stats.QQNonlinearity(g),
			VSQQNL:     stats.QQNonlinearity(v),
			VSQQ:       stats.QQNormal(v),
			GoldenAD:   stats.AndersonDarling(g),
			VSAD:       stats.AndersonDarling(v),
		}
		res.Vdds = append(res.Vdds, col)
	}
	return res, nil
}

// String renders the Fig. 7 columns.
func (r Fig7Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 7: NAND2 FO3 delay distributions vs Vdd, N=%d per model\n", r.N)
	fmt.Fprintf(&b, "%8s %12s %10s %12s %10s %11s %11s %9s %9s\n",
		"Vdd (V)", "golden mean", "golden sd", "VS mean", "VS sd",
		"golden qqNL", "VS qqNL", "gold AD", "VS AD")
	for _, c := range r.Vdds {
		fmt.Fprintf(&b, "%8.2f %9.2f ps %7.2f ps %9.2f ps %7.2f ps %11.4f %11.4f %9.2f %9.2f\n",
			c.Vdd, c.Golden.Mean*1e12, c.Golden.SD*1e12,
			c.VS.Mean*1e12, c.VS.SD*1e12, c.GoldenQQNL, c.VSQQNL, c.GoldenAD, c.VSAD)
	}
	fmt.Fprintf(&b, "  (qqNL and AD grow at low Vdd: the delay turns non-Gaussian, as the paper's QQ plots show)\n")
	b.WriteString(healthLine(r.Health))
	return b.String()
}
