package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/measure"
	"vstat/internal/montecarlo"
	"vstat/internal/obs"
	"vstat/internal/stats"
)

// Fig8Result is paper Fig. 8(c): the setup-time distribution of the
// NMOS-pass master–slave register, 250 Monte Carlo runs per model.
type Fig8Result struct {
	N          int
	Golden, VS DelayDist
	// TrialsPerSample is the bisection cost (the ~20× characterization
	// overhead the paper highlights for register timing).
	TrialsPerSample int
	Health          Health
}

// Fig8 runs the setup-time Monte Carlo.
func (s *Suite) Fig8() (Fig8Result, error) {
	n := s.Cfg.samples(250)
	opts := measure.DefaultSetupOpts()
	res := Fig8Result{N: n}
	// Bisection trials: bracket(2) + log2(range/tol).
	res.TrialsPerSample = 2
	for r := opts.MaxOffset * 1.25; r > opts.Tol; r /= 2 {
		res.TrialsPerSample++
	}
	run := func(m core.StatModel, name string, seed int64) ([]float64, error) {
		out, rep, err := runPooledMC[obsState[*circuits.PooledDFF], float64](s.Cfg, name, n, seed,
			newObsState(s.instr, func() (*circuits.PooledDFF, error) {
				return circuits.NewPooledDFF(s.Cfg.Vdd, circuits.DefaultDFFSizing(), m.Nominal(), s.Cfg.FastMC), nil
			}),
			func(st obsState[*circuits.PooledDFF], idx int, rng *rand.Rand) (float64, error) {
				ff, so := st.B, st.So
				sc := so.Scope()
				ff.Ckt.SetObsSample(idx)
				sc.Enter(obs.PhaseRestamp)
				ff.Restat(so.Factory(m.Statistical(rng)))
				sc.Exit()
				o := opts
				o.Res, o.Fast = &ff.Res, ff.Fast
				// The bisection's transient solves record themselves inside
				// the measure span, pausing it for the solver's share.
				sc.Enter(obs.PhaseMeasure)
				ts, err := measure.SetupTime(ff.DFF, o)
				sc.Exit()
				so.End(ff.Ckt.Stats())
				return ts, err
			})
		res.Health.Merge(rep)
		if err != nil {
			return nil, err
		}
		return montecarlo.Compact(out, rep), nil
	}
	g, err := run(s.Golden, "fig8-golden", s.Cfg.Seed+81)
	if err != nil {
		return res, fmt.Errorf("fig8 golden: %w", err)
	}
	v, err := run(s.VS, "fig8-vs", s.Cfg.Seed+82)
	if err != nil {
		return res, fmt.Errorf("fig8 vs: %w", err)
	}
	res.Golden = newDelayDist(g)
	res.VS = newDelayDist(v)
	return res, nil
}

// String renders the setup-time summary.
func (r Fig8Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8: DFF setup time (NMOS-pass master-slave), N=%d per model\n", r.N)
	fmt.Fprintf(&b, "  golden: mean %.2f ps  sd %.2f ps\n", r.Golden.Mean*1e12, r.Golden.SD*1e12)
	fmt.Fprintf(&b, "  VS    : mean %.2f ps  sd %.2f ps\n", r.VS.Mean*1e12, r.VS.SD*1e12)
	fmt.Fprintf(&b, "  bisection cost: ~%d transients per sample (the paper's ~20x register overhead)\n",
		r.TrialsPerSample)
	b.WriteString(healthLine(r.Health))
	return b.String()
}

// Fig9Result is paper Fig. 9: SRAM butterfly curves (nominal), READ/HOLD
// SNM distributions from both models, and the HOLD-SNM QQ series showing a
// slightly non-Gaussian distribution.
type Fig9Result struct {
	N int
	// Nominal VS butterfly curves for plotting (a: read, d: hold).
	ReadLeft, ReadRight circuits.ButterflyCurve
	HoldLeft, HoldRight circuits.ButterflyCurve

	GoldenRead, VSRead DelayDist // SNM in volts (DelayDist reused as dist container)
	GoldenHold, VSHold DelayDist
	VSHoldQQ           []stats.QQPoint
	VSHoldQQNL         float64
	GoldenHoldQQNL     float64
	Health             Health
}

// butterflyPoints is the DC sweep resolution of the SNM extraction.
const butterflyPoints = 61

// snmSample builds one mismatched cell and extracts both SNMs (the unpooled
// reference path, kept for determinism tests).
func snmSample(m core.StatModel, rng *rand.Rand, vdd float64) (read, hold float64, err error) {
	cell := circuits.NewSRAMCell(vdd, circuits.DefaultSRAMSizing(), m.Statistical(rng))
	rl, rr, err := cell.Butterfly(true, butterflyPoints)
	if err != nil {
		return 0, 0, err
	}
	rres, err := measure.SNM(rl, rr)
	if err != nil {
		return 0, 0, err
	}
	hl, hr, err := cell.Butterfly(false, butterflyPoints)
	if err != nil {
		return 0, 0, err
	}
	hres, err := measure.SNM(hl, hr)
	if err != nil {
		return 0, 0, err
	}
	return rres.SNM, hres.SNM, nil
}

// pooledSNMSample re-stamps the pooled cell and extracts both SNMs with the
// same draw and sweep order as snmSample.
func pooledSNMSample(cell *circuits.PooledSRAM, m core.StatModel, rng *rand.Rand) (read, hold float64, err error) {
	cell.Restat(m.Statistical(rng))
	rl, rr, err := cell.Butterfly(true)
	if err != nil {
		return 0, 0, err
	}
	rres, err := measure.SNM(rl, rr)
	if err != nil {
		return 0, 0, err
	}
	hl, hr, err := cell.Butterfly(false)
	if err != nil {
		return 0, 0, err
	}
	hres, err := measure.SNM(hl, hr)
	if err != nil {
		return 0, 0, err
	}
	return rres.SNM, hres.SNM, nil
}

// pooledSNMSampleObs is pooledSNMSample with phase attribution: the
// re-stamp and SNM extraction are spanned while the butterfly DC sweeps
// record themselves as solver time. The draw/sweep order is unchanged, so
// sampled metrics stay bit-identical to the uninstrumented path.
func pooledSNMSampleObs(cell *circuits.PooledSRAM, m core.StatModel, rng *rand.Rand, so *SampleObs) (read, hold float64, err error) {
	sc := so.Scope()
	sc.Enter(obs.PhaseRestamp)
	cell.Restat(so.Factory(m.Statistical(rng)))
	sc.Exit()
	rl, rr, err := cell.Butterfly(true)
	if err != nil {
		return 0, 0, err
	}
	sc.Enter(obs.PhaseMeasure)
	rres, err := measure.SNM(rl, rr)
	sc.Exit()
	if err != nil {
		return 0, 0, err
	}
	hl, hr, err := cell.Butterfly(false)
	if err != nil {
		return 0, 0, err
	}
	sc.Enter(obs.PhaseMeasure)
	hres, err := measure.SNM(hl, hr)
	sc.Exit()
	if err != nil {
		return 0, 0, err
	}
	return rres.SNM, hres.SNM, nil
}

// Fig9 runs the SRAM SNM Monte Carlo.
func (s *Suite) Fig9() (Fig9Result, error) {
	n := s.Cfg.samples(2500)
	res := Fig9Result{N: n}

	// Nominal butterfly curves (panels a and d).
	nomCell := circuits.NewSRAMCell(s.Cfg.Vdd, circuits.DefaultSRAMSizing(), s.VS.Nominal())
	var err error
	res.ReadLeft, res.ReadRight, err = nomCell.Butterfly(true, butterflyPoints)
	if err != nil {
		return res, err
	}
	res.HoldLeft, res.HoldRight, err = nomCell.Butterfly(false, butterflyPoints)
	if err != nil {
		return res, err
	}

	run := func(m core.StatModel, name string, seed int64) (read, hold []float64, err error) {
		pairs, rep, err := runPooledMC[obsState[*circuits.PooledSRAM], [2]float64](s.Cfg, name, n, seed,
			newObsState(s.instr, func() (*circuits.PooledSRAM, error) {
				return circuits.NewPooledSRAM(s.Cfg.Vdd, circuits.DefaultSRAMSizing(),
					m.Nominal(), butterflyPoints, s.Cfg.FastMC), nil
			}),
			func(st obsState[*circuits.PooledSRAM], idx int, rng *rand.Rand) ([2]float64, error) {
				cell, so := st.B, st.So
				cell.SetObsSample(idx)
				r, h, err := pooledSNMSampleObs(cell, m, rng, so)
				so.End(cell.Stats())
				return [2]float64{r, h}, err
			})
		res.Health.Merge(rep)
		if err != nil {
			return nil, nil, err
		}
		pairs = montecarlo.Compact(pairs, rep)
		read = make([]float64, len(pairs))
		hold = make([]float64, len(pairs))
		for i, p := range pairs {
			read[i], hold[i] = p[0], p[1]
		}
		return read, hold, nil
	}
	gr, gh, err := run(s.Golden, "fig9-golden", s.Cfg.Seed+91)
	if err != nil {
		return res, fmt.Errorf("fig9 golden: %w", err)
	}
	vr, vh, err := run(s.VS, "fig9-vs", s.Cfg.Seed+92)
	if err != nil {
		return res, fmt.Errorf("fig9 vs: %w", err)
	}
	res.GoldenRead = newDelayDist(gr)
	res.VSRead = newDelayDist(vr)
	res.GoldenHold = newDelayDist(gh)
	res.VSHold = newDelayDist(vh)
	res.VSHoldQQ = stats.QQNormal(vh)
	res.VSHoldQQNL = stats.QQNonlinearity(vh)
	res.GoldenHoldQQNL = stats.QQNonlinearity(gh)
	return res, nil
}

// String renders the SNM summary.
func (r Fig9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 9: 6T SRAM static noise margins, N=%d per model\n", r.N)
	fmt.Fprintf(&b, "%-12s %14s %12s %14s %12s\n", "mode", "golden mean", "golden sd", "VS mean", "VS sd")
	fmt.Fprintf(&b, "%-12s %11.1f mV %9.1f mV %11.1f mV %9.1f mV\n",
		"READ", r.GoldenRead.Mean*1e3, r.GoldenRead.SD*1e3, r.VSRead.Mean*1e3, r.VSRead.SD*1e3)
	fmt.Fprintf(&b, "%-12s %11.1f mV %9.1f mV %11.1f mV %9.1f mV\n",
		"HOLD", r.GoldenHold.Mean*1e3, r.GoldenHold.SD*1e3, r.VSHold.Mean*1e3, r.VSHold.SD*1e3)
	fmt.Fprintf(&b, "  HOLD SNM QQ nonlinearity: golden %.4f, VS %.4f (slightly non-Gaussian, Fig. 9f)\n",
		r.GoldenHoldQQNL, r.VSHoldQQNL)
	b.WriteString(healthLine(r.Health))
	return b.String()
}

// Eq1Result demonstrates the within-die / inter-die decomposition of paper
// Eq. (1) on the measured Idsat statistics.
type Eq1Result struct {
	TotalSigma, WithinSigma, InterSigma float64
}

// Eq1Demo composes a synthetic total variation from the measured within-die
// σ(Idsat) of the medium NMOS device plus an assumed inter-die component,
// then recovers the inter-die part via Eq. (1).
func (s *Suite) Eq1Demo() (Eq1Result, error) {
	within := s.MeasuredN[2].SigmaIdsat // W=600 nm row
	inter := 1.5 * within               // global component dominates here
	total := mathHypot(within, inter)
	got, err := interDie(total, within)
	if err != nil {
		return Eq1Result{}, err
	}
	return Eq1Result{TotalSigma: total, WithinSigma: within, InterSigma: got}, nil
}

// String renders the decomposition.
func (r Eq1Result) String() string {
	return fmt.Sprintf(
		"Eq. (1): sigma_total=%.3g A, sigma_within=%.3g A -> sigma_inter=%.3g A\n",
		r.TotalSigma, r.WithinSigma, r.InterSigma)
}
