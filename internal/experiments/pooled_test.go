package experiments

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/measure"
	"vstat/internal/montecarlo"
)

const poolTestVdd = 0.9

func poolTestSizing() circuits.Sizing {
	return circuits.Sizing{WP: 600e-9, WN: 300e-9, L: 40e-9}
}

// TestPooledInvDelayBitIdentical is the pooling determinism contract: the
// pooled engine must reproduce the unpooled rebuild-per-sample delays bit
// for bit, for any worker count.
func TestPooledInvDelayBitIdentical(t *testing.T) {
	m := core.DefaultStatVS()
	const n = 8
	const seed = int64(1234)
	want, err := montecarlo.Map(n, seed, 1, func(idx int, rng *rand.Rand) (float64, error) {
		return invDelaySample(m, rng, poolTestVdd, poolTestSizing())
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		got, _, err := pooledDelayMC(Config{Workers: workers}, "inv-test", n, seed, m, poolTestVdd,
			pooledInvFO3(poolTestVdd, poolTestSizing()), nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: pooled sample %d = %.17g, unpooled %.17g",
					workers, i, got[i], want[i])
			}
		}
	}
}

func TestPooledNandDelayBitIdentical(t *testing.T) {
	m := core.DefaultStatVS()
	const n = 4
	const seed = int64(77)
	want, err := montecarlo.Map(n, seed, 1, func(idx int, rng *rand.Rand) (float64, error) {
		return nandDelaySample(m, rng, poolTestVdd, poolTestSizing())
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		got, _, err := pooledDelayMC(Config{Workers: workers}, "nand-test", n, seed, m, poolTestVdd,
			pooledNand2FO3(poolTestVdd, poolTestSizing()), nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: pooled sample %d = %.17g, unpooled %.17g",
					workers, i, got[i], want[i])
			}
		}
	}
}

// TestPooledSNMBitIdentical covers the bespoke SRAM re-stamp: the pooled
// cell draws its six devices in NewSRAMCell order but installs them through
// an explicit index map into two shared half-circuits.
func TestPooledSNMBitIdentical(t *testing.T) {
	m := core.DefaultStatVS()
	const n = 4
	const seed = int64(99)
	want, err := montecarlo.Map(n, seed, 1, func(idx int, rng *rand.Rand) ([2]float64, error) {
		r, h, err := snmSample(m, rng, poolTestVdd)
		return [2]float64{r, h}, err
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3} {
		got, err := montecarlo.MapPooled(n, seed, workers,
			func(int) (*circuits.PooledSRAM, error) {
				return circuits.NewPooledSRAM(poolTestVdd, circuits.DefaultSRAMSizing(),
					m.Nominal(), butterflyPoints, false), nil
			},
			func(cell *circuits.PooledSRAM, idx int, rng *rand.Rand) ([2]float64, error) {
				r, h, err := pooledSNMSample(cell, m, rng)
				return [2]float64{r, h}, err
			})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: pooled SNM sample %d = %v, unpooled %v",
					workers, i, got[i], want[i])
			}
		}
	}
}

func TestPooledSetupTimeBitIdentical(t *testing.T) {
	m := core.DefaultStatVS()
	const n = 2
	const seed = int64(55)
	opts := measure.DefaultSetupOpts()
	want, err := montecarlo.Map(n, seed, 1, func(idx int, rng *rand.Rand) (float64, error) {
		ff := circuits.NewDFF(poolTestVdd, circuits.DefaultDFFSizing(), m.Statistical(rng))
		return measure.SetupTime(ff, opts)
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := montecarlo.MapPooled(n, seed, 2,
		func(int) (*circuits.PooledDFF, error) {
			return circuits.NewPooledDFF(poolTestVdd, circuits.DefaultDFFSizing(), m.Nominal(), false), nil
		},
		func(ff *circuits.PooledDFF, idx int, rng *rand.Rand) (float64, error) {
			ff.Restat(m.Statistical(rng))
			o := opts
			o.Res, o.Fast = &ff.Res, ff.Fast
			return measure.SetupTime(ff.DFF, o)
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pooled setup sample %d = %.17g, unpooled %.17g", i, got[i], want[i])
		}
	}
}

// TestPooledFastDelayAccuracy bounds the fast solver path against exact:
// the relaxed tolerances and carried factors may move a delay only at the
// solver tolerance floor, far below the mismatch-induced spread.
func TestPooledFastDelayAccuracy(t *testing.T) {
	m := core.DefaultStatVS()
	const n = 4
	const seed = int64(4321)
	exact, _, err := pooledDelayMC(Config{Workers: 1}, "fast-exact", n, seed, m, poolTestVdd,
		pooledInvFO3(poolTestVdd, poolTestSizing()), nil)
	if err != nil {
		t.Fatal(err)
	}
	fast, _, err := pooledDelayMC(Config{Workers: 1, FastMC: true}, "fast-1", n, seed, m, poolTestVdd,
		pooledInvFO3(poolTestVdd, poolTestSizing()), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if rel := math.Abs(fast[i]-exact[i]) / math.Abs(exact[i]); rel > 1e-4 {
			t.Fatalf("fast delay %d deviates by %.3g relative (exact %g s, fast %g s)",
				i, rel, exact[i], fast[i])
		}
	}
	// Fast mode carries no state across samples (Restat invalidates the
	// factorization), so it must also be worker-invariant.
	fast4, _, err := pooledDelayMC(Config{Workers: 4, FastMC: true}, "fast-4", n, seed, m, poolTestVdd,
		pooledInvFO3(poolTestVdd, poolTestSizing()), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fast {
		if fast4[i] != fast[i] {
			t.Fatalf("fast sample %d varies with worker count: %.17g vs %.17g",
				i, fast4[i], fast[i])
		}
	}
}

// TestPooledAllocRegression pins the headline allocation win: a pooled
// per-sample transient must allocate at least 10x less than the
// rebuild-per-sample baseline.
func TestPooledAllocRegression(t *testing.T) {
	m := core.DefaultStatVS()
	sz := poolTestSizing()

	idx := 0
	rebuild := testing.AllocsPerRun(3, func() {
		rng := montecarlo.SampleRNG(5, idx)
		idx++
		if _, err := invDelaySample(m, rng, poolTestVdd, sz); err != nil {
			t.Fatal(err)
		}
	})

	bench, err := circuits.NewPooledInverterFO(3, poolTestVdd, sz, m.Nominal(), false)
	if err != nil {
		t.Fatal(err)
	}
	idx = 0
	pooled := testing.AllocsPerRun(3, func() {
		rng := montecarlo.SampleRNG(5, idx)
		idx++
		bench.Restat(m.Statistical(rng))
		res, err := bench.Transient(gateTranStop, gateTranStep)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := measure.PairDelay(res, bench.In, bench.Out, poolTestVdd); err != nil {
			t.Fatal(err)
		}
	})

	if pooled*10 > rebuild {
		t.Fatalf("pooled sample allocates %.1f objects vs rebuild %.1f (< 10x win)", pooled, rebuild)
	}
	// And the transient alone — the solver hot path — must be allocation-free.
	transientOnly := testing.AllocsPerRun(3, func() {
		if _, err := bench.Transient(gateTranStop, gateTranStep); err != nil {
			t.Fatal(err)
		}
	})
	if transientOnly != 0 {
		t.Fatalf("pooled transient allocates %.1f objects per run, want 0", transientOnly)
	}
}
