package experiments

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"

	"vstat/internal/circuits"
)

func readCSV(t *testing.T, path string) [][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestCSVExportDeviceFigures(t *testing.T) {
	s := testSuite(t)
	dir := t.TempDir()

	if err := s.Fig1().WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "fig1_idvg.csv"))
	if len(rows) < 10 || len(rows[0]) != 3 {
		t.Fatalf("fig1_idvg shape %dx%d", len(rows), len(rows[0]))
	}
	rows = readCSV(t, filepath.Join(dir, "fig1_idvd.csv"))
	if len(rows[0]) != 7 { // vd + 3 levels × 2 models
		t.Fatalf("fig1_idvd header %v", rows[0])
	}

	f2, err := s.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	if rows := readCSV(t, filepath.Join(dir, "fig2.csv")); len(rows) != len(f2.Rows)+1 {
		t.Fatalf("fig2 rows %d", len(rows))
	}

	f3, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if err := f3.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}

	f4, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if err := f4.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	ell := readCSV(t, filepath.Join(dir, "fig4_ellipses.csv"))
	if len(ell) != 3*90+1 {
		t.Fatalf("ellipse rows %d", len(ell))
	}
}

func TestCSVExportDistributions(t *testing.T) {
	dir := t.TempDir()
	// Synthetic distributions exercise the writers without circuit MC.
	g := newDelayDist([]float64{1, 2, 3, 4, 5})
	v := newDelayDist([]float64{1.1, 2.1, 3.1, 4.1, 5.1})
	r5 := Fig5Result{N: 5, Sizes: []Fig5Size{{Label: "x", Golden: g, VS: v}}}
	if err := r5.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	if rows := readCSV(t, filepath.Join(dir, "fig5_size0_samples.csv")); len(rows) != 6 {
		t.Fatalf("fig5 samples %d", len(rows))
	}
	if rows := readCSV(t, filepath.Join(dir, "fig5_size0_kde.csv")); len(rows) < 50 {
		t.Fatalf("fig5 kde %d", len(rows))
	}

	r6 := Fig6Result{
		Golden: []Fig6Point{{1e-9, 1e11}, {2e-9, 1.1e11}},
		VS:     []Fig6Point{{1.5e-9, 0.9e11}, {2.5e-9, 1.2e11}},
	}
	if err := r6.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}

	r8 := Fig8Result{Golden: g, VS: v}
	if err := r8.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}

	curve := circuits.ButterflyCurve{In: []float64{0, 0.45, 0.9}, Out: []float64{0.9, 0.45, 0}}
	r9 := Fig9Result{
		ReadLeft: curve, ReadRight: curve, HoldLeft: curve, HoldRight: curve,
		GoldenRead: g, VSRead: v, GoldenHold: g, VSHold: v,
	}
	if err := r9.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	if rows := readCSV(t, filepath.Join(dir, "fig9_butterfly_read.csv")); len(rows) != 4 {
		t.Fatalf("butterfly rows %d", len(rows))
	}

	ssta := ExtSSTAResult{Rows: []ExtSSTAVddRow{{Vdd: 0.9, Paths: 16, Depth: 5}}}
	if err := ssta.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
}
