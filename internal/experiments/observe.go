package experiments

import (
	"context"

	"vstat/internal/circuits"
	"vstat/internal/device"
	"vstat/internal/lifecycle"
	"vstat/internal/montecarlo"
	"vstat/internal/obs"
	"vstat/internal/spice"
)

// This file is the observability wiring for the circuit Monte Carlo
// experiments. One MCInstr per registry registers the shared metric set
// (per-phase time histograms, Newton-work histograms, per-stage rescue
// counters); each worker gets a SampleObs that times the sample phases and
// flushes per-sample SolverStats deltas into its shard. Everything is
// nil-safe: with no instrumentation attached, the per-sample overhead is a
// handful of nil checks and the sampled metrics stay bit-identical.

// rescueStages mirrors spice.SolverStats.RescueCounts key order; registry
// counter i is "mc_rescue_<stage>_total".
var rescueStages = [7]string{
	"dc-gmin", "dc-source", "dc-pseudo-tran",
	"tran-halve", "tran-substep", "fast-fallback", "nonfinite-reject",
}

// rescueDeltas returns the per-stage rescue increments between two solver
// counter snapshots, in rescueStages order.
func rescueDeltas(cur, prev spice.SolverStats) [7]int64 {
	return [7]int64{
		cur.DCGminRescues - prev.DCGminRescues,
		cur.DCSourceRescues - prev.DCSourceRescues,
		cur.DCPseudoRescues - prev.DCPseudoRescues,
		cur.TranHalvings - prev.TranHalvings,
		cur.Rescues - prev.Rescues,
		cur.FastFallbacks - prev.FastFallbacks,
		cur.NonFiniteRejects - prev.NonFiniteRejects,
	}
}

// MCInstr is the per-registry instrumentation bundle for circuit Monte
// Carlo runs. Create it once per obs.Registry (metric registration must
// precede the first worker shard); a nil *MCInstr disables instrumentation.
type MCInstr struct {
	Reg *obs.Registry
	PM  *obs.PhaseMetrics

	// Sink, when set, receives sampled solver trace events.
	Sink *obs.EventSink
	// Progress, when set, is fed the per-sample rescue tallies (the
	// run-level ticks come from montecarlo.SetProgress).
	Progress *obs.Progress
	// Kernel, when set to a vsmodel kernel name ("direct", "tape",
	// "tape-fast"), pre-routes every new worker's model-evaluation deltas
	// to that kernel's counter; workers may override via SetKernel.
	Kernel string

	newtonIters  obs.HistID
	jacRefreshes obs.HistID
	samples      obs.CounterID
	budgetOver   obs.CounterID
	cancelled    obs.CounterID
	rescueIDs    [7]obs.CounterID

	batchEvicted   obs.CounterID
	batchOccupancy obs.GaugeID

	// Per-kernel model-evaluation totals, in modelKernels order; a worker's
	// SampleObs routes its ModelEvals deltas to the counter selected by
	// SetKernel (direct when never set).
	modelEvalIDs [3]obs.CounterID
}

// modelKernels mirrors the vsmodel.Kernel backend names; counter i is
// "model_evals_total_<kernel>" (with "-" mangled to "_" for scrape
// friendliness).
var modelKernels = [3]string{"direct", "tape", "tape_fast"}

// NewtonIterBounds is the bucket layout for per-sample Newton iteration
// counts (geometric, 8 to ~3·10^5).
func NewtonIterBounds() []int64 { return obs.ExpBounds(8, 1.25, 48) }

// NewMCInstr registers the Monte Carlo metric set on a fresh registry.
func NewMCInstr(reg *obs.Registry) *MCInstr {
	mi := &MCInstr{Reg: reg, PM: obs.NewPhaseMetrics(reg)}
	mi.newtonIters = reg.Histogram("mc_newton_iters", NewtonIterBounds())
	mi.jacRefreshes = reg.Histogram("mc_jac_refreshes", NewtonIterBounds())
	mi.samples = reg.Counter("mc_samples_total")
	mi.budgetOver = reg.Counter("mc_samples_budget_total")
	mi.cancelled = reg.Counter("mc_samples_cancelled_total")
	for i, st := range rescueStages {
		mi.rescueIDs[i] = reg.Counter("mc_rescue_" + st + "_total")
	}
	mi.batchEvicted = reg.Counter("mc_batch_lanes_evicted_total")
	mi.batchOccupancy = reg.Gauge("mc_batch_lane_occupancy_pct")
	for i, k := range modelKernels {
		mi.modelEvalIDs[i] = reg.Counter("model_evals_total_" + k)
	}
	reg.SetHelp("mc_newton_iters", "Newton iterations per Monte Carlo sample.")
	reg.SetHelp("mc_jac_refreshes", "Jacobian factorizations per Monte Carlo sample.")
	reg.SetHelp("mc_samples_total", "Monte Carlo samples completed.")
	reg.SetHelp("mc_samples_budget_total", "Samples that failed over their solver budget (wall, iteration cap, or hang watchdog).")
	reg.SetHelp("mc_samples_cancelled_total", "In-flight samples drained by a run cancellation.")
	for _, st := range rescueStages {
		reg.SetHelp("mc_rescue_"+st+"_total", "Samples rescued by the "+st+" solver ladder stage.")
	}
	reg.SetHelp("mc_batch_lanes_evicted_total", "Lanes evicted from the K-lane lockstep path to the scalar engine.")
	reg.SetHelp("mc_batch_lane_occupancy_pct", "Average filled-lane occupancy of the batched engine, in percent.")
	for _, k := range modelKernels {
		reg.SetHelp("model_evals_total_"+k,
			"MOSFET compact-model evaluations through the "+k+" kernel (scalar calls and batched SoA lanes alike).")
	}
	return mi
}

// RecordBatchRun flushes a finished batched run's lane accounting: the total
// lanes evicted from the lockstep path and the run's average lane occupancy
// (filled lanes over lanes offered, in whole percent). Gauges merge
// additively across shards, so call this once per run, not per worker.
func (mi *MCInstr) RecordBatchRun(evicted int64, occupancyPct float64) {
	if mi == nil || !obs.Enabled() {
		return
	}
	sh := mi.Reg.NewShard()
	sh.Add(mi.batchEvicted, evicted)
	sh.Set(mi.batchOccupancy, int64(occupancyPct+0.5))
}

// NewWorker builds one worker's recording handle (a scope on a fresh
// shard), or nil when mi is nil or observability is disabled.
func (mi *MCInstr) NewWorker() *SampleObs {
	if mi == nil || !obs.Enabled() {
		return nil
	}
	sc := obs.NewScope(mi.Reg.NewShard(), mi.PM)
	if sc == nil {
		return nil
	}
	sc.SetEvents(mi.Sink)
	so := &SampleObs{mi: mi, sc: sc}
	so.SetKernel(mi.Kernel)
	return so
}

// RecordRunLifecycle flushes a finished run's lifecycle outcomes into the
// registry: samples that died over their budget (wall, iteration cap, or
// hang watchdog) and in-flight samples drained by a run cancellation.
// Counts cover this process's work only — failures restored from a
// checkpoint were already counted by the run that produced them.
func (mi *MCInstr) RecordRunLifecycle(rep montecarlo.RunReport) {
	if mi == nil || !obs.Enabled() {
		return
	}
	var budget int64
	for _, f := range rep.Failures {
		if lifecycle.IsBudget(f.Err) {
			budget++
		}
	}
	if budget == 0 && rep.Interrupted == 0 {
		return
	}
	sh := mi.Reg.NewShard()
	sh.Add(mi.budgetOver, budget)
	sh.Add(mi.cancelled, int64(rep.Interrupted))
}

// RescuedCounters extracts the per-stage rescue counters from a metrics
// snapshot, keyed by ladder stage exactly like montecarlo.RunReport.Rescued
// (zero-valued stages omitted).
func RescuedCounters(snap obs.Snapshot) map[string]int64 {
	out := make(map[string]int64, len(rescueStages))
	for _, st := range rescueStages {
		if v := snap.FindCounter("mc_rescue_" + st + "_total"); v != 0 {
			out[st] = v
		}
	}
	return out
}

// SampleObs is one worker's per-sample recording handle. prev starts zero,
// so the cumulative per-stage deltas flushed over a run equal the worker's
// final SolverStats exactly — which is also what RunReport.Rescued
// aggregates, making registry counters and the run report agree for any
// worker count. Not safe for concurrent use (one worker goroutine each).
type SampleObs struct {
	mi     *MCInstr
	sc     *obs.Scope
	prev   spice.SolverStats
	kernel int // index into modelKernels (0 = direct)
}

// SetKernel routes this worker's model-evaluation deltas to the named
// kernel's counter ("direct", "tape" or "tape-fast"/"tape_fast"); unknown
// names keep the current attribution. Nil-safe.
func (so *SampleObs) SetKernel(name string) {
	if so == nil {
		return
	}
	switch name {
	case "direct":
		so.kernel = 0
	case "tape":
		so.kernel = 1
	case "tape-fast", "tape_fast":
		so.kernel = 2
	}
}

// Scope returns the worker's phase-timing scope (nil on a nil handle).
func (so *SampleObs) Scope() *obs.Scope {
	if so == nil {
		return nil
	}
	return so.sc
}

// Factory wraps a device factory so each statistical parameter draw is
// attributed to the sample-draw phase (the surrounding re-stamp span is
// paused for the duration of each draw). Returns f unchanged on a nil
// handle.
func (so *SampleObs) Factory(f circuits.Factory) circuits.Factory {
	if so == nil {
		return f
	}
	return func(k device.Kind, w, l float64) device.Device {
		so.sc.Enter(obs.PhaseDraw)
		d := f(k, w, l)
		so.sc.Exit()
		return d
	}
}

// End flushes one finished sample: Newton-work histograms and per-stage
// rescue counters from the SolverStats delta since the previous End, then
// the phase-time accumulators. st must be the worker circuit's cumulative
// stats (spice.Circuit.Stats or PooledSRAM.Stats).
func (so *SampleObs) End(st spice.SolverStats) {
	if so == nil {
		return
	}
	mi, sh := so.mi, so.sc.Shard()
	sh.Observe(mi.newtonIters, st.NewtonIters-so.prev.NewtonIters)
	sh.Observe(mi.jacRefreshes, st.JacRefreshes-so.prev.JacRefreshes)
	sh.Add(mi.samples, 1)
	if d := st.ModelEvals - so.prev.ModelEvals; d != 0 {
		sh.Add(mi.modelEvalIDs[so.kernel], d)
	}
	var rescued int64
	for i, d := range rescueDeltas(st, so.prev) {
		if d != 0 {
			sh.Add(mi.rescueIDs[i], d)
			rescued += d
		}
	}
	so.prev = st
	mi.Progress.AddRescued(rescued)
	so.sc.EndSample()
}

// EndBatch flushes one finished K-lane lockstep batch: lanes samples, the
// batch's pooled Newton-work deltas as single histogram entries (per-batch,
// not per-lane — lockstep work is shared, so a per-lane split would be
// arbitrary), the rescue counters, and the phase-time accumulators. st must
// be the summed cumulative stats of every lane circuit.
func (so *SampleObs) EndBatch(lanes int, st spice.SolverStats) {
	if so == nil {
		return
	}
	mi, sh := so.mi, so.sc.Shard()
	sh.Observe(mi.newtonIters, st.NewtonIters-so.prev.NewtonIters)
	sh.Observe(mi.jacRefreshes, st.JacRefreshes-so.prev.JacRefreshes)
	sh.Add(mi.samples, int64(lanes))
	if d := st.ModelEvals - so.prev.ModelEvals; d != 0 {
		sh.Add(mi.modelEvalIDs[so.kernel], d)
	}
	var rescued int64
	for i, d := range rescueDeltas(st, so.prev) {
		if d != 0 {
			sh.Add(mi.rescueIDs[i], d)
			rescued += d
		}
	}
	so.prev = st
	mi.Progress.AddRescued(rescued)
	so.sc.EndSample()
}

// obsBench is a pooled bench template that can carry an observability
// scope and report rescue counters (all four pooled circuit types).
type obsBench interface {
	montecarlo.RescueReporter
	SetObs(*obs.Scope)
}

// obsState pairs a pooled bench with its worker recording handle, keeping
// the bench's RescueCounts visible to montecarlo's report aggregation.
type obsState[B obsBench] struct {
	B  B
	So *SampleObs
}

// RescueCounts forwards the bench's counters (montecarlo.RescueReporter).
func (s obsState[B]) RescueCounts() map[string]int64 { return s.B.RescueCounts() }

// ArmSample forwards the per-sample context and budget to the bench
// (montecarlo.SampleArmer); benches without solver-side enforcement run
// unarmed, covered only by the engine's hang watchdog.
func (s obsState[B]) ArmSample(ctx context.Context, b lifecycle.Budget) {
	if a, ok := any(s.B).(montecarlo.SampleArmer); ok {
		a.ArmSample(ctx, b)
	}
}

// AttachTracer forwards the flight-recorder tracer to the bench
// (montecarlo.TraceAttacher), so solver phase spans land in the trace even
// when the bench runs behind this observability wrapper.
func (s obsState[B]) AttachTracer(t obs.Tracer) {
	if a, ok := any(s.B).(montecarlo.TraceAttacher); ok {
		a.AttachTracer(t)
	}
}

// SolverWork forwards the bench's cumulative Newton/rescue totals
// (montecarlo.WorkReporter) for the flight recorder's sample diagnostics.
func (s obsState[B]) SolverWork() (iters, rescues int64) {
	if w, ok := any(s.B).(montecarlo.WorkReporter); ok {
		return w.SolverWork()
	}
	return 0, 0
}

// newObsState wraps a bench builder into a MapPooledReport newState that
// attaches per-worker instrumentation when mi is live.
func newObsState[B obsBench](mi *MCInstr, build func() (B, error)) func(int) (obsState[B], error) {
	return func(int) (obsState[B], error) {
		b, err := build()
		if err != nil {
			var zero obsState[B]
			return zero, err
		}
		so := mi.NewWorker()
		b.SetObs(so.Scope())
		return obsState[B]{B: b, So: so}, nil
	}
}
