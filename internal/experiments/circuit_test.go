package experiments

import (
	"math"
	"testing"
)

func TestFig4BivariateComparison(t *testing.T) {
	s := testSuite(t)
	r, err := s.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	// Positive Ion/log10Ioff correlation in both models: low-VT samples
	// drive harder and leak more (the upward trend of the paper's scatter).
	if r.CorrGolden < 0.3 || r.CorrVS < 0.3 {
		t.Fatalf("correlations too weak: golden %g, VS %g", r.CorrGolden, r.CorrVS)
	}
	// Cross-model containment: VS 3σ ellipse holds most golden samples.
	if r.CoverageVS[2] < 0.9 {
		t.Fatalf("VS 3σ ellipse covers only %g of golden samples", r.CoverageVS[2])
	}
	// Ellipse sizes comparable between models (within 2× on both axes).
	for k := 0; k < 3; k++ {
		if r.VSEll[k].A < r.GoldenEll[k].A/2 || r.VSEll[k].A > r.GoldenEll[k].A*2 {
			t.Fatalf("%dσ major axes diverge: %g vs %g", k+1, r.VSEll[k].A, r.GoldenEll[k].A)
		}
	}
	_ = r.String()
}

func TestFig5DelayDistributions(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit MC in -short mode")
	}
	s := testSuite(t)
	r, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sizes) != 3 {
		t.Fatalf("sizes %d", len(r.Sizes))
	}
	for _, sz := range r.Sizes {
		// Delays are ps-scale, positive, with small relative σ.
		if sz.Golden.Mean < 1e-12 || sz.Golden.Mean > 60e-12 {
			t.Fatalf("%s: golden mean %g", sz.Label, sz.Golden.Mean)
		}
		// Headline claim: VS delay distribution matches golden.
		if d := math.Abs(sz.VS.Mean-sz.Golden.Mean) / sz.Golden.Mean; d > 0.15 {
			t.Fatalf("%s: mean delay differs %g%%", sz.Label, 100*d)
		}
		if rσ := sz.VS.SD / sz.Golden.SD; rσ < 0.5 || rσ > 2 {
			t.Fatalf("%s: σ ratio %g", sz.Label, rσ)
		}
		if len(sz.VS.KDEx) == 0 {
			t.Fatal("missing KDE series")
		}
	}
	_ = r.String()
}

func TestFig6LeakageFrequency(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit MC in -short mode")
	}
	s := testSuite(t)
	r, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	// Leakage spreads over an order of magnitude or more; frequency spread
	// is tens of percent (the paper reports 37× and 45–50% at N=5000; a
	// small-N run sees a smaller extreme ratio).
	if r.GoldenLeakSpread < 3 || r.VSLeakSpread < 3 {
		t.Fatalf("leakage spreads too tight: %g / %g", r.GoldenLeakSpread, r.VSLeakSpread)
	}
	if r.GoldenFreqSpreadPct < 5 || r.GoldenFreqSpreadPct > 100 {
		t.Fatalf("golden freq spread %g%%", r.GoldenFreqSpreadPct)
	}
	if d := math.Abs(r.VSFreqSpreadPct - r.GoldenFreqSpreadPct); d > 25 {
		t.Fatalf("freq spreads diverge: %g vs %g", r.VSFreqSpreadPct, r.GoldenFreqSpreadPct)
	}
	_ = r.String()
}

func TestFig7NonGaussianOnset(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit MC in -short mode")
	}
	s := testSuite(t)
	r, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Vdds) != 3 {
		t.Fatalf("vdd columns %d", len(r.Vdds))
	}
	// Mean delay grows as Vdd falls; relative σ grows too.
	for i := 1; i < 3; i++ {
		if r.Vdds[i].Golden.Mean <= r.Vdds[i-1].Golden.Mean {
			t.Fatalf("golden mean delay must grow as Vdd falls")
		}
		relPrev := r.Vdds[i-1].VS.SD / r.Vdds[i-1].VS.Mean
		relCur := r.Vdds[i].VS.SD / r.Vdds[i].VS.Mean
		if relCur <= relPrev {
			t.Fatalf("VS relative delay spread must grow at low Vdd: %g vs %g", relCur, relPrev)
		}
	}
	// Non-Gaussianity rises from 0.9 V to 0.55 V in the VS model even
	// though its parameters are Gaussian (paper's key Fig. 7 claim).
	if r.Vdds[2].VSQQNL <= r.Vdds[0].VSQQNL {
		t.Fatalf("VS QQ nonlinearity should grow at 0.55 V: %g vs %g",
			r.Vdds[2].VSQQNL, r.Vdds[0].VSQQNL)
	}
	// Model agreement at each Vdd.
	for _, c := range r.Vdds {
		if d := math.Abs(c.VS.Mean-c.Golden.Mean) / c.Golden.Mean; d > 0.2 {
			t.Fatalf("Vdd=%g: mean delays differ %g%%", c.Vdd, 100*d)
		}
	}
	_ = r.String()
}

func TestFig8SetupTimeDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit MC in -short mode")
	}
	s := testSuite(t)
	r, err := s.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if r.Golden.Mean <= 0 || r.VS.Mean <= 0 {
		t.Fatalf("setup means: %g %g", r.Golden.Mean, r.VS.Mean)
	}
	if d := math.Abs(r.VS.Mean-r.Golden.Mean) / r.Golden.Mean; d > 0.35 {
		t.Fatalf("setup means differ %g%%", 100*d)
	}
	if r.TrialsPerSample < 5 {
		t.Fatalf("bisection cost %d implausibly low", r.TrialsPerSample)
	}
	_ = r.String()
}

func TestFig9SRAMSNM(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit MC in -short mode")
	}
	s := testSuite(t)
	r, err := s.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	// Read SNM below hold SNM for both models.
	if r.GoldenRead.Mean >= r.GoldenHold.Mean || r.VSRead.Mean >= r.VSHold.Mean {
		t.Fatal("read SNM must be below hold SNM")
	}
	// Model agreement on means within 20%.
	if d := math.Abs(r.VSHold.Mean-r.GoldenHold.Mean) / r.GoldenHold.Mean; d > 0.2 {
		t.Fatalf("hold SNM means differ %g%%", 100*d)
	}
	if d := math.Abs(r.VSRead.Mean-r.GoldenRead.Mean) / r.GoldenRead.Mean; d > 0.3 {
		t.Fatalf("read SNM means differ %g%%", 100*d)
	}
	// Butterfly curves exist and span the rails.
	if len(r.ReadLeft.In) == 0 || len(r.HoldLeft.In) == 0 {
		t.Fatal("missing butterfly curves")
	}
	_ = r.String()
}

func TestTable4RuntimeComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("runtime benches in -short mode")
	}
	s := testSuite(t)
	// Trim to a fast comparison: the real numbers come from bench_test.go.
	saved := s.Cfg.Scale
	s.Cfg.Scale = 0.02
	defer func() { s.Cfg.Scale = saved }()
	r, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.VSTime <= 0 || row.GoldenTime <= 0 {
			t.Fatalf("%s: zero times", row.Cell)
		}
		if row.Speedup <= 0 {
			t.Fatalf("%s: speedup %g", row.Cell, row.Speedup)
		}
	}
	_ = r.String()
}
