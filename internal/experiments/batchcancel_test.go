package experiments

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/measure"
	"vstat/internal/montecarlo"
	"vstat/internal/obs"
)

// drainSink captures which samples a cancelled run actually recorded (the
// drained partial results) and with what values.
type drainSink struct {
	mu   sync.Mutex
	vals map[int]float64
	errs map[int]string
}

func (s *drainSink) Completed(int) bool { return false }
func (s *drainSink) Record(idx int, v any, _ map[string]int64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil {
		s.errs[idx] = err.Error()
		return
	}
	s.vals[idx] = v.(float64)
}

// evictingBatchRun wires a real K-lane lockstep INV FO3 delay MC with the
// Newton budget starved so lanes are forced off the lockstep path
// (spice.BatchSim evictions) mid-batch. The returned benches slice lets the
// caller sum eviction counters after the run, mirroring how vsbench feeds
// MCInstr.RecordBatchRun.
func evictingBatchRun(t *testing.T, ctx context.Context, n int, seed int64, sink montecarlo.CheckpointSink,
	trip func(drained int64)) (benches []*circuits.PooledGateBatch, out []float64, rep montecarlo.RunReport, err error) {
	t.Helper()
	const k, maxNewton = 4, 2
	m := core.DefaultStatVS()
	var bm sync.Mutex
	var done atomic.Int64
	out, rep, err = montecarlo.MapPooledBatchReportCtx(ctx, n, seed, 2, k,
		montecarlo.RunOpts{Policy: montecarlo.SkipUpTo(1.0), Checkpoint: sink},
		func(int) (*circuits.PooledGateBatch, error) {
			b, berr := circuits.NewPooledGateBatch(k, func() (*circuits.PooledGate, error) {
				return circuits.NewPooledInverterFO(3, poolTestVdd, poolTestSizing(), m.Nominal(), false)
			})
			if berr != nil {
				return nil, berr
			}
			for _, p := range b.Lanes {
				p.Ckt.MaxNewton = maxNewton // starve Newton: forces lockstep evictions
			}
			bm.Lock()
			benches = append(benches, b)
			bm.Unlock()
			return b, nil
		},
		func(b *circuits.PooledGateBatch, idxs []int, rngs []*rand.Rand, vals []float64, errs []error) {
			for j := range idxs {
				b.Restat(j, m.Statistical(rngs[j]))
			}
			outs := b.TransientBatch(len(idxs), gateTranStop, gateTranStep)
			for j := range idxs {
				if outs[j].Err != nil {
					errs[j] = outs[j].Err
					continue
				}
				p := b.Lanes[j]
				vals[j], errs[j] = measure.PairDelay(&p.Res, p.In, p.Out, poolTestVdd)
			}
			if trip != nil {
				trip(done.Add(int64(len(idxs))))
			}
		})
	return benches, out, rep, err
}

// TestBatchEvictionCancelDrainsBitIdentical cancels a real lockstep batched
// MC mid-run with the Newton budget starved so lanes evict to the scalar
// path, and pins two contracts: (1) every drained sample — evicted lanes
// included — carries a value bit-identical to the uncancelled run's, and
// (2) the mc_batch_lanes_evicted_total counter flushed via RecordBatchRun
// matches the eviction count the benches report.
func TestBatchEvictionCancelDrainsBitIdentical(t *testing.T) {
	const n, seed = 24, 777

	refBenches, ref, refRep, err := evictingBatchRun(t, context.Background(), n, seed, nil, nil)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	var refEvicted int64
	for _, b := range refBenches {
		refEvicted += b.Evictions()
	}
	if refEvicted == 0 {
		t.Fatalf("starved run evicted no lanes; the test no longer exercises eviction")
	}
	refErrs := make(map[int]string)
	for _, f := range refRep.Failures {
		refErrs[f.Idx] = f.Err.Error()
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sink := &drainSink{vals: map[int]float64{}, errs: map[int]string{}}
	benches, _, rep, err := evictingBatchRun(t, ctx, n, seed, sink, func(drained int64) {
		if drained >= 8 { // two blocks in: cancel with work still unclaimed
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrap of context.Canceled", err)
	}
	if !rep.Cancelled {
		t.Fatalf("report not marked cancelled: %+v", rep)
	}
	drained := len(sink.vals) + len(sink.errs)
	if drained == 0 || drained >= n {
		t.Fatalf("drained %d of %d samples; want a genuine partial run", drained, n)
	}
	if rep.Attempted != drained {
		t.Fatalf("report attempted %d, sink drained %d (+%d interrupted)", rep.Attempted, drained, rep.Interrupted)
	}
	for idx, v := range sink.vals {
		if math.Float64bits(v) != math.Float64bits(ref[idx]) {
			t.Fatalf("drained sample %d = %.17g, full run computed %.17g", idx, v, ref[idx])
		}
	}
	for idx, msg := range sink.errs {
		if refErrs[idx] != msg {
			t.Fatalf("drained failure %d = %q, full run recorded %q", idx, msg, refErrs[idx])
		}
	}

	// The lane accounting a cancelled run reports must land 1:1 in the
	// registry: flush the benches' eviction sum exactly as vsbench does and
	// read the counter back.
	var evicted int64
	for _, b := range benches {
		evicted += b.Evictions()
	}
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	reg := obs.NewRegistry()
	mi := NewMCInstr(reg)
	mi.RecordBatchRun(evicted, 0)
	var counter int64
	found := false
	for _, c := range reg.Snapshot().Counters {
		if c.Name == "mc_batch_lanes_evicted_total" {
			counter, found = c.Value, true
		}
	}
	if !found || counter != evicted {
		t.Fatalf("mc_batch_lanes_evicted_total = %d (found=%v), benches report %d evictions", counter, found, evicted)
	}
}
