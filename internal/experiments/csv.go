package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// CSV export: every figure result can dump the exact series the paper
// plots, one file per panel, for external plotting tools.

// writeCSV writes rows (first row = header) to dir/name.
func writeCSV(dir, name string, header []string, rows [][]float64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for _, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("csv %s: row width %d != header %d", name, len(row), len(header))
		}
		for i, v := range row {
			rec[i] = strconv.FormatFloat(v, 'g', 10, 64)
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV dumps the Fig. 1 I-V overlay curves.
func (r Fig1Result) WriteCSV(dir string) error {
	var rows [][]float64
	for i := range r.Series.VgGrid {
		rows = append(rows, []float64{r.Series.VgGrid[i], r.Series.IdVgRef[i], r.Series.IdVgFit[i]})
	}
	if err := writeCSV(dir, "fig1_idvg.csv", []string{"vg", "id_golden", "id_vs"}, rows); err != nil {
		return err
	}
	rows = rows[:0]
	for i := range r.Series.VdGrid {
		row := []float64{r.Series.VdGrid[i]}
		for j := range r.Series.VgLevels {
			row = append(row, r.Series.IdVdRef[j][i], r.Series.IdVdFit[j][i])
		}
		rows = append(rows, row)
	}
	header := []string{"vd"}
	for _, vg := range r.Series.VgLevels {
		header = append(header,
			fmt.Sprintf("id_golden_vg%.2f", vg), fmt.Sprintf("id_vs_vg%.2f", vg))
	}
	if err := writeCSV(dir, "fig1_idvd.csv", header, rows); err != nil {
		return err
	}
	rows = rows[:0]
	for i := range r.Series.VgGrid {
		rows = append(rows, []float64{r.Series.VgGrid[i], r.Series.CggRef[i], r.Series.CggFit[i]})
	}
	return writeCSV(dir, "fig1_cgg.csv", []string{"vg", "cgg_golden", "cgg_vs"}, rows)
}

// WriteCSV dumps the Fig. 2 percent-difference series.
func (r Fig2Result) WriteCSV(dir string) error {
	var rows [][]float64
	for _, row := range r.Rows {
		rows = append(rows, []float64{row.W, row.DiffVT0, row.DiffL, row.DiffW})
	}
	return writeCSV(dir, "fig2.csv", []string{"w_m", "dvt0_pct", "dleff_pct", "dweff_pct"}, rows)
}

// WriteCSV dumps the Fig. 3 contribution series.
func (r Fig3Result) WriteCSV(dir string) error {
	var rows [][]float64
	for _, row := range r.Rows {
		rows = append(rows, []float64{row.W, row.TotalPct, row.VT0Pct, row.LWPct, row.MuPct, row.CinvPct, row.GoldenPct})
	}
	return writeCSV(dir, "fig3.csv",
		[]string{"w_m", "total_pct", "vt0_pct", "lw_pct", "mu_pct", "cinv_pct", "golden_pct"}, rows)
}

// WriteCSV dumps the Fig. 4 scatter and ellipse traces.
func (r Fig4Result) WriteCSV(dir string) error {
	var rows [][]float64
	for i := range r.GoldenIon {
		rows = append(rows, []float64{r.GoldenIon[i], r.GoldenLog[i], r.VSIon[i], r.VSLog[i]})
	}
	if err := writeCSV(dir, "fig4_scatter.csv",
		[]string{"golden_ion", "golden_log10ioff", "vs_ion", "vs_log10ioff"}, rows); err != nil {
		return err
	}
	rows = rows[:0]
	const pts = 90
	for k := 0; k < 3; k++ {
		gx, gy := r.GoldenEll[k].Points(pts)
		vx, vy := r.VSEll[k].Points(pts)
		for i := 0; i < pts; i++ {
			rows = append(rows, []float64{float64(k + 1), gx[i], gy[i], vx[i], vy[i]})
		}
	}
	return writeCSV(dir, "fig4_ellipses.csv",
		[]string{"nsigma", "golden_x", "golden_y", "vs_x", "vs_y"}, rows)
}

// writeDistCSV dumps a pair of delay distributions (samples and KDE).
func writeDistCSV(dir, prefix string, golden, vs DelayDist) error {
	n := len(golden.Samples)
	if len(vs.Samples) < n {
		n = len(vs.Samples)
	}
	var rows [][]float64
	for i := 0; i < n; i++ {
		rows = append(rows, []float64{golden.Samples[i], vs.Samples[i]})
	}
	if err := writeCSV(dir, prefix+"_samples.csv", []string{"golden", "vs"}, rows); err != nil {
		return err
	}
	rows = rows[:0]
	for i := range golden.KDEx {
		rows = append(rows, []float64{golden.KDEx[i], golden.KDEy[i], vs.KDEx[i], vs.KDEy[i]})
	}
	return writeCSV(dir, prefix+"_kde.csv",
		[]string{"golden_x", "golden_pdf", "vs_x", "vs_pdf"}, rows)
}

// WriteCSV dumps one KDE pair per inverter size.
func (r Fig5Result) WriteCSV(dir string) error {
	for i, sz := range r.Sizes {
		if err := writeDistCSV(dir, fmt.Sprintf("fig5_size%d", i), sz.Golden, sz.VS); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV dumps the leakage-frequency scatter.
func (r Fig6Result) WriteCSV(dir string) error {
	var rows [][]float64
	n := len(r.Golden)
	if len(r.VS) < n {
		n = len(r.VS)
	}
	for i := 0; i < n; i++ {
		rows = append(rows, []float64{r.Golden[i].Leakage, r.Golden[i].Freq, r.VS[i].Leakage, r.VS[i].Freq})
	}
	return writeCSV(dir, "fig6_scatter.csv",
		[]string{"golden_leak", "golden_freq", "vs_leak", "vs_freq"}, rows)
}

// WriteCSV dumps per-Vdd KDEs and the VS QQ series.
func (r Fig7Result) WriteCSV(dir string) error {
	for _, col := range r.Vdds {
		p := fmt.Sprintf("fig7_vdd%03.0fmv", col.Vdd*1000)
		if err := writeDistCSV(dir, p, col.Golden, col.VS); err != nil {
			return err
		}
		var rows [][]float64
		for _, q := range col.VSQQ {
			rows = append(rows, []float64{q.Theoretical, q.Sample})
		}
		if err := writeCSV(dir, p+"_qq.csv", []string{"normal_quantile", "delay"}, rows); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV dumps the setup-time distributions.
func (r Fig8Result) WriteCSV(dir string) error {
	return writeDistCSV(dir, "fig8_setup", r.Golden, r.VS)
}

// WriteCSV dumps butterfly curves, SNM distributions and the QQ series.
func (r Fig9Result) WriteCSV(dir string) error {
	dump := func(name string, left, right [2][]float64) error {
		var rows [][]float64
		for i := range left[0] {
			rows = append(rows, []float64{left[0][i], left[1][i], right[0][i], right[1][i]})
		}
		return writeCSV(dir, name,
			[]string{"left_in", "left_out", "right_in", "right_out"}, rows)
	}
	if err := dump("fig9_butterfly_read.csv",
		[2][]float64{r.ReadLeft.In, r.ReadLeft.Out},
		[2][]float64{r.ReadRight.In, r.ReadRight.Out}); err != nil {
		return err
	}
	if err := dump("fig9_butterfly_hold.csv",
		[2][]float64{r.HoldLeft.In, r.HoldLeft.Out},
		[2][]float64{r.HoldRight.In, r.HoldRight.Out}); err != nil {
		return err
	}
	if err := writeDistCSV(dir, "fig9_read_snm", r.GoldenRead, r.VSRead); err != nil {
		return err
	}
	if err := writeDistCSV(dir, "fig9_hold_snm", r.GoldenHold, r.VSHold); err != nil {
		return err
	}
	var rows [][]float64
	for _, q := range r.VSHoldQQ {
		rows = append(rows, []float64{q.Theoretical, q.Sample})
	}
	return writeCSV(dir, "fig9_hold_qq.csv", []string{"normal_quantile", "snm"}, rows)
}

// WriteCSV dumps the SSTA comparison rows.
func (r ExtSSTAResult) WriteCSV(dir string) error {
	var rows [][]float64
	for _, row := range r.Rows {
		rows = append(rows, []float64{row.Vdd, float64(row.Paths), float64(row.Depth),
			row.GaussMu, row.GaussSigma, row.GaussQ999, row.MCQ999, row.TailErrPct})
	}
	return writeCSV(dir, "ext_ssta.csv",
		[]string{"vdd", "paths", "depth", "gauss_mu", "gauss_sigma", "gauss_q999", "mc_q999", "tail_err_pct"}, rows)
}
