package experiments

import (
	"math"

	"vstat/internal/device"
	"vstat/internal/variation"
)

// mathHypot is √(a²+b²); named to keep seq_exps readable.
func mathHypot(a, b float64) float64 { return math.Hypot(a, b) }

// interDie wraps variation.InterDieSigma (paper Eq. 1).
func interDie(total, within float64) (float64, error) {
	return variation.InterDieSigma(total, within)
}

// mathSqrt and mathAbs keep convergence.go free of a direct math import
// conflict with the package's other files.
func mathSqrt(x float64) float64 { return math.Sqrt(x) }

// mathAbs returns |x|.
func mathAbs(x float64) float64 { return math.Abs(x) }

// nmosKind/pmosKind keep sramac.go terse.
func nmosKind() device.Kind { return device.NMOS }

// pmosKind returns the p-channel polarity tag.
func pmosKind() device.Kind { return device.PMOS }
