package experiments

import (
	"math"
	"testing"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/device"
	"vstat/internal/montecarlo"
	"vstat/internal/vsmodel"
)

// kernelMC runs the INV FO3 delay MC with every device routed through the
// given vsmodel kernel, returning the sampled delays.
func kernelMC(t *testing.T, kernel vsmodel.Kernel, cfg Config, name string, n int, seed int64) []float64 {
	t.Helper()
	m := core.DefaultStatVS()
	m.Kernel = kernel
	out, _, err := runPooledMC[*circuits.PooledGate, float64](
		cfg, name, n, seed, invBench(m), invDelay(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("run %q produced %d samples, want %d", name, len(out), n)
	}
	return out
}

// sameBits fails the test at the first sample whose bits differ.
func sameBits(t *testing.T, what string, got, ref []float64) {
	t.Helper()
	for i := range ref {
		if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
			t.Fatalf("%s: sample %d = %.17g, reference %.17g", what, i, got[i], ref[i])
		}
	}
}

// TestTapeFastMCDeterminism pins the fastmath tape kernel's reproducibility
// contract at full Monte Carlo scale: a tape-fast circuit MC is
// bit-identical to itself at any worker count and through the shard
// coordinator (loopback transports, shard width not dividing n), even
// though its values legitimately differ from the exact kernels'.
func TestTapeFastMCDeterminism(t *testing.T) {
	// Pin that the kernel knob actually routes devices through the
	// fastmath tape, so the determinism runs below can't silently degrade
	// into direct-kernel runs.
	m := core.DefaultStatVS()
	m.Kernel = vsmodel.KernelTapeFast
	dev := m.Nominal()(device.NMOS, 300e-9, 40e-9)
	td, ok := dev.(*vsmodel.TapeDevice)
	if !ok || !td.Fast() {
		t.Fatalf("StatVS{Kernel: tape-fast} nominal device = %T (fast=%v), want fastmath *TapeDevice", dev, ok && td.Fast())
	}

	const n = 24
	const seed = int64(40613)
	pol := montecarlo.SkipUpTo(1.0)

	ref := kernelMC(t, vsmodel.KernelTapeFast, Config{Workers: 1, Policy: pol}, "tf-w1", n, seed)
	for _, workers := range []int{2, 4} {
		got := kernelMC(t, vsmodel.KernelTapeFast, Config{Workers: workers, Policy: pol},
			"tf-w", n, seed)
		sameBits(t, "worker-count invariance", got, ref)
	}
	for _, sh := range []struct{ size, eps int }{{7, 3}, {5, 2}} {
		got := kernelMC(t, vsmodel.KernelTapeFast,
			Config{Workers: 2, Policy: pol, ShardSize: sh.size, ShardEndpoints: sh.eps},
			"tf-shard", n, seed)
		sameBits(t, "shard-transport invariance", got, ref)
	}
}

// TestTapeExactMCMatchesDirect pins the exact tape interpreter's
// bit-identity contract end to end: a full circuit MC through the tape
// kernel reproduces the direct closed-form kernel's sampled delays bit for
// bit — every Newton trajectory, rescue decision, and measurement
// interpolation included.
func TestTapeExactMCMatchesDirect(t *testing.T) {
	const n = 24
	const seed = int64(40613)
	pol := montecarlo.SkipUpTo(1.0)

	ref := kernelMC(t, vsmodel.KernelDirect, Config{Workers: 2, Policy: pol}, "direct", n, seed)
	got := kernelMC(t, vsmodel.KernelTape, Config{Workers: 2, Policy: pol}, "tape", n, seed)
	sameBits(t, "tape-exact vs direct", got, ref)
}
