package experiments

import (
	"errors"
	"math/rand"
	"testing"

	"vstat/internal/circuits"
	"vstat/internal/core"
	"vstat/internal/device"
	"vstat/internal/measure"
	"vstat/internal/montecarlo"
	"vstat/internal/spice"
)

// faultFactory wraps every device drawn from a statistical factory in a
// FaultCard with the given program, making a whole sample non-convergent.
func faultFactory(stat circuits.Factory, mode device.FaultMode) circuits.Factory {
	return func(k device.Kind, w, l float64) device.Device {
		return &device.FaultCard{Inner: stat(k, w, l), Mode: mode}
	}
}

// TestFaultInjectedMCIsolation is the robustness acceptance test: a single
// deterministically non-convergent sample injected into a 1000-sample Monte
// Carlo must not abort the run under SkipAndRecord, must be counted in the
// RunReport, and must leave every other sample bit-identical to a clean run
// with the same (seed, workers) — for any worker count.
func TestFaultInjectedMCIsolation(t *testing.T) {
	m := core.DefaultStatVS()
	const n = 1000
	const seed = int64(2013)
	const faultIdx = 137
	sz := poolTestSizing()

	newBench := func(int) (*circuits.PooledGate, error) {
		return circuits.NewPooledInverterFO(3, poolTestVdd, sz, m.Nominal(), false)
	}
	// Cheap per-sample measurement (a DC operating point, not a transient)
	// so the 1000-sample population stays fast.
	opSample := func(b *circuits.PooledGate, idx int, rng *rand.Rand) (float64, error) {
		b.Restat(m.Statistical(rng))
		op, err := b.Ckt.OP()
		if err != nil {
			return 0, err
		}
		return op.V(b.Out), nil
	}
	faultSample := func(b *circuits.PooledGate, idx int, rng *rand.Rand) (float64, error) {
		if idx != faultIdx {
			return opSample(b, idx, rng)
		}
		// Bound the rescue-ladder cost of the doomed sample; restored before
		// returning so later samples see an untouched template.
		saved := b.Ckt.MaxNewton
		b.Ckt.MaxNewton = 20
		defer func() { b.Ckt.MaxNewton = saved }()
		b.Restat(faultFactory(m.Statistical(rng), device.FaultNoConverge))
		op, err := b.Ckt.OP()
		if err != nil {
			return 0, err
		}
		return op.V(b.Out), nil
	}

	clean, cleanRep, err := montecarlo.MapPooledReport(n, seed, 1, montecarlo.Policy{}, newBench, opSample)
	if err != nil {
		t.Fatal(err)
	}
	if !cleanRep.Clean() {
		t.Fatalf("clean run not clean: %s", cleanRep.String())
	}

	for _, workers := range []int{1, 4} {
		got, rep, err := montecarlo.MapPooledReport(n, seed, workers,
			montecarlo.SkipUpTo(0.01), newBench, faultSample)
		if err != nil {
			t.Fatalf("workers=%d: injected fault aborted the run: %v", workers, err)
		}
		if rep.Attempted != n || rep.Failed != 1 || rep.Succeeded != n-1 {
			t.Fatalf("workers=%d: report %s", workers, rep.String())
		}
		if len(rep.Failures) != 1 || rep.Failures[0].Idx != faultIdx {
			t.Fatalf("workers=%d: failures %v", workers, rep.Failures)
		}
		var cerr *spice.ConvergenceError
		if !errors.As(rep.Failures[0].Err, &cerr) {
			t.Fatalf("workers=%d: failure is %T, want a typed *spice.ConvergenceError chain",
				workers, rep.Failures[0].Err)
		}
		for i := range clean {
			if i == faultIdx {
				continue
			}
			if got[i] != clean[i] {
				t.Fatalf("workers=%d: sample %d = %.17g, clean run %.17g — fault not isolated",
					workers, i, got[i], clean[i])
			}
		}
	}
}

// TestFailFastAbortsOnInjectedFault pins the default policy on the same
// population: without SkipAndRecord the injected sample aborts the run with
// its typed error.
func TestFailFastAbortsOnInjectedFault(t *testing.T) {
	m := core.DefaultStatVS()
	const n = 60
	const faultIdx = 11
	sz := poolTestSizing()
	_, rep, err := montecarlo.MapPooledReport(n, 5, 2, montecarlo.Policy{},
		func(int) (*circuits.PooledGate, error) {
			return circuits.NewPooledInverterFO(3, poolTestVdd, sz, m.Nominal(), false)
		},
		func(b *circuits.PooledGate, idx int, rng *rand.Rand) (float64, error) {
			stat := m.Statistical(rng)
			if idx == faultIdx {
				saved := b.Ckt.MaxNewton
				b.Ckt.MaxNewton = 20
				defer func() { b.Ckt.MaxNewton = saved }()
				stat = faultFactory(stat, device.FaultNoConverge)
			}
			b.Restat(stat)
			op, err := b.Ckt.OP()
			if err != nil {
				return 0, err
			}
			return op.V(b.Out), nil
		})
	if err == nil {
		t.Fatal("FailFast did not abort on the injected fault")
	}
	if !errors.Is(err, spice.ErrNoConvergence) {
		t.Fatalf("err %v does not wrap the solver failure", err)
	}
	if len(rep.Failures) == 0 || rep.Failures[0].Idx != faultIdx {
		t.Fatalf("failures %v", rep.Failures)
	}
}

// TestFailedSampleLeavesTemplateRestampable is the template-hygiene
// contract: a sample whose transient dies mid-run (poisoning the candidate
// charge history) must leave the per-worker pooled template re-stampable,
// so the NEXT samples on the same template are bit-identical to a clean
// run. workers=1 forces every sample through the one template sequentially.
func TestFailedSampleLeavesTemplateRestampable(t *testing.T) {
	m := core.DefaultStatVS()
	const n = 4
	const seed = int64(31)
	const faultIdx = 1
	sz := poolTestSizing()

	newBench := func(int) (*circuits.PooledGate, error) {
		return circuits.NewPooledInverterFO(3, poolTestVdd, sz, m.Nominal(), false)
	}
	delaySample := func(b *circuits.PooledGate, idx int, rng *rand.Rand) (float64, error) {
		b.Restat(m.Statistical(rng))
		res, err := b.Transient(gateTranStop, gateTranStep)
		if err != nil {
			return 0, err
		}
		return measure.PairDelay(res, b.In, b.Out, poolTestVdd)
	}
	clean, _, err := montecarlo.MapPooledReport(n, seed, 1, montecarlo.Policy{}, newBench, delaySample)
	if err != nil {
		t.Fatal(err)
	}

	faultSample := func(b *circuits.PooledGate, idx int, rng *rand.Rand) (float64, error) {
		if idx != faultIdx {
			return delaySample(b, idx, rng)
		}
		// NaN from deep inside the transient: the initial OP and early steps
		// succeed, then the model turns NaN forever — the rescue ladder must
		// reject the poisoned history, exhaust, and fail the sample.
		stat := m.Statistical(rng)
		b.Restat(func(k device.Kind, w, l float64) device.Device {
			return &device.FaultCard{Inner: stat(k, w, l), Mode: device.FaultNaN, After: 2000}
		})
		res, err := b.Transient(gateTranStop, gateTranStep)
		if err != nil {
			return 0, err
		}
		return measure.PairDelay(res, b.In, b.Out, poolTestVdd)
	}
	got, rep, err := montecarlo.MapPooledReport(n, seed, 1,
		montecarlo.Policy{OnFailure: montecarlo.SkipAndRecord}, newBench, faultSample)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed != 1 || rep.Failures[0].Idx != faultIdx {
		t.Fatalf("report %s", rep.String())
	}
	if !errors.Is(rep.Failures[0].Err, spice.ErrNonFiniteSolution) {
		t.Fatalf("injected NaN surfaced as %v, want ErrNonFiniteSolution chain", rep.Failures[0].Err)
	}
	for i := range clean {
		if i == faultIdx {
			continue
		}
		if got[i] != clean[i] {
			t.Fatalf("sample %d after the failed sample = %.17g, clean %.17g — template corrupted",
				i, got[i], clean[i])
		}
	}
}

// TestConfigPolicyThreadsIntoFigures wires a SkipAndRecord policy through
// the experiment Config and checks a figure still runs and reports clean
// health on a healthy model.
func TestConfigPolicyThreadsIntoFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("suite extraction in -short")
	}
	// Shallow-copy the shared suite so the policy change stays local.
	s := *testSuite(t)
	s.Cfg.Policy = montecarlo.SkipUpTo(0.05)
	res, err := s.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Health.Clean() {
		t.Fatalf("healthy run reports dirty health: %s", res.Health.String())
	}
	if healthLine(res.Health) != "" {
		t.Fatal("clean health must render as an empty line")
	}
}
