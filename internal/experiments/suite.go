// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment is a function returning a structured result
// with a text rendering, so the cmd/vsrepro tool and the benchmark harness
// print the same rows/series the paper reports.
//
// The flow mirrors the paper: the golden (BSIM-like) statistical model
// plays the industrial design kit; the nominal VS model is fitted to golden
// I-V/C-V data (Fig. 1); golden Monte Carlo supplies the "measured" target
// variances that backward propagation of variance maps onto VS mismatch
// coefficients (Table II); and the resulting statistical VS model is
// validated against golden Monte Carlo at device level (Fig. 2–4,
// Table III) and circuit level (Fig. 5–9, Table IV).
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"vstat/internal/bpv"
	"vstat/internal/core"
	"vstat/internal/device"
	"vstat/internal/extract"
	"vstat/internal/lifecycle"
	"vstat/internal/montecarlo"
	"vstat/internal/obs"
	"vstat/internal/obs/trace"
	"vstat/internal/shard"
	"vstat/internal/stats"
	"vstat/internal/variation"
	"vstat/internal/vsmodel"
)

// Config carries the global experiment settings.
type Config struct {
	Seed    int64
	Workers int     // 0 = GOMAXPROCS
	Scale   float64 // sample-count scale relative to the paper (1 = paper counts)
	Vdd     float64

	// FastMC selects the carried-Jacobian / warm-started solver path for
	// the circuit Monte Carlo experiments. Default false keeps every
	// sampled metric bit-identical to the classic rebuild-per-sample
	// implementation; true trades that for a measurable speedup with
	// waveform deviations bounded by the Newton tolerances.
	FastMC bool

	// ModelKernel selects the VS-model evaluation backend for every device
	// the suite's statistical VS model builds: direct closed-form,
	// compiled op tape (bit-identical to direct), or the fastmath tape.
	// The zero value (KernelAuto) honours VSTAT_MODEL_KERNEL.
	ModelKernel vsmodel.Kernel

	// Policy selects how circuit Monte Carlo runs treat failing samples.
	// The zero value (FailFast) aborts an experiment on the first bad
	// sample; montecarlo.SkipUpTo tolerates a bounded failure fraction,
	// drops those samples from the reported statistics, and records them
	// in each figure's Health report.
	Policy montecarlo.Policy

	// Metrics, when non-nil and obs.Enabled(), receives the Monte Carlo
	// metric set (per-phase time histograms, Newton-work histograms,
	// per-stage rescue counters). The registry must be fresh: NewSuite
	// registers the metrics before any worker shard is created.
	Metrics *obs.Registry
	// Trace, when set alongside Metrics, receives sampled solver trace
	// events (rescue escalations, non-finite rejects, fast fallbacks).
	Trace *obs.EventSink
	// Progress, when set alongside Metrics, is fed per-sample rescue
	// tallies; attach it to run ticks with montecarlo.SetProgress.
	Progress *obs.Progress

	// TraceRec, when non-nil, records each circuit-MC run as a span tree
	// (mc-run span under TraceParent, sample flight recorder keeping the
	// TraceK worst samples) in the distributed-trace recorder. Works with
	// both the pooled and sharded engines; independent of Metrics.
	TraceRec    *trace.Recorder
	TraceParent uint64
	TraceK      int

	// Ctx, when non-nil, cancels in-progress Monte Carlo runs: claiming
	// stops, in-flight samples drain, and each experiment returns its
	// partial results with an error wrapping ctx.Err().
	Ctx context.Context
	// SampleBudget bounds each circuit-MC sample's solver work; a sample
	// over budget fails with a *lifecycle.BudgetError under the failure
	// policy. SampleBudget.Wall also arms the hang watchdog.
	SampleBudget lifecycle.Budget
	// HangGrace is how far past SampleBudget.Wall the watchdog lets an
	// in-flight sample run before abandoning it (<= 0: one extra Wall).
	HangGrace time.Duration
	// CheckpointDir, when set, makes every circuit-MC run checkpoint its
	// per-sample results to <dir>/<run-name>.ckpt.json. The config hash
	// embedded in each file rejects resume across different
	// seed/scale/model settings.
	CheckpointDir string
	// Resume loads existing checkpoint files and skips the samples they
	// record; without it an existing file is discarded and the run starts
	// fresh (still checkpointing as it goes).
	Resume bool

	// ShardSize > 0 opts the circuit Monte Carlo runs into the
	// internal/shard coordinator: each run is split into index-range
	// shards of this width, executed over ShardEndpoints in-process
	// loopback workers, and merged bit-identically to the unsharded run.
	// Mutually exclusive with CheckpointDir (shards are the retry unit; a
	// run-level checkpoint would double-apply completions). Note the
	// failure cap (Policy.MaxFailFrac) is enforced per shard, not
	// globally.
	ShardSize int
	// ShardEndpoints is how many loopback worker endpoints a sharded run
	// dispatches to (<= 0: Workers, then GOMAXPROCS).
	ShardEndpoints int
	// ShardJournalDir, when set with ShardSize, gives every sharded run a
	// durable dispatch journal at <dir>/<run-name>.journal.json: each
	// shard commit is fsynced there, and Resume restores the committed
	// shards instead of re-dispatching them — the shard-level analogue of
	// the run-level checkpoint the sharded path cannot use.
	ShardJournalDir string

	// instr is the suite's instrumentation bundle, planted by NewSuite so
	// runPooledMC can flush run-level lifecycle counters (over-budget and
	// cancellation-drained samples) without threading it per call site.
	instr *MCInstr
	// shardMetrics is the shard-coordinator counter bundle, planted by
	// NewSuite next to instr when observability is on.
	shardMetrics *shard.Metrics
}

// ctx returns the run context (Background when unset).
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// runOpts bundles the lifecycle options every circuit-MC call site passes
// to montecarlo.MapPooledReportCtx.
func (c Config) runOpts() montecarlo.RunOpts {
	return montecarlo.RunOpts{
		Policy:    c.Policy,
		Budget:    c.SampleBudget,
		HangGrace: c.HangGrace,
	}
}

// configHash keys the checkpoints of this configuration: any change to the
// statistical population (seed, scale, supply, solver path, model kernel)
// rejects resume. The kernel is hashed resolved, so an explicit
// Kernel=direct and an auto default that resolves to direct share
// checkpoints, while a tape-fast run (different sampled values) never
// merges with an exact one.
func (c Config) configHash() string {
	return montecarlo.ConfigHash(c.Seed, c.Scale, c.Vdd, c.FastMC, c.ModelKernel.Resolve().String())
}

// openCkpt opens the named checkpoint for an n-sample run under cfg, or
// returns (nil, nil) when checkpointing is off. Without cfg.Resume any
// existing file is discarded first, so only an explicit resume skips
// samples. A free function because methods cannot introduce type
// parameters.
func openCkpt[T any](cfg Config, name string, n int) (*montecarlo.Checkpoint[T], error) {
	if cfg.CheckpointDir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint dir: %w", err)
	}
	path := filepath.Join(cfg.CheckpointDir, name+".ckpt.json")
	if !cfg.Resume {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return nil, fmt.Errorf("checkpoint reset: %w", err)
		}
	}
	return montecarlo.OpenCheckpoint[T](path, cfg.configHash(), n, 64)
}

// runPooledMC wraps montecarlo.MapPooledReportCtx with cfg's context,
// budget, watchdog, and (when configured) the named checkpoint. With a
// checkpoint and a fully completed run, the returned slice and report are
// the checkpoint's overlay of restored plus fresh samples — the full-run
// view, bit-identical whether or not the campaign was interrupted and
// resumed in between.
func runPooledMC[S, T any](cfg Config, name string, n int, seed int64,
	newState func(worker int) (S, error),
	fn func(st S, idx int, rng *rand.Rand) (T, error)) ([]T, montecarlo.RunReport, error) {
	if cfg.ShardSize > 0 {
		return runShardedMC(cfg, name, n, seed, newState, fn)
	}
	opts := cfg.runOpts()
	ck, err := openCkpt[T](cfg, name, n)
	if err != nil {
		return nil, montecarlo.RunReport{}, err
	}
	if ck != nil {
		opts.Checkpoint = ck
	}
	var mcSpan *trace.Span
	if cfg.TraceRec != nil {
		mcSpan = cfg.TraceRec.Start(name, trace.CatMCRun, cfg.TraceParent)
		opts.Trace = trace.NewMC(cfg.TraceRec, name, mcSpan.ID(), cfg.TraceK)
	}
	out, rep, err := montecarlo.MapPooledReportCtx(cfg.ctx(), n, seed, cfg.Workers, opts, newState, fn)
	if mcSpan != nil {
		opts.Trace.Finish()
		mcSpan.End()
	}
	cfg.instr.RecordRunLifecycle(rep) // this run's work, before any checkpoint overlay
	if ck != nil {
		if ferr := ck.Flush(); ferr != nil && err == nil {
			err = ferr
		}
		if err == nil {
			out = ck.Results()
			rep = ck.Report()
		}
	}
	return out, rep, err
}

// runShardedMC routes a circuit-MC run through the internal/shard
// coordinator: ShardEndpoints loopback workers (each running the shard's
// samples on a single-worker engine so total parallelism matches the
// endpoint count) execute index-range shards of cfg.ShardSize samples,
// and the merged results are bit-identical to the unsharded run — same
// values, same failure indices and messages, same rescue totals.
func runShardedMC[S, T any](cfg Config, name string, n int, seed int64,
	newState func(worker int) (S, error),
	fn func(st S, idx int, rng *rand.Rand) (T, error)) ([]T, montecarlo.RunReport, error) {
	if cfg.CheckpointDir != "" {
		return nil, montecarlo.RunReport{}, fmt.Errorf(
			"experiments: sharded run %q cannot also checkpoint (shards are the retry unit)", name)
	}
	k := cfg.ShardEndpoints
	if k <= 0 {
		k = cfg.Workers
	}
	hash := cfg.configHash()
	exec := shard.NewExecutor(hash, 1, newState, fn)
	var eps []shard.Endpoint[T]
	for w := 0; w < k; w++ {
		eps = append(eps, shard.Endpoint[T]{
			Name:      fmt.Sprintf("loopback-%d", w),
			Transport: shard.Loopback[T]{Exec: exec},
		})
	}
	scfg := shard.Config{
		N:            n,
		Seed:         seed,
		ConfigHash:   hash,
		ShardSize:    cfg.ShardSize,
		Bench:        name,
		SampleBudget: cfg.SampleBudget,
		HangGrace:    cfg.HangGrace,
		Metrics:      cfg.shardMetrics,
	}
	var mcSpan *trace.Span
	if cfg.TraceRec != nil {
		mcSpan = cfg.TraceRec.Start(name, trace.CatMCRun, cfg.TraceParent)
		scfg.Trace = cfg.TraceRec
		scfg.TraceParent = mcSpan.ID()
		scfg.TraceK = cfg.TraceK
	}
	if cfg.Policy.OnFailure == montecarlo.SkipAndRecord {
		scfg.MaxFailFrac = cfg.Policy.MaxFailFrac
		if scfg.MaxFailFrac <= 0 {
			scfg.MaxFailFrac = 1.0 // uncapped SkipAndRecord
		}
	}
	var opts shard.RunOptions[T]
	if cfg.ShardJournalDir != "" {
		if err := os.MkdirAll(cfg.ShardJournalDir, 0o755); err != nil {
			return nil, montecarlo.RunReport{}, fmt.Errorf("shard journal dir: %w", err)
		}
		path := filepath.Join(cfg.ShardJournalDir, name+".journal.json")
		var jnl *shard.Journal[T]
		var jerr error
		if cfg.Resume {
			jnl, jerr = shard.OpenJournal[T](path, scfg)
		} else {
			jnl, jerr = shard.CreateJournal[T](path, scfg)
		}
		if jerr != nil {
			return nil, montecarlo.RunReport{}, jerr
		}
		defer jnl.Close()
		opts.Journal = jnl
	}
	res, err := shard.RunWithOptions(cfg.ctx(), scfg, eps, exec, opts)
	mcSpan.End()
	cfg.instr.RecordRunLifecycle(res.Report)
	return res.Out, res.Report, err
}

// Health is one experiment's aggregated Monte Carlo run report; a zero
// Health means every sample of every constituent run converged without
// rescue work.
type Health = montecarlo.RunReport

// healthLine renders a non-clean health report as an indented trailer line
// for the figure String() methods, and nothing for a clean run.
func healthLine(h Health) string {
	if h.Clean() {
		return ""
	}
	return fmt.Sprintf("  run health: %s\n", h.String())
}

// DefaultConfig returns deterministic settings with paper-scale sampling.
func DefaultConfig() Config {
	return Config{Seed: 20130318, Workers: 0, Scale: 1, Vdd: 0.9}
}

// samples scales a paper sample count, keeping at least 50.
func (c Config) samples(paper int) int {
	n := int(float64(paper) * c.Scale)
	if n < 50 {
		n = 50
	}
	return n
}

// ExtractionGeometries is the W×L set used for BPV extraction (all at the
// 40-nm node, plus one longer-channel point for δ(L) leverage).
var ExtractionGeometries = [][2]float64{
	{120e-9, 40e-9},
	{300e-9, 40e-9},
	{600e-9, 40e-9},
	{1000e-9, 40e-9},
	{1500e-9, 40e-9},
	{600e-9, 60e-9},
}

// Suite is the shared experimental state: golden model, fitted VS model and
// extracted coefficients.
type Suite struct {
	Cfg    Config
	Golden *core.StatGolden
	VS     *core.StatVS

	FitRepN, FitRepP extract.FitReport

	// MeasuredN/P are the golden-MC target variances per geometry.
	MeasuredN, MeasuredP []bpv.GeometryVariance
	// ExtractionN/P are the configured BPV problems (reused by Fig. 2/3).
	ExtractionN, ExtractionP *bpv.Extraction

	// instr is the circuit-MC instrumentation bundle built from
	// Cfg.Metrics/Trace/Progress, or nil when observability is off.
	instr *MCInstr
}

// NewSuite runs the full extraction pipeline: Fig. 1 nominal fits for both
// polarities, golden Monte Carlo over the extraction geometries, direct α5
// measurement, and the joint BPV solve.
func NewSuite(cfg Config) (*Suite, error) {
	s := &Suite{Cfg: cfg, Golden: core.DefaultStatGolden(), VS: core.DefaultStatVS()}
	s.VS.Kernel = cfg.ModelKernel
	if cfg.Metrics != nil && obs.Enabled() {
		s.instr = NewMCInstr(cfg.Metrics)
		s.instr.Sink = cfg.Trace
		s.instr.Progress = cfg.Progress
		s.instr.Kernel = cfg.ModelKernel.Resolve().String()
		// Let runPooledMC flush run-level lifecycle counters without
		// every call site threading the bundle through.
		s.Cfg.instr = s.instr
		// Shard counters register here too — before any worker shard is
		// created — so sharded runs account their dispatch traffic in the
		// same registry.
		s.Cfg.shardMetrics = shard.NewMetrics(cfg.Metrics)
	}

	// Nominal extraction (Fig. 1) at the paper's W = 300 nm, followed by a
	// δ(Leff) roll-up calibration at a second length so the model's local
	// L-sensitivity is identified, as the paper's emphasis on a
	// well-characterized nominal model requires.
	for _, k := range []device.Kind{device.NMOS, device.PMOS} {
		ref40 := s.Golden.Card(k, 300e-9, 40e-9)
		ds40 := extract.SampleDevice(&ref40, cfg.Vdd)
		fitted, rep, err := extract.FitVS(s.VS.Card(k, 300e-9, 40e-9), ds40)
		if err != nil {
			return nil, fmt.Errorf("suite: nominal fit %v: %w", k, err)
		}
		// Pin the local dVT/dL by calibrating δ(L) against the golden
		// off-current at a closely spaced second length.
		ref44 := s.Golden.Card(k, 300e-9, 44e-9)
		if cal, err := extract.CalibrateLDelta(fitted, &ref44, cfg.Vdd); err == nil {
			fitted = cal
		}
		if k == device.NMOS {
			s.VS.NMOS = fitted
			s.FitRepN = rep
		} else {
			s.VS.PMOS = fitted
			s.FitRepP = rep
		}
	}

	// Measured variances from golden MC (the "silicon data" substitute),
	// and direct Cinv (α5) measurement from the golden oxide statistics, as
	// the paper measures tox rather than extracting it.
	nMC := cfg.samples(1500)
	for _, k := range []device.Kind{device.NMOS, device.PMOS} {
		meas, err := s.measureGolden(k, nMC)
		if err != nil {
			return nil, err
		}
		alpha5 := s.Golden.Alphas(k).A5
		ex := &bpv.Extraction{
			Card:   s.VS.Card(k, 1e-6, 40e-9),
			Kind:   k,
			Vdd:    cfg.Vdd,
			Alpha5: alpha5,
		}
		al, err := ex.SolveJoint(meas)
		if err != nil {
			return nil, fmt.Errorf("suite: BPV %v: %w", k, err)
		}
		if k == device.NMOS {
			s.MeasuredN, s.ExtractionN = meas, ex
			s.VS.AlphaN = al
		} else {
			s.MeasuredP, s.ExtractionP = meas, ex
			s.VS.AlphaP = al
		}
	}
	return s, nil
}

// measureGolden runs device-level golden MC at every extraction geometry.
func (s *Suite) measureGolden(k device.Kind, n int) ([]bpv.GeometryVariance, error) {
	tg := bpv.Targets{Vdd: s.Cfg.Vdd}
	var out []bpv.GeometryVariance
	for gi, g := range ExtractionGeometries {
		seed := s.Cfg.Seed + int64(gi)*7919 + int64(k)*104729
		samples, err := montecarlo.MapCtx(s.Cfg.ctx(), n, seed, s.Cfg.Workers,
			func(idx int, rng *rand.Rand) ([]float64, error) {
				d := s.Golden.SampleDevice(rng, k, g[0], g[1])
				return tg.EvalVec(d), nil
			})
		if err != nil {
			return nil, fmt.Errorf("suite: golden MC %v W=%g: %w", k, g[0], err)
		}
		out = append(out, bpv.GeometryVariance{
			W: g[0], L: g[1],
			SigmaIdsat:   stats.StdDev(montecarlo.Column(samples, 0)),
			SigmaLogIoff: stats.StdDev(montecarlo.Column(samples, 1)),
			SigmaCgg:     stats.StdDev(montecarlo.Column(samples, 2)),
		})
	}
	return out, nil
}

// Table2Result is paper Table II: the extracted standard-deviation
// coefficients for both polarities, in paper units.
type Table2Result struct {
	NMOS, PMOS variation.Alphas
	// PaperNMOS/PMOS hold the published values for side-by-side reporting.
	PaperNMOS, PaperPMOS [5]float64
}

// Table2 reports the extracted α coefficients (paper Table II).
func (s *Suite) Table2() Table2Result {
	return Table2Result{
		NMOS:      s.VS.AlphaN,
		PMOS:      s.VS.AlphaP,
		PaperNMOS: [5]float64{2.3, 3.71, 3.71, 944, 0.29},
		PaperPMOS: [5]float64{2.86, 3.66, 3.66, 781, 0.81},
	}
}

// String renders the table.
func (r Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II: extracted standard deviation coefficients (BPV)\n")
	fmt.Fprintf(&b, "%-28s %12s %12s %14s %14s\n", "coefficient", "NMOS", "PMOS", "paper NMOS", "paper PMOS")
	n1, n2, n3, n4, n5 := r.NMOS.PaperUnits()
	p1, p2, p3, p4, p5 := r.PMOS.PaperUnits()
	rows := []struct {
		name   string
		n, p   float64
		pn, pp float64
	}{
		{"alpha1 (V*nm)", n1, p1, r.PaperNMOS[0], r.PaperPMOS[0]},
		{"alpha2 (nm)", n2, p2, r.PaperNMOS[1], r.PaperPMOS[1]},
		{"alpha3 (nm)", n3, p3, r.PaperNMOS[2], r.PaperPMOS[2]},
		{"alpha4 (nm*cm2/Vs)", n4, p4, r.PaperNMOS[3], r.PaperPMOS[3]},
		{"alpha5 (nm*uF/cm2)", n5, p5, r.PaperNMOS[4], r.PaperPMOS[4]},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-28s %12.3g %12.3g %14.3g %14.3g\n", row.name, row.n, row.p, row.pn, row.pp)
	}
	return b.String()
}

// Table1Result documents the statistical parameter list of paper Table I.
type Table1Result struct{}

// String renders paper Table I (the statistical VS parameter list).
func (Table1Result) String() string {
	return strings.Join([]string{
		"Table I: VS model statistical parameters (source -> parameter)",
		"  LER    -> Leff  (nm)        effective channel length",
		"  LER    -> Weff  (nm)        effective channel width",
		"  RDF    -> VT0   (V)         zero-bias threshold voltage",
		"  OTF    -> Cinv  (uF/cm2)    effective gate-to-channel capacitance",
		"  stress -> mu    (cm2/V*s)   carrier mobility",
		"  stress -> vxo   (cm/s)      virtual source velocity (dependent: Eq. 5)",
		"",
	}, "\n")
}

// Table1 returns the parameter-list pseudo-experiment.
func (s *Suite) Table1() Table1Result { return Table1Result{} }
