package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"vstat/internal/bpv"
	"vstat/internal/core"
	"vstat/internal/device"
	"vstat/internal/extract"
	"vstat/internal/montecarlo"
	"vstat/internal/stats"
)

// Fig1Result is the nominal-fit experiment: fit-quality metrics and the
// I-V curve series of both models (paper Fig. 1, W = 300 nm NMOS).
type Fig1Result struct {
	Report extract.FitReport
	Series extract.Fig1Series
}

// Fig1 reproduces the nominal VS fit against the golden model.
func (s *Suite) Fig1() Fig1Result {
	ref := s.Golden.Card(device.NMOS, 300e-9, 40e-9)
	fitted := s.VS.Card(device.NMOS, 300e-9, 40e-9)
	return Fig1Result{
		Report: s.FitRepN,
		Series: extract.Fig1(&ref, &fitted, s.Cfg.Vdd),
	}
}

// String renders the fit summary and a compact curve table.
func (r Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 1: VS model fitted to golden 40-nm data (NMOS, W=300 nm)\n")
	fmt.Fprintf(&b, "  RMS rel. Id error (strong inv.): %.2f %%\n", 100*r.Report.RMSRelId)
	fmt.Fprintf(&b, "  worst rel. error at Vg=Vd=Vdd:   %.2f %%\n", 100*r.Report.MaxRelIdSat)
	fmt.Fprintf(&b, "  RMS subthreshold log10 error:    %.3f decades\n", r.Report.RMSLogIdSub)
	fmt.Fprintf(&b, "  RMS rel. Cgg error:              %.2f %%\n", 100*r.Report.RMSRelCgg)
	fmt.Fprintf(&b, "  Id-Vg at Vds=Vdd (A), golden vs VS:\n")
	for i := 0; i < len(r.Series.VgGrid); i += 6 {
		fmt.Fprintf(&b, "    Vg=%.3f  golden=%.4e  vs=%.4e\n",
			r.Series.VgGrid[i], r.Series.IdVgRef[i], r.Series.IdVgFit[i])
	}
	return b.String()
}

// Fig2Row is one width point of the individual-vs-joint solve comparison.
type Fig2Row struct {
	W                     float64
	DiffVT0, DiffL, DiffW float64 // percent difference in σ
}

// Fig2Result is paper Fig. 2: relative error in σVT0, σLeff, σWeff between
// solving Eq. (10) per geometry and jointly.
type Fig2Result struct {
	Rows []Fig2Row
}

// Fig2 compares the per-geometry solves to the joint solve.
func (s *Suite) Fig2() (Fig2Result, error) {
	joint := s.VS.AlphaN
	var out Fig2Result
	for i, g := range ExtractionGeometries {
		if g[1] != 40e-9 {
			continue // the figure sweeps width at L = 40 nm
		}
		ind, err := s.ExtractionN.SolveIndividual(s.MeasuredN[i])
		if err != nil {
			return out, fmt.Errorf("fig2: W=%g: %w", g[0], err)
		}
		sJ := joint.Sigmas(g[0], g[1])
		sI := ind.Sigmas(g[0], g[1])
		pct := func(a, b float64) float64 {
			if b == 0 {
				return math.NaN()
			}
			return 100 * (a - b) / b
		}
		out.Rows = append(out.Rows, Fig2Row{
			W:       g[0],
			DiffVT0: pct(sI.VT0, sJ.VT0),
			DiffL:   pct(sI.L, sJ.L),
			DiffW:   pct(sI.W, sJ.W),
		})
	}
	return out, nil
}

// String renders the Fig. 2 series.
func (r Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 2: individual vs joint BPV solve, percent difference in sigma (NMOS, L=40 nm)\n")
	fmt.Fprintf(&b, "%10s %12s %12s %12s\n", "W (nm)", "dVT0 (%)", "dLeff (%)", "dWeff (%)")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10.0f %12.2f %12.2f %12.2f\n", row.W*1e9, row.DiffVT0, row.DiffL, row.DiffW)
	}
	return b.String()
}

// MaxAbsDiff returns the largest |percent difference| across the series —
// the paper observes "less than 10 %".
func (r Fig2Result) MaxAbsDiff() float64 {
	m := 0.0
	for _, row := range r.Rows {
		for _, d := range []float64{row.DiffVT0, row.DiffL, row.DiffW} {
			if a := math.Abs(d); a > m {
				m = a
			}
		}
	}
	return m
}

// Fig3Row is one width point of the Idsat mismatch decomposition.
type Fig3Row struct {
	W         float64
	TotalPct  float64 // σ(Idsat)/mean, %
	VT0Pct    float64 // contribution of VT0 alone, %
	LWPct     float64 // contribution of Leff & Weff, %
	MuPct     float64 // contribution of µ (incl. vxo coupling), %
	CinvPct   float64 // contribution of Cinv, %
	GoldenPct float64 // golden-MC total for reference, %
}

// Fig3Result is paper Fig. 3: σ(Idsat)/µ and the per-parameter
// contributions versus width at L = 40 nm.
type Fig3Result struct {
	Rows []Fig3Row
}

// Fig3 decomposes the Idsat mismatch by statistical parameter using linear
// propagation through the nominal sensitivities.
func (s *Suite) Fig3() (Fig3Result, error) {
	tg := bpv.Targets{Vdd: s.Cfg.Vdd}
	al := s.VS.AlphaN
	var out Fig3Result
	for i, g := range ExtractionGeometries {
		if g[1] != 40e-9 {
			continue
		}
		sens := bpv.SensitivitiesAt(s.VS.NMOS, device.NMOS, g[0], g[1], tg)
		nom := s.VS.Nominal()(device.NMOS, g[0], g[1])
		idsat, _, _ := tg.Eval(nom)
		sg := al.Sigmas(g[0], g[1])
		contrib := func(cols ...int) float64 {
			sig := [5]float64{sg.VT0, sg.L, sg.W, sg.Mu, sg.Cinv}
			v := 0.0
			for _, j := range cols {
				t := sens.D[0][j] * sig[j]
				v += t * t
			}
			return 100 * math.Sqrt(v) / idsat
		}
		out.Rows = append(out.Rows, Fig3Row{
			W:         g[0],
			TotalPct:  contrib(0, 1, 2, 3, 4),
			VT0Pct:    contrib(0),
			LWPct:     contrib(1, 2),
			MuPct:     contrib(3),
			CinvPct:   contrib(4),
			GoldenPct: 100 * s.MeasuredN[i].SigmaIdsat / idsat,
		})
	}
	return out, nil
}

// String renders the Fig. 3 series.
func (r Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 3: Idsat mismatch and parameter contributions, NMOS L=40 nm (sigma/mean, %%)\n")
	fmt.Fprintf(&b, "%10s %10s %10s %10s %10s %10s %12s\n",
		"W (nm)", "total", "VT0", "L&W", "mu", "Cinv", "golden MC")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10.0f %10.2f %10.2f %10.2f %10.2f %10.2f %12.2f\n",
			row.W*1e9, row.TotalPct, row.VT0Pct, row.LWPct, row.MuPct, row.CinvPct, row.GoldenPct)
	}
	return b.String()
}

// Table3Cell is one device row of paper Table III.
type Table3Cell struct {
	Name         string
	W, L         float64
	Kind         device.Kind
	GoldenIdsat  float64 // σ, A
	VSIdsat      float64
	GoldenLogOff float64 // σ of log10 Ioff
	VSLogOff     float64
	MeanIdsat    float64 // golden mean, for context
}

// Table3Result is paper Table III: Monte Carlo σ of Idsat and log10 Ioff
// for wide/medium/short devices, VS vs golden.
type Table3Result struct {
	N     int
	Cells []Table3Cell
}

// Table3Geometries are the paper's wide/medium/short devices.
var Table3Geometries = []struct {
	Name string
	W, L float64
}{
	{"Wide (1500/40)", 1500e-9, 40e-9},
	{"Medium (600/40)", 600e-9, 40e-9},
	{"Short (120/40)", 120e-9, 40e-9},
}

// Table3 runs device-level MC with both statistical models.
func (s *Suite) Table3() (Table3Result, error) {
	n := s.Cfg.samples(2000)
	tg := bpv.Targets{Vdd: s.Cfg.Vdd}
	res := Table3Result{N: n}
	for gi, g := range Table3Geometries {
		for _, k := range []device.Kind{device.NMOS, device.PMOS} {
			seedBase := s.Cfg.Seed + 31*int64(gi) + 17*int64(k)
			run := func(m interface {
				SampleDevice(*rand.Rand, device.Kind, float64, float64) device.Device
			}, seed int64) ([]float64, []float64, error) {
				samples, err := montecarlo.Map(n, seed, s.Cfg.Workers,
					func(idx int, rng *rand.Rand) ([]float64, error) {
						return tg.EvalVec(m.SampleDevice(rng, k, g.W, g.L)), nil
					})
				if err != nil {
					return nil, nil, err
				}
				return montecarlo.Column(samples, 0), montecarlo.Column(samples, 1), nil
			}
			gIds, gLog, err := run(s.Golden, seedBase)
			if err != nil {
				return res, fmt.Errorf("table3 golden: %w", err)
			}
			vIds, vLog, err := run(s.VS, seedBase+1000003)
			if err != nil {
				return res, fmt.Errorf("table3 vs: %w", err)
			}
			res.Cells = append(res.Cells, Table3Cell{
				Name: g.Name, W: g.W, L: g.L, Kind: k,
				GoldenIdsat:  stats.StdDev(gIds),
				VSIdsat:      stats.StdDev(vIds),
				GoldenLogOff: stats.StdDev(gLog),
				VSLogOff:     stats.StdDev(vLog),
				MeanIdsat:    stats.Mean(gIds),
			})
		}
	}
	return res, nil
}

// String renders the table in the paper's layout.
func (r Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III: MC standard deviations, VS vs golden (N=%d)\n", r.N)
	fmt.Fprintf(&b, "%-18s %-5s %14s %14s %14s %14s\n",
		"device", "type", "golden sIdsat", "VS sIdsat", "golden sLogOff", "VS sLogOff")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-18s %-5s %11.2f uA %11.2f uA %14.3f %14.3f\n",
			c.Name, c.Kind, c.GoldenIdsat*1e6, c.VSIdsat*1e6, c.GoldenLogOff, c.VSLogOff)
	}
	return b.String()
}

// Fig4Result is the bivariate Ion / log10 Ioff comparison for the medium
// NMOS device (paper Fig. 4): scatter statistics and 1/2/3σ ellipses from
// both models.
type Fig4Result struct {
	N                    int
	GoldenIon, GoldenLog []float64
	VSIon, VSLog         []float64
	GoldenEll, VSEll     [3]stats.Ellipse
	CorrGolden, CorrVS   float64
	// CoverageVS[k] is the fraction of golden samples inside the VS k+1 σ
	// ellipse — the cross-model containment check.
	CoverageVS [3]float64
}

// Fig4 runs the bivariate device MC.
func (s *Suite) Fig4() (Fig4Result, error) {
	n := s.Cfg.samples(1000)
	tg := bpv.Targets{Vdd: s.Cfg.Vdd}
	w, l := 600e-9, 40e-9
	res := Fig4Result{N: n}
	run := func(m core.StatModel, seed int64) ([]float64, []float64, error) {
		samples, err := montecarlo.Map(n, seed, s.Cfg.Workers,
			func(idx int, rng *rand.Rand) ([]float64, error) {
				return tg.EvalVec(m.SampleDevice(rng, device.NMOS, w, l)), nil
			})
		if err != nil {
			return nil, nil, err
		}
		return montecarlo.Column(samples, 0), montecarlo.Column(samples, 1), nil
	}
	var err error
	res.GoldenIon, res.GoldenLog, err = run(s.Golden, s.Cfg.Seed+41)
	if err != nil {
		return res, err
	}
	res.VSIon, res.VSLog, err = run(s.VS, s.Cfg.Seed+42)
	if err != nil {
		return res, err
	}
	for k := 0; k < 3; k++ {
		res.GoldenEll[k] = stats.ConfidenceEllipse(res.GoldenIon, res.GoldenLog, float64(k+1))
		res.VSEll[k] = stats.ConfidenceEllipse(res.VSIon, res.VSLog, float64(k+1))
		in := 0
		for i := range res.GoldenIon {
			if res.VSEll[k].Contains(res.GoldenIon[i], res.GoldenLog[i]) {
				in++
			}
		}
		res.CoverageVS[k] = float64(in) / float64(n)
	}
	res.CorrGolden = stats.Correlation(res.GoldenIon, res.GoldenLog)
	res.CorrVS = stats.Correlation(res.VSIon, res.VSLog)
	return res, nil
}

// String renders the scatter/ellipse summary.
func (r Fig4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 4: Ion vs log10 Ioff, medium NMOS (W/L=600/40 nm), N=%d\n", r.N)
	fmt.Fprintf(&b, "  golden: mean Ion=%.4g A  sd=%.3g  mean log10Ioff=%.3f  sd=%.3f  corr=%.3f\n",
		stats.Mean(r.GoldenIon), stats.StdDev(r.GoldenIon),
		stats.Mean(r.GoldenLog), stats.StdDev(r.GoldenLog), r.CorrGolden)
	fmt.Fprintf(&b, "  VS    : mean Ion=%.4g A  sd=%.3g  mean log10Ioff=%.3f  sd=%.3f  corr=%.3f\n",
		stats.Mean(r.VSIon), stats.StdDev(r.VSIon),
		stats.Mean(r.VSLog), stats.StdDev(r.VSLog), r.CorrVS)
	for k := 0; k < 3; k++ {
		fmt.Fprintf(&b, "  %dsigma: golden ellipse (a=%.3g,b=%.3g)  VS (a=%.3g,b=%.3g)  golden-in-VS coverage=%.3f (theory %.3f)\n",
			k+1, r.GoldenEll[k].A, r.GoldenEll[k].B, r.VSEll[k].A, r.VSEll[k].B,
			r.CoverageVS[k], stats.SigmaCoverage(float64(k+1)))
	}
	return b.String()
}
