package experiments

import (
	"math"
	"testing"
)

func TestExtCornersBoundMC(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit MC in -short mode")
	}
	s := testSuite(t)
	r, err := s.ExtCorners()
	if err != nil {
		t.Fatal(err)
	}
	// Corner ordering: FF fastest (smallest delay), SS slowest.
	if !(r.FF < r.TT && r.TT < r.SS) {
		t.Fatalf("corner delays not ordered: FF %g TT %g SS %g", r.FF, r.TT, r.SS)
	}
	// MC median near TT, and the corners contain nearly all MC mass.
	if math.Abs(r.MCMed-r.TT)/r.TT > 0.1 {
		t.Fatalf("MC median %g far from TT %g", r.MCMed, r.TT)
	}
	if r.CoveragePct < 97 {
		t.Fatalf("corner coverage %g%%", r.CoveragePct)
	}
	_ = r.String()
}

func TestExtSSTAAndYieldFromSmallPopulations(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit MC in -short mode")
	}
	s := testSuite(t)
	f7, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	sr, err := s.ExtSSTA(f7)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Rows) != 3 {
		t.Fatalf("rows %d", len(sr.Rows))
	}
	for i, row := range sr.Rows {
		if row.GaussMu <= 0 || row.MCQ999 <= row.GaussMu {
			t.Fatalf("row %d implausible: %+v", i, row)
		}
	}
	// Tail error grows (or at least does not shrink drastically) toward
	// 0.55 V where delays are skewed.
	if sr.Rows[2].TailErrPct < sr.Rows[0].TailErrPct-1 {
		t.Fatalf("tail error did not grow at low Vdd: %+v", sr.Rows)
	}
	_ = sr.String()

	f6, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	yr := s.ExtYield(f6)
	if yr.YieldVS < 0.3 || yr.YieldVS > 1 {
		t.Fatalf("VS yield %g", yr.YieldVS)
	}
	if math.Abs(yr.YieldVS-yr.YieldGolden) > 0.2 {
		t.Fatalf("yields diverge: %g vs %g", yr.YieldVS, yr.YieldGolden)
	}
	if yr.LeakKS > 0.25 {
		t.Fatalf("leakage far from lognormal: KS %g", yr.LeakKS)
	}
	_ = yr.String()
}

func TestFig8HoldDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit MC in -short mode")
	}
	s := testSuite(t)
	r, err := s.Fig8Hold()
	if err != nil {
		t.Fatal(err)
	}
	// Hold times are small (can be negative) and must agree across models
	// within a couple of σ.
	spread := math.Max(r.Golden.SD, r.VS.SD)
	if math.Abs(r.VS.Mean-r.Golden.Mean) > 3*spread+5e-12 {
		t.Fatalf("hold means diverge: %g vs %g (σ %g)", r.VS.Mean, r.Golden.Mean, spread)
	}
	_ = r.String()
}

func TestExtRing(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit MC in -short mode")
	}
	s := testSuite(t)
	r, err := s.ExtRing()
	if err != nil {
		t.Fatal(err)
	}
	if r.Golden.Mean < 5e9 || r.Golden.Mean > 200e9 {
		t.Fatalf("golden ring %g Hz", r.Golden.Mean)
	}
	if d := math.Abs(r.VS.Mean-r.Golden.Mean) / r.Golden.Mean; d > 0.15 {
		t.Fatalf("ring frequencies differ %g%%", 100*d)
	}
	// Mismatch averages over 2N stages: relative σ should be well below a
	// single gate's delay spread.
	if rel := r.VS.SD / r.VS.Mean; rel > 0.05 {
		t.Fatalf("ring σ/µ %g implausibly large", rel)
	}
	_ = r.String()
}

func TestExtNConvShrinksWithN(t *testing.T) {
	s := testSuite(t)
	r, err := s.ExtNConv()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows %d", len(r.Rows))
	}
	// RSD at N=3000 must be well below RSD at N=100 (≈ 1/√30 ≈ 5.5×; allow 2×).
	first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
	if last.Alpha1RSD >= first.Alpha1RSD/2 {
		t.Fatalf("α1 RSD did not shrink: %g -> %g", first.Alpha1RSD, last.Alpha1RSD)
	}
	// Mean α1 stays in the physical band at every N.
	for _, row := range r.Rows {
		if row.Alpha1Mean < 1 || row.Alpha1Mean > 6 {
			t.Fatalf("N=%d: α1 %g out of band", row.N, row.Alpha1Mean)
		}
	}
	_ = r.String()
}

func TestExtInterdieRecovery(t *testing.T) {
	s := testSuite(t)
	r, err := s.ExtInterdie()
	if err != nil {
		t.Fatal(err)
	}
	// 60 dies: the inter-die σ estimate carries ~10% sampling noise; 25%
	// keeps the test robust while catching sign/assembly errors.
	if mathAbs(r.RecoveredErrPct) > 25 {
		t.Fatalf("inter-die recovery error %g%%", r.RecoveredErrPct)
	}
	if r.MeasuredTotal <= r.MeasuredWithin {
		t.Fatal("total σ must exceed within-die σ with a planted global term")
	}
	_ = r.String()
}

func TestExtSRAMAC(t *testing.T) {
	if testing.Short() {
		t.Skip("circuit MC in -short mode")
	}
	s := testSuite(t)
	r, err := s.ExtSRAMAC()
	if err != nil {
		t.Fatal(err)
	}
	// The cross-coupled cell rejects bitline disturbance: coupling below
	// unity but nonzero through the access device.
	for _, d := range []DelayDist{r.Golden, r.VS} {
		if d.Mean <= 0 || d.Mean >= 1 {
			t.Fatalf("coupling mean %g outside (0,1)", d.Mean)
		}
	}
	if ratio := r.VS.Mean / r.Golden.Mean; ratio < 0.5 || ratio > 2 {
		t.Fatalf("models diverge: %g vs %g", r.VS.Mean, r.Golden.Mean)
	}
	_ = r.String()
}
